// udp_transfer: the block-ack protocol moving real bytes over real
// sockets.
//
// Default mode runs a complete transfer inside one process -- endpoint A
// on the main thread, endpoint B on a worker thread, two UDP sockets on
// loopback with seeded loss/dup/reorder between them -- and prints live
// per-second metrics from A's event loop.
//
//   $ ./udp_transfer                          # 4 MB, 5% loss, two threads
//   $ ./udp_transfer --mb 16 --loss 0.2 --proto sr
//   $ ./udp_transfer --inproc                 # deterministic replay mode
//   $ ./udp_transfer --proto ba-bounded --timeout-mode simple --w 16
//   $ ./udp_transfer --duplex                 # bidirectional, piggybacked acks
//
// The protocol knobs (--w, --timeout-mode) are the unified
// runtime::EngineConfig surface NetConfig inherits: the same fields, with
// the same meanings and defaults, configure a DES run of the same core.
// Every core the DES engine drives runs here too -- including the
// wire-mapped ones (ba-bounded, tc), whose frames carry residues the
// receiver translates back at delivery.
//
// Two-process mode splits the endpoints across real processes; each side
// binds its own port and connects to the peer's.  Every endpoint is
// duplex-capable: --send and --recv give the classic one-way pair, and
// --duplex on both sides transfers --mb megabytes in *each* direction
// simultaneously, with each side's acks piggybacked on its own DATA
// (wire DATA+ACK frames) and payloads verified at both ends:
//
//   terminal 1: ./udp_transfer --recv --port 9001 --peer 9000
//   terminal 2: ./udp_transfer --send --port 9000 --peer 9001
//
//   terminal 1: ./udp_transfer --duplex --port 9001 --peer 9000
//   terminal 2: ./udp_transfer --duplex --port 9000 --peer 9001
//
// Server mode multiplexes many concurrent senders over a few shared
// sockets (net::Server): every client -- tagged or plain v1 -- becomes
// a session keyed by (source address, conn-id), with per-session
// impairment seeded from the base seed and the conn-id:
//
//   terminal 1: ./udp_transfer --serve --port 9000
//   terminal 2: ./udp_transfer --send --port 9001 --peer 9000
//   terminal 3: ./udp_transfer --send --port 9002 --peer 9000
//
// Exit status is nonzero if the transfer is incomplete at the deadline
// or any delivered payload fails verification.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#include "common/types.hpp"
#include "net/net_session.hpp"
#include "net/offload.hpp"
#include "net/server.hpp"
#include "runtime/session_util.hpp"

using namespace bacp;
using namespace bacp::literals;

namespace {

constexpr std::size_t kChunk = 1024;

// --serve runs open-ended until its deadline, so ^C is the normal way to
// stop it; the handler only raises a flag the poll loop checks between
// (at most 1 ms) waits, letting the final census line still print.
volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void on_sigint(int) { g_interrupted = 1; }

struct Params {
    double mb = 4.0;
    double loss = 0.05;
    std::uint64_t seed = 7;
    SimTime deadline = 60 * kSecond;
    Seq w = 32;
    std::optional<runtime::TimeoutMode> timeout_mode;  // nullopt = core default
    std::string proto = "ba";
    enum class Mode { Threads, Inproc, Send, Recv, Serve } mode = Mode::Threads;
    /// Bidirectional: both endpoints transfer --mb each way, acks ride
    /// reverse DATA.  Combines with Threads/Inproc (one process) or with
    /// --port/--peer (a two-process duplex endpoint).
    bool duplex = false;
    bool piggyback = true;  // --no-piggyback: duplex without deferral (A/B)
    double pb_delay_ms = 4.0;  // --pb-delay-ms: ack-deferral bound
    std::uint16_t port = 0;
    std::uint16_t peer = 0;
    std::size_t shards = 2;  // --serve: reuseport sockets sharing the port
    // Kernel offload tier for every UDP socket this process opens; mmsg
    // keeps the portable baseline, auto climbs to what the kernel has.
    net::OffloadMode offload = net::OffloadMode::Mmsg;
};

net::NetConfig make_cfg(const Params& p) {
    net::NetConfig cfg;
    // Inherited runtime::EngineConfig fields -- identical surface to a
    // DES runtime::Engine run of the same core.
    cfg.w = p.proto == "abp" ? 1 : p.w;  // the alternating bit IS w = 1
    cfg.count = static_cast<Seq>((p.mb * 1e6 + kChunk - 1) / kChunk);
    cfg.timeout_mode = p.timeout_mode;
    cfg.seed = p.seed;
    cfg.deadline = p.deadline;
    // Net-only knobs.
    cfg.payload_size = kChunk;
    cfg.impair = net::ImpairSpec::lossy(p.loss);
    cfg.link_lifetime = 20 * kMillisecond;
    if (p.duplex) {
        cfg.reverse_count = cfg.count;  // NetEngine modes: B sends back too
        cfg.piggyback = p.piggyback;
        cfg.piggyback_delay = static_cast<SimTime>(p.pb_delay_ms * kMillisecond);
    }
    return cfg;
}

std::optional<runtime::TimeoutMode> parse_timeout_mode(const std::string& name) {
    using runtime::TimeoutMode;
    for (const TimeoutMode mode :
         {TimeoutMode::SimpleTimer, TimeoutMode::PerMessageTimer, TimeoutMode::OracleSimple,
          TimeoutMode::OraclePerMessage}) {
        if (name == runtime::to_string(mode)) return mode;
    }
    // Short forms: the paper's realistic disciplines.
    if (name == "simple") return TimeoutMode::SimpleTimer;
    if (name == "per-message") return TimeoutMode::PerMessageTimer;
    return std::nullopt;
}

void progress(const char* who, SimTime elapsed, const sim::Metrics& m, Seq delivered) {
    std::printf("[%s %5.1fs] new=%llu retx=%llu acks=%llu delivered=%llu (%.2f MB)\n", who,
                to_seconds(elapsed), (unsigned long long)m.data_new,
                (unsigned long long)m.data_retx,
                (unsigned long long)(m.acks_received + m.acks_sent),
                (unsigned long long)delivered,
                static_cast<double>(delivered) * kChunk / 1e6);
    std::fflush(stdout);
}

/// One duplex endpoint's event loop over an already-connected transport.
/// Covers every role: pure sender (rx_count == 0), pure receiver
/// (count == 0), and full duplex.  Returns true when everything this
/// endpoint originates is acknowledged AND everything it expects has
/// been delivered and verified, before the deadline.
template <typename Core>
bool endpoint_loop(const net::NetConfig& cfg, net::Clock& clock, net::TimerWheel& wheel,
                   net::Transport& transport, bool live, const char* who,
                   const std::atomic<bool>* stop = nullptr) {
    net::NetEndpoint<Core> endpoint(cfg, {}, wheel, transport);
    // A receiving side must stay up after its last delivery to re-ack
    // duplicate retransmissions (its final acks may have been lost); it
    // exits after a quiet linger period.  A pure sender's acks are the
    // peer's problem, so it exits the moment it is done.
    const SimTime linger = cfg.rx_count > 0 ? 2 * cfg.effective_timeout() : 0;
    const SimTime start = clock.now();
    SimTime last_print = start;
    SimTime last_activity = start;
    endpoint.start();
    while (clock.now() - start <= cfg.deadline) {
        if (stop != nullptr && stop->load(std::memory_order_relaxed)) break;
        if (endpoint.poll() > 0) {
            last_activity = clock.now();
        } else {
            if (endpoint.done() && clock.now() - last_activity >= linger) break;
            // Re-read per wait: the uring tier swaps in its ring fd once
            // the receive path initializes.
            const int fds[] = {transport.fd()};
            net::wait_readable(fds, kMillisecond);
        }
        if (live && clock.now() - last_print >= kSecond) {
            last_print = clock.now();
            progress(who, last_print - start, endpoint.metrics(), endpoint.delivered());
        }
    }
    const sim::Metrics& m = endpoint.metrics();
    const bool intact = endpoint.payload_mismatches() == 0;
    std::printf("%s: %s in %.1fs -- tx %llu new + %llu retx (%.1f%%), "
                "rx %llu/%llu delivered (%.2f MB)",
                who, endpoint.done() ? "completed" : "DEADLINE EXCEEDED",
                to_seconds(clock.now() - start), (unsigned long long)m.data_new,
                (unsigned long long)m.data_retx, m.retx_fraction() * 100,
                (unsigned long long)endpoint.delivered(), (unsigned long long)cfg.rx_count,
                static_cast<double>(endpoint.bytes_delivered()) / 1e6);
    if (cfg.piggyback) {
        std::printf(", %llu acks piggybacked / %llu standalone",
                    (unsigned long long)endpoint.piggybacked(),
                    (unsigned long long)endpoint.standalone_acks());
    }
    if (cfg.rx_count > 0) std::printf(" -- payloads %s", intact ? "INTACT" : "CORRUPT");
    std::printf("\n");
    return endpoint.done() && intact;
}

/// One process, two threads, two UDP sockets: the real deployment shape.
/// With --duplex both endpoints source and sink --mb megabytes.
template <typename Core>
int run_threads(const Params& p) {
    const net::NetConfig base = make_cfg(p);
    net::NetConfig cfg_a = base;
    cfg_a.rx_count = base.reverse_count;
    net::NetConfig cfg_b = base;
    cfg_b.count = base.reverse_count;
    cfg_b.rx_count = base.count;
    net::SteadyClock clock;
    net::TimerWheel wheel_a(clock);
    net::TimerWheel wheel_b(clock);
    auto [udp_a, udp_b] = net::UdpTransport::make_pair();
    udp_a->enable_offload(p.offload);
    udp_b->enable_offload(p.offload);
    net::Impairer imp_a(*udp_a, wheel_a, base.impair, runtime::mix_seed(base.seed, 0xd1));
    net::Impairer imp_b(*udp_b, wheel_b, base.impair, runtime::mix_seed(base.seed, 0xac));

    std::atomic<bool> stop{false};
    bool b_ok = false;
    std::thread rx([&] {
        b_ok = endpoint_loop<Core>(cfg_b, clock, wheel_b, imp_b, /*live=*/false,
                                   p.duplex ? "peer" : "recv", &stop);
    });
    const bool a_ok = endpoint_loop<Core>(cfg_a, clock, wheel_a, imp_a, /*live=*/true,
                                          p.duplex ? "main" : "send");
    stop.store(true, std::memory_order_relaxed);
    rx.join();
    return a_ok && b_ok ? 0 : 1;
}

/// Deterministic single-threaded variant: InprocTransport + ManualClock.
template <typename Engine>
int run_inproc(const Params& p) {
    Engine engine(make_cfg(p), {}, net::NetMode::Inproc);
    const net::NetReport r = engine.run();
    std::printf("inproc: %s -- %.2f MB delivered, %llu retx, %llu acks, "
                "%.1f virtual ms, %llu corrupt\n",
                r.completed ? "completed" : "INCOMPLETE",
                static_cast<double>(r.bytes_delivered) / 1e6,
                (unsigned long long)r.metrics.data_retx,
                (unsigned long long)r.metrics.acks_received,
                to_seconds(r.elapsed) * 1e3, (unsigned long long)r.payload_mismatches);
    if (p.duplex) {
        std::printf("duplex: %.2f MB reverse, %llu acks piggybacked, "
                    "%llu standalone (%.0f%% piggybacked)\n",
                    static_cast<double>(r.reverse_bytes_delivered) / 1e6,
                    (unsigned long long)r.piggybacked,
                    (unsigned long long)r.standalone_acks, r.piggyback_ratio() * 100);
    }
    std::printf("(same seed => byte-identical rerun; try it)\n");
    return r.completed ? 0 : 1;
}

/// One endpoint of a two-process run: bind --port, connect to --peer.
/// --send and --recv are the classic one-way pair; --duplex transfers
/// in both directions at once.
template <typename Core>
int run_endpoint(const Params& p) {
    net::NetConfig cfg = make_cfg(p);
    const char* role = "sender";
    if (p.duplex) {
        cfg.rx_count = cfg.count;
        role = "duplex";
    } else if (p.mode == Params::Mode::Recv) {
        cfg.rx_count = cfg.count;
        cfg.count = 0;
        role = "receiver";
    }
    net::SteadyClock clock;
    net::TimerWheel wheel(clock);
    net::UdpTransport udp(p.port);
    udp.enable_offload(p.offload);
    udp.connect_peer(p.peer);
    // Distinct impairment streams per side: seed by the local port in
    // duplex mode (the roles are symmetric), by the role otherwise.
    const std::uint64_t salt = p.duplex ? p.port : (cfg.count > 0 ? 0xd1 : 0xac);
    net::Impairer imp(udp, wheel, cfg.impair, runtime::mix_seed(cfg.seed, salt));
    std::printf("%s endpoint on 127.0.0.1:%u -> peer :%u (%.1f MB%s, %.0f%% loss, "
                "offload %s)\n",
                role, udp.local_port(), p.peer, p.mb, p.duplex ? " each way" : "",
                p.loss * 100, net::offload_mode_name(udp.offload_tier()));
    return endpoint_loop<Core>(cfg, clock, wheel, imp, true, role) ? 0 : 1;
}

/// Multi-session server: every arriving client (tagged conn or plain v1)
/// becomes its own session over the shared reuseport shards, with
/// impairment seeded per session from (seed, conn-id).  Runs until the
/// deadline, printing a per-second census while sessions live and die.
template <typename Core>
int run_serve(const Params& p) {
    net::ServerConfig scfg;
    scfg.session = make_cfg(p);
    // Server sessions sink what clients send (open-ended: the clients
    // decide the length) and originate nothing back.
    scfg.session.rx_count = 1 << 20;
    scfg.session.count = 0;
    // Impairment moves up a level: the server wraps each session's
    // egress, so the session config's own impair spec must not apply.
    scfg.impair = scfg.session.impair;
    scfg.session.impair = {};

    net::SteadyClock clock;
    auto [shard_sockets, port] = net::make_reuseport_shards(p.port, p.shards, p.offload);
    std::vector<net::AddressedTransport*> shards;
    for (const auto& s : shard_sockets) shards.push_back(s.get());
    net::Server<Core> server(scfg, {}, clock, shards);
    std::printf("serving on 127.0.0.1:%u, %zu shard(s), protocol %s, offload %s -- "
                "%zu B chunks, %.0f%% ack-side loss\n",
                port, p.shards, p.proto.c_str(),
                net::offload_mode_name(shard_sockets.front()->offload_tier()), kChunk,
                p.loss * 100);

    std::signal(SIGINT, on_sigint);
    const SimTime start = clock.now();
    SimTime last_print = start;
    std::vector<int> fds(shards.size());
    while (g_interrupted == 0 && clock.now() - start <= p.deadline) {
        if (server.poll() == 0) {
            // Refreshed per wait: a uring shard's pollable fd changes
            // once its ring comes up.
            for (std::size_t i = 0; i < shards.size(); ++i) fds[i] = shards[i]->fd();
            net::wait_readable(fds, kMillisecond);
        }
        if (clock.now() - last_print >= kSecond) {
            last_print = clock.now();
            const net::ServerStats& st = server.stats();
            std::printf("[serve %5.1fs] sessions=%zu opened=%llu evicted=%llu "
                        "delivered=%llu\n",
                        to_seconds(last_print - start), server.session_count(),
                        (unsigned long long)st.sessions_opened,
                        (unsigned long long)st.sessions_evicted,
                        (unsigned long long)server.protocol_metrics().delivered);
            std::fflush(stdout);
        }
    }

    std::signal(SIGINT, SIG_DFL);  // a second ^C kills for real
    if (g_interrupted != 0) std::printf("^C -- final census:\n");

    std::uint64_t bytes = 0;
    std::uint64_t mismatches = 0;
    for (const net::SessionView& v : server.sessions()) {
        bytes += v.bytes_delivered;
        mismatches += v.payload_mismatches;
    }
    const net::ServerStats& st = server.stats();
    std::printf("server: %llu sessions opened (%llu evicted, %llu reset), "
                "%llu delivered / %.2f MB still resident, "
                "%.1f datagrams per sendmmsg -- payloads %s\n",
                (unsigned long long)st.sessions_opened,
                (unsigned long long)st.sessions_evicted,
                (unsigned long long)st.sessions_reset,
                (unsigned long long)server.protocol_metrics().delivered,
                static_cast<double>(bytes) / 1e6,
                server.merged_metrics().datagrams_per_send_syscall(),
                mismatches == 0 ? "INTACT" : "CORRUPT");
    return mismatches == 0 ? 0 : 1;
}

template <typename Core, typename Engine>
int dispatch_mode(const Params& p) {
    switch (p.mode) {
        case Params::Mode::Inproc: return run_inproc<Engine>(p);
        case Params::Mode::Send:
        case Params::Mode::Recv: return run_endpoint<Core>(p);
        case Params::Mode::Serve: return run_serve<Core>(p);
        default: return run_threads<Core>(p);
    }
}

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--mb N] [--loss P] [--seed S] [--deadline-ms MS]\n"
                 "          [--w N] [--timeout-mode simple|per-message|oracle-simple|\n"
                 "                                  oracle-per-message]\n"
                 "          [--proto ba|ba-bounded|ba-hole|abp|gbn|sr|tc] [--inproc]\n"
                 "          [--offload auto|mmsg|gso|uring]\n"
                 "          [--duplex [--no-piggyback] [--pb-delay-ms MS]]\n"
                 "          [--send|--recv|--duplex --port P --peer P]\n"
                 "          [--serve --port P [--shards N]]\n",
                 argv0);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    Params p;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (arg == "--inproc") {
            p.mode = Params::Mode::Inproc;
        } else if (arg == "--send") {
            p.mode = Params::Mode::Send;
        } else if (arg == "--recv") {
            p.mode = Params::Mode::Recv;
        } else if (arg == "--duplex") {
            p.duplex = true;
        } else if (arg == "--no-piggyback") {
            p.piggyback = false;
        } else if (arg == "--pb-delay-ms") {
            if (const char* v = next()) p.pb_delay_ms = std::atof(v);
            else return usage(argv[0]);
        } else if (arg == "--serve") {
            p.mode = Params::Mode::Serve;
        } else if (arg == "--shards") {
            if (const char* v = next()) p.shards = std::strtoull(v, nullptr, 10);
            else return usage(argv[0]);
        } else if (arg == "--mb") {
            if (const char* v = next()) p.mb = std::atof(v); else return usage(argv[0]);
        } else if (arg == "--loss") {
            if (const char* v = next()) p.loss = std::atof(v); else return usage(argv[0]);
        } else if (arg == "--seed") {
            if (const char* v = next()) p.seed = std::strtoull(v, nullptr, 10);
            else return usage(argv[0]);
        } else if (arg == "--deadline-ms") {
            if (const char* v = next()) p.deadline = std::atoll(v) * kMillisecond;
            else return usage(argv[0]);
        } else if (arg == "--w") {
            if (const char* v = next()) p.w = static_cast<Seq>(std::strtoull(v, nullptr, 10));
            else return usage(argv[0]);
        } else if (arg == "--timeout-mode") {
            const char* v = next();
            if (v == nullptr) return usage(argv[0]);
            p.timeout_mode = parse_timeout_mode(v);
            if (!p.timeout_mode) return usage(argv[0]);
        } else if (arg == "--proto") {
            if (const char* v = next()) p.proto = v; else return usage(argv[0]);
        } else if (arg == "--offload") {
            const char* v = next();
            if (v == nullptr) return usage(argv[0]);
            const auto parsed = net::parse_offload_mode(v);
            if (!parsed) return usage(argv[0]);
            p.offload = *parsed;
        } else if (arg == "--port") {
            if (const char* v = next()) p.port = static_cast<std::uint16_t>(std::atoi(v));
            else return usage(argv[0]);
        } else if (arg == "--peer") {
            if (const char* v = next()) p.peer = static_cast<std::uint16_t>(std::atoi(v));
            else return usage(argv[0]);
        } else {
            return usage(argv[0]);
        }
    }
    // --duplex with a bound port is the two-process endpoint shape; the
    // Send/Recv modes share that path.
    if (p.duplex && p.port != 0) p.mode = Params::Mode::Send;
    if ((p.mode == Params::Mode::Send || p.mode == Params::Mode::Recv) &&
        (p.port == 0 || p.peer == 0)) {
        std::fprintf(stderr, "--send/--recv/--duplex need --port and --peer\n");
        return usage(argv[0]);
    }

    if (p.mode == Params::Mode::Threads) {
        std::printf("udp_transfer: %.1f MB%s as %llu x %zu B over loopback UDP, "
                    "%.0f%% loss impairment, protocol %s%s\n",
                    p.mb, p.duplex ? " each way" : "",
                    (unsigned long long)make_cfg(p).count, kChunk, p.loss * 100,
                    p.proto.c_str(), p.duplex && p.piggyback ? ", piggybacked acks" : "");
    }

    if (p.proto == "ba-bounded") {
        return dispatch_mode<ba::EngineCore<ba::BoundedSender, ba::BoundedReceiver>,
                             net::BoundedBaNetEngine>(p);
    }
    if (p.proto == "ba-hole") {
        return dispatch_mode<ba::EngineCore<ba::HoleReuseSender, ba::Receiver>,
                             net::HoleReuseNetEngine>(p);
    }
    if (p.proto == "abp") {
        return dispatch_mode<baselines::AbpCore, net::AbpNetEngine>(p);
    }
    if (p.proto == "gbn") {
        return dispatch_mode<baselines::GbnCore, net::GbnNetEngine>(p);
    }
    if (p.proto == "sr") {
        return dispatch_mode<baselines::SrCore, net::SrNetEngine>(p);
    }
    if (p.proto == "tc") {
        return dispatch_mode<baselines::TcCore, net::TcNetEngine>(p);
    }
    if (p.proto != "ba") return usage(argv[0]);
    return dispatch_mode<ba::EngineCore<ba::Sender, ba::Receiver>, net::BaNetEngine>(p);
}
