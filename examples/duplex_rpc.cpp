// duplex_rpc: request/response traffic over one full-duplex session.
//
// A client sends requests A->B; the server answers B->A.  Block
// acknowledgments for each direction ride on the other direction's data
// (DATA+ACK piggybacking), so a healthy RPC exchange spends almost no
// standalone ack frames.  The run reports RPC round-trip percentiles and
// the frame economy, under loss.
//
//   $ ./duplex_rpc [loss]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/histogram.hpp"
#include "runtime/duplex_session.hpp"

using namespace bacp;
using namespace bacp::literals;

int main(int argc, char** argv) {
    const double loss = argc > 1 ? std::atof(argv[1]) : 0.05;
    constexpr Seq kRequests = 2000;

    runtime::DuplexConfig cfg;
    cfg.w = 16;
    cfg.count_a_to_b = kRequests;  // requests
    cfg.count_b_to_a = kRequests;  // responses
    cfg.piggyback = true;
    cfg.ab_link = loss > 0 ? runtime::LinkSpec::lossy(loss) : runtime::LinkSpec::lossless();
    cfg.ba_link = loss > 0 ? runtime::LinkSpec::lossy(loss) : runtime::LinkSpec::lossless();
    cfg.seed = 2026;
    runtime::DuplexSession session(cfg);
    const auto result = session.run();

    std::printf("duplex RPC: %llu requests + %llu responses over %.0f%%-lossy links\n",
                (unsigned long long)kRequests, (unsigned long long)kRequests, loss * 100);
    std::printf("  completed: %s\n", session.completed() ? "yes" : "NO");
    std::printf("  requests  (A->B): %s\n", result.a_to_b.summary().c_str());
    std::printf("  responses (B->A): %s\n", result.b_to_a.summary().c_str());
    const double delivered =
        static_cast<double>(result.a_to_b.delivered + result.b_to_a.delivered);
    std::printf("  frame economy: %.3f frames/message (%llu piggybacked acks, "
                "%llu standalone)\n",
                static_cast<double>(result.frames_ab + result.frames_ba) / delivered,
                (unsigned long long)result.piggybacked,
                (unsigned long long)result.standalone_acks);
    return session.completed() ? 0 : 1;
}
