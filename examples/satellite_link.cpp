// satellite_link: window protocols on a long-delay (high bandwidth-delay
// product) link.
//
// A geostationary hop has ~270 ms of one-way delay; pipelining is
// everything.  This example sweeps the window size for the block-ack
// protocol and compares against stop-and-wait (alternating bit),
// go-back-N, and selective repeat under mild loss.
//
//   $ ./satellite_link [loss]

#include <cstdio>
#include <cstdlib>

#include "workload/report.hpp"
#include "workload/scenario.hpp"

using namespace bacp;
using namespace bacp::literals;
using workload::Protocol;
using workload::Scenario;

namespace {

Scenario satellite_base(double loss) {
    Scenario s;
    s.count = 2000;
    s.loss = loss;
    s.delay_lo = 250_ms;
    s.delay_hi = 290_ms;
    s.seed = 2024;
    return s;
}

}  // namespace

int main(int argc, char** argv) {
    const double loss = argc > 1 ? std::atof(argv[1]) : 0.02;
    std::printf("satellite link: ~270 ms one-way delay, %.0f%% loss, 2000 messages\n",
                loss * 100);

    // Window sweep for block acknowledgment.
    workload::Table sweep({"window w", "throughput msg/s", "p50 latency ms", "retx %"});
    for (const Seq w : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        Scenario s = satellite_base(loss);
        s.protocol = Protocol::BlockAck;
        s.w = w;
        const auto r = workload::run_scenario(s);
        sweep.add_row({std::to_string(w), workload::fmt(r.metrics.throughput_msgs_per_sec(), 1),
                       workload::fmt(to_seconds(r.metrics.latency.quantile(0.5)) * 1e3, 1),
                       workload::fmt(r.metrics.retx_fraction() * 100, 2)});
    }
    sweep.print("block acknowledgment: window scaling on the satellite hop");

    // Protocol comparison at w = 64.
    workload::Table compare({"protocol", "throughput msg/s", "acks/msg", "retx %"});
    for (const auto protocol : {Protocol::AlternatingBit, Protocol::GoBackN,
                                Protocol::SelectiveRepeat, Protocol::BlockAck,
                                Protocol::BlockAckBounded}) {
        Scenario s = satellite_base(loss);
        s.protocol = protocol;
        s.w = 64;
        const auto r = workload::run_scenario(s);
        compare.add_row({workload::to_string(protocol),
                         workload::fmt(r.metrics.throughput_msgs_per_sec(), 1),
                         workload::fmt(r.metrics.acks_per_delivered(), 2),
                         workload::fmt(r.metrics.retx_fraction() * 100, 2)});
    }
    compare.print("protocol comparison at w = 64");
    std::printf("\nNote: block-ack-bounded ships 1-byte sequence residues (mod 2w) and\n"
                "matches the unbounded protocol's behavior exactly -- Section V's claim.\n");
    return 0;
}
