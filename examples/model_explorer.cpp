// model_explorer: command-line front end for the explicit-state model
// checker.  Exhaustively verifies the block-acknowledgment protocol's
// invariant (paper assertions 6-8) for a chosen configuration, or hunts
// for the go-back-N failure.
//
//   $ ./model_explorer ba  [w] [max_ns] [permsg 0|1] [loss 0|1]
//   $ ./model_explorer gbn [w] [domain] [max_ns] [fifo 0|1]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "verify/ba_system.hpp"
#include "verify/explorer.hpp"
#include "verify/gbn_system.hpp"

using namespace bacp;
using namespace bacp::verify;

namespace {

void print_result(const ExploreResult& result) {
    std::printf("%s\n", result.summary().c_str());
    if (result.violation_found) {
        std::printf("violation: %s\n", result.violation.front().c_str());
        std::printf("trace (%zu steps):\n", result.trace.size());
        for (const auto& label : result.trace) std::printf("  %s\n", label.c_str());
        std::printf("state: %s\n", result.violating_state.c_str());
    }
    if (result.deadlock_found) {
        std::printf("deadlock state: %s\n", result.deadlock_state.c_str());
    }
}

int arg_or(int argc, char** argv, int index, int fallback) {
    return argc > index ? std::atoi(argv[index]) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
    const char* mode = argc > 1 ? argv[1] : "ba";

    if (std::strcmp(mode, "ba") == 0) {
        BaOptions opt;
        opt.w = static_cast<Seq>(arg_or(argc, argv, 2, 2));
        opt.max_ns = static_cast<Seq>(arg_or(argc, argv, 3, 4));
        opt.per_message_timeout = arg_or(argc, argv, 4, 1) != 0;
        opt.allow_loss = arg_or(argc, argv, 5, 1) != 0;
        std::printf("block-ack: w=%llu max_ns=%llu timeout=%s loss=%s\n",
                    (unsigned long long)opt.w, (unsigned long long)opt.max_ns,
                    opt.per_message_timeout ? "per-message (SIV)" : "simple (SII)",
                    opt.allow_loss ? "on" : "off");
        Explorer<BaSystem> explorer;
        const auto result = explorer.explore(BaSystem(opt), 20'000'000);
        print_result(result);
        return result.ok() ? 0 : 1;
    }

    if (std::strcmp(mode, "gbn") == 0) {
        GbnOptions opt;
        opt.w = static_cast<Seq>(arg_or(argc, argv, 2, 2));
        opt.domain = static_cast<Seq>(arg_or(argc, argv, 3, 3));
        opt.max_ns = static_cast<Seq>(arg_or(argc, argv, 4, 6));
        const bool fifo = arg_or(argc, argv, 5, 0) != 0;
        std::printf("go-back-N: w=%llu domain=%llu max_ns=%llu channels=%s\n",
                    (unsigned long long)opt.w, (unsigned long long)opt.domain,
                    (unsigned long long)opt.max_ns, fifo ? "FIFO" : "reordering");
        if (fifo) {
            Explorer<GbnFifoSystem> explorer;
            print_result(explorer.explore(GbnFifoSystem(opt), 20'000'000));
        } else {
            Explorer<GbnSystem> explorer;
            const auto result = explorer.explore(GbnSystem(opt), 20'000'000);
            print_result(result);
            return 0;  // a violation here is the expected demonstration
        }
        return 0;
    }

    std::fprintf(stderr, "usage: %s ba|gbn [params...]\n", argv[0]);
    return 2;
}
