// protocol_trace: an annotated walk through the paper's Section I.
//
// Part 1 replays the motivating failure scenario on go-back-N with
// bounded sequence numbers, found automatically by the model checker
// (shortest counterexample, reordering ack channel).
//
// Part 2 runs the block-acknowledgment protocol through the same kind of
// disorder with full event tracing, showing why the (m, n) pairs make the
// stale-ack confusion impossible.
//
//   $ ./protocol_trace

#include <cstdio>

#include "runtime/ba_session.hpp"
#include "sim/diagram.hpp"
#include "verify/explorer.hpp"
#include "verify/gbn_system.hpp"

using namespace bacp;
using namespace bacp::literals;

int main() {
    // ---- Part 1: the Section I failure, machine-found --------------------
    std::printf("== Part 1: go-back-N, cumulative acks, bounded seqnums (mod 3) ==\n");
    std::printf("Model checker searching for a safety violation...\n\n");
    verify::GbnOptions opt;
    opt.w = 2;
    opt.domain = 3;
    opt.max_ns = 6;
    verify::Explorer<verify::GbnSystem> explorer;
    const auto result = explorer.explore(verify::GbnSystem(opt), 3'000'000);
    if (result.violation_found) {
        std::printf("VIOLATION after exploring %zu states (shortest trace, %zu steps):\n",
                    result.states, result.trace.size());
        int step = 1;
        for (const auto& label : result.trace) {
            std::printf("  %2d. %s\n", step++, label.c_str());
        }
        std::printf("  => %s\n", result.violation.front().c_str());
        std::printf("  final state: %s\n\n", result.violating_state.c_str());
        std::printf("The stale cumulative ack aliased into the new window: exactly the\n"
                    "scenario of the paper's introduction.\n\n");
    } else {
        std::printf("unexpected: no violation found (%s)\n", result.summary().c_str());
        return 1;
    }

    // ---- Part 2: block acknowledgment under the same disorder -------------
    std::printf("== Part 2: block acknowledgment, traced ==\n\n");
    runtime::EngineConfig cfg;
    cfg.w = 6;
    cfg.count = 6;
    cfg.seed = 3;
    cfg.record_trace = true;
    cfg.ack_policy = runtime::AckPolicy::batch(5, 3_ms);  // grow a big block
    cfg.data_link = runtime::LinkSpec::lossless(1_ms, 6_ms);  // heavy reorder
    cfg.ack_link = runtime::LinkSpec::lossless(1_ms, 6_ms);
    runtime::UnboundedSession session(cfg);
    session.run();
    std::printf("%s\n", sim::render_sequence_diagram(session.trace()).c_str());
    std::printf("completed=%s  delivered=%llu  (every ack names its exact block (m,n);\n"
                "no reordering of acks can convince the sender of more than was received)\n",
                session.completed() ? "yes" : "no", (unsigned long long)session.delivered());
    return session.completed() ? 0 : 1;
}
