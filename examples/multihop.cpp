// multihop: reliability architectures over a chain of lossy links.
//
// Builds a 4-hop path twice from the library's composable endpoints --
// end-to-end reliability over dumb relays, and hop-by-hop reliable links
// with store-and-forward nodes -- and races them.  Then demonstrates
// stream multiplexing over a single shared path.
//
//   $ ./multihop [hops] [per_hop_loss]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "link/multihop.hpp"
#include "link/stream_mux.hpp"
#include "sim/simulator.hpp"

using namespace bacp;
using namespace bacp::literals;

namespace {

link::PathConfig make_chain(std::size_t hops, double loss) {
    link::PathConfig cfg;
    cfg.w = 16;
    cfg.seed = 99;
    for (std::size_t i = 0; i < hops; ++i) {
        link::HopSpec hop;
        hop.loss = loss;
        hop.corrupt_p = 0.01;
        cfg.hops.push_back(hop);
    }
    return cfg;
}

template <typename Path>
void race(const char* name, std::size_t hops, double loss) {
    sim::Simulator sim;
    Path path(sim, make_chain(hops, loss));
    Seq delivered = 0;
    path.set_on_deliver([&](std::span<const std::uint8_t>) { ++delivered; });
    for (Seq i = 0; i < 500; ++i) path.send({static_cast<std::uint8_t>(i)});
    sim.run();
    std::printf("  %-12s delivered %llu/500 in %6.2f s   frames/msg %5.2f   retx %llu\n",
                name, (unsigned long long)delivered, to_seconds(sim.now()),
                static_cast<double>(path.total_frames()) / 500.0,
                (unsigned long long)path.total_retransmissions());
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t hops = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
    const double loss = argc > 2 ? std::atof(argv[2]) : 0.05;

    std::printf("== %zu-hop chain, %.0f%% loss + 1%% corruption per hop ==\n", hops,
                loss * 100);
    race<link::EndToEndPath>("end-to-end", hops, loss);
    race<link::HopByHopPath>("hop-by-hop", hops, loss);

    std::printf("\n== 3 streams multiplexed over one lossy path ==\n");
    sim::Simulator sim;
    link::StreamMux::Config cfg;
    cfg.streams = 3;
    cfg.w = 8;
    cfg.loss = loss;
    cfg.seed = 100;
    link::StreamMux mux(sim, cfg);
    std::map<Seq, Seq> per_stream;
    mux.set_on_deliver([&](Seq stream, std::span<const std::uint8_t>) { ++per_stream[stream]; });
    for (Seq i = 0; i < 200; ++i) {
        for (Seq stream = 0; stream < 3; ++stream) {
            mux.send(stream, {static_cast<std::uint8_t>(stream), static_cast<std::uint8_t>(i)});
        }
    }
    sim.run();
    for (Seq stream = 0; stream < 3; ++stream) {
        std::printf("  stream %llu delivered %llu/200 in order\n", (unsigned long long)stream,
                    (unsigned long long)per_stream[stream]);
    }
    std::printf("  shared channels carried %llu data + %llu ack frames, %llu retx\n",
                (unsigned long long)mux.data_stats().sent,
                (unsigned long long)mux.ack_stats().sent,
                (unsigned long long)mux.retransmissions());
    return 0;
}
