// quickstart: the five-minute tour of the bacp public API.
//
// Creates a ReliableLink over a channel that loses 10% of frames, flips
// bits in another 2%, and reorders everything via random delays -- then
// sends 100 payloads and shows they arrive in order, exactly once.
//
//   $ ./quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "link/reliable_link.hpp"
#include "sim/simulator.hpp"

using namespace bacp;
using namespace bacp::literals;

int main() {
    sim::Simulator sim;

    // A window of 16 means sequence numbers travel as residues mod 32 --
    // one byte on the wire -- per the paper's Section V construction.
    link::ReliableLink link(sim, {
                                     .w = 16,
                                     .loss = 0.10,
                                     .corrupt_p = 0.02,
                                     .delay_lo = 4_ms,
                                     .delay_hi = 6_ms,
                                     .seed = 7,
                                 });

    std::vector<std::string> received;
    link.set_on_deliver([&](std::span<const std::uint8_t> payload) {
        received.emplace_back(payload.begin(), payload.end());
    });

    for (int i = 0; i < 100; ++i) {
        const std::string text = "payload #" + std::to_string(i);
        link.send(std::vector<std::uint8_t>(text.begin(), text.end()));
    }

    sim.run();  // drive the discrete-event simulation to quiescence

    std::printf("delivered %zu payloads in order\n", received.size());
    std::printf("first: \"%s\"   last: \"%s\"\n", received.front().c_str(),
                received.back().c_str());
    std::printf("data frames:  sent=%llu dropped=%llu corrupted=%llu\n",
                (unsigned long long)link.data_stats().sent,
                (unsigned long long)link.data_stats().dropped,
                (unsigned long long)link.data_stats().corrupted);
    std::printf("ack frames:   sent=%llu dropped=%llu\n",
                (unsigned long long)link.ack_stats().sent,
                (unsigned long long)link.ack_stats().dropped);
    std::printf("recovery:     retransmissions=%llu crc-rejected=%llu\n",
                (unsigned long long)link.retransmissions(),
                (unsigned long long)link.frames_rejected());

    bool in_order = received.size() == 100;
    for (std::size_t i = 0; in_order && i < received.size(); ++i) {
        in_order = received[i] == "payload #" + std::to_string(i);
    }
    std::printf("in-order, exactly-once delivery: %s\n", in_order ? "YES" : "NO");
    return in_order ? 0 : 1;
}
