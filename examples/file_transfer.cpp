// file_transfer: move a 1 MiB pseudo-file across a hostile link.
//
// The file is cut into 1 KiB chunks, pushed through a ReliableLink whose
// channel loses, reorders, AND corrupts frames, and reassembled on the
// far side.  End-to-end integrity is proven by comparing CRC-32C digests
// of the source and the reassembly.
//
//   $ ./file_transfer [loss] [corrupt] [seed]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "link/reliable_link.hpp"
#include "sim/simulator.hpp"
#include "wire/crc32.hpp"

using namespace bacp;
using namespace bacp::literals;

int main(int argc, char** argv) {
    const double loss = argc > 1 ? std::atof(argv[1]) : 0.15;
    const double corrupt = argc > 2 ? std::atof(argv[2]) : 0.05;
    const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

    // Synthesize a deterministic 1 MiB "file".
    constexpr std::size_t kFileSize = 1 << 20;
    constexpr std::size_t kChunk = 1024;
    std::vector<std::uint8_t> file(kFileSize);
    Rng rng(seed);
    for (auto& byte : file) byte = static_cast<std::uint8_t>(rng());
    const std::uint32_t source_crc = wire::crc32c(file);

    sim::Simulator sim;
    link::ReliableLink link(sim, {
                                     .w = 32,
                                     .loss = loss,
                                     .corrupt_p = corrupt,
                                     .delay_lo = 2_ms,
                                     .delay_hi = 8_ms,
                                     .ack_policy = runtime::AckPolicy::batch(8, 4_ms),
                                     .seed = seed,
                                 });

    std::vector<std::uint8_t> reassembled;
    reassembled.reserve(kFileSize);
    link.set_on_deliver([&](std::span<const std::uint8_t> chunk) {
        reassembled.insert(reassembled.end(), chunk.begin(), chunk.end());
    });

    for (std::size_t off = 0; off < kFileSize; off += kChunk) {
        link.send(std::vector<std::uint8_t>(file.begin() + static_cast<std::ptrdiff_t>(off),
                                            file.begin() + static_cast<std::ptrdiff_t>(off + kChunk)));
    }

    sim.run();

    const std::uint32_t got_crc = wire::crc32c(reassembled);
    const double seconds = to_seconds(sim.now());
    std::printf("transferred %zu bytes in %.2f simulated seconds (%.1f KiB/s)\n",
                reassembled.size(), seconds,
                static_cast<double>(reassembled.size()) / 1024.0 / seconds);
    std::printf("channel: loss=%.0f%% corrupt=%.0f%%  ->  drops=%llu bitflips=%llu "
                "crc-rejected=%llu retransmissions=%llu\n",
                loss * 100, corrupt * 100, (unsigned long long)link.data_stats().dropped,
                (unsigned long long)link.data_stats().corrupted,
                (unsigned long long)link.frames_rejected(),
                (unsigned long long)link.retransmissions());
    std::printf("source crc32c=%08x  reassembled crc32c=%08x  ->  %s\n", source_crc, got_crc,
                source_crc == got_crc && reassembled.size() == kFileSize ? "INTACT" : "CORRUPT");
    return source_crc == got_crc ? 0 : 1;
}
