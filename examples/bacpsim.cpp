// bacpsim: command-line driver for the protocol simulator.
//
// Runs any protocol/channel/workload combination and prints a metrics
// summary (or CSV).  The Swiss-army knife for exploring the design space
// without writing code.
//
//   $ ./bacpsim --protocol block-ack --w 16 --count 5000 --loss 0.05
//   $ ./bacpsim --protocol go-back-n --fifo --loss 0.02 --csv
//   $ ./bacpsim --protocol block-ack-bounded --nak --adaptive
//               --service-us 1000 --queue 8   (one line)
//   $ ./bacpsim --list
//
// Flags (defaults in brackets):
//   --protocol NAME   block-ack | block-ack-bounded | block-ack-hole-reuse |
//                     go-back-n | selective-repeat | alternating-bit |
//                     time-constrained                     [block-ack]
//   --w N             window size                          [16]
//   --count N         messages to transfer                 [5000]
//   --loss P          data-channel loss probability        [0]
//   --ack-loss P      ack-channel loss (default: = loss)
//   --burst           Gilbert-Elliott burst loss instead of Bernoulli
//   --delay-lo-us N   min one-way delay, microseconds      [4000]
//   --delay-hi-us N   max one-way delay, microseconds      [6000]
//   --fifo            force in-order channels
//   --batch K         ack policy: batch K (10 ms flush)    [eager]
//   --timeout-mode M  oracle-simple | oracle-per-message |
//                     simple-timer | per-message-timer     [protocol default]
//   --tc-domain N     sequence domain for time-constrained [16]
//   --nak             enable NAK fast retransmit
//   --adaptive        enable AIMD window adaptation
//   --service-us N    bottleneck service time (0 = off)    [0]
//   --queue N         bottleneck queue capacity            [64]
//   --arrival-us N    open-loop arrivals: mean gap in microseconds (0 = closed loop)
//   --poisson         exponential (Poisson) arrival gaps
//   --seed S          RNG seed                             [1]
//   --reps N          replications (aggregated)            [1]
//   --csv             one CSV line instead of the summary
//   --list            print protocol names and exit

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "workload/scenario.hpp"

using namespace bacp;
using workload::Protocol;
using workload::Scenario;

namespace {

struct Args {
    int argc;
    char** argv;
    int index = 1;

    const char* next_value(const char* flag) {
        if (index + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", flag);
            std::exit(2);
        }
        return argv[++index];
    }
};

bool parse_protocol(const std::string& name, Protocol& out) {
    const struct {
        const char* name;
        Protocol protocol;
    } table[] = {
        {"block-ack", Protocol::BlockAck},
        {"block-ack-bounded", Protocol::BlockAckBounded},
        {"block-ack-hole-reuse", Protocol::BlockAckHoleReuse},
        {"go-back-n", Protocol::GoBackN},
        {"selective-repeat", Protocol::SelectiveRepeat},
        {"alternating-bit", Protocol::AlternatingBit},
        {"time-constrained", Protocol::TimeConstrained},
    };
    for (const auto& entry : table) {
        if (name == entry.name) {
            out = entry.protocol;
            return true;
        }
    }
    return false;
}

bool parse_timeout_mode(const std::string& name, runtime::TimeoutMode& out) {
    if (name == "oracle-simple") out = runtime::TimeoutMode::OracleSimple;
    else if (name == "oracle-per-message") out = runtime::TimeoutMode::OraclePerMessage;
    else if (name == "simple-timer") out = runtime::TimeoutMode::SimpleTimer;
    else if (name == "per-message-timer") out = runtime::TimeoutMode::PerMessageTimer;
    else return false;
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    Scenario scenario;
    scenario.w = 16;
    scenario.count = 5000;
    int reps = 1;
    bool csv = false;

    Args args{argc, argv};
    for (; args.index < argc; ++args.index) {
        const std::string flag = argv[args.index];
        if (flag == "--list") {
            std::printf("block-ack block-ack-bounded block-ack-hole-reuse go-back-n "
                        "selective-repeat alternating-bit time-constrained\n");
            return 0;
        } else if (flag == "--protocol") {
            if (!parse_protocol(args.next_value("--protocol"), scenario.protocol)) {
                std::fprintf(stderr, "unknown protocol; try --list\n");
                return 2;
            }
        } else if (flag == "--w") {
            scenario.w = static_cast<Seq>(std::strtoull(args.next_value(flag.c_str()), nullptr, 10));
        } else if (flag == "--count") {
            scenario.count =
                static_cast<Seq>(std::strtoull(args.next_value(flag.c_str()), nullptr, 10));
        } else if (flag == "--loss") {
            scenario.loss = std::atof(args.next_value(flag.c_str()));
        } else if (flag == "--ack-loss") {
            scenario.ack_loss = std::atof(args.next_value(flag.c_str()));
        } else if (flag == "--burst") {
            scenario.burst_loss = true;
        } else if (flag == "--delay-lo-us") {
            scenario.delay_lo =
                std::strtoll(args.next_value(flag.c_str()), nullptr, 10) * kMicrosecond;
        } else if (flag == "--delay-hi-us") {
            scenario.delay_hi =
                std::strtoll(args.next_value(flag.c_str()), nullptr, 10) * kMicrosecond;
        } else if (flag == "--fifo") {
            scenario.fifo = true;
        } else if (flag == "--batch") {
            const Seq k =
                static_cast<Seq>(std::strtoull(args.next_value(flag.c_str()), nullptr, 10));
            scenario.ack_policy = runtime::AckPolicy::batch(k, 10 * kMillisecond);
        } else if (flag == "--timeout-mode") {
            runtime::TimeoutMode mode;
            if (!parse_timeout_mode(args.next_value(flag.c_str()), mode)) {
                std::fprintf(stderr, "unknown timeout mode\n");
                return 2;
            }
            scenario.timeout_mode = mode;
        } else if (flag == "--tc-domain") {
            scenario.tc_domain =
                static_cast<Seq>(std::strtoull(args.next_value(flag.c_str()), nullptr, 10));
        } else if (flag == "--nak") {
            scenario.enable_nak = true;
        } else if (flag == "--adaptive") {
            scenario.adaptive_window = true;
        } else if (flag == "--service-us") {
            scenario.service_time =
                std::strtoll(args.next_value(flag.c_str()), nullptr, 10) * kMicrosecond;
        } else if (flag == "--queue") {
            scenario.queue_capacity =
                static_cast<std::size_t>(std::strtoull(args.next_value(flag.c_str()), nullptr, 10));
        } else if (flag == "--arrival-us") {
            scenario.arrival_interval =
                std::strtoll(args.next_value(flag.c_str()), nullptr, 10) * kMicrosecond;
        } else if (flag == "--poisson") {
            scenario.poisson_arrivals = true;
        } else if (flag == "--seed") {
            scenario.seed = std::strtoull(args.next_value(flag.c_str()), nullptr, 10);
        } else if (flag == "--reps") {
            reps = std::atoi(args.next_value(flag.c_str()));
        } else if (flag == "--csv") {
            csv = true;
        } else {
            std::fprintf(stderr, "unknown flag %s (see header comment)\n", flag.c_str());
            return 2;
        }
    }

    if (scenario.protocol == Protocol::TimeConstrained && scenario.tc_domain <= scenario.w) {
        std::fprintf(stderr,
                     "time-constrained requires --tc-domain (%llu) > --w (%llu)\n",
                     (unsigned long long)scenario.tc_domain, (unsigned long long)scenario.w);
        return 2;
    }

    if (reps > 1) {
        const auto agg = workload::run_replicated(scenario, reps);
        if (csv) {
            std::printf("protocol,w,loss,reps,completed,thr_msgs_s,acks_per_msg,retx_frac,"
                        "p50_ns,p99_ns\n");
            std::printf("%s,%llu,%.4f,%d,%d,%.2f,%.4f,%.4f,%.0f,%.0f\n",
                        workload::to_string(scenario.protocol),
                        (unsigned long long)scenario.w, scenario.loss, agg.total_runs,
                        agg.completed_runs, agg.mean_throughput, agg.mean_acks_per_msg,
                        agg.mean_retx_fraction, agg.mean_latency_p50, agg.mean_latency_p99);
        } else {
            std::printf("%s w=%llu loss=%.1f%%: %d/%d completed, mean %.1f msg/s, "
                        "%.3f acks/msg, %.1f%% retx, p50 %.2f ms, p99 %.2f ms\n",
                        workload::to_string(scenario.protocol),
                        (unsigned long long)scenario.w, scenario.loss * 100,
                        agg.completed_runs, agg.total_runs, agg.mean_throughput,
                        agg.mean_acks_per_msg, agg.mean_retx_fraction * 100,
                        agg.mean_latency_p50 / 1e6, agg.mean_latency_p99 / 1e6);
        }
        return agg.completed_runs == agg.total_runs ? 0 : 1;
    }

    const auto result = workload::run_scenario(scenario);
    if (csv) {
        std::printf("protocol,w,loss,completed,delivered,thr_msgs_s,acks_per_msg,retx_frac,"
                    "p50_ns,p99_ns,naks,fast_retx\n");
        std::printf("%s,%llu,%.4f,%d,%llu,%.2f,%.4f,%.4f,%lld,%lld,%llu,%llu\n",
                    workload::to_string(scenario.protocol), (unsigned long long)scenario.w,
                    scenario.loss, result.completed ? 1 : 0,
                    (unsigned long long)result.metrics.delivered,
                    result.metrics.throughput_msgs_per_sec(),
                    result.metrics.acks_per_delivered(), result.metrics.retx_fraction(),
                    (long long)result.metrics.latency.quantile(0.5),
                    (long long)result.metrics.latency.quantile(0.99),
                    (unsigned long long)result.metrics.naks_sent,
                    (unsigned long long)result.metrics.fast_retx);
    } else {
        std::printf("%s w=%llu: %s\n", workload::to_string(scenario.protocol),
                    (unsigned long long)scenario.w, result.metrics.summary().c_str());
        std::printf("completed: %s\n", result.completed ? "yes" : "NO");
    }
    return result.completed ? 0 : 1;
}
