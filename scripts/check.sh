#!/usr/bin/env bash
# Tier-1 gate: build and run the full test suite under ASan + UBSan.
#
#   $ scripts/check.sh            # sanitized tier-1 suite
#   $ scripts/check.sh --fast     # plain build, no sanitizers
#
# Exits nonzero on any build failure, test failure, or sanitizer report.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-sanitize
SANITIZE=ON
if [[ "${1:-}" == "--fast" ]]; then
    BUILD_DIR=build
    SANITIZE=OFF
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DBACP_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure -j"$(nproc)"

# Example smoke runs: the real-time runtime end to end.  Deterministic
# replay first, then a small wall-clock UDP transfer with a hard cap so
# a wedged event loop fails fast instead of hanging CI.
echo "== example smoke: udp_transfer --inproc =="
"$BUILD_DIR"/examples/udp_transfer --inproc --mb 1
echo "== example smoke: udp_transfer (UDP loopback, 2 s cap) =="
"$BUILD_DIR"/examples/udp_transfer --mb 0.25 --deadline-ms 2000

# Bidirectional two-process smoke: two real processes, one duplex
# endpoint each, --mb megabytes transferred in EACH direction with
# block acks piggybacked on reverse DATA.  Each endpoint verifies the
# payload bytes it receives and exits nonzero on any mismatch or an
# incomplete transfer, so either side failing fails the script.
echo "== example smoke: udp_transfer --duplex (two processes, both directions) =="
"$BUILD_DIR"/examples/udp_transfer --duplex --port 19401 --peer 19400 \
    --mb 0.25 --deadline-ms 20000 &
DUPLEX_PEER=$!
sleep 0.3
"$BUILD_DIR"/examples/udp_transfer --duplex --port 19400 --peer 19401 \
    --mb 0.25 --deadline-ms 20000
wait "$DUPLEX_PEER"

# Bench smoke: the E20 steady-state allocation gate.  The budget is an
# allocation count, not a wall-clock number, so it holds on shared and
# sanitized runners alike: after warm-up the slab event queue + pooled
# channels must not touch the heap at all (exactly 0 allocs/event).
echo "== bench smoke: E20 steady-state alloc gate (budget 0) =="
(cd "$BUILD_DIR"/bench && ./bench_e20_des_throughput --quick --check-budget 0)

# Batch transport gates.  E19 asserts the engine-level syscall
# amortization (>= 8 datagrams per sendmmsg on the clean batched path);
# E21 asserts the zero-alloc receive arena (0 steady-state allocations
# per datagram on every batched and offloaded row) and the offload
# ladder (GSO+GRO goodput >= the mmsg baseline; the ladder gate
# soft-skips itself on kernels without UDP_SEGMENT/UDP_GRO, so the
# script stays green off Linux >= 4.18/5.0).  All are count/ratio
# gates, not absolute timings, so they hold under sanitizers.
echo "== bench smoke: E19 batched-path amortization gate =="
(cd "$BUILD_DIR"/bench && ./bench_e19_net_loopback --quick)
echo "== bench smoke: E21 batch transport alloc + offload ladder gates =="
(cd "$BUILD_DIR"/bench && ./bench_e21_batch_transport --quick --check-budget 0 --check-ladder)

# Multi-session server gate.  E22 demuxes many concurrent loopback
# sessions off shared reuseport sockets; the gate holds the same
# zero-steady-state-allocation budget per received datagram once every
# session table, stash, and timer slab has reached high water.
echo "== bench smoke: E22 server scale alloc gate (budget 0) =="
(cd "$BUILD_DIR"/bench && ./bench_e22_server_scale --quick --check-budget 0)

# Self-stabilization gate.  E23 injects every chaos fault class (state
# corruption, duplication storms, reorder bursts, below-CRC payload
# corruption, crash/restart) into ba/gbn/sr and requires re-entry into
# the paper's invariants plus transfer completion, and exactly-once
# delivery across a real mid-window crash + epoch rejoin.  Budget 0 =
# converge within the harness's own window (32 timeouts), a count/flag
# gate that holds under sanitizers.
echo "== bench smoke: E23 self-stabilization convergence gate =="
(cd "$BUILD_DIR"/bench && ./bench_e23_stabilization --quick --check-budget 0)

# Fleet-vs-server gate.  E24 drives a ClientFleet (many sessions, few
# sockets) against a socket-owning Server and holds E22's zero-alloc
# budget once every flat session table, stash, and wheel level is at
# high water -- plus the hierarchical-wheel scaling check (idle polls
# over 100k armed timers must do no per-timer work).
echo "== bench smoke: E24 fleet scale alloc + timer scaling gate =="
(cd "$BUILD_DIR"/bench && ./bench_e24_fleet_scale --quick --check-budget 0)

# Duplex piggyback gate.  E25 runs bidirectional load through one
# NetEndpoint per side and requires >= 50% of acks piggybacked on
# reverse DATA, fewer total datagrams than two one-way sessions,
# deterministic replay, and the same zero-steady-state-allocation
# budget per datagram as E20-E24 -- counts and ratios, sanitizer-stable.
echo "== bench smoke: E25 duplex piggyback + alloc gate =="
(cd "$BUILD_DIR"/bench && ./bench_e25_duplex --quick --check-budget 0)

# Sweep determinism: the parallel experiment fan-out must render
# byte-identical tables at 1, 2, and 8 threads (see scripts/sweep.sh).
echo "== sweep determinism: E8 at 1/2/8 threads =="
BUILD_DIR="$BUILD_DIR" scripts/sweep.sh --verify e8
