#!/usr/bin/env bash
# Tier-1 gate: build and run the full test suite under ASan + UBSan.
#
#   $ scripts/check.sh            # sanitized tier-1 suite
#   $ scripts/check.sh --fast     # plain build, no sanitizers
#
# Exits nonzero on any build failure, test failure, or sanitizer report.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-sanitize
SANITIZE=ON
if [[ "${1:-}" == "--fast" ]]; then
    BUILD_DIR=build
    SANITIZE=OFF
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DBACP_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure -j"$(nproc)"
