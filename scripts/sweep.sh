#!/usr/bin/env bash
# Runs the sweep-style experiments (E3, E8, E17, E18) with parallel
# sharding, and optionally proves the determinism contract: identical
# output at every thread count.
#
#   $ scripts/sweep.sh                 # all four sweeps, all cores
#   $ scripts/sweep.sh e3 e18          # a subset
#   $ scripts/sweep.sh --verify        # byte-compare 1 vs 2 vs 8 threads
#
# Thread count comes from BACP_SWEEP_THREADS (default: all cores); the
# merge in bench::ParallelSweep is by job index, so the rendered tables
# are byte-identical at any setting -- which --verify asserts.

set -euo pipefail
cd "$(dirname "$0")/.."
ROOT=$(pwd)

BUILD_DIR=${BUILD_DIR:-build}
SWEEPS_ALL=(e3_throughput_vs_loss e8_window_scaling e17_offered_load e18_cross_protocol)

resolve() {
    case "$1" in
        e3|e3_throughput_vs_loss) echo e3_throughput_vs_loss ;;
        e8|e8_window_scaling)     echo e8_window_scaling ;;
        e17|e17_offered_load)     echo e17_offered_load ;;
        e18|e18_cross_protocol)   echo e18_cross_protocol ;;
        *) echo "unknown sweep: $1 (expected e3, e8, e17, or e18)" >&2; exit 2 ;;
    esac
}

VERIFY=0
SWEEPS=()
for arg in "$@"; do
    if [[ "$arg" == "--verify" ]]; then
        VERIFY=1
    else
        SWEEPS+=("$(resolve "$arg")")
    fi
done
[[ ${#SWEEPS[@]} -eq 0 ]] && SWEEPS=("${SWEEPS_ALL[@]}")

cmake --build "$BUILD_DIR" -j"$(nproc)" --target $(printf 'bench_%s ' "${SWEEPS[@]}") \
    >/dev/null

if [[ "$VERIFY" == 1 ]]; then
    # The determinism contract, enforced: the same sweep at 1, 2, and 8
    # threads must render byte-identical tables.
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    for sweep in "${SWEEPS[@]}"; do
        echo "== verify $sweep: 1 vs 2 vs 8 threads =="
        for t in 1 2 8; do
            (cd "$tmp" && BACP_SWEEP_THREADS=$t \
                "$ROOT/$BUILD_DIR/bench/bench_$sweep" > "out.$t.txt")
        done
        cmp "$tmp/out.1.txt" "$tmp/out.2.txt"
        cmp "$tmp/out.1.txt" "$tmp/out.8.txt"
        echo "   identical"
    done
    exit 0
fi

for sweep in "${SWEEPS[@]}"; do
    "$BUILD_DIR/bench/bench_$sweep"
done
