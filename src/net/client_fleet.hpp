#pragma once

/// \file client_fleet.hpp
/// Many client sessions, a handful of sockets, one poll loop.
///
/// net::Server multiplexes 100k sessions onto a few shard sockets; the
/// harness that loads it must do the same or the *client* becomes the
/// bottleneck (100k NetEngines would mean 100k sockets, 100k receive
/// arenas, and 100k poll loops).  ClientFleet is the sender-side mirror
/// of the server's shard: N NetEndpoint sessions share F connected
/// sockets, one TimerWheel, and one receive arena.  Each session's
/// egress stages onto its socket's shared SendBatch (the tick's frames
/// from every session on that socket leave in one sendmmsg), and
/// arriving acks are demuxed back by connection id -- decoded exactly
/// once, handed to the owning session as a FrameView.
///
/// Sessions never touch a socket themselves: they are driven through
/// NetEndpoint::handle_frame(), so their lazy receive arenas are never
/// built and per-session memory stays at the protocol state proper.
/// Connection ids are dense (first_conn .. first_conn + sessions - 1),
/// making demux an index, not a hash.
///
/// The admission window (max_active) ramps the fleet: at most that many
/// sessions are in flight at once, a finished session's slot admitting
/// the next unstarted one the same tick.  That bounds client-side burst
/// memory and models a realistic arrival process instead of 100k
/// simultaneous SYN-storms -- the server still holds every admitted
/// session's state concurrently, which is what bench_e24 measures.

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/metrics_table.hpp"
#include "common/types.hpp"
#include "net/net_engine.hpp"
#include "net/timer_wheel.hpp"
#include "net/transport.hpp"
#include "runtime/session_util.hpp"
#include "wire/codec.hpp"

namespace bacp::net {

/// Fleet topology and per-session protocol surface.
struct FleetConfig {
    /// Per-session protocol configuration; each session gets a copy with
    /// its connection tag, sub-seed, and immediate-flush egress applied.
    NetConfig session;
    /// Total sessions the fleet will run to completion.
    std::size_t sessions = 1;
    /// Dense connection-id range start: session i is conn first_conn + i.
    Seq first_conn = 1;
    /// Epoch every session runs (bump to model peer restarts).
    Seq epoch = 1;
    /// In-flight session bound (0 = all at once).  Finished sessions
    /// free slots for unstarted ones within the same poll.
    std::size_t max_active = 0;
    /// Shared receive-arena capacity (datagrams per recv_batch).
    std::size_t recv_batch = 256;
};

/// Fleet lifecycle counters, tabled like ServerStats.
struct FleetStats {
    std::uint64_t sessions_started = 0;
    /// Sessions that have heard back from the server at least once --
    /// the server provably opened them (benches use touched == started
    /// to mark the end of warmup: every table and driver at high water).
    std::uint64_t sessions_touched = 0;
    std::uint64_t sessions_finished = 0;
    std::uint64_t decode_errors = 0;  // pre-demux rejects
    std::uint64_t crc_errors = 0;
    std::uint64_t unknown_conn_drops = 0;  // acks outside the dense range

    using Field = MetricsField;
    static constexpr std::size_t kFieldCount = 6;

    static constexpr std::array<CounterDef<FleetStats>, kFieldCount> kCounters = {{
        {"sessions_started", &FleetStats::sessions_started},
        {"sessions_touched", &FleetStats::sessions_touched},
        {"sessions_finished", &FleetStats::sessions_finished},
        {"decode_errors", &FleetStats::decode_errors},
        {"crc_errors", &FleetStats::crc_errors},
        {"unknown_conn_drops", &FleetStats::unknown_conn_drops},
    }};

    std::array<Field, kFieldCount> fields() const { return counter_fields(*this, kCounters); }
    std::string to_json() const { return fields_json(fields()); }
};

template <runtime::EndpointCore Core>
class ClientFleet {
public:
    using Options = typename Core::Options;

    /// \p sockets are connected transports to the server (not owned;
    /// must outlive the fleet).  Session i sends through socket
    /// i % sockets.size(); the server's reply routing follows the
    /// socket's source address, so a session's acks always arrive on
    /// its own socket.
    ClientFleet(FleetConfig cfg, Options options, Clock& clock, std::vector<Transport*> sockets)
        : cfg_(std::move(cfg)),
          wheel_(std::make_unique<TimerWheel>(clock)),
          rx_(cfg_.sessions > 0 ? cfg_.recv_batch : 1, cfg_.session.max_datagram) {
        BACP_ASSERT_MSG(!sockets.empty(), "fleet needs at least one socket");
        BACP_ASSERT_MSG(cfg_.sessions > 0, "fleet needs at least one session");
        sockets_.reserve(sockets.size());
        for (Transport* t : sockets) {
            auto sock = std::make_unique<Socket>();
            sock->transport = t;
            sockets_.push_back(std::move(sock));
        }
        members_.reserve(cfg_.sessions);
        for (std::size_t i = 0; i < cfg_.sessions; ++i) {
            const Seq conn = cfg_.first_conn + static_cast<Seq>(i);
            NetConfig session_cfg = cfg_.session;
            // Every send lands in the socket batch the same tick; the
            // *socket* flush is the real batching boundary.
            session_cfg.batch = 1;
            session_cfg.seed = runtime::mix_seed(cfg_.session.seed, conn);
            session_cfg.conn = wire::Conn{conn, cfg_.epoch};
            members_.push_back(std::make_unique<Member>(
                session_cfg, options, *wheel_, sockets_[i % sockets_.size()]->staging));
        }
    }

    ClientFleet(const ClientFleet&) = delete;
    ClientFleet& operator=(const ClientFleet&) = delete;

    /// One event-loop iteration: fire due timers (retransmits stage onto
    /// the socket batches), drain every socket -- demuxing each ack to
    /// its session -- admit sessions into freed slots, and flush each
    /// socket's staged frames as one batch.  Returns units of work.
    std::size_t poll() {
        std::size_t work = wheel_->fire_due();
        for (const auto& sock : sockets_) {
            for (;;) {
                const std::size_t n = sock->transport->recv_batch(rx_);
                for (std::size_t i = 0; i < n; ++i) demux(rx_[i]);
                work += n;
                if (n < rx_.capacity()) break;
            }
        }
        work += admit();
        for (const auto& sock : sockets_) sock->staging.flush(*sock->transport);
        return work;
    }

    /// Every session started and fully acknowledged.
    bool done() const { return stats_.sessions_finished == members_.size(); }

    std::size_t session_count() const { return members_.size(); }
    std::size_t active_count() const {
        return static_cast<std::size_t>(stats_.sessions_started - stats_.sessions_finished);
    }
    std::size_t finished_count() const {
        return static_cast<std::size_t>(stats_.sessions_finished);
    }

    const FleetStats& stats() const { return stats_; }
    TimerWheel& wheel() { return *wheel_; }

    /// Socket counters only: real boundary crossings (the client half of
    /// the dgrams/syscall amortization story).
    Metrics transport_metrics() const {
        Metrics total;
        for (const auto& sock : sockets_) total += sock->transport->stats();
        return total;
    }

    /// Per-session protocol counters, summed (allocates; not hot path).
    sim::Metrics protocol_metrics() const {
        sim::Metrics total;
        for (const auto& m : members_) total.add_counters_from(m->sender.metrics());
        return total;
    }

private:
    /// Per-session egress: stages every frame onto the session's
    /// socket-shared SendBatch (SessionEgress's connected-socket twin).
    class FleetEgress final : public Transport {
    public:
        explicit FleetEgress(SendBatch& out) : out_(&out) {}

        std::size_t send_batch(
            std::span<const std::span<const std::uint8_t>> datagrams) override {
            for (const std::span<const std::uint8_t> datagram : datagrams) {
                out_->append(datagram);
                stats_.bytes_sent += datagram.size();
            }
            stats_.datagrams_sent += datagrams.size();
            return datagrams.size();
        }

        std::size_t recv_batch(RecvBatch& batch) override {
            batch.clear();  // sessions never receive through their egress
            return 0;
        }

    private:
        SendBatch* out_;
    };

    struct Socket {
        Transport* transport = nullptr;
        SendBatch staging;  // the tick's frames from every session here
    };

    struct Member {
        Member(const NetConfig& cfg, const Options& options, TimerWheel& wheel, SendBatch& out)
            : egress(out), sender(cfg, options, wheel, egress) {}
        FleetEgress egress;        // declared first: sender holds a reference
        NetEndpoint<Core> sender;
        bool touched = false;
        bool finished = false;
    };

    void demux(std::span<const std::uint8_t> bytes) {
        const wire::ViewResult result = wire::decode_view(bytes);
        if (!result.ok()) {
            ++stats_.decode_errors;
            if (result.error() == wire::DecodeError::BadCrc) ++stats_.crc_errors;
            return;  // treated as loss
        }
        const wire::FrameView& frame = result.frame();
        // Untagged replies belong to the single legacy session.
        const Seq conn = frame.conn.tagged() ? frame.conn.id : cfg_.first_conn;
        if (conn < cfg_.first_conn ||
            conn >= cfg_.first_conn + static_cast<Seq>(members_.size())) {
            ++stats_.unknown_conn_drops;
            return;
        }
        Member& m = *members_[static_cast<std::size_t>(conn - cfg_.first_conn)];
        if (!m.touched) {
            m.touched = true;
            ++stats_.sessions_touched;
        }
        m.sender.handle_frame(frame);
        // done() flips only on an ack, i.e. exactly here -- so the
        // finished count stays exact without scanning every session.
        if (!m.finished && m.sender.done()) {
            m.finished = true;
            ++stats_.sessions_finished;
        }
    }

    /// Starts unstarted sessions while the admission window has room;
    /// their initial windows stage onto the socket batches and leave
    /// with this tick's flush.
    std::size_t admit() {
        const std::size_t cap = cfg_.max_active > 0 ? cfg_.max_active : members_.size();
        std::size_t admitted = 0;
        while (next_start_ < members_.size() && active_count() < cap) {
            members_[next_start_]->sender.start();
            ++next_start_;
            ++stats_.sessions_started;
            ++admitted;
        }
        return admitted;
    }

    FleetConfig cfg_;
    std::unique_ptr<TimerWheel> wheel_;  // shared by every session
    RecvBatch rx_;                       // shared receive arena
    std::vector<std::unique_ptr<Socket>> sockets_;
    std::vector<std::unique_ptr<Member>> members_;
    std::size_t next_start_ = 0;
    FleetStats stats_;
};

}  // namespace bacp::net
