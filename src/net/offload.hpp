#pragma once

/// \file offload.hpp
/// Kernel-offload capability detection and tier selection for
/// UdpTransport.
///
/// The batch API (sendmmsg/recvmmsg) amortizes the *syscall*; the next
/// constant factors live below it, and not every kernel has them.  This
/// header names the ladder:
///
///   Mmsg   sendmmsg/recvmmsg, one mmsghdr per datagram.  The portable
///          baseline every kernel since 3.0 supports; everything else
///          falls back to it.
///   Gso    send: equal-stride runs coalesced into UDP_SEGMENT
///          super-buffers the kernel (or NIC) splits -- one mmsghdr
///          moves up to 64 datagrams.  recv: UDP_GRO, the kernel hands
///          one coalesced buffer per burst and recv_batch splits it
///          back into the arena.
///   Uring  receive via io_uring multishot recvmsg with a provided
///          buffer ring: datagrams complete into pre-published buffers
///          with no per-datagram syscall at all; the send side keeps
///          GSO.  fd() exposes the ring fd (pollable exactly like a
///          socket), so event loops need no changes.
///
/// offload_caps() probes once per process (three cheap setsockopt /
/// io_uring_setup attempts against throwaway descriptors) and caches.
/// resolve_offload() maps Auto to the best supported tier.  Every
/// feature degrades at runtime too: a GSO send rejected with
/// EINVAL/EIO permanently drops that transport to plain sends, and an
/// io_uring submission the kernel refuses drops to recvmmsg -- the
/// probe is an optimization, not a promise.

#include <cstdint>
#include <optional>
#include <string_view>

namespace bacp::net {

/// Requested (or resolved) offload tier of a UdpTransport.  Auto is
/// request-only: resolve_offload() maps it to the best supported tier.
enum class OffloadMode : std::uint8_t {
    Mmsg = 0,
    Gso = 1,
    Uring = 2,
    Auto = 255,
};

/// What the running kernel supports, probed once per process.
struct OffloadCaps {
    bool gso = false;    // UDP_SEGMENT sockopt accepted
    bool gro = false;    // UDP_GRO sockopt accepted
    bool uring = false;  // io_uring_setup + provided-buffer ring accepted
};

/// Cached process-wide capability probe.
const OffloadCaps& offload_caps();

/// Auto -> best supported tier (Uring > Gso > Mmsg); explicit requests
/// are clamped to what the kernel can actually do (e.g. Gso on a
/// GSO-less kernel resolves to Mmsg).
OffloadMode resolve_offload(OffloadMode requested);

/// Stable lowercase name ("mmsg" / "gso" / "uring" / "auto").
const char* offload_mode_name(OffloadMode mode);

/// Parses an --offload argument; nullopt on anything unrecognized.
std::optional<OffloadMode> parse_offload_mode(std::string_view text);

/// Logs the selected tier (and the full capability vector) to stderr,
/// once per process -- BENCH_* JSON records it too, this is just the
/// human breadcrumb that says which path actually ran.
void log_offload_tier_once(OffloadMode tier);

}  // namespace bacp::net
