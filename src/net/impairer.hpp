#pragma once

/// \file impairer.hpp
/// Seeded network impairment at the transport boundary.
///
/// Loopback UDP is, for our purposes, a perfect channel -- nothing to
/// retransmit, so nothing to measure.  The Impairer sits between an
/// endpoint and its Transport and re-introduces the adversary the paper
/// assumes: Bernoulli loss and duplication, uniform extra delay, and
/// probabilistic reordering (an extra delay spike applied to a single
/// copy, which lets later datagrams overtake it).  Every decision comes
/// from an explicitly seeded Rng drawn in send order, so a run over
/// InprocTransport + ManualClock is exactly reproducible from its seed.
///
/// The boundary is batch-aware: send_batch() applies the per-datagram
/// decisions to the whole batch in send order -- the exact RNG draw
/// sequence of the single-datagram path, so batch and single-shot runs
/// impair identically under the same seed -- and forwards every copy
/// that goes out *now* as one inner send_batch.  Copies given a delay
/// are parked on the endpoint's TimerWheel; when their timers mature
/// they are staged rather than sent one by one, and the next flush()
/// (called by the owning event loop right after firing the wheel, or by
/// the next send_batch) pushes the whole coalesced group through one
/// inner call.  The Impairer cancels its outstanding timers on
/// destruction so a parked closure can never fire into a dead object.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/metrics.hpp"
#include "net/timer_wheel.hpp"
#include "net/transport.hpp"

namespace bacp::net {

/// What to inflict on outgoing datagrams.  Defaults are a transparent
/// wire; ImpairSpec::lossy() is the standard bench adversary.
struct ImpairSpec {
    double loss = 0.0;       // P(drop)
    double dup = 0.0;        // P(send a second copy)
    double reorder = 0.0;    // P(a copy gets the extra reorder delay)
    SimTime delay_lo = 0;    // uniform base delay range applied to
    SimTime delay_hi = 0;    //   every copy that is not dropped
    SimTime reorder_extra = 2 * kMillisecond;  // overtaking window
    /// P(flip one random byte of a copy in flight).  Corruption draws
    /// come from a *separately seeded* stream (mix_seed(seed, 0xc0)),
    /// drawn once per forwarded copy, so turning this knob never
    /// perturbs an existing seed's loss/dup/reorder sequence.  Half the
    /// flips (a further draw on the corrupt stream) land below the CRC
    /// and the trailer is re-sealed -- the frame decodes cleanly and the
    /// corruption must be rejected or absorbed *semantically*; the other
    /// half leave the trailer stale, so the codec rejects the frame
    /// outright (BadCrc: ordinary loss to the protocol).
    double corrupt = 0.0;
    /// Deterministic loss script: drops exactly the datagrams with these
    /// 0-based offered indices, consuming no RNG draw -- the same
    /// semantics as the DES LinkSpec::Loss::Scripted, so a scenario (or
    /// the cross-runtime parity test) can stage identical loss in both
    /// worlds.  Composes with `loss`: scripted indices are checked first.
    std::vector<std::uint64_t> scripted_drops;

    /// Symmetric bench adversary: \p p loss, p/4 dup, p/4 reorder,
    /// 0.2-1 ms jitter.
    static ImpairSpec lossy(double p);
};

/// A Transport decorator: impairs, then forwards to the inner transport.
/// recv_batch() and fd() just forward, so an Impairer can be used
/// anywhere a Transport is.  Its Metrics carries both families of
/// counters: the forwarding totals (what actually reached the inner
/// transport) and the impairment decisions (offered/dropped/...).
class Impairer final : public Transport {
public:
    /// Impairs datagrams sent through \p inner.  \p wheel must outlive
    /// this object and be fired by the same thread that calls send().
    Impairer(Transport& inner, TimerWheel& wheel, ImpairSpec spec, std::uint64_t seed);
    ~Impairer() override;

    Impairer(const Impairer&) = delete;
    Impairer& operator=(const Impairer&) = delete;

    /// Loss is silent on real networks: every datagram counts as
    /// accepted, so this always returns datagrams.size().
    std::size_t send_batch(std::span<const std::span<const std::uint8_t>> datagrams) override;
    std::size_t recv_batch(RecvBatch& batch) override { return inner_->recv_batch(batch); }
    int fd() const override { return inner_->fd(); }
    OffloadMode offload_tier() const override { return inner_->offload_tier(); }

    /// Forwards every matured delayed copy staged since the last flush
    /// through one inner send_batch.
    void flush() override;

    /// True when matured delayed copies are waiting for the next
    /// flush() -- lets a server flush only the sessions that need it.
    bool has_staged() const { return !staged_.empty(); }

    /// Unified counters; same object as stats().  The name survives the
    /// TransportStats/ImpairStats merger for existing callers.
    const Metrics& impair_stats() const { return stats(); }

    /// Pre-warms the delayed-copy pool: \p slots parked copies of up to
    /// \p bytes each, plus matching wheel capacity.  Owners that know
    /// their worst-case in-flight population (NetEngine: both windows
    /// plus duplication headroom) call this at wiring time so a loss
    /// burst late in a run grows nothing -- the allocation gates snap
    /// their baseline mid-run and would otherwise count high-water
    /// trickle as steady-state work.
    void reserve_slots(std::size_t slots, std::size_t bytes);

private:
    /// True when the datagram with 0-based offered index \p index is on
    /// the loss script.
    bool scripted_drop(std::uint64_t index) const;

    /// Sends \p spans through the inner transport in one batch, keeping
    /// our forwarding stats.
    void forward_spans(std::span<const std::span<const std::uint8_t>> spans);

    /// Stages one copy for immediate forwarding or parks it on the wheel.
    void dispatch(std::span<const std::uint8_t> copy, SimTime delay);

    /// Applies the corrupt knob to one copy: returns the original span,
    /// or a mutated owned copy (valid until the end of the send_batch
    /// call that produced it).
    std::span<const std::uint8_t> maybe_corrupt(std::span<const std::uint8_t> copy);

    /// One parked delayed copy.  Slots live in a pool and are recycled
    /// through free_slots_: the payload vector keeps its capacity across
    /// reuse and the wheel handler captures only (this, index), so once
    /// the pool and every buffer reach high-water size the delayed path
    /// allocates nothing -- the same steady-state discipline as the
    /// transports (E25 gates on it with impairment enabled).
    struct Parked {
        std::vector<std::uint8_t> buf;
        TimerId timer = kInvalidTimer;
        bool live = false;
    };

    std::uint32_t acquire_slot();

    Transport* inner_;
    TimerWheel* wheel_;
    ImpairSpec spec_;
    Rng rng_;
    Rng rng_corrupt_;  // decoupled stream: see ImpairSpec::corrupt
    std::vector<Parked> parked_;
    std::vector<std::uint32_t> free_slots_;
    /// Copies going out in the current send_batch call (zero-delay) --
    /// spans into caller memory, valid for the duration of the call.
    std::vector<std::span<const std::uint8_t>> immediate_;
    /// Owned storage for corrupted copies; lives as long as immediate_
    /// (a vector-of-vectors relocation moves the inner buffers' handles,
    /// not their bytes, so spans into them survive growth).
    std::vector<std::vector<std::uint8_t>> corrupt_scratch_;
    /// Matured delayed copies awaiting the next flush().
    SendBatch staged_;
};

}  // namespace bacp::net
