#pragma once

/// \file impairer.hpp
/// Seeded network impairment at the transport boundary.
///
/// Loopback UDP is, for our purposes, a perfect channel -- nothing to
/// retransmit, so nothing to measure.  The Impairer sits between an
/// endpoint and its Transport and re-introduces the adversary the paper
/// assumes: Bernoulli loss and duplication, uniform extra delay, and
/// probabilistic reordering (an extra delay spike applied to a single
/// copy, which lets later datagrams overtake it).  Every decision comes
/// from an explicitly seeded Rng drawn in send order, so a run over
/// InprocTransport + ManualClock is exactly reproducible from its seed.
///
/// Delayed copies are parked on the endpoint's TimerWheel; the Impairer
/// cancels its outstanding timers on destruction so a parked closure can
/// never fire into a dead object.

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/timer_wheel.hpp"
#include "net/transport.hpp"

namespace bacp::net {

/// What to inflict on outgoing datagrams.  Defaults are a transparent
/// wire; ImpairSpec::lossy() is the standard bench adversary.
struct ImpairSpec {
    double loss = 0.0;       // P(drop)
    double dup = 0.0;        // P(send a second copy)
    double reorder = 0.0;    // P(a copy gets the extra reorder delay)
    SimTime delay_lo = 0;    // uniform base delay range applied to
    SimTime delay_hi = 0;    //   every copy that is not dropped
    SimTime reorder_extra = 2 * kMillisecond;  // overtaking window

    /// Symmetric bench adversary: \p p loss, p/4 dup, p/4 reorder,
    /// 0.2-1 ms jitter.
    static ImpairSpec lossy(double p);
};

struct ImpairStats {
    std::uint64_t offered = 0;    // datagrams handed to send()
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0; // extra copies created
    std::uint64_t reordered = 0;  // copies given the reorder delay
    std::uint64_t delayed = 0;    // copies parked on the timer wheel
};

/// A Transport decorator: impairs, then forwards to the inner transport.
/// Not a Transport subclass on the receive path by accident -- recv() and
/// fd() just forward, so an Impairer can be used anywhere a Transport is.
class Impairer final : public Transport {
public:
    /// Impairs datagrams sent through \p inner.  \p wheel must outlive
    /// this object and be fired by the same thread that calls send().
    Impairer(Transport& inner, TimerWheel& wheel, ImpairSpec spec, std::uint64_t seed);
    ~Impairer() override;

    Impairer(const Impairer&) = delete;
    Impairer& operator=(const Impairer&) = delete;

    bool send(std::span<const std::uint8_t> datagram) override;
    std::optional<std::vector<std::uint8_t>> recv() override { return inner_->recv(); }
    int fd() const override { return inner_->fd(); }

    const ImpairStats& impair_stats() const { return impair_stats_; }

private:
    /// Sends one copy through the inner transport, keeping our stats.
    void forward(std::span<const std::uint8_t> datagram);

    /// Forwards one copy now or parks it on the wheel.
    void dispatch(std::vector<std::uint8_t> copy, SimTime delay);

    Transport* inner_;
    TimerWheel* wheel_;
    ImpairSpec spec_;
    Rng rng_;
    ImpairStats impair_stats_;
    std::unordered_set<TimerId> live_timers_;
};

}  // namespace bacp::net
