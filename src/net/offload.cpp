#include "net/offload.hpp"

#include <linux/io_uring.h>
#include <netinet/in.h>
#include <netinet/udp.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <mutex>

// Older libcs may lack the UDP offload sockopt names even when the
// kernel honors the numbers; the values are ABI.
#ifndef UDP_SEGMENT
#define UDP_SEGMENT 103
#endif
#ifndef UDP_GRO
#define UDP_GRO 104
#endif

namespace bacp::net {

namespace {

bool probe_udp_sockopt(int optname, int value) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) return false;
    const bool ok = ::setsockopt(fd, SOL_UDP, optname, &value, sizeof(value)) == 0;
    ::close(fd);
    return ok;
}

/// A usable io_uring needs more than io_uring_setup succeeding: the
/// receive path registers a provided-buffer ring (5.19+) and arms
/// multishot recvmsg (6.0+).  Probe the first two directly; multishot
/// rejection surfaces as an immediate -EINVAL completion at runtime and
/// UringRx degrades to recvmmsg then.
bool probe_uring() {
    io_uring_params params{};
    const long ring =
        ::syscall(__NR_io_uring_setup, 4U, &params);
    if (ring < 0) return false;
    const int ring_fd = static_cast<int>(ring);

    bool ok = false;
    const std::size_t kEntries = 8;
    const std::size_t bytes = kEntries * sizeof(io_uring_buf);
    void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem != MAP_FAILED) {
        io_uring_buf_reg reg{};
        reg.ring_addr = reinterpret_cast<std::uint64_t>(mem);
        reg.ring_entries = kEntries;
        reg.bgid = 0;
        ok = ::syscall(__NR_io_uring_register, ring_fd, IORING_REGISTER_PBUF_RING,
                       &reg, 1U) == 0;
        ::munmap(mem, bytes);
    }
    ::close(ring_fd);
    return ok;
}

}  // namespace

const OffloadCaps& offload_caps() {
    static const OffloadCaps caps = [] {
        OffloadCaps c;
        // A real segment size, not a flag: UDP_SEGMENT rejects 0.
        c.gso = probe_udp_sockopt(UDP_SEGMENT, 1400);
        c.gro = probe_udp_sockopt(UDP_GRO, 1);
        c.uring = probe_uring();
        return c;
    }();
    return caps;
}

OffloadMode resolve_offload(OffloadMode requested) {
    const OffloadCaps& caps = offload_caps();
    switch (requested) {
        case OffloadMode::Auto:
            // GSO+GRO first: segmentation offload amortizes the whole
            // stack traversal, worth ~10x mmsg goodput on loopback bulk
            // (BENCH_e21), where the uring tier's syscall elision buys
            // ~2x.  io_uring stays an explicit opt-in for workloads that
            // want its readiness model over raw goodput.
            if (caps.gso || caps.gro) return OffloadMode::Gso;
            if (caps.uring) return OffloadMode::Uring;
            return OffloadMode::Mmsg;
        case OffloadMode::Uring:
            if (caps.uring) return OffloadMode::Uring;
            [[fallthrough]];  // best remaining tier
        case OffloadMode::Gso:
            if (caps.gso || caps.gro) return OffloadMode::Gso;
            [[fallthrough]];
        case OffloadMode::Mmsg:
        default:
            return OffloadMode::Mmsg;
    }
}

const char* offload_mode_name(OffloadMode mode) {
    switch (mode) {
        case OffloadMode::Mmsg: return "mmsg";
        case OffloadMode::Gso: return "gso";
        case OffloadMode::Uring: return "uring";
        case OffloadMode::Auto: return "auto";
    }
    return "?";
}

std::optional<OffloadMode> parse_offload_mode(std::string_view text) {
    if (text == "mmsg") return OffloadMode::Mmsg;
    if (text == "gso") return OffloadMode::Gso;
    if (text == "uring") return OffloadMode::Uring;
    if (text == "auto") return OffloadMode::Auto;
    return std::nullopt;
}

void log_offload_tier_once(OffloadMode tier) {
    static std::once_flag flag;
    std::call_once(flag, [tier] {
        const OffloadCaps& caps = offload_caps();
        std::fprintf(stderr,
                     "net: offload tier=%s (caps: gso=%d gro=%d io_uring=%d)\n",
                     offload_mode_name(tier), caps.gso ? 1 : 0, caps.gro ? 1 : 0,
                     caps.uring ? 1 : 0);
    });
}

}  // namespace bacp::net
