#pragma once

/// \file payload_stash.hpp
/// Zero-steady-state-allocation payload parking for receive endpoints.
///
/// A receiver stashes each DATA frame's payload until the driver
/// delivers the message, then consumes it.  The general-purpose
/// unordered_map that used to hold the stash allocates twice per
/// datagram (a node and a payload vector) -- visible, at server scale,
/// as the dominant per-datagram heap traffic.  This container replaces
/// it with open addressing over a flat slot array and a free list of
/// recycled payload buffers: once every slot and buffer has cycled at
/// the high-water mark, put()/erase() touch no heap at all (gated by
/// bench_e22 --check-budget).
///
/// Design notes:
///   - Slots store their key and are probed linearly from `key & mask`.
///     Live keys are (near-)consecutive sequence numbers spanning at
///     most a window, so the common probe length is exactly one.
///   - Deletion is backward-shift (no tombstones), keeping probe chains
///     minimal forever; the erased entry's buffer is parked for reuse.
///   - Same-key put() overwrites in place -- the latest-write-wins
///     contract the receive path relies on for reused wire values.
///   - The table grows (rehashes) only when live entries exceed half
///     the slots; with a protocol-bounded live set this happens during
///     warmup only.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace bacp::net {

class PayloadStash {
public:
    /// \p expected_live sizes the initial table (rounded up to a power
    /// of two with 2x headroom); the stash grows beyond it on demand.
    explicit PayloadStash(std::size_t expected_live = 16) {
        std::size_t cap = 8;
        while (cap < expected_live * 2) cap <<= 1;
        slots_.resize(cap);
    }

    std::size_t size() const { return live_; }
    bool empty() const { return live_ == 0; }
    std::size_t capacity() const { return slots_.size(); }

    /// Parks \p n recycled buffers of \p bytes_each capacity up front,
    /// so a receiver whose live set never exceeds \p n payloads of that
    /// size allocates nothing after construction -- without this, the
    /// buffer pool only reaches high water once loss actually builds a
    /// full window of stashed out-of-order payloads.
    void reserve_buffers(std::size_t n, std::size_t bytes_each) {
        free_buffers_.reserve(free_buffers_.size() + n);
        for (std::size_t i = 0; i < n; ++i) {
            std::vector<std::uint8_t> buffer;
            buffer.reserve(bytes_each);
            free_buffers_.push_back(std::move(buffer));
        }
    }

    /// Stashes \p payload under \p key, overwriting any previous bytes
    /// for the same key (latest write wins).
    void put(Seq key, std::span<const std::uint8_t> payload) {
        if ((live_ + 1) * 2 > slots_.size()) grow();
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = static_cast<std::size_t>(key) & mask;
        while (slots_[i].state == State::Occupied) {
            if (slots_[i].key == key) {
                slots_[i].bytes.assign(payload.begin(), payload.end());
                return;
            }
            i = (i + 1) & mask;
        }
        Slot& slot = slots_[i];
        slot.state = State::Occupied;
        slot.key = key;
        if (slot.bytes.capacity() == 0 && !free_buffers_.empty()) {
            slot.bytes = std::move(free_buffers_.back());
            free_buffers_.pop_back();
        }
        slot.bytes.assign(payload.begin(), payload.end());
        ++live_;
    }

    /// Stashed bytes for \p key, or nullptr.  Valid until the next
    /// mutation.
    const std::vector<std::uint8_t>* find(Seq key) const {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = static_cast<std::size_t>(key) & mask;
        while (slots_[i].state == State::Occupied) {
            if (slots_[i].key == key) return &slots_[i].bytes;
            i = (i + 1) & mask;
        }
        return nullptr;
    }

    /// Removes \p key, parking its buffer for reuse.  Returns false when
    /// absent.
    bool erase(Seq key) {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = static_cast<std::size_t>(key) & mask;
        while (slots_[i].state == State::Occupied) {
            if (slots_[i].key == key) break;
            i = (i + 1) & mask;
        }
        if (slots_[i].state != State::Occupied) return false;
        park(slots_[i].bytes);
        // Backward-shift deletion: pull every displaced successor in the
        // probe chain one slot back, so no tombstone is ever needed.
        std::size_t hole = i;
        std::size_t j = (i + 1) & mask;
        while (slots_[j].state == State::Occupied) {
            const std::size_t home = static_cast<std::size_t>(slots_[j].key) & mask;
            // Move j back into the hole unless j's home lies after the
            // hole in probe order (then the hole is not on j's chain).
            const bool reachable = ((j - home) & mask) >= ((j - hole) & mask);
            if (reachable) {
                slots_[hole].key = slots_[j].key;
                slots_[hole].bytes.swap(slots_[j].bytes);
                slots_[j].bytes.clear();
                hole = j;
            }
            j = (j + 1) & mask;
        }
        slots_[hole].state = State::Empty;
        --live_;
        return true;
    }

private:
    enum class State : std::uint8_t { Empty, Occupied };

    struct Slot {
        State state = State::Empty;
        Seq key = 0;
        std::vector<std::uint8_t> bytes;
    };

    void park(std::vector<std::uint8_t>& bytes) {
        if (bytes.capacity() == 0) return;
        std::vector<std::uint8_t> buffer;
        buffer.swap(bytes);
        buffer.clear();
        free_buffers_.push_back(std::move(buffer));
    }

    void grow() {
        std::vector<Slot> old;
        old.swap(slots_);
        slots_.resize(old.size() * 2);
        live_ = 0;
        const std::size_t mask = slots_.size() - 1;
        for (Slot& s : old) {
            if (s.state != State::Occupied) continue;
            std::size_t i = static_cast<std::size_t>(s.key) & mask;
            while (slots_[i].state == State::Occupied) i = (i + 1) & mask;
            slots_[i].state = State::Occupied;
            slots_[i].key = s.key;
            slots_[i].bytes = std::move(s.bytes);
            ++live_;
        }
    }

    std::vector<Slot> slots_;
    std::vector<std::vector<std::uint8_t>> free_buffers_;
    std::size_t live_ = 0;
};

}  // namespace bacp::net
