#include "net/impairer.hpp"

#include <memory>
#include <utility>

#include "common/assert.hpp"

namespace bacp::net {

ImpairSpec ImpairSpec::lossy(double p) {
    ImpairSpec spec;
    spec.loss = p;
    spec.dup = p / 4.0;
    spec.reorder = p / 4.0;
    spec.delay_lo = 200 * kMicrosecond;
    spec.delay_hi = 1 * kMillisecond;
    return spec;
}

Impairer::Impairer(Transport& inner, TimerWheel& wheel, ImpairSpec spec, std::uint64_t seed)
    : inner_(&inner), wheel_(&wheel), spec_(spec), rng_(seed) {
    BACP_ASSERT_MSG(spec.delay_lo >= 0 && spec.delay_hi >= spec.delay_lo,
                    "bad impairment delay range");
}

Impairer::~Impairer() {
    for (const TimerId id : live_timers_) wheel_->cancel(id);
}

bool Impairer::send(std::span<const std::uint8_t> datagram) {
    ++impair_stats_.offered;
    // Draw order is fixed (loss, dup, then per-copy delay/reorder) so a
    // given seed always produces the same impairment sequence.
    if (rng_.chance(spec_.loss)) {
        ++impair_stats_.dropped;
        // To the caller a dropped datagram looks sent: loss is silent on
        // real networks, and the protocol's timers are what notice it.
        return true;
    }
    int copies = 1;
    if (rng_.chance(spec_.dup)) {
        copies = 2;
        ++impair_stats_.duplicated;
    }
    for (int i = 0; i < copies; ++i) {
        SimTime delay = 0;
        if (spec_.delay_hi > 0) {
            delay = static_cast<SimTime>(rng_.uniform_in(
                static_cast<std::uint64_t>(spec_.delay_lo),
                static_cast<std::uint64_t>(spec_.delay_hi)));
        }
        if (rng_.chance(spec_.reorder)) {
            delay += spec_.reorder_extra;
            ++impair_stats_.reordered;
        }
        dispatch(std::vector<std::uint8_t>(datagram.begin(), datagram.end()), delay);
    }
    return true;
}

void Impairer::forward(std::span<const std::uint8_t> datagram) {
    if (inner_->send(datagram)) {
        ++stats_.datagrams_sent;
        stats_.bytes_sent += datagram.size();
    } else {
        ++stats_.send_drops;
    }
}

void Impairer::dispatch(std::vector<std::uint8_t> copy, SimTime delay) {
    if (delay <= 0) {
        forward(copy);
        return;
    }
    ++impair_stats_.delayed;
    // The timer id is only known after schedule_after() returns, so the
    // closure reads it through a shared slot patched in just below.
    auto slot = std::make_shared<TimerId>(kInvalidTimer);
    auto payload = std::make_shared<std::vector<std::uint8_t>>(std::move(copy));
    const TimerId id = wheel_->schedule_after(delay, [this, slot, payload]() {
        live_timers_.erase(*slot);
        forward(*payload);
    });
    *slot = id;
    live_timers_.insert(id);
}

}  // namespace bacp::net
