#include "net/impairer.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/assert.hpp"
#include "runtime/session_util.hpp"
#include "wire/crc32.hpp"

namespace bacp::net {

ImpairSpec ImpairSpec::lossy(double p) {
    ImpairSpec spec;
    spec.loss = p;
    spec.dup = p / 4.0;
    spec.reorder = p / 4.0;
    spec.delay_lo = 200 * kMicrosecond;
    spec.delay_hi = 1 * kMillisecond;
    return spec;
}

Impairer::Impairer(Transport& inner, TimerWheel& wheel, ImpairSpec spec, std::uint64_t seed)
    : inner_(&inner),
      wheel_(&wheel),
      spec_(std::move(spec)),
      rng_(seed),
      rng_corrupt_(runtime::mix_seed(seed, 0xc0)) {
    BACP_ASSERT_MSG(spec_.delay_lo >= 0 && spec_.delay_hi >= spec_.delay_lo,
                    "bad impairment delay range");
    std::sort(spec_.scripted_drops.begin(), spec_.scripted_drops.end());
}

bool Impairer::scripted_drop(std::uint64_t index) const {
    return std::binary_search(spec_.scripted_drops.begin(), spec_.scripted_drops.end(), index);
}

Impairer::~Impairer() {
    for (const Parked& slot : parked_) {
        if (slot.live) wheel_->cancel(slot.timer);
    }
}

void Impairer::reserve_slots(std::size_t slots, std::size_t bytes) {
    if (parked_.size() >= slots) return;
    parked_.reserve(slots);
    free_slots_.reserve(slots);
    while (parked_.size() < slots) {
        parked_.emplace_back();
        parked_.back().buf.reserve(bytes);
        free_slots_.push_back(static_cast<std::uint32_t>(parked_.size() - 1));
    }
    wheel_->reserve(slots);
    // Every parked copy can mature into the same flush, and every copy in
    // one offered batch can go out immediately (with a duplicate each);
    // size the staging structures for that worst case up front.
    staged_.reserve(slots, slots * bytes);
    immediate_.reserve(2 * slots);
}

std::uint32_t Impairer::acquire_slot() {
    if (!free_slots_.empty()) {
        const std::uint32_t idx = free_slots_.back();
        free_slots_.pop_back();
        return idx;
    }
    parked_.emplace_back();
    // Keep the free list's capacity in step with the pool so releasing a
    // slot never allocates either.
    free_slots_.reserve(parked_.size());
    return static_cast<std::uint32_t>(parked_.size() - 1);
}

std::size_t Impairer::send_batch(std::span<const std::span<const std::uint8_t>> datagrams) {
    // Matured delayed copies staged before this call predate the new
    // datagrams; push them out first to keep rough FIFO order.
    flush();
    immediate_.clear();
    corrupt_scratch_.clear();
    for (const std::span<const std::uint8_t> datagram : datagrams) {
        const std::uint64_t index = stats_.offered++;
        // A scripted drop consumes no RNG draw (the DES ScriptedLoss
        // semantics), so a script never perturbs the stochastic stream.
        if (scripted_drop(index)) {
            ++stats_.dropped;
            continue;
        }
        // Draw order is fixed (loss, dup, then per-copy delay/reorder) --
        // and identical whether the datagram arrives alone or mid-batch --
        // so a given seed always produces the same impairment sequence.
        if (rng_.chance(spec_.loss)) {
            ++stats_.dropped;
            // To the caller a dropped datagram looks sent: loss is silent
            // on real networks, and the protocol's timers are what notice
            // it.
            continue;
        }
        int copies = 1;
        if (rng_.chance(spec_.dup)) {
            copies = 2;
            ++stats_.duplicated;
        }
        for (int i = 0; i < copies; ++i) {
            SimTime delay = 0;
            if (spec_.delay_hi > 0) {
                delay = static_cast<SimTime>(rng_.uniform_in(
                    static_cast<std::uint64_t>(spec_.delay_lo),
                    static_cast<std::uint64_t>(spec_.delay_hi)));
            }
            if (rng_.chance(spec_.reorder)) {
                delay += spec_.reorder_extra;
                ++stats_.reordered;
            }
            dispatch(datagram, delay);
        }
    }
    // Everything leaving now goes through one inner batch -- the
    // amortization survives the impairment boundary.
    forward_spans(immediate_);
    immediate_.clear();
    corrupt_scratch_.clear();
    return datagrams.size();
}

void Impairer::flush() {
    if (staged_.empty()) return;
    forward_spans(staged_.spans());
    staged_.clear();
}

void Impairer::forward_spans(std::span<const std::span<const std::uint8_t>> spans) {
    if (spans.empty()) return;
    const std::size_t accepted = inner_->send_batch(spans);
    for (std::size_t i = 0; i < accepted; ++i) {
        stats_.bytes_sent += spans[i].size();
    }
    stats_.datagrams_sent += accepted;
    stats_.send_drops += spans.size() - accepted;
}

std::span<const std::uint8_t> Impairer::maybe_corrupt(std::span<const std::uint8_t> copy) {
    // One chance draw per forwarded copy, from the corrupt stream only:
    // the knob never touches rng_, so enabling it leaves an existing
    // seed's loss/dup/reorder sequence bit-for-bit intact.
    if (spec_.corrupt <= 0.0 || copy.size() <= 4) return copy;
    if (!rng_corrupt_.chance(spec_.corrupt)) return copy;
    ++stats_.corrupted;
    std::vector<std::uint8_t> owned(copy.begin(), copy.end());
    const std::size_t body = owned.size() - 4;  // bytes under the CRC trailer
    owned[rng_corrupt_.uniform(body)] ^=
        static_cast<std::uint8_t>(1 + rng_corrupt_.uniform(255));
    if (rng_corrupt_.chance(0.5)) {
        // Re-seal: recompute the trailer over the flipped body so the
        // codec accepts the frame and the damage travels upward, where
        // only semantic checks can catch it.  Unsealed flips keep the
        // stale trailer and die at the codec as BadCrc.
        const std::uint32_t crc = wire::crc32c({owned.data(), body});
        owned[body + 0] = static_cast<std::uint8_t>(crc);
        owned[body + 1] = static_cast<std::uint8_t>(crc >> 8);
        owned[body + 2] = static_cast<std::uint8_t>(crc >> 16);
        owned[body + 3] = static_cast<std::uint8_t>(crc >> 24);
        ++stats_.corrupted_sealed;
    }
    corrupt_scratch_.push_back(std::move(owned));
    return corrupt_scratch_.back();
}

void Impairer::dispatch(std::span<const std::uint8_t> copy, SimTime delay) {
    copy = maybe_corrupt(copy);
    if (delay <= 0) {
        // Caller memory stays valid until send_batch returns, which is
        // when immediate_ is forwarded and cleared.
        immediate_.push_back(copy);
        return;
    }
    ++stats_.delayed;
    // Park the copy in a pooled slot; the handler captures only (this,
    // index), which fits the wheel's inplace handler storage, so the
    // steady-state delayed path never touches the allocator (the slot's
    // buffer keeps its high-water capacity across reuse).
    const std::uint32_t idx = acquire_slot();
    Parked& slot = parked_[idx];
    slot.buf.assign(copy.begin(), copy.end());
    slot.live = true;
    slot.timer = wheel_->schedule_after(delay, [this, idx]() {
        Parked& fired = parked_[idx];
        // Stage rather than send: due copies coalesce into one inner
        // batch at the owner's next flush(), right after fire_due().
        staged_.append(fired.buf);
        fired.live = false;
        free_slots_.push_back(idx);
    });
}

}  // namespace bacp::net
