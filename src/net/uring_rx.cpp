#include "net/uring_rx.hpp"

#include <linux/io_uring.h>
#include <netinet/in.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/assert.hpp"

namespace bacp::net {

namespace {

long sys_io_uring_setup(unsigned entries, io_uring_params* p) {
    return ::syscall(__NR_io_uring_setup, entries, p);
}

long sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete, unsigned flags) {
    return ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, nullptr,
                     std::size_t{0});
}

long sys_io_uring_register(int fd, unsigned opcode, void* arg, unsigned nr_args) {
    return ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args);
}

std::size_t next_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
}

void* map_anon(std::size_t bytes) {
    void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    return mem == MAP_FAILED ? nullptr : mem;
}

void* map_ring(int fd, std::size_t bytes, std::uint64_t offset) {
    void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                       fd, static_cast<off_t>(offset));
    return mem == MAP_FAILED ? nullptr : mem;
}

}  // namespace

static_assert(sizeof(::msghdr) <= 64, "msg_storage_ too small for msghdr");

void* UringRx::msg() { return msg_storage_; }

UringRx::UringRx(int sock_fd, std::size_t buf_count, std::size_t buf_bytes)
    : sock_fd_(sock_fd) {
    buf_count_ = next_pow2(std::clamp<std::size_t>(buf_count, 8, 1024));
    // Each buffer holds the recvmsg completion layout: the
    // io_uring_recvmsg_out header, the reserved name bytes, then the
    // payload.  (No control bytes are reserved.)
    buf_bytes_ = sizeof(io_uring_recvmsg_out) + sizeof(sockaddr_in) + buf_bytes;
    buf_bytes_ = (buf_bytes_ + 15) & ~std::size_t{15};

    io_uring_params params{};
    params.flags = IORING_SETUP_CQSIZE;
    // CQ deeper than the buffer pool, so a full pool of completions can
    // never overflow it in the steady state.
    params.cq_entries =
        static_cast<unsigned>(std::min<std::size_t>(next_pow2(buf_count_ * 2), 4096));
    const long ring = sys_io_uring_setup(8, &params);
    if (ring < 0) return;
    ring_fd_ = static_cast<int>(ring);

    sq_bytes_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    cq_bytes_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    const bool single = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single) sq_bytes_ = cq_bytes_ = std::max(sq_bytes_, cq_bytes_);
    sq_mem_ = map_ring(ring_fd_, sq_bytes_, IORING_OFF_SQ_RING);
    cq_mem_ = single ? sq_mem_
                     : map_ring(ring_fd_, cq_bytes_, IORING_OFF_CQ_RING);
    sqe_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
    sqe_mem_ = sq_mem_ ? map_ring(ring_fd_, sqe_bytes_, IORING_OFF_SQES) : nullptr;
    if (!sq_mem_ || !cq_mem_ || !sqe_mem_) {
        teardown();
        return;
    }
    auto* sq = static_cast<std::uint8_t*>(sq_mem_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    sq_mask_ = reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_flags_ = reinterpret_cast<unsigned*>(sq + params.sq_off.flags);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    auto* cq = static_cast<std::uint8_t*>(cq_mem_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    cq_mask_ = reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes_ = cq + params.cq_off.cqes;

    // Provided-buffer ring (group 0) plus the slab it hands out.
    buf_ring_bytes_ = buf_count_ * sizeof(io_uring_buf);
    buf_ring_mem_ = map_anon(buf_ring_bytes_);
    bufs_bytes_ = buf_count_ * buf_bytes_;
    bufs_ = static_cast<std::uint8_t*>(map_anon(bufs_bytes_));
    if (!buf_ring_mem_ || !bufs_) {
        teardown();
        return;
    }
    io_uring_buf_reg reg{};
    reg.ring_addr = reinterpret_cast<std::uint64_t>(buf_ring_mem_);
    reg.ring_entries = static_cast<unsigned>(buf_count_);
    reg.bgid = 0;
    if (sys_io_uring_register(ring_fd_, IORING_REGISTER_PBUF_RING, &reg, 1) != 0) {
        teardown();
        return;
    }
    for (std::size_t i = 0; i < buf_count_; ++i) {
        recycle(static_cast<std::uint16_t>(kBidBase + i));
    }

    // The multishot recvmsg template: only the reserved name space
    // matters (the pointer fields are unused; name/control/payload all
    // land in the selected buffer).
    auto* m = static_cast<::msghdr*>(msg());
    std::memset(m, 0, sizeof(*m));
    m->msg_namelen = sizeof(sockaddr_in);
}

UringRx::~UringRx() { teardown(); }

void UringRx::teardown() {
    if (sqe_mem_) ::munmap(sqe_mem_, sqe_bytes_);
    if (cq_mem_ && cq_mem_ != sq_mem_) ::munmap(cq_mem_, cq_bytes_);
    if (sq_mem_) ::munmap(sq_mem_, sq_bytes_);
    if (buf_ring_mem_) ::munmap(buf_ring_mem_, buf_ring_bytes_);
    if (bufs_) ::munmap(bufs_, bufs_bytes_);
    sqe_mem_ = cq_mem_ = sq_mem_ = buf_ring_mem_ = nullptr;
    bufs_ = nullptr;
    if (ring_fd_ >= 0) ::close(ring_fd_);  // also unregisters the pbuf ring
    ring_fd_ = -1;
}

void UringRx::recycle(std::uint16_t bid) {
    // Deliberately NOT io_uring_buf_ring::bufs: the uapi header declares
    // that flexible array behind __DECLARE_FLEX_ARRAY, whose dummy empty
    // struct is size 1 in C++ (size 0 in C), silently shifting bufs[] to
    // offset 8 and corrupting every entry the kernel reads.  Index the
    // mapping as raw io_uring_buf entries instead; the shared tail
    // overlays entry 0's resv field (the documented layout).
    auto* entries = static_cast<io_uring_buf*>(buf_ring_mem_);
    io_uring_buf& slot = entries[br_tail_ & (buf_count_ - 1)];
    slot.addr = reinterpret_cast<std::uint64_t>(
        bufs_ + static_cast<std::size_t>(bid - kBidBase) * buf_bytes_);
    slot.len = static_cast<unsigned>(buf_bytes_);
    slot.bid = bid;
    ++br_tail_;
    // Publish: the kernel reads the tail with acquire semantics.
    __atomic_store_n(&entries[0].resv, static_cast<std::uint16_t>(br_tail_),
                     __ATOMIC_RELEASE);
}

void UringRx::arm(Metrics& stats) {
    const unsigned tail = *sq_tail_;  // sole producer: plain read
    const unsigned idx = tail & *sq_mask_;
    auto* sqe = static_cast<io_uring_sqe*>(sqe_mem_) + idx;
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = IORING_OP_RECVMSG;
    sqe->fd = sock_fd_;
    sqe->addr = reinterpret_cast<std::uint64_t>(msg());
    sqe->ioprio = IORING_RECV_MULTISHOT;
    sqe->flags = IOSQE_BUFFER_SELECT;
    sqe->buf_group = 0;
    sq_array_[idx] = idx;
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
    const long ret = sys_io_uring_enter(ring_fd_, 1, 0, 0);
    ++stats.syscalls_received;  // the tier's only recurring recv syscall
    armed_ = ret >= 0;
}

std::size_t UringRx::drain(RecvBatch& batch, Metrics& stats) {
    if (broken_) return 0;
    bool need_arm = !armed_;
    std::size_t appended = 0;
    unsigned head = *cq_head_;  // sole consumer: plain read
    const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    const unsigned mask = *cq_mask_;
    auto* cqes = static_cast<const io_uring_cqe*>(cqes_);
    while (head != tail && batch.size() < batch.capacity()) {
        const io_uring_cqe& cqe = cqes[head & mask];
        if (cqe.res < 0) {
            // -ENOBUFS terminates the multishot when the provided pool
            // runs dry; buffers recycled below make the re-arm viable.
            // An immediate -EINVAL from a kernel without multishot
            // support (< 6.0) means this path will never work: flag it
            // so the owner falls back to recvmmsg.
            if (cqe.res == -EINVAL && !ever_delivered_) broken_ = true;
            armed_ = false;
            need_arm = true;
        } else if (cqe.flags & IORING_CQE_F_BUFFER) {
            const auto bid =
                static_cast<std::uint16_t>(cqe.flags >> IORING_CQE_BUFFER_SHIFT);
            BACP_ASSERT_MSG(bid >= kBidBase && bid < kBidBase + buf_count_,
                            "io_uring completion names an unknown buffer");
            std::uint8_t* buf =
                bufs_ + static_cast<std::size_t>(bid - kBidBase) * buf_bytes_;
            const auto* out = reinterpret_cast<const io_uring_recvmsg_out*>(buf);
            // Buffer layout: out header | name (reserved size) | payload
            // (we reserve no control bytes, and out->controllen echoes
            // that).  Clamp against both the buffer and the arena slot;
            // oversize datagrams truncate exactly like recvmmsg does.
            const std::size_t header =
                sizeof(io_uring_recvmsg_out) + sizeof(sockaddr_in) + out->controllen;
            std::size_t len = out->payloadlen;
            len = std::min(len, buf_bytes_ > header ? buf_bytes_ - header : 0);
            PeerAddr peer;
            if (out->namelen >= sizeof(sockaddr_in)) {
                sockaddr_in addr;
                std::memcpy(&addr, buf + sizeof(io_uring_recvmsg_out), sizeof(addr));
                if (addr.sin_family == AF_INET) {
                    peer.ip = ntohl(addr.sin_addr.s_addr);
                    peer.port = ntohs(addr.sin_port);
                }
            }
            const std::span<std::uint8_t> slot = batch.slot(batch.size());
            const std::size_t copied = std::min(len, slot.size());
            std::memcpy(slot.data(), buf + header, copied);
            batch.push_filled(copied, peer);
            stats.bytes_received += copied;
            ++stats.datagrams_received;
            ++stats.uring_cqes;
            ever_delivered_ = true;
            recycle(bid);
            ++appended;
            if (!(cqe.flags & IORING_CQE_F_MORE)) {
                armed_ = false;
                need_arm = true;
            }
        }
        ++head;
    }
    __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
    if (head == tail &&
        (__atomic_load_n(sq_flags_, __ATOMIC_ACQUIRE) & IORING_SQ_CQ_OVERFLOW)) {
        // NODROP kernels park overflowed completions aside; an enter
        // with GETEVENTS flushes them into the now-empty CQ.
        sys_io_uring_enter(ring_fd_, 0, 0, IORING_ENTER_GETEVENTS);
        ++stats.syscalls_received;
    }
    if (need_arm && !broken_) arm(stats);
    return appended;
}

}  // namespace bacp::net
