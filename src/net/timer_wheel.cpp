#include "net/timer_wheel.hpp"

#include <utility>

#include "common/assert.hpp"

namespace bacp::net {

TimerId TimerWheel::schedule_after(SimTime delay, Handler fn) {
    BACP_ASSERT_MSG(delay >= 0, "negative delay");
    BACP_ASSERT(fn);
    return heap_.push(clock_->now() + delay, std::move(fn));
}

std::size_t TimerWheel::fire_due() {
    std::size_t fired = 0;
    while (!heap_.empty() && heap_.top_time() <= clock_->now()) {
        auto due = heap_.pop();
        due.handler();
        ++fired;
    }
    if (fired > 0) {
        ++fire_batches_;
        timers_fired_ += fired;
    }
    return fired;
}

}  // namespace bacp::net
