#include "net/timer_wheel.hpp"

#include <utility>

#include "common/assert.hpp"

namespace bacp::net {

TimerId TimerWheel::schedule_after(SimTime delay, Handler fn) {
    BACP_ASSERT_MSG(delay >= 0, "negative delay");
    BACP_ASSERT(fn != nullptr);
    const TimerId id = next_id_++;
    heap_.push(Entry{clock_->now() + delay, id, std::move(fn)});
    pending_.insert(id);
    return id;
}

void TimerWheel::cancel(TimerId id) {
    pending_.erase(id);  // lazy: the heap entry is skipped at pop time
}

void TimerWheel::skip_cancelled() const {
    while (!heap_.empty() && pending_.find(heap_.top().id) == pending_.end()) {
        heap_.pop();
    }
}

std::optional<SimTime> TimerWheel::next_deadline() const {
    skip_cancelled();
    if (heap_.empty()) return std::nullopt;
    return heap_.top().deadline;
}

std::size_t TimerWheel::fire_due() {
    std::size_t fired = 0;
    for (;;) {
        skip_cancelled();
        if (heap_.empty() || heap_.top().deadline > clock_->now()) break;
        // priority_queue::top() is const; copying the small closure out
        // is the portable way to extract it (as sim::EventQueue does).
        Entry entry = heap_.top();
        heap_.pop();
        pending_.erase(entry.id);
        entry.fn();
        ++fired;
    }
    return fired;
}

}  // namespace bacp::net
