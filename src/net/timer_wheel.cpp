#include "net/timer_wheel.hpp"

#include <utility>

#include "common/assert.hpp"

namespace bacp::net {

TimerId TimerWheel::schedule_after(SimTime delay, Handler fn) {
    BACP_ASSERT_MSG(delay >= 0, "negative delay");
    BACP_ASSERT(fn);
    const SimTime now = clock_->now();
    return wheel_.push(now, now + delay, std::move(fn));
}

std::size_t TimerWheel::fire_due() {
    const std::size_t fired = wheel_.fire_due(clock_->now());
    if (fired > 0) {
        ++fire_batches_;
        timers_fired_ += fired;
    }
    return fired;
}

}  // namespace bacp::net
