#pragma once

/// \file metrics.hpp
/// Unified transport-layer counters for the real-time runtime.
///
/// One struct covers both families of counters that used to live apart
/// (TransportStats on Transport, ImpairStats on Impairer): datagram and
/// byte totals, batch-syscall counts, and the impairment decisions.  A
/// plain transport leaves the impairment block at zero; an Impairer
/// fills both.  Keeping them in one struct means every consumer -- the
/// NetReport, bench JSON emitters, tests -- sees the same field list,
/// and fields() gives serializers a name->value view so no bench ever
/// hand-copies counter names again (bench/json_out.hpp consumes it via
/// counters_json()).
///
/// syscalls_sent / syscalls_received count *batch boundary crossings*:
/// real sendmmsg(2)/recvmmsg(2) invocations on UdpTransport, one per
/// send_batch/recv_batch call on InprocTransport (whose "syscall" is a
/// mutex-guarded queue sweep).  datagrams_sent / syscalls_sent is the
/// amortization the batch API exists to buy; E19/E21 report it.

#include <array>
#include <cstdint>
#include <string>

namespace bacp::net {

struct Metrics {
    // ---- transport counters (every Transport) -------------------------
    std::uint64_t datagrams_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t datagrams_received = 0;
    std::uint64_t bytes_received = 0;
    /// Datagrams the transport itself had to drop on send (full socket
    /// buffer / full queue), including the tail of a partial batch.
    /// Indistinguishable from channel loss to the protocol, which is
    /// exactly how it recovers.
    std::uint64_t send_drops = 0;
    /// Batch boundary crossings: sendmmsg/recvmmsg invocations on UDP,
    /// queue sweeps on the in-process pair.
    std::uint64_t syscalls_sent = 0;
    std::uint64_t syscalls_received = 0;

    // ---- kernel-offload counters (zero on the mmsg tier) --------------
    /// UDP_SEGMENT super-buffers sent (mmsghdr entries carrying a GSO
    /// cmsg) and the datagrams they covered: gso_segments /
    /// gso_sends is the kernel-side splitting factor.
    std::uint64_t gso_sends = 0;
    std::uint64_t gso_segments = 0;
    /// UDP_GRO coalesced buffers received and the datagrams recv_batch
    /// split back out of them.
    std::uint64_t gro_recvs = 0;
    std::uint64_t gro_segments = 0;
    /// Datagrams completed through the io_uring multishot path (each is
    /// one CQE, not one syscall).
    std::uint64_t uring_cqes = 0;

    // ---- timer-wheel counters (folded in by NetEngine/Server) --------
    /// fire_due() calls that fired at least one timer, and the total
    /// timers fired: timers_fired / timer_fire_batches is how well the
    /// deadline math batches expiry work per loop wakeup.
    std::uint64_t timer_fire_batches = 0;
    std::uint64_t timers_fired = 0;

    // ---- impairment counters (zero on plain transports) ---------------
    std::uint64_t offered = 0;     // datagrams handed to the impairer
    std::uint64_t dropped = 0;     // silently lost
    std::uint64_t duplicated = 0;  // extra copies created
    std::uint64_t reordered = 0;   // copies given the reorder delay
    std::uint64_t delayed = 0;     // copies parked on the timer wheel
    std::uint64_t corrupted = 0;   // copies with a byte flipped in flight
    /// The subset of `corrupted` whose CRC trailer was re-sealed after
    /// the flip: the codec accepts the frame and the corruption must be
    /// caught (or absorbed) semantically.  The remainder keep the stale
    /// trailer and are rejected as BadCrc -- ordinary loss.
    std::uint64_t corrupted_sealed = 0;

    double datagrams_per_send_syscall() const {
        return syscalls_sent > 0
                   ? static_cast<double>(datagrams_sent) / static_cast<double>(syscalls_sent)
                   : 0.0;
    }
    double datagrams_per_recv_syscall() const {
        return syscalls_received > 0 ? static_cast<double>(datagrams_received) /
                                           static_cast<double>(syscalls_received)
                                     : 0.0;
    }

    Metrics& operator+=(const Metrics& o) {
        datagrams_sent += o.datagrams_sent;
        bytes_sent += o.bytes_sent;
        datagrams_received += o.datagrams_received;
        bytes_received += o.bytes_received;
        send_drops += o.send_drops;
        syscalls_sent += o.syscalls_sent;
        syscalls_received += o.syscalls_received;
        gso_sends += o.gso_sends;
        gso_segments += o.gso_segments;
        gro_recvs += o.gro_recvs;
        gro_segments += o.gro_segments;
        uring_cqes += o.uring_cqes;
        timer_fire_batches += o.timer_fire_batches;
        timers_fired += o.timers_fired;
        offered += o.offered;
        dropped += o.dropped;
        duplicated += o.duplicated;
        reordered += o.reordered;
        delayed += o.delayed;
        corrupted += o.corrupted;
        corrupted_sealed += o.corrupted_sealed;
        return *this;
    }

    struct Field {
        const char* name;
        std::uint64_t value;
    };
    static constexpr std::size_t kFieldCount = 21;

    /// Stable name->value view of every counter, in declaration order.
    /// The single source of truth for serialization: to_json() and
    /// bench::counters_json() both walk it.
    std::array<Field, kFieldCount> fields() const {
        return {{{"datagrams_sent", datagrams_sent},
                 {"bytes_sent", bytes_sent},
                 {"datagrams_received", datagrams_received},
                 {"bytes_received", bytes_received},
                 {"send_drops", send_drops},
                 {"syscalls_sent", syscalls_sent},
                 {"syscalls_received", syscalls_received},
                 {"gso_sends", gso_sends},
                 {"gso_segments", gso_segments},
                 {"gro_recvs", gro_recvs},
                 {"gro_segments", gro_segments},
                 {"uring_cqes", uring_cqes},
                 {"timer_fire_batches", timer_fire_batches},
                 {"timers_fired", timers_fired},
                 {"offered", offered},
                 {"dropped", dropped},
                 {"duplicated", duplicated},
                 {"reordered", reordered},
                 {"delayed", delayed},
                 {"corrupted", corrupted},
                 {"corrupted_sealed", corrupted_sealed}}};
    }

    /// Flat JSON object of every counter.
    std::string to_json() const {
        std::string out = "{";
        bool first = true;
        for (const Field& f : fields()) {
            if (!first) out += ",";
            first = false;
            out += "\"";
            out += f.name;
            out += "\":";
            out += std::to_string(f.value);
        }
        out += "}";
        return out;
    }
};

/// Transitional aliases (one PR): the split stat structs are unified in
/// Metrics; out-of-tree code keeps compiling against the old names.
using TransportStats = Metrics;
using ImpairStats = Metrics;

}  // namespace bacp::net
