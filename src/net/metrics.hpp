#pragma once

/// \file metrics.hpp
/// Unified transport-layer counters for the real-time runtime.
///
/// One struct covers both families of counters that used to live apart
/// (TransportStats on Transport, ImpairStats on Impairer): datagram and
/// byte totals, batch-syscall counts, and the impairment decisions.  A
/// plain transport leaves the impairment block at zero; an Impairer
/// fills both.  Keeping them in one struct means every consumer -- the
/// NetReport, bench JSON emitters, tests -- sees the same field list,
/// and fields() gives serializers a name->value view so no bench ever
/// hand-copies counter names again (bench/json_out.hpp consumes it via
/// counters_json()).
///
/// syscalls_sent / syscalls_received count *batch boundary crossings*:
/// real sendmmsg(2)/recvmmsg(2) invocations on UdpTransport, one per
/// send_batch/recv_batch call on InprocTransport (whose "syscall" is a
/// mutex-guarded queue sweep).  datagrams_sent / syscalls_sent is the
/// amortization the batch API exists to buy; E19/E21 report it.

#include <array>
#include <cstdint>
#include <string>

#include "common/metrics_table.hpp"

namespace bacp::net {

struct Metrics {
    // ---- transport counters (every Transport) -------------------------
    std::uint64_t datagrams_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t datagrams_received = 0;
    std::uint64_t bytes_received = 0;
    /// Datagrams the transport itself had to drop on send (full socket
    /// buffer / full queue), including the tail of a partial batch.
    /// Indistinguishable from channel loss to the protocol, which is
    /// exactly how it recovers.
    std::uint64_t send_drops = 0;
    /// Batch boundary crossings: sendmmsg/recvmmsg invocations on UDP,
    /// queue sweeps on the in-process pair.
    std::uint64_t syscalls_sent = 0;
    std::uint64_t syscalls_received = 0;

    // ---- kernel-offload counters (zero on the mmsg tier) --------------
    /// UDP_SEGMENT super-buffers sent (mmsghdr entries carrying a GSO
    /// cmsg) and the datagrams they covered: gso_segments /
    /// gso_sends is the kernel-side splitting factor.
    std::uint64_t gso_sends = 0;
    std::uint64_t gso_segments = 0;
    /// UDP_GRO coalesced buffers received and the datagrams recv_batch
    /// split back out of them.
    std::uint64_t gro_recvs = 0;
    std::uint64_t gro_segments = 0;
    /// Datagrams completed through the io_uring multishot path (each is
    /// one CQE, not one syscall).
    std::uint64_t uring_cqes = 0;

    // ---- timer-wheel counters (folded in by NetEngine/Server) --------
    /// fire_due() calls that fired at least one timer, and the total
    /// timers fired: timers_fired / timer_fire_batches is how well the
    /// deadline math batches expiry work per loop wakeup.
    std::uint64_t timer_fire_batches = 0;
    std::uint64_t timers_fired = 0;

    // ---- impairment counters (zero on plain transports) ---------------
    std::uint64_t offered = 0;     // datagrams handed to the impairer
    std::uint64_t dropped = 0;     // silently lost
    std::uint64_t duplicated = 0;  // extra copies created
    std::uint64_t reordered = 0;   // copies given the reorder delay
    std::uint64_t delayed = 0;     // copies parked on the timer wheel
    std::uint64_t corrupted = 0;   // copies with a byte flipped in flight
    /// The subset of `corrupted` whose CRC trailer was re-sealed after
    /// the flip: the codec accepts the frame and the corruption must be
    /// caught (or absorbed) semantically.  The remainder keep the stale
    /// trailer and are rejected as BadCrc -- ordinary loss.
    std::uint64_t corrupted_sealed = 0;

    double datagrams_per_send_syscall() const {
        return syscalls_sent > 0
                   ? static_cast<double>(datagrams_sent) / static_cast<double>(syscalls_sent)
                   : 0.0;
    }
    double datagrams_per_recv_syscall() const {
        return syscalls_received > 0 ? static_cast<double>(datagrams_received) /
                                           static_cast<double>(syscalls_received)
                                     : 0.0;
    }

    using Field = MetricsField;
    static constexpr std::size_t kFieldCount = 21;

    /// The counter table: single source of truth for fields(),
    /// to_json(), and operator+= (every row merges by summation).
    static constexpr std::array<CounterDef<Metrics>, kFieldCount> kCounters = {{
        {"datagrams_sent", &Metrics::datagrams_sent},
        {"bytes_sent", &Metrics::bytes_sent},
        {"datagrams_received", &Metrics::datagrams_received},
        {"bytes_received", &Metrics::bytes_received},
        {"send_drops", &Metrics::send_drops},
        {"syscalls_sent", &Metrics::syscalls_sent},
        {"syscalls_received", &Metrics::syscalls_received},
        {"gso_sends", &Metrics::gso_sends},
        {"gso_segments", &Metrics::gso_segments},
        {"gro_recvs", &Metrics::gro_recvs},
        {"gro_segments", &Metrics::gro_segments},
        {"uring_cqes", &Metrics::uring_cqes},
        {"timer_fire_batches", &Metrics::timer_fire_batches},
        {"timers_fired", &Metrics::timers_fired},
        {"offered", &Metrics::offered},
        {"dropped", &Metrics::dropped},
        {"duplicated", &Metrics::duplicated},
        {"reordered", &Metrics::reordered},
        {"delayed", &Metrics::delayed},
        {"corrupted", &Metrics::corrupted},
        {"corrupted_sealed", &Metrics::corrupted_sealed},
    }};

    Metrics& operator+=(const Metrics& o) {
        add_counters(*this, o, kCounters);
        return *this;
    }

    /// Stable name->value view of every counter, in declaration order.
    /// bench::counters_json() walks it.
    std::array<Field, kFieldCount> fields() const { return counter_fields(*this, kCounters); }

    /// Flat JSON object of every counter.
    std::string to_json() const { return fields_json(fields()); }
};

}  // namespace bacp::net
