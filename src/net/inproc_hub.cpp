#include "net/inproc_hub.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace bacp::net {

namespace {

/// Synthetic client network: 10.0.0.1 with sequential ports.
constexpr std::uint32_t kClientIp = 0x0A000001;

}  // namespace

InprocHub::InprocHub(std::size_t capacity, std::size_t server_capacity)
    : shared_(std::make_shared<Shared>(capacity > 0 ? capacity : 1,
                                       server_capacity > 0 ? server_capacity
                                                           : (capacity > 0 ? capacity : 1))),
      server_(std::make_unique<ServerEndpoint>(shared_)) {}

PeerAddr InprocHub::next_client_addr() const {
    const std::scoped_lock lock(shared_->clients_mutex);
    return PeerAddr{kClientIp, shared_->next_port};
}

std::unique_ptr<Transport> InprocHub::make_client() {
    auto inbox = std::make_shared<Ring>(shared_->client_capacity);
    PeerAddr addr{kClientIp, 0};
    {
        const std::scoped_lock lock(shared_->clients_mutex);
        BACP_ASSERT_MSG(shared_->next_port != 0, "inproc hub client address space exhausted");
        addr.port = shared_->next_port++;
        shared_->clients.emplace(addr.key(), inbox);
    }
    return std::make_unique<ClientEndpoint>(shared_, std::move(inbox), addr);
}

// ---- ServerEndpoint ---------------------------------------------------

std::size_t InprocHub::ServerEndpoint::send_batch(
    std::span<const std::span<const std::uint8_t>> datagrams) {
    // No destination: a shared endpoint cannot deliver unaddressed
    // datagrams, so they are all (observable) drops.
    ++stats_.syscalls_sent;
    stats_.send_drops += datagrams.size();
    return 0;
}

std::size_t InprocHub::ServerEndpoint::send_batch_to(
    std::span<const std::span<const std::uint8_t>> datagrams,
    std::span<const PeerAddr> peers) {
    BACP_ASSERT_MSG(datagrams.size() == peers.size(), "addressed batch spans not parallel");
    if (datagrams.empty()) return 0;
    std::size_t accepted = 0;
    for (std::size_t i = 0; i < datagrams.size(); ++i) {
        std::shared_ptr<Ring> inbox;
        {
            const std::scoped_lock lock(shared_->clients_mutex);
            const auto it = shared_->clients.find(peers[i].key());
            if (it != shared_->clients.end()) inbox = it->second;
        }
        if (!inbox) {
            ++stats_.send_drops;  // unknown peer: like an unroutable address
            continue;
        }
        const std::scoped_lock lock(inbox->mutex);
        if (inbox->entries.full()) {
            ++stats_.send_drops;
            continue;
        }
        Entry entry;
        entry.peer = {};  // clients see the hub as their one connected peer
        if (!inbox->free_list.empty()) {
            entry.bytes = std::move(inbox->free_list.back());
            inbox->free_list.pop_back();
        }
        entry.bytes.assign(datagrams[i].begin(), datagrams[i].end());
        inbox->entries.push(std::move(entry));
        ++accepted;
        stats_.bytes_sent += datagrams[i].size();
    }
    ++stats_.syscalls_sent;  // one hub sweep = one boundary crossing
    stats_.datagrams_sent += accepted;
    return accepted;
}

std::size_t InprocHub::ServerEndpoint::recv_batch(RecvBatch& batch) {
    batch.clear();
    std::size_t n = 0;
    std::uint64_t bytes = 0;
    {
        Ring& ring = shared_->to_server;
        const std::scoped_lock lock(ring.mutex);
        while (n < batch.capacity() && !ring.entries.empty()) {
            Entry entry = ring.entries.pop();
            BACP_ASSERT_MSG(entry.bytes.size() <= batch.max_datagram(),
                            "inproc datagram exceeds arena slot");
            const std::span<std::uint8_t> slot = batch.slot(n);
            std::copy(entry.bytes.begin(), entry.bytes.end(), slot.begin());
            batch.push_filled(entry.bytes.size(), entry.peer);
            bytes += entry.bytes.size();
            ++n;
            entry.bytes.clear();
            if (ring.free_list.size() < ring.entries.capacity()) {
                ring.free_list.push_back(std::move(entry.bytes));
            }
        }
    }
    ++stats_.syscalls_received;
    stats_.datagrams_received += n;
    stats_.bytes_received += bytes;
    return n;
}

// ---- ClientEndpoint ---------------------------------------------------

std::size_t InprocHub::ClientEndpoint::send_batch(
    std::span<const std::span<const std::uint8_t>> datagrams) {
    if (datagrams.empty()) return 0;
    std::size_t accepted = 0;
    std::uint64_t bytes = 0;
    {
        Ring& ring = shared_->to_server;
        const std::scoped_lock lock(ring.mutex);
        for (const std::span<const std::uint8_t> datagram : datagrams) {
            if (ring.entries.full()) break;  // tail drop, like a full socket buffer
            Entry entry;
            entry.peer = addr_;
            if (!ring.free_list.empty()) {
                entry.bytes = std::move(ring.free_list.back());
                ring.free_list.pop_back();
            }
            entry.bytes.assign(datagram.begin(), datagram.end());
            ring.entries.push(std::move(entry));
            ++accepted;
            bytes += datagram.size();
        }
    }
    ++stats_.syscalls_sent;
    stats_.datagrams_sent += accepted;
    stats_.bytes_sent += bytes;
    stats_.send_drops += datagrams.size() - accepted;
    return accepted;
}

std::size_t InprocHub::ClientEndpoint::recv_batch(RecvBatch& batch) {
    batch.clear();
    std::size_t n = 0;
    std::uint64_t bytes = 0;
    {
        const std::scoped_lock lock(inbox_->mutex);
        while (n < batch.capacity() && !inbox_->entries.empty()) {
            Entry entry = inbox_->entries.pop();
            BACP_ASSERT_MSG(entry.bytes.size() <= batch.max_datagram(),
                            "inproc datagram exceeds arena slot");
            const std::span<std::uint8_t> slot = batch.slot(n);
            std::copy(entry.bytes.begin(), entry.bytes.end(), slot.begin());
            batch.push_filled(entry.bytes.size(), entry.peer);
            bytes += entry.bytes.size();
            ++n;
            entry.bytes.clear();
            if (inbox_->free_list.size() < inbox_->entries.capacity()) {
                inbox_->free_list.push_back(std::move(entry.bytes));
            }
        }
    }
    ++stats_.syscalls_received;
    stats_.datagrams_received += n;
    stats_.bytes_received += bytes;
    return n;
}

}  // namespace bacp::net
