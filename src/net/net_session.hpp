#pragma once

/// \file net_session.hpp
/// Convenience aliases binding the real-time runtime to concrete cores,
/// mirroring runtime/{abp,ba,gbn,sr,tc}_session.hpp for the DES engine.
/// All cores run here, including residue (wire-mapped) ones: the net
/// runtime keys its payload stash by wire value and translates back at
/// delivery through the cores' wire_seq() (runtime::kCoreWireMapped).
/// Every engine is duplex-capable: set reverse_count (and optionally
/// piggyback) on the NetConfig for a bidirectional transfer; the
/// defaults keep the classic one-way shape.

#include "ba/engine_core.hpp"
#include "baselines/engine_cores.hpp"
#include "net/net_engine.hpp"

namespace bacp::net {

/// SII/SIV block acknowledgment with unbounded sequence numbers.
using BaNetEngine = NetEngine<ba::EngineCore<ba::Sender, ba::Receiver>>;
/// SV block acknowledgment: bounded residues mod n = 2w on the wire.
using BoundedBaNetEngine = NetEngine<ba::EngineCore<ba::BoundedSender, ba::BoundedReceiver>>;
/// Hole-reuse variant (relaxed send guard; unbounded wire seqnums).
using HoleReuseNetEngine = NetEngine<ba::EngineCore<ba::HoleReuseSender, ba::Receiver>>;
/// Alternating-bit protocol (w = 1, FIFO).
using AbpNetEngine = NetEngine<baselines::AbpCore>;
/// Go-back-N (Options::domain = 0 is the safe unbounded mode).
using GbnNetEngine = NetEngine<baselines::GbnCore>;
/// Selective repeat (per-message conservative timers).
using SrNetEngine = NetEngine<baselines::SrCore>;
/// Time-constrained residue reuse (bounded domain N, FIFO).
using TcNetEngine = NetEngine<baselines::TcCore>;

}  // namespace bacp::net
