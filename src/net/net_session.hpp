#pragma once

/// \file net_session.hpp
/// Convenience aliases binding the real-time runtime to concrete cores,
/// mirroring runtime/{ba,gbn,sr}_session.hpp for the DES engine.  Only
/// unbounded-wire-seqnum cores are listed: the net runtime associates
/// payloads with frames by sequence number, which residue cores (bounded
/// SV, threshold counters) cannot support without a link-layer map.

#include "ba/engine_core.hpp"
#include "baselines/engine_cores.hpp"
#include "net/net_engine.hpp"

namespace bacp::net {

/// SII/SIV block acknowledgment with unbounded sequence numbers.
using BaNetEngine = NetEngine<ba::EngineCore<ba::Sender, ba::Receiver>>;
/// Go-back-N (run with Options::domain = 0, the safe unbounded mode).
using GbnNetEngine = NetEngine<baselines::GbnCore>;
/// Selective repeat (per-message conservative timers).
using SrNetEngine = NetEngine<baselines::SrCore>;

}  // namespace bacp::net
