#pragma once

/// \file clock.hpp
/// Time sources for the real-time runtime.
///
/// The net runtime measures time in the same integer nanoseconds
/// (SimTime) as the simulator, but reads them from a Clock instead of the
/// event loop: SteadyClock maps std::chrono::steady_clock onto SimTime
/// for real socket runs, and ManualClock is advanced explicitly by the
/// single-process pair driver so in-process runs are exactly reproducible
/// (the property the simulator gets for free and real time normally
/// destroys).

#include <chrono>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace bacp::net {

class Clock {
public:
    virtual ~Clock() = default;

    /// Monotone nanoseconds since an arbitrary epoch.
    virtual SimTime now() const = 0;
};

/// Wall clock: nanoseconds of std::chrono::steady_clock elapsed since
/// this object was constructed (a small epoch keeps SimTime arithmetic
/// far from overflow).
class SteadyClock final : public Clock {
public:
    SteadyClock() : epoch_(std::chrono::steady_clock::now()) {}

    SimTime now() const override {
        const auto dt = std::chrono::steady_clock::now() - epoch_;
        return std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count();
    }

private:
    std::chrono::steady_clock::time_point epoch_;
};

/// Deterministic clock: time moves only when the driver advances it
/// (to the next timer deadline, typically).  Never goes backwards.
class ManualClock final : public Clock {
public:
    SimTime now() const override { return now_; }

    void advance(SimTime delta) {
        BACP_ASSERT_MSG(delta >= 0, "clock cannot run backwards");
        now_ += delta;
    }

    /// Advances to \p t if it is in the future; no-op otherwise.
    void advance_to(SimTime t) {
        if (t > now_) now_ = t;
    }

private:
    SimTime now_ = 0;
};

}  // namespace bacp::net
