#pragma once

/// \file timer_wheel.hpp
/// The real-time TimerService implementation.
///
/// TimerWheel keys deadlines off a net::Clock and fires everything due
/// when the owning event loop calls fire_due() -- the real-time analogue
/// of the simulator executing its event queue.  Deadlines live in the
/// same common::SlabTimerHeap that backs sim::EventQueue: an indexed
/// 4-ary min-heap over pooled records with a FIFO tiebreak, eager
/// O(log n) cancellation via generation-stamped ids, and no steady-state
/// allocation.  Protocol timers are sparse and unsorted-insert heavy,
/// where a heap beats a cascading hashed wheel at our scale, and the
/// FIFO tiebreak is what keeps ManualClock runs exactly reproducible.
///
/// Semantics match the simulator's half of the TimerService contract:
/// a fired or cancelled id never becomes valid again, cancel of such an
/// id is a no-op, and equal deadlines fire in schedule order.  A handler
/// may schedule new timers freely; ones already due fire within the same
/// fire_due() call.

#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/slab_heap.hpp"
#include "common/timer_service.hpp"
#include "common/types.hpp"
#include "net/clock.hpp"
#include "net/metrics.hpp"

namespace bacp::net {

class TimerWheel final : public TimerService {
public:
    explicit TimerWheel(Clock& clock) : clock_(&clock) {}

    SimTime now() const override { return clock_->now(); }

    TimerId schedule_after(SimTime delay, Handler fn) override;

    void cancel(TimerId id) override { heap_.cancel(id); }

    /// Deadline of the earliest live timer, or nullopt when none is armed.
    std::optional<SimTime> next_deadline() const {
        if (heap_.empty()) return std::nullopt;
        return heap_.top_time();
    }

    /// Fires every timer whose deadline has been reached, in deadline
    /// (then FIFO) order; returns how many fired.
    std::size_t fire_due();

    /// Live (armed, not yet fired or cancelled) timers.
    std::size_t armed() const { return heap_.size(); }

    /// fire_due() calls that fired at least one timer, and the total
    /// timers they fired -- the ratio says how well the event loop's
    /// deadline math batches expiry work per wakeup.  NetEngine and
    /// Server fold both into their net::Metrics views
    /// (timer_fire_batches / timers_fired).
    std::uint64_t fire_batches() const { return fire_batches_; }
    std::uint64_t timers_fired() const { return timers_fired_; }

    /// Adds this wheel's counters to a metrics view.
    void add_stats(Metrics& m) const {
        m.timer_fire_batches += fire_batches_;
        m.timers_fired += timers_fired_;
    }

    /// Pre-sizes the heap for \p additional more concurrent timers
    /// beyond those currently armed.  Endpoints call this at attach with
    /// their worst-case timer count (window-bounded), so a shared wheel
    /// reaches its high-water mark before traffic does.
    void reserve(std::size_t additional) { heap_.reserve(heap_.size() + additional); }

private:
    Clock* clock_;
    SlabTimerHeap<Handler> heap_;
    std::uint64_t fire_batches_ = 0;
    std::uint64_t timers_fired_ = 0;
};

}  // namespace bacp::net
