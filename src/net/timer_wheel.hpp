#pragma once

/// \file timer_wheel.hpp
/// The real-time TimerService implementation.
///
/// TimerWheel keys deadlines off a net::Clock and fires everything due
/// when the owning event loop calls fire_due() -- the real-time analogue
/// of the simulator executing its event queue.  Deadlines live in a
/// common::HierTimerWheel: a hierarchical bucketed wheel with O(1)
/// arm/cancel and fire work proportional to the timers actually due,
/// not the armed population.  The old SlabTimerHeap backend (still the
/// right shape for the simulator's strictly-ordered event queue) paid
/// O(log n) per arm and a top-of-heap probe per poll that grew with
/// every armed timer; at 100k multiplexed server sessions the wheel is
/// what keeps an idle poll cheap.  See common/hier_wheel.hpp for the
/// design and DESIGN.md section 15 for the measurements.
///
/// Semantics match the simulator's half of the TimerService contract
/// exactly -- the wheel buckets placement, never order: a fired or
/// cancelled id never becomes valid again, cancel of such an id is a
/// no-op, and equal deadlines fire in schedule order.  A handler may
/// schedule new timers freely; ones already due fire within the same
/// fire_due() call.

#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/hier_wheel.hpp"
#include "common/timer_service.hpp"
#include "common/types.hpp"
#include "net/clock.hpp"
#include "net/metrics.hpp"

namespace bacp::net {

class TimerWheel final : public TimerService {
public:
    explicit TimerWheel(Clock& clock) : clock_(&clock) {}

    SimTime now() const override { return clock_->now(); }

    TimerId schedule_after(SimTime delay, Handler fn) override;

    void cancel(TimerId id) override { wheel_.cancel(id); }

    /// Deadline of the earliest live timer, or nullopt when none is
    /// armed.  Exact (not rounded to a bucket), so event loops can
    /// sleep to it and ManualClock tests can advance to it.
    std::optional<SimTime> next_deadline() const { return wheel_.next_deadline(); }

    /// Fires every timer whose deadline has been reached, in deadline
    /// (then FIFO) order; returns how many fired.
    std::size_t fire_due();

    /// Live (armed, not yet fired or cancelled) timers.
    std::size_t armed() const { return wheel_.size(); }

    /// fire_due() calls that fired at least one timer, and the total
    /// timers they fired -- the ratio says how well the event loop's
    /// deadline math batches expiry work per wakeup.  NetEngine and
    /// Server fold both into their net::Metrics views
    /// (timer_fire_batches / timers_fired).
    std::uint64_t fire_batches() const { return fire_batches_; }
    std::uint64_t timers_fired() const { return timers_fired_; }

    /// Cumulative structural work done by fire_due (nodes examined,
    /// staged, cascaded).  bench_e24 pins that this scales with due
    /// timers, not armed timers.
    std::uint64_t fire_work() const { return wheel_.work_ops(); }

    /// Adds this wheel's counters to a metrics view.
    void add_stats(Metrics& m) const {
        m.timer_fire_batches += fire_batches_;
        m.timers_fired += timers_fired_;
    }

    /// Pre-sizes the wheel for \p additional more concurrent timers
    /// beyond those currently armed.  Endpoints call this at attach with
    /// their worst-case timer count (window-bounded), so a shared wheel
    /// reaches its high-water mark before traffic does.
    void reserve(std::size_t additional) { wheel_.reserve(wheel_.size() + additional); }

private:
    Clock* clock_;
    HierTimerWheel<Handler> wheel_;
    std::uint64_t fire_batches_ = 0;
    std::uint64_t timers_fired_ = 0;
};

}  // namespace bacp::net
