#pragma once

/// \file timer_wheel.hpp
/// The real-time TimerService implementation.
///
/// TimerWheel keys deadlines off a net::Clock and fires everything due
/// when the owning event loop calls fire_due() -- the real-time analogue
/// of the simulator executing its event queue.  Deadlines are kept in a
/// lazy-deletion binary heap with a FIFO tiebreak (identical discipline
/// to sim::EventQueue): protocol timers are sparse and unsorted-insert
/// heavy, where a heap beats a cascading hashed wheel at our scale, and
/// the FIFO tiebreak is what keeps ManualClock runs exactly reproducible.
///
/// Semantics match the simulator's half of the TimerService contract:
/// ids are never reused, cancel of a fired/cancelled id is a no-op, and
/// equal deadlines fire in schedule order.  A handler may schedule new
/// timers freely; ones already due fire within the same fire_due() call.

#include <cstddef>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/timer_service.hpp"
#include "common/types.hpp"
#include "net/clock.hpp"

namespace bacp::net {

class TimerWheel final : public TimerService {
public:
    explicit TimerWheel(Clock& clock) : clock_(&clock) {}

    SimTime now() const override { return clock_->now(); }

    TimerId schedule_after(SimTime delay, Handler fn) override;

    void cancel(TimerId id) override;

    /// Deadline of the earliest live timer, or nullopt when none is armed.
    std::optional<SimTime> next_deadline() const;

    /// Fires every timer whose deadline has been reached, in deadline
    /// (then FIFO) order; returns how many fired.
    std::size_t fire_due();

    /// Live (armed, not yet fired or cancelled) timers.
    std::size_t armed() const { return pending_.size(); }

private:
    struct Entry {
        SimTime deadline;
        TimerId id;
        Handler fn;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const {
            if (a.deadline != b.deadline) return a.deadline > b.deadline;
            return a.id > b.id;  // FIFO within a deadline
        }
    };

    /// Drops cancelled entries from the heap top.
    void skip_cancelled() const;

    Clock* clock_;
    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<TimerId> pending_;
    TimerId next_id_ = 1;
};

}  // namespace bacp::net
