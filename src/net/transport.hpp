#pragma once

/// \file transport.hpp
/// Datagram transports for the real-time runtime.
///
/// A Transport is a bidirectional, unreliable, datagram-boundary-
/// preserving carrier -- deliberately the weakest channel the paper's
/// protocols are proved correct over.  send() is best-effort: a full
/// socket buffer or queue drops the datagram (counted, never blocking),
/// and recv() never blocks either, so a single-threaded event loop can
/// interleave I/O with timer processing.
///
/// Two implementations:
///   UdpTransport     a non-blocking IPv4/UDP socket on loopback; fd()
///                    exposes the descriptor for poll(2)-based waiting.
///   InprocTransport  a cross-connected in-process queue pair for
///                    deterministic unit tests and single-process runs
///                    (usable across two threads; a plain mutex guards
///                    each queue -- contention is nil at our rates).

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/types.hpp"

namespace bacp::net {

struct TransportStats {
    std::uint64_t datagrams_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t datagrams_received = 0;
    std::uint64_t bytes_received = 0;
    /// Datagrams the transport itself had to drop on send (full socket
    /// buffer / full queue).  Indistinguishable from channel loss to the
    /// protocol, which is exactly how it recovers.
    std::uint64_t send_drops = 0;
};

class Transport {
public:
    virtual ~Transport() = default;

    /// Enqueues one datagram; returns false when the transport dropped it.
    virtual bool send(std::span<const std::uint8_t> datagram) = 0;

    /// Non-blocking receive: one whole datagram, or nullopt when none is
    /// waiting.
    virtual std::optional<std::vector<std::uint8_t>> recv() = 0;

    /// Pollable file descriptor, or -1 when the transport has none
    /// (in-process queues).
    virtual int fd() const { return -1; }

    const TransportStats& stats() const { return stats_; }

protected:
    TransportStats stats_;
};

/// Non-blocking UDP over 127.0.0.1.
class UdpTransport final : public Transport {
public:
    /// Largest UDP payload over IPv4 (65535 - 20 IP - 8 UDP).
    static constexpr std::size_t kMaxDatagram = 65507;

    /// Binds a non-blocking socket on 127.0.0.1:\p port (0 = ephemeral).
    /// Throws std::system_error on socket failures.
    explicit UdpTransport(std::uint16_t port = 0);
    ~UdpTransport() override;

    UdpTransport(const UdpTransport&) = delete;
    UdpTransport& operator=(const UdpTransport&) = delete;

    /// Fixes the peer to 127.0.0.1:\p port (connect(2), so send/recv need
    /// no per-datagram address).
    void connect_peer(std::uint16_t port);

    std::uint16_t local_port() const { return port_; }

    bool send(std::span<const std::uint8_t> datagram) override;
    std::optional<std::vector<std::uint8_t>> recv() override;
    int fd() const override { return fd_; }

    /// Two ephemeral loopback sockets connected to each other.
    static std::pair<std::unique_ptr<UdpTransport>, std::unique_ptr<UdpTransport>> make_pair();

private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

/// In-process datagram pair: what one side sends, the other receives.
class InprocTransport final : public Transport {
public:
    /// Cross-connected pair; each direction holds at most \p capacity
    /// datagrams (tail drop beyond, like a full socket buffer).
    static std::pair<std::unique_ptr<InprocTransport>, std::unique_ptr<InprocTransport>>
    make_pair(std::size_t capacity = 4096);

    bool send(std::span<const std::uint8_t> datagram) override;
    std::optional<std::vector<std::uint8_t>> recv() override;

private:
    /// Bounded FIFO with tail drop is exactly a ring buffer; reusing
    /// RingBuffer keeps the queue allocation-free once its slots have
    /// been cycled (popped vectors return their capacity on reuse).
    struct Queue {
        explicit Queue(std::size_t capacity) : datagrams(capacity) {}
        std::mutex mutex;
        RingBuffer<std::vector<std::uint8_t>> datagrams;
    };

    InprocTransport(std::shared_ptr<Queue> inbox, std::shared_ptr<Queue> outbox)
        : inbox_(std::move(inbox)), outbox_(std::move(outbox)) {}

    std::shared_ptr<Queue> inbox_;   // peers' sends land here
    std::shared_ptr<Queue> outbox_;  // our sends land in the peer's inbox
};

/// Sleeps until one of \p fds is readable or \p max_wait elapses
/// (rounded up to whole milliseconds); negative descriptors are skipped,
/// and with no usable descriptor it just sleeps.  Returns true when a
/// descriptor was reported readable.
bool wait_readable(std::span<const int> fds, SimTime max_wait);

}  // namespace bacp::net
