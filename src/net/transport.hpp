#pragma once

/// \file transport.hpp
/// Batch-first datagram transports for the real-time runtime.
///
/// A Transport is a bidirectional, unreliable, datagram-boundary-
/// preserving carrier -- deliberately the weakest channel the paper's
/// protocols are proved correct over.  Sends are best-effort: a full
/// socket buffer or queue drops datagrams (counted, never blocking), and
/// receives never block either, so a single-threaded event loop can
/// interleave I/O with timer processing.
///
/// The API is *batch-only*: the two virtuals every transport implements
/// are send_batch() and recv_batch(), moving a whole window's worth of
/// datagrams per boundary crossing.  That is the shape the protocol
/// already produces -- NetEngine builds a window of DATA per tick and one
/// block ack covers a burst -- so per-datagram fixed costs (syscalls,
/// allocations) amortize across it.  A caller that genuinely has one
/// datagram passes a batch of one; the single-shot send()/recv() shims
/// that once papered over the old interface are gone.
///
/// Two implementations:
///   UdpTransport     a non-blocking IPv4/UDP socket on loopback;
///                    send_batch/recv_batch are one sendmmsg(2)/
///                    recvmmsg(2) each; fd() exposes the descriptor for
///                    poll(2)-based waiting.  enable_offload() climbs
///                    the kernel-offload ladder (net/offload.hpp):
///                    UDP_SEGMENT send coalescing + UDP_GRO receive
///                    splitting, then io_uring multishot receive --
///                    same interface, same arena contract, graceful
///                    fallback to plain mmsg at every step.
///   InprocTransport  a cross-connected in-process queue pair for
///                    deterministic unit tests and single-process runs;
///                    a batch is one mutex acquisition, and a free list
///                    recycles payload buffers so the steady state never
///                    allocates.

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "net/metrics.hpp"
#include "net/offload.hpp"

namespace bacp::net {

/// Largest UDP payload over IPv4 (65535 - 20 IP - 8 UDP).
inline constexpr std::size_t kMaxDatagram = 65507;

/// Source/destination address of one datagram: an IPv4 address and port
/// in host byte order.  A default-constructed PeerAddr is "no address"
/// (what a connected-socket transport records).  This is half of the
/// server's session key -- (PeerAddr, conn id) names a session -- so it
/// is a value type with equality and a perfect 48-bit key for hashing.
struct PeerAddr {
    std::uint32_t ip = 0;
    std::uint16_t port = 0;

    bool valid() const { return ip != 0 || port != 0; }

    /// Injective packing, usable directly as a hash key.
    std::uint64_t key() const { return (std::uint64_t{ip} << 16) | port; }

    friend bool operator==(const PeerAddr&, const PeerAddr&) = default;
};

/// Caller-owned, reusable receive arena for Transport::recv_batch(): one
/// contiguous byte slab of capacity x max_datagram plus a length record
/// per datagram.  All memory is allocated at construction (or on an
/// explicit reshape()); filling and draining it is allocation-free, which
/// is what lets the steady-state receive path run at exactly zero heap
/// allocations per datagram (gated by bench_e21 --check-budget).
///
/// Slots are fixed-stride: datagram i occupies bytes
/// [i * max_datagram, i * max_datagram + len[i]).  The stride makes the
/// recvmmsg iovec setup a trivial loop and keeps every slot writable up
/// to the UDP maximum, so no datagram can be truncated.
class RecvBatch {
public:
    static constexpr std::size_t kDefaultCapacity = 32;

    explicit RecvBatch(std::size_t capacity = kDefaultCapacity,
                       std::size_t max_datagram = kMaxDatagram) {
        reshape(capacity, max_datagram);
    }

    /// Reallocates the arena.  Not for the steady state.
    void reshape(std::size_t capacity, std::size_t max_datagram = kMaxDatagram) {
        capacity_ = capacity > 0 ? capacity : 1;
        max_datagram_ = max_datagram > 0 ? max_datagram : 1;
        slab_.assign(capacity_ * max_datagram_, 0);
        lens_.assign(capacity_, 0);
        peers_.assign(capacity_, PeerAddr{});
        size_ = 0;
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t max_datagram() const { return max_datagram_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    void clear() { size_ = 0; }

    /// Datagram \p i of the last recv_batch().  Precondition: i < size().
    std::span<const std::uint8_t> operator[](std::size_t i) const {
        return {slab_.data() + i * max_datagram_, lens_[i]};
    }

    /// Source address of datagram \p i, when the transport records one
    /// (unconnected UDP sockets, InprocHub server endpoints); a
    /// default-constructed PeerAddr otherwise.
    PeerAddr peer(std::size_t i) const { return peers_[i]; }

    // ---- writer side (transports only) --------------------------------

    /// Writable region of the next free slot (max_datagram bytes).
    std::span<std::uint8_t> next_slot() {
        return {slab_.data() + size_ * max_datagram_, max_datagram_};
    }

    /// Writable region of slot \p i; recvmmsg points one iovec at each.
    std::span<std::uint8_t> slot(std::size_t i) {
        return {slab_.data() + i * max_datagram_, max_datagram_};
    }

    /// Marks the next slot as holding \p len received bytes from \p peer.
    /// Slots are committed strictly in order (the fixed stride implies
    /// it).
    void push_filled(std::size_t len, PeerAddr peer = {}) {
        lens_[size_] = len;
        peers_[size_] = peer;
        ++size_;
    }

private:
    std::vector<std::uint8_t> slab_;
    std::vector<std::size_t> lens_;
    std::vector<PeerAddr> peers_;
    std::size_t capacity_ = 0;
    std::size_t max_datagram_ = 0;
    std::size_t size_ = 0;
};

class Transport;
class UringRx;

/// Builder for a send_batch() call: encoded datagrams packed back to
/// back in one reusable slab.  append_with() lets an encoder serialize
/// directly onto the slab tail (see wire::encode_*_to), so staging a
/// frame costs no allocation once the slab has reached its high-water
/// mark.  flush() hands the whole batch to a Transport in one call.
class SendBatch {
public:
    std::size_t size() const { return extents_.size(); }
    bool empty() const { return extents_.empty(); }
    std::size_t bytes() const { return slab_.size(); }

    void clear() {
        slab_.clear();
        extents_.clear();
    }

    /// Pre-sizes the builder for \p datagrams staged entries totalling up
    /// to \p bytes.  Owners that know their worst-case burst (an endpoint
    /// tick, the impairer's matured-copy backlog) call this at wiring
    /// time so the slab's high-water growth happens before the allocation
    /// gates snap their baseline, not mid-run.
    void reserve(std::size_t datagrams, std::size_t bytes) {
        slab_.reserve(bytes);
        extents_.reserve(datagrams);
        spans_scratch_.reserve(datagrams);
    }

    /// Stages a copy of \p datagram.
    void append(std::span<const std::uint8_t> datagram) {
        append_with([&](std::vector<std::uint8_t>& slab) {
            slab.insert(slab.end(), datagram.begin(), datagram.end());
        });
    }

    /// Stages whatever \p fn appends to the slab as one datagram.
    template <typename Fn>
    void append_with(Fn&& fn) {
        const std::size_t base = slab_.size();
        fn(slab_);
        extents_.push_back({base, slab_.size() - base});
    }

    /// Span-of-spans view of the staged batch, valid until the next
    /// mutation.  (Rebuilt on demand: the slab may have reallocated.)
    std::span<const std::span<const std::uint8_t>> spans() const {
        spans_scratch_.clear();
        spans_scratch_.reserve(extents_.size());
        for (const Extent& e : extents_) {
            spans_scratch_.emplace_back(slab_.data() + e.offset, e.length);
        }
        return spans_scratch_;
    }

    /// Sends every staged datagram through \p t in one send_batch call
    /// and clears the builder.  Returns how many the transport accepted
    /// (the tail of a partial send was counted in its send_drops).
    std::size_t flush(Transport& t);

private:
    struct Extent {
        std::size_t offset;
        std::size_t length;
    };
    std::vector<std::uint8_t> slab_;
    std::vector<Extent> extents_;
    mutable std::vector<std::span<const std::uint8_t>> spans_scratch_;
};

class Transport {
public:
    virtual ~Transport() = default;

    /// Sends \p datagrams in order, amortizing the boundary crossing
    /// across the batch (one sendmmsg on UDP).  Returns how many were
    /// accepted; a transport that runs out of room mid-batch counts the
    /// tail in send_drops and returns the prefix length.  Loss-silent
    /// decorators (Impairer) accept everything.
    virtual std::size_t send_batch(std::span<const std::span<const std::uint8_t>> datagrams) = 0;

    /// Non-blocking bulk receive into the caller's arena: drains up to
    /// batch.capacity() whole datagrams in one boundary crossing (one
    /// recvmmsg on UDP).  Clears \p batch first; returns batch.size().
    /// Steady-state allocation-free by contract -- the arena is caller
    /// memory and transports only reuse warmed scratch.
    virtual std::size_t recv_batch(RecvBatch& batch) = 0;

    /// Pushes out anything the transport has staged internally (an
    /// Impairer's matured delayed copies).  Default: nothing staged.
    virtual void flush() {}

    /// Pollable file descriptor, or -1 when the transport has none
    /// (in-process queues).  May change when an offload tier activates
    /// (UdpTransport swaps in the io_uring fd), so event loops should
    /// re-read it per wait rather than caching it.
    virtual int fd() const { return -1; }

    /// The kernel-offload tier this transport is currently running
    /// (never Auto); decorators forward to the transport they wrap.
    /// Everything but UdpTransport is the trivial baseline.
    virtual OffloadMode offload_tier() const { return OffloadMode::Mmsg; }

    const Metrics& stats() const { return stats_; }

protected:
    Metrics stats_;
};

inline std::size_t SendBatch::flush(Transport& t) {
    if (extents_.empty()) return 0;
    const std::size_t accepted = t.send_batch(spans());
    clear();
    return accepted;
}

/// A Transport that can also address each datagram individually: what a
/// server needs to speak to many peers over one shared socket.  The
/// unaddressed send_batch() remains available for connected use.
class AddressedTransport : public Transport {
public:
    /// Sends datagrams[i] to peers[i] (parallel spans, equal length) in
    /// one boundary crossing.  Same partial-send contract as
    /// send_batch(): returns the accepted prefix length, counting the
    /// tail in send_drops.
    virtual std::size_t send_batch_to(std::span<const std::span<const std::uint8_t>> datagrams,
                                      std::span<const PeerAddr> peers) = 0;
};

/// Builder for a send_batch_to() call: SendBatch's slab idiom plus a
/// destination per staged datagram, so one server flush can interleave
/// frames bound for many sessions and still cross the syscall boundary
/// once.  This is what keeps batching economics alive under
/// multiplexing -- per-session egress is tiny (often one ack), but the
/// *shared* batch still amortizes sendmmsg across every session that
/// spoke this tick.
class AddressedSendBatch {
public:
    std::size_t size() const { return extents_.size(); }
    bool empty() const { return extents_.empty(); }
    std::size_t bytes() const { return slab_.size(); }

    void clear() {
        slab_.clear();
        extents_.clear();
    }

    /// Stages a copy of \p datagram bound for \p peer.
    void append(PeerAddr peer, std::span<const std::uint8_t> datagram) {
        append_with(peer, [&](std::vector<std::uint8_t>& slab) {
            slab.insert(slab.end(), datagram.begin(), datagram.end());
        });
    }

    /// Stages whatever \p fn appends to the slab as one datagram bound
    /// for \p peer.
    template <typename Fn>
    void append_with(PeerAddr peer, Fn&& fn) {
        const std::size_t base = slab_.size();
        fn(slab_);
        extents_.push_back({base, slab_.size() - base, peer});
    }

    /// Sends every staged datagram through \p t in one send_batch_to
    /// call and clears the builder.  Returns how many were accepted.
    std::size_t flush(AddressedTransport& t) {
        if (extents_.empty()) return 0;
        spans_scratch_.clear();
        peers_scratch_.clear();
        spans_scratch_.reserve(extents_.size());
        peers_scratch_.reserve(extents_.size());
        for (const Extent& e : extents_) {
            spans_scratch_.emplace_back(slab_.data() + e.offset, e.length);
            peers_scratch_.push_back(e.peer);
        }
        const std::size_t accepted = t.send_batch_to(spans_scratch_, peers_scratch_);
        clear();
        return accepted;
    }

private:
    struct Extent {
        std::size_t offset;
        std::size_t length;
        PeerAddr peer;
    };
    std::vector<std::uint8_t> slab_;
    std::vector<Extent> extents_;
    std::vector<std::span<const std::uint8_t>> spans_scratch_;
    std::vector<PeerAddr> peers_scratch_;
};

/// Non-blocking UDP over 127.0.0.1.
class UdpTransport final : public AddressedTransport {
public:
    /// Alias of net::kMaxDatagram, kept for existing spellings.
    static constexpr std::size_t kMaxDatagram = net::kMaxDatagram;

    /// Binds a non-blocking socket on 127.0.0.1:\p port (0 = ephemeral).
    /// With \p reuse_port, sets SO_REUSEPORT before binding so N server
    /// shards can share one port -- the kernel then hashes each client's
    /// source address to exactly one shard's socket, which is what makes
    /// per-shard session tables race-free by construction.
    /// Throws std::system_error on socket failures.
    explicit UdpTransport(std::uint16_t port = 0, bool reuse_port = false);
    ~UdpTransport() override;

    UdpTransport(const UdpTransport&) = delete;
    UdpTransport& operator=(const UdpTransport&) = delete;

    /// Fixes the peer to 127.0.0.1:\p port (connect(2), so send/recv need
    /// no per-datagram address).
    void connect_peer(std::uint16_t port);

    std::uint16_t local_port() const { return port_; }

    /// Best-effort SO_RCVBUF/SO_SNDBUF request (the kernel clamps to its
    /// rmem/wmem limits; failures are ignored).  A server shard absorbing
    /// synchronized bursts from hundreds of sessions needs more than the
    /// default receive buffer, or the loss it recovers from is self-made.
    void request_buffer_sizes(std::size_t bytes);

    std::size_t send_batch(std::span<const std::span<const std::uint8_t>> datagrams) override;
    std::size_t send_batch_to(std::span<const std::span<const std::uint8_t>> datagrams,
                              std::span<const PeerAddr> peers) override;
    std::size_t recv_batch(RecvBatch& batch) override;

    /// The socket fd -- or, once the io_uring tier is active, the ring
    /// fd (pollable the same way: POLLIN when completions are pending).
    int fd() const override;

    /// Climbs the offload ladder (resolving Auto against the probed
    /// capabilities): Gso turns on UDP_SEGMENT send coalescing and the
    /// UDP_GRO receive split; Uring keeps the GSO send and arms the
    /// io_uring multishot receive on first recv_batch.  Call before
    /// traffic, not mid-stream (the GRO sockopt changes what the kernel
    /// delivers).  Unsupported features silently stay on the mmsg
    /// baseline; offload_tier() reports what actually runs, including
    /// later runtime demotions (a GSO EINVAL/EIO, an io_uring refusal).
    void enable_offload(OffloadMode mode);
    OffloadMode offload_tier() const override;

    /// Test hook: the next GSO-carrying sendmmsg behaves as if the
    /// kernel rejected it with EINVAL, exercising the disable-and-
    /// resend-plain fallback without needing a GSO-less kernel.
    void fail_next_gso_send_for_test() { gso_fail_injected_ = true; }

    /// Two ephemeral loopback sockets connected to each other.
    static std::pair<std::unique_ptr<UdpTransport>, std::unique_ptr<UdpTransport>> make_pair();

private:
    /// Reusable mmsghdr/iovec/sockaddr/cmsg arrays for
    /// sendmmsg/recvmmsg plus the GSO run map and GRO staging buffers;
    /// sized to the largest batch seen, so the steady state never
    /// allocates.  Defined in the .cpp to keep <sys/socket.h> out of
    /// this header.
    struct Scratch;

    /// Shared sendmmsg drain loop behind send_batch / send_batch_to
    /// (headers are already staged in scratch when this runs).
    std::size_t drain_sendmmsg(std::span<const std::span<const std::uint8_t>> datagrams);

    /// GSO path: coalesces equal-stride runs into UDP_SEGMENT
    /// super-buffer entries and drains them; empty \p peers means the
    /// connected socket.  Falls back (permanently) to the plain path on
    /// a kernel rejection.
    std::size_t send_gso(std::span<const std::span<const std::uint8_t>> datagrams,
                         std::span<const PeerAddr> peers);

    /// GRO path: recvmmsg into full-size staging buffers, split each
    /// coalesced payload back into the caller's fixed-stride arena.
    /// Staged segments that overflow the arena carry over to the next
    /// call (no syscall needed until the staging is drained).
    std::size_t recv_gro(RecvBatch& batch);
    void drain_gro_staging(RecvBatch& batch);

    bool gso_active() const { return gso_on_ && !gso_failed_; }

    int fd_ = -1;
    std::uint16_t port_ = 0;
    std::unique_ptr<Scratch> scratch_;

    OffloadMode tier_ = OffloadMode::Mmsg;  // resolved request
    bool gso_on_ = false;      // UDP_SEGMENT coalescing requested + supported
    bool gro_on_ = false;      // UDP_GRO sockopt set; recv must use staging
    bool gso_failed_ = false;  // kernel rejected a GSO send: plain forever
    bool gso_fail_injected_ = false;
    bool uring_failed_ = false;  // setup or multishot refused: recvmmsg forever
    std::unique_ptr<UringRx> uring_;  // built lazily on first recv_batch
};

/// In-process datagram pair: what one side sends, the other receives.
class InprocTransport final : public Transport {
public:
    /// Cross-connected pair; each direction holds at most \p capacity
    /// datagrams (tail drop beyond, like a full socket buffer).
    static std::pair<std::unique_ptr<InprocTransport>, std::unique_ptr<InprocTransport>>
    make_pair(std::size_t capacity = 4096);

    std::size_t send_batch(std::span<const std::span<const std::uint8_t>> datagrams) override;
    std::size_t recv_batch(RecvBatch& batch) override;

    /// Pre-warms this endpoint's send-side free list with \p count
    /// recycled buffers of \p bytes capacity each.  Without it the pool
    /// grows on demand and buffers first used for small frames get
    /// regrown the first time they recycle under a larger one -- high-
    /// water trickle the allocation gates would count as steady-state
    /// work.  Call on both endpoints of a pair to cover both directions.
    void reserve_buffers(std::size_t count, std::size_t bytes);

private:
    /// Bounded FIFO with tail drop is exactly a ring buffer.  The free
    /// list recycles payload buffers across the queue: recv_batch copies
    /// a datagram into the caller's arena and parks the emptied vector;
    /// send_batch refills a parked vector instead of allocating.  Once
    /// every buffer has cycled at the high-water payload size, the pair
    /// is allocation-free.
    struct Queue {
        explicit Queue(std::size_t capacity) : datagrams(capacity) {}
        std::mutex mutex;
        RingBuffer<std::vector<std::uint8_t>> datagrams;
        std::vector<std::vector<std::uint8_t>> free_list;
    };

    InprocTransport(std::shared_ptr<Queue> inbox, std::shared_ptr<Queue> outbox)
        : inbox_(std::move(inbox)), outbox_(std::move(outbox)) {}

    std::shared_ptr<Queue> inbox_;   // peers' sends land here
    std::shared_ptr<Queue> outbox_;  // our sends land in the peer's inbox
};

/// wait_readable() stages up to this many descriptors on the stack; a
/// larger span falls back to one (cold, off the steady path) heap
/// allocation instead of asserting, so callers may pass any number.
inline constexpr std::size_t kWaitFdStackCapacity = 64;

/// Sleeps until one of \p fds is readable or \p max_wait elapses
/// (rounded up to whole milliseconds); negative descriptors are skipped,
/// and with no usable descriptor it just sleeps.  Returns true when a
/// descriptor was reported readable.
bool wait_readable(std::span<const int> fds, SimTime max_wait);

}  // namespace bacp::net
