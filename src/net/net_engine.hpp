#pragma once

/// \file net_engine.hpp
/// The real-time transport runtime: transport adapters over
/// runtime::EndpointDriver, driving the same EndpointCore machines the
/// discrete-event runtime::Engine drives -- over actual datagrams and a
/// wall (or manual) clock.
///
/// Where the DES engine adapts the shared driver to a simulator and two
/// SimChannels, a real network forces a split at the channel: NetSender
/// and NetReceiver each embed their own EndpointDriver over a full core
/// (a core bundles both protocol halves; each endpoint simply exercises
/// only its half -- the halves share no state), supply a TimerWheel as
/// the driver's TimerService, and exchange frames serialized through
/// wire::codec.  All timeout disciplines, window pumping, ack policy, and
/// resend selection live in the driver (runtime/endpoint_driver.hpp);
/// these classes only encode/decode, batch, stash payloads, and count
/// transport-level anomalies.  Every datagram is CRC-32C checked on
/// receive; a frame that fails decode is counted and dropped, i.e. fed to
/// the loss tolerance the protocol already has -- exactly the channel
/// model the paper's proof assumes.
///
/// This environment advertises kHasOracle = false: real time cannot
/// prove quiescence, so the driver approximates the oracle timeout modes
/// with its quiescence timer (a full conservative timeout of silence)
/// instead of the DES's provable idle point.
///
/// NetEngine<Core> composes a sender and receiver endpoint over a
/// transport pair (UDP loopback or in-process queues) with seeded
/// impairment, and drives a fixed-size transfer of pattern payloads to
/// completion.  With --inproc (InprocTransport + ManualClock) a run is a
/// pure function of its seed: time advances only to the next timer
/// deadline, so two runs deliver byte-identical traffic.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/timer_service.hpp"
#include "common/types.hpp"
#include "net/clock.hpp"
#include "net/impairer.hpp"
#include "net/payload_stash.hpp"
#include "net/timer_wheel.hpp"
#include "net/transport.hpp"
#include "protocol/message.hpp"
#include "runtime/endpoint_core.hpp"
#include "runtime/endpoint_driver.hpp"
#include "runtime/session_util.hpp"
#include "runtime/timeout_mode.hpp"
#include "sim/metrics.hpp"
#include "wire/codec.hpp"

namespace bacp::net {

/// Configuration of a real-time transfer: the shared runtime::EngineConfig
/// surface (window, count, timeout discipline, ack policy, seed, ...)
/// plus the knobs only a real network introduces.  Core-specific knobs
/// ride in the core's own Options struct, as with the DES engine.
///
/// Of the inherited fields, the link specs are overridden by
/// engine_config() (loss and delay live in the real channel here, via
/// `impair`), and the DES-only knobs (max_events, record_trace,
/// check_invariants) are ignored.
struct NetConfig : runtime::EngineConfig {
    NetConfig() { deadline = 60 * kSecond; }  // run cap, in clock time

    std::size_t payload_size = 1024;  // bytes of pattern payload per message
    /// Assumed bound on datagram time-in-transit (the paper's channel
    /// lifetime L).  Feeds the cores' time-based rules (send horizon, NAK
    /// one-copy) and the derived timeout.  Generous for loopback plus the
    /// impairment delays.
    SimTime link_lifetime = 50 * kMillisecond;
    ImpairSpec impair;  // data direction (and ack direction, unless overridden)
    /// Ack-direction impairment override; nullopt applies `impair`
    /// symmetrically.  Lets a scenario impair one direction only (the
    /// cross-runtime parity test scripts data-channel drops this way).
    std::optional<ImpairSpec> impair_ack;
    /// Datagrams per transport batch: the RecvBatch arena capacity and
    /// the flush granularity of the tick's staged sends.  0 sizes it
    /// from the window -- the batch the protocol naturally builds.
    /// 1 degenerates to the single-shot path (one syscall per datagram),
    /// kept as the A/B baseline E19 measures against.
    std::size_t batch = 0;
    /// Largest datagram this endpoint expects (the RecvBatch arena
    /// stride).  The UDP maximum is always safe; a server hosting
    /// thousands of sessions shrinks it to its known frame size so
    /// per-session arenas stay cheap.
    std::size_t max_datagram = kMaxDatagram;
    /// Connection tag stamped on every frame this endpoint encodes.
    /// Untagged (the default) selects the byte-identical v1 wire format;
    /// a server session sets it so its acks come back tagged for demux
    /// at a multiplexed peer.
    wire::Conn conn;
    /// Kernel-offload tier for the UDP transports (net/offload.hpp):
    /// Mmsg keeps the portable sendmmsg/recvmmsg baseline, Gso/Uring
    /// climb the ladder, Auto takes the best the kernel supports.
    /// Ignored in Inproc mode (no kernel below the queues).
    OffloadMode offload = OffloadMode::Mmsg;

    std::size_t effective_batch() const {
        if (batch > 0) return batch;
        return std::max<std::size_t>(static_cast<std::size_t>(w), 1);
    }

    /// The EngineConfig handed to the drivers and core constructors: the
    /// inherited fields verbatim, with the links described as
    /// lossless-with-lifetime (cores and the derived timeout only consult
    /// max_lifetime(); actual loss/delay happen in the Impairer).
    runtime::EngineConfig engine_config() const {
        runtime::EngineConfig e = *this;
        e.data_link = runtime::LinkSpec::lossless(0, link_lifetime);
        e.ack_link = runtime::LinkSpec::lossless(0, link_lifetime);
        return e;
    }

    /// Retransmission timeout: explicit, or the conservative bound
    /// L_SR + L_RS + max ack delay + margin (the one shared formula,
    /// runtime::derived_timeout).
    SimTime effective_timeout() const { return runtime::effective_timeout(engine_config()); }
};

/// Deterministic payload for message \p seq: a splitmix64 stream keyed by
/// the (true) sequence number, so the receiver can verify every delivered
/// byte without any side channel.  The fill form writes into caller
/// memory (the batch slab / a reused scratch) and is what the hot paths
/// use.
inline void pattern_fill(Seq seq, std::span<std::uint8_t> payload) {
    std::uint64_t state = seq ^ 0xba5eba115eedULL;
    std::size_t i = 0;
    while (i < payload.size()) {
        const std::uint64_t word = splitmix64(state);
        for (int b = 0; b < 8 && i < payload.size(); ++b, ++i) {
            payload[i] = static_cast<std::uint8_t>(word >> (8 * b));
        }
    }
}

inline std::vector<std::uint8_t> pattern_payload(Seq seq, std::size_t size) {
    std::vector<std::uint8_t> payload(size);
    pattern_fill(seq, payload);
    return payload;
}

/// Sending endpoint: the transport environment for the sender half of a
/// core's driver.  poll() is the event loop body -- fire due timers,
/// drain arriving datagrams -- and must be called from one thread only.
template <runtime::EndpointCore Core>
class NetSender {
public:
    using Options = typename Core::Options;

    /// \p wheel is this endpoint's (and, when impaired, its Impairer's)
    /// timer wheel; poll() fires it, so both must live on one thread.
    NetSender(const NetConfig& cfg, Options options, TimerWheel& wheel, Transport& transport)
        : cfg_(cfg),
          wheel_(wheel),
          transport_(&transport),
          driver_(cfg_.engine_config(), std::move(options), *this) {
        // Worst case live timers: one per outstanding message (per-message
        // mode) plus the simple/quiescence/pacing singletons.  Reserving
        // now means a loss burst late in a run grows nothing.
        wheel_.reserve(static_cast<std::size_t>(cfg_.w) + 4);
    }

    NetSender(const NetSender&) = delete;
    NetSender& operator=(const NetSender&) = delete;

    /// Opens the faucet.  Call once before the poll loop.
    void start() {
        driver_.start();
        tx_batch_.flush(*transport_);
    }

    /// One event-loop iteration: fires due timers, pushes out matured
    /// delayed copies, then handles every datagram currently readable --
    /// drained a whole arena at a time -- and finally flushes everything
    /// the tick staged (new sends, retransmits) as one batch.  Returns
    /// how many units of work (timers + datagrams) were processed.
    std::size_t poll() {
        std::size_t work = wheel_.fire_due();
        transport_->flush();  // delayed impairer copies matured above
        RecvBatch& rx = rx_batch();
        for (;;) {
            const std::size_t n = transport_->recv_batch(rx);
            for (std::size_t i = 0; i < n; ++i) handle_datagram(rx[i]);
            work += n;
            if (n < rx.capacity()) break;
        }
        tx_batch_.flush(*transport_);
        return work;
    }

    /// Feeds one already-decoded frame to the driver -- the entry point
    /// a server uses after demuxing a shared socket's arena (each
    /// datagram is decoded exactly once, by the demux).  poll() routes
    /// its own datagrams through here too.
    void handle_frame(const wire::FrameView& frame) {
        switch (frame.type) {
            case wire::FrameType::Ack:
                driver_.handle_ack(proto::Ack{frame.lo, frame.hi});
                break;
            case wire::FrameType::Nak:
                driver_.handle_nak(proto::Nak{frame.seq});
                break;
            default:
                // DATA at the sender endpoint of a one-way transfer: a
                // frame we never asked for.  Count it as an anomaly.
                ++driver_.metrics_mut().decode_errors;
                break;
        }
    }

    /// Every message sent and acknowledged.
    bool done() const { return driver_.all_sent_and_acked(); }

    TimerWheel& wheel() { return wheel_; }
    const sim::Metrics& metrics() const { return driver_.metrics(); }
    SimTime timeout_value() const { return driver_.timeout_value(); }
    const Core& core() const { return driver_.core(); }

    /// Attach (or detach, with nullptr) a protocol-decision recorder.
    void set_decision_log(runtime::DecisionLog* log) { driver_.set_decision_log(log); }

    // ---- Environment hooks (called by EndpointDriver) ----------------------
    // Public because the driver is a distinct type; not user API.

    /// Real time cannot prove quiescence; the driver substitutes its
    /// silence-timer approximation for the oracle modes.
    static constexpr bool kHasOracle = false;

    TimerService& timer_service() { return wheel_; }
    SimTime now() const { return wheel_.now(); }

    void send_data(const proto::Data& msg, Seq true_seq, bool /*retx*/) {
        // Stage the frame on the tick's batch; poll() flushes the whole
        // window in one send_batch.  The payload pattern is keyed by the
        // true sequence number (the receiver re-derives it at delivery),
        // while the frame carries the core's wire value -- identical for
        // unbounded cores, a residue for bounded ones.  The pattern is
        // generated into a reused scratch and encoded straight onto the
        // slab -- no per-frame allocation once both are at high-water
        // mark.
        payload_scratch_.resize(cfg_.payload_size);
        pattern_fill(true_seq, payload_scratch_);
        tx_batch_.append_with([&](std::vector<std::uint8_t>& slab) {
            wire::encode_data_to(slab, msg.seq, payload_scratch_, wire::kFlagNone,
                                 wire::kNoStream, cfg_.conn);
        });
        if (cfg_.effective_batch() <= 1) tx_batch_.flush(*transport_);
    }

    void send_ack(const proto::Ack&, runtime::AckKind) {
        BACP_ASSERT_MSG(false, "sender endpoint produced an ack");
    }
    void send_nak(const proto::Nak&) {
        BACP_ASSERT_MSG(false, "sender endpoint produced a nak");
    }
    void on_delivery(Seq) { BACP_ASSERT_MSG(false, "sender endpoint delivered data"); }
    void after_step() {}

private:
    void handle_datagram(std::span<const std::uint8_t> bytes) {
        const wire::ViewResult result = wire::decode_view(bytes);
        if (!result.ok()) {
            ++driver_.metrics_mut().decode_errors;
            if (result.error() == wire::DecodeError::BadCrc) ++driver_.metrics_mut().crc_errors;
            return;  // treated as loss
        }
        handle_frame(result.frame());
    }

    /// The receive arena, built on first poll(): a server-driven session
    /// never polls its own transport, so it never pays for one.
    RecvBatch& rx_batch() {
        if (!rx_batch_) {
            rx_batch_ =
                std::make_unique<RecvBatch>(cfg_.effective_batch(), cfg_.max_datagram);
        }
        return *rx_batch_;
    }

    NetConfig cfg_;
    TimerWheel& wheel_;
    Transport* transport_;
    std::unique_ptr<RecvBatch> rx_batch_;        // lazy: see rx_batch()
    SendBatch tx_batch_;                         // the tick's staged frames
    std::vector<std::uint8_t> payload_scratch_;  // pattern bytes, reused
    runtime::EndpointDriver<Core, NetSender> driver_;  // last: uses members above
};

/// Receiving endpoint: the transport environment for the receiver half of
/// a core's driver -- reassembles and verifies pattern payloads while the
/// driver speaks the ack policy.
template <runtime::EndpointCore Core>
class NetReceiver {
public:
    using Options = typename Core::Options;

    /// Same threading contract as NetSender: \p wheel is fired by poll().
    NetReceiver(const NetConfig& cfg, Options options, TimerWheel& wheel, Transport& transport)
        : cfg_(cfg),
          wheel_(wheel),
          transport_(&transport),
          driver_(cfg_.engine_config(), std::move(options), *this) {
        // A receiver arms at most the ack-flush timer plus the driver's
        // bookkeeping singletons; the stash holds at most a window of
        // out-of-order payloads.  Reserve both to worst case so the first
        // loss burst (which may come long after warmup) allocates nothing.
        wheel_.reserve(4);
        stash_.reserve_buffers(static_cast<std::size_t>(cfg_.w) + 1, cfg_.payload_size);
    }

    NetReceiver(const NetReceiver&) = delete;
    NetReceiver& operator=(const NetReceiver&) = delete;

    /// One event-loop iteration; single-threaded, like NetSender::poll().
    /// Drains arriving data an arena at a time and flushes the acks the
    /// tick produced as one batch -- with an eager ack policy that is one
    /// sendmmsg covering the whole received burst.
    std::size_t poll() {
        std::size_t work = wheel_.fire_due();
        transport_->flush();  // delayed impairer copies matured above
        RecvBatch& rx = rx_batch();
        for (;;) {
            const std::size_t n = transport_->recv_batch(rx);
            for (std::size_t i = 0; i < n; ++i) handle_datagram(rx[i]);
            work += n;
            if (n < rx.capacity()) break;
        }
        tx_batch_.flush(*transport_);
        return work;
    }

    /// Feeds one already-decoded frame to the driver (server demux entry
    /// point; poll() routes its own datagrams through here too).  The
    /// payload is stashed before the driver steps so a delivery it
    /// unlocks can always find its bytes.
    void handle_frame(const wire::FrameView& frame) {
        if (frame.type != wire::FrameType::Data) {
            ++driver_.metrics_mut().decode_errors;  // ACK/NAK at the receiver: anomaly
            return;
        }
        // Latest write wins, so a wire value being reused (bounded
        // cores) always maps to the newest message.
        stash_.put(frame.seq, frame.payload);
        const std::uint64_t dup_acks_before = driver_.metrics().dup_acks;
        driver_.handle_data(proto::Data{frame.seq});
        // A re-acked arrival (the core answered with a singleton re-ack
        // instead of buffering) will never be consumed -- drop its bytes
        // now, or every retransmission of a delivered message grows the
        // stash by one dead entry forever.  In-window duplicates of
        // still-buffered messages take the other branch (no dup-ack) and
        // keep their bytes.
        if (driver_.metrics().dup_acks != dup_acks_before) stash_.erase(frame.seq);
    }

    Seq delivered() const { return driver_.delivered(); }
    std::uint64_t bytes_delivered() const { return bytes_delivered_; }
    /// Delivered payloads whose bytes did not match the expected pattern.
    /// Must be zero: CRC-32C rejects corruption before the core sees it.
    std::uint64_t payload_mismatches() const { return payload_mismatches_; }

    TimerWheel& wheel() { return wheel_; }
    const sim::Metrics& metrics() const { return driver_.metrics(); }
    const Core& core() const { return driver_.core(); }

    /// Attach (or detach, with nullptr) a protocol-decision recorder.
    void set_decision_log(runtime::DecisionLog* log) { driver_.set_decision_log(log); }

    // ---- Environment hooks (called by EndpointDriver) ----------------------

    static constexpr bool kHasOracle = false;

    TimerService& timer_service() { return wheel_; }
    SimTime now() const { return wheel_.now(); }

    void send_data(const proto::Data&, Seq, bool) {
        BACP_ASSERT_MSG(false, "receiver endpoint transmitted data");
    }

    /// Bounded cores ack residue *ranges*; a block that straddles the
    /// domain edge arrives as (lo, hi) with hi < lo (e.g. (7, 2) in
    /// domain 8).  The wire format carries closed intervals, so such a
    /// block goes out as two frames, (lo, domain-1) and (0, hi) -- each
    /// is itself a valid sub-block ack the sender absorbs independently,
    /// and losing one of the pair is just an ordinary lost ack.
    void send_ack(const proto::Ack& ack, runtime::AckKind) {
        if constexpr (runtime::kCoreAckWireWrapped<Core>) {
            if (ack.lo > ack.hi) {
                const Seq top = driver_.core().ack_wire_domain() - 1;
                tx_batch_.append_with([&](std::vector<std::uint8_t>& slab) {
                    wire::encode_ack_to(slab, ack.lo, top, wire::kFlagNone, wire::kNoStream,
                                        cfg_.conn);
                });
                tx_batch_.append_with([&](std::vector<std::uint8_t>& slab) {
                    wire::encode_ack_to(slab, 0, ack.hi, wire::kFlagNone, wire::kNoStream,
                                        cfg_.conn);
                });
                if (cfg_.effective_batch() <= 1) tx_batch_.flush(*transport_);
                return;
            }
        }
        tx_batch_.append_with([&](std::vector<std::uint8_t>& slab) {
            wire::encode_ack_to(slab, ack.lo, ack.hi, wire::kFlagNone, wire::kNoStream,
                                cfg_.conn);
        });
        if (cfg_.effective_batch() <= 1) tx_batch_.flush(*transport_);
    }

    void send_nak(const proto::Nak& nak) {
        tx_batch_.append_with([&](std::vector<std::uint8_t>& slab) {
            wire::encode_nak_to(slab, nak.seq, wire::kFlagNone, wire::kNoStream, cfg_.conn);
        });
        if (cfg_.effective_batch() <= 1) tx_batch_.flush(*transport_);
    }

    /// Consumes the stashed payload of one in-order delivery.  The stash
    /// is keyed by *wire* value (all the frame carries); wire-mapped
    /// cores translate, unbounded ones are the identity.  The protocols
    /// guarantee at most one live message per wire value at the receiver
    /// (window/domain relation, residue quarantine), so the latest write
    /// for a key is always the delivered message's own bytes.
    void on_delivery(Seq true_seq) {
        Seq key = true_seq;
        if constexpr (runtime::kCoreWireMapped<Core>) {
            key = driver_.core().wire_seq(true_seq);
        }
        const std::vector<std::uint8_t>* bytes = stash_.find(key);
        BACP_ASSERT_MSG(bytes != nullptr, "delivered message has no stashed payload");
        expected_scratch_.resize(bytes->size());
        pattern_fill(true_seq, expected_scratch_);
        if (*bytes != expected_scratch_) ++payload_mismatches_;
        bytes_delivered_ += bytes->size();
        stash_.erase(key);
    }

    void after_step() {}

private:
    void handle_datagram(std::span<const std::uint8_t> bytes) {
        const wire::ViewResult result = wire::decode_view(bytes);
        if (!result.ok()) {
            ++driver_.metrics_mut().decode_errors;
            if (result.error() == wire::DecodeError::BadCrc) ++driver_.metrics_mut().crc_errors;
            return;  // treated as loss
        }
        handle_frame(result.frame());
    }

    /// The receive arena, built on first poll(): a server-driven session
    /// never polls its own transport, so it never pays for one.
    RecvBatch& rx_batch() {
        if (!rx_batch_) {
            rx_batch_ =
                std::make_unique<RecvBatch>(cfg_.effective_batch(), cfg_.max_datagram);
        }
        return *rx_batch_;
    }

    NetConfig cfg_;
    TimerWheel& wheel_;
    Transport* transport_;

    std::uint64_t bytes_delivered_ = 0;
    std::uint64_t payload_mismatches_ = 0;
    // Live stash entries are protocol-bounded by the window (+1 for the
    // in-flight arrival, so a full window never triggers a table grow).
    PayloadStash stash_{static_cast<std::size_t>(cfg_.w) + 1};  // wire seq -> payload
    std::unique_ptr<RecvBatch> rx_batch_;        // lazy: see rx_batch()
    SendBatch tx_batch_;                          // the tick's staged acks/naks
    std::vector<std::uint8_t> expected_scratch_;  // pattern verify, reused
    runtime::EndpointDriver<Core, NetReceiver> driver_;  // last: uses members above
};

/// Everything a real-time run measures.
struct NetReport {
    sim::Metrics metrics;  // sender + receiver counters, field-wise sum
    std::uint64_t bytes_delivered = 0;
    std::uint64_t payload_mismatches = 0;
    Metrics impair_sr;  // impairment boundary, sender->receiver direction
    Metrics impair_rs;
    Metrics transport_sr;  // inner transport, post-impairment
    Metrics transport_rs;
    SimTime elapsed = 0;  // clock time, start of run to completion
    bool completed = false;

    double goodput_mbps() const {
        if (elapsed <= 0) return 0.0;
        return static_cast<double>(bytes_delivered) * 8.0 / to_seconds(elapsed) / 1e6;
    }

    /// Inner-transport totals, both directions -- the send-side ratio is
    /// the batch API's headline: datagrams moved per sendmmsg.
    Metrics transport_totals() const {
        Metrics t = transport_sr;
        t += transport_rs;
        return t;
    }
    double datagrams_per_send_syscall() const {
        return transport_totals().datagrams_per_send_syscall();
    }
};

enum class NetMode {
    Udp,     // loopback sockets, SteadyClock (real time)
    Inproc,  // in-process queues, ManualClock (deterministic)
};

/// A complete two-endpoint transfer in one process.
template <runtime::EndpointCore Core>
class NetEngine {
public:
    using Options = typename Core::Options;

    explicit NetEngine(NetConfig cfg, Options options = {}, NetMode netmode = NetMode::Udp)
        : cfg_(std::move(cfg)), netmode_(netmode) {
        if (netmode_ == NetMode::Udp) {
            clock_ = &steady_clock_;
            auto [a, b] = UdpTransport::make_pair();
            a->enable_offload(cfg_.offload);
            b->enable_offload(cfg_.offload);
            raw_s_ = std::move(a);
            raw_r_ = std::move(b);
        } else {
            clock_ = &manual_clock_;
            auto [a, b] = InprocTransport::make_pair();
            raw_s_ = std::move(a);
            raw_r_ = std::move(b);
        }
        // One wheel per endpoint thread; the impairer of a direction
        // shares the wheel of the endpoint that sends through it.
        wheel_s_ = std::make_unique<TimerWheel>(*clock_);
        wheel_r_ = std::make_unique<TimerWheel>(*clock_);
        imp_s_ = std::make_unique<Impairer>(*raw_s_, *wheel_s_, cfg_.impair,
                                            runtime::mix_seed(cfg_.seed, 0xd1));
        imp_r_ = std::make_unique<Impairer>(*raw_r_, *wheel_r_,
                                            cfg_.impair_ack.value_or(cfg_.impair),
                                            runtime::mix_seed(cfg_.seed, 0xac));
        sender_ = std::make_unique<NetSender<Core>>(cfg_, options, *wheel_s_, *imp_s_);
        receiver_ = std::make_unique<NetReceiver<Core>>(cfg_, options, *wheel_r_, *imp_r_);
    }

    /// Runs the transfer to completion or the deadline; single-threaded
    /// (both endpoints serviced by the calling thread).  With
    /// NetMode::Inproc this is exactly reproducible from the seed.
    NetReport run() {
        const SimTime start = clock_->now();
        sender_->start();
        while (!finished()) {
            if (clock_->now() - start > cfg_.deadline) break;
            // Fixed service order keeps Inproc runs deterministic.
            const std::size_t work = sender_->poll() + receiver_->poll();
            if (work > 0) continue;
            if (netmode_ == NetMode::Inproc) {
                // Idle with empty queues: jump to the next timer deadline.
                const auto next = earliest_deadline();
                if (!next) break;  // no timers, no traffic: wedged
                manual_clock_.advance_to(*next);
            } else {
                idle_wait(start);
            }
        }
        return make_report(start);
    }

    /// Runs with the receiver endpoint on a worker thread -- the real
    /// deployment shape (two independent event loops).  Requires real
    /// time (Udp mode); determinism is naturally out the window.
    NetReport run_threaded() {
        BACP_ASSERT_MSG(netmode_ == NetMode::Udp, "threaded run needs real time");
        const SimTime start = clock_->now();
        std::atomic<bool> stop{false};
        std::thread rx([this, &stop] {
            while (!stop.load(std::memory_order_relaxed)) {
                if (receiver_->poll() == 0) {
                    // Re-read fd() each wait: it changes when the
                    // io_uring tier arms on the first recv_batch.
                    const int fds[] = {receiver_fd()};
                    wait_readable(fds, receiver_->wheel().next_deadline()
                                           ? kMillisecond
                                           : 5 * kMillisecond);
                }
            }
        });
        sender_->start();
        while (!sender_->done() && clock_->now() - start <= cfg_.deadline) {
            if (sender_->poll() == 0) {
                const int fds[] = {sender_fd()};
                wait_readable(fds, kMillisecond);
            }
        }
        stop.store(true, std::memory_order_relaxed);
        rx.join();
        // Drain anything the receiver loop had not picked up yet.
        receiver_->poll();
        return make_report(start);
    }

    NetSender<Core>& sender() { return *sender_; }
    NetReceiver<Core>& receiver() { return *receiver_; }

    /// Attach protocol-decision recorders to the two endpoints (the
    /// cross-runtime parity test compares them against a DES run's).
    void set_decision_logs(runtime::DecisionLog* sender_log, runtime::DecisionLog* receiver_log) {
        sender_->set_decision_log(sender_log);
        receiver_->set_decision_log(receiver_log);
    }

private:
    bool finished() const {
        return sender_->done() && receiver_->delivered() == cfg_.count;
    }

    std::optional<SimTime> earliest_deadline() const {
        const auto a = sender_->wheel().next_deadline();
        const auto b = receiver_->wheel().next_deadline();
        if (!a) return b;
        if (!b) return a;
        return std::min(*a, *b);
    }

    int sender_fd() const { return raw_s_->fd(); }
    int receiver_fd() const { return raw_r_->fd(); }

    void idle_wait(SimTime start) {
        // Sleep until a datagram arrives or (approximately) the next
        // timer deadline; cap the wait so the deadline check stays live.
        SimTime wait = 5 * kMillisecond;
        if (const auto next = earliest_deadline()) {
            wait = std::clamp<SimTime>(*next - clock_->now(), 0, wait);
        }
        const int fds[] = {sender_fd(), receiver_fd()};
        wait_readable(fds, wait);
        (void)start;
    }

    NetReport make_report(SimTime start) const {
        NetReport report;
        report.metrics = merge(sender_->metrics(), receiver_->metrics());
        report.metrics.start_time = start;
        report.metrics.end_time = clock_->now();
        report.bytes_delivered = receiver_->bytes_delivered();
        report.payload_mismatches = receiver_->payload_mismatches();
        report.impair_sr = imp_s_->impair_stats();
        report.impair_rs = imp_r_->impair_stats();
        report.transport_sr = raw_s_->stats();
        report.transport_rs = raw_r_->stats();
        // Each endpoint's timer-wheel batching rides in its transport
        // view, so one Metrics carries the whole per-direction story.
        wheel_s_->add_stats(report.transport_sr);
        wheel_r_->add_stats(report.transport_rs);
        report.elapsed = clock_->now() - start;
        report.completed = sender_->done() && receiver_->delivered() == cfg_.count &&
                           report.payload_mismatches == 0;
        return report;
    }

    static sim::Metrics merge(const sim::Metrics& s, const sim::Metrics& r) {
        sim::Metrics m = s;
        m.data_received += r.data_received;
        m.duplicates += r.duplicates;
        m.acks_sent += r.acks_sent;
        m.dup_acks += r.dup_acks;
        m.delivered += r.delivered;
        m.naks_sent += r.naks_sent;
        m.decode_errors += r.decode_errors;
        m.crc_errors += r.crc_errors;
        return m;
    }

    NetConfig cfg_;
    NetMode netmode_;
    SteadyClock steady_clock_;
    ManualClock manual_clock_;
    Clock* clock_ = nullptr;
    std::unique_ptr<Transport> raw_s_;
    std::unique_ptr<Transport> raw_r_;
    std::unique_ptr<TimerWheel> wheel_s_;
    std::unique_ptr<TimerWheel> wheel_r_;
    std::unique_ptr<Impairer> imp_s_;
    std::unique_ptr<Impairer> imp_r_;
    std::unique_ptr<NetSender<Core>> sender_;
    std::unique_ptr<NetReceiver<Core>> receiver_;
};

}  // namespace bacp::net
