#pragma once

/// \file net_engine.hpp
/// The real-time transport runtime: transport adapters over
/// runtime::DuplexDriver, driving the same EndpointCore machines the
/// discrete-event runtime::Engine drives -- over actual datagrams and a
/// wall (or manual) clock.
///
/// Where the DES engine adapts the shared driver to a simulator and two
/// SimChannels, a real network has one endpoint per socket end -- and a
/// real endpoint is *duplex*.  NetEndpoint embeds a DuplexDriver (a
/// sending-half and a receiving-half EndpointDriver sharing this
/// environment's clock, TimerWheel, and egress batch), supplies the
/// wheel as the drivers' TimerService, and exchanges frames serialized
/// through wire::codec.  The classic one-way shapes are trivial
/// configurations of it: count > 0, rx_count == 0 is the old pure
/// sender; count == 0, rx_count > 0 the old pure receiver.  With
/// `piggyback` on, the duplex layer defers acks so reverse DATA carries
/// them as DATA+ACK frames (wire type 4); off, every ack egresses
/// immediately and the one-way decision streams are byte-identical to
/// the pre-duplex runtime (tests/test_driver_parity.cpp pins that).
///
/// All timeout disciplines, window pumping, ack policy, resend
/// selection, and the ack-deferral policy live in the runtime layer
/// (runtime/endpoint_driver.hpp, runtime/duplex_driver.hpp); this class
/// only encodes/decodes, batches, stashes payloads, and counts
/// transport-level anomalies.  Every datagram is CRC-32C checked on
/// receive; a frame that fails decode is counted and dropped, i.e. fed
/// to the loss tolerance the protocol already has -- exactly the channel
/// model the paper's proof assumes.
///
/// This environment advertises kHasOracle = false: real time cannot
/// prove quiescence, so the driver approximates the oracle timeout modes
/// with its quiescence timer (a full conservative timeout of silence)
/// instead of the DES's provable idle point.
///
/// NetEngine<Core> composes two endpoints over a transport pair (UDP
/// loopback or in-process queues) with seeded impairment and drives a
/// fixed-size transfer of pattern payloads to completion -- one-way by
/// default, bidirectional when reverse_count > 0.  With --inproc
/// (InprocTransport + ManualClock) a run is a pure function of its seed:
/// time advances only to the next timer deadline, so two runs deliver
/// byte-identical traffic.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/timer_service.hpp"
#include "common/types.hpp"
#include "net/clock.hpp"
#include "net/impairer.hpp"
#include "net/payload_stash.hpp"
#include "net/timer_wheel.hpp"
#include "net/transport.hpp"
#include "protocol/message.hpp"
#include "runtime/duplex_driver.hpp"
#include "runtime/endpoint_core.hpp"
#include "runtime/endpoint_driver.hpp"
#include "runtime/session_util.hpp"
#include "runtime/timeout_mode.hpp"
#include "sim/metrics.hpp"
#include "wire/codec.hpp"

namespace bacp::net {

/// Configuration of a real-time transfer: the shared runtime::EngineConfig
/// surface (window, count, timeout discipline, ack policy, seed, ...)
/// plus the knobs only a real network introduces.  Core-specific knobs
/// ride in the core's own Options struct, as with the DES engine.
///
/// Of the inherited fields, the link specs are overridden by
/// engine_config() (loss and delay live in the real channel here, via
/// `impair`), and the DES-only knobs (max_events, record_trace,
/// check_invariants) are ignored.
struct NetConfig : runtime::EngineConfig {
    NetConfig() { deadline = 60 * kSecond; }  // run cap, in clock time

    std::size_t payload_size = 1024;  // bytes of pattern payload per message
    /// Assumed bound on datagram time-in-transit (the paper's channel
    /// lifetime L).  Feeds the cores' time-based rules (send horizon, NAK
    /// one-copy) and the derived timeout.  Generous for loopback plus the
    /// impairment delays.
    SimTime link_lifetime = 50 * kMillisecond;
    ImpairSpec impair;  // data direction (and ack direction, unless overridden)
    /// Ack-direction impairment override; nullopt applies `impair`
    /// symmetrically.  Lets a scenario impair one direction only (the
    /// cross-runtime parity test scripts data-channel drops this way).
    std::optional<ImpairSpec> impair_ack;
    /// Datagrams per transport batch: the RecvBatch arena capacity and
    /// the flush granularity of the tick's staged sends.  0 sizes it
    /// from the window -- the batch the protocol naturally builds.
    /// 1 degenerates to the single-shot path (one syscall per datagram),
    /// kept as the A/B baseline E19 measures against.
    std::size_t batch = 0;
    /// Largest datagram this endpoint expects (the RecvBatch arena
    /// stride).  The UDP maximum is always safe; a server hosting
    /// thousands of sessions shrinks it to its known frame size so
    /// per-session arenas stay cheap.
    std::size_t max_datagram = kMaxDatagram;
    /// Connection tag stamped on every frame this endpoint encodes.
    /// Untagged (the default) selects the byte-identical v1 wire format;
    /// a server session sets it so its acks come back tagged for demux
    /// at a multiplexed peer.
    wire::Conn conn;
    /// Kernel-offload tier for the UDP transports (net/offload.hpp):
    /// Mmsg keeps the portable sendmmsg/recvmmsg baseline, Gso/Uring
    /// climb the ladder, Auto takes the best the kernel supports.
    /// Ignored in Inproc mode (no kernel below the queues).
    OffloadMode offload = OffloadMode::Mmsg;
    /// Messages this endpoint expects to *sink* (its receiving half's
    /// target); the inherited `count` stays the messages it originates.
    /// (count, 0) is the classic pure sender, (0, rx_count) the pure
    /// receiver, both nonzero a duplex endpoint.
    Seq rx_count = 0;
    /// NetEngine only: reverse-direction message count (endpoint B back
    /// to endpoint A), turning the engine's transfer bidirectional.  The
    /// endpoints derive their own count/rx_count splits from it.
    Seq reverse_count = 0;
    /// Defer acks so reverse DATA carries them as DATA+ACK piggyback
    /// frames (wire type 4); a flush timer bounds the deferral at
    /// piggyback_delay.  Both endpoints of a session must agree on this
    /// pair, exactly as they must agree on w and the ack policy: the
    /// conservatively derived timeout folds the deferral bound in.
    /// Off by default -- one-way sessions gain nothing, and the pinned
    /// cross-runtime decision parity stays timestamp-exact.
    bool piggyback = false;
    SimTime piggyback_delay = 2 * kMillisecond;
    /// Stream tag stamped on every frame (kNoStream = untagged): the
    /// link-layer mux (link::NetStreamMux) runs several endpoints over
    /// one shared transport and demuxes arrivals by this id.
    Seq stream = wire::kNoStream;

    std::size_t effective_batch() const {
        if (batch > 0) return batch;
        return std::max<std::size_t>(static_cast<std::size_t>(w), 1);
    }

    /// The EngineConfig handed to the drivers and core constructors: the
    /// inherited fields verbatim, with the links described as
    /// lossless-with-lifetime (cores and the derived timeout only consult
    /// max_lifetime(); actual loss/delay happen in the Impairer).
    runtime::EngineConfig engine_config() const {
        runtime::EngineConfig e = *this;
        e.data_link = runtime::LinkSpec::lossless(0, link_lifetime);
        e.ack_link = runtime::LinkSpec::lossless(0, link_lifetime);
        return e;
    }

    runtime::DuplexSpec duplex_spec() const {
        return runtime::DuplexSpec{rx_count, piggyback, piggyback_delay};
    }

    /// Retransmission timeout: explicit, or the conservative bound
    /// L_SR + L_RS + max ack delay + margin (the one shared formula,
    /// runtime::derived_timeout) -- widened by the ack-deferral bound
    /// when piggybacking, mirroring DuplexDriver's own derivation.
    SimTime effective_timeout() const {
        SimTime t = runtime::effective_timeout(engine_config());
        if (timeout == 0 && piggyback) t += piggyback_delay;
        return t;
    }
};

/// Deterministic payload for message \p seq: a splitmix64 stream keyed by
/// the (true) sequence number, so the receiver can verify every delivered
/// byte without any side channel.  The fill form writes into caller
/// memory (the batch slab / a reused scratch) and is what the hot paths
/// use.
inline void pattern_fill(Seq seq, std::span<std::uint8_t> payload) {
    std::uint64_t state = seq ^ 0xba5eba115eedULL;
    std::size_t i = 0;
    while (i < payload.size()) {
        const std::uint64_t word = splitmix64(state);
        for (int b = 0; b < 8 && i < payload.size(); ++b, ++i) {
            payload[i] = static_cast<std::uint8_t>(word >> (8 * b));
        }
    }
}

inline std::vector<std::uint8_t> pattern_payload(Seq seq, std::size_t size) {
    std::vector<std::uint8_t> payload(size);
    pattern_fill(seq, payload);
    return payload;
}

/// One duplex transport endpoint: the environment for a DuplexDriver
/// over a real transport.  poll() is the event-loop body -- fire due
/// timers, drain arriving datagrams, flush staged frames -- and must be
/// called from one thread only.
///
/// Payload bytes default to the verifiable pattern; set_payload_source /
/// set_deliver_sink rebind both ends to real data (the link layer and
/// the file-transfer example feed actual bytes through these).
template <runtime::EndpointCore Core>
class NetEndpoint {
public:
    using Options = typename Core::Options;
    /// Fills `out` with the payload of message \p true_seq.  Must be
    /// random-access: retransmissions re-request any outstanding seq.
    using PayloadSource = std::function<void(Seq true_seq, std::vector<std::uint8_t>& out)>;
    /// Consumes the bytes of one in-order delivery.
    using DeliverSink = std::function<void(Seq true_seq, std::span<const std::uint8_t> payload)>;

    /// \p wheel is this endpoint's (and, when impaired, its Impairer's)
    /// timer wheel; poll() fires it, so both must live on one thread.
    NetEndpoint(const NetConfig& cfg, Options options, TimerWheel& wheel, Transport& transport)
        : cfg_(cfg),
          wheel_(wheel),
          transport_(&transport),
          duplex_(cfg_.engine_config(), cfg_.duplex_spec(), std::move(options), *this) {
        // Worst case live timers: one per outstanding message (per-message
        // mode) plus the simple/quiescence/pacing/ack-flush singletons of
        // each active half and the deferral flush timer.  Reserving now
        // means a loss burst late in a run grows nothing.
        std::size_t timers = 4;
        if (cfg_.count > 0) timers += static_cast<std::size_t>(cfg_.w) + 4;
        if (cfg_.piggyback) timers += 1;
        wheel_.reserve(timers);
        // The stash holds at most a window of out-of-order payloads (+1
        // for the in-flight arrival, so a full window never triggers a
        // table grow); reserve to worst case so the first loss burst
        // (which may come long after warmup) allocates nothing.
        if (cfg_.rx_count > 0) {
            stash_.reserve_buffers(static_cast<std::size_t>(cfg_.w) + 1, cfg_.payload_size);
        }
        // One tick can stage a timeout burst of DATA, the acks provoked
        // by a full receive arena, and the retransmissions those acks
        // release -- all before the poll's flush; size the batch builder
        // for that now rather than letting it creep to high water
        // mid-run.
        const std::size_t burst = 4 * static_cast<std::size_t>(cfg_.w) + 32;
        tx_batch_.reserve(burst, burst * (cfg_.payload_size + 128));
        batch_cap_ = burst;
    }

    NetEndpoint(const NetEndpoint&) = delete;
    NetEndpoint& operator=(const NetEndpoint&) = delete;

    /// Opens the faucet of the sending half (a pure receiver has none).
    /// Call once before the poll loop.
    void start() {
        if (cfg_.count > 0) duplex_.start();
        tx_batch_.flush(*transport_);
    }

    /// Application-gated arrivals (EngineConfig::app_arrivals): the
    /// caller queued \p n more payloads with its payload source, so the
    /// window may pump them now.  Flushes whatever the pump staged.
    void release(Seq n) {
        duplex_.release(n);
        tx_batch_.flush(*transport_);
    }

    /// One event-loop iteration: fires due timers, pushes out matured
    /// delayed copies, then handles every datagram currently readable --
    /// drained a whole arena at a time -- and finally flushes everything
    /// the tick staged (new sends, retransmits, acks) as one batch.
    /// Returns how many units of work (timers + datagrams) were processed.
    std::size_t poll() {
        std::size_t work = wheel_.fire_due();
        transport_->flush();  // delayed impairer copies matured above
        RecvBatch& rx = rx_batch();
        for (;;) {
            const std::size_t n = transport_->recv_batch(rx);
            for (std::size_t i = 0; i < n; ++i) handle_datagram(rx[i]);
            work += n;
            if (n < rx.capacity()) break;
        }
        tx_batch_.flush(*transport_);
        return work;
    }

    /// Feeds one already-decoded frame to the drivers -- the entry point
    /// a server uses after demuxing a shared socket's arena (each
    /// datagram is decoded exactly once, by the demux).  poll() routes
    /// its own datagrams through here too.  Frames for a direction this
    /// endpoint does not run (DATA at a pure sender, ACK at a pure
    /// receiver) are counted as anomalies and dropped.
    void handle_frame(const wire::FrameView& frame) {
        switch (frame.type) {
            case wire::FrameType::Ack:
                if (cfg_.count == 0) return count_anomaly();
                duplex_.handle_ack(proto::Ack{frame.lo, frame.hi});
                break;
            case wire::FrameType::Nak:
                if (cfg_.count == 0) return count_anomaly();
                duplex_.handle_nak(proto::Nak{frame.seq});
                break;
            case wire::FrameType::Data:
                if (cfg_.rx_count == 0) return count_anomaly();
                ingest_data(frame, nullptr);
                break;
            case wire::FrameType::DataAck: {
                // The ack half rides for our sending side; the data half
                // for our receiving side.  A pure receiver still absorbs
                // the data half (the ack half clips to an empty window).
                if (cfg_.rx_count == 0) return count_anomaly();
                const proto::Ack ack{frame.lo, frame.hi};
                ingest_data(frame, &ack);
                break;
            }
        }
    }

    /// Every originated message sent and acknowledged, every expected
    /// arrival delivered.
    bool done() const { return duplex_.done(); }
    bool tx_done() const { return duplex_.tx_done(); }
    bool rx_done() const { return duplex_.rx_done(); }

    Seq delivered() const { return duplex_.delivered(); }
    std::uint64_t bytes_delivered() const { return bytes_delivered_; }
    /// Delivered payloads whose bytes did not match the expected pattern.
    /// Must be zero: CRC-32C rejects corruption before the core sees it.
    std::uint64_t payload_mismatches() const { return payload_mismatches_; }
    /// Acks that rode reverse DATA frames vs. egressed standalone.
    std::uint64_t piggybacked() const { return duplex_.piggybacked(); }
    std::uint64_t standalone_acks() const { return duplex_.standalone_acks(); }

    TimerWheel& wheel() { return wheel_; }
    SimTime timeout_value() const { return duplex_.timeout_value(); }
    const Core& tx_core() const { return duplex_.tx_core(); }
    const Core& rx_core() const { return duplex_.rx_core(); }

    /// Field-wise sum of both halves' counters, with the receiving
    /// half's delivery-latency histogram and the sending half's
    /// ack-latency histogram riding along.  Recomputed per call into a
    /// stable member, so the reference outlives the call.
    const sim::Metrics& metrics() const {
        merged_ = duplex_.tx_metrics();
        merged_.add_counters_from(duplex_.rx_metrics());
        merged_.latency = duplex_.rx_metrics().latency;
        return merged_;
    }
    const sim::Metrics& tx_metrics() const { return duplex_.tx_metrics(); }
    const sim::Metrics& rx_metrics() const { return duplex_.rx_metrics(); }

    /// Attach (or detach, with nullptr) a protocol-decision recorder;
    /// both halves share it ('S' / 'R' endpoint chars keep the streams
    /// separable).
    void set_decision_log(runtime::DecisionLog* log) { duplex_.set_decision_log(log); }

    void set_payload_source(PayloadSource source) { payload_source_ = std::move(source); }
    void set_deliver_sink(DeliverSink sink) { deliver_sink_ = std::move(sink); }

    // ---- Environment hooks (called by DuplexDriver) ------------------------
    // Public because the driver is a distinct type; not user API.

    /// Real time cannot prove quiescence; the driver substitutes its
    /// silence-timer approximation for the oracle modes.
    static constexpr bool kHasOracle = false;

    TimerService& timer_service() { return wheel_; }
    SimTime now() const { return wheel_.now(); }

    void send_data(const proto::Data& msg, Seq true_seq, bool /*retx*/) {
        // Stage the frame on the tick's batch; poll() flushes the whole
        // window in one send_batch.  The payload is keyed by the true
        // sequence number (the receiver re-derives or reassembles it at
        // delivery), while the frame carries the core's wire value --
        // identical for unbounded cores, a residue for bounded ones.
        // The bytes land in a reused scratch and are encoded straight
        // onto the slab -- no per-frame allocation once both are at
        // high-water mark.
        stage_payload(true_seq);
        tx_batch_.append_with([&](std::vector<std::uint8_t>& slab) {
            wire::encode_data_to(slab, msg.seq, payload_scratch_, wire::kFlagNone, cfg_.stream,
                                 cfg_.conn);
        });
        maybe_flush();
    }

    /// Reverse DATA carrying a deferred ack block.  The duplex layer
    /// splits wrapped bounded-BA ranges before piggybacking, so the wire
    /// precondition lo <= hi always holds here.
    void send_data_ack(const proto::Data& msg, Seq true_seq, bool /*retx*/,
                       const proto::Ack& ack, runtime::AckKind) {
        stage_payload(true_seq);
        tx_batch_.append_with([&](std::vector<std::uint8_t>& slab) {
            wire::encode_data_ack_to(slab, msg.seq, ack.lo, ack.hi, payload_scratch_,
                                     wire::kFlagNone, cfg_.stream, cfg_.conn);
        });
        maybe_flush();
    }

    /// Bounded cores ack residue *ranges*; a block that straddles the
    /// domain edge arrives as (lo, hi) with hi < lo (e.g. (7, 2) in
    /// domain 8).  The wire format carries closed intervals, so such a
    /// block goes out as two frames, (lo, domain-1) and (0, hi) -- each
    /// is itself a valid sub-block ack the sender absorbs independently,
    /// and losing one of the pair is just an ordinary lost ack.
    void send_ack(const proto::Ack& ack, runtime::AckKind) {
        if constexpr (runtime::kCoreAckWireWrapped<Core>) {
            if (ack.lo > ack.hi) {
                const Seq top = duplex_.rx_core().ack_wire_domain() - 1;
                tx_batch_.append_with([&](std::vector<std::uint8_t>& slab) {
                    wire::encode_ack_to(slab, ack.lo, top, wire::kFlagNone, cfg_.stream,
                                        cfg_.conn);
                });
                tx_batch_.append_with([&](std::vector<std::uint8_t>& slab) {
                    wire::encode_ack_to(slab, 0, ack.hi, wire::kFlagNone, cfg_.stream,
                                        cfg_.conn);
                });
                maybe_flush();
                return;
            }
        }
        tx_batch_.append_with([&](std::vector<std::uint8_t>& slab) {
            wire::encode_ack_to(slab, ack.lo, ack.hi, wire::kFlagNone, cfg_.stream, cfg_.conn);
        });
        maybe_flush();
    }

    void send_nak(const proto::Nak& nak) {
        tx_batch_.append_with([&](std::vector<std::uint8_t>& slab) {
            wire::encode_nak_to(slab, nak.seq, wire::kFlagNone, cfg_.stream, cfg_.conn);
        });
        maybe_flush();
    }

    /// Consumes the stashed payload of one in-order delivery.  The stash
    /// is keyed by *wire* value (all the frame carries); wire-mapped
    /// cores translate, unbounded ones are the identity.  The protocols
    /// guarantee at most one live message per wire value at the receiver
    /// (window/domain relation, residue quarantine), so the latest write
    /// for a key is always the delivered message's own bytes.
    void on_delivery(Seq true_seq) {
        Seq key = true_seq;
        if constexpr (runtime::kCoreWireMapped<Core>) {
            key = duplex_.rx_core().wire_seq(true_seq);
        }
        const std::vector<std::uint8_t>* bytes = stash_.find(key);
        BACP_ASSERT_MSG(bytes != nullptr, "delivered message has no stashed payload");
        bytes_delivered_ += bytes->size();
        if (deliver_sink_) {
            deliver_sink_(true_seq, *bytes);
        } else {
            expected_scratch_.resize(bytes->size());
            pattern_fill(true_seq, expected_scratch_);
            if (*bytes != expected_scratch_) ++payload_mismatches_;
        }
        stash_.erase(key);
    }

    void after_step() {}

private:
    void handle_datagram(std::span<const std::uint8_t> bytes) {
        const wire::ViewResult result = wire::decode_view(bytes);
        if (!result.ok()) {
            ++duplex_.tx_metrics_mut().decode_errors;
            if (result.error() == wire::DecodeError::BadCrc) {
                ++duplex_.tx_metrics_mut().crc_errors;
            }
            return;  // treated as loss
        }
        handle_frame(result.frame());
    }

    /// A frame for a direction this endpoint does not run.  Counted on
    /// the sending half's metrics; the per-endpoint merge makes the
    /// choice of half invisible.
    void count_anomaly() { ++duplex_.tx_metrics_mut().decode_errors; }

    /// DATA (optionally carrying a piggybacked ack) into the receiving
    /// half.  The payload is stashed before the driver steps so a
    /// delivery it unlocks can always find its bytes; latest write wins,
    /// so a wire value being reused (bounded cores) always maps to the
    /// newest message.
    void ingest_data(const wire::FrameView& frame, const proto::Ack* ack) {
        stash_.put(frame.seq, frame.payload);
        const std::uint64_t dup_acks_before = duplex_.rx_metrics().dup_acks;
        if (ack != nullptr) {
            duplex_.handle_data_ack(proto::Data{frame.seq}, *ack);
        } else {
            duplex_.handle_data(proto::Data{frame.seq});
        }
        // A re-acked arrival (the core answered with a singleton re-ack
        // instead of buffering) will never be consumed -- drop its bytes
        // now, or every retransmission of a delivered message grows the
        // stash by one dead entry forever.  In-window duplicates of
        // still-buffered messages take the other branch (no dup-ack) and
        // keep their bytes.
        if (duplex_.rx_metrics().dup_acks != dup_acks_before) stash_.erase(frame.seq);
    }

    void stage_payload(Seq true_seq) {
        if (payload_source_) {
            payload_source_(true_seq, payload_scratch_);
        } else {
            payload_scratch_.resize(cfg_.payload_size);
            pattern_fill(true_seq, payload_scratch_);
        }
    }

    /// The receive arena, built on first poll(): a server-driven session
    /// never polls its own transport, so it never pays for one.
    RecvBatch& rx_batch() {
        if (!rx_batch_) {
            rx_batch_ =
                std::make_unique<RecvBatch>(cfg_.effective_batch(), cfg_.max_datagram);
        }
        return *rx_batch_;
    }

    NetConfig cfg_;
    TimerWheel& wheel_;
    Transport* transport_;

    std::uint64_t bytes_delivered_ = 0;
    std::uint64_t payload_mismatches_ = 0;
    // Live stash entries are protocol-bounded by the window (+1 for the
    // in-flight arrival, so a full window never triggers a table grow).
    PayloadStash stash_{static_cast<std::size_t>(cfg_.w) + 1};  // wire seq -> payload
    std::unique_ptr<RecvBatch> rx_batch_;        // lazy: see rx_batch()
    /// Flushes the staged batch when unbatched sending is configured, or
    /// when the builder has filled its reserved burst -- a post-stall
    /// poll can drain an arbitrary backlog in one pass, and capping the
    /// batch here bounds the builder to the ctor's reserve (a real
    /// sendmmsg caps a batch at IOV_MAX the same way).
    void maybe_flush() {
        if (cfg_.effective_batch() <= 1 || tx_batch_.size() >= batch_cap_) {
            tx_batch_.flush(*transport_);
        }
    }

    SendBatch tx_batch_;                          // the tick's staged frames
    std::size_t batch_cap_ = 0;                   // reserved burst; see ctor
    std::vector<std::uint8_t> payload_scratch_;   // outbound bytes, reused
    std::vector<std::uint8_t> expected_scratch_;  // pattern verify, reused
    PayloadSource payload_source_;  // empty = pattern payloads
    DeliverSink deliver_sink_;      // empty = pattern verification
    mutable sim::Metrics merged_;   // metrics() scratch
    runtime::DuplexDriver<Core, NetEndpoint> duplex_;  // last: uses members above
};

/// Everything a real-time run measures.
struct NetReport {
    sim::Metrics metrics;  // both endpoints' counters, field-wise sum
    std::uint64_t bytes_delivered = 0;          // forward direction (A -> B)
    std::uint64_t reverse_bytes_delivered = 0;  // duplex runs: B -> A
    std::uint64_t payload_mismatches = 0;
    /// Ack egress split across both endpoints: blocks that rode reverse
    /// DATA vs. standalone ACK frames.
    std::uint64_t piggybacked = 0;
    std::uint64_t standalone_acks = 0;
    Metrics impair_sr;  // impairment boundary, A -> B direction
    Metrics impair_rs;
    Metrics transport_sr;  // inner transport, post-impairment
    Metrics transport_rs;
    SimTime elapsed = 0;  // clock time, start of run to completion
    bool completed = false;

    double goodput_mbps() const {
        if (elapsed <= 0) return 0.0;
        return static_cast<double>(bytes_delivered) * 8.0 / to_seconds(elapsed) / 1e6;
    }

    /// Fraction of ack blocks that rode a reverse DATA frame.
    double piggyback_ratio() const {
        const double total = static_cast<double>(piggybacked + standalone_acks);
        return total > 0 ? static_cast<double>(piggybacked) / total : 0.0;
    }

    /// Inner-transport totals, both directions -- the send-side ratio is
    /// the batch API's headline: datagrams moved per sendmmsg.
    Metrics transport_totals() const {
        Metrics t = transport_sr;
        t += transport_rs;
        return t;
    }
    double datagrams_per_send_syscall() const {
        return transport_totals().datagrams_per_send_syscall();
    }
};

enum class NetMode {
    Udp,     // loopback sockets, SteadyClock (real time)
    Inproc,  // in-process queues, ManualClock (deterministic)
};

/// A complete two-endpoint transfer in one process: A sends `count`
/// messages to B; with reverse_count > 0, B simultaneously sends
/// `reverse_count` back to A (and `piggyback` lets each direction's
/// acks ride the other's DATA).
template <runtime::EndpointCore Core>
class NetEngine {
public:
    using Options = typename Core::Options;

    explicit NetEngine(NetConfig cfg, Options options = {}, NetMode netmode = NetMode::Udp)
        : cfg_(std::move(cfg)), netmode_(netmode) {
        if (netmode_ == NetMode::Udp) {
            clock_ = &steady_clock_;
            auto [a, b] = UdpTransport::make_pair();
            a->enable_offload(cfg_.offload);
            b->enable_offload(cfg_.offload);
            raw_a_ = std::move(a);
            raw_b_ = std::move(b);
        } else {
            clock_ = &manual_clock_;
            auto [a, b] = InprocTransport::make_pair();
            // Both directions' buffer pools at full-frame capacity up
            // front, so no recycled buffer regrows mid-run when a small
            // ack's vector comes back around carrying a DATA+ACK frame.
            const std::size_t bufs = 4 * static_cast<std::size_t>(cfg_.w) + 32;
            a->reserve_buffers(bufs, cfg_.payload_size + 128);
            b->reserve_buffers(bufs, cfg_.payload_size + 128);
            raw_a_ = std::move(a);
            raw_b_ = std::move(b);
        }
        // One wheel per endpoint thread; the impairer of a direction
        // shares the wheel of the endpoint that sends through it.
        wheel_a_ = std::make_unique<TimerWheel>(*clock_);
        wheel_b_ = std::make_unique<TimerWheel>(*clock_);
        imp_a_ = std::make_unique<Impairer>(*raw_a_, *wheel_a_, cfg_.impair,
                                            runtime::mix_seed(cfg_.seed, 0xd1));
        imp_b_ = std::make_unique<Impairer>(*raw_b_, *wheel_b_,
                                            cfg_.impair_ack.value_or(cfg_.impair),
                                            runtime::mix_seed(cfg_.seed, 0xac));
        // Worst-case concurrent delayed copies per direction: a full
        // window of DATA plus its acks, doubled for duplication and
        // retransmission overlap.  Pre-warming here keeps a late loss
        // burst from growing the pools mid-measurement.
        const std::size_t slots = 4 * static_cast<std::size_t>(cfg_.w) + 32;
        imp_a_->reserve_slots(slots, cfg_.payload_size + 128);
        imp_b_->reserve_slots(slots, cfg_.payload_size + 128);
        NetConfig cfg_endpoint_a = cfg_;
        cfg_endpoint_a.rx_count = cfg_.reverse_count;
        NetConfig cfg_endpoint_b = cfg_;
        cfg_endpoint_b.count = cfg_.reverse_count;
        cfg_endpoint_b.rx_count = cfg_.count;
        a_ = std::make_unique<NetEndpoint<Core>>(cfg_endpoint_a, options, *wheel_a_, *imp_a_);
        b_ = std::make_unique<NetEndpoint<Core>>(cfg_endpoint_b, options, *wheel_b_, *imp_b_);
    }

    /// Runs the transfer to completion or the deadline; single-threaded
    /// (both endpoints serviced by the calling thread).  With
    /// NetMode::Inproc this is exactly reproducible from the seed.
    NetReport run() {
        return run([](NetEngine&) {});
    }

    /// run() with an observer called after every service iteration --
    /// benches use it to snapshot allocator / transport state mid-run
    /// (e.g. at the steady-state half-way point) without owning the
    /// loop.  The observer must not mutate the engine.
    template <typename Tick>
    NetReport run(Tick&& tick) {
        const SimTime start = clock_->now();
        a_->start();
        b_->start();
        while (!finished()) {
            if (clock_->now() - start > cfg_.deadline) break;
            // Fixed service order keeps Inproc runs deterministic.
            const std::size_t work = a_->poll() + b_->poll();
            tick(*this);
            if (work > 0) continue;
            if (netmode_ == NetMode::Inproc) {
                // Idle with empty queues: jump to the next timer deadline.
                const auto next = earliest_deadline();
                if (!next) break;  // no timers, no traffic: wedged
                manual_clock_.advance_to(*next);
            } else {
                idle_wait();
            }
        }
        return make_report(start);
    }

    /// Live inner-transport counters, both directions summed -- the
    /// mid-run counterpart of NetReport::transport_totals().
    Metrics transport_snapshot() const {
        Metrics t = raw_a_->stats();
        t += raw_b_->stats();
        return t;
    }

    /// Runs with endpoint B on a worker thread -- the real deployment
    /// shape (two independent event loops).  Requires real time (Udp
    /// mode); determinism is naturally out the window.
    NetReport run_threaded() {
        BACP_ASSERT_MSG(netmode_ == NetMode::Udp, "threaded run needs real time");
        const SimTime start = clock_->now();
        std::atomic<bool> stop{false};
        std::thread rx([this, &stop] {
            b_->start();
            while (!stop.load(std::memory_order_relaxed)) {
                if (b_->poll() == 0) {
                    // Re-read fd() each wait: it changes when the
                    // io_uring tier arms on the first recv_batch.
                    const int fds[] = {fd_b()};
                    wait_readable(fds, b_->wheel().next_deadline()
                                           ? kMillisecond
                                           : 5 * kMillisecond);
                }
            }
        });
        a_->start();
        while (!a_->done() && clock_->now() - start <= cfg_.deadline) {
            if (a_->poll() == 0) {
                const int fds[] = {fd_a()};
                wait_readable(fds, kMillisecond);
            }
        }
        stop.store(true, std::memory_order_relaxed);
        rx.join();
        // Both endpoints back on this thread: drain the in-flight tail
        // (B's last acks, a duplex run's reverse stragglers).  A healthy
        // run exits in a poll or two; a wedged one runs to the deadline,
        // same as run().
        while (!finished() && clock_->now() - start <= cfg_.deadline) {
            if (a_->poll() + b_->poll() == 0) idle_wait();
        }
        return make_report(start);
    }

    /// Endpoint A originates the forward direction -- the "sender" of a
    /// one-way run; B its peer.  Both are full duplex endpoints.
    NetEndpoint<Core>& sender() { return *a_; }
    NetEndpoint<Core>& receiver() { return *b_; }

    /// Attach protocol-decision recorders to the two endpoints (the
    /// cross-runtime parity test compares them against a DES run's).
    void set_decision_logs(runtime::DecisionLog* a_log, runtime::DecisionLog* b_log) {
        a_->set_decision_log(a_log);
        b_->set_decision_log(b_log);
    }

private:
    bool finished() const { return a_->done() && b_->done(); }

    std::optional<SimTime> earliest_deadline() const {
        const auto a = a_->wheel().next_deadline();
        const auto b = b_->wheel().next_deadline();
        if (!a) return b;
        if (!b) return a;
        return std::min(*a, *b);
    }

    int fd_a() const { return raw_a_->fd(); }
    int fd_b() const { return raw_b_->fd(); }

    void idle_wait() {
        // Sleep until a datagram arrives or (approximately) the next
        // timer deadline; cap the wait so the deadline check stays live.
        SimTime wait = 5 * kMillisecond;
        if (const auto next = earliest_deadline()) {
            wait = std::clamp<SimTime>(*next - clock_->now(), 0, wait);
        }
        const int fds[] = {fd_a(), fd_b()};
        wait_readable(fds, wait);
    }

    NetReport make_report(SimTime start) const {
        NetReport report;
        report.metrics = a_->metrics();
        report.metrics.add_counters_from(b_->metrics());
        report.metrics.start_time = start;
        report.metrics.end_time = clock_->now();
        report.bytes_delivered = b_->bytes_delivered();
        report.reverse_bytes_delivered = a_->bytes_delivered();
        report.payload_mismatches = a_->payload_mismatches() + b_->payload_mismatches();
        report.piggybacked = a_->piggybacked() + b_->piggybacked();
        report.standalone_acks = a_->standalone_acks() + b_->standalone_acks();
        report.impair_sr = imp_a_->impair_stats();
        report.impair_rs = imp_b_->impair_stats();
        report.transport_sr = raw_a_->stats();
        report.transport_rs = raw_b_->stats();
        // Each endpoint's timer-wheel batching rides in its transport
        // view, so one Metrics carries the whole per-direction story.
        wheel_a_->add_stats(report.transport_sr);
        wheel_b_->add_stats(report.transport_rs);
        report.elapsed = clock_->now() - start;
        report.completed =
            a_->done() && b_->done() && report.payload_mismatches == 0;
        return report;
    }

    NetConfig cfg_;
    NetMode netmode_;
    SteadyClock steady_clock_;
    ManualClock manual_clock_;
    Clock* clock_ = nullptr;
    std::unique_ptr<Transport> raw_a_;
    std::unique_ptr<Transport> raw_b_;
    std::unique_ptr<TimerWheel> wheel_a_;
    std::unique_ptr<TimerWheel> wheel_b_;
    std::unique_ptr<Impairer> imp_a_;
    std::unique_ptr<Impairer> imp_b_;
    std::unique_ptr<NetEndpoint<Core>> a_;
    std::unique_ptr<NetEndpoint<Core>> b_;
};

}  // namespace bacp::net
