#pragma once

/// \file net_engine.hpp
/// The real-time transport runtime: the same EndpointCore machines the
/// discrete-event runtime::Engine drives, run over actual datagrams and a
/// wall (or manual) clock.
///
/// Structure mirrors runtime::Engine but splits it at the channel, as a
/// real network forces: NetSender<Core> and NetReceiver<Core> each own a
/// full core (a core bundles both protocol halves; each endpoint simply
/// exercises only its half -- the halves share no state) plus a
/// TimerWheel, and exchange frames serialized through wire::codec.  Every
/// datagram is CRC-32C checked on receive; a frame that fails decode is
/// counted and dropped, i.e. fed to the loss tolerance the protocol
/// already has -- exactly the channel model the paper's proof assumes.
///
/// Timeout disciplines map as follows:
///   SimpleTimer / PerMessageTimer  identical logic to the DES engine,
///                                  running on the TimerWheel.
///   OracleSimple / OraclePerMessage  the DES fires these at provable
///     quiescence (empty event queue => empty channels).  Real time has
///     no such oracle, so the net runtime approximates it with a
///     *quiescence timer*: restarted on every send/receive while
///     messages are outstanding, firing after a full conservative
///     timeout of silence -- by which time any copy in flight has aged
///     out of the channel.  The resend *sets* are the paper's; only the
///     firing moment is heuristic.  See DESIGN.md (real-time runtime).
///
/// NetEngine<Core> composes a sender and receiver endpoint over a
/// transport pair (UDP loopback or in-process queues) with symmetric
/// seeded impairment, and drives a fixed-size transfer of pattern
/// payloads to completion.  With --inproc (InprocTransport + ManualClock)
/// a run is a pure function of its seed: time advances only to the next
/// timer deadline, so two runs deliver byte-identical traffic.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/clock.hpp"
#include "net/impairer.hpp"
#include "net/timer_wheel.hpp"
#include "net/transport.hpp"
#include "protocol/message.hpp"
#include "runtime/ack_policy.hpp"
#include "runtime/endpoint_core.hpp"
#include "runtime/engine.hpp"
#include "runtime/session_util.hpp"
#include "runtime/timeout_mode.hpp"
#include "sim/metrics.hpp"
#include "wire/codec.hpp"

namespace bacp::net {

/// Configuration of a real-time transfer.  Core-specific knobs ride in
/// the core's own Options struct, as with the DES engine.
struct NetConfig {
    Seq w = 8;
    Seq count = 1000;               // messages to transfer
    std::size_t payload_size = 1024;  // bytes of pattern payload per message
    std::optional<runtime::TimeoutMode> timeout_mode;  // nullopt = core default
    SimTime timeout = 0;            // 0 = derive from link_lifetime + ack policy
    runtime::AckPolicy ack_policy = runtime::AckPolicy::eager();
    /// Assumed bound on datagram time-in-transit (the paper's channel
    /// lifetime L).  Feeds the cores' time-based rules (send horizon, NAK
    /// one-copy) and the derived timeout.  Generous for loopback plus the
    /// impairment delays.
    SimTime link_lifetime = 50 * kMillisecond;
    ImpairSpec impair;              // applied symmetrically, both directions
    std::uint64_t seed = 1;
    SimTime deadline = 60 * kSecond;  // run cap, in clock time
    bool enable_nak = false;
    Seq nak_threshold = 3;
    /// Datagrams per transport batch: the RecvBatch arena capacity and
    /// the flush granularity of the tick's staged sends.  0 sizes it
    /// from the window -- the batch the protocol naturally builds.
    /// 1 degenerates to the single-shot path (one syscall per datagram),
    /// kept as the A/B baseline E19 measures against.
    std::size_t batch = 0;

    std::size_t effective_batch() const {
        if (batch > 0) return batch;
        return std::max<std::size_t>(static_cast<std::size_t>(w), 1);
    }

    /// The EngineConfig handed to core constructors: same knobs, with the
    /// links described as lossless-with-lifetime (loss/delay live in the
    /// real channel here, but cores only consult max_lifetime()).
    runtime::EngineConfig engine_config() const {
        runtime::EngineConfig e;
        e.w = w;
        e.count = count;
        e.timeout_mode = timeout_mode;
        e.ack_policy = ack_policy;
        e.data_link = runtime::LinkSpec::lossless(0, link_lifetime);
        e.ack_link = runtime::LinkSpec::lossless(0, link_lifetime);
        e.seed = seed;
        e.enable_nak = enable_nak;
        e.nak_threshold = nak_threshold;
        return e;
    }

    /// Retransmission timeout: explicit, or the conservative bound
    /// L_SR + L_RS + max ack delay + margin (as the DES engine derives).
    SimTime effective_timeout() const {
        if (timeout > 0) return timeout;
        return 2 * link_lifetime + ack_policy.max_ack_delay() + kMillisecond;
    }
};

/// Deterministic payload for message \p seq: a splitmix64 stream keyed by
/// the sequence number, so the receiver can verify every delivered byte
/// without any side channel.  The fill form writes into caller memory
/// (the batch slab / a reused scratch) and is what the hot paths use.
inline void pattern_fill(Seq seq, std::span<std::uint8_t> payload) {
    std::uint64_t state = seq ^ 0xba5eba115eedULL;
    std::size_t i = 0;
    while (i < payload.size()) {
        const std::uint64_t word = splitmix64(state);
        for (int b = 0; b < 8 && i < payload.size(); ++b, ++i) {
            payload[i] = static_cast<std::uint8_t>(word >> (8 * b));
        }
    }
}

inline std::vector<std::uint8_t> pattern_payload(Seq seq, std::size_t size) {
    std::vector<std::uint8_t> payload(size);
    pattern_fill(seq, payload);
    return payload;
}

/// Sending endpoint: drives the sender half of a core over a Transport.
/// poll() is the event loop body -- fire due timers, drain arriving
/// datagrams -- and must be called from one thread only.
template <runtime::EndpointCore Core>
class NetSender {
public:
    using Options = typename Core::Options;

    /// \p wheel is this endpoint's (and, when impaired, its Impairer's)
    /// timer wheel; poll() fires it, so both must live on one thread.
    NetSender(const NetConfig& cfg, Options options, TimerWheel& wheel, Transport& transport)
        : cfg_(cfg),
          ecfg_(cfg.engine_config()),
          mode_(cfg.timeout_mode.value_or(Core::kDefaultTimeoutMode)),
          timeout_(cfg.effective_timeout()),
          core_(ecfg_, std::move(options)),
          wheel_(wheel),
          transport_(&transport),
          simple_timer_(wheel_, [this] { on_simple_timeout(); }),
          blocked_timer_(wheel_, [this] { pump_send(); }),
          quiescence_timer_(wheel_, [this] { on_quiescence(); }) {}

    NetSender(const NetSender&) = delete;
    NetSender& operator=(const NetSender&) = delete;

    ~NetSender() {
        for (const auto& [id, slot] : per_message_timers_) wheel_.cancel(id);
    }

    /// Opens the faucet.  Call once before the poll loop.
    void start() {
        pump_send();
        tx_batch_.flush(*transport_);
    }

    /// One event-loop iteration: fires due timers, pushes out matured
    /// delayed copies, then handles every datagram currently readable --
    /// drained a whole arena at a time -- and finally flushes everything
    /// the tick staged (new sends, retransmits) as one batch.  Returns
    /// how many units of work (timers + datagrams) were processed.
    std::size_t poll() {
        std::size_t work = wheel_.fire_due();
        transport_->flush();  // delayed impairer copies matured above
        for (;;) {
            const std::size_t n = transport_->recv_batch(rx_batch_);
            for (std::size_t i = 0; i < n; ++i) handle_datagram(rx_batch_[i]);
            work += n;
            if (n < rx_batch_.capacity()) break;
        }
        tx_batch_.flush(*transport_);
        return work;
    }

    /// Every message sent and acknowledged.
    bool done() const { return sent_new_ == cfg_.count && !core_.has_outstanding(); }

    TimerWheel& wheel() { return wheel_; }
    const sim::Metrics& metrics() const { return metrics_; }
    SimTime timeout_value() const { return timeout_; }
    const Core& core() const { return core_; }

private:
    static constexpr bool kTimeGatedSend = runtime::kCoreTimeGatedSend<Core>;
    static constexpr bool kGatedResend = runtime::kCoreGatedResend<Core>;
    static constexpr bool kHandlesNak = runtime::kCoreHandlesNak<Core>;

    runtime::TxView txview() const {
        return txlog_.view(wheel_.now(), cfg_.link_lifetime);
    }

    void handle_datagram(std::span<const std::uint8_t> bytes) {
        const wire::DecodeResult result = wire::decode(bytes);
        if (!result.ok()) {
            ++metrics_.decode_errors;
            if (result.error() == wire::DecodeError::BadCrc) ++metrics_.crc_errors;
            return;  // treated as loss
        }
        const wire::DecodedFrame& frame = result.frame();
        if (const auto* ack = std::get_if<wire::AckFrame>(&frame)) {
            on_ack_arrival(proto::Ack{ack->lo, ack->hi});
        } else if (const auto* nak = std::get_if<wire::NakFrame>(&frame)) {
            on_nak_arrival(proto::Nak{nak->seq});
        } else {
            // DATA at the sender endpoint of a one-way transfer: a frame
            // we never sent for.  Count it as a decode-level anomaly.
            ++metrics_.decode_errors;
        }
    }

    void pump_send() {
        while (sent_new_ < cfg_.count && core_.can_send_new()) {
            if constexpr (kTimeGatedSend) {
                const SimTime ready = core_.send_blocked_until(wheel_.now());
                if (ready > wheel_.now()) {
                    if (!blocked_timer_.armed()) blocked_timer_.restart(ready - wheel_.now());
                    return;
                }
            }
            const proto::Data msg = core_.send_new(wheel_.now());
            const Seq true_seq = sent_new_++;
            transmit(msg, true_seq, /*retx=*/false);
        }
    }

    void transmit(const proto::Data& msg, Seq true_seq, bool retx) {
        // Payloads are stashed by wire seq on the far side and consumed
        // in true-seq order; that association requires unbounded wire
        // seqnums (BA unbounded, go-back-n, selective repeat).  Bounded
        // residue cores need a link-layer payload map (src/link) instead.
        BACP_ASSERT_MSG(msg.seq == true_seq,
                        "net runtime requires cores with unbounded wire seqnums");
        if (retx) {
            ++metrics_.data_retx;
        } else {
            ++metrics_.data_new;
        }
        txlog_.note(true_seq, wheel_.now());
        // Stage the frame on the tick's batch; poll() flushes the whole
        // window in one send_batch.  The payload pattern is generated
        // into a reused scratch and encoded straight onto the slab --
        // no per-frame allocation once both are at high-water mark.
        payload_scratch_.resize(cfg_.payload_size);
        pattern_fill(true_seq, payload_scratch_);
        tx_batch_.append_with([&](std::vector<std::uint8_t>& slab) {
            wire::encode_data_to(slab, msg.seq, payload_scratch_);
        });
        if (cfg_.effective_batch() <= 1) tx_batch_.flush(*transport_);
        switch (mode_) {
            case runtime::TimeoutMode::SimpleTimer:
                simple_timer_.restart(timeout_);
                break;
            case runtime::TimeoutMode::PerMessageTimer:
                schedule_per_message(true_seq);
                break;
            default:
                touch_quiescence();
                break;
        }
    }

    /// Per-message expiry timer; tracked so the destructor can cancel
    /// closures that would otherwise outlive this object on the wheel.
    /// The id is only known after schedule_after() returns, so the
    /// closure reads it through a shared slot patched in just below.
    void schedule_per_message(Seq true_seq) {
        auto slot = std::make_shared<TimerId>(kInvalidTimer);
        const TimerId id = wheel_.schedule_after(timeout_, [this, slot, true_seq] {
            per_message_timers_.erase(*slot);
            per_message_fire(true_seq);
        });
        *slot = id;
        per_message_timers_.emplace(id, std::move(slot));
    }

    void on_ack_arrival(const proto::Ack& ack) {
        ++metrics_.acks_received;
        core_.on_ack(ack, txview());
        if (mode_ == runtime::TimeoutMode::SimpleTimer && !core_.has_outstanding()) {
            simple_timer_.cancel();
        }
        pump_send();
        if constexpr (kGatedResend) {
            // SIV: an arriving ack can unblock the resend gate for
            // already-matured messages; they go out immediately.
            if (mode_ == runtime::TimeoutMode::PerMessageTimer) rescan_matured();
        }
        touch_quiescence();
    }

    void on_simple_timeout() {
        if (!core_.has_outstanding()) return;
        seq_scratch_.clear();
        core_.simple_timeout_set(seq_scratch_);
        for (const Seq true_seq : seq_scratch_) {
            transmit(core_.resend(true_seq, wheel_.now()), true_seq, /*retx=*/true);
        }
    }

    bool matured(Seq true_seq) const {
        return txlog_.matured(true_seq, wheel_.now(), timeout_);
    }

    void per_message_fire(Seq true_seq) {
        if (!core_.can_resend(true_seq)) return;  // acknowledged meanwhile
        if (!matured(true_seq)) return;           // a newer copy owns the timer
        if constexpr (kGatedResend) {
            if (!core_.timeout_eligible(true_seq, /*oracle=*/false)) {
                return;  // reconsidered on next ack
            }
        }
        transmit(core_.resend(true_seq, wheel_.now()), true_seq, /*retx=*/true);
    }

    void rescan_matured() {
        seq_scratch_.clear();
        core_.resend_candidates(seq_scratch_);
        for (const Seq true_seq : seq_scratch_) {
            if (!matured(true_seq)) continue;
            if constexpr (kGatedResend) {
                if (!core_.timeout_eligible(true_seq, /*oracle=*/false)) continue;
            }
            transmit(core_.resend(true_seq, wheel_.now()), true_seq, /*retx=*/true);
        }
    }

    /// Oracle-mode activity notification: while anything is outstanding,
    /// (re)arm the quiescence timer; a full timeout of silence stands in
    /// for the DES's provable idle point.
    void touch_quiescence() {
        if (mode_ != runtime::TimeoutMode::OracleSimple &&
            mode_ != runtime::TimeoutMode::OraclePerMessage) {
            return;
        }
        if (core_.has_outstanding()) {
            quiescence_timer_.restart(timeout_);
        } else {
            quiescence_timer_.cancel();
        }
    }

    void on_quiescence() {
        if (!core_.has_outstanding()) return;
        if (mode_ == runtime::TimeoutMode::OracleSimple) {
            seq_scratch_.clear();
            core_.simple_timeout_set(seq_scratch_);
            for (const Seq true_seq : seq_scratch_) {
                transmit(core_.resend(true_seq, wheel_.now()), true_seq, /*retx=*/true);
            }
            return;  // transmit re-armed the timer via touch_quiescence
        }
        bool any = false;
        seq_scratch_.clear();
        core_.resend_candidates(seq_scratch_);
        for (const Seq true_seq : seq_scratch_) {
            if constexpr (kGatedResend) {
                // oracle=true consults the receiver half of *this* core,
                // which is empty at the sender endpoint, so the gate
                // reduces to the sender-side conjuncts -- conservative in
                // the safe direction (never blocks a needed resend).
                if (!core_.timeout_eligible(true_seq, /*oracle=*/true)) continue;
            }
            transmit(core_.resend(true_seq, wheel_.now()), true_seq, /*retx=*/true);
            any = true;
        }
        if (!any) quiescence_timer_.restart(timeout_);  // keep watching
    }

    void on_nak_arrival(const proto::Nak& nak) {
        ++metrics_.naks_received;
        if constexpr (kHandlesNak) {
            const std::optional<Seq> target = core_.on_nak(nak, txview());
            if (!target) return;
            ++metrics_.fast_retx;
            transmit(core_.resend(*target, wheel_.now()), *target, /*retx=*/true);
        }
        // A core without NAK support simply ignores strays (the frame may
        // be a duplicate from an earlier impairment).
    }

    NetConfig cfg_;
    runtime::EngineConfig ecfg_;
    runtime::TimeoutMode mode_;
    SimTime timeout_;
    Core core_;
    TimerWheel& wheel_;
    Transport* transport_;
    OneShotTimer simple_timer_;
    OneShotTimer blocked_timer_;
    OneShotTimer quiescence_timer_;
    sim::Metrics metrics_;

    Seq sent_new_ = 0;
    runtime::TxLog txlog_;
    std::vector<Seq> seq_scratch_;  // candidate sets, reused per timeout/ack
    std::unordered_map<TimerId, std::shared_ptr<TimerId>> per_message_timers_;
    RecvBatch rx_batch_{cfg_.effective_batch()};
    SendBatch tx_batch_;                         // the tick's staged frames
    std::vector<std::uint8_t> payload_scratch_;  // pattern bytes, reused
};

/// Receiving endpoint: drives the receiver half of a core, reassembles
/// and verifies pattern payloads, and speaks the ack policy.
template <runtime::EndpointCore Core>
class NetReceiver {
public:
    using Options = typename Core::Options;

    /// Same threading contract as NetSender: \p wheel is fired by poll().
    NetReceiver(const NetConfig& cfg, Options options, TimerWheel& wheel, Transport& transport)
        : cfg_(cfg),
          ecfg_(cfg.engine_config()),
          core_(ecfg_, std::move(options)),
          wheel_(wheel),
          transport_(&transport),
          ack_flush_timer_(wheel_, [this] { flush_ack(); }) {}

    NetReceiver(const NetReceiver&) = delete;
    NetReceiver& operator=(const NetReceiver&) = delete;

    /// One event-loop iteration; single-threaded, like NetSender::poll().
    /// Drains arriving data an arena at a time and flushes the acks the
    /// tick produced as one batch -- with an eager ack policy that is one
    /// sendmmsg covering the whole received burst.
    std::size_t poll() {
        std::size_t work = wheel_.fire_due();
        transport_->flush();  // delayed impairer copies matured above
        for (;;) {
            const std::size_t n = transport_->recv_batch(rx_batch_);
            for (std::size_t i = 0; i < n; ++i) handle_datagram(rx_batch_[i]);
            work += n;
            if (n < rx_batch_.capacity()) break;
        }
        tx_batch_.flush(*transport_);
        return work;
    }

    Seq delivered() const { return delivered_; }
    std::uint64_t bytes_delivered() const { return bytes_delivered_; }
    /// Delivered payloads whose bytes did not match the expected pattern.
    /// Must be zero: CRC-32C rejects corruption before the core sees it.
    std::uint64_t payload_mismatches() const { return payload_mismatches_; }

    TimerWheel& wheel() { return wheel_; }
    const sim::Metrics& metrics() const { return metrics_; }
    const Core& core() const { return core_; }

private:
    void handle_datagram(std::span<const std::uint8_t> bytes) {
        const wire::DecodeResult result = wire::decode(bytes);
        if (!result.ok()) {
            ++metrics_.decode_errors;
            if (result.error() == wire::DecodeError::BadCrc) ++metrics_.crc_errors;
            return;  // treated as loss
        }
        const auto* data = std::get_if<wire::DataFrame>(&result.frame());
        if (data == nullptr) {
            ++metrics_.decode_errors;  // ACK/NAK at the receiver: anomaly
            return;
        }
        on_data_arrival(*data);
    }

    void on_data_arrival(const wire::DataFrame& frame) {
        ++metrics_.data_received;
        // Stash before consulting the core so a delivery it unlocks can
        // always find its bytes.
        stash_.try_emplace(frame.seq, frame.payload);
        const runtime::RxOutcome out = core_.on_data(proto::Data{frame.seq}, wheel_.now());
        if (out.dup_ack) {
            ++metrics_.duplicates;
            ++metrics_.dup_acks;
            send_ack(*out.dup_ack);
            return;
        }
        if (out.duplicate) ++metrics_.duplicates;
        for (Seq k = 0; k < out.delivered; ++k) note_delivery();
        if (out.immediate_ack) {
            ++metrics_.acks_sent;
            send_ack(*out.immediate_ack);
        }
        if (out.nak) {
            ++metrics_.naks_sent;
            const Seq nak_seq = out.nak->seq;
            tx_batch_.append_with([&](std::vector<std::uint8_t>& slab) {
                wire::encode_nak_to(slab, nak_seq);
            });
            if (cfg_.effective_batch() <= 1) tx_batch_.flush(*transport_);
        }
        // Action 5 scheduling per the ack policy.
        const Seq pending = core_.ack_pending();
        if (pending >= cfg_.ack_policy.threshold) {
            flush_ack();
        } else if (pending > 0 && !ack_flush_timer_.armed()) {
            ack_flush_timer_.restart(cfg_.ack_policy.flush_delay);
        }
    }

    void note_delivery() {
        const Seq true_seq = delivered_++;
        ++metrics_.delivered;
        const auto it = stash_.find(true_seq);
        BACP_ASSERT_MSG(it != stash_.end(), "delivered message has no stashed payload");
        expected_scratch_.resize(it->second.size());
        pattern_fill(true_seq, expected_scratch_);
        if (it->second != expected_scratch_) ++payload_mismatches_;
        bytes_delivered_ += it->second.size();
        stash_.erase(it);
    }

    void send_ack(const proto::Ack& ack) {
        tx_batch_.append_with([&](std::vector<std::uint8_t>& slab) {
            wire::encode_ack_to(slab, ack.lo, ack.hi);
        });
        if (cfg_.effective_batch() <= 1) tx_batch_.flush(*transport_);
    }

    void flush_ack() {
        ack_flush_timer_.cancel();
        if (core_.ack_pending() == 0) return;
        const proto::Ack ack = core_.make_ack();
        ++metrics_.acks_sent;
        send_ack(ack);
    }

    NetConfig cfg_;
    runtime::EngineConfig ecfg_;
    Core core_;
    TimerWheel& wheel_;
    Transport* transport_;
    OneShotTimer ack_flush_timer_;
    sim::Metrics metrics_;

    Seq delivered_ = 0;
    std::uint64_t bytes_delivered_ = 0;
    std::uint64_t payload_mismatches_ = 0;
    std::unordered_map<Seq, std::vector<std::uint8_t>> stash_;
    RecvBatch rx_batch_{cfg_.effective_batch()};
    SendBatch tx_batch_;                         // the tick's staged acks/naks
    std::vector<std::uint8_t> expected_scratch_;  // pattern verify, reused
};

/// Everything a real-time run measures.
struct NetReport {
    sim::Metrics metrics;  // sender + receiver counters, field-wise sum
    std::uint64_t bytes_delivered = 0;
    std::uint64_t payload_mismatches = 0;
    Metrics impair_sr;  // impairment boundary, sender->receiver direction
    Metrics impair_rs;
    Metrics transport_sr;  // inner transport, post-impairment
    Metrics transport_rs;
    SimTime elapsed = 0;  // clock time, start of run to completion
    bool completed = false;

    double goodput_mbps() const {
        if (elapsed <= 0) return 0.0;
        return static_cast<double>(bytes_delivered) * 8.0 / to_seconds(elapsed) / 1e6;
    }

    /// Inner-transport totals, both directions -- the send-side ratio is
    /// the batch API's headline: datagrams moved per sendmmsg.
    Metrics transport_totals() const {
        Metrics t = transport_sr;
        t += transport_rs;
        return t;
    }
    double datagrams_per_send_syscall() const {
        return transport_totals().datagrams_per_send_syscall();
    }
};

enum class NetMode {
    Udp,     // loopback sockets, SteadyClock (real time)
    Inproc,  // in-process queues, ManualClock (deterministic)
};

/// A complete two-endpoint transfer in one process.
template <runtime::EndpointCore Core>
class NetEngine {
public:
    using Options = typename Core::Options;

    explicit NetEngine(NetConfig cfg, Options options = {}, NetMode netmode = NetMode::Udp)
        : cfg_(std::move(cfg)), netmode_(netmode) {
        if (netmode_ == NetMode::Udp) {
            clock_ = &steady_clock_;
            auto [a, b] = UdpTransport::make_pair();
            raw_s_ = std::move(a);
            raw_r_ = std::move(b);
        } else {
            clock_ = &manual_clock_;
            auto [a, b] = InprocTransport::make_pair();
            raw_s_ = std::move(a);
            raw_r_ = std::move(b);
        }
        // One wheel per endpoint thread; the impairer of a direction
        // shares the wheel of the endpoint that sends through it.
        wheel_s_ = std::make_unique<TimerWheel>(*clock_);
        wheel_r_ = std::make_unique<TimerWheel>(*clock_);
        imp_s_ = std::make_unique<Impairer>(*raw_s_, *wheel_s_, cfg_.impair,
                                            runtime::mix_seed(cfg_.seed, 0xd1));
        imp_r_ = std::make_unique<Impairer>(*raw_r_, *wheel_r_, cfg_.impair,
                                            runtime::mix_seed(cfg_.seed, 0xac));
        sender_ = std::make_unique<NetSender<Core>>(cfg_, options, *wheel_s_, *imp_s_);
        receiver_ = std::make_unique<NetReceiver<Core>>(cfg_, options, *wheel_r_, *imp_r_);
    }

    /// Runs the transfer to completion or the deadline; single-threaded
    /// (both endpoints serviced by the calling thread).  With
    /// NetMode::Inproc this is exactly reproducible from the seed.
    NetReport run() {
        const SimTime start = clock_->now();
        sender_->start();
        while (!finished()) {
            if (clock_->now() - start > cfg_.deadline) break;
            // Fixed service order keeps Inproc runs deterministic.
            const std::size_t work = sender_->poll() + receiver_->poll();
            if (work > 0) continue;
            if (netmode_ == NetMode::Inproc) {
                // Idle with empty queues: jump to the next timer deadline.
                const auto next = earliest_deadline();
                if (!next) break;  // no timers, no traffic: wedged
                manual_clock_.advance_to(*next);
            } else {
                idle_wait(start);
            }
        }
        return make_report(start);
    }

    /// Runs with the receiver endpoint on a worker thread -- the real
    /// deployment shape (two independent event loops).  Requires real
    /// time (Udp mode); determinism is naturally out the window.
    NetReport run_threaded() {
        BACP_ASSERT_MSG(netmode_ == NetMode::Udp, "threaded run needs real time");
        const SimTime start = clock_->now();
        std::atomic<bool> stop{false};
        std::thread rx([this, &stop] {
            const int fds[] = {receiver_fd()};
            while (!stop.load(std::memory_order_relaxed)) {
                if (receiver_->poll() == 0) {
                    wait_readable(fds, receiver_->wheel().next_deadline()
                                           ? kMillisecond
                                           : 5 * kMillisecond);
                }
            }
        });
        sender_->start();
        while (!sender_->done() && clock_->now() - start <= cfg_.deadline) {
            if (sender_->poll() == 0) {
                const int fds[] = {sender_fd()};
                wait_readable(fds, kMillisecond);
            }
        }
        stop.store(true, std::memory_order_relaxed);
        rx.join();
        // Drain anything the receiver loop had not picked up yet.
        receiver_->poll();
        return make_report(start);
    }

    NetSender<Core>& sender() { return *sender_; }
    NetReceiver<Core>& receiver() { return *receiver_; }

private:
    bool finished() const {
        return sender_->done() && receiver_->delivered() == cfg_.count;
    }

    std::optional<SimTime> earliest_deadline() const {
        const auto a = sender_->wheel().next_deadline();
        const auto b = receiver_->wheel().next_deadline();
        if (!a) return b;
        if (!b) return a;
        return std::min(*a, *b);
    }

    int sender_fd() const { return raw_s_->fd(); }
    int receiver_fd() const { return raw_r_->fd(); }

    void idle_wait(SimTime start) {
        // Sleep until a datagram arrives or (approximately) the next
        // timer deadline; cap the wait so the deadline check stays live.
        SimTime wait = 5 * kMillisecond;
        if (const auto next = earliest_deadline()) {
            wait = std::clamp<SimTime>(*next - clock_->now(), 0, wait);
        }
        const int fds[] = {sender_fd(), receiver_fd()};
        wait_readable(fds, wait);
        (void)start;
    }

    NetReport make_report(SimTime start) const {
        NetReport report;
        report.metrics = merge(sender_->metrics(), receiver_->metrics());
        report.metrics.start_time = start;
        report.metrics.end_time = clock_->now();
        report.bytes_delivered = receiver_->bytes_delivered();
        report.payload_mismatches = receiver_->payload_mismatches();
        report.impair_sr = imp_s_->impair_stats();
        report.impair_rs = imp_r_->impair_stats();
        report.transport_sr = raw_s_->stats();
        report.transport_rs = raw_r_->stats();
        report.elapsed = clock_->now() - start;
        report.completed = sender_->done() && receiver_->delivered() == cfg_.count &&
                           report.payload_mismatches == 0;
        return report;
    }

    static sim::Metrics merge(const sim::Metrics& s, const sim::Metrics& r) {
        sim::Metrics m = s;
        m.data_received += r.data_received;
        m.duplicates += r.duplicates;
        m.acks_sent += r.acks_sent;
        m.dup_acks += r.dup_acks;
        m.delivered += r.delivered;
        m.naks_sent += r.naks_sent;
        m.decode_errors += r.decode_errors;
        m.crc_errors += r.crc_errors;
        return m;
    }

    NetConfig cfg_;
    NetMode netmode_;
    SteadyClock steady_clock_;
    ManualClock manual_clock_;
    Clock* clock_ = nullptr;
    std::unique_ptr<Transport> raw_s_;
    std::unique_ptr<Transport> raw_r_;
    std::unique_ptr<TimerWheel> wheel_s_;
    std::unique_ptr<TimerWheel> wheel_r_;
    std::unique_ptr<Impairer> imp_s_;
    std::unique_ptr<Impairer> imp_r_;
    std::unique_ptr<NetSender<Core>> sender_;
    std::unique_ptr<NetReceiver<Core>> receiver_;
};

}  // namespace bacp::net
