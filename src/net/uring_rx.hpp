#pragma once

/// \file uring_rx.hpp
/// io_uring multishot receive loop for one UDP socket -- the top rung
/// of the offload ladder (net/offload.hpp).
///
/// One armed IORING_OP_RECVMSG SQE with IORING_RECV_MULTISHOT stays
/// resident in the kernel: every arriving datagram completes into a
/// buffer the kernel selects from a provided-buffer ring we registered
/// up front (IORING_REGISTER_PBUF_RING), so the steady state does *no*
/// receive syscalls at all -- drain() just walks the completion queue
/// in user space and republishes consumed buffers.  io_uring_enter(2)
/// is only touched to (re)arm after the multishot terminates (buffer
/// exhaustion, -ENOBUFS) -- that is the residual count behind
/// syscalls_received on this tier.
///
/// The ring fd polls exactly like a socket (readable when completions
/// are pending), which is what lets UdpTransport::fd() swap it in and
/// leave every event loop untouched.
///
/// Raw syscalls + <linux/io_uring.h> only: no liburing dependency.
/// Every setup step can be refused by an older kernel; the constructor
/// then leaves ok() false and the owner stays on recvmmsg.  A kernel
/// new enough to build the rings but too old for multishot (< 6.0)
/// rejects the submission itself with an immediate -EINVAL completion;
/// that flips broken() and the owner falls back the same way.
///
/// Single-threaded by contract, like the transport that owns it.

#include <cstddef>
#include <cstdint>

#include "net/metrics.hpp"
#include "net/transport.hpp"

namespace bacp::net {

class UringRx {
public:
    /// Builds the rings, registers a provided-buffer ring of
    /// \p buf_count buffers of \p buf_bytes payload capacity each, and
    /// publishes them.  On any kernel refusal, ok() is false and the
    /// object holds no resources.
    UringRx(int sock_fd, std::size_t buf_count, std::size_t buf_bytes);
    ~UringRx();

    UringRx(const UringRx&) = delete;
    UringRx& operator=(const UringRx&) = delete;

    bool ok() const { return ring_fd_ >= 0; }

    /// Pollable like the socket: POLLIN when completions are pending.
    int ring_fd() const { return ring_fd_; }

    /// The kernel rejected the multishot submission itself (too old):
    /// tear this down and use recvmmsg.  Datagrams are still in the
    /// socket queue -- nothing armed ever consumed one.
    bool broken() const { return broken_; }

    /// Appends completed datagrams to \p batch (up to its capacity),
    /// recycles their buffers, re-arms the multishot receive when it
    /// terminated, and keeps recv-side counters in \p stats.  Returns
    /// how many datagrams were appended.
    std::size_t drain(RecvBatch& batch, Metrics& stats);

private:
    void arm(Metrics& stats);
    void recycle(std::uint16_t bid);
    void* msg();  // the persistent msghdr template, in msg_storage_
    void teardown();

    /// Buffer ids start here.  Id selection is the kernel's; the values
    /// are opaque to it, and skipping the lowest ones sidesteps a
    /// deployment kernel observed to complete CQEs for buffer id 1
    /// without ever copying the payload.
    static constexpr std::uint16_t kBidBase = 2;

    int sock_fd_ = -1;
    int ring_fd_ = -1;

    // Kernel ring mappings (SQ+CQ share one with FEAT_SINGLE_MMAP).
    void* sq_mem_ = nullptr;
    std::size_t sq_bytes_ = 0;
    void* cq_mem_ = nullptr;  // == sq_mem_ under single-mmap
    std::size_t cq_bytes_ = 0;
    void* sqe_mem_ = nullptr;
    std::size_t sqe_bytes_ = 0;

    // Raw pointers into the mappings.
    unsigned* sq_head_ = nullptr;
    unsigned* sq_tail_ = nullptr;
    unsigned* sq_mask_ = nullptr;
    unsigned* sq_flags_ = nullptr;
    unsigned* sq_array_ = nullptr;
    unsigned* cq_head_ = nullptr;
    unsigned* cq_tail_ = nullptr;
    unsigned* cq_mask_ = nullptr;
    void* cqes_ = nullptr;

    // Provided-buffer ring + the payload slab it publishes.
    void* buf_ring_mem_ = nullptr;
    std::size_t buf_ring_bytes_ = 0;
    std::uint8_t* bufs_ = nullptr;
    std::size_t bufs_bytes_ = 0;
    std::size_t buf_count_ = 0;  // power of two
    std::size_t buf_bytes_ = 0;
    unsigned br_tail_ = 0;  // local shadow of the buffer-ring tail

    alignas(8) unsigned char msg_storage_[64] = {};  // holds a ::msghdr

    bool armed_ = false;
    bool broken_ = false;
    bool ever_delivered_ = false;
};

}  // namespace bacp::net
