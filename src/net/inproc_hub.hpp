#pragma once

/// \file inproc_hub.hpp
/// Deterministic many-clients-to-one-server datagram fabric.
///
/// InprocTransport models one point-to-point link; a multi-session
/// server needs a *star*: N clients, each with its own address, all
/// funneling into one shared server endpoint that sees source addresses
/// and can reply per peer.  The hub provides exactly that shape
/// in-process, so `net::Server` tests run with ManualClock determinism
/// -- no sockets, no kernel scheduling -- while exercising the same
/// demux-by-peer and addressed-egress paths the UDP build uses.
///
/// Topology: every client send lands in the server's single inbound
/// ring tagged with the client's synthetic address (recv_batch order is
/// therefore global arrival order, reproducible under one thread); the
/// server's send_batch_to routes each datagram to the named client's
/// inbound ring.  Rings are bounded with tail drop, like socket
/// buffers, and both directions recycle payload buffers through free
/// lists so the steady state never allocates.

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/ring_buffer.hpp"
#include "net/transport.hpp"

namespace bacp::net {

class InprocHub {
public:
    /// \p capacity bounds each client's inbound ring; the server's
    /// shared inbound ring gets \p server_capacity (0 = same).
    explicit InprocHub(std::size_t capacity = 4096, std::size_t server_capacity = 0);

    /// The shared server endpoint.  recv_batch() tags each datagram
    /// with its source client's address; send_batch_to() routes by
    /// address.  Unaddressed send_batch() has no destination and counts
    /// every datagram as a drop.  Valid for the hub's lifetime.
    AddressedTransport& server() { return *server_; }

    /// Creates a client endpoint with a fresh synthetic address
    /// (10.0.0.1:1, :2, ...).  The endpoint may outlive the hub object
    /// it came from (state is shared), but not be used concurrently
    /// with hub destruction.
    std::unique_ptr<Transport> make_client();

    /// Address the next make_client() will be assigned -- lets a test
    /// know a client's identity before creating it.
    PeerAddr next_client_addr() const;

private:
    /// One bounded datagram ring + recycling free list (the
    /// InprocTransport::Queue idiom, with an optional peer tag per
    /// entry for the server direction).
    struct Entry {
        PeerAddr peer;
        std::vector<std::uint8_t> bytes;
    };
    struct Ring {
        explicit Ring(std::size_t capacity) : entries(capacity) {}
        std::mutex mutex;
        RingBuffer<Entry> entries;
        std::vector<std::vector<std::uint8_t>> free_list;
    };

    struct Shared {
        Shared(std::size_t client_capacity, std::size_t server_capacity)
            : to_server(server_capacity), client_capacity(client_capacity) {}
        Ring to_server;
        std::size_t client_capacity;
        std::mutex clients_mutex;
        std::unordered_map<std::uint64_t, std::shared_ptr<Ring>> clients;  // PeerAddr::key()
        std::uint16_t next_port = 1;
    };

    class ServerEndpoint final : public AddressedTransport {
    public:
        explicit ServerEndpoint(std::shared_ptr<Shared> shared)
            : shared_(std::move(shared)) {}
        std::size_t send_batch(
            std::span<const std::span<const std::uint8_t>> datagrams) override;
        std::size_t send_batch_to(std::span<const std::span<const std::uint8_t>> datagrams,
                                  std::span<const PeerAddr> peers) override;
        std::size_t recv_batch(RecvBatch& batch) override;

    private:
        std::shared_ptr<Shared> shared_;
    };

    class ClientEndpoint final : public Transport {
    public:
        ClientEndpoint(std::shared_ptr<Shared> shared, std::shared_ptr<Ring> inbox,
                       PeerAddr addr)
            : shared_(std::move(shared)), inbox_(std::move(inbox)), addr_(addr) {}
        std::size_t send_batch(
            std::span<const std::span<const std::uint8_t>> datagrams) override;
        std::size_t recv_batch(RecvBatch& batch) override;

    private:
        std::shared_ptr<Shared> shared_;
        std::shared_ptr<Ring> inbox_;
        PeerAddr addr_;
    };

    std::shared_ptr<Shared> shared_;
    std::unique_ptr<ServerEndpoint> server_;
};

}  // namespace bacp::net
