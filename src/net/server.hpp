#pragma once

/// \file server.hpp
/// Multi-session server: connection-multiplexed endpoint sessions over
/// shared sockets.
///
/// NetEngine pairs one endpoint with one socket -- the right shape for
/// measuring a protocol, the wrong one for serving at scale.  Server
/// inverts the ownership: N *shards* (event loops) each own one shared
/// socket, one TimerWheel, one receive arena, and a disjoint slice of a
/// flat session table keyed by (peer address, connection id).  Sessions
/// are passive: a session is a DuplexDriver adapter (NetEndpoint)
/// with no thread, no socket, and no receive arena of its own -- the
/// shard demuxes arriving datagrams to it (each decoded exactly once,
/// as a zero-copy FrameView) and collects its egress.
///
/// The batching economics that bench_e19/e21 bought survive
/// multiplexing by construction:
///   ingress  one recvmmsg fills the shard arena; demux is a hash
///            lookup per datagram, allocation-free.
///   egress   each session "flushes" into a SessionEgress that merely
///            appends to the *shard's* AddressedSendBatch; the shard
///            pushes the whole tick's frames -- interleaved across every
///            session that spoke -- through one sendmmsg.
///
/// Sharding is SO_REUSEPORT-style: all shard sockets bind one port and
/// the kernel hashes each client's source address to exactly one of
/// them, so a session's frames always arrive on the same shard and the
/// per-shard state needs no locks.  (The InprocHub used by tests is the
/// single-shard degenerate case of the same topology.)  Sessions are
/// full duplex: with session.count > 0 each one also originates data
/// back to its peer through the same shard egress, acks piggybacking on
/// that reverse DATA when session.piggyback is set.
///
/// Lifecycle: sessions open implicitly on the first frame from an
/// unknown (peer, conn); a frame with a *higher* epoch resets the
/// session (peer restarted -- fresh driver state, stale frames of the
/// old incarnation are dropped by their lower epoch); idle sessions are
/// evicted by a periodic sweep.  Teardown is destructor-driven: the
/// driver, its OneShot timers, and the per-session Impairer all cancel
/// their wheel timers on destruction, so eviction can never leave a
/// closure that fires into freed memory.  Frames from v1 (single
/// session) peers carry no connection tag and map to conn id 0 with v1
/// untagged replies -- the backward-compatibility contract of
/// PROTOCOL.md §9.

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/flat_table.hpp"
#include "common/metrics_table.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/impairer.hpp"
#include "net/net_engine.hpp"
#include "net/timer_wheel.hpp"
#include "net/transport.hpp"
#include "runtime/session_util.hpp"
#include "wire/codec.hpp"

namespace bacp::net {

/// Server-wide knobs on top of the per-session protocol surface.  One
/// aggregate covers everything that used to arrive through positional
/// arguments and helper calls: shard/socket topology, session-table
/// sizing, idle eviction, memory budgets, and impairment seeding.
struct ServerConfig {
    /// Per-session protocol configuration (window, rx_count, timeout
    /// mode, payload size, base seed...).  Each session gets a copy with
    /// its connection tag, sub-seed, and immediate-flush egress applied.
    /// Sessions are duplex endpoints: rx_count is what each session
    /// expects to sink from its peer, count what it originates back
    /// (default 0 -- a classic sink-only server).
    NetConfig session;
    /// Shard (event loop + socket) count for the socket-owning
    /// constructor; the transport-vector constructor takes one shard
    /// per supplied transport instead.
    std::size_t shards = 1;
    /// UDP port for the socket-owning constructor (0 = ephemeral; read
    /// the result from port()).
    std::uint16_t port = 0;
    /// Kernel-offload tier the shard sockets run.
    OffloadMode offload = OffloadMode::Mmsg;
    /// Socket buffer request per shard socket.  Hundreds of sessions
    /// hash to each shard; synchronized window bursts overflow default
    /// buffers long before the protocol is the bottleneck.
    std::size_t socket_buffer = std::size_t{4} << 20;
    /// Evict a session after this much silence.
    SimTime idle_timeout = 5 * kSecond;
    /// How often each shard scans its slice for idle sessions.
    SimTime sweep_interval = 500 * kMillisecond;
    /// Shard receive-arena capacity (datagrams per recvmmsg).
    std::size_t recv_batch = 256;
    /// Hard cap on sessions per shard; first frames beyond it are
    /// rejected (counted, like any other load shedding) unless
    /// evict_on_pressure frees a victim first.
    std::size_t max_sessions = 1 << 16;
    /// Per-shard session-memory budget in bytes (0 = uncapped).  The
    /// effective shard cap is min(max_sessions, budget / footprint)
    /// where the footprint counts the session record, driver, and the
    /// w-sized payload stash -- out-of-order caching is a budgeted
    /// resource, not an implicit per-session given.
    std::size_t arena_budget = 0;
    /// At the cap, evict the least-recently-active session to admit a
    /// new peer (LRU-ish, sampled) instead of rejecting it.
    bool evict_on_pressure = true;
    /// Ack-direction impairment applied per session, seeded from
    /// (session.seed, conn id) so multi-session runs replay exactly.
    ImpairSpec impair;

    /// Server sessions sink by default; originating traffic back to the
    /// peer is the explicit opt-in (session.count > 0).
    ServerConfig() { session.count = 0; }

    bool impaired() const {
        return impair.loss > 0 || impair.dup > 0 || impair.reorder > 0 ||
               impair.delay_hi > 0 || !impair.scripted_drops.empty();
    }
};

/// Session-lifecycle counters, tabled through common/metrics_table.hpp
/// (the same machinery sim::Metrics and net::Metrics use) so bench
/// emitters serialize them identically.
struct ServerStats {
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_evicted = 0;    // idle sweep
    std::uint64_t sessions_reset = 0;      // epoch bumps observed
    std::uint64_t stale_epoch_drops = 0;   // frames from dead incarnations
    std::uint64_t sessions_rejected = 0;   // table at cap, no victim freed
    /// Sessions evicted under memory pressure: the shard hit its
    /// session cap (max_sessions or arena_budget) and the LRU-ish
    /// victim sampler freed room for a new peer.
    std::uint64_t sessions_pressure_evicted = 0;
    std::uint64_t decode_errors = 0;       // pre-demux rejects
    std::uint64_t crc_errors = 0;
    /// Kernel-offload tier the shard sockets run (OffloadMode numeric
    /// value: 0 mmsg, 1 gso, 2 uring).  Merged by max -- shards share
    /// one kernel, so mixed tiers only appear after a runtime demotion.
    std::uint64_t offload_tier = 0;

    using Field = MetricsField;
    static constexpr std::size_t kFieldCount = 9;

    static constexpr std::array<CounterDef<ServerStats>, kFieldCount> kCounters = {{
        {"sessions_opened", &ServerStats::sessions_opened},
        {"sessions_evicted", &ServerStats::sessions_evicted},
        {"sessions_reset", &ServerStats::sessions_reset},
        {"stale_epoch_drops", &ServerStats::stale_epoch_drops},
        {"sessions_rejected", &ServerStats::sessions_rejected},
        {"sessions_pressure_evicted", &ServerStats::sessions_pressure_evicted},
        {"decode_errors", &ServerStats::decode_errors},
        {"crc_errors", &ServerStats::crc_errors},
        {"offload_tier", &ServerStats::offload_tier},
    }};

    ServerStats& operator+=(const ServerStats& o) {
        // Every row sums except the tier, which merges by max; redo it
        // after the tabled accumulation.
        const std::uint64_t tier = std::max(offload_tier, o.offload_tier);
        add_counters(*this, o, kCounters);
        offload_tier = tier;
        return *this;
    }

    std::array<Field, kFieldCount> fields() const { return counter_fields(*this, kCounters); }

    std::string to_json() const { return fields_json(fields()); }
};

/// Per-session egress: a Transport that stages every datagram onto the
/// shard's shared AddressedSendBatch, bound for this session's peer.
/// No boundary crossing happens here (syscall counters stay zero); the
/// shard's one flush is the crossing.  Its datagram/byte counters are
/// the per-session send totals the metrics view reports.
class SessionEgress final : public Transport {
public:
    SessionEgress(AddressedSendBatch& out, PeerAddr peer) : out_(&out), peer_(peer) {}

    std::size_t send_batch(std::span<const std::span<const std::uint8_t>> datagrams) override {
        for (const std::span<const std::uint8_t> datagram : datagrams) {
            out_->append(peer_, datagram);
            stats_.bytes_sent += datagram.size();
        }
        stats_.datagrams_sent += datagrams.size();
        return datagrams.size();
    }

    std::size_t recv_batch(RecvBatch& batch) override {
        batch.clear();  // sessions never receive through their egress
        return 0;
    }

private:
    AddressedSendBatch* out_;
    PeerAddr peer_;
};

/// Flat session-table key: which peer socket, which connection at it.
struct SessionKey {
    std::uint64_t peer = 0;  // PeerAddr::key()
    Seq conn = 0;

    friend bool operator==(const SessionKey&, const SessionKey&) = default;
};

struct SessionKeyHash {
    std::size_t operator()(const SessionKey& k) const {
        std::uint64_t x = k.peer ^ (k.conn * 0x9E3779B97F4A7C15ULL);
        return static_cast<std::size_t>(splitmix64(x));
    }
};

/// Read-only snapshot of one session, for reporting and tests.
struct SessionView {
    PeerAddr peer;
    Seq conn = 0;
    Seq epoch = 0;
    Seq delivered = 0;
    std::uint64_t bytes_delivered = 0;
    std::uint64_t payload_mismatches = 0;
    Metrics transport;  // egress totals (+ impairment decisions if any)
    const sim::Metrics* protocol = nullptr;  // driver counters; server-owned
};

std::pair<std::vector<std::unique_ptr<UdpTransport>>, std::uint16_t> inline make_reuseport_shards(
    std::uint16_t port, std::size_t shards, OffloadMode offload = OffloadMode::Mmsg,
    std::size_t socket_buffer = std::size_t{4} << 20);

template <runtime::EndpointCore Core>
class Server {
public:
    using Options = typename Core::Options;

    /// Socket-owning constructor: binds cfg.shards SO_REUSEPORT sockets
    /// on cfg.port (0 = ephemeral; see port()) at cfg.offload, sized by
    /// cfg.socket_buffer.  The whole construction surface is the one
    /// ServerConfig aggregate.
    Server(ServerConfig cfg, Options options, Clock& clock)
        : Server(make_reuseport_shards(cfg.port, cfg.shards, cfg.offload, cfg.socket_buffer),
                 std::move(cfg), std::move(options), clock) {}

    /// One shard per entry of \p shard_transports (not owned; must
    /// outlive the server).  All shards share \p clock; each owns its
    /// TimerWheel, arena, egress batch, and session-table slice.  Tests
    /// and in-process topologies (InprocHub) supply their transports
    /// here; cfg.shards/port/offload/socket_buffer are ignored.
    Server(ServerConfig cfg, Options options, Clock& clock,
           std::vector<AddressedTransport*> shard_transports)
        : cfg_(std::move(cfg)), options_(std::move(options)) {
        BACP_ASSERT_MSG(!shard_transports.empty(), "server needs at least one shard");
        shard_cap_ = shard_session_cap();
        shards_.reserve(shard_transports.size());
        for (AddressedTransport* transport : shard_transports) {
            auto shard = std::make_unique<Shard>();
            shard->transport = transport;
            shard->wheel = std::make_unique<TimerWheel>(clock);
            shard->rx.reshape(cfg_.recv_batch, cfg_.session.max_datagram);
            // Warm the session table toward its cap without paying the
            // full worst case up front: growth doubles from here, and
            // once high water is reached steady state never allocates.
            shard->sessions.reserve(std::min<std::size_t>(shard_cap_, 1024));
            shards_.push_back(std::move(shard));
        }
    }

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    std::size_t shard_count() const { return shards_.size(); }

    /// Bound UDP port (socket-owning constructor only; 0 otherwise).
    std::uint16_t port() const { return port_; }

    /// Effective per-shard session cap after the arena budget.
    std::size_t session_cap() const { return shard_cap_; }

    /// One event-loop iteration of shard \p idx: fire its wheel, drain
    /// its socket (demuxing each datagram to its session), flush the
    /// tick's egress as one addressed batch, and periodically sweep for
    /// idle sessions.  Each shard must be polled by one thread only;
    /// distinct shards may be polled concurrently.
    std::size_t poll_shard(std::size_t idx) {
        Shard& s = *shards_[idx];
        const std::size_t fired = s.wheel->fire_due();
        std::size_t work = fired;
        if (fired > 0 && s.has_impaired) {
            // Matured delayed copies were staged by the wheel; push each
            // session's coalesced group into the shard batch.
            s.sessions.for_each([](const SessionKey&, Session& session) {
                if (session.impairer && session.impairer->has_staged()) {
                    session.impairer->flush();
                }
            });
        }
        for (;;) {
            const std::size_t n = s.transport->recv_batch(s.rx);
            for (std::size_t i = 0; i < n; ++i) demux(s, s.rx.peer(i), s.rx[i]);
            work += n;
            if (n < s.rx.capacity()) break;
        }
        s.tx.flush(*s.transport);
        const SimTime now = s.wheel->now();
        if (now >= s.next_sweep) {
            work += sweep(s, now);
            s.next_sweep = now + cfg_.sweep_interval;
        }
        return work;
    }

    /// Polls every shard once from the calling thread (the
    /// deterministic single-thread mode tests and ManualClock runs use).
    std::size_t poll() {
        std::size_t work = 0;
        for (std::size_t i = 0; i < shards_.size(); ++i) work += poll_shard(i);
        return work;
    }

    /// Runs one event-loop thread per shard until \p stop becomes true.
    /// Idle shards sleep on their socket with a timer-deadline-capped
    /// poll(2), so timers stay on schedule without busy-waiting.
    void run_threads(const std::atomic<bool>& stop) {
        std::vector<std::thread> threads;
        threads.reserve(shards_.size());
        for (std::size_t i = 0; i < shards_.size(); ++i) {
            threads.emplace_back([this, i, &stop] {
                Shard& s = *shards_[i];
                while (!stop.load(std::memory_order_relaxed)) {
                    if (poll_shard(i) > 0) continue;
                    SimTime wait = kMillisecond;
                    if (const auto next = s.wheel->next_deadline()) {
                        wait = std::clamp<SimTime>(*next - s.wheel->now(), 0, wait);
                    }
                    // Re-read fd() each wait: it changes when the
                    // io_uring tier arms on the first recv_batch.
                    const int fds[] = {s.transport->fd()};
                    wait_readable(fds, wait);
                }
            });
        }
        for (std::thread& t : threads) t.join();
    }

    /// Total sessions currently open, across shards.
    std::size_t session_count() const {
        std::size_t n = 0;
        for (const auto& s : shards_) n += s->sessions.size();
        return n;
    }

    /// Summed lifecycle counters, plus the offload tier the shard
    /// sockets actually run (reflecting any runtime demotion).
    ServerStats stats() const {
        ServerStats total;
        for (const auto& s : shards_) {
            total += s->stats;
            total.offload_tier = std::max(
                total.offload_tier,
                static_cast<std::uint64_t>(s->transport->offload_tier()));
        }
        return total;
    }

    /// Shard-socket counters only: real boundary crossings.  This is
    /// where the dgrams/syscall amortization gate reads from.
    Metrics transport_metrics() const {
        Metrics total;
        for (const auto& s : shards_) total += s->transport->stats();
        return total;
    }

    /// Merged view: shard sockets plus every session's egress and
    /// impairment counters (evicted sessions included -- their totals
    /// are drained into the shard on teardown).
    Metrics merged_metrics() const {
        Metrics total = transport_metrics();
        for (const auto& s : shards_) {
            total += s->drained;
            s->wheel->add_stats(total);  // shard expiry batching (E22 JSON)
            s->sessions.for_each([&total](const SessionKey&, const Session& session) {
                total += session_transport(session);
            });
        }
        return total;
    }

    /// Per-session protocol counters, summed (live sessions).
    sim::Metrics protocol_metrics() const {
        sim::Metrics total;
        bool first = true;
        for (const auto& s : shards_) {
            s->sessions.for_each([&](const SessionKey&, const Session& session) {
                const sim::Metrics& m = session.endpoint->metrics();
                if (first) {
                    total = m;
                    first = false;
                } else {
                    total.data_received += m.data_received;
                    total.duplicates += m.duplicates;
                    total.acks_sent += m.acks_sent;
                    total.dup_acks += m.dup_acks;
                    total.delivered += m.delivered;
                    total.naks_sent += m.naks_sent;
                    total.decode_errors += m.decode_errors;
                    total.crc_errors += m.crc_errors;
                }
            });
        }
        return total;
    }

    /// Snapshot of every live session (not the hot path: allocates).
    std::vector<SessionView> sessions() const {
        std::vector<SessionView> views;
        views.reserve(session_count());
        for (const auto& s : shards_) {
            s->sessions.for_each([&views](const SessionKey&, const Session& session) {
                SessionView v;
                v.peer = session.peer;
                v.conn = session.conn;
                v.epoch = session.epoch;
                v.delivered = session.endpoint->delivered();
                v.bytes_delivered = session.endpoint->bytes_delivered();
                v.payload_mismatches = session.endpoint->payload_mismatches();
                v.transport = session_transport(session);
                v.protocol = &session.endpoint->metrics();
                views.push_back(std::move(v));
            });
        }
        return views;
    }

    /// Aggregate + per-session JSON: {"server":{...},"transport":{...},
    /// "sessions":[{...}]}.  E22 serializes this verbatim.
    std::string to_json() const {
        std::string out = "{\"server\":";
        out += stats().to_json();
        out += ",\"transport\":";
        out += merged_metrics().to_json();
        out += ",\"sessions\":[";
        bool first = true;
        for (const SessionView& v : sessions()) {
            if (!first) out += ",";
            first = false;
            out += "{\"conn\":";
            out += std::to_string(v.conn);
            out += ",\"epoch\":";
            out += std::to_string(v.epoch);
            out += ",\"delivered\":";
            out += std::to_string(v.delivered);
            out += ",\"bytes_delivered\":";
            out += std::to_string(v.bytes_delivered);
            out += ",\"transport\":";
            out += v.transport.to_json();
            out += ",\"protocol\":";
            out += v.protocol->to_json();
            out += "}";
        }
        out += "]}";
        return out;
    }

    /// The shard wheel servicing shard \p idx (tests: timer-count
    /// assertions around eviction).
    TimerWheel& shard_wheel(std::size_t idx) { return *shards_[idx]->wheel; }

    /// Delivered count of the session (peer, conn), or 0 if unknown.
    Seq session_delivered(PeerAddr peer, Seq conn) const {
        for (const auto& s : shards_) {
            if (const Session* session = s->sessions.find(SessionKey{peer.key(), conn})) {
                return session->endpoint->delivered();
            }
        }
        return 0;
    }

private:
    struct Session {
        PeerAddr peer;
        Seq conn = 0;
        Seq epoch = 0;
        bool tagged = false;  // v1 peers get v1 (untagged) replies
        SimTime last_activity = 0;
        std::unique_ptr<SessionEgress> egress;
        std::unique_ptr<Impairer> impairer;  // null when cfg.impair is transparent
        std::unique_ptr<NetEndpoint<Core>> endpoint;
    };

    struct Shard {
        AddressedTransport* transport = nullptr;
        std::unique_ptr<TimerWheel> wheel;
        RecvBatch rx{1};
        AddressedSendBatch tx;
        /// Flat open-addressing table over a contiguous Session slab:
        /// demux is one probe run with no node chase, erase is
        /// tombstone-free, and steady state never allocates.
        FlatTable<SessionKey, Session, SessionKeyHash> sessions;
        SimTime next_sweep = 0;
        ServerStats stats;
        Metrics drained;  // egress/impair totals of evicted sessions
        bool has_impaired = false;
        std::vector<SessionKey> evict_scratch;
        std::size_t victim_cursor = 0;  // rotating pressure-sampling start
    };

    static Metrics session_transport(const Session& session) {
        // The impairer wraps the egress, so its counters *include* the
        // forwarding totals; report whichever is outermost.
        return session.impairer ? session.impairer->stats() : session.egress->stats();
    }

    void demux(Shard& s, PeerAddr peer, std::span<const std::uint8_t> bytes) {
        const wire::ViewResult result = wire::decode_view(bytes);
        if (!result.ok()) {
            ++s.stats.decode_errors;
            if (result.error() == wire::DecodeError::BadCrc) ++s.stats.crc_errors;
            return;  // treated as loss
        }
        const wire::FrameView& frame = result.frame();
        // v1 peers carry no tag: they are the single legacy session at
        // their address, conn id 0, epoch 0.
        const bool tagged = frame.conn.tagged();
        const Seq conn = tagged ? frame.conn.id : 0;
        const Seq epoch = tagged ? frame.conn.epoch : 0;
        const SessionKey key{peer.key(), conn};
        Session* session = s.sessions.find(key);
        if (session == nullptr) {
            if (s.sessions.size() >= shard_cap_) {
                // At the cap: under pressure policy, free the LRU-ish
                // victim to admit the new peer; otherwise load shed
                // (indistinguishable from loss).
                if (!cfg_.evict_on_pressure || !evict_victim(s)) {
                    ++s.stats.sessions_rejected;
                    return;
                }
                ++s.stats.sessions_pressure_evicted;
            }
            session = make_session(s, key, peer, conn, epoch, tagged);
            ++s.stats.sessions_opened;
        } else if (epoch > session->epoch) {
            // Peer restarted: tear down the old incarnation's state
            // (destructors cancel its timers) and start fresh.
            reset_session(s, *session, epoch);
            ++s.stats.sessions_reset;
        } else if (epoch < session->epoch) {
            ++s.stats.stale_epoch_drops;  // late frame from a dead incarnation
            return;
        }
        session->last_activity = s.wheel->now();
        session->endpoint->handle_frame(frame);
    }

    Session* make_session(Shard& s, const SessionKey& key, PeerAddr peer, Seq conn, Seq epoch,
                          bool tagged) {
        Session* session = s.sessions.try_emplace(key).first;
        session->peer = peer;
        session->conn = conn;
        session->epoch = epoch;
        session->tagged = tagged;
        session->last_activity = s.wheel->now();
        session->egress = std::make_unique<SessionEgress>(s.tx, peer);
        attach_endpoint(s, *session);
        return session;
    }

    /// Sample a handful of live slots from the session slab and evict
    /// the least recently active (Redis-style approximate LRU: no
    /// ordering structure to maintain on the hot path).  Returns false
    /// only if the slab holds nothing to evict.
    bool evict_victim(Shard& s) {
        static constexpr std::size_t kSamples = 8;
        const std::size_t slots = s.sessions.slot_count();
        if (slots == 0 || s.sessions.empty()) return false;
        bool found = false;
        SessionKey victim{};
        SimTime oldest = 0;
        std::size_t seen = 0;
        for (std::size_t probe = 0; probe < slots && seen < kSamples; ++probe) {
            const std::size_t slot = (s.victim_cursor + probe) % slots;
            if (!s.sessions.slot_live(slot)) continue;
            ++seen;
            const Session& candidate = s.sessions.slot_value(slot);
            if (!found || candidate.last_activity < oldest) {
                found = true;
                oldest = candidate.last_activity;
                victim = s.sessions.slot_key(slot);
            }
        }
        s.victim_cursor = (s.victim_cursor + kSamples) % std::max<std::size_t>(slots, 1);
        if (!found) return false;
        Session* doomed = s.sessions.find(victim);
        s.drained += session_transport(*doomed);
        s.sessions.erase(victim);  // destructors cancel all wheel timers
        return true;
    }

    /// (Re)builds the protocol half of a session: per-session config
    /// (conn tag, sub-seed, immediate-flush egress), optional impairer,
    /// endpoint driver.
    void attach_endpoint(Shard& s, Session& session) {
        NetConfig cfg = cfg_.session;
        // Every send_ack lands in the shard batch the same tick; the
        // *shard* flush is the real batching boundary.
        cfg.batch = 1;
        cfg.seed = runtime::mix_seed(cfg_.session.seed, session.conn);
        if (session.tagged) cfg.conn = wire::Conn{session.conn, session.epoch};
        Transport* sink = session.egress.get();
        if (cfg_.impaired()) {
            session.impairer = std::make_unique<Impairer>(
                *sink, *s.wheel, cfg_.impair, runtime::mix_seed(cfg_.session.seed, session.conn));
            sink = session.impairer.get();
            s.has_impaired = true;
        }
        session.endpoint =
            std::make_unique<NetEndpoint<Core>>(cfg, options_, *s.wheel, *sink);
        // A duplex session (count > 0) starts originating immediately:
        // the first frame from the peer both opened the session and
        // proved the reverse path.
        if (cfg.count > 0) session.endpoint->start();
    }

    void reset_session(Shard& s, Session& session, Seq epoch) {
        // Order matters: the endpoint sends through the impairer, so it
        // dies first; both cancel their wheel timers on destruction.
        s.drained += session_transport(session);
        session.endpoint.reset();
        session.impairer.reset();
        session.epoch = epoch;
        attach_endpoint(s, session);
    }

    std::size_t sweep(Shard& s, SimTime now) {
        s.evict_scratch.clear();
        s.sessions.for_each([&](const SessionKey& key, const Session& session) {
            if (now - session.last_activity >= cfg_.idle_timeout) {
                s.evict_scratch.push_back(key);
            }
        });
        for (const SessionKey& key : s.evict_scratch) {
            s.drained += session_transport(*s.sessions.find(key));
            s.sessions.erase(key);  // destructors cancel all wheel timers
            ++s.stats.sessions_evicted;
        }
        return s.evict_scratch.size();
    }

    /// Estimated resident bytes per session: the slab record, the
    /// driver/endpoint adapter, and the dominant term -- the w-sized
    /// out-of-order payload stash (w+1 parked buffers).  Timer nodes
    /// ride on the shared wheel (~4 per session).  An estimate, not an
    /// accounting: the budget steers the cap, the cap is exact.
    std::size_t session_footprint() const {
        const std::size_t w = static_cast<std::size_t>(cfg_.session.w);
        return sizeof(Session) + sizeof(NetEndpoint<Core>) + sizeof(SessionEgress) +
               (w + 1) * (cfg_.session.payload_size + sizeof(std::vector<std::uint8_t>)) +
               4 * 128;
    }

    std::size_t shard_session_cap() const {
        std::size_t cap = cfg_.max_sessions;
        if (cfg_.arena_budget > 0) {
            cap = std::min(cap, std::max<std::size_t>(1, cfg_.arena_budget / session_footprint()));
        }
        return cap;
    }

    /// Socket-owning delegate: adopt the reuseport sockets, then hand
    /// their raw pointers to the transport-vector constructor.
    Server(std::pair<std::vector<std::unique_ptr<UdpTransport>>, std::uint16_t> bound,
           ServerConfig cfg, Options options, Clock& clock)
        : Server(std::move(cfg), std::move(options), clock, raw_transports(bound.first)) {
        owned_sockets_ = std::move(bound.first);
        port_ = bound.second;
    }

    static std::vector<AddressedTransport*> raw_transports(
        const std::vector<std::unique_ptr<UdpTransport>>& sockets) {
        std::vector<AddressedTransport*> raw;
        raw.reserve(sockets.size());
        for (const auto& s : sockets) raw.push_back(s.get());
        return raw;
    }

    ServerConfig cfg_;
    Options options_;
    std::size_t shard_cap_ = 0;
    // Declared before shards_ so owned sockets outlive the shards that
    // point at them during teardown.
    std::vector<std::unique_ptr<UdpTransport>> owned_sockets_;
    std::uint16_t port_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;
};

/// N SO_REUSEPORT sockets sharing one UDP port (0 = pick an ephemeral
/// port with the first, then bind the rest to it), each running the
/// requested kernel-offload tier.  Server's socket-owning constructor
/// calls this for you; feed the raw pointers to the transport-vector
/// constructor and keep the vector alive alongside it otherwise.
std::pair<std::vector<std::unique_ptr<UdpTransport>>, std::uint16_t> inline make_reuseport_shards(
    std::uint16_t port, std::size_t shards, OffloadMode offload, std::size_t socket_buffer) {
    BACP_ASSERT_MSG(shards > 0, "at least one shard");
    std::vector<std::unique_ptr<UdpTransport>> sockets;
    sockets.reserve(shards);
    sockets.push_back(std::make_unique<UdpTransport>(port, /*reuse_port=*/true));
    const std::uint16_t bound = sockets.front()->local_port();
    for (std::size_t i = 1; i < shards; ++i) {
        sockets.push_back(std::make_unique<UdpTransport>(bound, /*reuse_port=*/true));
    }
    // Hundreds of sessions hash to each shard; synchronized window
    // bursts overflow the default socket buffers long before the
    // protocol is the bottleneck.
    for (auto& s : sockets) {
        s->request_buffer_sizes(socket_buffer);
        s->enable_offload(offload);
    }
    return {std::move(sockets), bound};
}

}  // namespace bacp::net
