#include "net/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/udp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>
#include <thread>

#include "common/assert.hpp"
#include "net/uring_rx.hpp"

// The offload sockopt names may be missing from older libcs even when
// the kernel honors the numbers; the values are ABI.
#ifndef UDP_SEGMENT
#define UDP_SEGMENT 103
#endif
#ifndef UDP_GRO
#define UDP_GRO 104
#endif

namespace bacp::net {

namespace {

/// Most segments one UDP_SEGMENT super-buffer may carry.  The kernel's
/// UDP_MAX_SEGMENTS has been >= 64 since the feature landed; staying at
/// the floor keeps super-buffers portable across every GSO kernel.
constexpr std::size_t kGsoMaxSegments = 64;

/// GRO staging buffers must fit any coalesced payload the kernel can
/// hand us -- a full UDP datagram's worth.
constexpr std::size_t kGroBufferBytes = kMaxDatagram;
constexpr std::size_t kGroMaxSlots = 8;

[[noreturn]] void throw_errno(const char* what) {
    throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in loopback(std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return addr;
}

/// A full socket buffer (or transient kernel shortage) is loss, which
/// the protocol already tolerates; anything else is a bug.
bool tolerable_send_errno(int err) {
    return err == EAGAIN || err == EWOULDBLOCK || err == ENOBUFS || err == ECONNREFUSED;
}

}  // namespace

// ---- UdpTransport -----------------------------------------------------

/// mmsghdr/iovec staging arrays, reused across calls; resize() past the
/// high-water mark is the only allocation, so steady-state batches are
/// allocation-free.  Headers are wired to their iovecs once per reshape
/// -- per-call work is just the iovec base/len stores, which keeps the
/// hot path to two writes per datagram.
struct UdpTransport::Scratch {
    std::vector<::mmsghdr> hdrs;
    std::vector<::iovec> iovs;
    std::vector<::sockaddr_in> addrs;  // per-slot msg_name storage

    // ---- GSO send entries (used only when coalescing is on) -----------
    struct SendCtrl {
        alignas(::cmsghdr) char buf[CMSG_SPACE(sizeof(std::uint16_t))];
    };
    std::vector<SendCtrl> ctrls;             // per-entry UDP_SEGMENT cmsg
    std::vector<std::size_t> entry_dgrams;   // datagrams entry i covers
    std::vector<std::size_t> entry_bytes;    // total payload of entry i
    std::vector<std::uint8_t> entry_gso;     // entry i carries a GSO cmsg
    /// Landing area for runs whose spans are not already contiguous;
    /// pre-sized per batch so entry iovecs never dangle on growth.
    std::vector<std::uint8_t> gso_slab;

    // ---- GRO receive staging ------------------------------------------
    struct RecvCtrl {
        alignas(::cmsghdr) char buf[CMSG_SPACE(sizeof(int)) * 2];
    };
    struct GroBuf {
        std::size_t len = 0;  // bytes the kernel put in the buffer
        std::size_t seg = 0;  // UDP_GRO segment size; 0 = not coalesced
        PeerAddr peer;
    };
    std::vector<std::uint8_t> gro_slab;  // gro_slots x kGroBufferBytes
    std::vector<::mmsghdr> gro_hdrs;
    std::vector<::iovec> gro_iovs;
    std::vector<::sockaddr_in> gro_addrs;
    std::vector<RecvCtrl> gro_ctrls;
    std::vector<GroBuf> gro_meta;
    std::size_t gro_slots = 0;
    std::size_t gro_count = 0;  // staged buffers not yet fully drained
    std::size_t gro_idx = 0;    // drain cursor: buffer
    std::size_t gro_off = 0;    // drain cursor: byte offset within it

    void shape(std::size_t n) {
        if (hdrs.size() >= n) return;
        hdrs.resize(n);
        iovs.resize(n);
        addrs.resize(n);
        ctrls.resize(n);
        entry_dgrams.resize(n);
        entry_bytes.resize(n);
        entry_gso.resize(n);
        // resize() may have moved iovs; re-wire every header.  msg_name
        // stays null here: each call path sets (or clears) it per slot,
        // since connected sends must not carry an address while
        // addressed sends and server receives must.  Same for
        // msg_control: only GSO entries carry one.
        for (std::size_t i = 0; i < hdrs.size(); ++i) {
            std::memset(&hdrs[i], 0, sizeof(hdrs[i]));
            hdrs[i].msg_hdr.msg_iov = &iovs[i];
            hdrs[i].msg_hdr.msg_iovlen = 1;
        }
    }

    /// One-time staging setup for the GRO receive path; sized from the
    /// arena so staging memory tracks the arena's own footprint.
    void shape_gro(std::size_t slots) {
        gro_slots = slots;
        gro_slab.assign(slots * kGroBufferBytes, 0);
        gro_hdrs.resize(slots);
        gro_iovs.resize(slots);
        gro_addrs.resize(slots);
        gro_ctrls.resize(slots);
        gro_meta.resize(slots);
        for (std::size_t i = 0; i < slots; ++i) {
            std::memset(&gro_hdrs[i], 0, sizeof(gro_hdrs[i]));
            gro_iovs[i].iov_base = gro_slab.data() + i * kGroBufferBytes;
            gro_iovs[i].iov_len = kGroBufferBytes;
            gro_hdrs[i].msg_hdr.msg_iov = &gro_iovs[i];
            gro_hdrs[i].msg_hdr.msg_iovlen = 1;
            gro_hdrs[i].msg_hdr.msg_name = &gro_addrs[i];
            gro_hdrs[i].msg_hdr.msg_control = gro_ctrls[i].buf;
        }
    }
};

UdpTransport::UdpTransport(std::uint16_t port, bool reuse_port)
    : scratch_(std::make_unique<Scratch>()) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) throw_errno("socket");
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) throw_errno("fcntl");
    if (reuse_port) {
        const int one = 1;
        if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
            throw_errno("setsockopt(SO_REUSEPORT)");
        }
    }
    sockaddr_in addr = loopback(port);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
        throw_errno("bind");
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
        throw_errno("getsockname");
    }
    port_ = ntohs(addr.sin_port);
}

UdpTransport::~UdpTransport() {
    if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::request_buffer_sizes(std::size_t bytes) {
    const int v = static_cast<int>(std::min<std::size_t>(bytes, 1U << 30));
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &v, sizeof(v));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &v, sizeof(v));
}

void UdpTransport::connect_peer(std::uint16_t port) {
    const sockaddr_in addr = loopback(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
        throw_errno("connect");
    }
}

int UdpTransport::fd() const {
    return (uring_ && !uring_->broken()) ? uring_->ring_fd() : fd_;
}

void UdpTransport::enable_offload(OffloadMode mode) {
    const OffloadMode tier = resolve_offload(mode);
    tier_ = tier;
    log_offload_tier_once(tier);
    if (tier == OffloadMode::Mmsg) return;
    gso_on_ = offload_caps().gso;
    // GRO only on the Gso tier: the io_uring tier's per-buffer payload
    // capacity is one arena slot, not a coalesced super-buffer.
    if (tier == OffloadMode::Gso && offload_caps().gro) {
        const int one = 1;
        gro_on_ = ::setsockopt(fd_, SOL_UDP, UDP_GRO, &one, sizeof(one)) == 0;
    }
}

OffloadMode UdpTransport::offload_tier() const {
    if (tier_ == OffloadMode::Uring && !uring_failed_) return OffloadMode::Uring;
    if (gso_active() || gro_on_) return OffloadMode::Gso;
    return OffloadMode::Mmsg;
}

std::size_t UdpTransport::send_batch(std::span<const std::span<const std::uint8_t>> datagrams) {
    if (datagrams.empty()) return 0;
    if (gso_active()) return send_gso(datagrams, {});
    Scratch& sc = *scratch_;
    sc.shape(datagrams.size());
    for (std::size_t i = 0; i < datagrams.size(); ++i) {
        BACP_ASSERT_MSG(datagrams[i].size() <= kMaxDatagram, "datagram exceeds UDP limit");
        // sendmsg never writes through msg_iov; the const_cast is the
        // usual iovec impedance mismatch.
        sc.iovs[i].iov_base = const_cast<std::uint8_t*>(datagrams[i].data());
        sc.iovs[i].iov_len = datagrams[i].size();
        // A connected-socket send must carry no address (EISCONN
        // otherwise); clear what send_batch_to / recv_batch may have
        // set.  Same for the control block a GSO entry may have left.
        sc.hdrs[i].msg_hdr.msg_name = nullptr;
        sc.hdrs[i].msg_hdr.msg_namelen = 0;
        sc.hdrs[i].msg_hdr.msg_control = nullptr;
        sc.hdrs[i].msg_hdr.msg_controllen = 0;
    }
    return drain_sendmmsg(datagrams);
}

std::size_t UdpTransport::send_batch_to(
    std::span<const std::span<const std::uint8_t>> datagrams,
    std::span<const PeerAddr> peers) {
    BACP_ASSERT_MSG(datagrams.size() == peers.size(), "addressed batch spans not parallel");
    if (datagrams.empty()) return 0;
    if (gso_active()) return send_gso(datagrams, peers);
    Scratch& sc = *scratch_;
    sc.shape(datagrams.size());
    for (std::size_t i = 0; i < datagrams.size(); ++i) {
        BACP_ASSERT_MSG(datagrams[i].size() <= kMaxDatagram, "datagram exceeds UDP limit");
        sc.iovs[i].iov_base = const_cast<std::uint8_t*>(datagrams[i].data());
        sc.iovs[i].iov_len = datagrams[i].size();
        sc.addrs[i] = sockaddr_in{};
        sc.addrs[i].sin_family = AF_INET;
        sc.addrs[i].sin_addr.s_addr = htonl(peers[i].ip);
        sc.addrs[i].sin_port = htons(peers[i].port);
        sc.hdrs[i].msg_hdr.msg_name = &sc.addrs[i];
        sc.hdrs[i].msg_hdr.msg_namelen = sizeof(sc.addrs[i]);
        sc.hdrs[i].msg_hdr.msg_control = nullptr;
        sc.hdrs[i].msg_hdr.msg_controllen = 0;
    }
    return drain_sendmmsg(datagrams);
}

/// The GSO send path.  Scans the batch for *runs* -- consecutive
/// datagrams of one stride (the last may be shorter: a GSO super-buffer
/// is split at the stride with a short tail allowed), bound for one
/// peer, at most kGsoMaxSegments and one UDP datagram's bytes -- and
/// stages each run as a single mmsghdr entry carrying a UDP_SEGMENT
/// cmsg.  The kernel splits it back into datagrams after one traversal
/// of the stack; the receiver (with UDP_GRO) re-coalesces, so a whole
/// window crosses loopback as a handful of skbs.
///
/// SendBatch/AddressedSendBatch pack datagrams back-to-back in one
/// slab, so runs are almost always already contiguous in memory and the
/// entry iovec just points at the first span -- zero copies.  Scattered
/// spans are copied into scratch (pre-sized; no steady-state
/// allocation).  Runs of one go out as plain entries, cmsg-less, in the
/// same sendmmsg -- mixing coalesced and plain entries is fine.
std::size_t UdpTransport::send_gso(std::span<const std::span<const std::uint8_t>> datagrams,
                                   std::span<const PeerAddr> peers) {
    Scratch& sc = *scratch_;
    sc.shape(datagrams.size());
    const bool addressed = !peers.empty();
    std::size_t total_bytes = 0;
    for (const auto& d : datagrams) total_bytes += d.size();
    if (sc.gso_slab.size() < total_bytes) sc.gso_slab.resize(total_bytes);
    std::size_t slab_used = 0;

    std::size_t entries = 0;
    std::size_t i = 0;
    while (i < datagrams.size()) {
        const std::size_t stride = datagrams[i].size();
        BACP_ASSERT_MSG(stride <= kMaxDatagram, "datagram exceeds UDP limit");
        std::size_t bytes = stride;
        std::size_t j = i + 1;
        bool contiguous = true;
        if (stride > 0) {
            while (j < datagrams.size() && j - i < kGsoMaxSegments) {
                const std::size_t len = datagrams[j].size();
                if (len > stride || len == 0 || bytes + len > kMaxDatagram) break;
                if (addressed && !(peers[j] == peers[i])) break;
                if (datagrams[j].data() !=
                    datagrams[j - 1].data() + datagrams[j - 1].size()) {
                    contiguous = false;
                }
                bytes += len;
                ++j;
                if (len < stride) break;  // a short segment closes the buffer
            }
        }
        const std::size_t run = j - i;

        ::mmsghdr& h = sc.hdrs[entries];
        ::iovec& iov = sc.iovs[entries];
        if (run == 1 || contiguous) {
            iov.iov_base = const_cast<std::uint8_t*>(datagrams[i].data());
        } else {
            std::uint8_t* dst = sc.gso_slab.data() + slab_used;
            iov.iov_base = dst;
            for (std::size_t k = i; k < j; ++k) {
                std::memcpy(dst, datagrams[k].data(), datagrams[k].size());
                dst += datagrams[k].size();
            }
            slab_used += bytes;
        }
        iov.iov_len = bytes;
        if (addressed) {
            sc.addrs[entries] = sockaddr_in{};
            sc.addrs[entries].sin_family = AF_INET;
            sc.addrs[entries].sin_addr.s_addr = htonl(peers[i].ip);
            sc.addrs[entries].sin_port = htons(peers[i].port);
            h.msg_hdr.msg_name = &sc.addrs[entries];
            h.msg_hdr.msg_namelen = sizeof(sc.addrs[entries]);
        } else {
            h.msg_hdr.msg_name = nullptr;
            h.msg_hdr.msg_namelen = 0;
        }
        if (run > 1) {
            h.msg_hdr.msg_control = sc.ctrls[entries].buf;
            h.msg_hdr.msg_controllen = sizeof(sc.ctrls[entries].buf);
            ::cmsghdr* cm = CMSG_FIRSTHDR(&h.msg_hdr);
            cm->cmsg_level = SOL_UDP;
            cm->cmsg_type = UDP_SEGMENT;
            cm->cmsg_len = CMSG_LEN(sizeof(std::uint16_t));
            const auto seg = static_cast<std::uint16_t>(stride);
            std::memcpy(CMSG_DATA(cm), &seg, sizeof(seg));
        } else {
            h.msg_hdr.msg_control = nullptr;
            h.msg_hdr.msg_controllen = 0;
        }
        sc.entry_dgrams[entries] = run;
        sc.entry_bytes[entries] = bytes;
        sc.entry_gso[entries] = run > 1 ? 1 : 0;
        ++entries;
        i = j;
    }

    // The entry-level drain: like drain_sendmmsg, but one accepted
    // entry may account for many datagrams.
    std::size_t sent_entries = 0;
    std::size_t sent_dgrams = 0;
    while (sent_entries < entries) {
        int n;
        if (gso_fail_injected_) {
            gso_fail_injected_ = false;
            n = -1;
            errno = EINVAL;
        } else {
            n = ::sendmmsg(fd_, sc.hdrs.data() + sent_entries,
                           static_cast<unsigned int>(entries - sent_entries), 0);
            ++stats_.syscalls_sent;
        }
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EINVAL || errno == EIO) {
                // The kernel (or a driver under it) refused a
                // super-buffer at send time -- setsockopt acceptance is
                // not a promise.  Coalescing is off for good on this
                // socket; the unsent tail goes back through the plain
                // path, so no datagram is lost to the downgrade.
                gso_failed_ = true;
                const auto tail = datagrams.subspan(sent_dgrams);
                const std::size_t resent =
                    addressed ? send_batch_to(tail, peers.subspan(sent_dgrams))
                              : send_batch(tail);
                return sent_dgrams + resent;
            }
            BACP_ASSERT_MSG(tolerable_send_errno(errno), "udp sendmmsg (gso) failed");
            break;  // the unsent tail is a drop, counted below
        }
        for (int k = 0; k < n; ++k) {
            const std::size_t e = sent_entries + static_cast<std::size_t>(k);
            stats_.bytes_sent += sc.entry_bytes[e];
            stats_.datagrams_sent += sc.entry_dgrams[e];
            sent_dgrams += sc.entry_dgrams[e];
            if (sc.entry_gso[e]) {
                ++stats_.gso_sends;
                stats_.gso_segments += sc.entry_dgrams[e];
            }
        }
        sent_entries += static_cast<std::size_t>(n);
    }
    stats_.send_drops += datagrams.size() - sent_dgrams;
    return sent_dgrams;
}

/// Runs the staged sendmmsg loop over \p datagrams (headers already set
/// up in scratch) and keeps the send-side stats.
std::size_t UdpTransport::drain_sendmmsg(
    std::span<const std::span<const std::uint8_t>> datagrams) {
    Scratch& sc = *scratch_;
    std::size_t sent = 0;
    while (sent < datagrams.size()) {
        const int n = ::sendmmsg(fd_, sc.hdrs.data() + sent,
                                 static_cast<unsigned int>(datagrams.size() - sent), 0);
        ++stats_.syscalls_sent;
        if (n < 0) {
            if (errno == EINTR) continue;
            BACP_ASSERT_MSG(tolerable_send_errno(errno), "udp sendmmsg failed");
            break;  // the unsent tail is a drop, counted below
        }
        for (int i = 0; i < n; ++i) {
            stats_.bytes_sent += datagrams[sent + static_cast<std::size_t>(i)].size();
        }
        stats_.datagrams_sent += static_cast<std::uint64_t>(n);
        sent += static_cast<std::size_t>(n);
        // A short count means the next datagram failed without setting
        // errno; loop once more so the retry surfaces (and classifies)
        // the error, typically EAGAIN on a full buffer.
    }
    stats_.send_drops += datagrams.size() - sent;
    return sent;
}

std::size_t UdpTransport::recv_batch(RecvBatch& batch) {
    batch.clear();
    if (tier_ == OffloadMode::Uring && !uring_failed_) {
        if (!uring_) {
            // Lazily sized from the first arena seen: twice its capacity
            // in provided buffers rides out a burst while the consumer
            // drains.  fd() starts answering with the ring fd from here.
            auto rx = std::make_unique<UringRx>(fd_, batch.capacity() * 2,
                                                batch.max_datagram());
            if (rx->ok()) {
                uring_ = std::move(rx);
            } else {
                uring_failed_ = true;
            }
        }
        if (uring_) {
            const std::size_t n = uring_->drain(batch, stats_);
            if (!uring_->broken()) return n;
            // The kernel built the rings but refused the multishot
            // submission (nothing was ever delivered through it, so the
            // socket queue is intact): recvmmsg from now on.
            uring_.reset();
            uring_failed_ = true;
        }
    }
    if (gro_on_) return recv_gro(batch);
    Scratch& sc = *scratch_;
    const std::size_t cap = batch.capacity();
    sc.shape(cap);
    for (std::size_t i = 0; i < cap; ++i) {
        const std::span<std::uint8_t> slot = batch.slot(i);
        sc.iovs[i].iov_base = slot.data();
        sc.iovs[i].iov_len = slot.size();
        // Record each datagram's source so a server can demux by peer;
        // the kernel rewrites msg_namelen per datagram, so reset it
        // every call.  Clear any control block a GSO send entry staged.
        sc.hdrs[i].msg_hdr.msg_name = &sc.addrs[i];
        sc.hdrs[i].msg_hdr.msg_namelen = sizeof(sc.addrs[i]);
        sc.hdrs[i].msg_hdr.msg_control = nullptr;
        sc.hdrs[i].msg_hdr.msg_controllen = 0;
    }
    int n;
    do {
        n = ::recvmmsg(fd_, sc.hdrs.data(), static_cast<unsigned int>(cap), 0, nullptr);
        ++stats_.syscalls_received;
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
        BACP_ASSERT_MSG(errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED,
                        "udp recvmmsg failed");
        return 0;
    }
    for (int i = 0; i < n; ++i) {
        const std::size_t len = sc.hdrs[i].msg_len;
        PeerAddr peer;
        if (sc.hdrs[i].msg_hdr.msg_namelen >= sizeof(sockaddr_in) &&
            sc.addrs[i].sin_family == AF_INET) {
            peer.ip = ntohl(sc.addrs[i].sin_addr.s_addr);
            peer.port = ntohs(sc.addrs[i].sin_port);
        }
        batch.push_filled(len, peer);
        stats_.bytes_received += len;
    }
    stats_.datagrams_received += static_cast<std::uint64_t>(n);
    return static_cast<std::size_t>(n);
}

/// The GRO receive path.  With UDP_GRO set, the kernel may coalesce a
/// burst of equal-size datagrams into one buffer and report the segment
/// size in a cmsg -- so staging buffers must be full-datagram-size (a
/// fixed-stride arena slot would truncate), and recv_batch's job becomes
/// splitting staged payloads back into the arena.  Staging is sized from
/// the arena (its byte footprint, capped at kGroMaxSlots buffers), and
/// segments that overflow the arena carry over: the next call drains
/// them without a syscall, which is where the datagrams-per-syscall win
/// on this tier comes from.
std::size_t UdpTransport::recv_gro(RecvBatch& batch) {
    Scratch& sc = *scratch_;
    if (sc.gro_slots == 0) {
        const std::size_t want =
            (batch.capacity() * batch.max_datagram() + kGroBufferBytes - 1) / kGroBufferBytes;
        sc.shape_gro(std::clamp<std::size_t>(want, 1, kGroMaxSlots));
    }
    // Carried-over segments first; a full arena means no syscall at all.
    drain_gro_staging(batch);
    if (batch.size() == batch.capacity() || sc.gro_count > 0) return batch.size();

    for (std::size_t i = 0; i < sc.gro_slots; ++i) {
        sc.gro_iovs[i].iov_len = kGroBufferBytes;
        sc.gro_hdrs[i].msg_hdr.msg_namelen = sizeof(sc.gro_addrs[i]);
        sc.gro_hdrs[i].msg_hdr.msg_controllen = sizeof(sc.gro_ctrls[i].buf);
        sc.gro_hdrs[i].msg_hdr.msg_flags = 0;
    }
    int n;
    do {
        n = ::recvmmsg(fd_, sc.gro_hdrs.data(), static_cast<unsigned int>(sc.gro_slots), 0,
                       nullptr);
        ++stats_.syscalls_received;
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
        BACP_ASSERT_MSG(errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED,
                        "udp recvmmsg (gro) failed");
        return batch.size();
    }
    for (int i = 0; i < n; ++i) {
        Scratch::GroBuf& gb = sc.gro_meta[static_cast<std::size_t>(i)];
        ::msghdr& mh = sc.gro_hdrs[i].msg_hdr;
        gb.len = sc.gro_hdrs[i].msg_len;
        gb.seg = 0;
        gb.peer = PeerAddr{};
        if (mh.msg_namelen >= sizeof(sockaddr_in) &&
            sc.gro_addrs[static_cast<std::size_t>(i)].sin_family == AF_INET) {
            gb.peer.ip = ntohl(sc.gro_addrs[static_cast<std::size_t>(i)].sin_addr.s_addr);
            gb.peer.port = ntohs(sc.gro_addrs[static_cast<std::size_t>(i)].sin_port);
        }
        for (::cmsghdr* cm = CMSG_FIRSTHDR(&mh); cm != nullptr; cm = CMSG_NXTHDR(&mh, cm)) {
            if (cm->cmsg_level == SOL_UDP && cm->cmsg_type == UDP_GRO) {
                int seg = 0;
                std::memcpy(&seg, CMSG_DATA(cm), sizeof(seg));
                if (seg > 0) gb.seg = static_cast<std::size_t>(seg);
            }
        }
        if (gb.seg > 0 && gb.len > gb.seg) {
            ++stats_.gro_recvs;
            stats_.gro_segments += (gb.len + gb.seg - 1) / gb.seg;
        }
    }
    sc.gro_count = static_cast<std::size_t>(n);
    sc.gro_idx = 0;
    sc.gro_off = 0;
    drain_gro_staging(batch);
    return batch.size();
}

/// Moves staged segments into the arena until one side runs out.  A
/// coalesced buffer splits at its segment size (short tail allowed, per
/// the GRO contract); seg == 0 means the buffer is one plain datagram.
void UdpTransport::drain_gro_staging(RecvBatch& batch) {
    Scratch& sc = *scratch_;
    while (sc.gro_count > 0 && batch.size() < batch.capacity()) {
        const Scratch::GroBuf& gb = sc.gro_meta[sc.gro_idx];
        const std::uint8_t* base = sc.gro_slab.data() + sc.gro_idx * kGroBufferBytes;
        const std::size_t remaining = gb.len - sc.gro_off;
        const std::size_t take = gb.seg == 0 ? remaining : std::min(remaining, gb.seg);
        const std::span<std::uint8_t> slot = batch.slot(batch.size());
        // An oversize segment clamps to the slot, mirroring the
        // truncation a too-small arena would see on the plain path.
        const std::size_t len = std::min(take, slot.size());
        std::memcpy(slot.data(), base + sc.gro_off, len);
        batch.push_filled(len, gb.peer);
        stats_.bytes_received += len;
        ++stats_.datagrams_received;
        sc.gro_off += take;
        if (sc.gro_off >= gb.len) {
            --sc.gro_count;
            ++sc.gro_idx;
            sc.gro_off = 0;
        }
    }
}

std::pair<std::unique_ptr<UdpTransport>, std::unique_ptr<UdpTransport>>
UdpTransport::make_pair() {
    auto a = std::make_unique<UdpTransport>();
    auto b = std::make_unique<UdpTransport>();
    a->connect_peer(b->local_port());
    b->connect_peer(a->local_port());
    return {std::move(a), std::move(b)};
}

// ---- InprocTransport --------------------------------------------------

std::pair<std::unique_ptr<InprocTransport>, std::unique_ptr<InprocTransport>>
InprocTransport::make_pair(std::size_t capacity) {
    auto ab = std::make_shared<Queue>(capacity);
    auto ba = std::make_shared<Queue>(capacity);
    // a's outbox is b's inbox and vice versa.
    auto a = std::unique_ptr<InprocTransport>(new InprocTransport(ba, ab));
    auto b = std::unique_ptr<InprocTransport>(new InprocTransport(ab, ba));
    return {std::move(a), std::move(b)};
}

void InprocTransport::reserve_buffers(std::size_t count, std::size_t bytes) {
    const std::scoped_lock lock(outbox_->mutex);
    if (outbox_->free_list.size() >= count) return;
    outbox_->free_list.reserve(std::max(count, outbox_->datagrams.capacity()));
    while (outbox_->free_list.size() < count) {
        outbox_->free_list.emplace_back();
        outbox_->free_list.back().reserve(bytes);
    }
}

std::size_t InprocTransport::send_batch(std::span<const std::span<const std::uint8_t>> datagrams) {
    if (datagrams.empty()) return 0;
    std::size_t accepted = 0;
    std::uint64_t bytes = 0;
    {
        const std::scoped_lock lock(outbox_->mutex);
        for (const std::span<const std::uint8_t> datagram : datagrams) {
            if (outbox_->datagrams.full()) break;  // tail drop, like a full socket buffer
            std::vector<std::uint8_t> buffer;
            if (!outbox_->free_list.empty()) {
                buffer = std::move(outbox_->free_list.back());  // recycled capacity
                outbox_->free_list.pop_back();
            }
            buffer.assign(datagram.begin(), datagram.end());
            outbox_->datagrams.push(std::move(buffer));
            ++accepted;
            bytes += datagram.size();
        }
    }
    ++stats_.syscalls_sent;  // one queue sweep = one boundary crossing
    stats_.datagrams_sent += accepted;
    stats_.bytes_sent += bytes;
    stats_.send_drops += datagrams.size() - accepted;
    return accepted;
}

std::size_t InprocTransport::recv_batch(RecvBatch& batch) {
    batch.clear();
    std::size_t n = 0;
    std::uint64_t bytes = 0;
    {
        const std::scoped_lock lock(inbox_->mutex);
        while (n < batch.capacity() && !inbox_->datagrams.empty()) {
            std::vector<std::uint8_t> datagram = inbox_->datagrams.pop();
            BACP_ASSERT_MSG(datagram.size() <= batch.max_datagram(),
                            "inproc datagram exceeds arena slot");
            const std::span<std::uint8_t> slot = batch.slot(n);
            std::copy(datagram.begin(), datagram.end(), slot.begin());
            batch.push_filled(datagram.size());
            bytes += datagram.size();
            ++n;
            // Park the emptied buffer for the sender to refill: the pair
            // stops allocating once every buffer has cycled.
            datagram.clear();
            if (inbox_->free_list.size() < inbox_->datagrams.capacity()) {
                inbox_->free_list.push_back(std::move(datagram));
            }
        }
    }
    ++stats_.syscalls_received;
    stats_.datagrams_received += n;
    stats_.bytes_received += bytes;
    return n;
}

// ---- wait_readable ----------------------------------------------------

bool wait_readable(std::span<const int> fds, SimTime max_wait) {
    if (max_wait < 0) max_wait = 0;
    // Round up so a wait never returns before the deadline it covers.
    const int timeout_ms =
        static_cast<int>((max_wait + kMillisecond - 1) / kMillisecond);

    // Stage on the stack up to the documented capacity; larger spans take
    // one heap allocation rather than a hard cap (the old BACP_ASSERT(n <
    // 8) made an 9-fd caller a crash instead of a wait).
    pollfd stack_entries[kWaitFdStackCapacity];
    std::vector<pollfd> heap_entries;
    pollfd* entries = stack_entries;
    std::size_t usable = 0;
    for (const int fd : fds) {
        if (fd >= 0) ++usable;
    }
    if (usable > kWaitFdStackCapacity) {
        heap_entries.resize(usable);
        entries = heap_entries.data();
    }
    nfds_t count = 0;
    for (const int fd : fds) {
        if (fd < 0) continue;
        entries[count].fd = fd;
        entries[count].events = POLLIN;
        entries[count].revents = 0;
        ++count;
    }
    if (count == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(std::max(timeout_ms, 1)));
        return false;
    }
    const int ready = ::poll(entries, count, timeout_ms);
    return ready > 0;
}

}  // namespace bacp::net
