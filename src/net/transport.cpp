#include "net/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <thread>

#include "common/assert.hpp"

namespace bacp::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
    throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in loopback(std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return addr;
}

}  // namespace

UdpTransport::UdpTransport(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) throw_errno("socket");
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) throw_errno("fcntl");
    sockaddr_in addr = loopback(port);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
        throw_errno("bind");
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
        throw_errno("getsockname");
    }
    port_ = ntohs(addr.sin_port);
}

UdpTransport::~UdpTransport() {
    if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::connect_peer(std::uint16_t port) {
    const sockaddr_in addr = loopback(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
        throw_errno("connect");
    }
}

bool UdpTransport::send(std::span<const std::uint8_t> datagram) {
    BACP_ASSERT_MSG(datagram.size() <= kMaxDatagram, "datagram exceeds UDP limit");
    const ssize_t n = ::send(fd_, datagram.data(), datagram.size(), 0);
    if (n < 0) {
        // A full socket buffer (or transient kernel shortage) is loss,
        // which the protocol already tolerates; anything else is a bug.
        BACP_ASSERT_MSG(errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS ||
                            errno == ECONNREFUSED,
                        "udp send failed");
        ++stats_.send_drops;
        return false;
    }
    ++stats_.datagrams_sent;
    stats_.bytes_sent += static_cast<std::uint64_t>(n);
    return true;
}

std::optional<std::vector<std::uint8_t>> UdpTransport::recv() {
    std::vector<std::uint8_t> buf(kMaxDatagram);
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n < 0) {
        BACP_ASSERT_MSG(errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED,
                        "udp recv failed");
        return std::nullopt;
    }
    buf.resize(static_cast<std::size_t>(n));
    ++stats_.datagrams_received;
    stats_.bytes_received += static_cast<std::uint64_t>(n);
    return buf;
}

std::pair<std::unique_ptr<UdpTransport>, std::unique_ptr<UdpTransport>>
UdpTransport::make_pair() {
    auto a = std::make_unique<UdpTransport>();
    auto b = std::make_unique<UdpTransport>();
    a->connect_peer(b->local_port());
    b->connect_peer(a->local_port());
    return {std::move(a), std::move(b)};
}

std::pair<std::unique_ptr<InprocTransport>, std::unique_ptr<InprocTransport>>
InprocTransport::make_pair(std::size_t capacity) {
    auto ab = std::make_shared<Queue>(capacity);
    auto ba = std::make_shared<Queue>(capacity);
    // a's outbox is b's inbox and vice versa.
    auto a = std::unique_ptr<InprocTransport>(new InprocTransport(ba, ab));
    auto b = std::unique_ptr<InprocTransport>(new InprocTransport(ab, ba));
    return {std::move(a), std::move(b)};
}

bool InprocTransport::send(std::span<const std::uint8_t> datagram) {
    {
        const std::scoped_lock lock(outbox_->mutex);
        if (outbox_->datagrams.full()) {
            ++stats_.send_drops;
            return false;
        }
        outbox_->datagrams.push({datagram.begin(), datagram.end()});
    }
    ++stats_.datagrams_sent;
    stats_.bytes_sent += datagram.size();
    return true;
}

std::optional<std::vector<std::uint8_t>> InprocTransport::recv() {
    std::vector<std::uint8_t> datagram;
    {
        const std::scoped_lock lock(inbox_->mutex);
        if (inbox_->datagrams.empty()) return std::nullopt;
        datagram = inbox_->datagrams.pop();
    }
    ++stats_.datagrams_received;
    stats_.bytes_received += datagram.size();
    return datagram;
}

bool wait_readable(std::span<const int> fds, SimTime max_wait) {
    if (max_wait < 0) max_wait = 0;
    // Round up so a wait never returns before the deadline it covers.
    const int timeout_ms =
        static_cast<int>((max_wait + kMillisecond - 1) / kMillisecond);

    pollfd entries[8];
    nfds_t count = 0;
    for (const int fd : fds) {
        if (fd < 0) continue;
        BACP_ASSERT(count < 8);
        entries[count].fd = fd;
        entries[count].events = POLLIN;
        entries[count].revents = 0;
        ++count;
    }
    if (count == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(std::max(timeout_ms, 1)));
        return false;
    }
    const int ready = ::poll(entries, count, timeout_ms);
    return ready > 0;
}

}  // namespace bacp::net
