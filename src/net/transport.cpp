#include "net/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>
#include <thread>

#include "common/assert.hpp"

namespace bacp::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
    throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in loopback(std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return addr;
}

/// A full socket buffer (or transient kernel shortage) is loss, which
/// the protocol already tolerates; anything else is a bug.
bool tolerable_send_errno(int err) {
    return err == EAGAIN || err == EWOULDBLOCK || err == ENOBUFS || err == ECONNREFUSED;
}

}  // namespace

// ---- single-shot shims on the batch path ------------------------------

RecvBatch& Transport::shim_batch() {
    if (!shim_batch_) shim_batch_ = std::make_unique<RecvBatch>(/*capacity=*/1);
    return *shim_batch_;
}

std::optional<std::size_t> Transport::recv(std::span<std::uint8_t> out) {
    RecvBatch& batch = shim_batch();
    if (recv_batch(batch) == 0) return std::nullopt;
    const std::span<const std::uint8_t> datagram = batch[0];
    BACP_ASSERT_MSG(datagram.size() <= out.size(), "recv buffer smaller than datagram");
    std::copy(datagram.begin(), datagram.end(), out.begin());
    return datagram.size();
}

// ---- UdpTransport -----------------------------------------------------

/// mmsghdr/iovec staging arrays, reused across calls; resize() past the
/// high-water mark is the only allocation, so steady-state batches are
/// allocation-free.  Headers are wired to their iovecs once per reshape
/// -- per-call work is just the iovec base/len stores, which keeps the
/// hot path to two writes per datagram.
struct UdpTransport::Scratch {
    std::vector<::mmsghdr> hdrs;
    std::vector<::iovec> iovs;
    std::vector<::sockaddr_in> addrs;  // per-slot msg_name storage

    void shape(std::size_t n) {
        if (hdrs.size() >= n) return;
        hdrs.resize(n);
        iovs.resize(n);
        addrs.resize(n);
        // resize() may have moved iovs; re-wire every header.  msg_name
        // stays null here: each call path sets (or clears) it per slot,
        // since connected sends must not carry an address while
        // addressed sends and server receives must.
        for (std::size_t i = 0; i < hdrs.size(); ++i) {
            std::memset(&hdrs[i], 0, sizeof(hdrs[i]));
            hdrs[i].msg_hdr.msg_iov = &iovs[i];
            hdrs[i].msg_hdr.msg_iovlen = 1;
        }
    }
};

UdpTransport::UdpTransport(std::uint16_t port, bool reuse_port)
    : scratch_(std::make_unique<Scratch>()) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) throw_errno("socket");
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) throw_errno("fcntl");
    if (reuse_port) {
        const int one = 1;
        if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
            throw_errno("setsockopt(SO_REUSEPORT)");
        }
    }
    sockaddr_in addr = loopback(port);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
        throw_errno("bind");
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
        throw_errno("getsockname");
    }
    port_ = ntohs(addr.sin_port);
}

UdpTransport::~UdpTransport() {
    if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::request_buffer_sizes(std::size_t bytes) {
    const int v = static_cast<int>(std::min<std::size_t>(bytes, 1U << 30));
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &v, sizeof(v));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &v, sizeof(v));
}

void UdpTransport::connect_peer(std::uint16_t port) {
    const sockaddr_in addr = loopback(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
        throw_errno("connect");
    }
}

std::size_t UdpTransport::send_batch(std::span<const std::span<const std::uint8_t>> datagrams) {
    if (datagrams.empty()) return 0;
    Scratch& sc = *scratch_;
    sc.shape(datagrams.size());
    for (std::size_t i = 0; i < datagrams.size(); ++i) {
        BACP_ASSERT_MSG(datagrams[i].size() <= kMaxDatagram, "datagram exceeds UDP limit");
        // sendmsg never writes through msg_iov; the const_cast is the
        // usual iovec impedance mismatch.
        sc.iovs[i].iov_base = const_cast<std::uint8_t*>(datagrams[i].data());
        sc.iovs[i].iov_len = datagrams[i].size();
        // A connected-socket send must carry no address (EISCONN
        // otherwise); clear what send_batch_to / recv_batch may have set.
        sc.hdrs[i].msg_hdr.msg_name = nullptr;
        sc.hdrs[i].msg_hdr.msg_namelen = 0;
    }
    return drain_sendmmsg(datagrams);
}

std::size_t UdpTransport::send_batch_to(
    std::span<const std::span<const std::uint8_t>> datagrams,
    std::span<const PeerAddr> peers) {
    BACP_ASSERT_MSG(datagrams.size() == peers.size(), "addressed batch spans not parallel");
    if (datagrams.empty()) return 0;
    Scratch& sc = *scratch_;
    sc.shape(datagrams.size());
    for (std::size_t i = 0; i < datagrams.size(); ++i) {
        BACP_ASSERT_MSG(datagrams[i].size() <= kMaxDatagram, "datagram exceeds UDP limit");
        sc.iovs[i].iov_base = const_cast<std::uint8_t*>(datagrams[i].data());
        sc.iovs[i].iov_len = datagrams[i].size();
        sc.addrs[i] = sockaddr_in{};
        sc.addrs[i].sin_family = AF_INET;
        sc.addrs[i].sin_addr.s_addr = htonl(peers[i].ip);
        sc.addrs[i].sin_port = htons(peers[i].port);
        sc.hdrs[i].msg_hdr.msg_name = &sc.addrs[i];
        sc.hdrs[i].msg_hdr.msg_namelen = sizeof(sc.addrs[i]);
    }
    return drain_sendmmsg(datagrams);
}

/// Runs the staged sendmmsg loop over \p datagrams (headers already set
/// up in scratch) and keeps the send-side stats.
std::size_t UdpTransport::drain_sendmmsg(
    std::span<const std::span<const std::uint8_t>> datagrams) {
    Scratch& sc = *scratch_;
    std::size_t sent = 0;
    while (sent < datagrams.size()) {
        const int n = ::sendmmsg(fd_, sc.hdrs.data() + sent,
                                 static_cast<unsigned int>(datagrams.size() - sent), 0);
        ++stats_.syscalls_sent;
        if (n < 0) {
            if (errno == EINTR) continue;
            BACP_ASSERT_MSG(tolerable_send_errno(errno), "udp sendmmsg failed");
            break;  // the unsent tail is a drop, counted below
        }
        for (int i = 0; i < n; ++i) {
            stats_.bytes_sent += datagrams[sent + static_cast<std::size_t>(i)].size();
        }
        stats_.datagrams_sent += static_cast<std::uint64_t>(n);
        sent += static_cast<std::size_t>(n);
        // A short count means the next datagram failed without setting
        // errno; loop once more so the retry surfaces (and classifies)
        // the error, typically EAGAIN on a full buffer.
    }
    stats_.send_drops += datagrams.size() - sent;
    return sent;
}

std::size_t UdpTransport::recv_batch(RecvBatch& batch) {
    batch.clear();
    Scratch& sc = *scratch_;
    const std::size_t cap = batch.capacity();
    sc.shape(cap);
    for (std::size_t i = 0; i < cap; ++i) {
        const std::span<std::uint8_t> slot = batch.slot(i);
        sc.iovs[i].iov_base = slot.data();
        sc.iovs[i].iov_len = slot.size();
        // Record each datagram's source so a server can demux by peer;
        // the kernel rewrites msg_namelen per datagram, so reset it
        // every call.
        sc.hdrs[i].msg_hdr.msg_name = &sc.addrs[i];
        sc.hdrs[i].msg_hdr.msg_namelen = sizeof(sc.addrs[i]);
    }
    int n;
    do {
        n = ::recvmmsg(fd_, sc.hdrs.data(), static_cast<unsigned int>(cap), 0, nullptr);
        ++stats_.syscalls_received;
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
        BACP_ASSERT_MSG(errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED,
                        "udp recvmmsg failed");
        return 0;
    }
    for (int i = 0; i < n; ++i) {
        const std::size_t len = sc.hdrs[i].msg_len;
        PeerAddr peer;
        if (sc.hdrs[i].msg_hdr.msg_namelen >= sizeof(sockaddr_in) &&
            sc.addrs[i].sin_family == AF_INET) {
            peer.ip = ntohl(sc.addrs[i].sin_addr.s_addr);
            peer.port = ntohs(sc.addrs[i].sin_port);
        }
        batch.push_filled(len, peer);
        stats_.bytes_received += len;
    }
    stats_.datagrams_received += static_cast<std::uint64_t>(n);
    return static_cast<std::size_t>(n);
}

std::pair<std::unique_ptr<UdpTransport>, std::unique_ptr<UdpTransport>>
UdpTransport::make_pair() {
    auto a = std::make_unique<UdpTransport>();
    auto b = std::make_unique<UdpTransport>();
    a->connect_peer(b->local_port());
    b->connect_peer(a->local_port());
    return {std::move(a), std::move(b)};
}

// ---- InprocTransport --------------------------------------------------

std::pair<std::unique_ptr<InprocTransport>, std::unique_ptr<InprocTransport>>
InprocTransport::make_pair(std::size_t capacity) {
    auto ab = std::make_shared<Queue>(capacity);
    auto ba = std::make_shared<Queue>(capacity);
    // a's outbox is b's inbox and vice versa.
    auto a = std::unique_ptr<InprocTransport>(new InprocTransport(ba, ab));
    auto b = std::unique_ptr<InprocTransport>(new InprocTransport(ab, ba));
    return {std::move(a), std::move(b)};
}

std::size_t InprocTransport::send_batch(std::span<const std::span<const std::uint8_t>> datagrams) {
    if (datagrams.empty()) return 0;
    std::size_t accepted = 0;
    std::uint64_t bytes = 0;
    {
        const std::scoped_lock lock(outbox_->mutex);
        for (const std::span<const std::uint8_t> datagram : datagrams) {
            if (outbox_->datagrams.full()) break;  // tail drop, like a full socket buffer
            std::vector<std::uint8_t> buffer;
            if (!outbox_->free_list.empty()) {
                buffer = std::move(outbox_->free_list.back());  // recycled capacity
                outbox_->free_list.pop_back();
            }
            buffer.assign(datagram.begin(), datagram.end());
            outbox_->datagrams.push(std::move(buffer));
            ++accepted;
            bytes += datagram.size();
        }
    }
    ++stats_.syscalls_sent;  // one queue sweep = one boundary crossing
    stats_.datagrams_sent += accepted;
    stats_.bytes_sent += bytes;
    stats_.send_drops += datagrams.size() - accepted;
    return accepted;
}

std::size_t InprocTransport::recv_batch(RecvBatch& batch) {
    batch.clear();
    std::size_t n = 0;
    std::uint64_t bytes = 0;
    {
        const std::scoped_lock lock(inbox_->mutex);
        while (n < batch.capacity() && !inbox_->datagrams.empty()) {
            std::vector<std::uint8_t> datagram = inbox_->datagrams.pop();
            BACP_ASSERT_MSG(datagram.size() <= batch.max_datagram(),
                            "inproc datagram exceeds arena slot");
            const std::span<std::uint8_t> slot = batch.slot(n);
            std::copy(datagram.begin(), datagram.end(), slot.begin());
            batch.push_filled(datagram.size());
            bytes += datagram.size();
            ++n;
            // Park the emptied buffer for the sender to refill: the pair
            // stops allocating once every buffer has cycled.
            datagram.clear();
            if (inbox_->free_list.size() < inbox_->datagrams.capacity()) {
                inbox_->free_list.push_back(std::move(datagram));
            }
        }
    }
    ++stats_.syscalls_received;
    stats_.datagrams_received += n;
    stats_.bytes_received += bytes;
    return n;
}

// ---- wait_readable ----------------------------------------------------

bool wait_readable(std::span<const int> fds, SimTime max_wait) {
    if (max_wait < 0) max_wait = 0;
    // Round up so a wait never returns before the deadline it covers.
    const int timeout_ms =
        static_cast<int>((max_wait + kMillisecond - 1) / kMillisecond);

    // Stage on the stack up to the documented capacity; larger spans take
    // one heap allocation rather than a hard cap (the old BACP_ASSERT(n <
    // 8) made an 9-fd caller a crash instead of a wait).
    pollfd stack_entries[kWaitFdStackCapacity];
    std::vector<pollfd> heap_entries;
    pollfd* entries = stack_entries;
    std::size_t usable = 0;
    for (const int fd : fds) {
        if (fd >= 0) ++usable;
    }
    if (usable > kWaitFdStackCapacity) {
        heap_entries.resize(usable);
        entries = heap_entries.data();
    }
    nfds_t count = 0;
    for (const int fd : fds) {
        if (fd < 0) continue;
        entries[count].fd = fd;
        entries[count].events = POLLIN;
        entries[count].revents = 0;
        ++count;
    }
    if (count == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(std::max(timeout_ms, 1)));
        return false;
    }
    const int ready = ::poll(entries, count, timeout_ms);
    return ready > 0;
}

}  // namespace bacp::net
