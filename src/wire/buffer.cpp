#include "wire/buffer.hpp"

namespace bacp::wire {

void BufWriter::put_u16(std::uint16_t v) {
    put_u8(static_cast<std::uint8_t>(v));
    put_u8(static_cast<std::uint8_t>(v >> 8));
}

void BufWriter::put_u32(std::uint32_t v) {
    put_u16(static_cast<std::uint16_t>(v));
    put_u16(static_cast<std::uint16_t>(v >> 16));
}

void BufWriter::put_u64(std::uint64_t v) {
    put_u32(static_cast<std::uint32_t>(v));
    put_u32(static_cast<std::uint32_t>(v >> 32));
}

void BufWriter::put_varint(std::uint64_t v) {
    while (v >= 0x80) {
        put_u8(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    put_u8(static_cast<std::uint8_t>(v));
}

void BufWriter::put_bytes(std::span<const std::uint8_t> bytes) {
    out_.insert(out_.end(), bytes.begin(), bytes.end());
}

std::optional<std::uint8_t> BufReader::get_u8() {
    if (remaining() < 1) return std::nullopt;
    return data_[pos_++];
}

std::optional<std::uint16_t> BufReader::get_u16() {
    if (remaining() < 2) return std::nullopt;
    std::uint16_t v = data_[pos_];
    v |= static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
}

std::optional<std::uint32_t> BufReader::get_u32() {
    if (remaining() < 4) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
}

std::optional<std::uint64_t> BufReader::get_u64() {
    if (remaining() < 8) return std::nullopt;
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 8;
    return v;
}

std::optional<std::uint64_t> BufReader::get_varint() {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        const auto byte = get_u8();
        if (!byte) return std::nullopt;
        if (shift == 63 && (*byte & 0x7e) != 0) return std::nullopt;  // overflow
        v |= static_cast<std::uint64_t>(*byte & 0x7f) << shift;
        if ((*byte & 0x80) == 0) return v;
    }
    return std::nullopt;  // > 10 bytes: malformed
}

std::optional<std::span<const std::uint8_t>> BufReader::get_bytes(std::size_t n) {
    if (remaining() < n) return std::nullopt;
    auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
}

}  // namespace bacp::wire
