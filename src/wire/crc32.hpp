#pragma once

/// \file crc32.hpp
/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78).
///
/// Used as the frame integrity check.  The table is built once at static
/// initialization; crc32c() is incremental-friendly via the seed argument.

#include <cstddef>
#include <cstdint>
#include <span>

namespace bacp::wire {

/// Computes CRC-32C over \p data.  Pass a previous result as \p seed to
/// continue a running checksum across multiple buffers.
std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t seed = 0);

}  // namespace bacp::wire
