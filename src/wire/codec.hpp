#pragma once

/// \file codec.hpp
/// Frame encoder/decoder with CRC-32C integrity checking.
///
/// Decoding never throws on malformed input: wire bytes are untrusted, so
/// every failure mode maps to a DecodeError.  A frame whose CRC fails is
/// indistinguishable from a corrupted one and must be treated as *lost*
/// (the protocol's loss tolerance covers it); delivering it would break
/// the channel model the correctness proof assumes.

#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "protocol/message.hpp"
#include "wire/frame.hpp"

namespace bacp::wire {

enum class DecodeError {
    TooShort,       // fewer than kMinFrameSize bytes
    BadMagic,
    BadVersion,
    BadType,
    Truncated,      // body shorter than its own length fields claim
    TrailingBytes,  // body longer than the frame consumed
    BadCrc,
    BadAckRange,    // lo > hi
    Oversized,      // declared payload length > kMaxPayload or > datagram
};

const char* to_string(DecodeError err);

using DecodedFrame = std::variant<DataFrame, AckFrame, NakFrame, DataAckFrame>;

/// Result of decode(): a frame or the reason it was rejected.
struct DecodeResult {
    std::variant<DecodedFrame, DecodeError> value;

    bool ok() const { return std::holds_alternative<DecodedFrame>(value); }
    const DecodedFrame& frame() const { return std::get<DecodedFrame>(value); }
    DecodeError error() const { return std::get<DecodeError>(value); }
};

/// Result of decode_view(): a non-owning FrameView or the rejection
/// reason.  The view (payload span included) is valid only as long as
/// the decoded bytes are.
struct ViewResult {
    std::variant<FrameView, DecodeError> value;

    bool ok() const { return std::holds_alternative<FrameView>(value); }
    const FrameView& frame() const { return std::get<FrameView>(value); }
    DecodeError error() const { return std::get<DecodeError>(value); }
};

/// Sentinel: frame is not stream-tagged.
inline constexpr Seq kNoStream = ~Seq{0};

/// Serializes a DATA frame.  Passing a \p stream other than kNoStream
/// sets kFlagStream and prepends the stream id to the body; passing a
/// tagged \p conn emits the v2 header (conn id + epoch varints).
std::vector<std::uint8_t> encode_data(Seq seq, std::span<const std::uint8_t> payload = {},
                                      std::uint8_t flags = kFlagNone, Seq stream = kNoStream,
                                      Conn conn = {});

/// Serializes an ACK frame.  Precondition: lo <= hi.
std::vector<std::uint8_t> encode_ack(Seq lo, Seq hi, std::uint8_t flags = kFlagNone,
                                     Seq stream = kNoStream, Conn conn = {});

/// Serializes a NAK frame.
std::vector<std::uint8_t> encode_nak(Seq seq, std::uint8_t flags = kFlagNone,
                                     Seq stream = kNoStream, Conn conn = {});

/// Serializes a DATA+ACK piggyback frame.  Precondition: lo <= hi.
std::vector<std::uint8_t> encode_data_ack(Seq seq, Seq ack_lo, Seq ack_hi,
                                          std::span<const std::uint8_t> payload = {},
                                          std::uint8_t flags = kFlagNone,
                                          Seq stream = kNoStream, Conn conn = {});

// Append-style variants: serialize the frame onto the *end* of \p out,
// leaving prior bytes untouched (the CRC covers only the appended frame).
// This is the batch-slab idiom -- net::SendBatch packs one tick's frames
// back to back in a reused buffer, so encoding costs no allocation once
// the slab has reached its high-water mark.  The value-returning
// encoders above are thin wrappers.

void encode_data_to(std::vector<std::uint8_t>& out, Seq seq,
                    std::span<const std::uint8_t> payload = {},
                    std::uint8_t flags = kFlagNone, Seq stream = kNoStream, Conn conn = {});

void encode_ack_to(std::vector<std::uint8_t>& out, Seq lo, Seq hi,
                   std::uint8_t flags = kFlagNone, Seq stream = kNoStream, Conn conn = {});

void encode_nak_to(std::vector<std::uint8_t>& out, Seq seq, std::uint8_t flags = kFlagNone,
                   Seq stream = kNoStream, Conn conn = {});

void encode_data_ack_to(std::vector<std::uint8_t>& out, Seq seq, Seq ack_lo, Seq ack_hi,
                        std::span<const std::uint8_t> payload = {},
                        std::uint8_t flags = kFlagNone, Seq stream = kNoStream,
                        Conn conn = {});

/// Stream id of a decoded frame, or kNoStream when untagged.
Seq stream_of(const DecodedFrame& frame);

/// Connection tag of a decoded frame (untagged on v1 frames).
Conn conn_of(const DecodedFrame& frame);

/// Serializes an abstract protocol message (payload-less).
std::vector<std::uint8_t> encode_message(const proto::Message& msg,
                                         std::uint8_t flags = kFlagNone);

/// Parses one complete frame occupying exactly \p bytes.
DecodeResult decode(std::span<const std::uint8_t> bytes);

/// Parses one complete frame without materializing it: the returned
/// FrameView's payload is a span into \p bytes, so nothing is copied and
/// nothing is allocated.  decode() is this plus materialization; the
/// parsing (and rejection) behavior is identical by construction.
ViewResult decode_view(std::span<const std::uint8_t> bytes);

/// Converts a decoded frame to the abstract message type (drops payload).
proto::Message to_message(const DecodedFrame& frame);

}  // namespace bacp::wire
