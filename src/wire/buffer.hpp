#pragma once

/// \file buffer.hpp
/// Bounds-checked serialization primitives.
///
/// BufWriter appends little-endian integers and byte ranges to a caller
/// supplied vector; BufReader consumes them from a span.  Readers never
/// throw on truncated input -- they return false / std::nullopt so the
/// codec can reject malformed frames gracefully (wire input is untrusted).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace bacp::wire {

/// Appending writer over a growable byte vector.
class BufWriter {
public:
    explicit BufWriter(std::vector<std::uint8_t>& out) : out_(out) {}

    void put_u8(std::uint8_t v) { out_.push_back(v); }
    void put_u16(std::uint16_t v);
    void put_u32(std::uint32_t v);
    void put_u64(std::uint64_t v);

    /// LEB128-style unsigned varint (1..10 bytes).
    void put_varint(std::uint64_t v);

    void put_bytes(std::span<const std::uint8_t> bytes);

    std::size_t size() const { return out_.size(); }

private:
    std::vector<std::uint8_t>& out_;
};

/// Consuming reader over an immutable byte span.
class BufReader {
public:
    explicit BufReader(std::span<const std::uint8_t> data) : data_(data) {}

    std::size_t remaining() const { return data_.size() - pos_; }
    bool exhausted() const { return remaining() == 0; }
    std::size_t position() const { return pos_; }

    std::optional<std::uint8_t> get_u8();
    std::optional<std::uint16_t> get_u16();
    std::optional<std::uint32_t> get_u32();
    std::optional<std::uint64_t> get_u64();

    /// Reads a varint; fails on truncation or >10-byte encodings.
    std::optional<std::uint64_t> get_varint();

    /// Returns a view of the next \p n bytes and advances, or nullopt.
    std::optional<std::span<const std::uint8_t>> get_bytes(std::size_t n);

private:
    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

}  // namespace bacp::wire
