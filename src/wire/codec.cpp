#include "wire/codec.hpp"

#include "common/assert.hpp"
#include "wire/buffer.hpp"
#include "wire/crc32.hpp"

namespace bacp::wire {

const char* to_string(DecodeError err) {
    switch (err) {
        case DecodeError::TooShort: return "TooShort";
        case DecodeError::BadMagic: return "BadMagic";
        case DecodeError::BadVersion: return "BadVersion";
        case DecodeError::BadType: return "BadType";
        case DecodeError::Truncated: return "Truncated";
        case DecodeError::TrailingBytes: return "TrailingBytes";
        case DecodeError::BadCrc: return "BadCrc";
        case DecodeError::BadAckRange: return "BadAckRange";
        case DecodeError::Oversized: return "Oversized";
    }
    return "?";
}

namespace {

/// Appends the CRC of out[base..] -- the frame being appended, not any
/// earlier datagrams sharing the slab.
void append_crc(std::vector<std::uint8_t>& out, std::size_t base) {
    const std::uint32_t crc =
        crc32c(std::span<const std::uint8_t>(out.data() + base, out.size() - base));
    BufWriter writer(out);
    writer.put_u32(crc);
}

void put_header(BufWriter& writer, FrameType type, std::uint8_t flags, Seq stream,
                Conn conn) {
    const bool tagged = stream != kNoStream;
    writer.put_u8(kMagic);
    writer.put_u8(conn.tagged() ? kVersion2 : kVersion);
    writer.put_u8(static_cast<std::uint8_t>(type));
    writer.put_u8(tagged ? static_cast<std::uint8_t>(flags | kFlagStream) : flags);
    if (conn.tagged()) {
        writer.put_varint(conn.id);
        writer.put_varint(conn.epoch);
    }
    if (tagged) writer.put_varint(stream);
}

}  // namespace

void encode_data_to(std::vector<std::uint8_t>& out, Seq seq,
                    std::span<const std::uint8_t> payload, std::uint8_t flags, Seq stream,
                    Conn conn) {
    BACP_ASSERT_MSG(payload.size() <= kMaxPayload, "payload exceeds kMaxPayload");
    const std::size_t base = out.size();
    out.reserve(base + kMinFrameSize + payload.size() + 8);
    BufWriter writer(out);
    put_header(writer, FrameType::Data, flags, stream, conn);
    writer.put_varint(seq);
    writer.put_varint(payload.size());
    writer.put_bytes(payload);
    append_crc(out, base);
}

void encode_ack_to(std::vector<std::uint8_t>& out, Seq lo, Seq hi, std::uint8_t flags,
                   Seq stream, Conn conn) {
    BACP_ASSERT_MSG(lo <= hi, "ack encode with lo > hi");
    const std::size_t base = out.size();
    out.reserve(base + kMinFrameSize + 8);
    BufWriter writer(out);
    put_header(writer, FrameType::Ack, flags, stream, conn);
    writer.put_varint(lo);
    writer.put_varint(hi);
    append_crc(out, base);
}

void encode_nak_to(std::vector<std::uint8_t>& out, Seq seq, std::uint8_t flags, Seq stream,
                   Conn conn) {
    const std::size_t base = out.size();
    out.reserve(base + kMinFrameSize + 8);
    BufWriter writer(out);
    put_header(writer, FrameType::Nak, flags, stream, conn);
    writer.put_varint(seq);
    append_crc(out, base);
}

void encode_data_ack_to(std::vector<std::uint8_t>& out, Seq seq, Seq ack_lo, Seq ack_hi,
                        std::span<const std::uint8_t> payload, std::uint8_t flags,
                        Seq stream, Conn conn) {
    BACP_ASSERT_MSG(ack_lo <= ack_hi, "piggyback ack encode with lo > hi");
    BACP_ASSERT_MSG(payload.size() <= kMaxPayload, "payload exceeds kMaxPayload");
    const std::size_t base = out.size();
    out.reserve(base + kMinFrameSize + payload.size() + 16);
    BufWriter writer(out);
    put_header(writer, FrameType::DataAck, flags, stream, conn);
    writer.put_varint(seq);
    writer.put_varint(payload.size());
    writer.put_bytes(payload);
    writer.put_varint(ack_lo);
    writer.put_varint(ack_hi);
    append_crc(out, base);
}

std::vector<std::uint8_t> encode_data(Seq seq, std::span<const std::uint8_t> payload,
                                      std::uint8_t flags, Seq stream, Conn conn) {
    std::vector<std::uint8_t> out;
    encode_data_to(out, seq, payload, flags, stream, conn);
    return out;
}

std::vector<std::uint8_t> encode_ack(Seq lo, Seq hi, std::uint8_t flags, Seq stream,
                                     Conn conn) {
    std::vector<std::uint8_t> out;
    encode_ack_to(out, lo, hi, flags, stream, conn);
    return out;
}

std::vector<std::uint8_t> encode_nak(Seq seq, std::uint8_t flags, Seq stream, Conn conn) {
    std::vector<std::uint8_t> out;
    encode_nak_to(out, seq, flags, stream, conn);
    return out;
}

std::vector<std::uint8_t> encode_data_ack(Seq seq, Seq ack_lo, Seq ack_hi,
                                          std::span<const std::uint8_t> payload,
                                          std::uint8_t flags, Seq stream, Conn conn) {
    std::vector<std::uint8_t> out;
    encode_data_ack_to(out, seq, ack_lo, ack_hi, payload, flags, stream, conn);
    return out;
}

std::vector<std::uint8_t> encode_message(const proto::Message& msg, std::uint8_t flags) {
    if (const auto* data = std::get_if<proto::Data>(&msg)) {
        return encode_data(data->seq, {}, flags);
    }
    if (const auto* ack = std::get_if<proto::Ack>(&msg)) {
        return encode_ack(ack->lo, ack->hi, flags);
    }
    if (const auto* nak = std::get_if<proto::Nak>(&msg)) {
        return encode_nak(nak->seq, flags);
    }
    const auto& da = std::get<proto::DataAck>(msg);
    return encode_data_ack(da.data.seq, da.ack.lo, da.ack.hi, {}, flags);
}

ViewResult decode_view(std::span<const std::uint8_t> bytes) {
    if (bytes.size() < kMinFrameSize) return {DecodeError::TooShort};

    // CRC first: corrupted frames must be rejected before any field is
    // interpreted.
    const auto body = bytes.first(bytes.size() - 4);
    BufReader crc_reader(bytes.subspan(bytes.size() - 4));
    const std::uint32_t stored_crc = *crc_reader.get_u32();
    if (crc32c(body) != stored_crc) return {DecodeError::BadCrc};

    BufReader reader(body);
    const auto magic = reader.get_u8();
    if (!magic || *magic != kMagic) return {DecodeError::BadMagic};
    const auto version = reader.get_u8();
    if (!version || (*version != kVersion && *version != kVersion2)) {
        return {DecodeError::BadVersion};
    }
    const auto type = reader.get_u8();
    if (!type) return {DecodeError::Truncated};
    const auto flags = reader.get_u8();
    if (!flags) return {DecodeError::Truncated};

    FrameView view;
    view.flags = *flags;
    if (*version == kVersion2) {
        const auto conn_id = reader.get_varint();
        if (!conn_id) return {DecodeError::Truncated};
        const auto epoch = reader.get_varint();
        if (!epoch) return {DecodeError::Truncated};
        // A v2 header whose conn id is the untagged sentinel would
        // round-trip as a v1 frame; no conforming encoder emits it.
        if (*conn_id == kNoConnId) return {DecodeError::BadVersion};
        view.conn = Conn{*conn_id, *epoch};
    }
    if (*flags & kFlagStream) {
        const auto id = reader.get_varint();
        if (!id) return {DecodeError::Truncated};
        view.stream = *id;
    }

    switch (static_cast<FrameType>(*type)) {
        case FrameType::Data: {
            const auto seq = reader.get_varint();
            if (!seq) return {DecodeError::Truncated};
            const auto len = reader.get_varint();
            if (!len) return {DecodeError::Truncated};
            // Declared length is untrusted: bound it before it can size
            // a read or an allocation.
            if (*len > kMaxPayload || *len > bytes.size()) return {DecodeError::Oversized};
            const auto payload = reader.get_bytes(static_cast<std::size_t>(*len));
            if (!payload) return {DecodeError::Truncated};
            if (!reader.exhausted()) return {DecodeError::TrailingBytes};
            view.type = FrameType::Data;
            view.seq = *seq;
            view.payload = *payload;
            return {view};
        }
        case FrameType::Ack: {
            const auto lo = reader.get_varint();
            if (!lo) return {DecodeError::Truncated};
            const auto hi = reader.get_varint();
            if (!hi) return {DecodeError::Truncated};
            if (!reader.exhausted()) return {DecodeError::TrailingBytes};
            if (*lo > *hi) return {DecodeError::BadAckRange};
            view.type = FrameType::Ack;
            view.lo = *lo;
            view.hi = *hi;
            return {view};
        }
        case FrameType::Nak: {
            const auto seq = reader.get_varint();
            if (!seq) return {DecodeError::Truncated};
            if (!reader.exhausted()) return {DecodeError::TrailingBytes};
            view.type = FrameType::Nak;
            view.seq = *seq;
            return {view};
        }
        case FrameType::DataAck: {
            const auto seq = reader.get_varint();
            if (!seq) return {DecodeError::Truncated};
            const auto len = reader.get_varint();
            if (!len) return {DecodeError::Truncated};
            if (*len > kMaxPayload || *len > bytes.size()) return {DecodeError::Oversized};
            const auto payload = reader.get_bytes(static_cast<std::size_t>(*len));
            if (!payload) return {DecodeError::Truncated};
            const auto lo = reader.get_varint();
            if (!lo) return {DecodeError::Truncated};
            const auto hi = reader.get_varint();
            if (!hi) return {DecodeError::Truncated};
            if (!reader.exhausted()) return {DecodeError::TrailingBytes};
            if (*lo > *hi) return {DecodeError::BadAckRange};
            view.type = FrameType::DataAck;
            view.seq = *seq;
            view.lo = *lo;
            view.hi = *hi;
            view.payload = *payload;
            return {view};
        }
        default:
            return {DecodeError::BadType};
    }
}

DecodeResult decode(std::span<const std::uint8_t> bytes) {
    const ViewResult parsed = decode_view(bytes);
    if (!parsed.ok()) return {parsed.error()};
    const FrameView& view = parsed.frame();
    switch (view.type) {
        case FrameType::Data: {
            DataFrame frame;
            frame.seq = view.seq;
            frame.flags = view.flags;
            frame.stream = view.stream;
            frame.conn = view.conn;
            frame.payload.assign(view.payload.begin(), view.payload.end());
            return {DecodedFrame{std::move(frame)}};
        }
        case FrameType::Ack:
            return {DecodedFrame{AckFrame{view.lo, view.hi, view.flags, view.stream,
                                          view.conn}}};
        case FrameType::Nak:
            return {DecodedFrame{NakFrame{view.seq, view.flags, view.stream, view.conn}}};
        case FrameType::DataAck: {
            DataAckFrame frame;
            frame.seq = view.seq;
            frame.ack_lo = view.lo;
            frame.ack_hi = view.hi;
            frame.flags = view.flags;
            frame.stream = view.stream;
            frame.conn = view.conn;
            frame.payload.assign(view.payload.begin(), view.payload.end());
            return {DecodedFrame{std::move(frame)}};
        }
    }
    return {DecodeError::BadType};  // unreachable: decode_view validated type
}

Seq stream_of(const DecodedFrame& frame) {
    return std::visit(
        [](const auto& f) { return (f.flags & kFlagStream) ? f.stream : kNoStream; }, frame);
}

Conn conn_of(const DecodedFrame& frame) {
    return std::visit([](const auto& f) { return f.conn; }, frame);
}

proto::Message to_message(const DecodedFrame& frame) {
    if (const auto* data = std::get_if<DataFrame>(&frame)) {
        return proto::Data{data->seq};
    }
    if (const auto* ack = std::get_if<AckFrame>(&frame)) {
        return proto::Ack{ack->lo, ack->hi};
    }
    if (const auto* nak = std::get_if<NakFrame>(&frame)) {
        return proto::Nak{nak->seq};
    }
    const auto& da = std::get<DataAckFrame>(frame);
    return proto::DataAck{proto::Data{da.seq}, proto::Ack{da.ack_lo, da.ack_hi}};
}

}  // namespace bacp::wire
