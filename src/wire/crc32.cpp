#include "wire/crc32.hpp"

#include <array>

namespace bacp::wire {

namespace {

constexpr std::uint32_t kPolyReflected = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc & 1u) ? (crc >> 1) ^ kPolyReflected : crc >> 1;
        }
        table[i] = crc;
    }
    return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t seed) {
    std::uint32_t crc = ~seed;
    for (const std::uint8_t byte : data) {
        crc = kTable[(crc ^ byte) & 0xffu] ^ (crc >> 8);
    }
    return ~crc;
}

}  // namespace bacp::wire
