#pragma once

/// \file frame.hpp
/// On-the-wire frame layout.
///
/// Layout (little-endian):
///   magic   u8   0xBA
///   version u8   0x01 single-session, 0x02 connection-multiplexed
///   type    u8   1 = DATA, 2 = ACK, 3 = NAK, 4 = DATA+ACK
///   flags   u8   bit0: bounded-domain residue seqnums
///   conn    varint  (v2 only) connection id within the peer address
///   epoch   varint  (v2 only) session incarnation, see PROTOCOL.md §8
///   body         DATA:     seq varint, payload_len varint, payload bytes
///                ACK:      lo varint, hi varint
///                NAK:      seq varint
///                DATA+ACK: seq varint, payload_len varint, payload bytes,
///                          lo varint, hi varint (piggybacked block ack)
///   crc32c  u32  over every preceding byte
///
/// Version 2 adds exactly two header varints -- a connection id (which
/// session at this peer address the frame belongs to) and an epoch (which
/// incarnation of that session, so a crashed-and-restarted peer can
/// rejoin without its stale frames corrupting the new run).  An encoder
/// emits v2 only when the frame is connection-tagged, so single-session
/// traffic stays byte-identical to v1 and a v1-only peer never sees a
/// version it cannot parse; a decoder accepts both versions.
///
/// Varint sequence numbers keep the common case (small residues of the
/// bounded SV protocol) at one byte while still carrying full 64-bit
/// values for the unbounded variants.

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace bacp::wire {

inline constexpr std::uint8_t kMagic = 0xBA;
inline constexpr std::uint8_t kVersion = 0x01;
inline constexpr std::uint8_t kVersion2 = 0x02;

/// Sentinel: frame carries no connection tag (encodes as version 1).
inline constexpr Seq kNoConnId = ~Seq{0};

/// Connection tag of a v2 frame: which session at a peer address, and
/// which incarnation of it.  A default-constructed Conn is untagged and
/// selects the v1 encoding.
struct Conn {
    Seq id = kNoConnId;
    Seq epoch = 0;

    bool tagged() const { return id != kNoConnId; }

    friend bool operator==(const Conn&, const Conn&) = default;
};

enum class FrameType : std::uint8_t { Data = 1, Ack = 2, Nak = 3, DataAck = 4 };

enum FrameFlags : std::uint8_t {
    kFlagNone = 0,
    kFlagBoundedSeq = 1,  // sequence fields are residues mod n = 2w
    /// A varint stream id follows the header (before the body): several
    /// independent protocol instances multiplexed over one channel pair.
    kFlagStream = 2,
};

/// Decoded DATA frame.
struct DataFrame {
    Seq seq = 0;
    std::uint8_t flags = kFlagNone;
    Seq stream = 0;  // meaningful when flags & kFlagStream
    Conn conn;       // untagged on v1 frames
    std::vector<std::uint8_t> payload;
};

/// Decoded ACK frame (block acknowledgment [lo, hi]).
struct AckFrame {
    Seq lo = 0;
    Seq hi = 0;
    std::uint8_t flags = kFlagNone;
    Seq stream = 0;
    Conn conn;
};

/// Decoded NAK frame (fast-retransmit request, advisory).
struct NakFrame {
    Seq seq = 0;
    std::uint8_t flags = kFlagNone;
    Seq stream = 0;
    Conn conn;
};

/// Decoded DATA+ACK frame (duplex piggyback).
struct DataAckFrame {
    Seq seq = 0;
    Seq ack_lo = 0;
    Seq ack_hi = 0;
    std::uint8_t flags = kFlagNone;
    Seq stream = 0;
    Conn conn;
    std::vector<std::uint8_t> payload;
};

/// Non-owning decoded frame: every header field flattened into one
/// struct, with the payload as a span into the caller's receive buffer.
/// This is what the hot paths consume (net demux + endpoint adapters):
/// decoding a datagram through decode_view() touches no heap at all,
/// which is what keeps the server's per-datagram allocation count at
/// exactly zero.  Fields not applicable to `type` are zero.
struct FrameView {
    FrameType type = FrameType::Data;
    std::uint8_t flags = kFlagNone;
    Seq stream = 0;  // meaningful when flags & kFlagStream
    Conn conn;       // untagged on v1 frames
    Seq seq = 0;     // DATA / NAK / DATA+ACK
    Seq lo = 0;      // ACK / DATA+ACK
    Seq hi = 0;
    std::span<const std::uint8_t> payload;  // DATA / DATA+ACK, view only
};

/// Smallest possible frame: header (4) + one varint (1) + crc (4).
inline constexpr std::size_t kMinFrameSize = 9;

/// Largest payload a DATA / DATA+ACK frame may carry: chosen so a
/// maximal frame (header, stream tag, varints, CRC) still fits one
/// maximum UDP datagram (65507 bytes).  The decoder rejects any frame
/// declaring more as DecodeError::Oversized -- a declared length is
/// attacker-controlled input and must never drive allocation.
inline constexpr std::size_t kMaxPayload = 65000;

}  // namespace bacp::wire
