#pragma once

/// \file frame.hpp
/// On-the-wire frame layout.
///
/// Layout (little-endian):
///   magic   u8   0xBA
///   version u8   0x01
///   type    u8   1 = DATA, 2 = ACK, 3 = NAK, 4 = DATA+ACK
///   flags   u8   bit0: bounded-domain residue seqnums
///   body         DATA:     seq varint, payload_len varint, payload bytes
///                ACK:      lo varint, hi varint
///                NAK:      seq varint
///                DATA+ACK: seq varint, payload_len varint, payload bytes,
///                          lo varint, hi varint (piggybacked block ack)
///   crc32c  u32  over every preceding byte
///
/// Varint sequence numbers keep the common case (small residues of the
/// bounded SV protocol) at one byte while still carrying full 64-bit
/// values for the unbounded variants.

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace bacp::wire {

inline constexpr std::uint8_t kMagic = 0xBA;
inline constexpr std::uint8_t kVersion = 0x01;

enum class FrameType : std::uint8_t { Data = 1, Ack = 2, Nak = 3, DataAck = 4 };

enum FrameFlags : std::uint8_t {
    kFlagNone = 0,
    kFlagBoundedSeq = 1,  // sequence fields are residues mod n = 2w
    /// A varint stream id follows the header (before the body): several
    /// independent protocol instances multiplexed over one channel pair.
    kFlagStream = 2,
};

/// Decoded DATA frame.
struct DataFrame {
    Seq seq = 0;
    std::uint8_t flags = kFlagNone;
    Seq stream = 0;  // meaningful when flags & kFlagStream
    std::vector<std::uint8_t> payload;
};

/// Decoded ACK frame (block acknowledgment [lo, hi]).
struct AckFrame {
    Seq lo = 0;
    Seq hi = 0;
    std::uint8_t flags = kFlagNone;
    Seq stream = 0;
};

/// Decoded NAK frame (fast-retransmit request, advisory).
struct NakFrame {
    Seq seq = 0;
    std::uint8_t flags = kFlagNone;
    Seq stream = 0;
};

/// Decoded DATA+ACK frame (duplex piggyback).
struct DataAckFrame {
    Seq seq = 0;
    Seq ack_lo = 0;
    Seq ack_hi = 0;
    std::uint8_t flags = kFlagNone;
    Seq stream = 0;
    std::vector<std::uint8_t> payload;
};

/// Smallest possible frame: header (4) + one varint (1) + crc (4).
inline constexpr std::size_t kMinFrameSize = 9;

/// Largest payload a DATA / DATA+ACK frame may carry: chosen so a
/// maximal frame (header, stream tag, varints, CRC) still fits one
/// maximum UDP datagram (65507 bytes).  The decoder rejects any frame
/// declaring more as DecodeError::Oversized -- a declared length is
/// attacker-controlled input and must never drive allocation.
inline constexpr std::size_t kMaxPayload = 65000;

}  // namespace bacp::wire
