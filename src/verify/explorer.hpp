#pragma once

/// \file explorer.hpp
/// Explicit-state model checker (breadth-first).
///
/// A System type S models the paper's nondeterministic action system: one
/// protocol process pair plus two channels, with every enabled action --
/// including message losses -- producing a successor state.  Requirements
/// on S:
///
///   std::vector<Successor<S>> successors() const;
///   std::vector<std::string>  violations()  const;  // empty = state OK
///   bool  done() const;          // reached the transfer goal
///   std::size_t hash() const;
///   bool operator==(const S&) const;
///   std::string describe() const;
///
/// BFS guarantees a *shortest* counterexample trace, which makes the SI
/// failure scenario reproduced by the checker directly readable.

#include <algorithm>
#include <cstddef>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace bacp::verify {

template <typename S>
struct Successor {
    std::string label;  // human-readable action, e.g. "R receives D(3)"
    S state;
};

struct ExploreResult {
    std::size_t states = 0;       // distinct states visited
    std::size_t transitions = 0;  // edges traversed
    bool hit_state_limit = false;

    bool violation_found = false;
    std::vector<std::string> violation;     // what failed
    std::vector<std::string> trace;         // action labels, initial -> bad
    std::string violating_state;

    bool deadlock_found = false;            // no successor and not done()
    std::vector<std::string> trace_to_deadlock;
    std::string deadlock_state;

    std::size_t done_states = 0;            // states with done() == true

    /// Progress audit (paper SIII-B, mechanized): when requested, states
    /// from which no done() state is reachable -- livelock traps.  Under
    /// action fairness, "done reachable from every reachable state"
    /// implies the paper's progress property.
    bool progress_checked = false;
    std::size_t trapped_states = 0;
    std::string trapped_state;              // an example, if any

    bool ok() const { return !violation_found && !deadlock_found; }
    std::string summary() const {
        std::string s = "states=" + std::to_string(states) +
                        " transitions=" + std::to_string(transitions) +
                        " done_states=" + std::to_string(done_states);
        if (violation_found) s += " VIOLATION";
        if (deadlock_found) s += " DEADLOCK";
        if (progress_checked) {
            s += trapped_states == 0 ? " progress-ok"
                                     : " TRAPPED=" + std::to_string(trapped_states);
        }
        if (hit_state_limit) s += " (state limit hit)";
        return s;
    }
};

template <typename S>
class Explorer {
public:
    /// When true, explore() follows the safety pass with a backward
    /// reachability pass from the done() states: any state that cannot
    /// reach completion is reported as trapped (livelock).  Costs one
    /// edge list over the whole graph.
    bool check_progress = false;

    /// Explores the reachable state space from \p initial, stopping at the
    /// first violation (shortest trace), a deadlock, exhaustion, or the
    /// state limit.
    ExploreResult explore(const S& initial, std::size_t max_states = 1'000'000) {
        ExploreResult result;

        struct Node {
            S state;
            std::ptrdiff_t parent;  // index into nodes_, -1 for root
            std::string via;        // action that led here
        };
        std::vector<Node> nodes;
        nodes.reserve(1024);
        // Map hash -> node indices with that hash (collision chain).
        std::unordered_multimap<std::size_t, std::size_t> seen;
        // Reverse edges, populated only for the progress pass.
        std::vector<std::vector<std::uint32_t>> predecessors;

        // Returns (index, inserted).
        auto find_or_insert = [&](const S& s, std::ptrdiff_t parent,
                                  const std::string& via) -> std::pair<std::size_t, bool> {
            const std::size_t h = s.hash();
            auto [lo, hi] = seen.equal_range(h);
            for (auto it = lo; it != hi; ++it) {
                if (nodes[it->second].state == s) return {it->second, false};
            }
            nodes.push_back(Node{s, parent, via});
            seen.emplace(h, nodes.size() - 1);
            if (check_progress) predecessors.emplace_back();
            return {nodes.size() - 1, true};
        };

        auto trace_to = [&](std::size_t index) {
            std::vector<std::string> labels;
            for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(index); i >= 0;
                 i = nodes[static_cast<std::size_t>(i)].parent) {
                const auto& node = nodes[static_cast<std::size_t>(i)];
                if (!node.via.empty()) labels.push_back(node.via);
            }
            std::reverse(labels.begin(), labels.end());
            return labels;
        };

        std::deque<std::size_t> frontier;
        find_or_insert(initial, -1, "");
        frontier.push_back(0);

        // Check the initial state itself.
        {
            auto bad = initial.violations();
            if (!bad.empty()) {
                result.violation_found = true;
                result.violation = std::move(bad);
                result.violating_state = initial.describe();
                result.states = 1;
                return result;
            }
        }

        while (!frontier.empty()) {
            const std::size_t index = frontier.front();
            frontier.pop_front();
            // Copy out: nodes may reallocate while expanding.
            const S current = nodes[index].state;
            if (current.done()) ++result.done_states;

            auto next = current.successors();
            if (next.empty() && !current.done()) {
                result.deadlock_found = true;
                result.trace_to_deadlock = trace_to(index);
                result.deadlock_state = current.describe();
                break;
            }
            for (auto& successor : next) {
                ++result.transitions;
                const auto [succ_index, inserted] =
                    find_or_insert(successor.state, static_cast<std::ptrdiff_t>(index),
                                   successor.label);
                if (check_progress) {
                    predecessors[succ_index].push_back(static_cast<std::uint32_t>(index));
                }
                if (!inserted) continue;  // revisit
                auto bad = successor.state.violations();
                if (!bad.empty()) {
                    result.violation_found = true;
                    result.violation = std::move(bad);
                    result.trace = trace_to(succ_index);
                    result.violating_state = successor.state.describe();
                    result.states = nodes.size();
                    return result;
                }
                if (nodes.size() >= max_states) {
                    result.hit_state_limit = true;
                    result.states = nodes.size();
                    return result;
                }
                frontier.push_back(succ_index);
            }
        }

        result.states = nodes.size();

        // Progress pass (paper SIII-B): every reachable state must still be
        // able to reach completion.  Backward BFS from the done() states
        // over the recorded reverse edges.
        if (check_progress && !result.deadlock_found && !result.hit_state_limit) {
            result.progress_checked = true;
            std::vector<char> can_finish(nodes.size(), 0);
            std::deque<std::size_t> back;
            for (std::size_t i = 0; i < nodes.size(); ++i) {
                if (nodes[i].state.done()) {
                    can_finish[i] = 1;
                    back.push_back(i);
                }
            }
            while (!back.empty()) {
                const std::size_t i = back.front();
                back.pop_front();
                for (const auto pred : predecessors[i]) {
                    if (!can_finish[pred]) {
                        can_finish[pred] = 1;
                        back.push_back(pred);
                    }
                }
            }
            for (std::size_t i = 0; i < nodes.size(); ++i) {
                if (!can_finish[i]) {
                    ++result.trapped_states;
                    if (result.trapped_state.empty()) {
                        result.trapped_state = nodes[i].state.describe();
                    }
                }
            }
        }
        return result;
    }
};

}  // namespace bacp::verify
