#include "verify/ba_system.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "verify/hash.hpp"
#include "verify/invariants.hpp"

namespace bacp::verify {

BaSystem::BaSystem(const BaOptions& options)
    : options_(options), sender_(options.w), receiver_(options.w) {}

bool BaSystem::simple_timeout_enabled() const {
    // timeout == (na != ns) && C_SR = {} && C_RS = {} && !rcvd[nr]
    return sender_.na() != sender_.ns() && c_sr_.empty() && c_rs_.empty() &&
           !receiver_.rcvd(receiver_.nr());
}

bool BaSystem::per_message_timeout_enabled(Seq i) const {
    // timeout(i) == na <= i < ns && !ackd[i]            (local, can_resend)
    //            && *SR^i = 0                            (no data copy)
    //            && (i < nr || !rcvd[i])                  (R cannot ack it)
    //            && *RS^i = 0                             (no ack copy)
    return sender_.can_resend(i) && c_sr_.count_data(i) == 0 &&
           (i < receiver_.nr() || !receiver_.rcvd(i)) && c_rs_.count_ack_covering(i) == 0;
}

template <typename Fn>
void BaSystem::apply(std::vector<Successor<BaSystem>>& out, const std::string& label,
                     Fn&& fn) const {
    Successor<BaSystem> successor{label, *this};
    try {
        fn(successor.state);
    } catch (const AssertionError& err) {
        successor.state.action_violation_ = label + ": " + err.what();
    }
    out.push_back(std::move(successor));
}

std::vector<Successor<BaSystem>> BaSystem::successors() const {
    std::vector<Successor<BaSystem>> out;

    // Action 0: send a new data message (bounded by max_ns).
    if (sender_.can_send_new() && sender_.ns() < options_.max_ns) {
        apply(out, "S sends D(" + std::to_string(sender_.ns()) + ")",
              [](BaSystem& s) { s.c_sr_.send(s.sender_.send_new()); });
    }

    // Action 1: sender receives any ack from C_RS.
    for (std::size_t i = 0; i < c_rs_.size(); ++i) {
        apply(out, "S receives " + proto::to_string(c_rs_.at(i)), [i](BaSystem& s) {
            const auto msg = s.c_rs_.receive_at(i);
            s.sender_.on_ack(std::get<proto::Ack>(msg));
        });
    }

    // Action 2 / 2': timeout retransmissions (oracle guards).
    if (!options_.per_message_timeout) {
        if (simple_timeout_enabled()) {
            apply(out, "S times out, resends D(" + std::to_string(sender_.na()) + ")",
                  [](BaSystem& s) { s.c_sr_.send(s.sender_.resend(s.sender_.na())); });
        }
    } else {
        for (const Seq i : sender_.resend_candidates()) {
            if (per_message_timeout_enabled(i)) {
                apply(out, "S times out(i), resends D(" + std::to_string(i) + ")",
                      [i](BaSystem& s) { s.c_sr_.send(s.sender_.resend(i)); });
            }
        }
    }

    // Action 3: receiver receives any data message from C_SR.
    for (std::size_t i = 0; i < c_sr_.size(); ++i) {
        apply(out, "R receives " + proto::to_string(c_sr_.at(i)), [i](BaSystem& s) {
            const auto msg = s.c_sr_.receive_at(i);
            const auto dup = s.receiver_.on_data(std::get<proto::Data>(msg));
            if (dup) s.c_rs_.send(*dup);
        });
    }

    // Action 4: advance vr over a received message.
    if (receiver_.can_advance()) {
        apply(out, "R advances vr to " + std::to_string(receiver_.vr() + 1),
              [](BaSystem& s) { s.receiver_.advance(); });
    }

    // Action 5: emit the block acknowledgment.
    if (receiver_.can_ack()) {
        apply(out,
              "R acks (" + std::to_string(receiver_.nr()) + "," +
                  std::to_string(receiver_.vr() - 1) + ")",
              [](BaSystem& s) { s.c_rs_.send(s.receiver_.make_ack()); });
    }

    // SVI variable windows: the limit may move anywhere in [1, w].
    if (options_.variable_window) {
        for (Seq limit = 1; limit <= options_.w; ++limit) {
            if (limit == sender_.window_limit()) continue;
            apply(out, "S sets window limit to " + std::to_string(limit),
                  [limit](BaSystem& s) { s.sender_.set_window_limit(limit); });
        }
    }

    // Losses: any message in either channel may vanish.
    if (options_.allow_loss) {
        for (std::size_t i = 0; i < c_sr_.size(); ++i) {
            apply(out, "C_SR loses " + proto::to_string(c_sr_.at(i)),
                  [i](BaSystem& s) { s.c_sr_.lose_at(i); });
        }
        for (std::size_t i = 0; i < c_rs_.size(); ++i) {
            apply(out, "C_RS loses " + proto::to_string(c_rs_.at(i)),
                  [i](BaSystem& s) { s.c_rs_.lose_at(i); });
        }
    }

    return out;
}

std::vector<std::string> BaSystem::violations() const {
    if (!action_violation_.empty()) return {action_violation_};
    return check_invariants(sender_, receiver_, c_sr_, c_rs_).violations;
}

bool BaSystem::done() const {
    return sender_.ns() == options_.max_ns && sender_.na() == options_.max_ns &&
           receiver_.nr() == options_.max_ns && c_sr_.empty() && c_rs_.empty();
}

std::size_t BaSystem::hash() const {
    HashFeed h;
    sender_.feed(h);
    receiver_.feed(h);
    c_sr_.feed(h);
    c_rs_.feed(h);
    return static_cast<std::size_t>(h.value);
}

bool BaSystem::operator==(const BaSystem& other) const {
    return sender_ == other.sender_ && receiver_ == other.receiver_ && c_sr_ == other.c_sr_ &&
           c_rs_ == other.c_rs_;
}

std::string BaSystem::describe() const {
    std::ostringstream os;
    os << "S{na=" << sender_.na() << " ns=" << sender_.ns() << "} R{nr=" << receiver_.nr()
       << " vr=" << receiver_.vr() << "} C_SR=" << c_sr_.to_string()
       << " C_RS=" << c_rs_.to_string();
    return os.str();
}

}  // namespace bacp::verify
