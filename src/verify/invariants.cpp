#include "verify/invariants.hpp"

#include <map>
#include <sstream>

namespace bacp::verify {

namespace {

void fail(InvariantReport& report, const std::string& what) { report.violations.push_back(what); }

std::string seq_str(Seq m) { return std::to_string(m); }

}  // namespace

std::string InvariantReport::to_string() const {
    if (ok()) return "invariant holds";
    std::ostringstream os;
    for (const auto& v : violations) os << v << "; ";
    return os.str();
}

InvariantReport check_invariants(const ba::Sender& sender, const ba::Receiver& receiver,
                                 channel::TransitView c_sr, channel::TransitView c_rs,
                                 ChannelStrictness strictness) {
    const bool strict = strictness == ChannelStrictness::Strict;
    InvariantReport report;
    const Seq na = sender.na();
    const Seq ns = sender.ns();
    const Seq nr = receiver.nr();
    const Seq vr = receiver.vr();
    const Seq w = sender.window();

    // --- Assertion 6 -----------------------------------------------------
    if (!(na <= nr)) fail(report, "6: na > nr");
    if (!(nr <= vr)) fail(report, "6: nr > vr");
    if (!(vr <= ns)) fail(report, "6: vr > ns");
    if (!(ns <= na + w)) fail(report, "6: ns > na + w");

    // --- Assertion 7 (window-local content) ------------------------------
    // ackd[m] => m < nr, for the explicitly stored window [na, ns).
    for (Seq m = na; m < ns; ++m) {
        if (sender.ackd(m) && !(m < nr)) fail(report, "7: ackd[" + seq_str(m) + "] but m >= nr");
    }
    if (sender.ackd(na) && na < ns) fail(report, "7: ackd[na]");
    // rcvd[m] => m < ns.  Everything below vr is implicitly received.
    if (!(vr <= ns)) {
        // already reported under 6; avoid spurious range scans below
    }
    for (Seq m = vr; m < vr + w; ++m) {
        if (receiver.rcvd(m) && !(m < ns)) fail(report, "7: rcvd[" + seq_str(m) + "] but m >= ns");
    }

    // --- Assertion 8 ------------------------------------------------------
    // Gather per-sequence transit counts from both channels.
    std::map<Seq, std::size_t> sr_count;  // *SR^m
    std::map<Seq, std::size_t> rs_count;  // *RS^m
    for (const auto& msg : c_sr.messages()) {
        if (const auto* d = std::get_if<proto::Data>(&msg)) ++sr_count[d->seq];
        // Only data travels S->R in this protocol; tolerate and flag.
        else
            fail(report, "8: non-data message in C_SR");
    }
    for (const auto& msg : c_rs.messages()) {
        if (const auto* a = std::get_if<proto::Ack>(&msg)) {
            for (Seq m = a->lo; m <= a->hi; ++m) ++rs_count[m];
        } else if (std::holds_alternative<proto::Nak>(msg)) {
            // NAKs (fast-retransmit extension) are advisory and carry no
            // acknowledgment information; assertion 8 is silent on them.
        } else {
            fail(report, "8: data message in C_RS");
        }
    }

    // (forall m: *SR^m + *RS^m <= 1).  Relaxed mode still forbids two DATA
    // copies (timer spacing guarantees it) but tolerates overlapping ack
    // coverage and a data copy coexisting with ack coverage.
    for (const auto& [m, c] : sr_count) {
        if (c > 1) {
            fail(report, "8: " + seq_str(m) + " has " + std::to_string(c) +
                             " data copies in transit");
            continue;
        }
        if (!strict) continue;
        const auto it = rs_count.find(m);
        const std::size_t total = c + (it == rs_count.end() ? 0 : it->second);
        if (total > 1) fail(report, "8: " + seq_str(m) + " has " + std::to_string(total) +
                                        " copies in transit");
    }
    if (strict) {
        for (const auto& [m, c] : rs_count) {
            if (c > 1 && sr_count.find(m) == sr_count.end()) {
                fail(report, "8: " + seq_str(m) + " covered by " + std::to_string(c) + " acks");
            }
        }
    }

    // (forall m: *SR^m > 0 : m < ns && !ackd[m] && (m < nr || !rcvd[m])).
    // Relaxed mode permits the last conjunct's failure (a conservative
    // retransmission of a message the receiver buffered out of order).
    for (const auto& [m, c] : sr_count) {
        if (c == 0) continue;
        if (!(m < ns)) fail(report, "8: data " + seq_str(m) + " in transit but m >= ns");
        // Relaxed mode: a conservative retransmission may still be in
        // flight when the (late) ack covering it arrives.
        if (strict && sender.ackd(m)) {
            fail(report, "8: data " + seq_str(m) + " in transit but ackd");
        }
        if (strict && !(m < nr) && receiver.rcvd(m)) {
            fail(report, "8: data " + seq_str(m) + " in transit but rcvd and m >= nr");
        }
    }

    // (forall m: *RS^m > 0 : m < nr && !ackd[m]).  Relaxed mode permits
    // ackd[m] (a slow block ack overlapping an already-processed dup ack).
    for (const auto& [m, c] : rs_count) {
        if (c == 0) continue;
        if (!(m < nr)) fail(report, "8: ack covering " + seq_str(m) + " in transit but m >= nr");
        if (strict && sender.ackd(m)) {
            fail(report, "8: ack covering " + seq_str(m) + " in transit but ackd");
        }
    }

    return report;
}

}  // namespace bacp::verify
