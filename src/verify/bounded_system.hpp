#pragma once

/// \file bounded_system.hpp
/// Model-checked lockstep equivalence of the SV bounded protocol.
///
/// The strongest machine statement of Section V: run the fully bounded
/// cores (residues mod 2w, w-slot arrays) and the unbounded SII cores in
/// lockstep through the SAME nondeterministic system -- every action,
/// every receive order, every loss -- and flag any observable divergence:
///
///   * a wire residue that is not (true sequence number mod 2w),
///   * a guard (action enabledness) that differs between the two,
///   * different window movement after the same acknowledgment,
///   * any violation of assertions 6-8 on the unbounded shadow.
///
/// Exhaustive exploration of this product system proves the bounded
/// protocol bisimilar to the unbounded one for the explored bounds --
/// the paper's "no information is lost" claim, mechanically.
///
/// Channels carry the unbounded (true) messages so states stay canonical;
/// the bounded cores see the residues derived at delivery time, which is
/// exactly what they would have produced on the wire (checked at send).

#include <cstddef>
#include <string>
#include <vector>

#include "ba/bounded_receiver.hpp"
#include "ba/bounded_sender.hpp"
#include "ba/receiver.hpp"
#include "ba/sender.hpp"
#include "channel/set_channel.hpp"
#include "verify/explorer.hpp"

namespace bacp::verify {

struct BoundedEquivOptions {
    Seq w = 2;
    Seq max_ns = 4;
    bool per_message_timeout = true;  // SIV gives richer interleavings
    bool allow_loss = true;
};

class BoundedEquivSystem {
public:
    explicit BoundedEquivSystem(const BoundedEquivOptions& options);

    std::vector<Successor<BoundedEquivSystem>> successors() const;
    std::vector<std::string> violations() const;
    bool done() const;
    std::size_t hash() const;
    bool operator==(const BoundedEquivSystem& other) const;
    std::string describe() const;

private:
    Seq domain() const { return 2 * options_.w; }
    bool per_message_timeout_enabled(Seq i) const;

    template <typename Fn>
    void apply(std::vector<Successor<BoundedEquivSystem>>& out, const std::string& label,
               Fn&& fn) const;

    /// Records a divergence between shadow and bounded behavior.
    void diverged(const std::string& what);

    BoundedEquivOptions options_;
    // Unbounded shadow (the specification).
    ba::Sender shadow_sender_;
    ba::Receiver shadow_receiver_;
    // Bounded implementation under test.
    ba::BoundedSender bounded_sender_;
    ba::BoundedReceiver bounded_receiver_;
    // Channels carry true-valued messages (canonical state).
    channel::SetChannel c_sr_;
    channel::SetChannel c_rs_;
    std::string divergence_;
};

}  // namespace bacp::verify
