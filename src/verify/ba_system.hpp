#pragma once

/// \file ba_system.hpp
/// The paper's full nondeterministic system (sender + receiver + two set
/// channels) packaged for the explicit-state explorer.
///
/// Successor states cover every enabled protocol action 0-5 (with either
/// the SII simple timeout or the SIV per-message timeout), every possible
/// receive order, and -- when enabled -- every possible message loss.
/// violations() evaluates the full invariant (assertions 6-8); any
/// AssertionError thrown by a protocol core during an action is likewise
/// converted into a violation so the checker produces a trace instead of
/// crashing.
///
/// Exploration is bounded by max_ns: action 0 stops once ns reaches it
/// (the protocol state space is infinite otherwise -- sequence numbers are
/// unbounded in SII).

#include <cstddef>
#include <string>
#include <vector>

#include "ba/receiver.hpp"
#include "ba/sender.hpp"
#include "channel/set_channel.hpp"
#include "verify/explorer.hpp"

namespace bacp::verify {

struct BaOptions {
    Seq w = 2;
    Seq max_ns = 4;                  // exploration bound on new sends
    bool per_message_timeout = false;  // false: SII action 2; true: SIV 2'
    bool allow_loss = true;
    /// SVI variable-window claim: when true, the sender's effective
    /// window limit may change nondeterministically to ANY value in
    /// [1, w] at any step; the invariant must still hold everywhere.
    bool variable_window = false;
};

class BaSystem {
public:
    explicit BaSystem(const BaOptions& options);

    std::vector<Successor<BaSystem>> successors() const;
    std::vector<std::string> violations() const;
    /// Everything sent, accepted, and acknowledged; channels drained.
    bool done() const;
    std::size_t hash() const;
    bool operator==(const BaSystem& other) const;
    std::string describe() const;

    const ba::Sender& sender() const { return sender_; }
    const ba::Receiver& receiver() const { return receiver_; }
    const channel::SetChannel& c_sr() const { return c_sr_; }
    const channel::SetChannel& c_rs() const { return c_rs_; }

private:
    /// Guard of the SII simple timeout (oracle form).
    bool simple_timeout_enabled() const;
    /// Guard of the SIV timeout(i) (oracle form).
    bool per_message_timeout_enabled(Seq i) const;

    template <typename Fn>
    void apply(std::vector<Successor<BaSystem>>& out, const std::string& label, Fn&& fn) const;

    BaOptions options_;
    ba::Sender sender_;
    ba::Receiver receiver_;
    channel::SetChannel c_sr_;
    channel::SetChannel c_rs_;
    std::string action_violation_;  // non-empty when an action threw
};

}  // namespace bacp::verify
