#pragma once

/// \file gbn_system.hpp
/// Model-checked go-back-N system, used to *reproduce the paper's SI
/// failure scenario* (experiment E1) and its ablations:
///
///   domain = 0  (unbounded seqnums), set channel  -> safe
///   domain > w  (bounded seqnums),   set channel  -> UNSAFE: a stale
///       cumulative ack resurfaces after the residues wrapped and the
///       sender advances na past messages the receiver never accepted
///   domain > w  (bounded seqnums),   FIFO channel -> safe (classic GBN)
///
/// The safety property is the block-ack invariant's first conjunct,
/// na <= nr: everything the sender believes acknowledged was accepted.
///
/// The channel semantics is a template parameter: channel::SetChannel
/// (reordering) or channel::QueueChannel (FIFO).

#include <sstream>
#include <string>
#include <vector>

#include "baselines/gobackn.hpp"
#include "channel/queue_channel.hpp"
#include "channel/set_channel.hpp"
#include "common/assert.hpp"
#include "verify/explorer.hpp"
#include "verify/hash.hpp"

namespace bacp::verify {

struct GbnOptions {
    Seq w = 2;
    Seq domain = 0;  // 0 = unbounded sequence numbers
    Seq max_ns = 4;  // exploration bound on new sends
    bool allow_loss = true;
};

template <typename Chan>
class GbnSystemT {
public:
    explicit GbnSystemT(const GbnOptions& options)
        : options_(options), sender_(options.w, options.domain), receiver_(options.domain) {}

    std::vector<Successor<GbnSystemT>> successors() const {
        std::vector<Successor<GbnSystemT>> out;

        // Send a new data message.
        if (sender_.can_send_new() && sender_.ns() < options_.max_ns) {
            apply(out, "S sends seq " + std::to_string(sender_.ns()),
                  [](GbnSystemT& s) { s.c_sr_.send(s.sender_.send_new()); });
        }

        // Sender receives an ack.
        for_each_receivable(c_rs_, [&](std::size_t i, const proto::Message& msg) {
            apply(out, "S receives " + proto::to_string(msg), [i](GbnSystemT& s) {
                const auto received = receive(s.c_rs_, i);
                s.sender_.on_ack(std::get<proto::Ack>(received));
            });
        });

        // Conservative (oracle) timeout: both channels drained and the
        // receiver has nothing further to say -> go back N.
        if (sender_.has_outstanding() && c_sr_.empty() && c_rs_.empty() &&
            !receiver_.can_ack()) {
            apply(out, "S times out, goes back N", [](GbnSystemT& s) {
                for (const auto& copy : s.sender_.retransmit_window()) s.c_sr_.send(copy);
            });
        }

        // Receiver receives a data message.
        for_each_receivable(c_sr_, [&](std::size_t i, const proto::Message& msg) {
            apply(out, "R receives " + proto::to_string(msg), [i](GbnSystemT& s) {
                const auto received = receive(s.c_sr_, i);
                s.receiver_.on_data(std::get<proto::Data>(received));
            });
        });

        // Receiver sends the cumulative ack.
        if (receiver_.can_ack()) {
            apply(out, "R acks cumulative " + std::to_string(receiver_.nr() - 1),
                  [](GbnSystemT& s) { s.c_rs_.send(s.receiver_.make_ack()); });
        }

        // Losses.
        if (options_.allow_loss) {
            for (std::size_t i = 0; i < c_sr_.size(); ++i) {
                apply(out, "C_SR loses a message", [i](GbnSystemT& s) { s.c_sr_.lose_at(i); });
            }
            for (std::size_t i = 0; i < c_rs_.size(); ++i) {
                apply(out, "C_RS loses a message", [i](GbnSystemT& s) { s.c_rs_.lose_at(i); });
            }
        }

        return out;
    }

    std::vector<std::string> violations() const {
        if (!action_violation_.empty()) return {action_violation_};
        if (sender_.na() > receiver_.nr()) {
            return {"sender advanced na=" + std::to_string(sender_.na()) +
                    " past receiver nr=" + std::to_string(receiver_.nr()) +
                    " (messages lost without retransmission)"};
        }
        return {};
    }

    bool done() const {
        return sender_.ns() == options_.max_ns && sender_.na() == options_.max_ns &&
               receiver_.nr() == options_.max_ns && c_sr_.empty() && c_rs_.empty();
    }

    std::size_t hash() const {
        HashFeed h;
        sender_.feed(h);
        receiver_.feed(h);
        c_sr_.feed(h);
        c_rs_.feed(h);
        return static_cast<std::size_t>(h.value);
    }

    bool operator==(const GbnSystemT& other) const {
        return sender_ == other.sender_ && receiver_ == other.receiver_ &&
               c_sr_ == other.c_sr_ && c_rs_ == other.c_rs_;
    }

    std::string describe() const {
        std::ostringstream os;
        os << "S{na=" << sender_.na() << " ns=" << sender_.ns() << "} R{nr=" << receiver_.nr()
           << "} C_SR=" << c_sr_.to_string() << " C_RS=" << c_rs_.to_string();
        return os.str();
    }

    const baselines::GbnSender& sender() const { return sender_; }
    const baselines::GbnReceiver& receiver() const { return receiver_; }

private:
    // Set channels allow receiving any element; FIFO channels only the front.
    template <typename Fn>
    static void for_each_receivable(const channel::SetChannel& chan, Fn&& fn) {
        for (std::size_t i = 0; i < chan.size(); ++i) fn(i, chan.at(i));
    }
    template <typename Fn>
    static void for_each_receivable(const channel::QueueChannel& chan, Fn&& fn) {
        if (!chan.empty()) fn(0, chan.front());
    }
    static proto::Message receive(channel::SetChannel& chan, std::size_t i) {
        return chan.receive_at(i);
    }
    static proto::Message receive(channel::QueueChannel& chan, std::size_t i) {
        BACP_ASSERT(i == 0);
        return chan.receive_front();
    }

    template <typename Fn>
    void apply(std::vector<Successor<GbnSystemT>>& out, const std::string& label,
               Fn&& fn) const {
        Successor<GbnSystemT> successor{label, *this};
        try {
            fn(successor.state);
        } catch (const AssertionError& err) {
            successor.state.action_violation_ = label + ": " + err.what();
        }
        out.push_back(std::move(successor));
    }

    GbnOptions options_;
    baselines::GbnSender sender_;
    baselines::GbnReceiver receiver_;
    Chan c_sr_;
    Chan c_rs_;
    std::string action_violation_;
};

using GbnSystem = GbnSystemT<channel::SetChannel>;
using GbnFifoSystem = GbnSystemT<channel::QueueChannel>;

}  // namespace bacp::verify
