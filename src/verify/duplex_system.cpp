#include "verify/duplex_system.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "verify/hash.hpp"
#include "verify/invariants.hpp"

namespace bacp::verify {

DuplexSystem::DuplexSystem(const DuplexOptions& options)
    : options_(options), a_(options.w), b_(options.w) {}

void DuplexSystem::project(const channel::SetChannel& forward,
                           const channel::SetChannel& reverse,
                           channel::SetChannel& data_view, channel::SetChannel& ack_view) {
    for (const auto& msg : forward.messages()) {
        if (const auto* d = std::get_if<proto::Data>(&msg)) {
            data_view.send(*d);
        } else if (const auto* da = std::get_if<proto::DataAck>(&msg)) {
            data_view.send(da->data);
        }
        // Standalone acks in the forward channel belong to the REVERSE
        // direction's projection, not this one.
    }
    for (const auto& msg : reverse.messages()) {
        if (const auto* ack = std::get_if<proto::Ack>(&msg)) {
            ack_view.send(*ack);
        } else if (const auto* da = std::get_if<proto::DataAck>(&msg)) {
            ack_view.send(da->ack);
        }
    }
}

bool DuplexSystem::timeout_enabled(const End& from, const End& to,
                                   const channel::SetChannel& forward,
                                   const channel::SetChannel& reverse, Seq i) const {
    if (!from.sender.can_resend(i)) return false;
    channel::SetChannel data_view, ack_view;
    project(forward, reverse, data_view, ack_view);
    return data_view.count_data(i) == 0 &&
           (i < to.receiver.nr() || !to.receiver.rcvd(i)) &&
           ack_view.count_ack_covering(i) == 0;
}

template <typename Fn>
void DuplexSystem::apply(std::vector<Successor<DuplexSystem>>& out, const std::string& label,
                         Fn&& fn) const {
    Successor<DuplexSystem> successor{label, *this};
    try {
        fn(successor.state);
    } catch (const AssertionError& err) {
        successor.state.action_violation_ = label + ": " + err.what();
    }
    out.push_back(std::move(successor));
}

std::vector<Successor<DuplexSystem>> DuplexSystem::successors() const {
    std::vector<Successor<DuplexSystem>> out;

    // Helper lambdas parameterized by direction: id 0 = A (sends on
    // c_ab_, acks B's data), id 1 = B.
    const auto for_direction = [&](int id) {
        const End& self = id == 0 ? a_ : b_;
        const Seq max_ns = id == 0 ? options_.max_ns_a : options_.max_ns_b;
        const std::string who = id == 0 ? "A" : "B";

        // Send new data, optionally riding the pending block ack (the
        // choice is nondeterministic: both behaviors must be safe).
        if (self.sender.can_send_new() && self.sender.ns() < max_ns) {
            apply(out, who + " sends D(" + std::to_string(self.sender.ns()) + ")",
                  [id](DuplexSystem& s) {
                      End& me = id == 0 ? s.a_ : s.b_;
                      auto& ch = id == 0 ? s.c_ab_ : s.c_ba_;
                      ch.send(me.sender.send_new());
                  });
            if (self.receiver.can_ack()) {
                apply(out,
                      who + " sends D(" + std::to_string(self.sender.ns()) +
                          ") + piggyback ack",
                      [id](DuplexSystem& s) {
                          End& me = id == 0 ? s.a_ : s.b_;
                          auto& ch = id == 0 ? s.c_ab_ : s.c_ba_;
                          const auto data = me.sender.send_new();
                          const auto ride = me.receiver.make_ack();
                          ch.send(proto::DataAck{data, ride});
                      });
            }
        }

        // Standalone ack flush (action 5).
        if (self.receiver.can_ack()) {
            apply(out, who + " acks standalone", [id](DuplexSystem& s) {
                End& me = id == 0 ? s.a_ : s.b_;
                auto& ch = id == 0 ? s.c_ab_ : s.c_ba_;
                ch.send(me.receiver.make_ack());
            });
        }

        // Receiver bookkeeping (action 4).
        if (self.receiver.can_advance()) {
            apply(out, who + " advances vr", [id](DuplexSystem& s) {
                (id == 0 ? s.a_ : s.b_).receiver.advance();
            });
        }

        // Per-message oracle timeouts for this direction's data.
        const End& peer = id == 0 ? b_ : a_;
        const auto& forward = id == 0 ? c_ab_ : c_ba_;
        const auto& reverse = id == 0 ? c_ba_ : c_ab_;
        for (const Seq i : self.sender.resend_candidates()) {
            if (!timeout_enabled(self, peer, forward, reverse, i)) continue;
            apply(out, who + " times out, resends D(" + std::to_string(i) + ")",
                  [id, i](DuplexSystem& s) {
                      End& me = id == 0 ? s.a_ : s.b_;
                      auto& ch = id == 0 ? s.c_ab_ : s.c_ba_;
                      ch.send(me.sender.resend(i));
                  });
        }
    };
    for_direction(0);
    for_direction(1);

    // Receptions: any message in either channel, processed by the far end.
    // A DataAck is handled atomically: ack half to the local sender, data
    // half to the local receiver (either internal order must be safe; the
    // runtime uses data-first, the checker exercises ack-first too).
    const auto receive_from = [&](int channel_id) {
        const auto& ch = channel_id == 0 ? c_ab_ : c_ba_;  // 0: A->B, receiver is B
        const std::string who = channel_id == 0 ? "B" : "A";
        for (std::size_t i = 0; i < ch.size(); ++i) {
            apply(out, who + " receives " + proto::to_string(ch.at(i)),
                  [channel_id, i](DuplexSystem& s) {
                      auto& ch2 = channel_id == 0 ? s.c_ab_ : s.c_ba_;
                      End& me = channel_id == 0 ? s.b_ : s.a_;
                      auto& back = channel_id == 0 ? s.c_ba_ : s.c_ab_;
                      const auto msg = ch2.receive_at(i);
                      if (const auto* d = std::get_if<proto::Data>(&msg)) {
                          const auto dup = me.receiver.on_data(*d);
                          if (dup) back.send(*dup);
                      } else if (const auto* ack = std::get_if<proto::Ack>(&msg)) {
                          me.sender.on_ack(*ack);
                      } else {
                          const auto& da = std::get<proto::DataAck>(msg);
                          me.sender.on_ack(da.ack);
                          const auto dup = me.receiver.on_data(da.data);
                          if (dup) back.send(*dup);
                      }
                  });
        }
    };
    receive_from(0);
    receive_from(1);

    // Losses.
    if (options_.allow_loss) {
        for (std::size_t i = 0; i < c_ab_.size(); ++i) {
            apply(out, "C_AB loses " + proto::to_string(c_ab_.at(i)),
                  [i](DuplexSystem& s) { s.c_ab_.lose_at(i); });
        }
        for (std::size_t i = 0; i < c_ba_.size(); ++i) {
            apply(out, "C_BA loses " + proto::to_string(c_ba_.at(i)),
                  [i](DuplexSystem& s) { s.c_ba_.lose_at(i); });
        }
    }

    return out;
}

std::vector<std::string> DuplexSystem::violations() const {
    if (!action_violation_.empty()) return {action_violation_};
    std::vector<std::string> all;
    // Direction A -> B.
    {
        channel::SetChannel data_view, ack_view;
        project(c_ab_, c_ba_, data_view, ack_view);
        const auto report = check_invariants(a_.sender, b_.receiver, data_view, ack_view);
        for (const auto& v : report.violations) all.push_back("A->B " + v);
    }
    // Direction B -> A.
    {
        channel::SetChannel data_view, ack_view;
        project(c_ba_, c_ab_, data_view, ack_view);
        const auto report = check_invariants(b_.sender, a_.receiver, data_view, ack_view);
        for (const auto& v : report.violations) all.push_back("B->A " + v);
    }
    return all;
}

bool DuplexSystem::done() const {
    return a_.sender.ns() == options_.max_ns_a && a_.sender.na() == options_.max_ns_a &&
           b_.receiver.nr() == options_.max_ns_a && b_.sender.ns() == options_.max_ns_b &&
           b_.sender.na() == options_.max_ns_b && a_.receiver.nr() == options_.max_ns_b &&
           c_ab_.empty() && c_ba_.empty();
}

std::size_t DuplexSystem::hash() const {
    HashFeed h;
    a_.sender.feed(h);
    a_.receiver.feed(h);
    b_.sender.feed(h);
    b_.receiver.feed(h);
    c_ab_.feed(h);
    c_ba_.feed(h);
    return static_cast<std::size_t>(h.value);
}

bool DuplexSystem::operator==(const DuplexSystem& other) const {
    return a_ == other.a_ && b_ == other.b_ && c_ab_ == other.c_ab_ && c_ba_ == other.c_ba_ &&
           action_violation_ == other.action_violation_;
}

std::string DuplexSystem::describe() const {
    std::ostringstream os;
    os << "A{na=" << a_.sender.na() << " ns=" << a_.sender.ns() << " nr=" << a_.receiver.nr()
       << " vr=" << a_.receiver.vr() << "} B{na=" << b_.sender.na() << " ns=" << b_.sender.ns()
       << " nr=" << b_.receiver.nr() << " vr=" << b_.receiver.vr()
       << "} C_AB=" << c_ab_.to_string() << " C_BA=" << c_ba_.to_string();
    return os.str();
}

}  // namespace bacp::verify
