#include "verify/bounded_system.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "protocol/seqnum.hpp"
#include "verify/hash.hpp"
#include "verify/invariants.hpp"

namespace bacp::verify {

BoundedEquivSystem::BoundedEquivSystem(const BoundedEquivOptions& options)
    : options_(options),
      shadow_sender_(options.w),
      shadow_receiver_(options.w),
      bounded_sender_(options.w),
      bounded_receiver_(options.w) {}

void BoundedEquivSystem::diverged(const std::string& what) {
    if (divergence_.empty()) divergence_ = what;
}

bool BoundedEquivSystem::per_message_timeout_enabled(Seq i) const {
    return shadow_sender_.can_resend(i) && c_sr_.count_data(i) == 0 &&
           (i < shadow_receiver_.nr() || !shadow_receiver_.rcvd(i)) &&
           c_rs_.count_ack_covering(i) == 0;
}

template <typename Fn>
void BoundedEquivSystem::apply(std::vector<Successor<BoundedEquivSystem>>& out,
                               const std::string& label, Fn&& fn) const {
    Successor<BoundedEquivSystem> successor{label, *this};
    try {
        fn(successor.state);
    } catch (const AssertionError& err) {
        successor.state.diverged(label + ": " + err.what());
    }
    out.push_back(std::move(successor));
}

std::vector<Successor<BoundedEquivSystem>> BoundedEquivSystem::successors() const {
    std::vector<Successor<BoundedEquivSystem>> out;
    const Seq n = domain();

    // Action 0: both guards must agree; residue must be true seq mod n.
    if (shadow_sender_.can_send_new() != bounded_sender_.can_send_new()) {
        apply(out, "guard mismatch", [](BoundedEquivSystem& s) {
            s.diverged("action 0 guard differs between shadow and bounded");
        });
        return out;
    }
    if (shadow_sender_.can_send_new() && shadow_sender_.ns() < options_.max_ns) {
        apply(out, "S sends D(" + std::to_string(shadow_sender_.ns()) + ")",
              [n](BoundedEquivSystem& s) {
                  const auto true_msg = s.shadow_sender_.send_new();
                  const auto wire_msg = s.bounded_sender_.send_new();
                  if (wire_msg.seq != true_msg.seq % n) {
                      s.diverged("wire residue != true seq mod 2w on new send");
                  }
                  s.c_sr_.send(true_msg);
              });
    }

    // Action 1: sender receives an ack.
    for (std::size_t i = 0; i < c_rs_.size(); ++i) {
        apply(out, "S receives " + proto::to_string(c_rs_.at(i)), [i, n](BoundedEquivSystem& s) {
            const auto msg = s.c_rs_.receive_at(i);
            const auto true_ack = std::get<proto::Ack>(msg);
            const Seq na_shadow_before = s.shadow_sender_.na();
            s.shadow_sender_.on_ack(true_ack);
            const proto::Ack wire_ack{true_ack.lo % n, true_ack.hi % n};
            const Seq na_mod_before = s.bounded_sender_.na_mod();
            s.bounded_sender_.on_ack(wire_ack);
            const Seq shadow_advance = s.shadow_sender_.na() - na_shadow_before;
            const Seq bounded_advance =
                proto::mod_offset(na_mod_before, s.bounded_sender_.na_mod(), n);
            if (shadow_advance != bounded_advance) {
                s.diverged("window advance differs after ack");
            }
            if (s.bounded_sender_.na_mod() != s.shadow_sender_.na() % n ||
                s.bounded_sender_.outstanding() != s.shadow_sender_.outstanding()) {
                s.diverged("sender state mismatch after ack");
            }
        });
    }

    // Action 2 / 2': timeouts (oracle guards on the shadow).
    if (!options_.per_message_timeout) {
        const bool timeout = shadow_sender_.na() != shadow_sender_.ns() && c_sr_.empty() &&
                             c_rs_.empty() && !shadow_receiver_.rcvd(shadow_receiver_.nr());
        if (timeout) {
            apply(out, "S times out, resends D(" + std::to_string(shadow_sender_.na()) + ")",
                  [n](BoundedEquivSystem& s) {
                      const auto true_msg = s.shadow_sender_.resend(s.shadow_sender_.na());
                      const auto wire_msg =
                          s.bounded_sender_.resend(s.bounded_sender_.na_mod());
                      if (wire_msg.seq != true_msg.seq % n) {
                          s.diverged("wire residue != true seq mod 2w on resend");
                      }
                      s.c_sr_.send(true_msg);
                  });
        }
    } else {
        for (const Seq i : shadow_sender_.resend_candidates()) {
            if (!per_message_timeout_enabled(i)) continue;
            apply(out, "S times out(i), resends D(" + std::to_string(i) + ")",
                  [i, n](BoundedEquivSystem& s) {
                      if (!s.bounded_sender_.can_resend(i % n)) {
                          s.diverged("bounded sender cannot resend an eligible candidate");
                          return;
                      }
                      const auto true_msg = s.shadow_sender_.resend(i);
                      const auto wire_msg = s.bounded_sender_.resend(i % n);
                      if (wire_msg.seq != true_msg.seq % n) {
                          s.diverged("wire residue != true seq mod 2w on resend");
                      }
                      s.c_sr_.send(true_msg);
                  });
        }
    }

    // Action 3: receiver receives a data message.
    for (std::size_t i = 0; i < c_sr_.size(); ++i) {
        apply(out, "R receives " + proto::to_string(c_sr_.at(i)), [i, n](BoundedEquivSystem& s) {
            const auto msg = s.c_sr_.receive_at(i);
            const auto true_data = std::get<proto::Data>(msg);
            const auto shadow_dup = s.shadow_receiver_.on_data(true_data);
            const auto bounded_dup =
                s.bounded_receiver_.on_data(proto::Data{true_data.seq % n});
            if (shadow_dup.has_value() != bounded_dup.has_value()) {
                s.diverged("duplicate classification differs");
                return;
            }
            if (shadow_dup) {
                if (bounded_dup->lo != shadow_dup->lo % n ||
                    bounded_dup->hi != shadow_dup->hi % n) {
                    s.diverged("duplicate-ack residues differ");
                }
                s.c_rs_.send(*shadow_dup);
            }
        });
    }

    // Action 4: advance vr.
    if (shadow_receiver_.can_advance() != bounded_receiver_.can_advance()) {
        apply(out, "guard mismatch", [](BoundedEquivSystem& s) {
            s.diverged("action 4 guard differs between shadow and bounded");
        });
        return out;
    }
    if (shadow_receiver_.can_advance()) {
        apply(out, "R advances vr to " + std::to_string(shadow_receiver_.vr() + 1),
              [](BoundedEquivSystem& s) {
                  s.shadow_receiver_.advance();
                  s.bounded_receiver_.advance();
              });
    }

    // Action 5: block ack.
    if (shadow_receiver_.can_ack() != bounded_receiver_.can_ack()) {
        apply(out, "guard mismatch", [](BoundedEquivSystem& s) {
            s.diverged("action 5 guard differs between shadow and bounded");
        });
        return out;
    }
    if (shadow_receiver_.can_ack()) {
        apply(out,
              "R acks (" + std::to_string(shadow_receiver_.nr()) + "," +
                  std::to_string(shadow_receiver_.vr() - 1) + ")",
              [n](BoundedEquivSystem& s) {
                  const auto true_ack = s.shadow_receiver_.make_ack();
                  const auto wire_ack = s.bounded_receiver_.make_ack();
                  if (wire_ack.lo != true_ack.lo % n || wire_ack.hi != true_ack.hi % n) {
                      s.diverged("block-ack residues differ");
                  }
                  s.c_rs_.send(true_ack);
              });
    }

    // Losses.
    if (options_.allow_loss) {
        for (std::size_t i = 0; i < c_sr_.size(); ++i) {
            apply(out, "C_SR loses " + proto::to_string(c_sr_.at(i)),
                  [i](BoundedEquivSystem& s) { s.c_sr_.lose_at(i); });
        }
        for (std::size_t i = 0; i < c_rs_.size(); ++i) {
            apply(out, "C_RS loses " + proto::to_string(c_rs_.at(i)),
                  [i](BoundedEquivSystem& s) { s.c_rs_.lose_at(i); });
        }
    }

    return out;
}

std::vector<std::string> BoundedEquivSystem::violations() const {
    if (!divergence_.empty()) return {divergence_};
    // The shadow must itself satisfy the paper's invariant.
    return check_invariants(shadow_sender_, shadow_receiver_, c_sr_, c_rs_).violations;
}

bool BoundedEquivSystem::done() const {
    return shadow_sender_.ns() == options_.max_ns && shadow_sender_.na() == options_.max_ns &&
           shadow_receiver_.nr() == options_.max_ns && c_sr_.empty() && c_rs_.empty();
}

std::size_t BoundedEquivSystem::hash() const {
    HashFeed h;
    shadow_sender_.feed(h);
    shadow_receiver_.feed(h);
    c_sr_.feed(h);
    c_rs_.feed(h);
    // Bounded-core state is a function of the shadow state when no
    // divergence has occurred, but feed it anyway so any divergence is
    // itself state-distinguishing.
    h(bounded_sender_.na_mod());
    h(bounded_sender_.ns_mod());
    h(bounded_receiver_.nr_mod());
    h(bounded_receiver_.vr_mod());
    return static_cast<std::size_t>(h.value);
}

bool BoundedEquivSystem::operator==(const BoundedEquivSystem& other) const {
    return shadow_sender_ == other.shadow_sender_ &&
           shadow_receiver_ == other.shadow_receiver_ &&
           bounded_sender_ == other.bounded_sender_ &&
           bounded_receiver_ == other.bounded_receiver_ && c_sr_ == other.c_sr_ &&
           c_rs_ == other.c_rs_ && divergence_ == other.divergence_;
}

std::string BoundedEquivSystem::describe() const {
    std::ostringstream os;
    os << "shadow S{na=" << shadow_sender_.na() << " ns=" << shadow_sender_.ns()
       << "} R{nr=" << shadow_receiver_.nr() << " vr=" << shadow_receiver_.vr()
       << "} bounded S{na'=" << bounded_sender_.na_mod() << " ns'=" << bounded_sender_.ns_mod()
       << "} R{nr'=" << bounded_receiver_.nr_mod() << " vr'=" << bounded_receiver_.vr_mod()
       << "} C_SR=" << c_sr_.to_string() << " C_RS=" << c_rs_.to_string();
    return os.str();
}

}  // namespace bacp::verify
