#pragma once

/// \file invariants.hpp
/// Runtime checker for the paper's system invariant (assertions 6-8,
/// SIII-A).  Returns a report of violations instead of throwing, so the
/// model checker can attach a counterexample trace and property tests can
/// print context.
///
///   6: na <= nr <= vr <= ns <= na + w
///   7: (forall m: !ackd[m] : m >= na)  &&  (forall m: ackd[m] : m < nr)
///      && !ackd[na]
///      && (forall m: rcvd[m] : m < ns) && (forall m: !rcvd[m] : m >= vr)
///   8: (forall m: *SR^m + *RS^m <= 1)
///      && (forall m: *SR^m > 0 : m < ns && !ackd[m] && (m < nr || !rcvd[m]))
///      && (forall m: *RS^m > 0 : m < nr && !ackd[m])
///
/// The universally quantified parts of 7 that range over all naturals are
/// discharged by the WindowBitmap representation (everything below the
/// base is true, everything beyond the window is false); the checker
/// verifies the remaining window-local content plus 6 and 8 in full.

#include <string>
#include <vector>

#include "ba/receiver.hpp"
#include "ba/sender.hpp"
#include "channel/transit_view.hpp"

namespace bacp::verify {

struct InvariantReport {
    std::vector<std::string> violations;
    bool ok() const { return violations.empty(); }
    std::string to_string() const;
};

/// How strictly to interpret assertion 8's channel conjuncts.
///
/// Strict is the paper's model and holds under the oracle timeouts and
/// under the realistic SII single timer.  The realistic SIV per-message
/// timer cannot evaluate the "(i < nr || !rcvd[i])" conjunct of
/// timeout(i) -- the sender cannot observe the receiver -- so a deployed
/// sender conservatively resends messages the receiver has already
/// buffered.  The consequences (a data copy in transit for a buffered
/// message; transiently overlapping ack coverage, tolerated sender-side
/// exactly as TCP SACK processing does) are permitted by Relaxed mode;
/// every other conjunct of 6-8 still holds and is checked.
enum class ChannelStrictness { Strict, Relaxed };

/// Checks assertions 6-8 for the unbounded protocol (SII or SIV; both
/// share the invariant).  The channel views are consumed as unordered
/// multisets; a SetChannel converts implicitly, and sim::SimChannel's
/// snapshot() hands its in-flight pool over without a copy.
InvariantReport check_invariants(const ba::Sender& sender, const ba::Receiver& receiver,
                                 channel::TransitView c_sr, channel::TransitView c_rs,
                                 ChannelStrictness strictness = ChannelStrictness::Strict);

}  // namespace bacp::verify
