#pragma once

/// \file hash.hpp
/// FNV-1a style accumulator used to hash protocol system states.  Cores
/// and channels expose feed(h) methods that push their canonical fields
/// through a callable; this is that callable.

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace bacp::verify {

struct HashFeed {
    std::uint64_t value = 1469598103934665603ULL;

    void operator()(Seq v) {
        // Mix each 64-bit field byte-wise (FNV-1a over the value).
        for (int i = 0; i < 8; ++i) {
            value ^= (v >> (8 * i)) & 0xffu;
            value *= 1099511628211ULL;
        }
    }
};

}  // namespace bacp::verify
