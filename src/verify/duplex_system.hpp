#pragma once

/// \file duplex_system.hpp
/// Model-checked duplex (piggybacked) composition.
///
/// Two block-acknowledgment instances share a channel pair; an endpoint
/// may nondeterministically ride its pending block ack on an outgoing
/// data message (a DataAck), flush it standalone, or hold it.  The
/// explorer verifies that BOTH directions' invariants (assertions 6-8)
/// hold in every reachable state, over *direction-projected* channel
/// views: the A->B data view is the Data content of C_AB (including the
/// data half of DataAcks), and the A->B ack view is the Ack content of
/// C_BA (standalone acks plus the ack half of DataAcks riding B's data).
///
/// This is precisely the composition where processing-order mistakes hide
/// (the E13 development found one: handling a DataAck's ack half before
/// its data half forfeits the ride; handling data after ack is required
/// for the *reply* ride but either order must be SAFE).  The checker
/// explores both halves as one atomic action, matching the runtime.

#include <cstddef>
#include <string>
#include <vector>

#include "ba/receiver.hpp"
#include "ba/sender.hpp"
#include "channel/set_channel.hpp"
#include "verify/explorer.hpp"

namespace bacp::verify {

struct DuplexOptions {
    Seq w = 2;
    Seq max_ns_a = 3;  // messages A originates
    Seq max_ns_b = 3;  // messages B originates
    bool allow_loss = true;
};

class DuplexSystem {
public:
    explicit DuplexSystem(const DuplexOptions& options);

    std::vector<Successor<DuplexSystem>> successors() const;
    std::vector<std::string> violations() const;
    bool done() const;
    std::size_t hash() const;
    bool operator==(const DuplexSystem& other) const;
    std::string describe() const;

private:
    struct End {
        ba::Sender sender;
        ba::Receiver receiver;
        End(Seq w) : sender(w), receiver(w) {}
        friend bool operator==(const End&, const End&) = default;
    };

    /// Direction-projected channel views for the invariant checker.
    /// forward = channel carrying this direction's data (and piggybacked
    /// reverse acks); reverse = channel carrying this direction's acks.
    static void project(const channel::SetChannel& forward,
                        const channel::SetChannel& reverse, channel::SetChannel& data_view,
                        channel::SetChannel& ack_view);

    /// Oracle per-message timeout guard for one direction.
    bool timeout_enabled(const End& from, const End& to, const channel::SetChannel& forward,
                         const channel::SetChannel& reverse, Seq i) const;

    template <typename Fn>
    void apply(std::vector<Successor<DuplexSystem>>& out, const std::string& label,
               Fn&& fn) const;

    DuplexOptions options_;
    End a_;
    End b_;
    channel::SetChannel c_ab_;
    channel::SetChannel c_ba_;
    std::string action_violation_;
};

}  // namespace bacp::verify
