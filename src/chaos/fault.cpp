#include "chaos/fault.hpp"

#include <string>

#include "common/assert.hpp"

namespace bacp::chaos {

const char* to_string(FaultClass fault) {
    switch (fault) {
        case FaultClass::StateCorruption: return "state-corruption";
        case FaultClass::DuplicationStorm: return "duplication-storm";
        case FaultClass::ReorderBurst: return "reorder-burst";
        case FaultClass::PayloadCorruption: return "payload-corruption";
        case FaultClass::CrashRestart: return "crash-restart";
    }
    BACP_ASSERT_MSG(false, "unknown FaultClass");
    return "?";
}

double ConvergenceReport::goodput_cost() const {
    const SimTime base = baseline.elapsed();
    if (base == 0) return 0.0;
    const SimTime got = faulted.elapsed();
    if (got <= base) return 0.0;
    return static_cast<double>(got - base) / static_cast<double>(base);
}

std::uint64_t ConvergenceReport::extra_retx() const {
    const std::uint64_t retx = faulted.data_retx + faulted.fast_retx;
    const std::uint64_t base = baseline.data_retx + baseline.fast_retx;
    return retx > base ? retx - base : 0;
}

std::string ConvergenceReport::summary() const {
    std::string out = to_string(fault);
    out += ": ";
    if (injections == 0) {
        out += "nothing to inject";
        return out;
    }
    out += std::to_string(injections) + " injection(s), ";
    out += converged ? "converged" : (completed ? "over budget" : "DID NOT COMPLETE");
    out += " (" + std::string(exact ? "exact" : "approx") + ")";
    out += ", worst " + std::to_string(worst_convergence / kMillisecond) + "ms";
    out += ", dirty " + std::to_string(dirty_probes) + "/" + std::to_string(probes);
    out += ", goodput cost " + std::to_string(goodput_cost());
    out += ", extra retx " + std::to_string(extra_retx());
    return out;
}

}  // namespace bacp::chaos
