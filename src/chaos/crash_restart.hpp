#pragma once

/// \file crash_restart.hpp
/// The crash/restart fault class over the real net runtime: a client
/// dies mid-window -- un-acked frames still in flight, its entire soft
/// state (scoreboards, timers, payload buffers) gone -- and rejoins by
/// bumping the epoch in its connection tag, with no handshake.  The
/// server resets the session in place on the first higher-epoch frame
/// and drops late frames from the dead incarnation as stale
/// (PROTOCOL.md §8); the second incarnation must then complete with
/// exactly-once delivery.
///
/// Driven over net::InprocHub + ManualClock, so every run is an exact
/// function of its spec.  The client deliberately keeps its transport
/// across the crash (same source address) -- the faithful model of a
/// process restart, which also leaves the dead incarnation's in-flight
/// frames in the fabric for the server's stale-epoch filter to catch.
/// crash_after must exceed 2w: the restarted sender shares the socket
/// with its predecessor's late acks, and acks that far above the fresh
/// window clip to nothing (runtime/ack_clip.hpp) instead of aliasing
/// into it.

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "chaos/fault.hpp"
#include "common/assert.hpp"
#include "common/types.hpp"
#include "net/clock.hpp"
#include "net/inproc_hub.hpp"
#include "net/net_engine.hpp"
#include "net/server.hpp"
#include "net/timer_wheel.hpp"
#include "net/transport.hpp"
#include "wire/codec.hpp"

namespace bacp::chaos {

struct CrashRestartSpec {
    Seq w = 4;
    Seq first_count = 24;   // first incarnation's intended transfer
    Seq crash_after = 12;   // server deliveries before the cut (must be > 2w)
    Seq second_count = 16;  // what the restarted incarnation ships
    std::size_t payload_size = 64;
    double loss = 0.0;  // symmetric impairment, both incarnations
    std::uint64_t seed = 11;
    SimTime deadline = 120 * kSecond;
};

struct CrashRestartReport {
    bool crashed_mid_window = false;  // the cut landed with frames un-acked
    bool rejoined = false;            // epoch bump reset the session in place
    bool completed = false;           // second incarnation finished
    bool exactly_once = false;        // rejoined session delivered exactly its count
    std::uint64_t delivered_before_crash = 0;
    std::uint64_t delivered_after_rejoin = 0;
    std::uint64_t payload_mismatches = 0;
    std::uint64_t sessions_opened = 0;
    std::uint64_t stale_epoch_drops = 0;
    SimTime rejoin_to_complete = 0;  // restart instant -> transfer complete

    bool ok() const { return crashed_mid_window && rejoined && completed && exactly_once; }
};

/// Runs the mid-window crash + epoch-rejoin scenario against a real
/// net::Server<Core>.
template <typename Core>
CrashRestartReport run_crash_restart(const CrashRestartSpec& spec = {}) {
    BACP_ASSERT_MSG(spec.crash_after > 2 * spec.w, "crash_after must clear the ack-clip horizon");
    BACP_ASSERT_MSG(spec.crash_after < spec.first_count, "the cut must land mid-transfer");

    net::ManualClock clock;
    net::InprocHub hub;

    net::ServerConfig scfg;
    scfg.session.w = spec.w;
    scfg.session.seed = spec.seed;
    scfg.session.payload_size = spec.payload_size;
    scfg.session.rx_count = 1 << 20;  // receivers run open-ended
    scfg.impair.loss = spec.loss;
    net::Server<Core> server(scfg, {}, clock, {&hub.server()});

    const auto client_config = [&](Seq count, wire::Conn conn) {
        net::NetConfig cfg;
        cfg.w = spec.w;
        cfg.count = count;
        cfg.seed = spec.seed;
        cfg.payload_size = spec.payload_size;
        cfg.conn = conn;
        return cfg;
    };

    std::unique_ptr<net::Transport> transport = hub.make_client();
    auto wheel = std::make_unique<net::TimerWheel>(clock);
    auto sender = std::make_unique<net::NetEndpoint<Core>>(
        client_config(spec.first_count, wire::Conn{7, 1}), typename Core::Options{},
        *wheel, *transport);
    sender->start();

    /// Drains all work at the current instant, then jumps the shared
    /// clock to the earliest armed deadline; stops when \p stop returns
    /// true (checked between polls, so the cut lands mid-exchange) or
    /// nothing remains before the deadline.
    const auto drive = [&](auto&& stop) {
        for (;;) {
            for (;;) {
                const std::size_t work = server.poll() + sender->poll();
                if (stop()) return;
                if (work == 0) break;
            }
            std::optional<SimTime> next;
            const auto consider = [&next](std::optional<SimTime> d) {
                if (d && (!next || *d < *next)) next = d;
            };
            for (std::size_t i = 0; i < server.shard_count(); ++i) {
                consider(server.shard_wheel(i).next_deadline());
            }
            consider(sender->wheel().next_deadline());
            if (!next || *next > spec.deadline) return;
            clock.advance_to(*next);
        }
    };

    CrashRestartReport report;

    // ---- incarnation 1: run to the cut, then die ---------------------------
    drive([&] { return server.protocol_metrics().delivered >= spec.crash_after; });
    report.delivered_before_crash = server.protocol_metrics().delivered;
    report.crashed_mid_window = !sender->done();
    // The crash: sender and timers vanish; the transport (source
    // address) and whatever frames are still in the fabric survive.
    sender.reset();
    wheel = std::make_unique<net::TimerWheel>(clock);

    // ---- incarnation 2: same conn, epoch + 1, no handshake -----------------
    const SimTime restarted_at = clock.now();
    sender = std::make_unique<net::NetEndpoint<Core>>(
        client_config(spec.second_count, wire::Conn{7, 2}), typename Core::Options{},
        *wheel, *transport);
    sender->start();
    drive([&] { return false; });

    const net::ServerStats stats = server.stats();
    report.completed = sender->done();
    report.rejoined = stats.sessions_reset == 1;
    report.sessions_opened = stats.sessions_opened;
    report.stale_epoch_drops = stats.stale_epoch_drops;
    report.rejoin_to_complete = clock.now() - restarted_at;
    for (const net::SessionView& v : server.sessions()) {
        if (v.conn != 7) continue;
        report.delivered_after_rejoin = v.delivered;
        report.payload_mismatches = v.payload_mismatches;
        report.exactly_once = report.completed && v.epoch == 2 &&
                              v.delivered == spec.second_count &&
                              v.payload_mismatches == 0;
    }
    return report;
}

}  // namespace bacp::chaos
