#pragma once

/// \file harness.hpp
/// The DES fault-injection and convergence-verification harness.
///
/// run_faulted<Core>() runs the same transfer twice: once fault-free
/// (the goodput baseline) and once with a FaultSpec campaign injected
/// mid-flight.  The faulted run is driven in slices -- Engine::start()
/// plus simulator().run_until() -- so the harness can stop virtual time
/// at the injection instant, corrupt endpoint state / the in-flight
/// message sets through the chaos hooks, and then probe for
/// re-convergence at sub-timeout resolution.
///
/// Convergence has two notions, chosen by the core's capabilities:
///   - exact (ba cores): verify::check_invariants over live endpoint +
///     channel snapshots; converged = first probe with assertions 6-8
///     clean again (Relaxed channel conjuncts under the per-message
///     timer, exactly as the always-on DES checker applies them);
///   - approximate (go-back-N, selective repeat): in-order delivery
///     progress resumed after the fault, and the transfer completed.
/// Either way the transfer must finish within the run's deadline --
/// "converged but wedged" does not count.

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <variant>

#include "chaos/fault.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "protocol/message.hpp"
#include "runtime/endpoint_core.hpp"
#include "runtime/endpoint_driver.hpp"
#include "runtime/engine.hpp"
#include "runtime/session_util.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "verify/invariants.hpp"

namespace bacp::chaos {

namespace detail {

/// In-flight data corruption below the checksum.  Half the draws are
/// silently plausible -- a nudge of at most one window, which lands on a
/// duplicate or a hole the protocol must absorb as if the channel had
/// lied convincingly; the other half are impossible sequence numbers
/// that the hardened on_data paths must reject (RxOutcome::rejected,
/// counted with the decode errors) instead of tripping a receiver
/// precondition.
inline void mutate_data_seq(proto::Message& m, Rng& rng, Seq w) {
    auto* data = std::get_if<proto::Data>(&m);
    if (data == nullptr) return;
    if (rng.chance(0.5)) {
        const Seq delta = 1 + rng.uniform(w);
        data->seq = (rng.chance(0.5) && data->seq >= delta) ? data->seq - delta
                                                            : data->seq + delta;
    } else {
        data->seq += w + 1 + rng.uniform(std::uint64_t{1} << 16);
    }
}

/// In-flight ack corruption: the block slides to a *stale* range (a lie
/// the receiver could have told earlier, absorbed as a duplicate ack)
/// or to an impossible range far above anything sent, which the
/// sender-side clip (runtime/ack_clip.hpp) reduces to nothing -- loss.
/// A flip that falsely acknowledges an undelivered in-window message is
/// deliberately outside the model: no window protocol can recover from
/// it (the sender would never retransmit, and assertions 6-8 hold all
/// the way to the wedge), which is exactly why integrity on that axis
/// is the CRC's job, not the protocol's -- see net::ImpairSpec::corrupt
/// for the layer that exercises the checksum story.  The stale flavor
/// is itself only a lie-the-receiver-could-have-told under *cumulative*
/// acks (everything below hi was delivered when the receiver spoke);
/// under selective acks a down-shifted range can land on an undelivered
/// hole -- a false ack again -- so non-cumulative cores only get the
/// impossible flavor.  NAKs are advisory and left alone.
inline void mutate_ack_range(proto::Message& m, Rng& rng, Seq w, bool cumulative) {
    auto* ack = std::get_if<proto::Ack>(&m);
    if (ack == nullptr) return;
    if (cumulative && rng.chance(0.5)) {
        // Stale: both endpoints slide down, so hi' <= hi stays within
        // what the receiver had already delivered when it spoke.
        const Seq delta = std::min<Seq>(1 + rng.uniform(2 * w), ack->lo);
        ack->lo -= delta;
        ack->hi -= delta;
    } else {
        // Impossible: far beyond any sent sequence number; clips empty.
        const Seq jump = (Seq{1} << 32) + rng.uniform(std::uint64_t{1} << 16);
        ack->lo += jump;
        ack->hi += jump;
    }
}

/// Applies one round of \p spec to the live engine.  Returns whether the
/// round found anything to break (an idle channel or a drained endpoint
/// can make a round a no-op; such rounds do not count as injections).
template <runtime::EndpointCore Core>
bool inject(runtime::Engine<Core>& engine, Rng& rng, const FaultSpec& spec, Seq w,
            ConvergenceReport& report) {
    switch (spec.fault) {
        case FaultClass::StateCorruption: {
            if constexpr (runtime::kCoreCorruptible<Core>) {
                const std::string what = engine.driver().chaos_corrupt_state(rng);
                if (what.empty()) return false;
                report.faults.push_back(what);
                engine.driver().chaos_scramble_timers(rng);
                return true;
            } else {
                return false;  // core exposes no corruptible state
            }
        }
        case FaultClass::CrashRestart: {
            // DES analogue of a crash: every forgettable fact forgotten
            // at once, timers restarted from scratch.  The wire-level
            // epoch rejoin over a real net::Server is crash_restart.hpp.
            if constexpr (runtime::kCoreCorruptible<Core>) {
                std::size_t hits = 0;
                for (std::size_t k = 0; k < spec.intensity; ++k) {
                    const std::string what = engine.driver().chaos_corrupt_state(rng);
                    if (what.empty()) break;
                    report.faults.push_back(what);
                    ++hits;
                }
                engine.driver().chaos_scramble_timers(rng);
                return hits > 0;
            } else {
                return false;
            }
        }
        case FaultClass::DuplicationStorm: {
            std::size_t n =
                engine.data_channel().chaos_duplicate_in_flight(rng, spec.intensity);
            n += engine.ack_channel().chaos_duplicate_in_flight(
                rng, std::max<std::size_t>(1, spec.intensity / 2));
            if (n == 0) return false;
            report.faults.push_back("duplicated " + std::to_string(n) +
                                    " in-flight copies");
            return true;
        }
        case FaultClass::ReorderBurst: {
            std::size_t n = engine.data_channel().chaos_swap_in_flight(rng, spec.intensity);
            n += engine.ack_channel().chaos_swap_in_flight(
                rng, std::max<std::size_t>(1, spec.intensity / 2));
            if (n == 0) return false;
            report.faults.push_back("swapped " + std::to_string(n) + " in-flight pairs");
            return true;
        }
        case FaultClass::PayloadCorruption: {
            std::size_t n = 0;
            for (std::size_t k = 0; k < spec.intensity; ++k) {
                // Mostly data, some acks: both directions must survive.
                if (k % 4 == 3) {
                    n += engine.ack_channel().chaos_mutate_in_flight(
                             rng, [&rng, w](proto::Message& m) {
                                 mutate_ack_range(m, rng, w, Core::kCumulativeAcks);
                             })
                             ? 1
                             : 0;
                } else {
                    n += engine.data_channel().chaos_mutate_in_flight(
                             rng, [&rng, w](proto::Message& m) {
                                 mutate_data_seq(m, rng, w);
                             })
                             ? 1
                             : 0;
                }
            }
            if (n == 0) return false;
            report.faults.push_back("corrupted " + std::to_string(n) +
                                    " in-flight messages");
            return true;
        }
    }
    return false;
}

}  // namespace detail

/// Runs \p cfg under the \p spec fault campaign and reports convergence
/// against a fault-free twin.  The config's channel tracking is forced
/// on (the chaos hooks and the invariant probes both need the in-flight
/// multisets); the always-on fatal checker stays off -- this harness
/// *expects* transient violations and measures how long they last.
template <runtime::EndpointCore Core>
ConvergenceReport run_faulted(runtime::EngineConfig cfg,
                              typename Core::Options options = {},
                              const FaultSpec& spec = {}) {
    cfg.data_link.track_contents = true;
    cfg.ack_link.track_contents = true;
    cfg.check_invariants = false;

    ConvergenceReport report;
    report.fault = spec.fault;
    report.exact = Core::kInvariantCheckable;

    {
        runtime::Engine<Core> twin(cfg, options);
        report.baseline = twin.run();
        BACP_ASSERT_MSG(twin.completed(), "chaos baseline run did not complete");
    }

    const SimTime timeout = runtime::effective_timeout(cfg);
    const SimTime inject_at = spec.inject_at > 0
                                  ? spec.inject_at
                                  : std::max<SimTime>(report.baseline.elapsed() / 4, 1);
    const SimTime inject_every = spec.inject_every > 0 ? spec.inject_every : timeout;
    const SimTime budget = spec.budget > 0 ? spec.budget : 32 * timeout;
    const SimTime probe_every = std::max<SimTime>(timeout / 8, 1);

    runtime::Engine<Core> engine(cfg, std::move(options));
    sim::Simulator& sim = engine.simulator();
    Rng rng(runtime::mix_seed(spec.seed, 0xc4a05));
    const auto strictness = [&engine] {
        if constexpr (Core::kInvariantCheckable) {
            // Mirror the always-on checker: the realistic per-message
            // timer legitimately relaxes assertion 8's channel conjuncts.
            return engine.timeout_mode() == runtime::TimeoutMode::PerMessageTimer
                       ? verify::ChannelStrictness::Relaxed
                       : verify::ChannelStrictness::Strict;
        } else {
            return verify::ChannelStrictness::Strict;  // unused
        }
    }();

    const bool channel_fault = spec.fault == FaultClass::DuplicationStorm ||
                               spec.fault == FaultClass::ReorderBurst ||
                               spec.fault == FaultClass::PayloadCorruption;

    engine.start();
    for (std::size_t round = 0; round < spec.rounds; ++round) {
        sim.run_until(inject_at + static_cast<SimTime>(round) * inject_every,
                      cfg.max_events);
        if (engine.completed()) break;
        if (channel_fault) {
            // Data spends only its transit delay in flight -- a small
            // slice of the timer period -- so an arbitrary instant
            // usually finds the data channel empty.  Creep forward in
            // sub-timeout steps until a data message is actually in
            // transit (bounded: one timeout always produces traffic).
            // The creep cursor advances on its own grid: run_until leaves
            // now() at the last processed event, so stepping relative to
            // now() would freeze when a step lands between events.
            const SimTime step = std::max<SimTime>(timeout / 64, 1);
            SimTime horizon = sim.now();
            const SimTime creep_end = horizon + 2 * timeout;
            while (engine.data_channel().in_flight() == 0 && !engine.completed() &&
                   horizon < creep_end) {
                horizon += step;
                sim.run_until(horizon, cfg.max_events);
            }
            if (engine.completed()) break;
        }
        // A protocol in a tidy instant can have nothing to break (na
        // hugging ns - w with no interior ackd bits, an empty channel
        // slot draw): retry on a sub-timeout grid until the fault finds
        // purchase, bounded so an uncorruptible stretch just skips the
        // round rather than stalling the campaign.
        bool injected = detail::inject(engine, rng, spec, cfg.w, report);
        if (!injected) {
            const SimTime step = std::max<SimTime>(timeout / 64, 1);
            SimTime horizon = sim.now();
            const SimTime creep_end = horizon + 2 * timeout;
            while (!injected && !engine.completed() && horizon < creep_end) {
                horizon += step;
                sim.run_until(horizon, cfg.max_events);
                injected = detail::inject(engine, rng, spec, cfg.w, report);
            }
        }
        if (!injected) continue;
        const SimTime injected_at = sim.now();
        ++report.injections;

        // Probe until the convergence criterion holds or the budget runs
        // out.  The first probe fires at the injection instant itself:
        // some faults (reorder, which permutes delivery times but not
        // the in-flight multiset) never violate the invariant at all and
        // legitimately converge in zero time.
        const Seq delivered_before = engine.delivered();
        const auto clean = [&]() -> bool {
            if constexpr (Core::kInvariantCheckable) {
                return engine.probe_invariants(strictness).ok();
            } else {
                return engine.delivered() > delivered_before || engine.completed();
            }
        };
        SimTime next_probe = injected_at;
        bool converged_round = false;
        for (;;) {
            ++report.probes;
            if (clean()) {
                converged_round = true;
                break;
            }
            ++report.dirty_probes;
            if (sim.now() - injected_at >= budget) break;
            // A dead event queue cannot converge and cannot advance the
            // clock either -- without this the budget check never trips.
            if (sim.pending_events() == 0) break;
            next_probe += probe_every;
            sim.run_until(next_probe, cfg.max_events);
        }
        if (converged_round) {
            report.worst_convergence =
                std::max(report.worst_convergence, sim.now() - injected_at);
        } else {
            report.budget_exceeded = true;
        }
    }

    sim.run_until(cfg.deadline, cfg.max_events);
    report.completed = engine.completed();
    report.converged =
        report.injections > 0 && !report.budget_exceeded && report.completed;

    sim::Metrics& m = engine.driver().metrics_mut();
    if (m.end_time == 0) m.end_time = sim.now();
    m.sr_dropped = engine.data_channel().stats().dropped;
    m.rs_dropped = engine.ack_channel().stats().dropped;
    report.faulted = m;
    return report;
}

}  // namespace bacp::chaos
