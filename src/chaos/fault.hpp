#pragma once

/// \file fault.hpp
/// Fault vocabulary and convergence records for the self-stabilization
/// subsystem (DESIGN.md §13, experiment E23).
///
/// A protocol is self-stabilizing when, after an arbitrary transient
/// fault, it re-enters its invariant (the paper's assertions 6-8) and
/// resumes correct service without outside intervention.  This module
/// names the fault classes the harness can inject, the knobs of one
/// injection campaign, and the report a faulted run produces: did the
/// system converge, how long did it take, and what did the detour cost
/// in goodput relative to a fault-free twin of the same run.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/metrics.hpp"

namespace bacp::chaos {

/// The injectable transient-fault classes.
enum class FaultClass : std::uint8_t {
    /// Endpoint state corruption: a seeded "forget" fault on the protocol
    /// scoreboards (regressed na/nr, cleared ackd/rcvd bits) plus a
    /// scrambled timer set -- the state a crash-and-lose-soft-state
    /// restart leaves behind.
    StateCorruption,
    /// Unbounded duplication: in-flight copies of data and ack messages
    /// are re-injected into the channel, violating the one-copy property
    /// (assertion 8) outright until the extras drain.
    DuplicationStorm,
    /// Non-FIFO reorder burst: in-flight messages exchange delivery
    /// slots, defeating even a FIFO-clamped channel's ordering.
    ReorderBurst,
    /// In-flight corruption below the checksum: sequence numbers and ack
    /// ranges are rewritten while the message is in transit -- both the
    /// silently-plausible flavor (lands inside a window) and the
    /// impossible flavor (rejected, counted as a decode error).
    PayloadCorruption,
    /// Crash and restart.  In the DES: every forgettable fact forgotten
    /// at once with timers restarted from scratch.  Over the net
    /// runtime: a real mid-window process death and an epoch-bump rejoin
    /// (crash_restart.hpp, PROTOCOL.md §8).
    CrashRestart,
};

inline constexpr FaultClass kAllFaultClasses[] = {
    FaultClass::StateCorruption,   FaultClass::DuplicationStorm,
    FaultClass::ReorderBurst,      FaultClass::PayloadCorruption,
    FaultClass::CrashRestart,
};

const char* to_string(FaultClass fault);

/// One injection campaign: when, how often, how hard.
struct FaultSpec {
    FaultClass fault = FaultClass::StateCorruption;
    /// First injection instant; 0 derives one quarter of the fault-free
    /// run, which lands mid-transfer at any load.
    SimTime inject_at = 0;
    /// Gap between rounds; 0 derives one retransmission timeout.
    SimTime inject_every = 0;
    std::size_t rounds = 1;
    /// Per-round amplitude: duplicate copies, swap pairs, mutated
    /// messages, or corruption draws (CrashRestart).
    std::size_t intensity = 8;
    /// Re-convergence budget per injection; 0 derives 32 timeouts.
    SimTime budget = 0;
    /// Chaos draw stream, decoupled from the run's own seed so the same
    /// workload can face different faults.
    std::uint64_t seed = 7;
};

/// What one faulted run did, against its fault-free twin.
struct ConvergenceReport {
    FaultClass fault = FaultClass::StateCorruption;
    /// true: convergence was established by exact invariant probes
    /// (assertions 6-8 over endpoint + channel snapshots).  false: by
    /// the approximate criterion -- delivery progress resumed and the
    /// transfer completed (cores outside the checker's vocabulary).
    bool exact = false;
    std::size_t injections = 0;      // rounds that found something to break
    bool completed = false;          // transfer finished within the deadline
    bool budget_exceeded = false;    // some injection outlived its budget
    bool converged = false;          // injected, all within budget, completed
    SimTime worst_convergence = 0;   // slowest injection -> first clean probe
    std::size_t probes = 0;
    std::size_t dirty_probes = 0;    // probes that saw a violated invariant
    std::vector<std::string> faults; // what was corrupted, per injection
    sim::Metrics baseline;           // fault-free twin (same config + seed)
    sim::Metrics faulted;

    /// Fractional completion-time slowdown vs the fault-free twin -- the
    /// goodput the fault cost (0 = free recovery).
    double goodput_cost() const;

    /// Retransmissions the recovery spent beyond the baseline's.
    std::uint64_t extra_retx() const;

    /// One-line human-readable report.
    std::string summary() const;
};

}  // namespace bacp::chaos
