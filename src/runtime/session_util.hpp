#pragma once

/// \file session_util.hpp
/// Small helpers shared by the Engine and the duplex session.

#include <cstdint>

#include "common/types.hpp"
#include "runtime/timeout_mode.hpp"

namespace bacp::runtime {

/// Derives an independent RNG stream per channel from one session seed.
/// Each consumer (data channel, ack channel, arrival process, duplex
/// directions) uses a distinct salt so streams never collide or shift
/// when one consumer draws more numbers than another.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt);

}  // namespace bacp::runtime
