#pragma once

/// \file abp_session.hpp
/// Discrete-event runtime for the alternating-bit baseline (stop-and-wait,
/// FIFO channels only).  The no-pipelining floor in the window-scaling
/// experiment E8.

#include <cstdint>

#include "baselines/alternating_bit.hpp"
#include "common/rng.hpp"
#include "runtime/link_spec.hpp"
#include "sim/metrics.hpp"
#include "sim/sim_channel.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace bacp::runtime {

struct AbpConfig {
    Seq count = 1000;
    SimTime timeout = 0;  // 0 = derive from link lifetimes
    LinkSpec data_link = LinkSpec::lossless();
    LinkSpec ack_link = LinkSpec::lossless();
    std::uint64_t seed = 1;
    SimTime deadline = 3600 * kSecond;
    std::size_t max_events = 50'000'000;
};

class AbpSession {
public:
    explicit AbpSession(AbpConfig config);
    AbpSession(const AbpSession&) = delete;
    AbpSession& operator=(const AbpSession&) = delete;

    sim::Metrics run();
    bool completed() const { return receiver_.delivered() == cfg_.count; }
    Seq delivered() const { return receiver_.delivered(); }

private:
    void send_next();
    void on_ack_arrival(const proto::Ack& ack);
    void on_data_arrival(const proto::Data& msg);
    void on_timeout();

    AbpConfig cfg_;
    sim::Simulator sim_;
    Rng rng_data_;
    Rng rng_ack_;
    baselines::AbpSender sender_;
    baselines::AbpReceiver receiver_;
    sim::SimChannel data_ch_;
    sim::SimChannel ack_ch_;
    sim::Timer retx_timer_;
    sim::Metrics metrics_;
    SimTime timeout_ = 0;
    SimTime current_send_time_ = 0;
};

}  // namespace bacp::runtime
