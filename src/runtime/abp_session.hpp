#pragma once

/// \file abp_session.hpp
/// Alternating-bit session: the runtime::Engine driving baselines::AbpCore
/// (stop-and-wait, FIFO channels only).  The no-pipelining floor in the
/// window-scaling experiment E8.

#include "baselines/engine_cores.hpp"
#include "runtime/engine.hpp"

namespace bacp::runtime {

using AbpSession = Engine<baselines::AbpCore>;

}  // namespace bacp::runtime
