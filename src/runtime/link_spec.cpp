#include "runtime/link_spec.hpp"

#include "common/assert.hpp"

namespace bacp::runtime {

LinkSpec LinkSpec::lossless(SimTime lo, SimTime hi) {
    LinkSpec spec;
    spec.delay_lo = lo;
    spec.delay_hi = hi;
    return spec;
}

LinkSpec LinkSpec::lossy(double p, SimTime lo, SimTime hi) {
    LinkSpec spec = lossless(lo, hi);
    spec.loss_kind = Loss::Bernoulli;
    spec.loss_p = p;
    return spec;
}

sim::SimChannel::Config LinkSpec::make_config() const {
    sim::SimChannel::Config config;
    switch (loss_kind) {
        case Loss::None:
            config.loss = std::make_unique<channel::NoLoss>();
            break;
        case Loss::Bernoulli:
            config.loss = std::make_unique<channel::BernoulliLoss>(loss_p);
            break;
        case Loss::GilbertElliott:
            config.loss = std::make_unique<channel::GilbertElliottLoss>(
                ge_p_good_to_bad, ge_p_bad_to_good, ge_loss_good, ge_loss_bad);
            break;
        case Loss::Scripted:
            config.loss = std::make_unique<channel::ScriptedLoss>(scripted_drops);
            break;
    }
    switch (delay_kind) {
        case Delay::Fixed:
            config.delay = std::make_unique<channel::FixedDelay>(delay_lo);
            break;
        case Delay::Uniform:
            config.delay = std::make_unique<channel::UniformDelay>(delay_lo, delay_hi);
            break;
        case Delay::Exponential:
            // mean = (lo+hi)/2 - lo tail above the base, capped at hi - lo.
            BACP_ASSERT(delay_hi > delay_lo);
            config.delay = std::make_unique<channel::ExponentialDelay>(
                delay_lo, (delay_hi - delay_lo) / 4 + 1, delay_hi - delay_lo);
            break;
        case Delay::HeavyTail:
            BACP_ASSERT(delay_hi > delay_lo);
            config.delay = std::make_unique<channel::HeavyTailDelay>(
                delay_lo, (delay_hi - delay_lo) / 10 + 1, heavy_alpha, delay_hi - delay_lo);
            break;
    }
    config.fifo = fifo;
    config.track_contents = track_contents;
    config.service_time = service_time;
    config.queue_capacity = queue_capacity;
    return config;
}

SimTime LinkSpec::max_lifetime() const {
    const SimTime propagation = delay_kind == Delay::Fixed ? delay_lo : delay_hi;
    // A queued message can wait behind up to queue_capacity predecessors.
    const SimTime queueing =
        service_time > 0 ? service_time * static_cast<SimTime>(queue_capacity + 1) : 0;
    return propagation + queueing;
}

}  // namespace bacp::runtime
