#pragma once

/// \file horizon.hpp
/// Send-horizon rule, shared by the block-ack core and the duplex
/// session.
///
/// When an acknowledgment covers a message i whose last copy may still be
/// in transit (last_tx(i) + L_SR > now -- only possible after
/// retransmissions), advancing the window past i + w would let the
/// receiver's nr outrun the in-flight copy by more than w, and under
/// bounded (mod 2w) sequence numbers the late copy would alias into a
/// *future* sequence number at the receiver.  Capping ns <= i + w until
/// the copy has provably aged out preserves invariant 11 (v < nr + w) for
/// every arrival.  This is the per-message analogue of TCP's quiet-time
/// rule.

#include <algorithm>

#include "common/types.hpp"

namespace bacp::runtime {

class SendHorizon {
public:
    /// Records that acknowledged message \p true_seq may still have a
    /// copy in the data channel until \p copy_gone.
    void note(Seq true_seq, SimTime copy_gone, SimTime now, Seq w) {
        if (copy_gone <= now) return;
        until_ = std::max(until_, copy_gone);
        cap_ = std::min(cap_, true_seq + w);
    }

    /// True when sending the message with true sequence number
    /// \p next_true_seq must wait for the horizon to expire.  Resets the
    /// cap once the horizon has passed.
    bool blocks(Seq next_true_seq, SimTime now) {
        if (until_ <= now) {
            cap_ = kNoCap;  // expired
            return false;
        }
        return next_true_seq >= cap_;
    }

    /// Expiry instant of the current horizon (meaningful while blocking).
    SimTime until() const { return until_; }

private:
    static constexpr Seq kNoCap = ~Seq{0};
    SimTime until_ = 0;  // horizon expiry
    Seq cap_ = kNoCap;   // ns may not exceed this before expiry
};

}  // namespace bacp::runtime
