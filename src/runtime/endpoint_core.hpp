#pragma once

/// \file endpoint_core.hpp
/// The EndpointCore protocol surface and the transport-agnostic helpers
/// shared by the two runtimes that drive cores: the discrete-event
/// runtime::Engine (virtual time, sim::SimChannel) and the real-time
/// net::NetSender / net::NetReceiver (wall clock, UDP or in-process
/// datagrams).  Extracted from engine.hpp so a core written once runs
/// unchanged over both -- the paper's protocol machines never learn
/// which kind of time or channel is underneath them.

#include <concepts>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "protocol/message.hpp"
#include "runtime/timeout_mode.hpp"

namespace bacp::runtime {

/// Read-only view of a runtime's transmission log, handed to cores that
/// need transmission times (send horizon, NAK one-copy rule).
struct TxView {
    SimTime now = 0;
    SimTime data_lifetime = 0;  // max time a copy can survive in C_SR
    const std::unordered_map<Seq, SimTime>* last_tx = nullptr;

    std::optional<SimTime> last_tx_time(Seq true_seq) const {
        const auto it = last_tx->find(true_seq);
        if (it == last_tx->end()) return std::nullopt;
        return it->second;
    }
};

/// What the receiver half of a core reports for one data arrival.
struct RxOutcome {
    Seq delivered = 0;      // in-order deliveries unlocked by this arrival
    bool duplicate = false; // arrival did not carry new information
    /// BA-style duplicate re-ack: counted as a dup_ack, sent immediately,
    /// and the arrival contributes nothing else (early return).
    std::optional<proto::Ack> dup_ack;
    /// Mandatory per-arrival acknowledgment (selective repeat, ABP);
    /// bypasses the ack policy.
    std::optional<proto::Ack> immediate_ack;
    /// Fast-retransmit request the receiver wants on the ack channel.
    std::optional<proto::Nak> nak;
};

// clang-format off
/// The protocol surface a runtime drives.  All sequence numbers crossing
/// this boundary are TRUE (unbounded) values; cores map to wire residues
/// internally.  Optional extensions a runtime detects per core (see the
/// kCore* traits below):
///
///   send_blocked_until(now)      time gate on new sends (send horizon,
///                                residue quarantine); the runtime sleeps
///                                until the returned instant
///   timeout_eligible(seq, bool)  SIV resend gate (realistic) and the
///                                receiver-oracle conjunct (oracle mode)
///   on_nak(nak, tx)              sender-side NAK fast retransmit
///   sender_core()/receiver_core() expose the underlying pure cores
template <typename C>
concept EndpointCore =
    requires(C core, const C& ccore, proto::Data data, proto::Ack ack,
             TxView tx, SimTime t, Seq seq) {
        typename C::Options;
        { C::kRequiresFifo } -> std::convertible_to<bool>;
        { C::kDefaultTimeoutMode } -> std::convertible_to<TimeoutMode>;
        { ccore.can_send_new() } -> std::convertible_to<bool>;
        { core.send_new(t) } -> std::same_as<proto::Data>;
        { core.on_ack(ack, tx) };
        { ccore.has_outstanding() } -> std::convertible_to<bool>;
        { core.on_data(data, t) } -> std::same_as<RxOutcome>;
        { ccore.ack_pending() } -> std::convertible_to<Seq>;
        { core.make_ack() } -> std::same_as<proto::Ack>;
        { ccore.resend_candidates() } -> std::same_as<std::vector<Seq>>;
        { ccore.can_resend(seq) } -> std::convertible_to<bool>;
        { core.resend(seq, t) } -> std::same_as<proto::Data>;
        { ccore.simple_timeout_set() } -> std::same_as<std::vector<Seq>>;
    };
// clang-format on

/// Optional-extension detection, shared by both runtimes so the same
/// core exercises the same policies over virtual and wall-clock time.
template <typename C>
inline constexpr bool kCoreTimeGatedSend =
    requires(C& c, SimTime t) { { c.send_blocked_until(t) } -> std::convertible_to<SimTime>; };

template <typename C>
inline constexpr bool kCoreGatedResend =
    requires(const C& c, Seq s) { { c.timeout_eligible(s, true) } -> std::convertible_to<bool>; };

template <typename C>
inline constexpr bool kCoreHandlesNak =
    requires(C& c, const proto::Nak& n, const TxView& tx) {
        { c.on_nak(n, tx) } -> std::same_as<std::optional<Seq>>;
    };

/// Last-transmission log: the bookkeeping every runtime keeps so cores
/// can evaluate time-based rules.  matured() is the realistic
/// per-message expiry test ("the last copy was sent a full timeout
/// ago"); view() packages the log for the core-facing TxView.
class TxLog {
public:
    void note(Seq true_seq, SimTime now) { last_tx_[true_seq] = now; }

    bool matured(Seq true_seq, SimTime now, SimTime timeout) const {
        const auto it = last_tx_.find(true_seq);
        return it != last_tx_.end() && now - it->second >= timeout;
    }

    TxView view(SimTime now, SimTime data_lifetime) const {
        return {now, data_lifetime, &last_tx_};
    }

private:
    std::unordered_map<Seq, SimTime> last_tx_;
};

}  // namespace bacp::runtime
