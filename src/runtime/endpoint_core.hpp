#pragma once

/// \file endpoint_core.hpp
/// The EndpointCore protocol surface and the transport-agnostic helpers
/// shared by the two runtimes that drive cores: the discrete-event
/// runtime::Engine (virtual time, sim::SimChannel) and the real-time
/// net::NetEndpoint (wall clock, UDP or in-process datagrams).  Extracted from engine.hpp so a core written once runs
/// unchanged over both -- the paper's protocol machines never learn
/// which kind of time or channel is underneath them.

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <optional>
#include <vector>

#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "protocol/message.hpp"
#include "runtime/timeout_mode.hpp"

namespace bacp::runtime {

/// Dense true-seq -> SimTime table.  True sequence numbers are assigned
/// contiguously from 0, so a flat vector with a "never" sentinel beats a
/// hash map on every axis that matters to the hot path: O(1) with no
/// hashing, no rehash-driven allocation after reserve(), and entries are
/// 8 bytes apiece.  Values are write-once-per-note and never erased
/// (clearing is not needed: each runtime consults a seq only while it is
/// outstanding).
class SeqTimeTable {
public:
    static constexpr SimTime kNever = -1;

    void set(Seq true_seq, SimTime t) {
        if (true_seq >= times_.size()) {
            // Grow in chunks: seqs arrive one at a time, and a resize per
            // set() would pay a fill call on every message.  Clamp the
            // chunk to an existing reserve() so a pre-sized table never
            // reallocates mid-run.
            std::size_t grow = times_.size() + times_.size() / 2 + 64;
            if (grow > times_.capacity() && times_.capacity() > true_seq) {
                grow = times_.capacity();
            }
            times_.resize(std::max<std::size_t>(true_seq + 1, grow), kNever);
        }
        times_[true_seq] = t;
    }

    /// kNever when the seq was never recorded.
    SimTime get(Seq true_seq) const {
        return true_seq < times_.size() ? times_[true_seq] : kNever;
    }

    void reserve(std::size_t n) { times_.reserve(n); }

private:
    std::vector<SimTime> times_;
};

/// Read-only view of a runtime's transmission log, handed to cores that
/// need transmission times (send horizon, NAK one-copy rule).
struct TxView {
    SimTime now = 0;
    SimTime data_lifetime = 0;  // max time a copy can survive in C_SR
    const SeqTimeTable* last_tx = nullptr;

    std::optional<SimTime> last_tx_time(Seq true_seq) const {
        const SimTime t = last_tx->get(true_seq);
        if (t == SeqTimeTable::kNever) return std::nullopt;
        return t;
    }
};

/// What the receiver half of a core reports for one data arrival.
struct RxOutcome {
    Seq delivered = 0;      // in-order deliveries unlocked by this arrival
    bool duplicate = false; // arrival did not carry new information
    /// BA-style duplicate re-ack: counted as a dup_ack, sent immediately,
    /// and the arrival contributes nothing else (early return).
    std::optional<proto::Ack> dup_ack;
    /// Mandatory per-arrival acknowledgment (selective repeat, ABP);
    /// bypasses the ack policy.
    std::optional<proto::Ack> immediate_ack;
    /// Fast-retransmit request the receiver wants on the ack channel.
    std::optional<proto::Nak> nak;
    /// Arrival was syntactically valid but semantically impossible (e.g.
    /// a sequence number beyond nr + w that no conforming sender could
    /// have emitted).  A CRC-valid-but-corrupted frame lands here; the
    /// runtime counts it as a decode error and otherwise treats it as
    /// loss instead of crashing on a receiver precondition.
    bool rejected = false;
};

// clang-format off
/// The protocol surface a runtime drives.  All sequence numbers crossing
/// this boundary are TRUE (unbounded) values; cores map to wire residues
/// internally.  Optional extensions a runtime detects per core (see the
/// kCore* traits below):
///
///   send_blocked_until(now)      time gate on new sends (send horizon,
///                                residue quarantine); the runtime sleeps
///                                until the returned instant
///   timeout_eligible(seq, bool)  SIV resend gate (realistic) and the
///                                receiver-oracle conjunct (oracle mode)
///   on_nak(nak, tx)              sender-side NAK fast retransmit
///   sender_core()/receiver_core() expose the underlying pure cores
///
/// resend_candidates(out) and simple_timeout_set(out) APPEND into a
/// caller-owned vector instead of returning one: the runtimes call them
/// on every ack / timeout, and the append style lets a runtime reuse one
/// scratch vector for the whole session instead of allocating per call.
template <typename C>
concept EndpointCore =
    requires(C core, const C& ccore, proto::Data data, proto::Ack ack,
             TxView tx, SimTime t, Seq seq, std::vector<Seq>& seqs) {
        typename C::Options;
        { C::kRequiresFifo } -> std::convertible_to<bool>;
        { C::kDefaultTimeoutMode } -> std::convertible_to<TimeoutMode>;
        { ccore.can_send_new() } -> std::convertible_to<bool>;
        { core.send_new(t) } -> std::same_as<proto::Data>;
        { core.on_ack(ack, tx) };
        { ccore.has_outstanding() } -> std::convertible_to<bool>;
        { core.on_data(data, t) } -> std::same_as<RxOutcome>;
        { ccore.ack_pending() } -> std::convertible_to<Seq>;
        { core.make_ack() } -> std::same_as<proto::Ack>;
        { ccore.resend_candidates(seqs) } -> std::same_as<void>;
        { ccore.can_resend(seq) } -> std::convertible_to<bool>;
        { core.resend(seq, t) } -> std::same_as<proto::Data>;
        { ccore.simple_timeout_set(seqs) } -> std::same_as<void>;
    };
// clang-format on

/// Optional-extension detection, shared by both runtimes so the same
/// core exercises the same policies over virtual and wall-clock time.
template <typename C>
inline constexpr bool kCoreTimeGatedSend =
    requires(C& c, SimTime t) { { c.send_blocked_until(t) } -> std::convertible_to<SimTime>; };

template <typename C>
inline constexpr bool kCoreGatedResend =
    requires(const C& c, Seq s) { { c.timeout_eligible(s, true) } -> std::convertible_to<bool>; };

template <typename C>
inline constexpr bool kCoreHandlesNak =
    requires(C& c, const proto::Nak& n, const TxView& tx) {
        { c.on_nak(n, tx) } -> std::same_as<std::optional<Seq>>;
    };

/// Chaos hook (src/chaos): the core can apply one seeded perturbation
/// drawn from its reachable-but-wrong state space -- forgotten acks, a
/// regressed cumulative pointer, cleared cache bits.  Returns a short
/// human-readable description of what was corrupted, or "" when the
/// current state offers nothing to corrupt.  Implementations must keep
/// the state *internally* consistent (no broken representation
/// invariants) while making it *protocol*-inconsistent with the peer;
/// self-stabilization is measured from exactly such configurations.
template <typename C>
inline constexpr bool kCoreCorruptible = requires(C& c, Rng& rng) {
    { c.corrupt_state(rng) } -> std::convertible_to<std::string>;
};

/// Last-transmission log: the bookkeeping every runtime keeps so cores
/// can evaluate time-based rules.  matured() is the realistic
/// per-message expiry test ("the last copy was sent a full timeout
/// ago"); view() packages the log for the core-facing TxView.
class TxLog {
public:
    void note(Seq true_seq, SimTime now) { last_tx_.set(true_seq, now); }

    bool matured(Seq true_seq, SimTime now, SimTime timeout) const {
        const SimTime t = last_tx_.get(true_seq);
        return t != SeqTimeTable::kNever && now - t >= timeout;
    }

    TxView view(SimTime now, SimTime data_lifetime) const {
        return {now, data_lifetime, &last_tx_};
    }

    void reserve(std::size_t n) { last_tx_.reserve(n); }

private:
    SeqTimeTable last_tx_;
};

}  // namespace bacp::runtime
