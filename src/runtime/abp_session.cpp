#include "runtime/abp_session.hpp"

namespace bacp::runtime {

namespace {
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
    std::uint64_t s = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
    return splitmix64(s);
}

LinkSpec force_fifo(LinkSpec spec) {
    spec.fifo = true;  // ABP is only correct over FIFO channels
    return spec;
}
}  // namespace

AbpSession::AbpSession(AbpConfig config)
    : cfg_(std::move(config)),
      rng_data_(mix_seed(cfg_.seed, 0xd1)),
      rng_ack_(mix_seed(cfg_.seed, 0xac)),
      data_ch_(sim_, rng_data_, force_fifo(cfg_.data_link).make_config(), "C_SR"),
      ack_ch_(sim_, rng_ack_, force_fifo(cfg_.ack_link).make_config(), "C_RS"),
      retx_timer_(sim_, [this] { on_timeout(); }) {
    timeout_ = cfg_.timeout > 0
                   ? cfg_.timeout
                   : cfg_.data_link.max_lifetime() + cfg_.ack_link.max_lifetime() + kMillisecond;
    data_ch_.set_receiver(
        [this](const proto::Message& m) { on_data_arrival(std::get<proto::Data>(m)); });
    ack_ch_.set_receiver(
        [this](const proto::Message& m) { on_ack_arrival(std::get<proto::Ack>(m)); });
}

sim::Metrics AbpSession::run() {
    metrics_.start_time = sim_.now();
    send_next();
    sim_.run_until(cfg_.deadline, cfg_.max_events);
    if (metrics_.end_time == 0) metrics_.end_time = sim_.now();
    metrics_.sr_dropped = data_ch_.stats().dropped;
    metrics_.rs_dropped = ack_ch_.stats().dropped;
    return metrics_;
}

void AbpSession::send_next() {
    if (sender_.completed() >= cfg_.count) return;
    if (!sender_.can_send_new()) return;
    ++metrics_.data_new;
    current_send_time_ = sim_.now();
    data_ch_.send(sender_.send_new());
    retx_timer_.restart(timeout_);
}

void AbpSession::on_ack_arrival(const proto::Ack& ack) {
    ++metrics_.acks_received;
    const Seq before = sender_.completed();
    sender_.on_ack(ack);
    if (sender_.completed() > before) {
        retx_timer_.cancel();
        send_next();
    }
}

void AbpSession::on_data_arrival(const proto::Data& msg) {
    ++metrics_.data_received;
    const Seq before = receiver_.delivered();
    const proto::Ack ack = receiver_.on_data(msg);
    if (receiver_.delivered() > before) {
        ++metrics_.delivered;
        metrics_.latency.add(sim_.now() - current_send_time_);
        if (receiver_.delivered() == cfg_.count) metrics_.end_time = sim_.now();
    } else {
        ++metrics_.duplicates;
    }
    ++metrics_.acks_sent;
    ack_ch_.send(ack);
}

void AbpSession::on_timeout() {
    if (!sender_.awaiting_ack()) return;
    ++metrics_.data_retx;
    data_ch_.send(sender_.resend());
    retx_timer_.restart(timeout_);
}

}  // namespace bacp::runtime
