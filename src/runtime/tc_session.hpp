#pragma once

/// \file tc_session.hpp
/// Discrete-event runtime for the time-constrained baseline (Stenning;
/// Shankar & Lam): bounded sequence numbers + cumulative acks, made safe
/// by a minimum reuse interval between transmissions sharing a residue.
///
/// When the window wants to advance but the residue of ns is still inside
/// its quarantine period, the session schedules a precise retry at
/// residue_ready_at() -- that stall is the throughput penalty experiment
/// E7 measures as a function of the domain size N.

#include <cstdint>
#include <unordered_map>

#include "baselines/gobackn.hpp"
#include "baselines/timer_based.hpp"
#include "common/rng.hpp"
#include "runtime/link_spec.hpp"
#include "sim/metrics.hpp"
#include "sim/sim_channel.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace bacp::runtime {

struct TcConfig {
    Seq w = 8;
    Seq count = 1000;
    Seq domain = 16;           // sequence-number domain N (> w)
    SimTime reuse_interval = 0;  // 0 = derive: L_SR + L_RS + margin
    SimTime timeout = 0;         // 0 = derive from link lifetimes
    LinkSpec data_link = LinkSpec::lossless();
    LinkSpec ack_link = LinkSpec::lossless();
    std::uint64_t seed = 1;
    SimTime deadline = 3600 * kSecond;
    std::size_t max_events = 50'000'000;
};

class TcSession {
public:
    explicit TcSession(TcConfig config);
    TcSession(const TcSession&) = delete;
    TcSession& operator=(const TcSession&) = delete;

    sim::Metrics run();
    bool completed() const;
    Seq delivered() const { return delivered_; }
    const baselines::TcSender& sender_core() const { return sender_; }

private:
    void pump_send();
    void transmit(const proto::Data& msg, bool retx);
    void on_ack_arrival(const proto::Ack& ack);
    void on_data_arrival(const proto::Data& msg);
    void on_timeout();

    TcConfig cfg_;
    sim::Simulator sim_;
    Rng rng_data_;
    Rng rng_ack_;
    baselines::TcSender sender_;
    baselines::GbnReceiver receiver_;
    sim::SimChannel data_ch_;
    sim::SimChannel ack_ch_;
    sim::Timer retx_timer_;
    sim::Timer reuse_timer_;  // wakes the sender when a residue clears
    sim::Metrics metrics_;
    SimTime timeout_ = 0;
    Seq sent_new_ = 0;
    Seq delivered_ = 0;
    std::unordered_map<Seq, SimTime> first_send_;
};

}  // namespace bacp::runtime
