#pragma once

/// \file tc_session.hpp
/// Time-constrained session: the runtime::Engine driving
/// baselines::TcCore (Stenning; Shankar & Lam).  The residue-quarantine
/// stall surfaces through the core's send_blocked_until gate; the engine
/// schedules a precise retry at the clearing instant -- that stall is the
/// throughput penalty experiment E7 measures as a function of the domain
/// size N.

#include "baselines/engine_cores.hpp"
#include "runtime/engine.hpp"

namespace bacp::runtime {

using TcSession = Engine<baselines::TcCore>;

}  // namespace bacp::runtime
