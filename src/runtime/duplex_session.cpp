#include "runtime/duplex_session.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "runtime/ack_clip.hpp"
#include "runtime/session_util.hpp"

namespace bacp::runtime {

DuplexSession::DuplexSession(DuplexConfig config)
    : cfg_(std::move(config)),
      rng_ab_(mix_seed(cfg_.seed, 0xab)),
      rng_ba_(mix_seed(cfg_.seed, 0xba)),
      ab_(sim_, rng_ab_, cfg_.ab_link.make_config(), "C_AB"),
      ba_(sim_, rng_ba_, cfg_.ba_link.make_config(), "C_BA"),
      a_(sim_, cfg_.w, cfg_.count_a_to_b, [this] { flush_ack(0); }, [this] { pump(0); }),
      b_(sim_, cfg_.w, cfg_.count_b_to_a, [this] { flush_ack(1); }, [this] { pump(1); }) {
    // An ack may be held up to piggyback_delay before it costs a frame.
    const SimTime hold = cfg_.piggyback ? cfg_.piggyback_delay : 0;
    timeout_ = cfg_.timeout > 0 ? cfg_.timeout
                                : cfg_.ab_link.max_lifetime() + cfg_.ba_link.max_lifetime() +
                                      hold + kMillisecond;
    ab_.set_receiver([this](const proto::Message& m) { on_message(1, m); });
    ba_.set_receiver([this](const proto::Message& m) { on_message(0, m); });
}

DuplexSession::Result DuplexSession::run() {
    a_.metrics.start_time = sim_.now();
    b_.metrics.start_time = sim_.now();
    pump(0);
    pump(1);
    sim_.run_until(cfg_.deadline, cfg_.max_events);
    Result result;
    if (a_.metrics.end_time == 0) a_.metrics.end_time = sim_.now();
    if (b_.metrics.end_time == 0) b_.metrics.end_time = sim_.now();
    a_.metrics.sr_dropped = ab_.stats().dropped;
    b_.metrics.sr_dropped = ba_.stats().dropped;
    result.a_to_b = a_.metrics;
    result.b_to_a = b_.metrics;
    result.frames_ab = ab_.stats().sent;
    result.frames_ba = ba_.stats().sent;
    result.piggybacked = piggybacked_;
    result.standalone_acks = standalone_acks_;
    return result;
}

bool DuplexSession::completed() const {
    return a_.sent_new == cfg_.count_a_to_b && b_.sent_new == cfg_.count_b_to_a &&
           b_.delivered_from_peer == cfg_.count_a_to_b &&
           a_.delivered_from_peer == cfg_.count_b_to_a && a_.sender.outstanding() == 0 &&
           b_.sender.outstanding() == 0;
}

bool DuplexSession::horizon_blocks(int id) {
    Endpoint& self = endpoint(id);
    return self.horizon.blocks(self.sent_new, sim_.now());
}

void DuplexSession::note_horizon(int id, Seq true_seq) {
    Endpoint& self = endpoint(id);
    const auto it = self.last_tx.find(true_seq);
    if (it == self.last_tx.end()) return;
    const LinkSpec& out_spec = id == 0 ? cfg_.ab_link : cfg_.ba_link;
    self.horizon.note(true_seq, it->second + out_spec.max_lifetime(), sim_.now(), cfg_.w);
}

void DuplexSession::pump(int id) {
    Endpoint& self = endpoint(id);
    while (self.sent_new < self.to_send && self.sender.can_send_new()) {
        if (horizon_blocks(id)) {
            if (!self.horizon_timer.armed()) {
                self.horizon_timer.restart(self.horizon.until() - sim_.now());
            }
            return;
        }
        const proto::Data msg = self.sender.send_new();
        const Seq true_seq = self.sent_new++;
        self.first_send.emplace(true_seq, sim_.now());
        transmit(id, msg, true_seq, /*retx=*/false);
    }
}

void DuplexSession::transmit(int id, const proto::Data& msg, Seq true_seq, bool retx) {
    Endpoint& self = endpoint(id);
    if (retx) {
        ++self.metrics.data_retx;
    } else {
        ++self.metrics.data_new;
    }
    self.last_tx[true_seq] = sim_.now();
    // Piggyback a held acknowledgment if one is pending (action 5 of the
    // endpoint's receiver half rides along for free).
    if (cfg_.piggyback && self.receiver.can_ack()) {
        const proto::Ack ride = self.receiver.make_ack();
        self.ack_timer.cancel();
        ++peer_of(id).metrics.acks_sent;  // the ack covers the peer's data
        ++piggybacked_;
        out_channel(id).send(proto::DataAck{msg, ride});
    } else {
        out_channel(id).send(msg);
    }
    sim_.schedule_after(timeout_, [this, id, true_seq] { per_message_fire(id, true_seq); });
}

bool DuplexSession::resend_gate(const Endpoint& self, Seq true_seq) const {
    return true_seq == self.sender.na() || self.sender.acked_beyond(true_seq);
}

void DuplexSession::per_message_fire(int id, Seq true_seq) {
    Endpoint& self = endpoint(id);
    if (!self.sender.can_resend(true_seq)) return;
    const auto it = self.last_tx.find(true_seq);
    if (it == self.last_tx.end() || sim_.now() - it->second < timeout_) return;
    if (!resend_gate(self, true_seq)) return;  // reconsidered on next ack
    transmit(id, self.sender.resend(true_seq), true_seq, /*retx=*/true);
}

void DuplexSession::rescan_matured(int id) {
    Endpoint& self = endpoint(id);
    for (const Seq true_seq : self.sender.resend_candidates()) {
        const auto it = self.last_tx.find(true_seq);
        if (it == self.last_tx.end() || sim_.now() - it->second < timeout_) continue;
        if (!resend_gate(self, true_seq)) continue;
        transmit(id, self.sender.resend(true_seq), true_seq, /*retx=*/true);
    }
}

void DuplexSession::handle_ack(int id, const proto::Ack& ack) {
    Endpoint& self = endpoint(id);
    ++self.metrics.acks_received;
    for (const auto& run : clip_ack_unbounded(self.sender, ack)) {
        for (Seq t = run.lo; t <= run.hi; ++t) note_horizon(id, t);
        self.sender.on_ack(run);
    }
    pump(id);
    rescan_matured(id);
}

void DuplexSession::handle_data(int id, const proto::Data& msg) {
    // Endpoint `id` RECEIVES this data; metrics belong to the peer's
    // sending direction.
    Endpoint& self = endpoint(id);
    Endpoint& peer = peer_of(id);
    ++peer.metrics.data_received;
    const auto dup = self.receiver.on_data(msg);
    if (dup) {
        ++peer.metrics.duplicates;
        ++peer.metrics.dup_acks;
        ++standalone_acks_;
        out_channel(id).send(*dup);  // dup-acks go out immediately
        return;
    }
    while (self.receiver.can_advance()) {
        self.receiver.advance();
        const Seq true_seq = self.delivered_from_peer++;
        ++peer.metrics.delivered;
        const auto sent = peer.first_send.find(true_seq);
        if (sent != peer.first_send.end()) {
            peer.metrics.latency.add(sim_.now() - sent->second);
            peer.first_send.erase(sent);
        }
        if (peer.metrics.delivered == peer.to_send) peer.metrics.end_time = sim_.now();
    }
    if (self.receiver.can_ack()) {
        if (cfg_.piggyback) {
            // Try to ride on reverse data first: pump may emit some now.
            pump(id);
        }
        // Both modes hold the ack for the same delay (so the piggyback
        // ablation isolates riding from batching); in piggyback mode an
        // outgoing data frame may pick it up before the timer fires.
        if (self.receiver.can_ack() && !self.ack_timer.armed()) {
            self.ack_timer.restart(cfg_.piggyback_delay);
        }
    }
}

void DuplexSession::flush_ack(int id) {
    Endpoint& self = endpoint(id);
    self.ack_timer.cancel();
    if (!self.receiver.can_ack()) return;
    ++peer_of(id).metrics.acks_sent;  // the ack covers the peer's data
    ++standalone_acks_;
    out_channel(id).send(self.receiver.make_ack());
}

void DuplexSession::on_message(int id, const proto::Message& msg) {
    if (const auto* data = std::get_if<proto::Data>(&msg)) {
        handle_data(id, *data);
    } else if (const auto* ack = std::get_if<proto::Ack>(&msg)) {
        handle_ack(id, *ack);
    } else if (const auto* both = std::get_if<proto::DataAck>(&msg)) {
        // Data first so its pending acknowledgment exists when the ack
        // half opens the window and pumps -- the reply then rides it.
        handle_data(id, both->data);
        handle_ack(id, both->ack);
    } else {
        BACP_ASSERT_MSG(false, "unexpected message type on duplex channel");
    }
}

}  // namespace bacp::runtime
