#pragma once

/// \file duplex_driver.hpp
/// Two EndpointDriver halves composed into one full-duplex endpoint.
///
/// The paper's protocol is one-way, but every deployment of it is
/// duplex: each end of a session both sources and sinks data over the
/// same socket.  DuplexDriver<Core, Env> owns a sender-side and a
/// receiver-side EndpointDriver sharing one environment -- one clock,
/// one TimerService, one egress -- and adds the single piece of policy
/// that only exists when both directions share a wire: *ack deferral*.
/// When piggybacking is enabled, acks produced by the receiving half are
/// queued instead of sent; the next reverse DATA carries the oldest
/// pending block as a DATA+ACK frame (wire type 4), and a flush timer
/// bounds the deferral so a quiet reverse path still acks within
/// piggyback_delay.  E13 measured the DES-side win of exactly this
/// policy; this class brings it to any DriverEnvironment, including the
/// real network (net::NetEndpoint).
///
/// Invariants preserved:
///  - Decision streams are deferral-invariant.  The inner drivers log
///    AckBlock/AckDup *before* egress, so a deferred ack appears in the
///    decision log at the moment the protocol decided it, and the
///    cross-runtime parity tests keep holding with piggybacking on.
///  - The conservative derived timeout grows by piggyback_delay on both
///    halves (both endpoints of a session must agree on the piggyback
///    configuration, exactly as they must agree on w and the ack
///    policy), so assertion 8's one-copy-in-transit bound survives the
///    deferral window.
///  - Wrapped block acks (bounded BA residue ranges with hi < lo) are
///    split at the domain edge before piggybacking: one DATA frame
///    carries one contiguous wire range; the remainder stays queued.
///
/// With piggyback off the class is a transparent composition: every ack
/// egresses immediately and a one-way configuration (rx_count or count
/// of zero) behaves byte-identically to a bare EndpointDriver, which is
/// what lets net::NetEndpoint replace the old NetSender/NetReceiver
/// pair without disturbing the pinned decision parity.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/timer_service.hpp"
#include "common/types.hpp"
#include "protocol/message.hpp"
#include "runtime/endpoint_core.hpp"
#include "runtime/endpoint_driver.hpp"
#include "sim/metrics.hpp"

namespace bacp::runtime {

/// The duplex knobs layered on top of a (per-direction) EngineConfig.
struct DuplexSpec {
    /// Messages the *peer* will send us (our receiving half's count).
    /// The EngineConfig's own count stays "messages we originate".
    Seq rx_count = 0;
    /// Defer acks so reverse DATA can carry them (DATA+ACK frames).
    bool piggyback = false;
    /// Upper bound on ack deferral: a flush timer emits everything still
    /// pending as standalone acks this long after the first deferral.
    SimTime piggyback_delay = 2 * kMillisecond;
};

/// What a duplex environment must supply: everything DriverEnvironment
/// does, plus the combined DATA+ACK egress.  send_data_ack only ever
/// receives a contiguous (lo <= hi) wire range -- the driver splits
/// wrapped bounded-BA blocks at the domain edge before piggybacking.
// clang-format off
template <typename E>
concept DuplexDriverEnvironment =
    requires(E env, const proto::Data& data, const proto::Ack& ack,
             const proto::Nak& nak, Seq seq, bool retx, AckKind kind) {
        { E::kHasOracle } -> std::convertible_to<bool>;
        { env.timer_service() } -> std::convertible_to<TimerService&>;
        { env.now() } -> std::convertible_to<SimTime>;
        env.send_data(data, seq, retx);
        env.send_data_ack(data, seq, retx, ack, kind);
        env.send_ack(ack, kind);
        env.send_nak(nak);
        env.on_delivery(seq);
        env.after_step();
    };
// clang-format on

template <EndpointCore Core, typename Env>
class DuplexDriver {
    struct TxHalf;
    struct RxHalf;

public:
    using Options = typename Core::Options;
    using TxDriver = EndpointDriver<Core, TxHalf>;
    using RxDriver = EndpointDriver<Core, RxHalf>;

    /// \p cfg.count is the message count this endpoint originates;
    /// \p spec.rx_count the count it expects to sink.  Either may be
    /// zero, giving the classic one-way configurations.
    DuplexDriver(const EngineConfig& cfg, DuplexSpec spec, Options options, Env& env)
        : env_(env),
          piggyback_(spec.piggyback),
          piggyback_delay_(spec.piggyback_delay),
          rx_count_(spec.rx_count),
          flush_timer_(env.timer_service(), [this] { flush_deferred(); }),
          driver_tx_(with_piggyback_timeout(cfg, spec), options, tx_env_),
          driver_rx_(rx_config(cfg, spec), options, rx_env_) {
        static_assert(DuplexDriverEnvironment<Env>);
        if (piggyback_) pending_.reserve(2 * static_cast<std::size_t>(cfg.w) + 8);
    }

    DuplexDriver(const DuplexDriver&) = delete;
    DuplexDriver& operator=(const DuplexDriver&) = delete;

    /// Kick the sending half (no-op protocol-wise when count == 0, but
    /// callers gate on count anyway to keep start symmetric with the
    /// one-way drivers).
    void start() { driver_tx_.start(); }

    /// Forwards an application-gated release (EngineConfig::app_arrivals)
    /// to the sending half.
    void release(Seq n) { driver_tx_.release(n); }

    // ---- ingress -----------------------------------------------------

    void handle_ack(const proto::Ack& ack) { driver_tx_.handle_ack(ack); }
    void handle_nak(const proto::Nak& nak) { driver_tx_.handle_nak(nak); }
    void handle_data(const proto::Data& msg) { driver_rx_.handle_data(msg); }

    /// A piggybacked frame: the ack half feeds our sending driver first
    /// (freeing window before the data half may trigger an ack of our
    /// own), then the data half feeds the receiving driver.
    void handle_data_ack(const proto::Data& msg, const proto::Ack& ack) {
        driver_tx_.handle_ack(ack);
        driver_rx_.handle_data(msg);
    }

    /// DES idle hook for the oracle timeout modes; fires whichever half
    /// has outstanding work (the receiving half's sender core never
    /// does, so in practice this is the tx half plus a cheap no-op).
    bool oracle_fire()
        requires(Env::kHasOracle)
    {
        const bool tx_fired = driver_tx_.oracle_fire();
        const bool rx_fired = driver_rx_.oracle_fire();
        return tx_fired || rx_fired;
    }

    // ---- observers ---------------------------------------------------

    bool tx_done() const { return driver_tx_.all_sent_and_acked(); }
    bool rx_done() const { return driver_rx_.delivered() >= rx_count_; }
    bool done() const { return tx_done() && rx_done(); }

    Seq delivered() const { return driver_rx_.delivered(); }
    Seq sent_new() const { return driver_tx_.sent_new(); }
    SimTime timeout_value() const { return driver_tx_.timeout_value(); }

    /// Acks that rode a reverse DATA frame vs. egressed standalone.
    std::uint64_t piggybacked() const { return piggybacked_; }
    std::uint64_t standalone_acks() const { return standalone_acks_; }

    const sim::Metrics& tx_metrics() const { return driver_tx_.metrics(); }
    const sim::Metrics& rx_metrics() const { return driver_rx_.metrics(); }
    sim::Metrics& tx_metrics_mut() { return driver_tx_.metrics_mut(); }
    sim::Metrics& rx_metrics_mut() { return driver_rx_.metrics_mut(); }

    const Core& tx_core() const { return driver_tx_.core(); }
    const Core& rx_core() const { return driver_rx_.core(); }

    TxDriver& tx_driver() { return driver_tx_; }
    RxDriver& rx_driver() { return driver_rx_; }

    /// Both halves share one log; the inner drivers stamp 'S' / 'R'
    /// endpoint chars so the streams stay separable.
    void set_decision_log(DecisionLog* log) {
        driver_tx_.set_decision_log(log);
        driver_rx_.set_decision_log(log);
    }

    /// Emits every still-deferred ack standalone, immediately.  The
    /// flush timer calls this when the reverse path stays quiet for a
    /// full piggyback_delay; environments may also call it directly to
    /// drain the queue at a shutdown or teardown boundary.
    void flush_deferred() {
        if (head_ >= pending_.size()) return;
        for (std::size_t i = head_; i < pending_.size(); ++i) {
            ++standalone_acks_;
            env_.send_ack(pending_[i].ack, pending_[i].kind);
        }
        pending_.clear();
        head_ = 0;
        flush_timer_.cancel();
    }

private:
    // The inner environment shims.  Each half sees a plain
    // DriverEnvironment; the duplex policy lives entirely in the
    // egress_* handlers they forward into.
    struct TxHalf {
        static constexpr bool kHasOracle = Env::kHasOracle;
        DuplexDriver* self;

        TimerService& timer_service() { return self->env_.timer_service(); }
        SimTime now() const { return self->env_.now(); }
        void send_data(const proto::Data& msg, Seq true_seq, bool retx) {
            self->egress_data(msg, true_seq, retx);
        }
        void send_ack(const proto::Ack&, AckKind) {
            BACP_ASSERT_MSG(false, "sending half produced an ack");
        }
        void send_nak(const proto::Nak&) {
            BACP_ASSERT_MSG(false, "sending half produced a nak");
        }
        void on_delivery(Seq) { BACP_ASSERT_MSG(false, "sending half delivered data"); }
        void after_step() { self->env_.after_step(); }
    };

    struct RxHalf {
        static constexpr bool kHasOracle = Env::kHasOracle;
        DuplexDriver* self;

        TimerService& timer_service() { return self->env_.timer_service(); }
        SimTime now() const { return self->env_.now(); }
        void send_data(const proto::Data&, Seq, bool) {
            BACP_ASSERT_MSG(false, "receiving half transmitted data");
        }
        void send_ack(const proto::Ack& ack, AckKind kind) { self->egress_ack(ack, kind); }
        void send_nak(const proto::Nak& nak) { self->env_.send_nak(nak); }
        void on_delivery(Seq true_seq) { self->env_.on_delivery(true_seq); }
        void after_step() { self->env_.after_step(); }
    };

    /// Deferral widens the window between an ack's protocol decision and
    /// its egress, so the peer's conservative timeout must widen too.
    /// Folded into *our* derived timeout symmetrically: both endpoints
    /// of a session run the same DuplexSpec, so each side's bound covers
    /// the other's deferral.
    static EngineConfig with_piggyback_timeout(EngineConfig cfg, const DuplexSpec& spec) {
        if (spec.piggyback && cfg.timeout == 0)
            cfg.timeout = derived_timeout(cfg.data_link, cfg.ack_link, cfg.ack_policy) +
                          spec.piggyback_delay;
        return cfg;
    }

    static EngineConfig rx_config(EngineConfig cfg, const DuplexSpec& spec) {
        cfg = with_piggyback_timeout(cfg, spec);
        cfg.count = spec.rx_count;
        return cfg;
    }

    // ---- egress policy ----------------------------------------------

    /// Outbound DATA from the sending half: attach the oldest pending
    /// ack block if one is queued.  Wrapped bounded-BA blocks (hi < lo)
    /// ride as the upper slice (lo, domain-1); the lower slice (0, hi)
    /// stays at the head of the queue for the next frame.
    void egress_data(const proto::Data& msg, Seq true_seq, bool retx) {
        if (head_ < pending_.size()) {
            PendingAck ride = pending_[head_];
            if constexpr (kCoreAckWireWrapped<Core>) {
                if (ride.ack.lo > ride.ack.hi) {
                    pending_[head_].ack.lo = 0;
                    ride.ack.hi = driver_rx_.core().ack_wire_domain() - 1;
                    ++piggybacked_;
                    env_.send_data_ack(msg, true_seq, retx, ride.ack, ride.kind);
                    return;
                }
            }
            pop_pending();
            ++piggybacked_;
            env_.send_data_ack(msg, true_seq, retx, ride.ack, ride.kind);
            return;
        }
        env_.send_data(msg, true_seq, retx);
    }

    /// Outbound ack from the receiving half: defer when piggybacking,
    /// pass straight through otherwise (the transparent one-way path).
    /// Once the sending half has retired its whole count no DATA will
    /// ever egress again, so deferral would be pure added latency --
    /// tail acks go standalone immediately.
    void egress_ack(const proto::Ack& ack, AckKind kind) {
        if (!piggyback_ || driver_tx_.all_sent_and_acked()) {
            flush_deferred();  // keep older deferred blocks ahead of this one
            ++standalone_acks_;
            env_.send_ack(ack, kind);
            return;
        }
        pending_.push_back(PendingAck{ack, kind});
        if (!flush_timer_.armed()) flush_timer_.restart(piggyback_delay_);
    }

    void pop_pending() {
        if (++head_ == pending_.size()) {
            pending_.clear();
            head_ = 0;
            flush_timer_.cancel();
        }
    }

    struct PendingAck {
        proto::Ack ack;
        AckKind kind;
    };

    Env& env_;
    bool piggyback_;
    SimTime piggyback_delay_;
    Seq rx_count_;

    // FIFO of deferred acks; head_ indexes the oldest not yet egressed
    // so pops are O(1) without shifting (cleared when drained).
    std::vector<PendingAck> pending_;
    std::size_t head_ = 0;
    std::uint64_t piggybacked_ = 0;
    std::uint64_t standalone_acks_ = 0;

    TxHalf tx_env_{this};
    RxHalf rx_env_{this};
    OneShotTimer flush_timer_;
    TxDriver driver_tx_;
    RxDriver driver_rx_;
};

}  // namespace bacp::runtime
