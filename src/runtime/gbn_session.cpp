#include "runtime/gbn_session.hpp"

#include "common/assert.hpp"

namespace bacp::runtime {

namespace {
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
    std::uint64_t s = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
    return splitmix64(s);
}
}  // namespace

GbnSession::GbnSession(GbnConfig config)
    : cfg_(std::move(config)),
      rng_data_(mix_seed(cfg_.seed, 0xd1)),
      rng_ack_(mix_seed(cfg_.seed, 0xac)),
      sender_(cfg_.w, cfg_.domain),
      receiver_(cfg_.domain),
      data_ch_(sim_, rng_data_, cfg_.data_link.make_config(), "C_SR"),
      ack_ch_(sim_, rng_ack_, cfg_.ack_link.make_config(), "C_RS"),
      retx_timer_(sim_, [this] { on_timeout(); }) {
    timeout_ = cfg_.timeout > 0
                   ? cfg_.timeout
                   : cfg_.data_link.max_lifetime() + cfg_.ack_link.max_lifetime() + kMillisecond;
    data_ch_.set_receiver(
        [this](const proto::Message& m) { on_data_arrival(std::get<proto::Data>(m)); });
    ack_ch_.set_receiver(
        [this](const proto::Message& m) { on_ack_arrival(std::get<proto::Ack>(m)); });
}

sim::Metrics GbnSession::run() {
    metrics_.start_time = sim_.now();
    pump_send();
    sim_.run_until(cfg_.deadline, cfg_.max_events);
    if (metrics_.end_time == 0) metrics_.end_time = sim_.now();
    metrics_.sr_dropped = data_ch_.stats().dropped;
    metrics_.rs_dropped = ack_ch_.stats().dropped;
    return metrics_;
}

bool GbnSession::completed() const {
    return sent_new_ == cfg_.count && delivered_ == cfg_.count && !sender_.has_outstanding();
}

void GbnSession::pump_send() {
    while (sent_new_ < cfg_.count && sender_.can_send_new()) {
        const Seq true_seq = sent_new_++;
        first_send_.emplace(true_seq, sim_.now());
        transmit(sender_.send_new(), true_seq, /*retx=*/false);
    }
}

void GbnSession::transmit(const proto::Data& msg, Seq, bool retx) {
    if (retx) {
        ++metrics_.data_retx;
    } else {
        ++metrics_.data_new;
    }
    data_ch_.send(msg);
    retx_timer_.restart(timeout_);
}

void GbnSession::on_ack_arrival(const proto::Ack& ack) {
    ++metrics_.acks_received;
    sender_.on_ack(ack);
    if (!sender_.has_outstanding()) {
        retx_timer_.cancel();
    }
    pump_send();
}

void GbnSession::on_data_arrival(const proto::Data& msg) {
    ++metrics_.data_received;
    const Seq before = receiver_.nr();
    receiver_.on_data(msg);
    if (receiver_.nr() > before) {
        const Seq true_seq = receiver_.nr() - 1;
        ++delivered_;
        ++metrics_.delivered;
        const auto sent = first_send_.find(true_seq);
        if (sent != first_send_.end()) {
            metrics_.latency.add(sim_.now() - sent->second);
            first_send_.erase(sent);
        }
        if (delivered_ == cfg_.count) metrics_.end_time = sim_.now();
    } else {
        ++metrics_.duplicates;
    }
    if (receiver_.can_ack()) {
        ++metrics_.acks_sent;
        ack_ch_.send(receiver_.make_ack());
    }
}

void GbnSession::on_timeout() {
    if (!sender_.has_outstanding()) return;
    // Go back N: retransmit the entire outstanding window.
    const Seq base = sender_.na();
    Seq offset = 0;
    for (const auto& copy : sender_.retransmit_window()) {
        transmit(copy, base + offset, /*retx=*/true);
        ++offset;
    }
}

}  // namespace bacp::runtime
