#include "runtime/sr_session.hpp"

namespace bacp::runtime {

namespace {
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
    std::uint64_t s = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
    return splitmix64(s);
}
}  // namespace

SrSession::SrSession(SrConfig config)
    : cfg_(std::move(config)),
      rng_data_(mix_seed(cfg_.seed, 0xd1)),
      rng_ack_(mix_seed(cfg_.seed, 0xac)),
      sender_(cfg_.w),
      receiver_(cfg_.w),
      data_ch_(sim_, rng_data_, cfg_.data_link.make_config(), "C_SR"),
      ack_ch_(sim_, rng_ack_, cfg_.ack_link.make_config(), "C_RS") {
    timeout_ = cfg_.timeout > 0
                   ? cfg_.timeout
                   : cfg_.data_link.max_lifetime() + cfg_.ack_link.max_lifetime() + kMillisecond;
    data_ch_.set_receiver(
        [this](const proto::Message& m) { on_data_arrival(std::get<proto::Data>(m)); });
    ack_ch_.set_receiver(
        [this](const proto::Message& m) { on_ack_arrival(std::get<proto::Ack>(m)); });
}

sim::Metrics SrSession::run() {
    metrics_.start_time = sim_.now();
    pump_send();
    sim_.run_until(cfg_.deadline, cfg_.max_events);
    if (metrics_.end_time == 0) metrics_.end_time = sim_.now();
    metrics_.sr_dropped = data_ch_.stats().dropped;
    metrics_.rs_dropped = ack_ch_.stats().dropped;
    return metrics_;
}

bool SrSession::completed() const {
    return sent_new_ == cfg_.count && delivered_ == cfg_.count && sender_.outstanding() == 0;
}

void SrSession::pump_send() {
    while (sent_new_ < cfg_.count && sender_.can_send_new()) {
        const proto::Data msg = sender_.send_new();
        first_send_.emplace(sent_new_, sim_.now());
        ++sent_new_;
        transmit(msg, /*retx=*/false);
    }
}

void SrSession::transmit(const proto::Data& msg, bool retx) {
    if (retx) {
        ++metrics_.data_retx;
    } else {
        ++metrics_.data_new;
    }
    last_tx_[msg.seq] = sim_.now();
    data_ch_.send(msg);
    const Seq seq = msg.seq;
    sim_.schedule_after(timeout_, [this, seq] { per_message_fire(seq); });
}

void SrSession::on_ack_arrival(const proto::Ack& ack) {
    ++metrics_.acks_received;
    sender_.on_ack(ack);
    pump_send();
}

void SrSession::on_data_arrival(const proto::Data& msg) {
    ++metrics_.data_received;
    const bool was_new = msg.seq >= receiver_.nr() && !receiver_.rcvd(msg.seq);
    const proto::Ack ack = receiver_.on_data(msg);
    if (!was_new) ++metrics_.duplicates;
    // Selective repeat: one distinct acknowledgment per data message.
    ++metrics_.acks_sent;
    ack_ch_.send(ack);
    while (receiver_.can_deliver()) {
        receiver_.deliver();
        const Seq true_seq = receiver_.nr() - 1;
        ++delivered_;
        ++metrics_.delivered;
        const auto sent = first_send_.find(true_seq);
        if (sent != first_send_.end()) {
            metrics_.latency.add(sim_.now() - sent->second);
            first_send_.erase(sent);
        }
        if (delivered_ == cfg_.count) metrics_.end_time = sim_.now();
    }
}

void SrSession::per_message_fire(Seq seq) {
    if (!sender_.can_resend(seq)) return;  // acknowledged meanwhile
    const auto it = last_tx_.find(seq);
    if (it == last_tx_.end()) return;
    if (sim_.now() - it->second < timeout_) return;  // a newer copy owns the timer
    transmit(sender_.resend(seq), /*retx=*/true);
}

}  // namespace bacp::runtime
