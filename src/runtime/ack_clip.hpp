#pragma once

/// \file ack_clip.hpp
/// SACK-style acknowledgment clipping.
///
/// Realistic per-message timers (SIV) cannot evaluate the receiver-state
/// conjunct of timeout(i), so a sender may retransmit a message the
/// receiver already buffered; the duplicate acknowledgments that follow
/// can overlap ranges the sender has processed.  clip_ack() intersects an
/// incoming block with the sender's still-unacknowledged runs so the
/// strict protocol core only ever sees fresh coverage -- the exact
/// discipline of a TCP SACK scoreboard.
///
/// Under the oracle timeout modes and the SII single timer the paper's
/// assertion 8 holds and clipping is the identity.

#include <algorithm>
#include <vector>

#include "common/types.hpp"
#include "protocol/message.hpp"
#include "protocol/seqnum.hpp"

namespace bacp::runtime {

/// Bounded (residue) senders: core must expose domain(), na_mod(),
/// outstanding(), can_resend().  Appends the clipped runs to \p runs --
/// the runtimes clip on every ack arrival and reuse one scratch vector
/// per session; the returning overloads below are for tests and
/// one-shot callers.
template <typename BoundedCore>
void clip_ack_bounded_into(const BoundedCore& sender, const proto::Ack& ack,
                           std::vector<proto::Ack>& runs) {
    const Seq n = sender.domain();
    if (ack.lo >= n || ack.hi >= n) return;  // malformed residues
    const Seq len = proto::mod_offset(ack.lo, ack.hi, n);
    bool in_run = false;
    Seq run_lo = 0, run_hi = 0;
    const Seq out = sender.outstanding();
    for (Seq k = 0; k < out; ++k) {
        const Seq field = proto::mod_add(sender.na_mod(), k, n);
        const bool covered =
            proto::mod_offset(ack.lo, field, n) <= len && sender.can_resend(field);
        if (covered && !in_run) {
            in_run = true;
            run_lo = field;
        }
        if (covered) run_hi = field;
        if (!covered && in_run) {
            in_run = false;
            runs.push_back(proto::Ack{run_lo, run_hi});
        }
    }
    if (in_run) runs.push_back(proto::Ack{run_lo, run_hi});
}

/// Unbounded senders: core must expose na(), ns(), can_resend().
template <typename Core>
void clip_ack_unbounded_into(const Core& sender, const proto::Ack& ack,
                             std::vector<proto::Ack>& runs) {
    if (ack.lo > ack.hi) return;
    const Seq lo = std::max(ack.lo, sender.na());
    bool in_run = false;
    Seq run_lo = 0, run_hi = 0;
    for (Seq m = lo; m <= ack.hi && m < sender.ns(); ++m) {
        const bool covered = sender.can_resend(m);
        if (covered && !in_run) {
            in_run = true;
            run_lo = m;
        }
        if (covered) run_hi = m;
        if (!covered && in_run) {
            in_run = false;
            runs.push_back(proto::Ack{run_lo, run_hi});
        }
    }
    if (in_run) runs.push_back(proto::Ack{run_lo, run_hi});
}

template <typename BoundedCore>
std::vector<proto::Ack> clip_ack_bounded(const BoundedCore& sender, const proto::Ack& ack) {
    std::vector<proto::Ack> runs;
    clip_ack_bounded_into(sender, ack, runs);
    return runs;
}

template <typename Core>
std::vector<proto::Ack> clip_ack_unbounded(const Core& sender, const proto::Ack& ack) {
    std::vector<proto::Ack> runs;
    clip_ack_unbounded_into(sender, ack, runs);
    return runs;
}

}  // namespace bacp::runtime
