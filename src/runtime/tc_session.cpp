#include "runtime/tc_session.hpp"

#include "common/assert.hpp"

namespace bacp::runtime {

namespace {
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
    std::uint64_t s = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
    return splitmix64(s);
}

// The time-constrained protocol's reuse interval protects *data* residue
// reuse, but its cumulative-ack numbering still aliases when duplicate
// re-acks are reordered across a domain wrap.  The historical protocols
// carry additional machinery we do not reproduce; we run the baseline in
// its classically safe regime (FIFO channels, domain > w), which leaves
// E7's measured quantity -- the N / reuse_interval send-rate cap -- fully
// intact, since the spacing stall is channel-order independent.
LinkSpec force_fifo(LinkSpec spec) {
    spec.fifo = true;
    return spec;
}
}  // namespace

TcSession::TcSession(TcConfig config)
    : cfg_(std::move(config)),
      rng_data_(mix_seed(cfg_.seed, 0xd1)),
      rng_ack_(mix_seed(cfg_.seed, 0xac)),
      sender_(cfg_.w, cfg_.domain,
              cfg_.reuse_interval > 0 ? cfg_.reuse_interval
                                      : cfg_.data_link.max_lifetime() +
                                            cfg_.ack_link.max_lifetime() + kMillisecond),
      receiver_(cfg_.domain),
      data_ch_(sim_, rng_data_, force_fifo(cfg_.data_link).make_config(), "C_SR"),
      ack_ch_(sim_, rng_ack_, force_fifo(cfg_.ack_link).make_config(), "C_RS"),
      retx_timer_(sim_, [this] { on_timeout(); }),
      reuse_timer_(sim_, [this] { pump_send(); }) {
    timeout_ = cfg_.timeout > 0
                   ? cfg_.timeout
                   : cfg_.data_link.max_lifetime() + cfg_.ack_link.max_lifetime() + kMillisecond;
    data_ch_.set_receiver(
        [this](const proto::Message& m) { on_data_arrival(std::get<proto::Data>(m)); });
    ack_ch_.set_receiver(
        [this](const proto::Message& m) { on_ack_arrival(std::get<proto::Ack>(m)); });
}

sim::Metrics TcSession::run() {
    metrics_.start_time = sim_.now();
    pump_send();
    sim_.run_until(cfg_.deadline, cfg_.max_events);
    if (metrics_.end_time == 0) metrics_.end_time = sim_.now();
    metrics_.sr_dropped = data_ch_.stats().dropped;
    metrics_.rs_dropped = ack_ch_.stats().dropped;
    return metrics_;
}

bool TcSession::completed() const {
    return sent_new_ == cfg_.count && delivered_ == cfg_.count && !sender_.has_outstanding();
}

void TcSession::pump_send() {
    while (sent_new_ < cfg_.count && sender_.window_open()) {
        if (!sender_.residue_free(sim_.now())) {
            // Residue still quarantined: wake up exactly when it clears.
            const SimTime ready = sender_.residue_ready_at();
            BACP_ASSERT(ready > sim_.now());
            if (!reuse_timer_.armed()) reuse_timer_.restart(ready - sim_.now());
            return;
        }
        first_send_.emplace(sent_new_, sim_.now());
        ++sent_new_;
        transmit(sender_.send_new(sim_.now()), /*retx=*/false);
    }
}

void TcSession::transmit(const proto::Data& msg, bool retx) {
    if (retx) {
        ++metrics_.data_retx;
    } else {
        ++metrics_.data_new;
    }
    data_ch_.send(msg);
    retx_timer_.restart(timeout_);
}

void TcSession::on_ack_arrival(const proto::Ack& ack) {
    ++metrics_.acks_received;
    sender_.on_ack(ack);
    if (!sender_.has_outstanding()) retx_timer_.cancel();
    pump_send();
}

void TcSession::on_data_arrival(const proto::Data& msg) {
    ++metrics_.data_received;
    const Seq before = receiver_.nr();
    receiver_.on_data(msg);
    if (receiver_.nr() > before) {
        const Seq true_seq = receiver_.nr() - 1;
        ++delivered_;
        ++metrics_.delivered;
        const auto sent = first_send_.find(true_seq);
        if (sent != first_send_.end()) {
            metrics_.latency.add(sim_.now() - sent->second);
            first_send_.erase(sent);
        }
        if (delivered_ == cfg_.count) metrics_.end_time = sim_.now();
    } else {
        ++metrics_.duplicates;
    }
    if (receiver_.can_ack()) {
        ++metrics_.acks_sent;
        ack_ch_.send(receiver_.make_ack());
    }
}

void TcSession::on_timeout() {
    if (!sender_.has_outstanding()) return;
    const Seq base = sender_.na();
    Seq offset = 0;
    for (const auto& copy : sender_.retransmit_window()) {
        sender_.note_resend(base + offset, sim_.now());
        transmit(copy, /*retx=*/true);
        ++offset;
    }
}

}  // namespace bacp::runtime
