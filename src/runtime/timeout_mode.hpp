#pragma once

/// \file timeout_mode.hpp
/// The four retransmission-timer disciplines of the paper, available to
/// every protocol core the Engine drives (see engine.hpp):
///
///   OracleSimple      SII action 2 with its oracle guard: fires exactly
///                     when the whole system is quiescent (empty event
///                     queue == empty channels + receiver can't proceed).
///   OraclePerMessage  SIV action 2' with its oracle guard; at quiescence
///                     every unacknowledged message is eligible at once.
///   SimpleTimer       SII realistic: one timer, restarted on every data
///                     transmission ("elapsed time since it last sent a
///                     data message"); on expiry resend the core's
///                     simple-timeout set (na for BA, the whole window
///                     for go-back-N).
///   PerMessageTimer   SIV realistic: an expiry check per transmission;
///                     a message is resent only if it is still unacked
///                     and its last copy was sent a full timeout ago.

namespace bacp::runtime {

enum class TimeoutMode { OracleSimple, OraclePerMessage, SimpleTimer, PerMessageTimer };

const char* to_string(TimeoutMode mode);

}  // namespace bacp::runtime
