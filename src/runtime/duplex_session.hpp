#pragma once

/// \file duplex_session.hpp
/// Full-duplex block-acknowledgment session with ack piggybacking.
///
/// The paper's protocol is unidirectional (S -> R data, R -> S acks).
/// The classic generalization runs one protocol instance per direction
/// over the same channel pair and lets each endpoint *piggyback* its
/// pending block acknowledgment on outgoing data (DATA+ACK frames),
/// spending a standalone ACK frame only when no reverse data appears
/// within a small piggyback delay.
///
/// With block acknowledgments the piggyback is particularly effective:
/// one ridden (m, n) pair can acknowledge a whole window, so under
/// symmetric bulk traffic the ack-frame count approaches zero.
///
/// Both directions use the SIV per-message timers with the hole-gated
/// resend discipline, SACK-style ack clipping, and the send-horizon rule
/// (see ba_session.hpp); the piggyback delay is folded into the
/// conservative timeout derivation.

#include <cstdint>
#include <string>
#include <unordered_map>

#include "ba/receiver.hpp"
#include "ba/sender.hpp"
#include "common/rng.hpp"
#include "runtime/horizon.hpp"
#include "runtime/link_spec.hpp"
#include "sim/metrics.hpp"
#include "sim/sim_channel.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace bacp::runtime {

struct DuplexConfig {
    Seq w = 8;
    Seq count_a_to_b = 1000;
    Seq count_b_to_a = 1000;
    SimTime timeout = 0;           // 0 = conservative derivation
    bool piggyback = true;         // ablation switch
    SimTime piggyback_delay = 2 * kMillisecond;  // max ack holding time
    LinkSpec ab_link = LinkSpec::lossless();
    LinkSpec ba_link = LinkSpec::lossless();
    std::uint64_t seed = 1;
    SimTime deadline = 3600 * kSecond;
    std::size_t max_events = 50'000'000;
};

class DuplexSession {
public:
    explicit DuplexSession(DuplexConfig config);
    DuplexSession(const DuplexSession&) = delete;
    DuplexSession& operator=(const DuplexSession&) = delete;

    struct Result {
        sim::Metrics a_to_b;  // traffic sent by A (delivered at B)
        sim::Metrics b_to_a;
        std::uint64_t frames_ab = 0;       // messages placed on each channel
        std::uint64_t frames_ba = 0;
        std::uint64_t piggybacked = 0;     // acks that rode on data
        std::uint64_t standalone_acks = 0; // acks that cost their own frame
    };

    Result run();
    bool completed() const;

private:
    struct Endpoint {
        Endpoint(sim::Simulator& sim, Seq w, Seq count, sim::Timer::Callback ack_cb,
                 sim::Timer::Callback horizon_cb)
            : sender(w),
              receiver(w),
              to_send(count),
              ack_timer(sim, std::move(ack_cb)),
              horizon_timer(sim, std::move(horizon_cb)) {}

        ba::Sender sender;
        ba::Receiver receiver;
        Seq to_send;       // messages this endpoint must originate
        Seq sent_new = 0;
        Seq delivered_from_peer = 0;
        sim::Metrics metrics;  // for the direction this endpoint SENDS
        std::unordered_map<Seq, SimTime> first_send;
        std::unordered_map<Seq, SimTime> last_tx;
        sim::Timer ack_timer;      // flushes a held (piggybackable) ack
        sim::Timer horizon_timer;  // re-pumps when the send horizon expires
        SendHorizon horizon;       // send-horizon rule (see horizon.hpp)
    };

    Endpoint& endpoint(int id) { return id == 0 ? a_ : b_; }
    Endpoint& peer_of(int id) { return id == 0 ? b_ : a_; }
    sim::SimChannel& out_channel(int id) { return id == 0 ? ab_ : ba_; }

    void pump(int id);
    void transmit(int id, const proto::Data& msg, Seq true_seq, bool retx);
    void per_message_fire(int id, Seq true_seq);
    void rescan_matured(int id);
    bool resend_gate(const Endpoint& self, Seq true_seq) const;
    void handle_ack(int id, const proto::Ack& ack);
    void handle_data(int id, const proto::Data& msg);
    void flush_ack(int id);  // standalone flush (piggyback window expired)
    void on_message(int id, const proto::Message& msg);
    void note_horizon(int id, Seq true_seq);
    bool horizon_blocks(int id);

    DuplexConfig cfg_;
    sim::Simulator sim_;
    Rng rng_ab_;
    Rng rng_ba_;
    sim::SimChannel ab_;
    sim::SimChannel ba_;
    Endpoint a_;
    Endpoint b_;
    SimTime timeout_ = 0;
    std::uint64_t piggybacked_ = 0;
    std::uint64_t standalone_acks_ = 0;
};

}  // namespace bacp::runtime
