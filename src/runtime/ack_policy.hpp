#pragma once

/// \file ack_policy.hpp
/// When should the receiver fire action 5?
///
/// The core exposes only the guard nr < vr; the paper leaves the firing
/// moment nondeterministic, and that freedom is where block acknowledgment
/// earns its keep: waiting while more data arrives yields bigger blocks
/// and fewer acks.  The policy is a (threshold, flush-delay) pair:
///
///   eager()        ack as soon as anything is pending  (threshold 1)
///   batch(k, d)    ack when k messages are pending, or d after the first
///                  pending message, whichever comes first
///   delayed(d)     ack d after the first pending message
///
/// max_ack_delay() feeds the sender's conservative timeout derivation.

#include <limits>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace bacp::runtime {

struct AckPolicy {
    Seq threshold = 1;       // flush when pending >= threshold
    SimTime flush_delay = 0; // flush this long after the first pending msg

    static AckPolicy eager() { return AckPolicy{1, 0}; }

    static AckPolicy batch(Seq k, SimTime d) {
        BACP_ASSERT_MSG(k >= 1, "batch threshold must be >= 1");
        BACP_ASSERT_MSG(d >= 0, "flush delay must be >= 0");
        return AckPolicy{k, d};
    }

    static AckPolicy delayed(SimTime d) {
        BACP_ASSERT_MSG(d >= 0, "flush delay must be >= 0");
        return AckPolicy{std::numeric_limits<Seq>::max(), d};
    }

    /// Longest time an accepted message can wait before its ack is sent.
    SimTime max_ack_delay() const { return threshold <= 1 ? 0 : flush_delay; }
};

}  // namespace bacp::runtime
