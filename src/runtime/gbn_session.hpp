#pragma once

/// \file gbn_session.hpp
/// Go-back-N session: the runtime::Engine driving baselines::GbnCore.
/// Classic discipline (the default SimpleTimer mode): cumulative acks
/// after every accepted message, one timer restarted on every
/// transmission, whole-window retransmission on expiry.
///
/// Performance runs use the unbounded-sequence-number mode
/// (Options::domain = 0), which is correct under loss and reorder; the
/// bounded mode exists for the model checker's E1 reproduction and is
/// NOT safe over reordering channels -- see verify/gbn_system.hpp.

#include "baselines/engine_cores.hpp"
#include "runtime/engine.hpp"

namespace bacp::runtime {

using GbnSession = Engine<baselines::GbnCore>;

}  // namespace bacp::runtime
