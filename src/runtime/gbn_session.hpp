#pragma once

/// \file gbn_session.hpp
/// Discrete-event runtime for the go-back-N baseline.
///
/// Classic behavior: the receiver accepts in order only and acknowledges
/// cumulatively after every accepted message (plus duplicate re-acks); the
/// sender keeps one timer, restarted on every transmission, and on expiry
/// retransmits the entire outstanding window.
///
/// Performance runs use the unbounded-sequence-number mode (domain = 0),
/// which is correct under loss and reorder; the bounded mode exists for
/// the model checker's E1 reproduction and is NOT safe over reordering
/// channels -- see verify/gbn_system.hpp.

#include <cstdint>
#include <unordered_map>

#include "baselines/gobackn.hpp"
#include "common/rng.hpp"
#include "runtime/link_spec.hpp"
#include "sim/metrics.hpp"
#include "sim/sim_channel.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace bacp::runtime {

struct GbnConfig {
    Seq w = 8;
    Seq count = 1000;
    Seq domain = 0;       // 0 = unbounded (safe); >w only for demonstrations
    SimTime timeout = 0;  // 0 = derive from link lifetimes
    LinkSpec data_link = LinkSpec::lossless();
    LinkSpec ack_link = LinkSpec::lossless();
    std::uint64_t seed = 1;
    SimTime deadline = 3600 * kSecond;
    std::size_t max_events = 50'000'000;
};

class GbnSession {
public:
    explicit GbnSession(GbnConfig config);
    GbnSession(const GbnSession&) = delete;
    GbnSession& operator=(const GbnSession&) = delete;

    sim::Metrics run();
    bool completed() const;
    Seq delivered() const { return delivered_; }
    const baselines::GbnSender& sender_core() const { return sender_; }
    const baselines::GbnReceiver& receiver_core() const { return receiver_; }

private:
    void pump_send();
    void transmit(const proto::Data& msg, Seq true_seq, bool retx);
    void on_ack_arrival(const proto::Ack& ack);
    void on_data_arrival(const proto::Data& msg);
    void on_timeout();

    GbnConfig cfg_;
    sim::Simulator sim_;
    Rng rng_data_;
    Rng rng_ack_;
    baselines::GbnSender sender_;
    baselines::GbnReceiver receiver_;
    sim::SimChannel data_ch_;
    sim::SimChannel ack_ch_;
    sim::Timer retx_timer_;
    sim::Metrics metrics_;
    SimTime timeout_ = 0;
    Seq sent_new_ = 0;
    Seq delivered_ = 0;
    std::unordered_map<Seq, SimTime> first_send_;
};

}  // namespace bacp::runtime
