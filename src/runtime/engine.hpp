#pragma once

/// \file engine.hpp
/// The discrete-event transport runtime: a DES adapter over
/// runtime::EndpointDriver.
///
/// Engine<Core> supplies the *environment* -- the simulator (virtual
/// time + TimerService), the two SimChannels, trace recording, the
/// invariant-check hook, and the seed/deadline/max_events policy -- and
/// delegates every protocol decision (timeout disciplines, window
/// pumping, ack policy, resend selection) to the embedded
/// EndpointDriver.  The real-time runtime (net::NetEndpoint over
/// DuplexDriver) adapts the same driver over sockets; the driving
/// logic exists exactly once, in endpoint_driver.hpp.
///
/// The DES is the one environment that can *prove* quiescence: when the
/// event queue drains, both channels are empty by construction.  It
/// therefore advertises kHasOracle and fires the oracle timeout modes
/// from a simulator idle hook instead of the driver's quiescence-timer
/// approximation.
///
/// The engine speaks *true* (unbounded) sequence numbers everywhere:
/// send_new is numbered by arrival order, and resend candidates are true
/// sequence numbers.  Cores whose wire format is a residue (mod 2w or
/// mod N) translate internally -- the paper's proof technique of
/// reasoning about ghost values the implementation no longer stores.

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/timer_service.hpp"
#include "common/types.hpp"
#include "protocol/message.hpp"
#include "runtime/endpoint_core.hpp"
#include "runtime/endpoint_driver.hpp"
#include "runtime/link_spec.hpp"
#include "runtime/session_util.hpp"
#include "runtime/timeout_mode.hpp"
#include "sim/metrics.hpp"
#include "sim/sim_channel.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "verify/invariants.hpp"

namespace bacp::runtime {

// EngineConfig, derived_timeout/effective_timeout, and the driver itself
// live in endpoint_driver.hpp (shared verbatim with src/net); TxView,
// RxOutcome, the EndpointCore concept, and the kCore* traits live in
// endpoint_core.hpp.

template <EndpointCore Core>
class Engine {
public:
    using Options = typename Core::Options;

    explicit Engine(EngineConfig config, Options options = {})
        : cfg_(std::move(config)),
          rng_data_(mix_seed(cfg_.seed, 0xd1)),
          rng_ack_(mix_seed(cfg_.seed, 0xac)),
          data_ch_(sim_, rng_data_, channel_config(cfg_.data_link), "C_SR"),
          ack_ch_(sim_, rng_ack_, channel_config(cfg_.ack_link), "C_RS"),
          driver_(cfg_, std::move(options), *this) {
        data_ch_.set_receiver([this](const proto::Message& m) {
            const auto& msg = std::get<proto::Data>(m);
            if (cfg_.record_trace) {
                trace_.record(sim_.now(), "R", "rcv " + proto::to_string(msg));
            }
            driver_.handle_data(msg);
        });
        ack_ch_.set_receiver([this](const proto::Message& m) {
            if (const auto* ack = std::get_if<proto::Ack>(&m)) {
                if (cfg_.record_trace) {
                    trace_.record(sim_.now(), "S", "rcv " + proto::to_string(*ack));
                }
                driver_.handle_ack(*ack);
            } else {
                const auto& nak = std::get<proto::Nak>(m);
                if (cfg_.record_trace) {
                    trace_.record(sim_.now(), "S", "rcv N(" + std::to_string(nak.seq) + ")");
                }
                driver_.handle_nak(nak);
            }
        });
        if (cfg_.record_trace) {
            data_ch_.set_trace(&trace_);
            ack_ch_.set_trace(&trace_);
        }
        if (driver_.mode() == TimeoutMode::OracleSimple ||
            driver_.mode() == TimeoutMode::OraclePerMessage) {
            sim_.add_idle_hook([this] {
                if (!driver_.core().has_outstanding()) return false;
                // The proof the oracle modes rely on: an idle DES has
                // nothing scheduled, so nothing is in flight.
                BACP_ASSERT(data_ch_.in_flight() == 0 && ack_ch_.in_flight() == 0);
                return driver_.oracle_fire();
            });
        }
        // Concurrent events are bounded by the window: at most w data
        // copies + w per-message timers in flight each way, plus the
        // handful of driver-owned timers.  (The driver pre-sizes its own
        // per-seq tables.)
        sim_.reserve_events(8 * cfg_.w + 64);
    }

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /// Runs the transfer to completion (or deadline/event cap) and
    /// returns the measurements.
    sim::Metrics run() {
        driver_.start();
        sim_.run_until(cfg_.deadline, cfg_.max_events);
        sim::Metrics& m = driver_.metrics_mut();
        if (m.end_time == 0) m.end_time = sim_.now();
        m.sr_dropped = data_ch_.stats().dropped;
        m.rs_dropped = ack_ch_.stats().dropped;
        return m;
    }

    /// Opens the faucet without running the simulator: callers advance
    /// virtual time themselves via simulator().run_until().  The chaos
    /// harness (src/chaos) drives runs in slices this way, injecting
    /// faults and probing invariants between slices; run() is the
    /// one-shot equivalent.
    void start() { driver_.start(); }

    /// All messages delivered in order and fully acknowledged.
    bool completed() const { return driver_.completed(); }

    Seq delivered() const { return driver_.delivered(); }
    SimTime timeout_value() const { return driver_.timeout_value(); }
    TimeoutMode timeout_mode() const { return driver_.mode(); }
    const Core& core() const { return driver_.core(); }
    const sim::Metrics& metrics() const { return driver_.metrics(); }
    const sim::TraceRecorder& trace() const { return trace_; }
    sim::Simulator& simulator() { return sim_; }
    const std::vector<std::string>& invariant_violations() const { return violations_; }

    /// The embedded protocol driver -- the chaos corruptors reach its
    /// state/timer fault hooks through here.
    EndpointDriver<Core, Engine>& driver() { return driver_; }

    /// The two simulated channels, for in-flight fault injection
    /// (duplication storms, reorder bursts, payload mutation).
    sim::SimChannel& data_channel() { return data_ch_; }
    sim::SimChannel& ack_channel() { return ack_ch_; }

    /// Non-fatal invariant probe (the chaos convergence checker):
    /// evaluates assertions 6-8 against the current endpoint + channel
    /// state and returns the report instead of asserting.  Requires
    /// set-tracked channels (LinkSpec::track_contents, or
    /// cfg.check_invariants).
    verify::InvariantReport probe_invariants(verify::ChannelStrictness strictness) const
        requires(Core::kInvariantCheckable)
    {
        return verify::check_invariants(driver_.core().sender_core(),
                                        driver_.core().receiver_core(), data_ch_.snapshot(),
                                        ack_ch_.snapshot(), strictness);
    }

    /// Attach (or detach, with nullptr) a protocol-decision recorder --
    /// the cross-runtime parity test compares this stream against the
    /// net runtime's.
    void set_decision_log(DecisionLog* log) { driver_.set_decision_log(log); }

    decltype(auto) sender_core() const
        requires requires(const Core& c) { c.sender_core(); }
    {
        return driver_.core().sender_core();
    }
    decltype(auto) receiver_core() const
        requires requires(const Core& c) { c.receiver_core(); }
    {
        return driver_.core().receiver_core();
    }

    // ---- Environment hooks (called by EndpointDriver) ----------------------
    // Public because the driver is a distinct type, not a friend; these
    // are the DES halves of the DriverEnvironment concept, not user API.

    static constexpr bool kHasOracle = true;

    TimerService& timer_service() { return sim_; }
    SimTime now() const { return sim_.now(); }

    void send_data(const proto::Data& msg, Seq /*true_seq*/, bool retx) {
        if (cfg_.record_trace) {
            trace_.record(sim_.now(), "S",
                          std::string(retx ? "resend " : "send ") + proto::to_string(msg));
        }
        data_ch_.send(msg);
    }

    void send_ack(const proto::Ack& ack, AckKind kind) {
        if (cfg_.record_trace) {
            trace_.record(sim_.now(), "R",
                          std::string(kind == AckKind::Dup ? "dup-ack " : "ack ") +
                              proto::to_string(ack));
        }
        ack_ch_.send(ack);
    }

    void send_nak(const proto::Nak& nak) {
        if (cfg_.record_trace) {
            trace_.record(sim_.now(), "R", "nak N(" + std::to_string(nak.seq) + ")");
        }
        ack_ch_.send(nak);
    }

    void on_delivery(Seq /*true_seq*/) {}  // payload handoff is a net-runtime concern

    void after_step() { maybe_check_invariants(); }

private:
    static constexpr bool kInvariantCheckable = Core::kInvariantCheckable;

    sim::SimChannel::Config channel_config(LinkSpec spec) const {
        spec.fifo |= Core::kRequiresFifo;
        spec.track_contents |= cfg_.check_invariants;
        return spec.make_config();
    }

    void maybe_check_invariants() {
        if constexpr (kInvariantCheckable) {
            if (!cfg_.check_invariants) return;
            // The realistic per-message timer mode legitimately relaxes
            // assertion 8's channel conjuncts (see ba/engine_core.hpp).
            const auto strictness = driver_.mode() == TimeoutMode::PerMessageTimer
                                        ? verify::ChannelStrictness::Relaxed
                                        : verify::ChannelStrictness::Strict;
            const auto report = verify::check_invariants(
                driver_.core().sender_core(), driver_.core().receiver_core(),
                data_ch_.snapshot(), ack_ch_.snapshot(), strictness);
            if (!report.ok()) {
                violations_.insert(violations_.end(), report.violations.begin(),
                                   report.violations.end());
                BACP_ASSERT_MSG(false, "invariant violated during DES run: " + report.to_string());
            }
        }
    }

    EngineConfig cfg_;
    sim::Simulator sim_;
    Rng rng_data_;
    Rng rng_ack_;
    sim::TraceRecorder trace_;
    sim::SimChannel data_ch_;
    sim::SimChannel ack_ch_;
    std::vector<std::string> violations_;
    EndpointDriver<Core, Engine> driver_;  // last: its ctor uses the members above
};

}  // namespace bacp::runtime
