#pragma once

/// \file engine.hpp
/// The unified discrete-event transport runtime.
///
/// Engine<Core> owns everything a session run needs -- the simulator, the
/// two SimChannels, the retransmission-timer machinery (all four
/// TimeoutMode flavors), the seed/deadline/max_events policy, and the
/// metrics/trace hookup -- and drives a fixed-size transfer through a
/// pure protocol core.  The core supplies only protocol decisions (what
/// to send, how to absorb an ack, which messages are resend candidates);
/// the engine supplies time, randomness, channels, and bookkeeping.
///
/// Cores model the EndpointCore concept below.  The block-ack family
/// (ba::EngineCore over Sender/BoundedSender/HoleReuseSender) and all
/// four baselines (baselines::{Abp,Gbn,Sr,Tc}Core) plug in; a scenario
/// can therefore sweep protocols by changing nothing but the core type.
///
/// The engine speaks *true* (unbounded) sequence numbers everywhere:
/// send_new is numbered by arrival order, and resend candidates are true
/// sequence numbers.  Cores whose wire format is a residue (mod 2w or
/// mod N) translate internally -- the paper's proof technique of
/// reasoning about ghost values the implementation no longer stores.
///
/// Timer timeouts default to L_SR + L_RS + max_ack_delay + margin, the
/// conservative bound that preserves assertion 8 ("at most one copy of
/// each data message or its acknowledgment is in transit").

#include <concepts>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "protocol/message.hpp"
#include "runtime/ack_policy.hpp"
#include "runtime/endpoint_core.hpp"
#include "runtime/link_spec.hpp"
#include "runtime/session_util.hpp"
#include "runtime/timeout_mode.hpp"
#include "sim/metrics.hpp"
#include "sim/sim_channel.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sim/trace.hpp"
#include "verify/invariants.hpp"

namespace bacp::runtime {

/// One configuration for every protocol.  Core-specific knobs (residue
/// domain, reuse interval, ...) live in the core's Options struct.
struct EngineConfig {
    Seq w = 8;
    Seq count = 1000;  // messages to transfer
    /// nullopt = the core's classic discipline (PerMessageTimer for the
    /// block-ack family and selective repeat, SimpleTimer for the
    /// single-timer baselines).
    std::optional<TimeoutMode> timeout_mode;
    SimTime timeout = 0;  // 0 = derive conservatively from links + ack policy
    AckPolicy ack_policy = AckPolicy::eager();
    LinkSpec data_link = LinkSpec::lossless();
    LinkSpec ack_link = LinkSpec::lossless();
    std::uint64_t seed = 1;
    SimTime deadline = 3600 * kSecond;
    std::size_t max_events = 50'000'000;
    bool record_trace = false;
    /// Check assertions 6-8 after every protocol step (unbounded BA cores
    /// over set-tracked channels only); violations throw AssertionError.
    bool check_invariants = false;
    /// Fast-retransmit extension (BA cores): the receiver NAKs the
    /// message blocking vr after nak_threshold out-of-order arrivals; the
    /// sender resends it as soon as the previous copy has provably aged
    /// out of the channel.  Advisory: NAK loss or duplication affects
    /// only latency.  See DESIGN.md (extensions).
    bool enable_nak = false;
    Seq nak_threshold = 3;
    /// Variable-window extension (paper SVI): AIMD adaptation of the
    /// effective window limit within [1, w].  Only meaningful when the
    /// data link models a bottleneck queue, and only for cores whose
    /// sender supports set_window_limit.
    bool adaptive_window = false;
    /// Open-loop workload: when > 0, messages become available one per
    /// interval (exponential gaps when poisson_arrivals) instead of all
    /// upfront; `count` still bounds the total.  Latency then measures
    /// arrival-to-delivery sojourn (queueing included).
    SimTime arrival_interval = 0;
    bool poisson_arrivals = false;
};

// TxView, RxOutcome, the EndpointCore concept, the kCore* extension
// traits, and the TxLog bookkeeping live in endpoint_core.hpp: they are
// shared verbatim with the real-time runtime (src/net), which drives the
// same cores over actual sockets.

template <EndpointCore Core>
class Engine {
public:
    using Options = typename Core::Options;

    explicit Engine(EngineConfig config, Options options = {})
        : cfg_(std::move(config)),
          mode_(cfg_.timeout_mode.value_or(Core::kDefaultTimeoutMode)),
          rng_data_(mix_seed(cfg_.seed, 0xd1)),
          rng_ack_(mix_seed(cfg_.seed, 0xac)),
          rng_arrivals_(mix_seed(cfg_.seed, 0xa7)),
          core_(cfg_, options),
          data_ch_(sim_, rng_data_, channel_config(cfg_.data_link), "C_SR"),
          ack_ch_(sim_, rng_ack_, channel_config(cfg_.ack_link), "C_RS"),
          ack_flush_timer_(sim_, [this] { flush_ack(); }),
          simple_timer_(sim_, [this] { on_simple_timeout(); }),
          blocked_timer_(sim_, [this] { pump_send(); }) {
        timeout_ = cfg_.timeout > 0 ? cfg_.timeout : derived_timeout();
        data_lifetime_ = cfg_.data_link.max_lifetime();
        data_ch_.set_receiver(
            [this](const proto::Message& m) { on_data_arrival(std::get<proto::Data>(m)); });
        ack_ch_.set_receiver([this](const proto::Message& m) {
            if (const auto* ack = std::get_if<proto::Ack>(&m)) {
                on_ack_arrival(*ack);
            } else {
                on_nak_arrival(std::get<proto::Nak>(m));
            }
        });
        if (cfg_.record_trace) {
            data_ch_.set_trace(&trace_);
            ack_ch_.set_trace(&trace_);
        }
        if (mode_ == TimeoutMode::OracleSimple || mode_ == TimeoutMode::OraclePerMessage) {
            sim_.add_idle_hook([this] { return oracle_fire(); });
        }
        // Pre-size the per-seq tables, the candidate scratch, and the
        // event slab so the steady-state event loop never touches the
        // allocator.  Concurrent events are bounded by the window: at
        // most w data copies + w per-message timers in flight each way,
        // plus the handful of engine-owned timers.
        txlog_.reserve(cfg_.count);
        first_send_.reserve(cfg_.count);
        if (cfg_.arrival_interval > 0) arrival_time_.reserve(cfg_.count);
        seq_scratch_.reserve(cfg_.w + 1);
        sim_.reserve_events(8 * cfg_.w + 64);
    }

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /// Runs the transfer to completion (or deadline/event cap) and
    /// returns the measurements.
    sim::Metrics run() {
        metrics_.start_time = sim_.now();
        if (cfg_.arrival_interval > 0) {
            app_released_ = 0;
            schedule_arrival();
        } else {
            app_released_ = cfg_.count;
        }
        pump_send();
        sim_.run_until(cfg_.deadline, cfg_.max_events);
        if (metrics_.end_time == 0) metrics_.end_time = sim_.now();
        metrics_.sr_dropped = data_ch_.stats().dropped;
        metrics_.rs_dropped = ack_ch_.stats().dropped;
        return metrics_;
    }

    /// All messages delivered in order and fully acknowledged.
    bool completed() const {
        return sent_new_ == cfg_.count && delivered_ == cfg_.count && !core_.has_outstanding();
    }

    Seq delivered() const { return delivered_; }
    SimTime timeout_value() const { return timeout_; }
    TimeoutMode timeout_mode() const { return mode_; }
    const Core& core() const { return core_; }
    const sim::Metrics& metrics() const { return metrics_; }
    const sim::TraceRecorder& trace() const { return trace_; }
    sim::Simulator& simulator() { return sim_; }
    const std::vector<std::string>& invariant_violations() const { return violations_; }

    decltype(auto) sender_core() const
        requires requires(const Core& c) { c.sender_core(); }
    {
        return core_.sender_core();
    }
    decltype(auto) receiver_core() const
        requires requires(const Core& c) { c.receiver_core(); }
    {
        return core_.receiver_core();
    }

private:
    static constexpr bool kTimeGatedSend = kCoreTimeGatedSend<Core>;
    static constexpr bool kGatedResend = kCoreGatedResend<Core>;
    static constexpr bool kHandlesNak = kCoreHandlesNak<Core>;
    static constexpr bool kInvariantCheckable = Core::kInvariantCheckable;

    sim::SimChannel::Config channel_config(LinkSpec spec) const {
        spec.fifo |= Core::kRequiresFifo;
        spec.track_contents |= cfg_.check_invariants;
        return spec.make_config();
    }

    SimTime derived_timeout() const {
        return cfg_.data_link.max_lifetime() + cfg_.ack_link.max_lifetime() +
               cfg_.ack_policy.max_ack_delay() + kMillisecond;
    }

    TxView txview() const { return txlog_.view(sim_.now(), data_lifetime_); }

    // ---- sender ----------------------------------------------------------

    /// Open-loop arrival process: releases one message per interval.
    void schedule_arrival() {
        if (app_released_ >= cfg_.count) return;
        const SimTime gap =
            cfg_.poisson_arrivals
                ? static_cast<SimTime>(
                      rng_arrivals_.exponential(static_cast<double>(cfg_.arrival_interval)))
                : cfg_.arrival_interval;
        sim_.schedule_after(gap, [this] {
            arrival_time_.set(app_released_, sim_.now());
            ++app_released_;
            pump_send();
            schedule_arrival();
        });
    }

    void pump_send() {
        while (sent_new_ < cfg_.count && sent_new_ < app_released_ && core_.can_send_new()) {
            if constexpr (kTimeGatedSend) {
                const SimTime ready = core_.send_blocked_until(sim_.now());
                if (ready > sim_.now()) {
                    if (!blocked_timer_.armed()) blocked_timer_.restart(ready - sim_.now());
                    return;
                }
            }
            const proto::Data msg = core_.send_new(sim_.now());
            const Seq true_seq = sent_new_++;
            first_send_.set(true_seq, sim_.now());
            transmit(msg, true_seq, /*retx=*/false);
        }
    }

    void transmit(const proto::Data& msg, Seq true_seq, bool retx) {
        if (retx) {
            ++metrics_.data_retx;
        } else {
            ++metrics_.data_new;
        }
        if (cfg_.record_trace) {
            trace_.record(sim_.now(), "S",
                          std::string(retx ? "resend " : "send ") + proto::to_string(msg));
        }
        txlog_.note(true_seq, sim_.now());
        data_ch_.send(msg);
        switch (mode_) {
            case TimeoutMode::SimpleTimer:
                simple_timer_.restart(timeout_);
                break;
            case TimeoutMode::PerMessageTimer:
                sim_.schedule_after(timeout_, [this, true_seq] { per_message_fire(true_seq); });
                break;
            default:
                break;  // oracle modes use the idle hook
        }
    }

    void on_ack_arrival(const proto::Ack& ack) {
        ++metrics_.acks_received;
        if (cfg_.record_trace) trace_.record(sim_.now(), "S", "rcv " + proto::to_string(ack));
        core_.on_ack(ack, txview());
        if (mode_ == TimeoutMode::SimpleTimer && !core_.has_outstanding()) {
            simple_timer_.cancel();
        }
        pump_send();
        if constexpr (kGatedResend) {
            // SIV's speed advantage: an arriving ack can unblock the
            // resend gate for already-matured messages; they go out
            // immediately, with no timeout period between successive
            // resends (paper SIV).
            if (mode_ == TimeoutMode::PerMessageTimer) rescan_matured();
        }
        maybe_check_invariants();
    }

    void on_simple_timeout() {
        if (!core_.has_outstanding()) return;
        seq_scratch_.clear();
        core_.simple_timeout_set(seq_scratch_);
        for (const Seq true_seq : seq_scratch_) {
            transmit(core_.resend(true_seq, sim_.now()), true_seq, /*retx=*/true);
        }
    }

    bool matured(Seq true_seq) const { return txlog_.matured(true_seq, sim_.now(), timeout_); }

    void per_message_fire(Seq true_seq) {
        if (!core_.can_resend(true_seq)) return;  // acknowledged meanwhile
        if (!matured(true_seq)) return;           // a newer copy owns the timer
        if constexpr (kGatedResend) {
            if (!core_.timeout_eligible(true_seq, /*oracle=*/false)) {
                gate_waiters_ = true;  // reconsidered on next ack
                return;
            }
        }
        transmit(core_.resend(true_seq, sim_.now()), true_seq, /*retx=*/true);
    }

    /// Resends every matured message the SIV gate now admits.  A message
    /// only reaches "matured but gate-blocked" through per_message_fire
    /// (its newest copy's timer fires exactly at maturity), which sets
    /// gate_waiters_; when no fire has been blocked since the last scan
    /// came up dry there is nothing to reconsider, and the per-ack
    /// O(window) candidate scan is skipped -- the common case on healthy
    /// links, where this runs on every single ack.
    void rescan_matured() {
        if (!gate_waiters_) return;
        bool still_blocked = false;
        seq_scratch_.clear();
        core_.resend_candidates(seq_scratch_);
        for (const Seq true_seq : seq_scratch_) {
            if (!matured(true_seq)) continue;
            if constexpr (kGatedResend) {
                if (!core_.timeout_eligible(true_seq, /*oracle=*/false)) {
                    still_blocked = true;
                    continue;
                }
            }
            transmit(core_.resend(true_seq, sim_.now()), true_seq, /*retx=*/true);
        }
        gate_waiters_ = still_blocked;
    }

    bool oracle_fire() {
        if (!core_.has_outstanding()) return false;
        // At an idle point the channels are provably empty (the *SR/*RS
        // conjuncts of the guards hold trivially), but the receiver may
        // hold out-of-order messages it cannot acknowledge yet -- the
        // "(i < nr || !rcvd[i])" conjunct must still be consulted.
        BACP_ASSERT(data_ch_.in_flight() == 0 && ack_ch_.in_flight() == 0);
        if (mode_ == TimeoutMode::OracleSimple) {
            // Paper SII guard: na != ns, channels empty, !rcvd[nr].  At an
            // idle point an eager/flushed receiver has nr == vr and
            // !rcvd[vr], so the remaining conjuncts hold automatically.
            seq_scratch_.clear();
            core_.simple_timeout_set(seq_scratch_);
            for (const Seq true_seq : seq_scratch_) {
                transmit(core_.resend(true_seq, sim_.now()), true_seq, /*retx=*/true);
            }
            return true;
        }
        bool any = false;
        seq_scratch_.clear();
        core_.resend_candidates(seq_scratch_);
        for (const Seq true_seq : seq_scratch_) {
            if constexpr (kGatedResend) {
                if (core_.timeout_eligible(true_seq, /*oracle=*/true) == false) continue;
            }
            transmit(core_.resend(true_seq, sim_.now()), true_seq, /*retx=*/true);
            any = true;
        }
        // na always passes the guard (na < nr, or na == nr with !rcvd[nr]
        // at idle), so progress is guaranteed.
        BACP_ASSERT_MSG(any, "oracle timeout found no eligible candidate");
        return true;
    }

    void on_nak_arrival(const proto::Nak& nak) {
        ++metrics_.naks_received;
        if (cfg_.record_trace) {
            trace_.record(sim_.now(), "S", "rcv N(" + std::to_string(nak.seq) + ")");
        }
        if constexpr (kHandlesNak) {
            const std::optional<Seq> target = core_.on_nak(nak, txview());
            if (!target) return;
            ++metrics_.fast_retx;
            transmit(core_.resend(*target, sim_.now()), *target, /*retx=*/true);
        } else {
            BACP_ASSERT_MSG(false, "NAK received by a core without NAK support");
        }
    }

    // ---- receiver --------------------------------------------------------

    void on_data_arrival(const proto::Data& msg) {
        ++metrics_.data_received;
        if (cfg_.record_trace) trace_.record(sim_.now(), "R", "rcv " + proto::to_string(msg));
        const RxOutcome out = core_.on_data(msg, sim_.now());
        if (out.dup_ack) {
            ++metrics_.duplicates;
            ++metrics_.dup_acks;
            if (cfg_.record_trace) {
                trace_.record(sim_.now(), "R", "dup-ack " + proto::to_string(*out.dup_ack));
            }
            ack_ch_.send(*out.dup_ack);
            maybe_check_invariants();
            return;
        }
        if (out.duplicate) ++metrics_.duplicates;
        for (Seq k = 0; k < out.delivered; ++k) note_delivery();
        if (out.immediate_ack) {
            ++metrics_.acks_sent;
            if (cfg_.record_trace) {
                trace_.record(sim_.now(), "R", "ack " + proto::to_string(*out.immediate_ack));
            }
            ack_ch_.send(*out.immediate_ack);
        }
        if (out.nak) {
            ++metrics_.naks_sent;
            if (cfg_.record_trace) {
                trace_.record(sim_.now(), "R", "nak N(" + std::to_string(out.nak->seq) + ")");
            }
            ack_ch_.send(*out.nak);
        }
        // Action 5 scheduling per the ack policy.
        const Seq pending = core_.ack_pending();
        if (pending >= cfg_.ack_policy.threshold) {
            flush_ack();
        } else if (pending > 0 && !ack_flush_timer_.armed()) {
            ack_flush_timer_.restart(cfg_.ack_policy.flush_delay);
        }
        maybe_check_invariants();
    }

    void note_delivery() {
        const Seq true_seq = delivered_++;
        ++metrics_.delivered;
        // Open loop measures arrival-to-delivery sojourn; closed loop
        // measures first-transmission-to-delivery.
        const SimTime arrived = arrival_time_.get(true_seq);
        if (arrived != SeqTimeTable::kNever) {
            metrics_.latency.add(sim_.now() - arrived);
        } else {
            const SimTime sent = first_send_.get(true_seq);
            if (sent != SeqTimeTable::kNever) metrics_.latency.add(sim_.now() - sent);
        }
        if (delivered_ == cfg_.count) metrics_.end_time = sim_.now();
    }

    void flush_ack() {
        ack_flush_timer_.cancel();
        if (core_.ack_pending() == 0) return;
        const proto::Ack ack = core_.make_ack();
        ++metrics_.acks_sent;
        if (cfg_.record_trace) trace_.record(sim_.now(), "R", "ack " + proto::to_string(ack));
        ack_ch_.send(ack);
        maybe_check_invariants();
    }

    // ---- verification hook -----------------------------------------------

    void maybe_check_invariants() {
        if constexpr (kInvariantCheckable) {
            if (!cfg_.check_invariants) return;
            // The realistic per-message timer mode legitimately relaxes
            // assertion 8's channel conjuncts (see ba/engine_core.hpp).
            const auto strictness = mode_ == TimeoutMode::PerMessageTimer
                                        ? verify::ChannelStrictness::Relaxed
                                        : verify::ChannelStrictness::Strict;
            const auto report =
                verify::check_invariants(core_.sender_core(), core_.receiver_core(),
                                         data_ch_.snapshot(), ack_ch_.snapshot(), strictness);
            if (!report.ok()) {
                violations_.insert(violations_.end(), report.violations.begin(),
                                   report.violations.end());
                BACP_ASSERT_MSG(false, "invariant violated during DES run: " + report.to_string());
            }
        }
    }

    EngineConfig cfg_;
    TimeoutMode mode_;
    sim::Simulator sim_;
    Rng rng_data_;
    Rng rng_ack_;
    Rng rng_arrivals_;
    sim::TraceRecorder trace_;
    Core core_;
    sim::SimChannel data_ch_;
    sim::SimChannel ack_ch_;
    sim::Timer ack_flush_timer_;
    sim::Timer simple_timer_;
    sim::Timer blocked_timer_;  // wakes the pump when a send gate clears
    sim::Metrics metrics_;

    SimTime timeout_ = 0;
    SimTime data_lifetime_ = 0;  // cached cfg_.data_link.max_lifetime()
    bool gate_waiters_ = false;  // a per-message fire was gate-blocked
    Seq sent_new_ = 0;      // new messages handed to the channel (== true ns)
    Seq delivered_ = 0;     // in-order deliveries at the receiver (== true vr)
    Seq app_released_ = 0;  // open loop: messages made available so far
    SeqTimeTable arrival_time_;    // open loop only
    SeqTimeTable first_send_;      // true seq -> first tx time
    TxLog txlog_;                  // true seq -> last tx time
    std::vector<Seq> seq_scratch_; // candidate sets, reused per timeout/ack
    std::vector<std::string> violations_;
};

}  // namespace bacp::runtime
