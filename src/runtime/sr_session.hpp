#pragma once

/// \file sr_session.hpp
/// Selective-repeat session: the runtime::Engine driving
/// baselines::SrCore (ba::Sender against the ack-per-message SrReceiver).
/// Per-message conservative timers are the default discipline.

#include "baselines/engine_cores.hpp"
#include "runtime/engine.hpp"

namespace bacp::runtime {

using SrSession = Engine<baselines::SrCore>;

}  // namespace bacp::runtime
