#pragma once

/// \file sr_session.hpp
/// Discrete-event runtime for the selective-repeat baseline: ba::Sender
/// (block acks degrade gracefully to singletons) driven against
/// SrReceiver, which acknowledges *every* data message individually --
/// the paper's "severe restriction" whose ack overhead E4 quantifies.
///
/// Retransmission uses per-message conservative timers (the natural
/// choice for SR).

#include <cstdint>
#include <unordered_map>

#include "ba/sender.hpp"
#include "baselines/selective_repeat.hpp"
#include "common/rng.hpp"
#include "runtime/link_spec.hpp"
#include "sim/metrics.hpp"
#include "sim/sim_channel.hpp"
#include "sim/simulator.hpp"

namespace bacp::runtime {

struct SrConfig {
    Seq w = 8;
    Seq count = 1000;
    SimTime timeout = 0;  // 0 = derive from link lifetimes
    LinkSpec data_link = LinkSpec::lossless();
    LinkSpec ack_link = LinkSpec::lossless();
    std::uint64_t seed = 1;
    SimTime deadline = 3600 * kSecond;
    std::size_t max_events = 50'000'000;
};

class SrSession {
public:
    explicit SrSession(SrConfig config);
    SrSession(const SrSession&) = delete;
    SrSession& operator=(const SrSession&) = delete;

    sim::Metrics run();
    bool completed() const;
    Seq delivered() const { return delivered_; }
    const ba::Sender& sender_core() const { return sender_; }
    const baselines::SrReceiver& receiver_core() const { return receiver_; }

private:
    void pump_send();
    void transmit(const proto::Data& msg, bool retx);
    void on_ack_arrival(const proto::Ack& ack);
    void on_data_arrival(const proto::Data& msg);
    void per_message_fire(Seq seq);

    SrConfig cfg_;
    sim::Simulator sim_;
    Rng rng_data_;
    Rng rng_ack_;
    ba::Sender sender_;
    baselines::SrReceiver receiver_;
    sim::SimChannel data_ch_;
    sim::SimChannel ack_ch_;
    sim::Metrics metrics_;
    SimTime timeout_ = 0;
    Seq sent_new_ = 0;
    Seq delivered_ = 0;
    std::unordered_map<Seq, SimTime> first_send_;
    std::unordered_map<Seq, SimTime> last_tx_;
};

}  // namespace bacp::runtime
