#include "runtime/ba_session.hpp"

namespace bacp::runtime {

const char* to_string(TimeoutMode mode) {
    switch (mode) {
        case TimeoutMode::OracleSimple: return "oracle-simple";
        case TimeoutMode::OraclePerMessage: return "oracle-per-message";
        case TimeoutMode::SimpleTimer: return "simple-timer";
        case TimeoutMode::PerMessageTimer: return "per-message-timer";
    }
    return "?";
}

}  // namespace bacp::runtime
