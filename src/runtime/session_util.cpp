#include "runtime/session_util.hpp"

#include "common/rng.hpp"

namespace bacp::runtime {

const char* to_string(TimeoutMode mode) {
    switch (mode) {
        case TimeoutMode::OracleSimple: return "oracle-simple";
        case TimeoutMode::OraclePerMessage: return "oracle-per-message";
        case TimeoutMode::SimpleTimer: return "simple-timer";
        case TimeoutMode::PerMessageTimer: return "per-message-timer";
    }
    return "?";
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
    std::uint64_t s = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
    return splitmix64(s);
}

}  // namespace bacp::runtime
