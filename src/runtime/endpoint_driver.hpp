#pragma once

/// \file endpoint_driver.hpp
/// The environment-independent protocol-driving layer.
///
/// EndpointDriver<Core, Env> owns every decision a session runtime makes
/// that does not depend on what kind of time or channel is underneath:
/// the four TimeoutMode disciplines, send-horizon window pumping, ack
/// absorption and the AckPolicy, resend-candidate rescans, the NAK fast
/// path, in-order delivery accounting, and the derived-timeout
/// computation.  The discrete-event runtime::Engine and the real-time
/// net::NetEndpoint (via DuplexDriver) are thin adapters over this class:
/// they supply an *Environment* -- a clock, a TimerService, and egress /
/// delivery / verification hooks -- and forward arriving protocol
/// messages to handle_ack / handle_nak / handle_data.  The driver logic
/// therefore exists exactly once and is exercised identically over
/// virtual and wall-clock time (tests/test_driver_parity.cpp pins that).
///
/// The one genuine environment difference is expressed as a capability
/// rather than forked code: Env::kHasOracle.  A DES can *prove*
/// quiescence (empty event queue => empty channels) and fires the oracle
/// timeout modes from an idle hook calling oracle_fire(); a real network
/// has no such oracle, so when kHasOracle is false the driver runs a
/// quiescence timer instead -- restarted on every send and ack while
/// messages are outstanding, firing after a full conservative timeout of
/// silence, by which time any copy in flight has aged out of the
/// channel.  The resend *sets* are the paper's in both worlds; only the
/// firing moment is heuristic.  See DESIGN.md (endpoint driver).
///
/// Timer timeouts default to L_SR + L_RS + max_ack_delay + margin
/// (derived_timeout below), the conservative bound that preserves the
/// paper's assertion 8 ("at most one copy of each data message or its
/// acknowledgment is in transit").

#include <concepts>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/timer_service.hpp"
#include "common/types.hpp"
#include "protocol/message.hpp"
#include "runtime/ack_policy.hpp"
#include "runtime/endpoint_core.hpp"
#include "runtime/link_spec.hpp"
#include "runtime/session_util.hpp"
#include "runtime/timeout_mode.hpp"
#include "sim/metrics.hpp"

namespace bacp::runtime {

/// One configuration for every protocol and both runtimes.  The DES
/// engine consumes it directly; net::NetConfig derives from it, adding
/// only the knobs a real network introduces (payload bytes, impairment,
/// transport batching).  Core-specific knobs (residue domain, reuse
/// interval, ...) live in the core's Options struct.
struct EngineConfig {
    Seq w = 8;
    Seq count = 1000;  // messages to transfer
    /// nullopt = the core's classic discipline (PerMessageTimer for the
    /// block-ack family and selective repeat, SimpleTimer for the
    /// single-timer baselines).
    std::optional<TimeoutMode> timeout_mode;
    SimTime timeout = 0;  // 0 = derive conservatively from links + ack policy
    AckPolicy ack_policy = AckPolicy::eager();
    LinkSpec data_link = LinkSpec::lossless();
    LinkSpec ack_link = LinkSpec::lossless();
    std::uint64_t seed = 1;
    SimTime deadline = 3600 * kSecond;
    std::size_t max_events = 50'000'000;
    bool record_trace = false;
    /// Check assertions 6-8 after every protocol step (unbounded BA cores
    /// over set-tracked channels only); violations throw AssertionError.
    bool check_invariants = false;
    /// Fast-retransmit extension (BA cores): the receiver NAKs the
    /// message blocking vr after nak_threshold out-of-order arrivals; the
    /// sender resends it as soon as the previous copy has provably aged
    /// out of the channel.  Advisory: NAK loss or duplication affects
    /// only latency.  See DESIGN.md (extensions).
    bool enable_nak = false;
    Seq nak_threshold = 3;
    /// Variable-window extension (paper SVI): AIMD adaptation of the
    /// effective window limit within [1, w].  Only meaningful when the
    /// data link models a bottleneck queue, and only for cores whose
    /// sender supports set_window_limit.
    bool adaptive_window = false;
    /// Open-loop workload: when > 0, messages become available one per
    /// interval (exponential gaps when poisson_arrivals) instead of all
    /// upfront; `count` still bounds the total.  Latency then measures
    /// arrival-to-delivery sojourn (queueing included).
    SimTime arrival_interval = 0;
    bool poisson_arrivals = false;
    /// Application-gated workload: start() releases nothing, and each
    /// message becomes available only when the application calls
    /// EndpointDriver::release() -- the link layer's send() path, where
    /// payload bytes exist only after the caller queues them.  `count`
    /// still bounds the total.  Mutually exclusive with
    /// arrival_interval > 0.
    bool app_arrivals = false;
};

/// The conservative retransmission timeout: one data lifetime out, one
/// ack lifetime back, the longest the receiver may sit on an ack, plus a
/// millisecond of margin.  Waiting this long before resending preserves
/// the paper's assertion 8 -- at most one copy of each data message or
/// its acknowledgment is in transit -- because the previous copy (and
/// any ack it provoked) has provably aged out of both channels.  Both
/// runtimes derive from here; tests/test_runtime_util.cpp pins the bound.
inline SimTime derived_timeout(const LinkSpec& data_link, const LinkSpec& ack_link,
                               const AckPolicy& ack_policy) {
    return data_link.max_lifetime() + ack_link.max_lifetime() + ack_policy.max_ack_delay() +
           kMillisecond;
}

/// The timeout a configuration actually runs with: explicit, or derived.
inline SimTime effective_timeout(const EngineConfig& cfg) {
    return cfg.timeout > 0 ? cfg.timeout
                           : derived_timeout(cfg.data_link, cfg.ack_link, cfg.ack_policy);
}

/// Optional core extension: the wire residue a true sequence number
/// travels under (bounded SV, threshold counters).  Environments that
/// key per-frame state by wire field (the net runtime's payload stash)
/// consult this; cores without it use unbounded wire seqnums, where the
/// mapping is the identity.
template <typename C>
inline constexpr bool kCoreWireMapped =
    requires(const C& c, Seq s) { { c.wire_seq(s) } -> std::convertible_to<Seq>; };

/// Detects cores whose block acks are residue ranges that may wrap the
/// sequence-number domain (bounded BA: ack (lo, hi) with hi < lo means
/// lo..domain-1 then 0..hi).  Struct-passing environments need not care
/// -- the sender cores consume wrapped ranges natively via residue
/// offsets -- but a wire codec cannot encode hi < lo as one frame, so
/// wire environments split the block in two at the domain edge.
template <typename C>
inline constexpr bool kCoreAckWireWrapped =
    requires(const C& c) { { c.ack_wire_domain() } -> std::convertible_to<Seq>; };

/// How an acknowledgment left the receiver -- lets environments label
/// egress without re-deriving the reason (the DES trace distinguishes
/// "ack" from "dup-ack"; counters already did).
enum class AckKind : std::uint8_t {
    Block,  // action 5 / immediate per-arrival ack
    Dup,    // BA-style duplicate re-ack (action 3)
};

/// One externally visible protocol decision, for cross-runtime parity
/// checks.  Ranges are wire values exactly as sent; seqs are true
/// sequence numbers.
struct Decision {
    enum Kind : std::uint8_t { Send, Resend, AckBlock, AckDup, Nak, Deliver };

    SimTime time = 0;
    char endpoint = '?';  // 'S' sender half, 'R' receiver half
    Kind kind = Send;
    Seq lo = 0;
    Seq hi = 0;

    friend bool operator==(const Decision&, const Decision&) = default;
};

/// Optional recorder the driver writes every decision into (nullptr =
/// zero cost).  The cross-runtime parity test attaches one to a DES run
/// and one to each net endpoint and compares the streams.
struct DecisionLog {
    std::vector<Decision> entries;

    void note(SimTime t, char endpoint, Decision::Kind kind, Seq lo, Seq hi) {
        entries.push_back(Decision{t, endpoint, kind, lo, hi});
    }
};

/// What an Environment must supply.  Checked where the adapter type is
/// complete (the driver's constructor), not at class scope, because
/// adapters embed the driver and hand themselves in while still
/// incomplete.
// clang-format off
template <typename E>
concept DriverEnvironment =
    requires(E env, const proto::Data& data, const proto::Ack& ack,
             const proto::Nak& nak, Seq seq, bool retx) {
        /// true: the environment can prove quiescence and calls
        /// oracle_fire() from an idle hook (DES).  false: the driver
        /// approximates with the quiescence timer (real time).
        { E::kHasOracle } -> std::convertible_to<bool>;
        { env.timer_service() } -> std::convertible_to<TimerService&>;
        { env.now() } -> std::convertible_to<SimTime>;
        /// Egress: put the frame on the wire (trace + SimChannel::send in
        /// the DES; wire::codec + batch staging in the net runtime).
        env.send_data(data, seq, retx);
        env.send_ack(ack, AckKind::Block);
        env.send_nak(nak);
        /// One in-order delivery of \p seq (payload handoff/verification
        /// in the net runtime; no-op in the DES).
        env.on_delivery(seq);
        /// After every completed protocol step (arrival or ack flush) --
        /// the DES invariant-check hook; no-op in the net runtime.
        env.after_step();
    };
// clang-format on

/// Dense true-seq -> TimerId table for the per-message discipline.  Same
/// shape and rationale as SeqTimeTable: true seqs are contiguous from 0,
/// so a flat vector with chunked growth (clamped to an existing
/// reserve()) keeps the steady state allocation-free where a hash map
/// would rehash.
class SeqTimerTable {
public:
    void set(Seq true_seq, TimerId id) {
        if (true_seq >= ids_.size()) {
            std::size_t grow = ids_.size() + ids_.size() / 2 + 64;
            if (grow > ids_.capacity() && ids_.capacity() > true_seq) {
                grow = ids_.capacity();
            }
            ids_.resize(std::max<std::size_t>(true_seq + 1, grow), kInvalidTimer);
        }
        ids_[true_seq] = id;
    }

    TimerId get(Seq true_seq) const {
        return true_seq < ids_.size() ? ids_[true_seq] : kInvalidTimer;
    }

    void clear(Seq true_seq) {
        if (true_seq < ids_.size()) ids_[true_seq] = kInvalidTimer;
    }

    void reserve(std::size_t n) { ids_.reserve(n); }

    /// Every live id, for cancel-all on destruction.
    const std::vector<TimerId>& raw() const { return ids_; }

private:
    std::vector<TimerId> ids_;
};

template <EndpointCore Core, typename Env>
class EndpointDriver {
public:
    using Options = typename Core::Options;

    static constexpr bool kTimeGatedSend = kCoreTimeGatedSend<Core>;
    static constexpr bool kGatedResend = kCoreGatedResend<Core>;
    static constexpr bool kHandlesNak = kCoreHandlesNak<Core>;

    /// \p env must outlive the driver; adapters embed the driver and
    /// pass *this.
    EndpointDriver(const EngineConfig& cfg, Options options, Env& env)
        : cfg_(cfg),
          mode_(cfg.timeout_mode.value_or(Core::kDefaultTimeoutMode)),
          env_(env),
          core_(cfg_, std::move(options)),
          rng_arrivals_(mix_seed(cfg_.seed, 0xa7)),
          ack_flush_timer_(env.timer_service(), [this] { flush_ack(); }),
          simple_timer_(env.timer_service(), [this] { on_simple_timeout(); }),
          blocked_timer_(env.timer_service(), [this] { pump_send(); }),
          quiescence_timer_(env.timer_service(), [this] { on_quiescence(); }),
          arrival_timer_(env.timer_service(), [this] { on_arrival_tick(); }) {
        static_assert(DriverEnvironment<Env>);
        timeout_ = effective_timeout(cfg_);
        data_lifetime_ = cfg_.data_link.max_lifetime();
        // Pre-size the per-seq tables and the candidate scratch so the
        // steady-state loop never touches the allocator.
        txlog_.reserve(cfg_.count);
        first_send_.reserve(cfg_.count);
        if (cfg_.arrival_interval > 0) arrival_time_.reserve(cfg_.count);
        if (mode_ == TimeoutMode::PerMessageTimer) pm_timers_.reserve(cfg_.count);
        seq_scratch_.reserve(cfg_.w + 1);
    }

    EndpointDriver(const EndpointDriver&) = delete;
    EndpointDriver& operator=(const EndpointDriver&) = delete;

    ~EndpointDriver() {
        // Per-message expiries are raw TimerService timers (the OneShot
        // members cancel themselves); reclaim them so no closure on the
        // service can fire into a dead driver.
        for (const TimerId id : pm_timers_.raw()) {
            if (id != kInvalidTimer) env_.timer_service().cancel(id);
        }
    }

    /// Opens the faucet: stamps the start time, releases the workload
    /// (all upfront, or via the open-loop arrival process), and pumps the
    /// first window.  Call once, from the sending endpoint.
    void start() {
        metrics_.start_time = env_.now();
        if (cfg_.app_arrivals) {
            // Nothing to release yet: the application feeds messages in
            // through release() as it queues their payloads.
        } else if (cfg_.arrival_interval > 0) {
            app_released_ = 0;
            schedule_arrival();
        } else {
            app_released_ = cfg_.count;
        }
        pump_send();
    }

    /// Releases \p n more messages into the window (app_arrivals mode):
    /// the application has queued their payloads, so the environment's
    /// payload source can now serve them.  Clamped to `count`; pumps
    /// immediately, so frames may egress from inside this call.
    void release(Seq n) {
        app_released_ = std::min<Seq>(cfg_.count, app_released_ + n);
        pump_send();
    }

    // ---- ingress (the environment decodes, then forwards) -----------------

    void handle_ack(const proto::Ack& ack) {
        ++metrics_.acks_received;
        core_.on_ack(ack, txview());
        // Sender-observed latency: sweep the retirement cursor over
        // messages this ack (cumulatively) settled.  can_resend() going
        // false is the core-agnostic "acknowledged" signal (the same one
        // per-message timers consult), and the cursor makes the sweep
        // O(newly acked) amortized.
        while (ack_cursor_ < sent_new_ && !core_.can_resend(ack_cursor_)) {
            const SimTime sent = first_send_.get(ack_cursor_);
            if (sent != SeqTimeTable::kNever) {
                metrics_.ack_latency.add(env_.now() - sent);
            }
            // Reclaim the retired message's expiry timer now instead of
            // letting it fire as a no-op: lazy cancellation would keep
            // one live timer per message sent within a timeout window,
            // and the heap's high-water mark with it, unbounded by w.
            if (mode_ == TimeoutMode::PerMessageTimer) {
                const TimerId id = pm_timers_.get(ack_cursor_);
                if (id != kInvalidTimer) {
                    env_.timer_service().cancel(id);
                    pm_timers_.clear(ack_cursor_);
                }
            }
            ++ack_cursor_;
        }
        if (mode_ == TimeoutMode::SimpleTimer && !core_.has_outstanding()) {
            simple_timer_.cancel();
        }
        pump_send();
        if constexpr (kGatedResend) {
            // SIV's speed advantage: an arriving ack can unblock the
            // resend gate for already-matured messages; they go out
            // immediately, with no timeout period between successive
            // resends (paper SIV).
            if (mode_ == TimeoutMode::PerMessageTimer) rescan_matured();
        }
        if constexpr (!Env::kHasOracle) touch_quiescence();
        env_.after_step();
    }

    void handle_nak(const proto::Nak& nak) {
        ++metrics_.naks_received;
        if constexpr (kHandlesNak) {
            const std::optional<Seq> target = core_.on_nak(nak, txview());
            if (!target) return;
            ++metrics_.fast_retx;
            transmit(core_.resend(*target, env_.now()), *target, /*retx=*/true);
        } else if constexpr (Env::kHasOracle) {
            // The DES world is closed: a NAK can only reach a core that
            // produced one, so this is a wiring bug.
            BACP_ASSERT_MSG(false, "NAK received by a core without NAK support");
        }
        // On a real network a stray NAK may be a duplicate from an
        // earlier impairment; cores without NAK support ignore it.
    }

    void handle_data(const proto::Data& msg) {
        ++metrics_.data_received;
        const RxOutcome out = core_.on_data(msg, env_.now());
        if (out.rejected) {
            // Semantically impossible arrival (e.g. seq beyond nr + w): a
            // CRC-valid-but-corrupted frame, or a peer speaking a
            // different configuration.  Counted with the decode errors
            // and otherwise treated as loss -- the timers recover.
            ++metrics_.decode_errors;
            env_.after_step();
            return;
        }
        if (out.dup_ack) {
            ++metrics_.duplicates;
            ++metrics_.dup_acks;
            log(Decision::AckDup, 'R', out.dup_ack->lo, out.dup_ack->hi);
            env_.send_ack(*out.dup_ack, AckKind::Dup);
            env_.after_step();
            return;
        }
        if (out.duplicate) ++metrics_.duplicates;
        for (Seq k = 0; k < out.delivered; ++k) note_delivery();
        if (out.immediate_ack) {
            ++metrics_.acks_sent;
            log(Decision::AckBlock, 'R', out.immediate_ack->lo, out.immediate_ack->hi);
            env_.send_ack(*out.immediate_ack, AckKind::Block);
        }
        if (out.nak) {
            ++metrics_.naks_sent;
            log(Decision::Nak, 'R', out.nak->seq, out.nak->seq);
            env_.send_nak(*out.nak);
        }
        // Action 5 scheduling per the ack policy.
        const Seq pending = core_.ack_pending();
        if (pending >= cfg_.ack_policy.threshold) {
            flush_ack();
        } else if (pending > 0 && !ack_flush_timer_.armed()) {
            ack_flush_timer_.restart(cfg_.ack_policy.flush_delay);
        }
        env_.after_step();
    }

    // ---- oracle hook (environments with provable quiescence) ---------------

    /// Fires the oracle timeout disciplines at a proven idle point.  The
    /// environment is responsible for the proof (the DES asserts both
    /// channels empty before calling).  Returns whether anything was
    /// resent (i.e. the idle point produced new work).
    bool oracle_fire()
        requires(Env::kHasOracle)
    {
        if (!core_.has_outstanding()) return false;
        // At an idle point the channels are provably empty (the *SR/*RS
        // conjuncts of the guards hold trivially), but the receiver may
        // hold out-of-order messages it cannot acknowledge yet -- the
        // "(i < nr || !rcvd[i])" conjunct must still be consulted.
        if (mode_ == TimeoutMode::OracleSimple) {
            // Paper SII guard: na != ns, channels empty, !rcvd[nr].  At an
            // idle point an eager/flushed receiver has nr == vr and
            // !rcvd[vr], so the remaining conjuncts hold automatically.
            resend_simple_set();
            return true;
        }
        bool any = false;
        seq_scratch_.clear();
        core_.resend_candidates(seq_scratch_);
        for (const Seq true_seq : seq_scratch_) {
            if constexpr (kGatedResend) {
                if (core_.timeout_eligible(true_seq, /*oracle=*/true) == false) continue;
            }
            transmit(core_.resend(true_seq, env_.now()), true_seq, /*retx=*/true);
            any = true;
        }
        // na always passes the guard (na < nr, or na == nr with !rcvd[nr]
        // at idle), so progress is guaranteed.
        BACP_ASSERT_MSG(any, "oracle timeout found no eligible candidate");
        return true;
    }

    // ---- chaos hooks (src/chaos fault injection) ---------------------------

    /// Applies one seeded corruption to the core's protocol state and
    /// then re-arms the timer discipline over the corrupted state -- a
    /// power-cycled peer restarts its timers too, so recovery must not
    /// depend on timers armed before the fault.  Returns the core's
    /// description of what was corrupted ("" = state offered nothing).
    std::string chaos_corrupt_state(Rng& rng)
        requires kCoreCorruptible<Core>
    {
        const std::string what = core_.corrupt_state(rng);
        if (!what.empty()) chaos_rearm();
        return what;
    }

    /// Scrambles the timer sets without touching protocol state: every
    /// live per-message expiry is cancelled and re-armed at a uniformly
    /// random fraction of the timeout, and the single/quiescence timers
    /// are similarly perturbed.  Early fires re-arm instead of resending
    /// (the one-copy maturity rule still gates the wire), so scrambling
    /// costs spurious wakeups, never a silently dropped retransmission.
    /// Returns the number of timers perturbed.
    std::size_t chaos_scramble_timers(Rng& rng) {
        std::size_t scrambled = 0;
        if (mode_ == TimeoutMode::PerMessageTimer) {
            seq_scratch_.clear();
            core_.resend_candidates(seq_scratch_);
            for (const Seq true_seq : seq_scratch_) {
                const TimerId prev = pm_timers_.get(true_seq);
                if (prev != kInvalidTimer) env_.timer_service().cancel(prev);
                const SimTime delay = chaos_delay(rng);
                const TimerId id =
                    env_.timer_service().schedule_after(delay, [this, true_seq] {
                        pm_timers_.clear(true_seq);
                        chaos_premature_fire(true_seq);
                    });
                pm_timers_.set(true_seq, id);
                ++scrambled;
            }
        }
        if (simple_timer_.armed()) {
            simple_timer_.restart(chaos_delay(rng));
            ++scrambled;
        }
        if (quiescence_timer_.armed()) {
            quiescence_timer_.restart(chaos_delay(rng));
            ++scrambled;
        }
        return scrambled;
    }

    // ---- observers ---------------------------------------------------------

    /// Every message handed over and acknowledged (the sending half's
    /// completion condition).
    bool all_sent_and_acked() const {
        return sent_new_ == cfg_.count && !core_.has_outstanding();
    }

    /// Full-session completion: both halves done (meaningful when one
    /// driver runs both, i.e. the DES).
    bool completed() const {
        return all_sent_and_acked() && delivered_ == cfg_.count;
    }

    Seq delivered() const { return delivered_; }
    Seq sent_new() const { return sent_new_; }
    SimTime timeout_value() const { return timeout_; }
    TimeoutMode mode() const { return mode_; }
    const Core& core() const { return core_; }
    const sim::Metrics& metrics() const { return metrics_; }
    /// Environments own the non-protocol counters (channel drops, decode
    /// errors) and the report's time stamps; they write them here.
    sim::Metrics& metrics_mut() { return metrics_; }

    /// Attach (or detach, with nullptr) a decision recorder.
    void set_decision_log(DecisionLog* log) { log_ = log; }

private:
    TxView txview() const { return txlog_.view(env_.now(), data_lifetime_); }

    void log(Decision::Kind kind, char endpoint, Seq lo, Seq hi) {
        if (log_ != nullptr) log_->note(env_.now(), endpoint, kind, lo, hi);
    }

    // ---- sender half -------------------------------------------------------

    /// Open-loop arrival process: releases one message per interval.
    void schedule_arrival() {
        if (app_released_ >= cfg_.count) return;
        const SimTime gap =
            cfg_.poisson_arrivals
                ? static_cast<SimTime>(
                      rng_arrivals_.exponential(static_cast<double>(cfg_.arrival_interval)))
                : cfg_.arrival_interval;
        arrival_timer_.restart(gap);
    }

    void on_arrival_tick() {
        arrival_time_.set(app_released_, env_.now());
        ++app_released_;
        pump_send();
        schedule_arrival();
    }

    void pump_send() {
        while (sent_new_ < cfg_.count && sent_new_ < app_released_ && core_.can_send_new()) {
            if constexpr (kTimeGatedSend) {
                // One now() snapshot for the whole decision: under a real
                // clock, time advances between reads, and a deadline that
                // tested as future against the first read can be past by
                // the next -- handing the timer wheel a negative delay.
                const SimTime now = env_.now();
                const SimTime ready = core_.send_blocked_until(now);
                if (ready > now) {
                    if (!blocked_timer_.armed()) blocked_timer_.restart(ready - now);
                    return;
                }
            }
            const proto::Data msg = core_.send_new(env_.now());
            const Seq true_seq = sent_new_++;
            first_send_.set(true_seq, env_.now());
            transmit(msg, true_seq, /*retx=*/false);
        }
    }

    void transmit(const proto::Data& msg, Seq true_seq, bool retx) {
        if (retx) {
            ++metrics_.data_retx;
        } else {
            ++metrics_.data_new;
        }
        log(retx ? Decision::Resend : Decision::Send, 'S', true_seq, true_seq);
        txlog_.note(true_seq, env_.now());
        env_.send_data(msg, true_seq, retx);
        switch (mode_) {
            case TimeoutMode::SimpleTimer:
                simple_timer_.restart(timeout_);
                break;
            case TimeoutMode::PerMessageTimer:
                schedule_per_message(true_seq);
                break;
            default:
                // Oracle modes: the DES idle hook fires them; real time
                // watches for silence instead.
                if constexpr (!Env::kHasOracle) touch_quiescence();
                break;
        }
    }

    /// Per-message expiry timer.  The newest copy owns the seq's timer:
    /// rescheduling cancels the previous one (whose fire was a provable
    /// no-op anyway -- matured() fails while a newer copy is fresh), and
    /// the dense table lets the destructor reclaim every live closure.
    void schedule_per_message(Seq true_seq) {
        const TimerId prev = pm_timers_.get(true_seq);
        if (prev != kInvalidTimer) env_.timer_service().cancel(prev);
        const TimerId id = env_.timer_service().schedule_after(timeout_, [this, true_seq] {
            pm_timers_.clear(true_seq);
            per_message_fire(true_seq);
        });
        pm_timers_.set(true_seq, id);
    }

    void on_simple_timeout() {
        if (!core_.has_outstanding()) return;
        resend_simple_set();
    }

    void resend_simple_set() {
        seq_scratch_.clear();
        core_.simple_timeout_set(seq_scratch_);
        for (const Seq true_seq : seq_scratch_) {
            transmit(core_.resend(true_seq, env_.now()), true_seq, /*retx=*/true);
        }
    }

    bool matured(Seq true_seq) const { return txlog_.matured(true_seq, env_.now(), timeout_); }

    void per_message_fire(Seq true_seq) {
        if (!core_.can_resend(true_seq)) return;  // acknowledged meanwhile
        if (!matured(true_seq)) return;           // a newer copy owns the timer
        if constexpr (kGatedResend) {
            if (!core_.timeout_eligible(true_seq, /*oracle=*/false)) {
                gate_waiters_ = true;  // reconsidered on next ack
                return;
            }
        }
        transmit(core_.resend(true_seq, env_.now()), true_seq, /*retx=*/true);
    }

    /// Resends every matured message the SIV gate now admits.  A message
    /// only reaches "matured but gate-blocked" through per_message_fire
    /// (its newest copy's timer fires exactly at maturity), which sets
    /// gate_waiters_; when no fire has been blocked since the last scan
    /// came up dry there is nothing to reconsider, and the per-ack
    /// O(window) candidate scan is skipped -- the common case on healthy
    /// links, where this runs on every single ack.
    void rescan_matured() {
        if (!gate_waiters_) return;
        bool still_blocked = false;
        seq_scratch_.clear();
        core_.resend_candidates(seq_scratch_);
        for (const Seq true_seq : seq_scratch_) {
            if (!matured(true_seq)) continue;
            if constexpr (kGatedResend) {
                if (!core_.timeout_eligible(true_seq, /*oracle=*/false)) {
                    still_blocked = true;
                    continue;
                }
            }
            transmit(core_.resend(true_seq, env_.now()), true_seq, /*retx=*/true);
        }
        gate_waiters_ = still_blocked;
    }

    // ---- chaos internals ---------------------------------------------------

    SimTime chaos_delay(Rng& rng) {
        return static_cast<SimTime>(rng.uniform(static_cast<std::uint64_t>(timeout_) + 1));
    }

    /// Post-corruption timer discipline: every resend candidate the
    /// corrupted state now exposes gets an expiry (forgotten acks revive
    /// seqs whose timers were reclaimed on acknowledgment), and a
    /// receiver with a regressed nr gets its re-ack flushed on the usual
    /// policy delay instead of waiting for the next arrival.
    void chaos_rearm() {
        if (mode_ == TimeoutMode::PerMessageTimer) {
            seq_scratch_.clear();
            core_.resend_candidates(seq_scratch_);
            for (const Seq true_seq : seq_scratch_) {
                if (pm_timers_.get(true_seq) == kInvalidTimer) {
                    schedule_per_message(true_seq);
                }
            }
        } else if (mode_ == TimeoutMode::SimpleTimer) {
            if (core_.has_outstanding() && !simple_timer_.armed()) {
                simple_timer_.restart(timeout_);
            }
        } else {
            if constexpr (!Env::kHasOracle) touch_quiescence();
        }
        if (core_.ack_pending() > 0 && !ack_flush_timer_.armed()) {
            ack_flush_timer_.restart(cfg_.ack_policy.flush_delay);
        }
        // The ack-latency sweep must not stall on seqs the corruption
        // re-opened: the cursor only ever moves forward, so clamp it past
        // nothing -- but the sweep condition consults can_resend, which a
        // revived seq now satisfies.  Re-sweeping later acks would
        // double-count latency samples, so leave the cursor where it is;
        // revived seqs simply record no second latency sample.
        pump_send();
    }

    /// Fire path for scrambled timers: an early fire (the copy has not
    /// matured) re-arms for the normal expiry instead of falling through
    /// per_message_fire's maturity check, which would silently drop the
    /// seq's timer forever.
    void chaos_premature_fire(Seq true_seq) {
        if (!core_.can_resend(true_seq)) return;
        if (!matured(true_seq)) {
            schedule_per_message(true_seq);
            return;
        }
        per_message_fire(true_seq);
    }

    // ---- quiescence approximation (environments without an oracle) ---------

    /// Oracle-mode activity notification: while anything is outstanding,
    /// (re)arm the quiescence timer; a full timeout of silence stands in
    /// for the provable idle point.
    void touch_quiescence() {
        if (mode_ != TimeoutMode::OracleSimple && mode_ != TimeoutMode::OraclePerMessage) {
            return;
        }
        if (core_.has_outstanding()) {
            quiescence_timer_.restart(timeout_);
        } else {
            quiescence_timer_.cancel();
        }
    }

    void on_quiescence() {
        if (!core_.has_outstanding()) return;
        if (mode_ == TimeoutMode::OracleSimple) {
            resend_simple_set();
            return;  // transmit re-armed the timer via touch_quiescence
        }
        bool any = false;
        seq_scratch_.clear();
        core_.resend_candidates(seq_scratch_);
        for (const Seq true_seq : seq_scratch_) {
            if constexpr (kGatedResend) {
                // oracle=true consults the receiver half of *this* core,
                // which is empty at the sending endpoint, so the gate
                // reduces to the sender-side conjuncts -- conservative in
                // the safe direction (never blocks a needed resend).
                if (!core_.timeout_eligible(true_seq, /*oracle=*/true)) continue;
            }
            transmit(core_.resend(true_seq, env_.now()), true_seq, /*retx=*/true);
            any = true;
        }
        if (!any) quiescence_timer_.restart(timeout_);  // keep watching
    }

    // ---- receiver half -----------------------------------------------------

    void note_delivery() {
        const Seq true_seq = delivered_++;
        ++metrics_.delivered;
        env_.on_delivery(true_seq);
        log(Decision::Deliver, 'R', true_seq, true_seq);
        // Open loop measures arrival-to-delivery sojourn; closed loop
        // measures first-transmission-to-delivery.  An environment that
        // only runs the receiving half has neither table filled in and
        // records no latency (its clock is not the sender's).
        const SimTime arrived = arrival_time_.get(true_seq);
        if (arrived != SeqTimeTable::kNever) {
            metrics_.latency.add(env_.now() - arrived);
        } else {
            const SimTime sent = first_send_.get(true_seq);
            if (sent != SeqTimeTable::kNever) metrics_.latency.add(env_.now() - sent);
        }
        if (delivered_ == cfg_.count) metrics_.end_time = env_.now();
    }

    void flush_ack() {
        ack_flush_timer_.cancel();
        if (core_.ack_pending() == 0) return;
        const proto::Ack ack = core_.make_ack();
        ++metrics_.acks_sent;
        log(Decision::AckBlock, 'R', ack.lo, ack.hi);
        env_.send_ack(ack, AckKind::Block);
        env_.after_step();
    }

    EngineConfig cfg_;
    TimeoutMode mode_;
    Env& env_;
    Core core_;
    Rng rng_arrivals_;
    OneShotTimer ack_flush_timer_;
    OneShotTimer simple_timer_;
    OneShotTimer blocked_timer_;     // wakes the pump when a send gate clears
    OneShotTimer quiescence_timer_;  // !kHasOracle oracle-mode approximation
    OneShotTimer arrival_timer_;     // open-loop workload ticks
    sim::Metrics metrics_;

    SimTime timeout_ = 0;
    SimTime data_lifetime_ = 0;  // cached cfg_.data_link.max_lifetime()
    bool gate_waiters_ = false;  // a per-message fire was gate-blocked
    Seq sent_new_ = 0;      // new messages handed to the wire (== true ns)
    Seq ack_cursor_ = 0;    // messages retired by acks (latency sweep)
    Seq delivered_ = 0;     // in-order deliveries at the receiver (== true vr)
    Seq app_released_ = 0;  // open loop: messages made available so far
    SeqTimeTable arrival_time_;     // open loop only
    SeqTimeTable first_send_;       // true seq -> first tx time
    TxLog txlog_;                   // true seq -> last tx time
    SeqTimerTable pm_timers_;       // true seq -> live per-message timer
    std::vector<Seq> seq_scratch_;  // candidate sets, reused per timeout/ack
    DecisionLog* log_ = nullptr;
};

}  // namespace bacp::runtime
