#pragma once

/// \file link_spec.hpp
/// Declarative description of one channel direction, turned into a
/// SimChannel::Config by make_config().  Benches and examples describe
/// links with this value type instead of wiring model objects by hand.

#include <cstdint>
#include <memory>

#include "common/types.hpp"
#include "sim/sim_channel.hpp"

namespace bacp::runtime {

struct LinkSpec {
    enum class Loss { None, Bernoulli, GilbertElliott, Scripted };
    enum class Delay { Fixed, Uniform, Exponential, HeavyTail };

    Loss loss_kind = Loss::None;
    double loss_p = 0.0;                     // Bernoulli
    double ge_p_good_to_bad = 0.01;          // Gilbert-Elliott
    double ge_p_bad_to_good = 0.2;
    double ge_loss_good = 0.0;
    double ge_loss_bad = 0.5;
    std::vector<std::uint64_t> scripted_drops;  // Scripted

    Delay delay_kind = Delay::Uniform;
    SimTime delay_lo = 4 * kMillisecond;     // Fixed uses delay_lo only
    SimTime delay_hi = 6 * kMillisecond;     // Uniform upper bound / cap
    double heavy_alpha = 1.5;                // HeavyTail shape

    bool fifo = false;
    bool track_contents = false;

    /// Bottleneck-link model (0 = off): serialization time per message
    /// and the queue's tail-drop capacity.  See sim::SimChannel::Config.
    SimTime service_time = 0;
    std::size_t queue_capacity = 64;

    /// Convenience: lossless link with uniform delay in [lo, hi].
    static LinkSpec lossless(SimTime lo = 4 * kMillisecond, SimTime hi = 6 * kMillisecond);
    /// Convenience: Bernoulli loss with uniform delay in [lo, hi].
    static LinkSpec lossy(double p, SimTime lo = 4 * kMillisecond,
                          SimTime hi = 6 * kMillisecond);

    /// Materializes the model objects.
    sim::SimChannel::Config make_config() const;

    /// The channel's message lifetime L (bound on time-in-transit).
    SimTime max_lifetime() const;
};

}  // namespace bacp::runtime
