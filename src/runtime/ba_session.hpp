#pragma once

/// \file ba_session.hpp
/// Discrete-event runtime for the block-acknowledgment protocol family.
///
/// BaSession wires a pure sender/receiver core pair to two SimChannels and
/// drives a fixed-size transfer (config.count messages), implementing the
/// paper's timeout machinery in four flavors:
///
///   OracleSimple      SII action 2 with its oracle guard: fires exactly
///                     when the whole system is quiescent (empty event
///                     queue == empty channels + receiver can't proceed).
///   OraclePerMessage  SIV action 2' with its oracle guard; at quiescence
///                     every unacknowledged message is eligible at once.
///   SimpleTimer       SII realistic: one timer, restarted on every data
///                     transmission ("elapsed time since it last sent a
///                     data message"); on expiry resend na.
///   PerMessageTimer   SIV realistic: an expiry check per transmission;
///                     a message is resent only if it is still unacked and
///                     its last copy was sent a full timeout ago.
///
/// Timer timeouts default to L_SR + L_RS + max_ack_delay + margin, the
/// conservative bound that preserves assertion 8 ("at most one copy of
/// each data message or its acknowledgment is in transit").
///
/// The template accepts any of the three sender cores (Sender,
/// BoundedSender, HoleReuseSender) and either receiver.  Bounded cores
/// speak residues on the wire; the session keeps *ghost* unbounded
/// counters (never visible to the cores) for latency bookkeeping and
/// timer-aliasing guards, mirroring the paper's proof technique of
/// reasoning about true values that the implementation no longer stores.

#include <concepts>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ba/bounded_receiver.hpp"
#include "ba/bounded_sender.hpp"
#include "ba/hole_reuse_sender.hpp"
#include "ba/receiver.hpp"
#include "ba/sender.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "protocol/seqnum.hpp"
#include "runtime/ack_clip.hpp"
#include "runtime/ack_policy.hpp"
#include "runtime/link_spec.hpp"
#include "sim/metrics.hpp"
#include "sim/sim_channel.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sim/trace.hpp"
#include "verify/invariants.hpp"

namespace bacp::runtime {

enum class TimeoutMode { OracleSimple, OraclePerMessage, SimpleTimer, PerMessageTimer };

const char* to_string(TimeoutMode mode);

struct SessionConfig {
    Seq w = 8;
    Seq count = 1000;  // messages to transfer
    TimeoutMode timeout_mode = TimeoutMode::PerMessageTimer;
    SimTime timeout = 0;  // 0 = derive conservatively from links + ack policy
    AckPolicy ack_policy = AckPolicy::eager();
    LinkSpec data_link = LinkSpec::lossless();
    LinkSpec ack_link = LinkSpec::lossless();
    std::uint64_t seed = 1;
    SimTime deadline = 3600 * kSecond;
    std::size_t max_events = 50'000'000;
    bool record_trace = false;
    /// Check assertions 6-8 after every protocol step (unbounded cores
    /// over set-tracked channels only); violations throw AssertionError.
    bool check_invariants = false;
    /// Fast-retransmit extension: the receiver NAKs the message blocking
    /// vr after nak_threshold out-of-order arrivals; the sender resends
    /// it as soon as the previous copy has provably aged out of the
    /// channel (no full timeout wait).  Advisory: NAK loss or duplication
    /// affects only latency.  See DESIGN.md (extensions).
    bool enable_nak = false;
    Seq nak_threshold = 3;
    /// Variable-window extension (paper SVI: "it is possible ... to
    /// extend all our protocols to have variable size windows"): AIMD
    /// adaptation of the effective window limit within [1, w].  On each
    /// loss event (first retransmission per flight) the limit halves; it
    /// grows by one per acknowledged window otherwise.  Only meaningful
    /// when the data link models a bottleneck queue.
    bool adaptive_window = false;
    /// Open-loop workload: when > 0, messages become available one per
    /// interval (exponential gaps when poisson_arrivals) instead of all
    /// upfront; `count` still bounds the total.  Latency then measures
    /// arrival-to-delivery sojourn (queueing included), which is what the
    /// offered-load experiments (E17) need.
    SimTime arrival_interval = 0;
    bool poisson_arrivals = false;
};

template <typename SenderCore, typename ReceiverCore>
class BaSession {
public:
    explicit BaSession(SessionConfig config)
        : cfg_(std::move(config)),
          rng_data_(mix_seed(cfg_.seed, 0xd1)),
          rng_ack_(mix_seed(cfg_.seed, 0xac)),
          rng_arrivals_(mix_seed(cfg_.seed, 0xa7)),
          sender_(cfg_.w),
          receiver_(cfg_.w),
          data_ch_(sim_, rng_data_, data_config(), "C_SR"),
          ack_ch_(sim_, rng_ack_, ack_config(), "C_RS"),
          ack_flush_timer_(sim_, [this] { flush_ack(); }),
          simple_timer_(sim_, [this] { on_simple_timeout(); }),
          horizon_timer_(sim_, [this] { pump_send(); }) {
        timeout_ = cfg_.timeout > 0 ? cfg_.timeout : derived_timeout();
        data_ch_.set_receiver(
            [this](const proto::Message& m) { on_data_arrival(std::get<proto::Data>(m)); });
        ack_ch_.set_receiver([this](const proto::Message& m) {
            if (const auto* ack = std::get_if<proto::Ack>(&m)) {
                on_ack_arrival(*ack);
            } else {
                on_nak_arrival(std::get<proto::Nak>(m));
            }
        });
        if (cfg_.record_trace) {
            data_ch_.set_trace(&trace_);
            ack_ch_.set_trace(&trace_);
        }
        if (cfg_.timeout_mode == TimeoutMode::OracleSimple ||
            cfg_.timeout_mode == TimeoutMode::OraclePerMessage) {
            sim_.add_idle_hook([this] { return oracle_fire(); });
        }
    }

    BaSession(const BaSession&) = delete;
    BaSession& operator=(const BaSession&) = delete;

    /// Runs the transfer to completion (or deadline/event cap) and
    /// returns the measurements.
    sim::Metrics run() {
        metrics_.start_time = sim_.now();
        if (cfg_.arrival_interval > 0) {
            app_released_ = 0;
            schedule_arrival();
        } else {
            app_released_ = cfg_.count;
        }
        pump_send();
        sim_.run_until(cfg_.deadline, cfg_.max_events);
        if (metrics_.end_time == 0) metrics_.end_time = sim_.now();
        metrics_.sr_dropped = data_ch_.stats().dropped;
        metrics_.rs_dropped = ack_ch_.stats().dropped;
        return metrics_;
    }

    /// All messages delivered in order and fully acknowledged.
    bool completed() const {
        return sent_new_ == cfg_.count && delivered_ == cfg_.count && !sender_has_outstanding();
    }

    Seq delivered() const { return delivered_; }
    SimTime timeout_value() const { return timeout_; }
    const SenderCore& sender_core() const { return sender_; }
    const ReceiverCore& receiver_core() const { return receiver_; }
    const sim::Metrics& metrics() const { return metrics_; }
    const sim::TraceRecorder& trace() const { return trace_; }
    sim::Simulator& simulator() { return sim_; }
    const std::vector<std::string>& invariant_violations() const { return violations_; }

private:
    static constexpr bool kBoundedSender = requires(const SenderCore& s) { s.na_mod(); };
    static constexpr bool kBoundedReceiver = requires(const ReceiverCore& r) { r.nr_mod(); };
    static constexpr bool kInvariantCheckable =
        std::same_as<SenderCore, ba::Sender> && std::same_as<ReceiverCore, ba::Receiver>;

    static std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
        std::uint64_t s = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
        return splitmix64(s);
    }

    sim::SimChannel::Config data_config() const {
        LinkSpec spec = cfg_.data_link;
        spec.track_contents |= cfg_.check_invariants;
        return spec.make_config();
    }
    sim::SimChannel::Config ack_config() const {
        LinkSpec spec = cfg_.ack_link;
        spec.track_contents |= cfg_.check_invariants;
        return spec.make_config();
    }

    SimTime derived_timeout() const {
        return cfg_.data_link.max_lifetime() + cfg_.ack_link.max_lifetime() +
               cfg_.ack_policy.max_ack_delay() + kMillisecond;
    }

    // ---- uniform core access (bounded cores speak residues) -------------

    bool sender_has_outstanding() const {
        if constexpr (requires(const SenderCore& s) { s.unacked(); }) {
            return sender_.unacked() > 0;
        } else {
            return sender_.outstanding() > 0;
        }
    }

    /// Ghost (true, unbounded) value of na.
    Seq ghost_na() const {
        if constexpr (kBoundedSender) {
            return ghost_na_;
        } else {
            return sender_.na();
        }
    }

    /// Wire field for the message with true sequence number \p true_seq.
    Seq wire_of(Seq true_seq) const {
        if constexpr (kBoundedSender) {
            return true_seq % sender_.domain();
        } else {
            return true_seq;
        }
    }

    /// True sequence number of a resend-candidate wire field.
    Seq true_of(Seq field) const {
        if constexpr (kBoundedSender) {
            return ghost_na_ + proto::mod_offset(sender_.na_mod(), field, sender_.domain());
        } else {
            return field;
        }
    }

    Seq receiver_pending() const {
        if constexpr (kBoundedReceiver) {
            return receiver_.pending();
        } else {
            return receiver_.vr() - receiver_.nr();
        }
    }

    // ---- sender ----------------------------------------------------------

    /// Send-horizon rule.  When an acknowledgment covers a message i whose
    /// last copy may still be in transit (last_tx(i) + L_SR > now -- only
    /// possible after retransmissions), advancing the window past i + w
    /// would let the receiver's nr outrun the in-flight copy by more than
    /// w, and under bounded (mod 2w) sequence numbers the late copy would
    /// alias into a *future* sequence number at the receiver.  Capping
    /// ns <= i + w until the copy has provably aged out preserves
    /// invariant 11 (v < nr + w) for every arrival.  This is the
    /// per-message analogue of TCP's quiet-time rule.
    void note_horizon(Seq true_seq) {
        const auto it = last_tx_.find(true_seq);
        if (it == last_tx_.end()) return;
        const SimTime copy_gone = it->second + cfg_.data_link.max_lifetime();
        if (copy_gone <= sim_.now()) return;
        horizon_until_ = std::max(horizon_until_, copy_gone);
        horizon_cap_ = std::min(horizon_cap_, true_seq + cfg_.w);
    }

    bool horizon_blocks() {
        if (horizon_until_ <= sim_.now()) {
            horizon_cap_ = kNoCap;  // expired
            return false;
        }
        return sent_new_ >= horizon_cap_;
    }

    /// Open-loop arrival process: releases one message per interval.
    void schedule_arrival() {
        if (app_released_ >= cfg_.count) return;
        const SimTime gap =
            cfg_.poisson_arrivals
                ? static_cast<SimTime>(
                      rng_arrivals_.exponential(static_cast<double>(cfg_.arrival_interval)))
                : cfg_.arrival_interval;
        sim_.schedule_after(gap, [this] {
            arrival_time_.emplace(app_released_, sim_.now());
            ++app_released_;
            pump_send();
            schedule_arrival();
        });
    }

    void pump_send() {
        while (sent_new_ < cfg_.count && sent_new_ < app_released_ &&
               sender_.can_send_new()) {
            if (horizon_blocks()) {
                if (!horizon_timer_.armed()) horizon_timer_.restart(horizon_until_ - sim_.now());
                return;
            }
            const proto::Data msg = sender_.send_new();
            const Seq true_seq = sent_new_++;
            first_send_.emplace(true_seq, sim_.now());
            transmit(msg, true_seq, /*retx=*/false);
        }
    }

    /// Multiplicative decrease, once per loss event: a retransmission of
    /// a message sent before the previous decrease does not halve again.
    void window_on_loss(Seq true_seq) {
        if constexpr (requires(SenderCore& s) { s.set_window_limit(Seq{1}); }) {
            if (!cfg_.adaptive_window) return;
            if (true_seq < recovery_mark_) return;  // same loss event
            recovery_mark_ = sent_new_;
            const Seq halved = std::max<Seq>(1, sender_.window_limit() / 2);
            sender_.set_window_limit(halved);
            acked_since_increase_ = 0;
        }
    }

    /// Additive increase: +1 after a full effective window is acked.
    void window_on_ack_progress(Seq advance) {
        if constexpr (requires(SenderCore& s) { s.set_window_limit(Seq{1}); }) {
            if (!cfg_.adaptive_window || advance == 0) return;
            acked_since_increase_ += advance;
            if (acked_since_increase_ >= sender_.window_limit() &&
                sender_.window_limit() < cfg_.w) {
                sender_.set_window_limit(sender_.window_limit() + 1);
                acked_since_increase_ = 0;
            }
        }
    }

    void transmit(const proto::Data& msg, Seq true_seq, bool retx) {
        if (retx) {
            ++metrics_.data_retx;
            window_on_loss(true_seq);
        } else {
            ++metrics_.data_new;
        }
        if (cfg_.record_trace) {
            trace_.record(sim_.now(), "S", std::string(retx ? "resend " : "send ") +
                                               proto::to_string(msg));
        }
        last_tx_[true_seq] = sim_.now();
        data_ch_.send(msg);
        switch (cfg_.timeout_mode) {
            case TimeoutMode::SimpleTimer:
                simple_timer_.restart(timeout_);
                break;
            case TimeoutMode::PerMessageTimer:
                sim_.schedule_after(timeout_, [this, true_seq] { per_message_fire(true_seq); });
                break;
            default:
                break;  // oracle modes use the idle hook
        }
    }

    /// Feeds one block ack to the core, tolerating duplicate coverage.
    ///
    /// With realistic per-message timers (SIV) the sender cannot evaluate
    /// the "(i < nr || !rcvd[i])" conjunct of timeout(i), so it may resend
    /// a message the receiver buffered out of order; the resulting
    /// duplicate acknowledgments can overlap ranges the sender already
    /// processed.  Exactly as a TCP SACK processor does, the session clips
    /// the incoming range to the still-unacknowledged runs before handing
    /// it to the strict core.  Under the oracle modes and the SII single
    /// timer no clipping ever occurs (the paper's assertion 8 holds) --
    /// the invariant checker enforces that in tests.
    void deliver_ack(const proto::Ack& ack) {
        std::vector<proto::Ack> runs;
        if constexpr (kBoundedSender) {
            runs = clip_ack_bounded(sender_, ack);
        } else {
            runs = clip_ack_unbounded(sender_, ack);
        }
        for (const auto& run : runs) {
            if constexpr (kBoundedSender) {
                const Seq na_before = sender_.na_mod();
                const Seq lo_true =
                    ghost_na_ + proto::mod_offset(na_before, run.lo, sender_.domain());
                const Seq hi_true =
                    ghost_na_ + proto::mod_offset(na_before, run.hi, sender_.domain());
                for (Seq t = lo_true; t <= hi_true; ++t) note_horizon(t);
                sender_.on_ack(run);
                const Seq advance =
                    proto::mod_offset(na_before, sender_.na_mod(), sender_.domain());
                ghost_na_ += advance;
                window_on_ack_progress(advance);
            } else {
                for (Seq t = run.lo; t <= run.hi; ++t) note_horizon(t);
                const Seq na_before = sender_.na();
                sender_.on_ack(run);
                window_on_ack_progress(sender_.na() - na_before);
            }
        }
    }

    void on_ack_arrival(const proto::Ack& ack) {
        ++metrics_.acks_received;
        if (cfg_.record_trace) trace_.record(sim_.now(), "S", "rcv " + proto::to_string(ack));
        deliver_ack(ack);
        if (cfg_.timeout_mode == TimeoutMode::SimpleTimer && !sender_has_outstanding()) {
            simple_timer_.cancel();
        }
        pump_send();
        rescan_matured();
        maybe_check_invariants();
    }

    void on_simple_timeout() {
        if (!sender_has_outstanding()) return;
        resend_lowest();
    }

    void resend_lowest() {
        Seq field;
        if constexpr (kBoundedSender) {
            field = sender_.na_mod();
        } else {
            // ackd[na] is false by invariant 7, so na is always resendable.
            field = [&] {
                if constexpr (requires(const SenderCore& s) { s.na(); }) return sender_.na();
                else return Seq{0};
            }();
        }
        transmit(sender_.resend(field), true_of(field), /*retx=*/true);
    }

    /// Realistic SIV resend gate.  The sender may resend a matured
    /// message i only when it can prove the receiver is not holding i
    /// buffered beyond nr (the "(i < nr || !rcvd[i])" conjunct of
    /// timeout(i), which it cannot observe directly):
    ///
    ///   - i == na: if the receiver had na buffered at nr == na it would
    ///     have acknowledged within the ack-delay bound, and that ack
    ///     would have arrived inside the conservative timeout;
    ///   - an ack hole above i exists: in-order acking means the receiver
    ///     accepted i (i < nr) and only the ack was lost.
    ///
    /// This gate is what keeps every in-transit data copy m unacknowledged
    /// at the sender (assertion 8), which pins na <= m and hence
    /// nr <= m + w -- without it a stale copy can outlive the SV residue
    /// reconstruction window and alias into a future sequence number.
    bool resend_gate(Seq true_seq, Seq field) const {
        return true_seq == ghost_na() || sender_.acked_beyond(field);
    }

    bool matured(Seq true_seq) const {
        const auto it = last_tx_.find(true_seq);
        return it != last_tx_.end() && sim_.now() - it->second >= timeout_;
    }

    void per_message_fire(Seq true_seq) {
        if (true_seq < ghost_na()) return;  // acknowledged meanwhile
        if (!matured(true_seq)) return;     // a newer copy owns the timer
        const Seq field = wire_of(true_seq);
        if (!sender_.can_resend(field)) return;      // acknowledged (hole)
        if (!resend_gate(true_seq, field)) return;   // reconsidered on next ack
        transmit(sender_.resend(field), true_seq, /*retx=*/true);
    }

    /// SIV's speed advantage: an arriving ack can unblock the resend gate
    /// for already-matured messages; they go out immediately, with no
    /// timeout period between successive resends (paper SIV: "successive
    /// resendings of different messages do not have to be separated by
    /// any specific time period").
    void rescan_matured() {
        if (cfg_.timeout_mode != TimeoutMode::PerMessageTimer) return;
        for (const Seq field : sender_.resend_candidates()) {
            const Seq true_seq = true_of(field);
            if (matured(true_seq) && resend_gate(true_seq, field)) {
                transmit(sender_.resend(field), true_seq, /*retx=*/true);
            }
        }
    }

    /// Oracle evaluation of timeout(i)'s receiver conjunct: returns the
    /// NEGATION of "(i < nr || !rcvd[i])", i.e. true when the receiver
    /// holds i buffered beyond nr and will acknowledge it without help.
    bool receiver_can_still_ack(Seq field) const {
        if constexpr (kBoundedReceiver) {
            if (proto::wire_before_nr(field, receiver_.nr_mod(), receiver_.window())) {
                return false;  // i < nr: accepted; resend is the recovery path
            }
            return receiver_.rcvd(field);
        } else {
            return field < receiver_.nr() ? false : receiver_.rcvd(field);
        }
    }

    bool oracle_fire() {
        if (!sender_has_outstanding()) return false;
        // At an idle point the channels are provably empty (the *SR/*RS
        // conjuncts of the guards hold trivially), but the receiver may
        // hold out-of-order messages it cannot acknowledge yet -- the
        // "(i < nr || !rcvd[i])" conjunct must still be consulted.
        BACP_ASSERT(data_ch_.in_flight() == 0 && ack_ch_.in_flight() == 0);
        if (cfg_.timeout_mode == TimeoutMode::OracleSimple) {
            // Paper SII guard: na != ns, channels empty, !rcvd[nr].  At an
            // idle point an eager/flushed receiver has nr == vr and
            // !rcvd[vr], so the remaining conjuncts hold automatically.
            resend_lowest();
            return true;
        }
        bool any = false;
        for (const Seq field : sender_.resend_candidates()) {
            if (receiver_can_still_ack(field)) continue;  // guard blocks resend
            transmit(sender_.resend(field), true_of(field), /*retx=*/true);
            any = true;
        }
        // na always passes the guard (na < nr, or na == nr with !rcvd[nr]
        // at idle), so progress is guaranteed.
        BACP_ASSERT_MSG(any, "oracle timeout found no eligible candidate");
        return true;
    }

    // ---- NAK fast retransmit (extension) -----------------------------------

    /// Sender side: a NAK names a message the receiver provably lacks --
    /// the "(i < nr || !rcvd[i])" oracle conjunct, receiver-supplied.
    /// The only remaining obligation before resending is the one-copy
    /// rule: the previous copy must have aged out of the data channel.
    void on_nak_arrival(const proto::Nak& nak) {
        ++metrics_.naks_received;
        if (cfg_.record_trace) {
            trace_.record(sim_.now(), "S", "rcv N(" + std::to_string(nak.seq) + ")");
        }
        Seq true_seq;
        if constexpr (kBoundedSender) {
            if (nak.seq >= sender_.domain()) return;  // malformed
            const Seq off = proto::mod_offset(sender_.na_mod(), nak.seq, sender_.domain());
            if (off >= sender_.outstanding()) return;  // stale NAK
            true_seq = ghost_na_ + off;
        } else {
            true_seq = nak.seq;
        }
        const Seq field = wire_of(true_seq);
        if (!sender_.can_resend(field)) return;
        const auto it = last_tx_.find(true_seq);
        if (it == last_tx_.end()) return;
        if (sim_.now() - it->second < cfg_.data_link.max_lifetime()) return;  // copy may live
        ++metrics_.fast_retx;
        transmit(sender_.resend(field), true_seq, /*retx=*/true);
    }

    /// Receiver side: after nak_threshold out-of-order arrivals without
    /// progress, request the message blocking vr.
    void maybe_send_nak() {
        if (!cfg_.enable_nak) return;
        if (ooo_since_advance_ < cfg_.nak_threshold) return;
        const Seq missing_field = [&] {
            if constexpr (kBoundedReceiver) {
                return receiver_.vr_mod();
            } else {
                return receiver_.vr();
            }
        }();
        // Rate-limit: one NAK per blocked position per NAK round trip.
        if (last_nak_field_ == missing_field &&
            sim_.now() - last_nak_time_ < cfg_.ack_link.max_lifetime() +
                                              cfg_.data_link.max_lifetime()) {
            return;
        }
        last_nak_field_ = missing_field;
        last_nak_time_ = sim_.now();
        ++metrics_.naks_sent;
        if (cfg_.record_trace) {
            trace_.record(sim_.now(), "R", "nak N(" + std::to_string(missing_field) + ")");
        }
        ack_ch_.send(proto::Nak{missing_field});
    }

    // ---- receiver ---------------------------------------------------------

    void on_data_arrival(const proto::Data& msg) {
        ++metrics_.data_received;
        if (cfg_.record_trace) trace_.record(sim_.now(), "R", "rcv " + proto::to_string(msg));
        const auto dup = receiver_.on_data(msg);
        if (dup) {
            ++metrics_.duplicates;
            ++metrics_.dup_acks;
            if (cfg_.record_trace) {
                trace_.record(sim_.now(), "R", "dup-ack " + proto::to_string(*dup));
            }
            ack_ch_.send(*dup);
            maybe_check_invariants();
            return;
        }
        // Action 4, repeated: deliver the contiguous run in order.
        bool advanced = false;
        while (receiver_.can_advance()) {
            advanced = true;
            receiver_.advance();
            const Seq true_seq = ghost_vr_++;
            ++delivered_;
            ++metrics_.delivered;
            // Open loop measures arrival-to-delivery sojourn; closed loop
            // measures first-transmission-to-delivery.
            const auto arrived = arrival_time_.find(true_seq);
            if (arrived != arrival_time_.end()) {
                metrics_.latency.add(sim_.now() - arrived->second);
                arrival_time_.erase(arrived);
                first_send_.erase(true_seq);
            } else {
                const auto sent = first_send_.find(true_seq);
                if (sent != first_send_.end()) {
                    metrics_.latency.add(sim_.now() - sent->second);
                    first_send_.erase(sent);
                }
            }
            if (delivered_ == cfg_.count) metrics_.end_time = sim_.now();
        }
        if (advanced) {
            ooo_since_advance_ = 0;
        } else {
            ++ooo_since_advance_;  // buffered beyond a gap
            maybe_send_nak();
        }
        // Action 5 scheduling per the ack policy.
        const Seq pending = receiver_pending();
        if (pending >= cfg_.ack_policy.threshold) {
            flush_ack();
        } else if (pending > 0 && !ack_flush_timer_.armed()) {
            ack_flush_timer_.restart(cfg_.ack_policy.flush_delay);
        }
        maybe_check_invariants();
    }

    void flush_ack() {
        ack_flush_timer_.cancel();
        if (receiver_pending() == 0) return;
        const proto::Ack ack = receiver_.make_ack();
        ++metrics_.acks_sent;
        if (cfg_.record_trace) trace_.record(sim_.now(), "R", "ack " + proto::to_string(ack));
        ack_ch_.send(ack);
        maybe_check_invariants();
    }

    // ---- verification hook -------------------------------------------------

    void maybe_check_invariants() {
        if constexpr (kInvariantCheckable) {
            if (!cfg_.check_invariants) return;
            // The realistic per-message timer mode legitimately relaxes
            // assertion 8's channel conjuncts (see deliver_ack).
            const auto strictness = cfg_.timeout_mode == TimeoutMode::PerMessageTimer
                                        ? verify::ChannelStrictness::Relaxed
                                        : verify::ChannelStrictness::Strict;
            const auto report = verify::check_invariants(sender_, receiver_, data_ch_.snapshot(),
                                                         ack_ch_.snapshot(), strictness);
            if (!report.ok()) {
                violations_.insert(violations_.end(), report.violations.begin(),
                                   report.violations.end());
                BACP_ASSERT_MSG(false, "invariant violated during DES run: " + report.to_string());
            }
        }
    }

    SessionConfig cfg_;
    sim::Simulator sim_;
    Rng rng_data_;
    Rng rng_ack_;
    Rng rng_arrivals_;
    sim::TraceRecorder trace_;
    SenderCore sender_;
    ReceiverCore receiver_;
    sim::SimChannel data_ch_;
    sim::SimChannel ack_ch_;
    sim::Timer ack_flush_timer_;
    sim::Timer simple_timer_;
    sim::Timer horizon_timer_;
    sim::Metrics metrics_;

    static constexpr Seq kNoCap = ~Seq{0};
    SimTime timeout_ = 0;
    SimTime horizon_until_ = 0;  // send-horizon expiry
    Seq horizon_cap_ = kNoCap;   // ns may not exceed this before expiry
    Seq sent_new_ = 0;    // new messages handed to the channel (== ghost ns)
    Seq delivered_ = 0;   // in-order deliveries at the receiver (== ghost vr)
    Seq ghost_na_ = 0;    // true na for bounded senders
    Seq ghost_vr_ = 0;    // true vr for bounded receivers
    Seq app_released_ = 0;  // open loop: messages made available so far
    std::unordered_map<Seq, SimTime> arrival_time_;  // open loop only
    std::unordered_map<Seq, SimTime> first_send_;  // true seq -> first tx time
    std::unordered_map<Seq, SimTime> last_tx_;     // true seq -> last tx time
    std::vector<std::string> violations_;

    // NAK extension state.
    Seq ooo_since_advance_ = 0;   // out-of-order arrivals since vr moved
    Seq last_nak_field_ = ~Seq{0};
    SimTime last_nak_time_ = 0;

    // Adaptive-window (AIMD) state.
    Seq recovery_mark_ = 0;         // loss events below this are "the same"
    Seq acked_since_increase_ = 0;
};

/// SII/SIV protocol with unbounded sequence numbers.
using UnboundedSession = BaSession<ba::Sender, ba::Receiver>;
/// SV fully bounded protocol (residues mod 2w on the wire).
using BoundedSession = BaSession<ba::BoundedSender, ba::BoundedReceiver>;
/// SVI hole-reuse extension (unbounded wire sequence numbers).
using HoleReuseSession = BaSession<ba::HoleReuseSender, ba::Receiver>;

}  // namespace bacp::runtime
