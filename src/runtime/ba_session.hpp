#pragma once

/// \file ba_session.hpp
/// Block-acknowledgment sessions: the runtime::Engine driving the
/// ba::EngineCore adapter over the paper's sender/receiver cores.
/// All transport machinery (channels, the four TimeoutModes, metrics,
/// tracing) lives in engine.hpp; the BA-specific policies (ghost
/// counters, ack clipping, send horizon, resend gate, NAK, AIMD) live in
/// ba/engine_core.hpp.

#include "ba/engine_core.hpp"
#include "runtime/engine.hpp"

namespace bacp::runtime {

template <typename SenderCore, typename ReceiverCore>
using BaSession = Engine<ba::EngineCore<SenderCore, ReceiverCore>>;

/// SII/SIV protocol with unbounded sequence numbers.
using UnboundedSession = BaSession<ba::Sender, ba::Receiver>;
/// SV fully bounded protocol (residues mod 2w on the wire).
using BoundedSession = BaSession<ba::BoundedSender, ba::BoundedReceiver>;
/// SVI hole-reuse extension (unbounded wire sequence numbers).
using HoleReuseSession = BaSession<ba::HoleReuseSender, ba::Receiver>;

}  // namespace bacp::runtime
