#include "workload/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"

namespace bacp::workload {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
    BACP_ASSERT_MSG(cells.size() == headers_.size(), "row width mismatch");
    rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
    }
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size()) {
                os << std::string(widths[c] - cells[c].size() + 2, ' ');
            }
        }
        os << "\n";
    };
    emit(headers_);
    std::size_t total = 0;
    for (const auto w : widths) total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto& row : rows_) emit(row);
    return os.str();
}

namespace {
std::string csv_cell(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (const char c : cell) {
        if (c == '"') quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}
}  // namespace

std::string Table::to_csv() const {
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0) os << ',';
            os << csv_cell(cells[c]);
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
    return os.str();
}

void Table::print(const std::string& title) const {
    std::printf("\n== %s ==\n%s", title.c_str(), to_string().c_str());
    std::fflush(stdout);
}

std::string fmt(double value, int digits) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
    return buffer;
}

}  // namespace bacp::workload
