#pragma once

/// \file report.hpp
/// Fixed-width table printer for benchmark harness output.  Keeps every
/// experiment's "figure" in a uniform, diffable text form (see
/// EXPERIMENTS.md for the recorded outputs).

#include <iosfwd>
#include <string>
#include <vector>

namespace bacp::workload {

class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Adds a row; each cell is pre-rendered text.
    void add_row(std::vector<std::string> cells);

    /// Renders with aligned columns.
    std::string to_string() const;

    /// RFC-4180-ish CSV rendering (quotes cells containing commas/quotes).
    std::string to_csv() const;

    /// Convenience: prints to stdout with a title line.
    void print(const std::string& title) const;

    std::size_t rows() const { return rows_.size(); }

    /// Raw cells, for machine-readable re-renderings (bench/json_out.hpp).
    const std::vector<std::string>& headers() const { return headers_; }
    const std::vector<std::vector<std::string>>& cells() const { return rows_; }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with \p digits fractional digits.
std::string fmt(double value, int digits = 2);

}  // namespace bacp::workload
