#include "workload/scenario.hpp"

#include "common/stats.hpp"
#include "workload/report.hpp"

#include "runtime/abp_session.hpp"
#include "runtime/ba_session.hpp"
#include "runtime/gbn_session.hpp"
#include "runtime/sr_session.hpp"
#include "runtime/tc_session.hpp"

namespace bacp::workload {

const char* to_string(Protocol protocol) {
    switch (protocol) {
        case Protocol::BlockAck: return "block-ack";
        case Protocol::BlockAckBounded: return "block-ack-bounded";
        case Protocol::BlockAckHoleReuse: return "block-ack-hole-reuse";
        case Protocol::GoBackN: return "go-back-n";
        case Protocol::SelectiveRepeat: return "selective-repeat";
        case Protocol::AlternatingBit: return "alternating-bit";
        case Protocol::TimeConstrained: return "time-constrained";
    }
    return "?";
}

namespace {

runtime::LinkSpec make_link(const Scenario& s, double loss) {
    runtime::LinkSpec spec;
    if (s.burst_loss) {
        spec.loss_kind = runtime::LinkSpec::Loss::GilbertElliott;
        // Parameterize the chain so its steady-state loss matches `loss`
        // with bursty structure: bad state loses half its messages.
        spec.ge_loss_good = 0.0;
        spec.ge_loss_bad = 0.5;
        spec.ge_p_bad_to_good = 0.2;
        // pi_bad * 0.5 = loss  =>  pi_bad = 2*loss; p_gb = p_bg*pi/(1-pi).
        const double pi_bad = std::min(0.9, 2.0 * loss);
        spec.ge_p_good_to_bad = pi_bad >= 0.9 ? 1.0 : 0.2 * pi_bad / (1.0 - pi_bad);
    } else if (loss > 0.0) {
        spec.loss_kind = runtime::LinkSpec::Loss::Bernoulli;
        spec.loss_p = loss;
    }
    spec.delay_kind = s.delay_lo == s.delay_hi ? runtime::LinkSpec::Delay::Fixed
                                               : runtime::LinkSpec::Delay::Uniform;
    spec.delay_lo = s.delay_lo;
    spec.delay_hi = s.delay_hi;
    spec.fifo = s.fifo;
    return spec;
}

// The data link optionally carries the bottleneck-queue model; the ack
// channel is assumed thin (acks are small).
runtime::LinkSpec make_data_link(const Scenario& s) {
    runtime::LinkSpec spec = make_link(s, s.loss);
    spec.service_time = s.service_time;
    spec.queue_capacity = s.queue_capacity;
    return spec;
}

/// Every protocol runs from the same EngineConfig; only the core type
/// (and its Options) varies per Protocol.
runtime::EngineConfig engine_config(const Scenario& s) {
    runtime::EngineConfig config;
    config.w = s.w;
    config.count = s.count;
    config.timeout_mode = s.timeout_mode;
    config.ack_policy = s.ack_policy;
    config.data_link = make_data_link(s);
    config.ack_link = make_link(s, s.effective_ack_loss());
    config.seed = s.seed;
    config.check_invariants = s.check_invariants;
    config.enable_nak = s.enable_nak;
    config.adaptive_window = s.adaptive_window;
    config.arrival_interval = s.arrival_interval;
    config.poisson_arrivals = s.poisson_arrivals;
    return config;
}

template <typename Session>
ScenarioResult run_session(const Scenario& s, typename Session::Options options = {}) {
    Session session(engine_config(s), options);
    ScenarioResult result;
    result.metrics = session.run();
    result.completed = session.completed();
    return result;
}

}  // namespace

ScenarioResult run_scenario(const Scenario& s) {
    switch (s.protocol) {
        case Protocol::BlockAck:
            return run_session<runtime::UnboundedSession>(s);
        case Protocol::BlockAckBounded:
            return run_session<runtime::BoundedSession>(s);
        case Protocol::BlockAckHoleReuse:
            return run_session<runtime::HoleReuseSession>(s);
        case Protocol::GoBackN:
            return run_session<runtime::GbnSession>(s);
        case Protocol::SelectiveRepeat:
            return run_session<runtime::SrSession>(s);
        case Protocol::AlternatingBit:
            return run_session<runtime::AbpSession>(s);
        case Protocol::TimeConstrained:
            return run_session<runtime::TcSession>(s, {.domain = s.tc_domain});
    }
    return {};
}

AggregateResult run_replicated(Scenario scenario, int replications) {
    AggregateResult aggregate;
    aggregate.total_runs = replications;
    RunningStats throughput;
    for (int i = 0; i < replications; ++i) {
        scenario.seed = scenario.seed * 6364136223846793005ULL + 1442695040888963407ULL;
        const auto result = run_scenario(scenario);
        if (!result.completed) continue;
        ++aggregate.completed_runs;
        throughput.add(result.metrics.throughput_msgs_per_sec());
        aggregate.mean_acks_per_msg += result.metrics.acks_per_delivered();
        aggregate.mean_retx_fraction += result.metrics.retx_fraction();
        aggregate.mean_latency_p50 += static_cast<double>(result.metrics.latency.quantile(0.5));
        aggregate.mean_latency_p99 += static_cast<double>(result.metrics.latency.quantile(0.99));
    }
    if (aggregate.completed_runs > 0) {
        const double n = aggregate.completed_runs;
        aggregate.mean_throughput = throughput.mean();
        aggregate.sd_throughput = throughput.stddev();
        aggregate.min_throughput = throughput.min();
        aggregate.max_throughput = throughput.max();
        aggregate.mean_acks_per_msg /= n;
        aggregate.mean_retx_fraction /= n;
        aggregate.mean_latency_p50 /= n;
        aggregate.mean_latency_p99 /= n;
    }
    return aggregate;
}

std::string AggregateResult::throughput_summary() const {
    return fmt(mean_throughput, 1) + " +- " + fmt(sd_throughput, 1) + " [" +
           fmt(min_throughput, 1) + "," + fmt(max_throughput, 1) + "] msg/s over " +
           std::to_string(completed_runs) + "/" + std::to_string(total_runs) + " runs";
}

}  // namespace bacp::workload
