#pragma once

/// \file scenario.hpp
/// One-call experiment runner: describe a protocol + link + workload,
/// get Metrics back.  Benches, tests and examples all sweep through this
/// entry point so that every protocol is measured under identical channel
/// conditions and seeds.

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "runtime/ack_policy.hpp"
#include "runtime/link_spec.hpp"
#include "runtime/timeout_mode.hpp"
#include "sim/metrics.hpp"

namespace bacp::workload {

enum class Protocol {
    BlockAck,           // SII/SIV unbounded cores (timeout_mode selects 2 vs 2')
    BlockAckBounded,    // SV fully bounded cores
    BlockAckHoleReuse,  // SVI extension sender
    GoBackN,            // cumulative acks, unbounded seqnums
    SelectiveRepeat,    // ack per message
    AlternatingBit,     // stop-and-wait over FIFO
    TimeConstrained,    // Stenning / Shankar-Lam spacing sender
};

const char* to_string(Protocol protocol);

struct Scenario {
    Protocol protocol = Protocol::BlockAck;
    Seq w = 8;
    Seq count = 2000;
    double loss = 0.0;       // data-channel loss probability
    double ack_loss = -1.0;  // ack-channel loss; -1 = same as loss
    SimTime delay_lo = 4 * kMillisecond;
    SimTime delay_hi = 6 * kMillisecond;
    bool fifo = false;       // force in-order channels
    bool burst_loss = false; // Gilbert-Elliott instead of Bernoulli
    /// nullopt = each protocol's classic timer discipline (see
    /// runtime::EngineConfig::timeout_mode); applies to every protocol.
    std::optional<runtime::TimeoutMode> timeout_mode;
    runtime::AckPolicy ack_policy = runtime::AckPolicy::eager();
    Seq tc_domain = 16;      // TimeConstrained: sequence-number domain N
    std::uint64_t seed = 1;
    bool check_invariants = false;  // BlockAck (unbounded) only
    bool enable_nak = false;        // BlockAck variants: fast retransmit
    bool adaptive_window = false;   // BlockAck variants: AIMD window
    SimTime arrival_interval = 0;   // BlockAck variants: open-loop arrivals
    bool poisson_arrivals = false;
    SimTime service_time = 0;       // data-link bottleneck (0 = off)
    std::size_t queue_capacity = 64;

    /// Derived ack-channel loss.
    double effective_ack_loss() const { return ack_loss < 0 ? loss : ack_loss; }
};

struct ScenarioResult {
    sim::Metrics metrics;
    bool completed = false;
};

/// Runs the scenario to completion (or its internal deadline).
ScenarioResult run_scenario(const Scenario& scenario);

/// Aggregates several replications (different seeds) of one scenario.
struct AggregateResult {
    double mean_throughput = 0.0;   // msgs/sec
    double sd_throughput = 0.0;     // sample standard deviation
    double min_throughput = 0.0;
    double max_throughput = 0.0;
    double mean_acks_per_msg = 0.0;
    double mean_retx_fraction = 0.0;
    double mean_latency_p50 = 0.0;  // ns
    double mean_latency_p99 = 0.0;  // ns
    int completed_runs = 0;
    int total_runs = 0;

    /// "mean +- sd [min,max] msg/s over k/n runs".
    std::string throughput_summary() const;
};
AggregateResult run_replicated(Scenario scenario, int replications);

}  // namespace bacp::workload
