#include "ba/bounded_sender.hpp"

#include "common/assert.hpp"
#include "protocol/seqnum.hpp"

namespace bacp::ba {

using proto::mod_add;
using proto::mod_offset;

BoundedSender::BoundedSender(Seq w)
    : w_(w), n_(proto::domain_for_window(w)), limit_(w), ackd_(w, false) {
    BACP_ASSERT_MSG(w > 0, "window size must be positive");
}

void BoundedSender::set_window_limit(Seq limit) {
    BACP_ASSERT_MSG(limit >= 1 && limit <= w_, "window limit must be in [1, w]");
    limit_ = limit;
}

Seq BoundedSender::outstanding() const {
    // True difference ns - na lies in [0, w] (invariant 6), so the residue
    // difference is exact.
    return mod_offset(na_, ns_, n_);
}

proto::Data BoundedSender::send_new() {
    BACP_ASSERT_MSG(can_send_new(), "action 0 executed while disabled");
    const proto::Data msg{ns_};
    ns_ = mod_add(ns_, 1, n_);
    return msg;
}

void BoundedSender::on_ack(const proto::Ack& ack) {
    BACP_ASSERT_MSG(ack.lo < n_ && ack.hi < n_, "ack residue outside domain");
    // Invariants 9/10 bound the true values by na <= i <= j < na + w, so
    // offsets from na are exact and lie in [0, w).
    const Seq di = mod_offset(na_, ack.lo, n_);
    const Seq dj = mod_offset(na_, ack.hi, n_);
    BACP_ASSERT_MSG(di <= dj, "ack with lo > hi (invariant 9/10 violated)");
    BACP_ASSERT_MSG(dj < w_, "ack beyond window (invariant 9/10 violated)");
    BACP_ASSERT_MSG(dj < outstanding(), "ack beyond ns (invariant 8 violated)");
    for (Seq k = di; k <= dj; ++k) {
        const Seq slot = mod_add(na_, k, n_) % w_;
        BACP_ASSERT_MSG(!ackd_[slot], "double acknowledgment (invariant 8 violated)");
        ackd_[slot] = true;
    }
    // Advance na over the acknowledged prefix, releasing each slot
    // (paper: "ackd[na mod w] is set to false in action 1'").
    while (ackd_[na_ % w_]) {
        ackd_[na_ % w_] = false;
        na_ = mod_add(na_, 1, n_);
    }
}

bool BoundedSender::can_resend(Seq i_mod) const {
    if (i_mod >= n_) return false;
    const Seq off = mod_offset(na_, i_mod, n_);
    return off < outstanding() && !ackd_[i_mod % w_];
}

void BoundedSender::resend_candidates(std::vector<Seq>& out) const {
    const Seq count = outstanding();
    for (Seq k = 0; k < count; ++k) {
        const Seq i_mod = mod_add(na_, k, n_);
        if (!ackd_[i_mod % w_]) out.push_back(i_mod);
    }
}

std::vector<Seq> BoundedSender::resend_candidates() const {
    std::vector<Seq> out;
    resend_candidates(out);
    return out;
}

bool BoundedSender::acked_beyond(Seq i_mod) const {
    BACP_ASSERT(i_mod < n_);
    const Seq start = mod_offset(na_, i_mod, n_) + 1;
    const Seq count = outstanding();
    for (Seq k = start; k < count; ++k) {
        if (ackd_[mod_add(na_, k, n_) % w_]) return true;
    }
    return false;
}

proto::Data BoundedSender::resend(Seq i_mod) const {
    BACP_ASSERT_MSG(can_resend(i_mod), "resend of a non-outstanding message");
    return proto::Data{i_mod};
}

}  // namespace bacp::ba
