#pragma once

/// \file receiver.hpp
/// Block-acknowledgment receiver, paper SII (unbounded sequence numbers).
///
/// Paper actions (process R):
///   3: rcv v       -> if v < nr  -> send (v, v)            (duplicate ack)
///                     [] v >= nr -> rcvd[v] := true
///   4: rcvd[vr]    -> vr := vr + 1
///   5: nr < vr     -> send (nr, vr - 1); nr := vr
///
/// The receiver accepts data out of order but acknowledges strictly in
/// order; action 5 emits one *block* acknowledgment covering everything
/// contiguous since the last acknowledgment.  Delaying action 5 while more
/// data arrives yields bigger blocks -- that is the throughput advantage
/// over ack-per-message selective repeat.  The choice of *when* to fire
/// action 5 is left to the runtime (AckPolicy); the core only exposes the
/// guard.

#include <compare>
#include <optional>

#include "common/types.hpp"
#include "protocol/message.hpp"
#include "protocol/window.hpp"

namespace bacp::ba {

class Receiver {
public:
    explicit Receiver(Seq w);

    Seq window() const { return w_; }
    /// Next message to be accepted (acknowledged in order).
    Seq nr() const { return nr_; }
    /// Upper bound of the contiguously received, not-yet-acknowledged run.
    Seq vr() const { return vr_; }
    /// Logical rcvd[m] of the paper's infinite array.
    bool rcvd(Seq m) const { return rcvd_.test(m); }

    /// Action 3.  Returns the duplicate acknowledgment (v, v) when the
    /// message was accepted previously, std::nullopt otherwise.
    /// Precondition (invariant 8/11): v < nr + w.
    std::optional<proto::Ack> on_data(const proto::Data& msg);

    /// Guard of action 4.
    bool can_advance() const { return rcvd_.test(vr_); }
    /// Action 4.
    void advance();

    /// Guard of action 5.
    bool can_ack() const { return nr_ < vr_; }
    /// Action 5: returns the block acknowledgment (nr, vr-1) and slides nr.
    proto::Ack make_ack();

    /// Chaos (src/chaos): forgets a buffered out-of-order message
    /// (rcvd[m] := false, vr < m < vr + w).  The sender's timers resend
    /// it; vr itself never regresses, so exactly-once delivery holds
    /// through the fault.  Never called by the protocol itself.
    void chaos_clear_rcvd(Seq m);

    /// Chaos: regresses the acknowledged-in-order pointer (nr := new_nr
    /// <= nr).  The next action 5 re-acknowledges [new_nr, vr) and the
    /// sender clips the duplicate coverage.
    void chaos_regress_nr(Seq new_nr);

    friend bool operator==(const Receiver&, const Receiver&) = default;

    template <typename H>
    void feed(H&& h) const {
        h(nr_);
        h(vr_);
        rcvd_.feed(h);
    }

private:
    Seq w_;
    Seq nr_ = 0;
    Seq vr_ = 0;
    proto::WindowBitmap rcvd_;  // base vr_: true below vr_, window [vr_, vr_+w)
};

}  // namespace bacp::ba
