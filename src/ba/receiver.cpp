#include "ba/receiver.hpp"

#include "common/assert.hpp"

namespace bacp::ba {

Receiver::Receiver(Seq w) : w_(w), rcvd_(w) { BACP_ASSERT_MSG(w > 0, "window size must be positive"); }

std::optional<proto::Ack> Receiver::on_data(const proto::Data& msg) {
    const Seq v = msg.seq;
    BACP_ASSERT_MSG(v < nr_ + w_, "data beyond receive window (invariant 11 violated)");
    if (v < nr_) {
        // Already accepted: re-acknowledge with a singleton block.
        return proto::Ack{v, v};
    }
    if (!rcvd_.test(v)) rcvd_.set(v);  // idempotent per the paper's rcvd[v] := true
    return std::nullopt;
}

void Receiver::advance() {
    BACP_ASSERT_MSG(can_advance(), "action 4 executed while disabled");
    ++vr_;
    rcvd_.advance_to(vr_);
}

proto::Ack Receiver::make_ack() {
    BACP_ASSERT_MSG(can_ack(), "action 5 executed while disabled");
    const proto::Ack ack{nr_, vr_ - 1};
    nr_ = vr_;
    return ack;
}

void Receiver::chaos_clear_rcvd(Seq m) {
    BACP_ASSERT_MSG(m > vr_ && m < vr_ + w_, "chaos rcvd clear outside (vr, vr+w)");
    rcvd_.clear(m);
}

void Receiver::chaos_regress_nr(Seq new_nr) {
    BACP_ASSERT_MSG(new_nr <= nr_, "chaos nr regression must move backward");
    nr_ = new_nr;
}

}  // namespace bacp::ba
