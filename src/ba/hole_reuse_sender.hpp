#pragma once

/// \file hole_reuse_sender.hpp
/// SVI extension: window accounting by *unacknowledged count*.
///
/// The paper's concluding remarks sketch a more aggressive sender that
/// reuses window positions already known (via block acks) to have been
/// received, even though earlier positions are still unacknowledged:
/// "suppose messages 0 through 5 were sent, but only messages 3 through 5
/// were acknowledged [ack (0,2) lost] ... it would then be possible ...
/// to use positions 3 through 5 for sending more messages".
///
/// This class realizes that idea with new (monotonically increasing,
/// unbounded) sequence numbers: action 0's guard becomes
///
///     #unacked in [na, ns) < w     (instead of  ns < na + w)
///
/// Correctness sketch: the receiver acknowledges in order only, so every
/// sender-side ack hole lies below nr; hence at send time
/// ns < nr + w, preserving invariant 11 (v < nr + w) -- the *unchanged*
/// ba::Receiver remains correct against this sender.  What grows is the
/// sender's own bookkeeping window [na, ns), which is no longer bounded
/// by w; a configurable cap bounds memory (paper: "the sender ... would
/// have to remember more information").  See DESIGN.md E9.

#include <compare>
#include <vector>

#include "common/types.hpp"
#include "protocol/message.hpp"
#include "protocol/window.hpp"

namespace bacp::ba {

class HoleReuseSender {
public:
    /// \p w: credit (max unacknowledged messages in flight).
    /// \p buffer_cap: hard bound on ns - na (bookkeeping window), >= w.
    explicit HoleReuseSender(Seq w, Seq buffer_cap = 0);

    Seq window() const { return w_; }
    Seq buffer_cap() const { return cap_; }
    Seq na() const { return na_; }
    Seq ns() const { return ns_; }
    bool ackd(Seq m) const { return ackd_.test(m); }
    /// Messages sent and not yet acknowledged (the guard quantity).
    Seq unacked() const { return unacked_; }

    /// Relaxed action-0 guard: unacked credit available and buffer room.
    bool can_send_new() const { return unacked_ < w_ && ns_ < na_ + cap_; }
    proto::Data send_new();

    /// Action 1 (unchanged semantics).
    void on_ack(const proto::Ack& ack);

    bool can_resend(Seq i) const { return na_ <= i && i < ns_ && !ackd_.test(i); }
    void resend_candidates(std::vector<Seq>& out) const;
    std::vector<Seq> resend_candidates() const;
    /// Ack-hole evidence above \p i (see ba::Sender::acked_beyond).
    bool acked_beyond(Seq i) const;
    proto::Data resend(Seq i) const;

    friend bool operator==(const HoleReuseSender&, const HoleReuseSender&) = default;

private:
    Seq w_;
    Seq cap_;
    Seq na_ = 0;
    Seq ns_ = 0;
    Seq unacked_ = 0;
    proto::WindowBitmap ackd_;  // base na_, width cap_
};

}  // namespace bacp::ba
