#include "ba/sender.hpp"

#include "common/assert.hpp"

namespace bacp::ba {

Sender::Sender(Seq w) : w_(w), limit_(w), ackd_(w) {
    BACP_ASSERT_MSG(w > 0, "window size must be positive");
}

void Sender::set_window_limit(Seq limit) {
    BACP_ASSERT_MSG(limit >= 1 && limit <= w_, "window limit must be in [1, w]");
    limit_ = limit;
}

proto::Data Sender::send_new() {
    BACP_ASSERT_MSG(can_send_new(), "action 0 executed while disabled");
    return proto::Data{ns_++};
}

void Sender::on_ack(const proto::Ack& ack) {
    // Invariants 8-10 of the paper: a received ack covers only outstanding,
    // unacknowledged messages inside the window.
    BACP_ASSERT_MSG(ack.lo <= ack.hi, "ack with lo > hi");
    BACP_ASSERT_MSG(ack.lo >= na_, "ack below window (invariant 8 violated)");
    BACP_ASSERT_MSG(ack.hi < ns_, "ack beyond ns (invariant 8 violated)");
    for (Seq m = ack.lo; m <= ack.hi; ++m) {
        BACP_ASSERT_MSG(!ackd_.test(m), "double acknowledgment (invariant 8 violated)");
        ackd_.set(m);
    }
    // Advance na past the acknowledged prefix (paper's interleaved loop).
    Seq new_na = na_;
    while (ackd_.test(new_na)) ++new_na;
    na_ = new_na;
    ackd_.advance_to(new_na);
}

void Sender::resend_candidates(std::vector<Seq>& out) const {
    for (Seq i = na_; i < ns_; ++i) {
        if (!ackd_.test(i)) out.push_back(i);
    }
}

std::vector<Seq> Sender::resend_candidates() const {
    std::vector<Seq> out;
    resend_candidates(out);
    return out;
}

bool Sender::acked_beyond(Seq i) const {
    for (Seq m = (i < na_ ? na_ : i + 1); m < ns_; ++m) {
        if (ackd_.test(m)) return true;
    }
    return false;
}

proto::Data Sender::resend(Seq i) const {
    BACP_ASSERT_MSG(can_resend(i), "resend of a non-outstanding message");
    return proto::Data{i};
}

void Sender::chaos_forget_acks(Seq new_na) {
    BACP_ASSERT_MSG(new_na <= na_, "chaos na regression must move backward");
    BACP_ASSERT_MSG(ns_ <= new_na + w_, "chaos na regression beyond one window of ns");
    na_ = new_na;
    ackd_ = proto::WindowBitmap(w_, new_na);
}

void Sender::chaos_clear_ackd(Seq m) {
    BACP_ASSERT_MSG(m >= na_ && m < ns_, "chaos ackd clear outside [na, ns)");
    ackd_.clear(m);
}

}  // namespace bacp::ba
