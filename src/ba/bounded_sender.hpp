#pragma once

/// \file bounded_sender.hpp
/// Fully bounded block-acknowledgment sender, paper SV (final refinement).
///
/// All counters are residues modulo n = 2w and the ackd array has exactly
/// w slots (slot = seq mod w); the process state is finite.  Comparisons
/// use residue differences, which are exact because the protocol invariant
/// bounds every true difference by w < n (equations 13/14 of the paper,
/// packaged in protocol/seqnum.hpp).
///
/// The wire carries residues: proto::Data.seq and proto::Ack.{lo,hi} hold
/// values in [0, n).

#include <compare>
#include <vector>

#include "common/types.hpp"
#include "protocol/message.hpp"

namespace bacp::ba {

class BoundedSender {
public:
    explicit BoundedSender(Seq w);

    Seq window() const { return w_; }
    /// Sequence-number domain size n = 2w.
    Seq domain() const { return n_; }
    /// Residue of na (next to be acknowledged).
    Seq na_mod() const { return na_; }
    /// Residue of ns (next to be sent).
    Seq ns_mod() const { return ns_; }
    /// ns - na, recovered exactly from the residues.
    Seq outstanding() const;

    /// Current effective window limit (<= w); see ba::Sender for the
    /// variable-window discussion.  The residue domain stays 2w.
    Seq window_limit() const { return limit_; }
    void set_window_limit(Seq limit);

    /// Guard of action 0 ("ns < na + limit" on residues).
    bool can_send_new() const { return outstanding() < limit_; }
    /// Action 0: data message carrying the residue ns mod n.
    proto::Data send_new();

    /// Action 1' on residues.  Precondition (invariants 9/10): the true
    /// values satisfy na <= i <= j < na + w.
    void on_ack(const proto::Ack& ack);

    /// Local timeout conjunct for the message whose residue is \p i_mod:
    /// outstanding and unacknowledged.
    bool can_resend(Seq i_mod) const;

    /// Residues of all retransmission candidates, lowest (na) first.
    void resend_candidates(std::vector<Seq>& out) const;
    std::vector<Seq> resend_candidates() const;

    /// True when some outstanding message beyond the one with residue
    /// \p i_mod is already acknowledged (ack hole) -- the realistic
    /// per-message resend gate.
    bool acked_beyond(Seq i_mod) const;

    /// Action 2/2' on residues.
    proto::Data resend(Seq i_mod) const;

    friend bool operator==(const BoundedSender&, const BoundedSender&) = default;

private:
    Seq w_;
    Seq n_;
    Seq limit_;   // effective window, in [1, w_]
    Seq na_ = 0;  // residue mod n_
    Seq ns_ = 0;  // residue mod n_
    std::vector<bool> ackd_;  // w_ slots, indexed by seq mod w_
};

}  // namespace bacp::ba
