#pragma once

/// \file sender.hpp
/// Block-acknowledgment sender, paper SII/SIV (unbounded sequence numbers).
///
/// This is a *pure* protocol core: it performs no I/O and keeps no timers.
/// Actions are exposed as guard/command pairs so that
///   - the explicit-state model checker can explore every interleaving, and
///   - the discrete-event runtime can drive the same code with timers.
///
/// Paper actions (process S):
///   0:  ns < na + w           -> send ns; ns := ns + 1
///   1:  rcv (i, j)            -> ackd[i..j] := true; advance na
///   2:  timeout               -> send na                       (SII)
///   2': timeout(i)            -> send i                        (SIV)
///
/// The timeout *guards* mention channel contents and receiver state, which
/// a real sender cannot observe; only their local conjuncts live here
/// (see can_resend()).  The runtime supplies the rest either via an oracle
/// (correctness runs) or via conservative timers (performance runs).

#include <compare>
#include <vector>

#include "common/types.hpp"
#include "protocol/message.hpp"
#include "protocol/window.hpp"

namespace bacp::ba {

class Sender {
public:
    /// \p w is the maximum window size, paper's constant w > 0.
    explicit Sender(Seq w);

    Seq window() const { return w_; }

    /// Current effective window limit (<= w).  The paper's concluding
    /// remarks note all its protocols extend to variable-size windows;
    /// the *maximum* w stays fixed (it sizes buffers and, in the bounded
    /// protocol, the residue domain), while the limit used by action 0's
    /// guard may move within [1, w] at any time -- shrinking never
    /// invalidates in-flight state because it only disables new sends.
    Seq window_limit() const { return limit_; }
    void set_window_limit(Seq limit);
    /// Next message to be acknowledged (lower window edge).
    Seq na() const { return na_; }
    /// Next message to be sent (upper window edge).
    Seq ns() const { return ns_; }
    /// Logical ackd[m] of the paper's infinite array.
    bool ackd(Seq m) const { return ackd_.test(m); }
    /// Number of sent-but-unacknowledged messages (ns - na).
    Seq outstanding() const { return ns_ - na_; }

    /// Guard of action 0 (with the current variable-window limit).
    bool can_send_new() const { return ns_ < na_ + limit_; }
    /// Action 0: returns the data message to place on the channel.
    proto::Data send_new();

    /// Action 1: processes block acknowledgment (i, j).
    /// Precondition (protocol invariant 8/9/10): na <= i <= j < na + w and
    /// none of [i, j] already acknowledged; violations throw AssertionError.
    void on_ack(const proto::Ack& ack);

    /// Local conjunct of both timeout guards: message \p i is outstanding
    /// and unacknowledged (na <= i < ns and not ackd[i]).
    bool can_resend(Seq i) const { return na_ <= i && i < ns_ && !ackd_.test(i); }

    /// All sequence numbers eligible for retransmission (SIV candidates).
    /// The SII simple-timeout sender only ever uses the first entry (na).
    /// The appending overload is the runtimes' hot path (scratch reuse).
    void resend_candidates(std::vector<Seq>& out) const;
    std::vector<Seq> resend_candidates() const;

    /// True when some message above \p i is already acknowledged (an ack
    /// "hole").  Because the receiver acknowledges in order only, a hole
    /// proves the receiver accepted i and the ack was lost -- the
    /// realistic per-message timeout uses this as its resend gate (see
    /// runtime/ba_session.hpp).
    bool acked_beyond(Seq i) const;

    /// Action 2/2': the retransmitted copy of message \p i.  The sender's
    /// state does not change (retransmission only re-places the message on
    /// the channel).
    proto::Data resend(Seq i) const;

    /// Chaos (src/chaos): forgets acknowledgment state -- na regresses to
    /// \p new_na and every ackd bit above it clears, as if a transient
    /// fault wiped the ack scoreboard.  \p new_na must stay within one
    /// window of ns so the healing re-acks land inside the rebuilt
    /// bitmap.  Never called by the protocol itself.
    void chaos_forget_acks(Seq new_na);

    /// Chaos: forgets a single acknowledgment (ackd[m] := false,
    /// na <= m < ns).  The peer re-acks it as a duplicate and the
    /// runtime's SACK clipping re-applies the coverage.
    void chaos_clear_ackd(Seq m);

    friend bool operator==(const Sender&, const Sender&) = default;

    /// Feeds the canonical state into a hash accumulator.
    template <typename H>
    void feed(H&& h) const {
        h(na_);
        h(ns_);
        h(limit_);
        ackd_.feed(h);
    }

private:
    Seq w_;
    Seq limit_;  // effective window, in [1, w_]
    Seq na_ = 0;
    Seq ns_ = 0;
    proto::WindowBitmap ackd_;  // base na_: true below na_, window [na_, na_+w)
};

}  // namespace bacp::ba
