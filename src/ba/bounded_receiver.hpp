#pragma once

/// \file bounded_receiver.hpp
/// Fully bounded block-acknowledgment receiver, paper SV (final refinement).
///
/// Counters nr and vr are residues mod n = 2w; rcvd has exactly w slots
/// (slot = seq mod w), cleared as vr passes (paper: "rcvd[vr mod w] is set
/// to false in action 4").
///
/// The duplicate test of action 3 ("v < nr") is performed on residues via
/// the anchored offset v - (nr - w), which invariant 11 places in [0, 2w):
/// the message is a duplicate of an accepted message iff the offset is
/// below w.  This removes the max(0, nr - w) special case of the paper's
/// mid-development form -- see protocol/seqnum.hpp.

#include <compare>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "protocol/message.hpp"

namespace bacp::ba {

class BoundedReceiver {
public:
    explicit BoundedReceiver(Seq w);

    Seq window() const { return w_; }
    Seq domain() const { return n_; }
    /// Residue of nr (next to accept).
    Seq nr_mod() const { return nr_; }
    /// Residue of vr (upper edge of the contiguous received run).
    Seq vr_mod() const { return vr_; }
    /// vr - nr, recovered exactly from the residues.
    Seq pending() const;

    /// Action 3 on residues.  Returns the duplicate ack (v, v) when the
    /// message was accepted previously.
    std::optional<proto::Ack> on_data(const proto::Data& msg);

    /// Logical rcvd[] lookup by residue (valid for residues inside the
    /// window constraint of invariant 11).  Used by oracle timeout guards.
    bool rcvd(Seq v_mod) const;

    /// Guard of action 4.
    bool can_advance() const { return rcvd_[vr_ % w_]; }
    /// Action 4 (clears the slot vr passes over).
    void advance();

    /// Guard of action 5.
    bool can_ack() const { return pending() > 0; }
    /// Action 5: block ack (nr, vr-1) on residues; slides nr to vr.
    proto::Ack make_ack();

    friend bool operator==(const BoundedReceiver&, const BoundedReceiver&) = default;

private:
    Seq w_;
    Seq n_;
    Seq nr_ = 0;  // residue mod n_
    Seq vr_ = 0;  // residue mod n_
    std::vector<bool> rcvd_;  // w_ slots, indexed by seq mod w_
};

}  // namespace bacp::ba
