#include "ba/hole_reuse_sender.hpp"

#include "common/assert.hpp"

namespace bacp::ba {

HoleReuseSender::HoleReuseSender(Seq w, Seq buffer_cap)
    : w_(w), cap_(buffer_cap == 0 ? 4 * w : buffer_cap), ackd_(cap_ == 0 ? 1 : cap_) {
    BACP_ASSERT_MSG(w > 0, "window size must be positive");
    BACP_ASSERT_MSG(cap_ >= w_, "buffer cap must be at least w");
}

proto::Data HoleReuseSender::send_new() {
    BACP_ASSERT_MSG(can_send_new(), "action 0 executed while disabled");
    ++unacked_;
    return proto::Data{ns_++};
}

void HoleReuseSender::on_ack(const proto::Ack& ack) {
    BACP_ASSERT_MSG(ack.lo <= ack.hi, "ack with lo > hi");
    BACP_ASSERT_MSG(ack.lo >= na_, "ack below window (invariant 8 violated)");
    BACP_ASSERT_MSG(ack.hi < ns_, "ack beyond ns (invariant 8 violated)");
    for (Seq m = ack.lo; m <= ack.hi; ++m) {
        BACP_ASSERT_MSG(!ackd_.test(m), "double acknowledgment (invariant 8 violated)");
        ackd_.set(m);
        BACP_ASSERT(unacked_ > 0);
        --unacked_;
    }
    Seq new_na = na_;
    while (ackd_.test(new_na)) ++new_na;
    na_ = new_na;
    ackd_.advance_to(new_na);
}

void HoleReuseSender::resend_candidates(std::vector<Seq>& out) const {
    for (Seq i = na_; i < ns_; ++i) {
        if (!ackd_.test(i)) out.push_back(i);
    }
}

std::vector<Seq> HoleReuseSender::resend_candidates() const {
    std::vector<Seq> out;
    resend_candidates(out);
    return out;
}

bool HoleReuseSender::acked_beyond(Seq i) const {
    for (Seq m = (i < na_ ? na_ : i + 1); m < ns_; ++m) {
        if (ackd_.test(m)) return true;
    }
    return false;
}

proto::Data HoleReuseSender::resend(Seq i) const {
    BACP_ASSERT_MSG(can_resend(i), "resend of a non-outstanding message");
    return proto::Data{i};
}

}  // namespace bacp::ba
