#include "ba/bounded_receiver.hpp"

#include "common/assert.hpp"
#include "protocol/seqnum.hpp"

namespace bacp::ba {

using proto::mod_add;
using proto::mod_offset;
using proto::mod_sub;

BoundedReceiver::BoundedReceiver(Seq w)
    : w_(w), n_(proto::domain_for_window(w)), rcvd_(w, false) {
    BACP_ASSERT_MSG(w > 0, "window size must be positive");
}

Seq BoundedReceiver::pending() const {
    // True difference vr - nr lies in [0, w] (invariant 6).
    return mod_offset(nr_, vr_, n_);
}

std::optional<proto::Ack> BoundedReceiver::on_data(const proto::Data& msg) {
    const Seq v = msg.seq;
    BACP_ASSERT_MSG(v < n_, "data residue outside domain");
    // offset = v - (nr - w), exact in [0, 2w) by invariant 11.
    const Seq base = mod_sub(nr_, w_, n_);
    const Seq offset = mod_offset(base, v, n_);
    if (offset < w_) {
        // v < nr: duplicate of an accepted message.
        return proto::Ack{v, v};
    }
    // v >= nr.  Distinguish [nr, vr) (received, awaiting ack; its slot was
    // already released by action 4) from [vr, nr+w) (may need marking).
    const Seq from_nr = offset - w_;  // v - nr, in [0, w)
    if (from_nr >= pending()) {
        rcvd_[v % w_] = true;  // idempotent for already-marked [vr, nr+w)
    }
    return std::nullopt;
}

bool BoundedReceiver::rcvd(Seq v_mod) const {
    BACP_ASSERT_MSG(v_mod < n_, "residue outside domain");
    const Seq base = mod_sub(nr_, w_, n_);
    const Seq offset = mod_offset(base, v_mod, n_);
    if (offset < w_) return true;          // v < nr: accepted
    const Seq from_nr = offset - w_;       // v - nr, in [0, w)
    if (from_nr < pending()) return true;  // [nr, vr): received, unacked
    return rcvd_[v_mod % w_];              // [vr, nr + w): slot truth
}

void BoundedReceiver::advance() {
    BACP_ASSERT_MSG(can_advance(), "action 4 executed while disabled");
    rcvd_[vr_ % w_] = false;  // release the slot for seq vr + w
    vr_ = mod_add(vr_, 1, n_);
}

proto::Ack BoundedReceiver::make_ack() {
    BACP_ASSERT_MSG(can_ack(), "action 5 executed while disabled");
    const proto::Ack ack{nr_, mod_sub(vr_, 1, n_)};
    nr_ = vr_;
    return ack;
}

}  // namespace bacp::ba
