#pragma once

/// \file engine_core.hpp
/// EndpointCore adapter for the block-acknowledgment protocol family.
///
/// EngineCore<SenderT, ReceiverT> packages any of the three sender cores
/// (Sender, BoundedSender, HoleReuseSender) with either receiver behind
/// the runtime::Engine concept.  Bounded cores speak residues on the
/// wire; this adapter keeps *ghost* unbounded counters (never visible to
/// the cores) and translates between the engine's true sequence numbers
/// and wire fields, mirroring the paper's proof technique of reasoning
/// about true values that the implementation no longer stores.
///
/// Besides the translation, the adapter owns the BA-specific protocol
/// policies that are not transport concerns:
///   - SACK-style ack clipping (ack_clip.hpp) before the strict core;
///   - the send-horizon rule (horizon.hpp);
///   - the SIV resend gate and the receiver-oracle conjunct
///     (timeout_eligible);
///   - the NAK fast-retransmit extension;
///   - the AIMD variable-window extension (paper SVI).

#include <algorithm>
#include <concepts>
#include <optional>
#include <string>
#include <vector>

#include "ba/bounded_receiver.hpp"
#include "ba/bounded_sender.hpp"
#include "ba/hole_reuse_sender.hpp"
#include "ba/receiver.hpp"
#include "ba/sender.hpp"
#include "common/types.hpp"
#include "protocol/message.hpp"
#include "protocol/seqnum.hpp"
#include "runtime/ack_clip.hpp"
#include "runtime/engine.hpp"
#include "runtime/horizon.hpp"

namespace bacp::ba {

template <typename SenderT, typename ReceiverT>
class EngineCore {
public:
    struct Options {};

    static constexpr bool kRequiresFifo = false;
    static constexpr runtime::TimeoutMode kDefaultTimeoutMode =
        runtime::TimeoutMode::PerMessageTimer;
    static constexpr bool kInvariantCheckable =
        std::same_as<SenderT, Sender> && std::same_as<ReceiverT, Receiver>;
    // A block ack covers exactly the contiguous run below vr: everything
    // inside a (correctly computed) range was delivered, so a stale copy
    // of an earlier range is harmless.  The chaos harness keys its
    // plausible-ack mutation flavor on this.
    static constexpr bool kCumulativeAcks = true;

    explicit EngineCore(const runtime::EngineConfig& cfg, Options = {})
        : w_(cfg.w),
          sender_(cfg.w),
          receiver_(cfg.w),
          adaptive_(cfg.adaptive_window),
          nak_enabled_(cfg.enable_nak),
          nak_threshold_(cfg.nak_threshold),
          data_lifetime_(cfg.data_link.max_lifetime()),
          nak_interval_(cfg.data_link.max_lifetime() + cfg.ack_link.max_lifetime()) {
        // Clipping one ack yields at most ceil(w/2) disjoint runs
        // (covered/uncovered must alternate); reserving now keeps the
        // worst-case ack off the allocator mid-run.
        runs_scratch_.reserve(static_cast<std::size_t>(cfg.w) / 2 + 1);
    }

    const SenderT& sender_core() const { return sender_; }
    const ReceiverT& receiver_core() const { return receiver_; }

    // ---- sender half -----------------------------------------------------

    bool can_send_new() const { return sender_.can_send_new(); }

    SimTime send_blocked_until(SimTime now) {
        return horizon_.blocks(ghost_ns_, now) ? horizon_.until() : now;
    }

    proto::Data send_new(SimTime) {
        const proto::Data msg = sender_.send_new();
        ++ghost_ns_;
        return msg;
    }

    /// Feeds one block ack to the core, tolerating duplicate coverage.
    ///
    /// With realistic per-message timers (SIV) the sender cannot evaluate
    /// the "(i < nr || !rcvd[i])" conjunct of timeout(i), so it may
    /// resend a message the receiver buffered out of order; the resulting
    /// duplicate acknowledgments can overlap ranges the sender already
    /// processed.  Exactly as a TCP SACK processor does, the adapter
    /// clips the incoming range to the still-unacknowledged runs before
    /// handing it to the strict core.  Under the oracle modes and the SII
    /// single timer no clipping ever occurs (the paper's assertion 8
    /// holds) -- the invariant checker enforces that in tests.
    void on_ack(const proto::Ack& ack, const runtime::TxView& tx) {
        runs_scratch_.clear();
        if constexpr (kBoundedSender) {
            runtime::clip_ack_bounded_into(sender_, ack, runs_scratch_);
        } else {
            runtime::clip_ack_unbounded_into(sender_, ack, runs_scratch_);
        }
        for (const auto& run : runs_scratch_) {
            if constexpr (kBoundedSender) {
                const Seq na_before = sender_.na_mod();
                const Seq lo_true =
                    ghost_na_ + proto::mod_offset(na_before, run.lo, sender_.domain());
                const Seq hi_true =
                    ghost_na_ + proto::mod_offset(na_before, run.hi, sender_.domain());
                for (Seq t = lo_true; t <= hi_true; ++t) note_horizon(t, tx);
                sender_.on_ack(run);
                const Seq advance =
                    proto::mod_offset(na_before, sender_.na_mod(), sender_.domain());
                ghost_na_ += advance;
                window_on_ack_progress(advance);
            } else {
                for (Seq t = run.lo; t <= run.hi; ++t) note_horizon(t, tx);
                const Seq na_before = sender_.na();
                sender_.on_ack(run);
                window_on_ack_progress(sender_.na() - na_before);
            }
        }
    }

    bool has_outstanding() const {
        if constexpr (requires(const SenderT& s) { s.unacked(); }) {
            return sender_.unacked() > 0;
        } else {
            return sender_.outstanding() > 0;
        }
    }

    void resend_candidates(std::vector<Seq>& out) const {
        // Append the wire fields, then translate them to true sequence
        // numbers in place -- no intermediate vector.
        const std::size_t base = out.size();
        sender_.resend_candidates(out);
        for (std::size_t k = base; k < out.size(); ++k) out[k] = true_of(out[k]);
    }

    bool can_resend(Seq true_seq) const {
        if (true_seq < ghost_na()) return false;  // acknowledged meanwhile
        return sender_.can_resend(wire_of(true_seq));
    }

    proto::Data resend(Seq true_seq, SimTime) {
        window_on_loss(true_seq);
        return sender_.resend(wire_of(true_seq));
    }

    /// Lowest unacknowledged message -- what the SII single timer and the
    /// OracleSimple guard resend (ackd[na] is false by invariant 7, so na
    /// is always resendable).
    void simple_timeout_set(std::vector<Seq>& out) const { out.push_back(ghost_na()); }

    /// Realistic SIV resend gate (oracle == false).  The sender may
    /// resend a matured message i only when it can prove the receiver is
    /// not holding i buffered beyond nr (the "(i < nr || !rcvd[i])"
    /// conjunct of timeout(i), which it cannot observe directly):
    ///
    ///   - i == na: if the receiver had na buffered at nr == na it would
    ///     have acknowledged within the ack-delay bound, and that ack
    ///     would have arrived inside the conservative timeout;
    ///   - an ack hole above i exists: in-order acking means the receiver
    ///     accepted i (i < nr) and only the ack was lost.
    ///
    /// This gate is what keeps every in-transit data copy m
    /// unacknowledged at the sender (assertion 8), which pins na <= m and
    /// hence nr <= m + w -- without it a stale copy can outlive the SV
    /// residue reconstruction window and alias into a future sequence
    /// number.
    ///
    /// With oracle == true, evaluates timeout(i)'s receiver conjunct
    /// directly: eligible unless the receiver holds i buffered beyond nr
    /// and will acknowledge it without help.
    bool timeout_eligible(Seq true_seq, bool oracle) const {
        const Seq field = wire_of(true_seq);
        if (oracle) return !receiver_can_still_ack(field);
        return true_seq == ghost_na() || sender_.acked_beyond(field);
    }

    /// Sender side of the NAK extension: a NAK names a message the
    /// receiver provably lacks -- the "(i < nr || !rcvd[i])" oracle
    /// conjunct, receiver-supplied.  The only remaining obligation before
    /// resending is the one-copy rule: the previous copy must have aged
    /// out of the data channel.
    std::optional<Seq> on_nak(const proto::Nak& nak, const runtime::TxView& tx) const {
        Seq true_seq;
        if constexpr (kBoundedSender) {
            if (nak.seq >= sender_.domain()) return std::nullopt;  // malformed
            const Seq off = proto::mod_offset(sender_.na_mod(), nak.seq, sender_.domain());
            if (off >= sender_.outstanding()) return std::nullopt;  // stale NAK
            true_seq = ghost_na_ + off;
        } else {
            true_seq = nak.seq;
        }
        if (!can_resend(true_seq)) return std::nullopt;
        const auto last = tx.last_tx_time(true_seq);
        if (!last) return std::nullopt;
        if (tx.now - *last < data_lifetime_) return std::nullopt;  // copy may live
        return true_seq;
    }

    // ---- receiver half ---------------------------------------------------

    runtime::RxOutcome on_data(const proto::Data& msg, SimTime now) {
        runtime::RxOutcome out;
        // Harden the receive-window precondition (invariant 8/11) into a
        // rejection: the CRC authenticates bytes, not semantics, so a
        // corrupted-below-CRC or hostile frame can still carry a sequence
        // number no conforming sender could have emitted.  The pure
        // receiver's precondition assert must stay unreachable from wire
        // input.
        if constexpr (kBoundedReceiver) {
            if (msg.seq >= receiver_.domain()) {
                out.rejected = true;
                return out;
            }
        } else {
            if (msg.seq >= receiver_.nr() + receiver_.window()) {
                out.rejected = true;
                return out;
            }
        }
        const auto dup = receiver_.on_data(msg);
        if (dup) {
            out.duplicate = true;
            out.dup_ack = *dup;
            return out;
        }
        // Action 4, repeated: deliver the contiguous run in order.
        while (receiver_.can_advance()) {
            receiver_.advance();
            ++ghost_vr_;
            ++out.delivered;
        }
        if (out.delivered > 0) {
            ooo_since_advance_ = 0;
        } else {
            ++ooo_since_advance_;  // buffered beyond a gap
            out.nak = maybe_make_nak(now);
        }
        return out;
    }

    Seq ack_pending() const {
        if constexpr (kBoundedReceiver) {
            return receiver_.pending();
        } else {
            return receiver_.vr() - receiver_.nr();
        }
    }

    proto::Ack make_ack() { return receiver_.make_ack(); }

    // ---- chaos hook (runtime::kCoreCorruptible, src/chaos) -----------------

    /// Applies one seeded perturbation from the reachable-but-wrong state
    /// space: a forgotten ack scoreboard (na regression), a flipped ackd
    /// bit, a forgotten receiver stash entry, or a regressed nr.  Forward
    /// corruption (na beyond the acked prefix, rcvd bits for unsent
    /// seqs, vr regression) is deliberately excluded -- those states are
    /// unreachable by *any* crash-and-lose-memory fault and would break
    /// exactly-once delivery rather than test recovery; the crash story
    /// for truly arbitrary state is the epoch rejoin (PROTOCOL.md §8).
    /// Unbounded cores only: residue cores recover by epoch, not repair.
    std::string corrupt_state(Rng& rng)
        requires kInvariantCheckable
    {
        // Start at a random class and take the first whose guard holds,
        // so mid-run states get variety while a drained endpoint still
        // yields something when it can.
        const std::uint64_t first = rng.uniform(4);
        for (std::uint64_t k = 0; k < 4; ++k) {
            switch ((first + k) % 4) {
                case 0: {  // sender forgets its ack scoreboard
                    const Seq ns = sender_.ns();
                    const Seq floor = ns >= w_ ? ns - w_ : 0;
                    const Seq old_na = sender_.na();
                    if (old_na <= floor) break;
                    const Seq new_na = floor + rng.uniform(old_na - floor);
                    sender_.chaos_forget_acks(new_na);
                    return "sender forgot acks: na " + std::to_string(old_na) + " -> " +
                           std::to_string(new_na);
                }
                case 1: {  // one ackd bit flips off
                    const Seq na = sender_.na();
                    const Seq ns = sender_.ns();
                    Seq count = 0;
                    for (Seq i = na; i < ns; ++i) count += sender_.ackd(i) ? 1 : 0;
                    if (count == 0) break;
                    Seq pick = rng.uniform(count);
                    for (Seq i = na; i < ns; ++i) {
                        if (!sender_.ackd(i)) continue;
                        if (pick == 0) {
                            sender_.chaos_clear_ackd(i);
                            return "sender ackd[" + std::to_string(i) + "] flipped off";
                        }
                        --pick;
                    }
                    break;
                }
                case 2: {  // receiver forgets a buffered out-of-order message
                    // Forgettable only while the sender still holds it
                    // unacked (a stash entry can be singleton-acked by a
                    // duplicate arrival): once acked, the sender provably
                    // never resends, so losing the copy is unrecoverable
                    // by repair -- that fault belongs to the epoch rejoin.
                    const auto forgettable = [this](Seq i) {
                        return receiver_.rcvd(i) && i >= sender_.na() &&
                               i < sender_.ns() && !sender_.ackd(i);
                    };
                    const Seq vr = receiver_.vr();
                    Seq count = 0;
                    for (Seq i = vr + 1; i < vr + w_; ++i) count += forgettable(i) ? 1 : 0;
                    if (count == 0) break;
                    Seq pick = rng.uniform(count);
                    for (Seq i = vr + 1; i < vr + w_; ++i) {
                        if (!forgettable(i)) continue;
                        if (pick == 0) {
                            receiver_.chaos_clear_rcvd(i);
                            return "receiver rcvd[" + std::to_string(i) + "] flipped off";
                        }
                        --pick;
                    }
                    break;
                }
                case 3: {  // receiver's in-order pointer regresses
                    const Seq old_nr = receiver_.nr();
                    const Seq floor = old_nr >= w_ ? old_nr - w_ : 0;
                    if (old_nr <= floor) break;
                    const Seq new_nr = floor + rng.uniform(old_nr - floor);
                    receiver_.chaos_regress_nr(new_nr);
                    return "receiver nr " + std::to_string(old_nr) + " -> " +
                           std::to_string(new_nr);
                }
            }
        }
        return "";
    }

    /// Wire residue the message with true sequence number \p true_seq
    /// travels under.  Bounded senders only -- unbounded cores put the
    /// true value on the wire, and environments detect the distinction
    /// through runtime::kCoreWireMapped.
    Seq wire_seq(Seq true_seq) const
        requires requires(const SenderT& s) { s.na_mod(); }
    {
        return wire_of(true_seq);
    }

    /// Residue domain the receiver's ack blocks live in.  Bounded
    /// receivers only: a block ack (lo, hi) is a residue range mod this
    /// domain and may *wrap* it (hi < lo numerically, e.g. (7, 2) in
    /// domain 8).  In-process handoff passes the struct through
    /// unchanged, but wire environments must split a wrapped block into
    /// two frames before encoding (runtime::kCoreAckWireWrapped).
    Seq ack_wire_domain() const
        requires requires(const ReceiverT& r) { r.nr_mod(); }
    {
        return receiver_.domain();
    }

private:
    static constexpr bool kBoundedSender = requires(const SenderT& s) { s.na_mod(); };
    static constexpr bool kBoundedReceiver = requires(const ReceiverT& r) { r.nr_mod(); };

    /// Ghost (true, unbounded) value of na.
    Seq ghost_na() const {
        if constexpr (kBoundedSender) {
            return ghost_na_;
        } else {
            return sender_.na();
        }
    }

    /// Wire field for the message with true sequence number \p true_seq.
    Seq wire_of(Seq true_seq) const {
        if constexpr (kBoundedSender) {
            return true_seq % sender_.domain();
        } else {
            return true_seq;
        }
    }

    /// True sequence number of a resend-candidate wire field.
    Seq true_of(Seq field) const {
        if constexpr (kBoundedSender) {
            return ghost_na_ + proto::mod_offset(sender_.na_mod(), field, sender_.domain());
        } else {
            return field;
        }
    }

    void note_horizon(Seq true_seq, const runtime::TxView& tx) {
        const auto last = tx.last_tx_time(true_seq);
        if (!last) return;
        horizon_.note(true_seq, *last + tx.data_lifetime, tx.now, w_);
    }

    /// Oracle evaluation of timeout(i)'s receiver conjunct: returns the
    /// NEGATION of "(i < nr || !rcvd[i])", i.e. true when the receiver
    /// holds i buffered beyond nr and will acknowledge it without help.
    bool receiver_can_still_ack(Seq field) const {
        if constexpr (kBoundedReceiver) {
            if (proto::wire_before_nr(field, receiver_.nr_mod(), receiver_.window())) {
                return false;  // i < nr: accepted; resend is the recovery path
            }
            return receiver_.rcvd(field);
        } else {
            return field < receiver_.nr() ? false : receiver_.rcvd(field);
        }
    }

    /// Receiver side of the NAK extension: after nak_threshold
    /// out-of-order arrivals without progress, request the message
    /// blocking vr (rate-limited to one NAK per blocked position per NAK
    /// round trip).
    std::optional<proto::Nak> maybe_make_nak(SimTime now) {
        if (!nak_enabled_) return std::nullopt;
        if (ooo_since_advance_ < nak_threshold_) return std::nullopt;
        const Seq missing_field = [&] {
            if constexpr (kBoundedReceiver) {
                return receiver_.vr_mod();
            } else {
                return receiver_.vr();
            }
        }();
        if (last_nak_field_ == missing_field && now - last_nak_time_ < nak_interval_) {
            return std::nullopt;
        }
        last_nak_field_ = missing_field;
        last_nak_time_ = now;
        return proto::Nak{missing_field};
    }

    /// Multiplicative decrease, once per loss event: a retransmission of
    /// a message sent before the previous decrease does not halve again.
    void window_on_loss(Seq true_seq) {
        if constexpr (requires(SenderT& s) { s.set_window_limit(Seq{1}); }) {
            if (!adaptive_) return;
            if (true_seq < recovery_mark_) return;  // same loss event
            recovery_mark_ = ghost_ns_;
            const Seq halved = std::max<Seq>(1, sender_.window_limit() / 2);
            sender_.set_window_limit(halved);
            acked_since_increase_ = 0;
        }
    }

    /// Additive increase: +1 after a full effective window is acked.
    void window_on_ack_progress(Seq advance) {
        if constexpr (requires(SenderT& s) { s.set_window_limit(Seq{1}); }) {
            if (!adaptive_ || advance == 0) return;
            acked_since_increase_ += advance;
            if (acked_since_increase_ >= sender_.window_limit() &&
                sender_.window_limit() < w_) {
                sender_.set_window_limit(sender_.window_limit() + 1);
                acked_since_increase_ = 0;
            }
        }
    }

    Seq w_;
    SenderT sender_;
    ReceiverT receiver_;
    runtime::SendHorizon horizon_;
    Seq ghost_ns_ = 0;  // true ns (== engine's sent_new counter)
    Seq ghost_na_ = 0;  // true na for bounded senders
    Seq ghost_vr_ = 0;  // true vr for bounded receivers

    // Adaptive-window (AIMD) state.
    bool adaptive_;
    Seq recovery_mark_ = 0;  // loss events below this are "the same"
    Seq acked_since_increase_ = 0;

    // NAK extension state.
    bool nak_enabled_;
    Seq nak_threshold_;
    SimTime data_lifetime_;
    SimTime nak_interval_;
    Seq ooo_since_advance_ = 0;  // out-of-order arrivals since vr moved
    Seq last_nak_field_ = ~Seq{0};
    SimTime last_nak_time_ = 0;

    std::vector<proto::Ack> runs_scratch_;  // clip output, reused per ack
};

}  // namespace bacp::ba
