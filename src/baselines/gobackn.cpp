#include "baselines/gobackn.hpp"

#include "common/assert.hpp"
#include "protocol/seqnum.hpp"

namespace bacp::baselines {

GbnSender::GbnSender(Seq w, Seq domain) : w_(w), domain_(domain) {
    BACP_ASSERT_MSG(w > 0, "window size must be positive");
    BACP_ASSERT_MSG(domain == 0 || domain > w, "bounded domain must exceed w");
}

proto::Data GbnSender::send_new() {
    BACP_ASSERT_MSG(can_send_new(), "send while window full");
    return proto::Data{wire_seq(ns_++)};
}

void GbnSender::on_ack(const proto::Ack& ack) {
    const Seq k = ack.hi;
    if (domain_ == 0) {
        // Unbounded: the true value discriminates stale acks exactly.
        if (k >= na_ && k < ns_) na_ = k + 1;
        return;
    }
    // Bounded: only the residue is available.  Interpret it relative to
    // the current window -- the paper's SI scenario shows this aliases
    // when an old ack resurfaces after the residue wrapped.
    BACP_ASSERT_MSG(k < domain_, "ack residue outside domain");
    if (!has_outstanding()) return;
    const Seq offset = proto::mod_offset(na_ % domain_, k, domain_);
    if (offset < outstanding()) {
        na_ += offset + 1;  // may wrongly pass messages the receiver lacks
    }
}

void GbnSender::chaos_regress_na(Seq new_na) {
    BACP_ASSERT_MSG(new_na <= na_, "chaos na regression must move backward");
    BACP_ASSERT_MSG(ns_ <= new_na + w_, "chaos na regression beyond one window of ns");
    na_ = new_na;
}

std::vector<proto::Data> GbnSender::retransmit_window() const {
    std::vector<proto::Data> out;
    out.reserve(static_cast<std::size_t>(outstanding()));
    for (Seq m = na_; m < ns_; ++m) out.push_back(proto::Data{wire_seq(m)});
    return out;
}

GbnReceiver::GbnReceiver(Seq domain) : domain_(domain) {}

void GbnReceiver::on_data(const proto::Data& msg) {
    if (msg.seq == wire_seq(nr_)) {
        ++nr_;
        return;
    }
    // Discarded.  If it looks like an old accepted message, schedule a
    // re-ack so a sender stuck on a lost ack can recover.
    if (nr_ > 0) reack_ = true;
}

void GbnReceiver::chaos_regress_acked(Seq new_acked) {
    BACP_ASSERT_MSG(new_acked <= acked_, "chaos acked regression must move backward");
    acked_ = new_acked;
}

proto::Ack GbnReceiver::make_ack() {
    BACP_ASSERT_MSG(can_ack(), "ack action executed while disabled");
    reack_ = false;
    acked_ = nr_;
    const Seq k = wire_seq(nr_ - 1);
    return proto::Ack{k, k};
}

}  // namespace bacp::baselines
