#include "baselines/timer_based.hpp"

#include "common/assert.hpp"
#include "protocol/seqnum.hpp"

namespace bacp::baselines {

TcSender::TcSender(Seq w, Seq domain, SimTime reuse_interval)
    : w_(w), domain_(domain), reuse_(reuse_interval), last_use_(domain, kNever) {
    BACP_ASSERT_MSG(w > 0, "window size must be positive");
    BACP_ASSERT_MSG(domain > w, "domain must exceed w");
    BACP_ASSERT_MSG(reuse_interval > 0, "reuse interval must be positive");
}

bool TcSender::residue_free(SimTime now) const {
    const SimTime last = last_use_[static_cast<std::size_t>(wire_seq(ns_))];
    return last == kNever || now - last >= reuse_;
}

SimTime TcSender::residue_ready_at() const {
    const SimTime last = last_use_[static_cast<std::size_t>(wire_seq(ns_))];
    return last == kNever ? 0 : last + reuse_;
}

proto::Data TcSender::send_new(SimTime now) {
    BACP_ASSERT_MSG(can_send_new(now), "send while guard disabled");
    const Seq residue = wire_seq(ns_);
    last_use_[static_cast<std::size_t>(residue)] = now;
    ++ns_;
    return proto::Data{residue};
}

void TcSender::on_ack(const proto::Ack& ack) {
    const Seq k = ack.hi;
    BACP_ASSERT_MSG(k < domain_, "ack residue outside domain");
    if (!has_outstanding()) return;
    const Seq offset = proto::mod_offset(na_ % domain_, k, domain_);
    if (offset < outstanding()) na_ += offset + 1;
}

std::vector<proto::Data> TcSender::retransmit_window() const {
    std::vector<proto::Data> out;
    out.reserve(static_cast<std::size_t>(outstanding()));
    for (Seq m = na_; m < ns_; ++m) out.push_back(proto::Data{wire_seq(m)});
    return out;
}

void TcSender::note_resend(Seq true_seq, SimTime now) {
    BACP_ASSERT(true_seq >= na_ && true_seq < ns_);
    last_use_[static_cast<std::size_t>(wire_seq(true_seq))] = now;
}

}  // namespace bacp::baselines
