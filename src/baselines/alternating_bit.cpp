#include "baselines/alternating_bit.hpp"

#include "common/assert.hpp"

namespace bacp::baselines {

proto::Data AbpSender::send_new() {
    BACP_ASSERT_MSG(can_send_new(), "ABP send while awaiting ack");
    awaiting_ack_ = true;
    return proto::Data{bit_};
}

proto::Data AbpSender::resend() const {
    BACP_ASSERT_MSG(awaiting_ack_, "ABP resend with nothing outstanding");
    return proto::Data{bit_};
}

void AbpSender::on_ack(const proto::Ack& ack) {
    if (!awaiting_ack_) return;     // stale ack after completion
    if (ack.hi != bit_) return;     // ack for the previous incarnation
    awaiting_ack_ = false;
    bit_ ^= 1;
    ++completed_;
}

proto::Ack AbpReceiver::on_data(const proto::Data& msg) {
    if (msg.seq == expected_bit_) {
        ++delivered_;
        expected_bit_ ^= 1;
    }
    // Ack carries the bit of the last accepted message.
    const Seq last = expected_bit_ ^ 1;
    return proto::Ack{last, last};
}

}  // namespace bacp::baselines
