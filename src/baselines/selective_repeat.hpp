#pragma once

/// \file selective_repeat.hpp
/// Selective-repeat baseline: every data message is acknowledged by a
/// distinct acknowledgment message.
///
/// The paper characterizes this as the first existing protocol that
/// achieves bounded sequence numbers + reorder tolerance, at the cost
/// that "every data message be acknowledged by a distinct acknowledgment
/// message ... a severe restriction ... [that] can greatly reduce the
/// protocol's performance" (SI).  It is also the (v, v)-only special case
/// of block acknowledgment (SVI), so the *sender* is exactly ba::Sender;
/// only the receiver differs: it acknowledges each arrival immediately
/// and individually, including out-of-order ones.

#include <compare>
#include <optional>

#include "common/types.hpp"
#include "protocol/message.hpp"
#include "protocol/window.hpp"

namespace bacp::baselines {

class SrReceiver {
public:
    explicit SrReceiver(Seq w);

    Seq window() const { return w_; }
    /// Count of messages delivered in order to the application.
    Seq nr() const { return nr_; }
    bool rcvd(Seq m) const { return rcvd_.test(m); }

    /// Handles an arriving data message and returns the (mandatory)
    /// singleton acknowledgment (v, v).
    /// Precondition (window invariant): v < nr + w.
    proto::Ack on_data(const proto::Data& msg);

    /// Guard/action for in-order delivery to the application.
    bool can_deliver() const { return rcvd_.test(nr_); }
    void deliver();

    /// Chaos (src/chaos): forgets a buffered out-of-order message
    /// (rcvd[m] := false, nr < m < nr + w); the sender's per-message
    /// timer resends it.  nr never regresses (it is the delivery
    /// pointer, and regressing it would re-deliver).
    void chaos_clear_rcvd(Seq m);

    friend bool operator==(const SrReceiver&, const SrReceiver&) = default;

    template <typename H>
    void feed(H&& h) const {
        h(nr_);
        rcvd_.feed(h);
    }

private:
    Seq w_;
    Seq nr_ = 0;
    proto::WindowBitmap rcvd_;  // base nr_
};

}  // namespace bacp::baselines
