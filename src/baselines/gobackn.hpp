#pragma once

/// \file gobackn.hpp
/// Traditional go-back-N window protocol with *cumulative* acknowledgments
/// (Stallings's formulation, the paper's introduction baseline).
///
/// An acknowledgment carries one number k and acknowledges every data
/// message with sequence number <= k.  On the wire we reuse proto::Ack as
/// the singleton (k, k); the cumulative meaning lives in this module.
///
/// Two sequence-number modes:
///   - unbounded (domain = 0): correct under loss AND reorder;
///   - bounded (domain = N): the sender interprets ack residues relative
///     to its window.  This is the configuration the paper's SI scenario
///     breaks: a stale cumulative ack left in a reordering channel aliases
///     into the current window and the sender advances na past messages
///     the receiver never accepted.  We implement it faithfully,
///     bug included, so the model checker can exhibit the failure (E1).

#include <compare>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "protocol/message.hpp"

namespace bacp::baselines {

class GbnSender {
public:
    /// \p domain = 0 selects unbounded sequence numbers; otherwise wire
    /// sequence numbers are residues mod \p domain (must be > w).
    explicit GbnSender(Seq w, Seq domain = 0);

    Seq window() const { return w_; }
    Seq domain() const { return domain_; }
    Seq na() const { return na_; }
    Seq ns() const { return ns_; }
    Seq outstanding() const { return ns_ - na_; }
    bool has_outstanding() const { return na_ < ns_; }

    bool can_send_new() const { return ns_ < na_ + w_; }
    /// Sends the next new message (wire seq is the residue when bounded).
    proto::Data send_new();

    /// Processes a cumulative acknowledgment (the ack's hi field).
    /// Unbounded mode ignores stale acks correctly; bounded mode contains
    /// the SI aliasing bug by design.
    void on_ack(const proto::Ack& ack);

    /// Go-back-N retransmission: every outstanding message, in order.
    std::vector<proto::Data> retransmit_window() const;

    /// Chaos (src/chaos): regresses na as if the cumulative-ack state
    /// was lost; the receiver's next cumulative ack restores it in one
    /// round trip, at the cost of retransmitting [new_na, ns).  Never
    /// called by the protocol itself.
    void chaos_regress_na(Seq new_na);

    friend bool operator==(const GbnSender&, const GbnSender&) = default;

    template <typename H>
    void feed(H&& h) const {
        h(na_);
        h(ns_);
    }

private:
    Seq wire_seq(Seq m) const { return domain_ == 0 ? m : m % domain_; }

    Seq w_;
    Seq domain_;
    Seq na_ = 0;
    Seq ns_ = 0;
};

class GbnReceiver {
public:
    explicit GbnReceiver(Seq domain = 0);

    Seq domain() const { return domain_; }
    /// Next expected in-order sequence number (true, unbounded count).
    Seq nr() const { return nr_; }
    /// nr value covered by the last ack sent (chaos + tests).
    Seq acked() const { return acked_; }

    /// Accepts the message when it is the expected one; anything else is
    /// discarded (go-back-N receivers keep no out-of-order buffer).
    /// A discard of a previously-accepted duplicate arms the re-ack guard.
    void on_data(const proto::Data& msg);

    /// Guard of the (separate, nondeterministic) ack action: there is
    /// something new to acknowledge, or a duplicate asked for a re-ack.
    bool can_ack() const { return (nr_ > acked_ || reack_) && nr_ > 0; }
    /// Emits the cumulative acknowledgment for nr - 1.
    proto::Ack make_ack();

    /// Chaos (src/chaos): forgets acknowledgment progress (acked :=
    /// new_acked <= acked); the receiver re-acknowledges cumulatively on
    /// its next ack action.  nr itself never regresses (it is the
    /// delivery count).
    void chaos_regress_acked(Seq new_acked);

    friend bool operator==(const GbnReceiver&, const GbnReceiver&) = default;

    template <typename H>
    void feed(H&& h) const {
        h(nr_);
        h(acked_);
        h(static_cast<Seq>(reack_));
    }

private:
    Seq wire_seq(Seq m) const { return domain_ == 0 ? m : m % domain_; }

    Seq domain_;
    Seq nr_ = 0;     // true count of accepted messages
    Seq acked_ = 0;  // nr value covered by the last ack sent
    bool reack_ = false;
};

}  // namespace bacp::baselines
