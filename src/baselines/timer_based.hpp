#pragma once

/// \file timer_based.hpp
/// Time-constrained window protocol (Stenning; Shankar & Lam), the second
/// existing approach the paper's introduction discusses.
///
/// Bounded sequence numbers + cumulative acks become safe under reorder by
/// adding a *real-time* constraint: "a specified time period should elapse
/// between the sending of two data messages with the same sequence
/// number", long enough that no copy of the earlier incarnation or its
/// acknowledgment is still in transit.  The cost is the paper's E7 claim:
/// with a small sequence-number domain N the send rate is capped at
/// N / reuse_interval, because every N-th message must wait out the
/// spacing -- block acknowledgment needs no such wait.
///
/// Receiver side: a plain cumulative-ack go-back-N receiver over residues
/// (GbnReceiver) -- the spacing makes the residue interpretation exact.

#include <compare>
#include <vector>

#include "common/types.hpp"
#include "protocol/message.hpp"

namespace bacp::baselines {

class TcSender {
public:
    /// \p domain N > w; \p reuse_interval is the minimum time between two
    /// transmissions that share a residue (choose >= L_SR + L_RS).
    TcSender(Seq w, Seq domain, SimTime reuse_interval);

    Seq window() const { return w_; }
    Seq domain() const { return domain_; }
    SimTime reuse_interval() const { return reuse_; }
    Seq na() const { return na_; }
    Seq ns() const { return ns_; }
    Seq outstanding() const { return ns_ - na_; }
    bool has_outstanding() const { return na_ < ns_; }

    /// Window half of the send guard.
    bool window_open() const { return ns_ < na_ + w_; }
    /// Real-time half: the residue of ns was last used long enough ago.
    bool residue_free(SimTime now) const;
    bool can_send_new(SimTime now) const { return window_open() && residue_free(now); }
    /// Earliest time the residue constraint for ns clears (may be in the
    /// past).  Lets the runtime schedule a precise retry instead of polling.
    SimTime residue_ready_at() const;

    /// Sends the next new message at time \p now (records residue usage).
    proto::Data send_new(SimTime now);

    /// Cumulative ack processing over residues (safe thanks to spacing).
    void on_ack(const proto::Ack& ack);

    /// Go-back-N retransmission of the outstanding window; the runtime
    /// must call note_resend for each copy actually placed on the channel.
    std::vector<proto::Data> retransmit_window() const;
    void note_resend(Seq true_seq, SimTime now);

private:
    Seq wire_seq(Seq m) const { return m % domain_; }

    Seq w_;
    Seq domain_;
    SimTime reuse_;
    Seq na_ = 0;
    Seq ns_ = 0;
    std::vector<SimTime> last_use_;  // per residue; kNever when unused
    static constexpr SimTime kNever = -1;
};

}  // namespace bacp::baselines
