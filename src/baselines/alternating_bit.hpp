#pragma once

/// \file alternating_bit.hpp
/// Alternating-bit protocol (Lynch; Bartlett, Scantlebury & Wilkinson) --
/// the historical root of the window protocol (paper SI) and the w = 1
/// degenerate case.  One message outstanding, one sequence bit.
///
/// ABP assumes FIFO channels; over reordering channels it is unsafe, which
/// the test suite demonstrates (that is *why* the paper's protocol
/// exists).  Benchmarks run it over FIFO channels as the no-pipelining
/// floor.

#include <compare>
#include <optional>

#include "common/types.hpp"
#include "protocol/message.hpp"

namespace bacp::baselines {

class AbpSender {
public:
    /// True when a new message may enter (previous one acknowledged).
    bool can_send_new() const { return !awaiting_ack_; }

    /// Sends the next message, tagged with the current bit.
    proto::Data send_new();

    /// Retransmission of the in-flight message (timeout path).
    proto::Data resend() const;
    bool awaiting_ack() const { return awaiting_ack_; }

    /// Handles an acknowledgment; acks with the wrong bit are ignored.
    void on_ack(const proto::Ack& ack);

    /// Count of messages accepted by the peer so far (local view).
    Seq completed() const { return completed_; }

    friend bool operator==(const AbpSender&, const AbpSender&) = default;

private:
    Seq bit_ = 0;  // 0 or 1
    bool awaiting_ack_ = false;
    Seq completed_ = 0;
};

class AbpReceiver {
public:
    /// Handles a data message; always returns the ack to send (the bit of
    /// the last accepted message).
    proto::Ack on_data(const proto::Data& msg);

    /// Messages accepted in order.
    Seq delivered() const { return delivered_; }

    friend bool operator==(const AbpReceiver&, const AbpReceiver&) = default;

private:
    Seq expected_bit_ = 0;
    Seq delivered_ = 0;
};

}  // namespace bacp::baselines
