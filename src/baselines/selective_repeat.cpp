#include "baselines/selective_repeat.hpp"

#include "common/assert.hpp"

namespace bacp::baselines {

SrReceiver::SrReceiver(Seq w) : w_(w), rcvd_(w) {
    BACP_ASSERT_MSG(w > 0, "window size must be positive");
}

proto::Ack SrReceiver::on_data(const proto::Data& msg) {
    const Seq v = msg.seq;
    BACP_ASSERT_MSG(v < nr_ + w_, "data beyond receive window");
    if (v >= nr_ && !rcvd_.test(v)) rcvd_.set(v);
    // Distinct acknowledgment for every data message, always.
    return proto::Ack{v, v};
}

void SrReceiver::chaos_clear_rcvd(Seq m) {
    BACP_ASSERT_MSG(m > nr_ && m < nr_ + w_, "chaos rcvd clear outside (nr, nr+w)");
    rcvd_.clear(m);
}

void SrReceiver::deliver() {
    BACP_ASSERT_MSG(can_deliver(), "deliver while next message missing");
    ++nr_;
    rcvd_.advance_to(nr_);
}

}  // namespace bacp::baselines
