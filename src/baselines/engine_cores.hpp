#pragma once

/// \file engine_cores.hpp
/// EndpointCore adapters for the four baseline protocols, so the
/// runtime::Engine drives them through the same transport layer as the
/// block-ack family (see runtime/engine.hpp).
///
/// Each adapter pairs the pure sender/receiver cores and exposes the
/// engine's true-sequence-number surface; residue translation (go-back-N
/// bounded mode, the time-constrained domain) happens here.  The
/// adapters declare their classic timer discipline as the default mode
/// (SimpleTimer for the single-timer baselines, PerMessageTimer for
/// selective repeat), but all four TimeoutModes work for every one of
/// them.

#include <optional>
#include <string>
#include <vector>

#include "ba/sender.hpp"
#include "baselines/alternating_bit.hpp"
#include "baselines/gobackn.hpp"
#include "baselines/selective_repeat.hpp"
#include "baselines/timer_based.hpp"
#include "common/assert.hpp"
#include "common/types.hpp"
#include "protocol/message.hpp"
#include "runtime/ack_clip.hpp"
#include "runtime/engine.hpp"

namespace bacp::baselines {

/// Alternating-bit (stop-and-wait): one message outstanding, FIFO
/// channels only.  The no-pipelining floor in the window-scaling
/// experiments.
class AbpCore {
public:
    struct Options {};

    static constexpr bool kRequiresFifo = true;  // ABP is unsafe over reorder
    static constexpr runtime::TimeoutMode kDefaultTimeoutMode =
        runtime::TimeoutMode::SimpleTimer;
    static constexpr bool kInvariantCheckable = false;
    static constexpr bool kCumulativeAcks = true;  // ack names the delivery floor

    explicit AbpCore(const runtime::EngineConfig&, Options = {}) {}

    const AbpSender& sender_core() const { return sender_; }
    const AbpReceiver& receiver_core() const { return receiver_; }

    bool can_send_new() const { return sender_.can_send_new(); }
    proto::Data send_new(SimTime) { return sender_.send_new(); }
    void on_ack(const proto::Ack& ack, const runtime::TxView&) { sender_.on_ack(ack); }
    bool has_outstanding() const { return sender_.awaiting_ack(); }

    runtime::RxOutcome on_data(const proto::Data& msg, SimTime) {
        runtime::RxOutcome out;
        const Seq before = receiver_.delivered();
        const proto::Ack ack = receiver_.on_data(msg);  // always acks
        out.delivered = receiver_.delivered() - before;
        out.duplicate = out.delivered == 0;
        out.immediate_ack = ack;
        return out;
    }

    Seq ack_pending() const { return 0; }  // every arrival acks immediately
    proto::Ack make_ack() { return {}; }   // unreachable: ack_pending is 0

    void resend_candidates(std::vector<Seq>& out) const {
        if (sender_.awaiting_ack()) out.push_back(sender_.completed());
    }
    bool can_resend(Seq true_seq) const {
        return sender_.awaiting_ack() && true_seq == sender_.completed();
    }
    proto::Data resend(Seq, SimTime) { return sender_.resend(); }
    void simple_timeout_set(std::vector<Seq>& out) const { out.push_back(sender_.completed()); }

private:
    AbpSender sender_;
    AbpReceiver receiver_;
};

/// Go-back-N with cumulative acknowledgments.  domain = 0 selects
/// unbounded sequence numbers (safe under loss AND reorder); a bounded
/// domain reproduces the SI aliasing bug for the model checker and is
/// NOT safe over reordering channels.
class GbnCore {
public:
    struct Options {
        Seq domain = 0;  // 0 = unbounded (safe); > w only for demonstrations
    };

    static constexpr bool kRequiresFifo = false;
    static constexpr runtime::TimeoutMode kDefaultTimeoutMode =
        runtime::TimeoutMode::SimpleTimer;
    static constexpr bool kInvariantCheckable = false;
    static constexpr bool kCumulativeAcks = true;

    GbnCore(const runtime::EngineConfig& cfg, Options options)
        : sender_(cfg.w, options.domain), receiver_(options.domain) {}

    const GbnSender& sender_core() const { return sender_; }
    const GbnReceiver& receiver_core() const { return receiver_; }

    bool can_send_new() const { return sender_.can_send_new(); }
    proto::Data send_new(SimTime) { return sender_.send_new(); }
    void on_ack(const proto::Ack& ack, const runtime::TxView&) { sender_.on_ack(ack); }
    bool has_outstanding() const { return sender_.has_outstanding(); }

    runtime::RxOutcome on_data(const proto::Data& msg, SimTime) {
        runtime::RxOutcome out;
        const Seq before = receiver_.nr();
        receiver_.on_data(msg);
        out.delivered = receiver_.nr() - before;
        out.duplicate = out.delivered == 0;
        return out;
    }

    /// Cumulative acks ride the engine's ack policy; the classic eager
    /// policy acknowledges after every arrival (including duplicate
    /// re-acks), exactly the traditional formulation.
    Seq ack_pending() const { return receiver_.can_ack() ? 1 : 0; }
    proto::Ack make_ack() { return receiver_.make_ack(); }

    void resend_candidates(std::vector<Seq>& out) const {
        for (Seq m = sender_.na(); m < sender_.ns(); ++m) out.push_back(m);
    }
    bool can_resend(Seq true_seq) const {
        return true_seq >= sender_.na() && true_seq < sender_.ns();
    }
    proto::Data resend(Seq true_seq, SimTime) { return proto::Data{wire_of(true_seq)}; }

    /// Go back N: the simple timer retransmits the entire outstanding
    /// window, in order.
    void simple_timeout_set(std::vector<Seq>& out) const { resend_candidates(out); }

    /// Wire value the message with true sequence number \p m travels
    /// under: the residue when a bounded domain is configured, the true
    /// value otherwise.  Environments that key per-frame state by wire
    /// value (the net runtime's payload stash) consult this.
    Seq wire_seq(Seq m) const { return wire_of(m); }

    /// Chaos hook (runtime::kCoreCorruptible, src/chaos): go-back-N has
    /// exactly two forgettable facts -- the sender's cumulative na and
    /// the receiver's ack progress.  Unbounded domain only: regressing
    /// bounded-mode state feeds the SI aliasing bug instead of testing
    /// recovery.
    std::string corrupt_state(Rng& rng) {
        if (sender_.domain() != 0) return "";
        const std::uint64_t first = rng.uniform(2);
        for (std::uint64_t k = 0; k < 2; ++k) {
            if ((first + k) % 2 == 0) {
                const Seq ns = sender_.ns();
                const Seq floor = ns >= sender_.window() ? ns - sender_.window() : 0;
                const Seq old_na = sender_.na();
                if (old_na <= floor) continue;
                const Seq new_na = floor + rng.uniform(old_na - floor);
                sender_.chaos_regress_na(new_na);
                return "gbn sender na " + std::to_string(old_na) + " -> " +
                       std::to_string(new_na);
            }
            const Seq acked = receiver_.acked();
            if (acked == 0) continue;
            const Seq new_acked = rng.uniform(acked);
            receiver_.chaos_regress_acked(new_acked);
            return "gbn receiver re-acks from " + std::to_string(new_acked);
        }
        return "";
    }

private:
    Seq wire_of(Seq m) const { return sender_.domain() == 0 ? m : m % sender_.domain(); }

    GbnSender sender_;
    GbnReceiver receiver_;
};

/// Selective repeat: the sender is exactly ba::Sender (block acks degrade
/// gracefully to singletons); the receiver acknowledges *every* data
/// message individually -- the paper's "severe restriction" whose ack
/// overhead E4 quantifies.  Per-message conservative timers are the
/// natural discipline.  Incoming acks are clipped to the sender's
/// still-unacknowledged runs (runtime/ack_clip.hpp) before reaching the
/// strict ba::Sender: over the DES channels (which never duplicate)
/// clipping is the identity, but a real or impaired network can
/// duplicate an ack datagram outright, and the re-ack of a buffered
/// duplicate can race its original under reordering.
class SrCore {
public:
    struct Options {};

    static constexpr bool kRequiresFifo = false;
    static constexpr runtime::TimeoutMode kDefaultTimeoutMode =
        runtime::TimeoutMode::PerMessageTimer;
    static constexpr bool kInvariantCheckable = false;
    // Selective acks name individual arrivals: sequence numbers *below*
    // an acked one may still be undelivered holes, so a stale-shifted
    // ack is a false ack here, not a harmless duplicate.
    static constexpr bool kCumulativeAcks = false;

    explicit SrCore(const runtime::EngineConfig& cfg, Options = {})
        : sender_(cfg.w), receiver_(cfg.w) {}

    const ba::Sender& sender_core() const { return sender_; }
    const SrReceiver& receiver_core() const { return receiver_; }

    bool can_send_new() const { return sender_.can_send_new(); }
    proto::Data send_new(SimTime) { return sender_.send_new(); }
    void on_ack(const proto::Ack& ack, const runtime::TxView&) {
        runs_scratch_.clear();
        runtime::clip_ack_unbounded_into(sender_, ack, runs_scratch_);
        for (const proto::Ack& run : runs_scratch_) sender_.on_ack(run);
    }
    bool has_outstanding() const { return sender_.outstanding() > 0; }

    runtime::RxOutcome on_data(const proto::Data& msg, SimTime) {
        runtime::RxOutcome out;
        // Same hardening as ba::EngineCore: a CRC-valid frame can still
        // carry an impossible sequence number; reject it instead of
        // tripping the pure receiver's window precondition.
        if (msg.seq >= receiver_.nr() + receiver_.window()) {
            out.rejected = true;
            return out;
        }
        const bool was_new = msg.seq >= receiver_.nr() && !receiver_.rcvd(msg.seq);
        // Selective repeat: one distinct acknowledgment per data message.
        out.immediate_ack = receiver_.on_data(msg);
        out.duplicate = !was_new;
        while (receiver_.can_deliver()) {
            receiver_.deliver();
            ++out.delivered;
        }
        return out;
    }

    Seq ack_pending() const { return 0; }  // every arrival acks immediately
    proto::Ack make_ack() { return {}; }   // unreachable: ack_pending is 0

    void resend_candidates(std::vector<Seq>& out) const { sender_.resend_candidates(out); }
    bool can_resend(Seq true_seq) const { return sender_.can_resend(true_seq); }
    proto::Data resend(Seq true_seq, SimTime) { return sender_.resend(true_seq); }
    void simple_timeout_set(std::vector<Seq>& out) const { out.push_back(sender_.na()); }

    /// Chaos hook (runtime::kCoreCorruptible, src/chaos): the sender is
    /// ba::Sender, so its scoreboard faults apply verbatim.  Receiver
    /// memory is *not* corruptible here: SR acks every arrival
    /// individually and immediately, so any buffered message may already
    /// be promised by an ack in flight -- once that ack lands, the
    /// sender provably never resends and a forgotten copy wedges the
    /// session.  (BA's receiver stash above the contiguous block is
    /// unacked until the block closes, which is what makes the same
    /// fault repairable there -- see ba::EngineCore::corrupt_state.)
    std::string corrupt_state(Rng& rng) {
        const std::uint64_t first = rng.uniform(2);
        for (std::uint64_t k = 0; k < 2; ++k) {
            switch ((first + k) % 2) {
                case 0: {  // sender forgets its ack scoreboard
                    const Seq ns = sender_.ns();
                    const Seq w = sender_.window();
                    const Seq floor = ns >= w ? ns - w : 0;
                    const Seq old_na = sender_.na();
                    if (old_na <= floor) break;
                    const Seq new_na = floor + rng.uniform(old_na - floor);
                    sender_.chaos_forget_acks(new_na);
                    return "sr sender forgot acks: na " + std::to_string(old_na) + " -> " +
                           std::to_string(new_na);
                }
                case 1: {  // one ackd bit flips off
                    Seq count = 0;
                    for (Seq i = sender_.na(); i < sender_.ns(); ++i) {
                        count += sender_.ackd(i) ? 1 : 0;
                    }
                    if (count == 0) break;
                    Seq pick = rng.uniform(count);
                    for (Seq i = sender_.na(); i < sender_.ns(); ++i) {
                        if (!sender_.ackd(i)) continue;
                        if (pick == 0) {
                            sender_.chaos_clear_ackd(i);
                            return "sr sender ackd[" + std::to_string(i) + "] flipped off";
                        }
                        --pick;
                    }
                    break;
                }
            }
        }
        return "";
    }

private:
    ba::Sender sender_;
    SrReceiver receiver_;
    std::vector<proto::Ack> runs_scratch_;  // clip output, reused per ack
};

/// Time-constrained protocol (Stenning; Shankar & Lam): bounded sequence
/// numbers + cumulative acks, made safe by a minimum reuse interval
/// between transmissions sharing a residue.  When the window wants to
/// advance but the residue of ns is still quarantined, the core reports
/// the exact clearing time through send_blocked_until -- that stall is
/// the N / reuse_interval throughput cap experiment E7 measures.
///
/// The reuse interval protects *data* residue reuse, but the cumulative
/// acks still alias when duplicate re-acks are reordered across a domain
/// wrap, so the baseline runs in its classically safe regime (FIFO
/// channels, domain > w) -- the spacing stall E7 measures is
/// channel-order independent.
class TcCore {
public:
    struct Options {
        Seq domain = 16;             // sequence-number domain N (> w)
        SimTime reuse_interval = 0;  // 0 = derive: L_SR + L_RS + margin
    };

    static constexpr bool kRequiresFifo = true;
    static constexpr runtime::TimeoutMode kDefaultTimeoutMode =
        runtime::TimeoutMode::SimpleTimer;
    static constexpr bool kInvariantCheckable = false;
    static constexpr bool kCumulativeAcks = true;

    TcCore(const runtime::EngineConfig& cfg, Options options)
        : sender_(cfg.w, options.domain,
                  options.reuse_interval > 0
                      ? options.reuse_interval
                      : cfg.data_link.max_lifetime() + cfg.ack_link.max_lifetime() +
                            kMillisecond),
          receiver_(options.domain) {}

    const TcSender& sender_core() const { return sender_; }
    const GbnReceiver& receiver_core() const { return receiver_; }

    bool can_send_new() const { return sender_.window_open(); }

    /// Real-time half of the send guard: residue quarantine.
    SimTime send_blocked_until(SimTime now) const {
        if (sender_.residue_free(now)) return now;
        const SimTime ready = sender_.residue_ready_at();
        BACP_ASSERT(ready > now);
        return ready;
    }

    proto::Data send_new(SimTime now) { return sender_.send_new(now); }
    void on_ack(const proto::Ack& ack, const runtime::TxView&) { sender_.on_ack(ack); }
    bool has_outstanding() const { return sender_.has_outstanding(); }

    runtime::RxOutcome on_data(const proto::Data& msg, SimTime) {
        runtime::RxOutcome out;
        const Seq before = receiver_.nr();
        receiver_.on_data(msg);
        out.delivered = receiver_.nr() - before;
        out.duplicate = out.delivered == 0;
        return out;
    }

    Seq ack_pending() const { return receiver_.can_ack() ? 1 : 0; }
    proto::Ack make_ack() { return receiver_.make_ack(); }

    void resend_candidates(std::vector<Seq>& out) const {
        for (Seq m = sender_.na(); m < sender_.ns(); ++m) out.push_back(m);
    }
    bool can_resend(Seq true_seq) const {
        return true_seq >= sender_.na() && true_seq < sender_.ns();
    }
    proto::Data resend(Seq true_seq, SimTime now) {
        sender_.note_resend(true_seq, now);  // records the residue reuse
        return proto::Data{true_seq % sender_.domain()};
    }
    void simple_timeout_set(std::vector<Seq>& out) const { resend_candidates(out); }

    /// Wire residue of true sequence number \p m (always mod N here).
    Seq wire_seq(Seq m) const { return m % sender_.domain(); }

private:
    TcSender sender_;
    GbnReceiver receiver_;
};

}  // namespace bacp::baselines
