#include "protocol/seqnum.hpp"

// All of seqnum.hpp is constexpr; this translation unit pins the library
// and hosts compile-time checks of the paper's equations (13) and (14).

namespace bacp::proto {

namespace {

// Equation 13: for 0 <= x <= y < x + n,
//   (x div n) == (y div n)  iff  (y mod n) >= (x mod n).
constexpr bool check_eq13(Seq x, Seq y, Seq n) {
    return ((x / n) == (y / n)) == ((y % n) >= (x % n));
}

// Equation 14: for 0 <= x <= y < x + n,
//   (1 + (x div n)) == (y div n)  iff  (y mod n) < (x mod n).
constexpr bool check_eq14(Seq x, Seq y, Seq n) {
    return ((1 + (x / n)) == (y / n)) == ((y % n) < (x % n));
}

constexpr bool check_small_domain() {
    for (Seq n = 1; n <= 8; ++n) {
        for (Seq x = 0; x < 3 * n; ++x) {
            for (Seq y = x; y < x + n; ++y) {
                if (!check_eq13(x, y, n)) return false;
                if (!check_eq14(x, y, n)) return false;
                if (reconstruct(x, to_wire(y, n), n) != y) return false;
            }
        }
    }
    return true;
}

static_assert(check_small_domain(), "paper equations (13)/(14) must hold");

}  // namespace

}  // namespace bacp::proto
