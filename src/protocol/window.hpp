#pragma once

/// \file window.hpp
/// Window-scoped boolean array.
///
/// Paper SII reasons over infinite arrays ackd[0..] and rcvd[0..]; SV shows
/// that only a w-slot window of each is ever consulted:
///   - sender: ackd[na .. ns-1]   (everything below na is true, above false)
///   - receiver: rcvd[vr .. *]    (everything below vr is true)
/// WindowBitmap realizes exactly that representation: a base sequence
/// number plus w bits, with the closed-form answer outside the window.
/// Storage is circular so sliding the base is O(1) per step; equality and
/// hashing compare *logical* content (the model checker relies on states
/// being canonical).

#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace bacp::proto {

class WindowBitmap {
public:
    /// Window of \p width bits starting at sequence number \p base.
    /// Everything below base reads true; everything at or beyond
    /// base+width reads false.
    explicit WindowBitmap(Seq width, Seq base = 0) : base_(base), bits_(width, false) {
        BACP_ASSERT_MSG(width > 0, "window width must be positive");
    }

    Seq base() const { return base_; }
    Seq width() const { return bits_.size(); }

    /// Logical array lookup at any sequence number.
    bool test(Seq m) const {
        if (m < base_) return true;
        if (m >= base_ + width()) return false;
        return bits_[slot(m)];
    }

    /// Sets position \p m (must lie inside the window).
    void set(Seq m) {
        BACP_ASSERT_MSG(m >= base_ && m < base_ + width(), "set outside window");
        bits_[slot(m)] = true;
    }

    /// Clears position \p m (must lie inside the window).  Normal
    /// protocol operation never unsets a bit -- this exists for the
    /// chaos corruptors, which model a peer forgetting state it had
    /// already recorded (Dolev-style transient memory faults).
    void clear(Seq m) {
        BACP_ASSERT_MSG(m >= base_ && m < base_ + width(), "clear outside window");
        bits_[slot(m)] = false;
    }

    /// Slides the base forward to \p new_base.  Every position the base
    /// moves past must already be set (they become implicitly true).
    void advance_to(Seq new_base) {
        BACP_ASSERT(new_base >= base_);
        while (base_ < new_base) {
            BACP_ASSERT_MSG(bits_[start_], "advancing past an unset position");
            bits_[start_] = false;  // the slot is recycled for base + width
            start_ = start_ + 1 == bits_.size() ? 0 : start_ + 1;
            ++base_;
        }
    }

    /// Number of set bits inside the window.
    Seq popcount() const {
        Seq count = 0;
        for (const bool bit : bits_) count += bit ? 1 : 0;
        return count;
    }

    /// Logical equality (representation-independent).
    friend bool operator==(const WindowBitmap& a, const WindowBitmap& b) {
        if (a.base_ != b.base_ || a.bits_.size() != b.bits_.size()) return false;
        for (Seq m = a.base_; m < a.base_ + a.width(); ++m) {
            if (a.bits_[a.slot(m)] != b.bits_[b.slot(m)]) return false;
        }
        return true;
    }

    /// Stable hash feed: base then logical bits.
    template <typename H>
    void feed(H&& h) const {
        h(base_);
        for (Seq m = base_; m < base_ + width(); ++m) h(static_cast<Seq>(bits_[slot(m)]));
    }

private:
    std::size_t slot(Seq m) const {
        const std::size_t offset = static_cast<std::size_t>(m - base_);
        const std::size_t raw = start_ + offset;
        return raw >= bits_.size() ? raw - bits_.size() : raw;
    }

    Seq base_;
    std::size_t start_ = 0;  // circular index of base_
    std::vector<bool> bits_;
};

}  // namespace bacp::proto
