#include "protocol/message.hpp"

#include <sstream>

namespace bacp::proto {

std::string to_string(const Data& msg) {
    std::ostringstream os;
    os << "D(" << msg.seq << ")";
    return os.str();
}

std::string to_string(const Ack& msg) {
    std::ostringstream os;
    os << "A(" << msg.lo << "," << msg.hi << ")";
    return os.str();
}

std::string to_string(const Nak& msg) {
    std::ostringstream os;
    os << "N(" << msg.seq << ")";
    return os.str();
}

std::string to_string(const DataAck& msg) {
    std::ostringstream os;
    os << "D+A(" << msg.data.seq << ";" << msg.ack.lo << "," << msg.ack.hi << ")";
    return os.str();
}

std::string to_string(const Message& msg) {
    return std::visit([](const auto& m) { return to_string(m); }, msg);
}

}  // namespace bacp::proto
