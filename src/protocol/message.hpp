#pragma once

/// \file message.hpp
/// Abstract protocol messages.
///
/// Following paper SII, a data message "consists solely of its sequence
/// number"; an acknowledgment carries the block pair (lo, hi) and
/// acknowledges every data message with sequence number in [lo, hi].
/// Payload bytes are a concern of the link layer (src/link), which maps
/// sequence numbers to user buffers on both sides.

#include <compare>
#include <cstdint>
#include <string>
#include <variant>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace bacp::proto {

/// Data message: just a sequence number (unbounded protocols use the full
/// 64-bit value; bounded ones transmit a residue mod n = 2w).
struct Data {
    Seq seq = 0;
    friend auto operator<=>(const Data&, const Data&) = default;
};

/// Block acknowledgment (lo, hi): acknowledges all data messages with
/// sequence numbers in [lo, hi].  Invariant: lo <= hi.
struct Ack {
    Seq lo = 0;
    Seq hi = 0;
    friend auto operator<=>(const Ack&, const Ack&) = default;

    /// True when this ack covers sequence number \p m (paper's *RS^m test).
    bool covers(Seq m) const { return lo <= m && m <= hi; }
};

/// Negative acknowledgment (protocol extension, not part of the paper's
/// core): the receiver reports that it currently lacks the message with
/// sequence number \p seq (its nr).  A NAK is a receiver-assisted oracle
/// for timeout(i)'s "(i < nr || !rcvd[i])" conjunct: it lets the sender
/// fast-retransmit without waiting out a conservative timer.  NAKs are
/// advisory -- losing or duplicating them affects only latency.
struct Nak {
    Seq seq = 0;
    friend auto operator<=>(const Nak&, const Nak&) = default;
};

/// Piggybacked data + acknowledgment (duplex extension): when traffic
/// flows both ways, an endpoint rides its pending block acknowledgment on
/// an outgoing data message instead of spending a separate frame -- the
/// classic full-duplex refinement of every window protocol.
struct DataAck {
    Data data;
    Ack ack;
    friend auto operator<=>(const DataAck&, const DataAck&) = default;
};

/// Any message that can sit in a channel.
using Message = std::variant<Data, Ack, Nak, DataAck>;

/// True if \p msg is a data message with the given sequence number.
inline bool is_data(const Message& msg, Seq seq) {
    const auto* d = std::get_if<Data>(&msg);
    return d != nullptr && d->seq == seq;
}

/// True if \p msg is an ack covering sequence number \p m.
inline bool ack_covers(const Message& msg, Seq m) {
    const auto* a = std::get_if<Ack>(&msg);
    return a != nullptr && a->covers(m);
}

/// Compact rendering, e.g. "D(5)", "A(2,4)", "N(3)", for traces and tests.
std::string to_string(const Message& msg);
std::string to_string(const Data& msg);
std::string to_string(const Ack& msg);
std::string to_string(const Nak& msg);
std::string to_string(const DataAck& msg);

}  // namespace bacp::proto
