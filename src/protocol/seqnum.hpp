#pragma once

/// \file seqnum.hpp
/// Sequence-number algebra for the bounded protocol of paper SV.
///
/// The paper's development: sender and receiver keep monotonically
/// increasing counters internally but transmit residues (m mod n) with
/// n = 2w.  A receiver of a residue reconstructs the true value with the
/// function f (equations 13/14), valid whenever the true value y satisfies
/// x <= y < x + n for a locally known anchor x:
///
///     f(x, y') = y' + n*(x div n)        if y' >= (x mod n)
///              = y' + n*(1 + (x div n))  if y' <  (x mod n)
///
/// where y' = y mod n.  Anchors come from the invariants:
///   (9,10)  na <= i <= j < na + w        (sender, action 1)
///   (11)    max(0, nr - w) <= v < nr + w (receiver, action 3)
///
/// The fully bounded protocol (end of SV) never materializes true values:
/// all state is kept mod n and comparisons are done on residue
/// differences, which are exact whenever the true difference is known to
/// lie in [0, n).  mod_offset() provides that primitive.

#include "common/assert.hpp"
#include "common/types.hpp"

namespace bacp::proto {

/// y mod n for the wire.
constexpr WireSeq to_wire(Seq y, Seq n) { return static_cast<WireSeq>(y % n); }

/// Paper's f(x, y'): reconstructs the true sequence number y from its
/// residue \p y_mod, given an anchor \p x with x <= y < x + n.
constexpr Seq reconstruct(Seq x, WireSeq y_mod, Seq n) {
    const Seq xm = x % n;
    const Seq xd = x / n;
    if (y_mod >= xm) return y_mod + n * xd;
    return y_mod + n * (xd + 1);
}

/// Exact difference b - a given residues mod n, valid when the true
/// difference lies in [0, n).  This is the primitive used by the fully
/// bounded protocol for every comparison (e.g. "ns < na + w" becomes
/// mod_offset(na', ns', n) < w).
constexpr Seq mod_offset(Seq a_mod, Seq b_mod, Seq n) {
    BACP_ASSERT(a_mod < n && b_mod < n);
    return (b_mod + n - a_mod) % n;
}

/// (a + d) mod n.
constexpr Seq mod_add(Seq a_mod, Seq d, Seq n) { return (a_mod + d % n) % n; }

/// (a - d) mod n.
constexpr Seq mod_sub(Seq a_mod, Seq d, Seq n) { return (a_mod + n - d % n) % n; }

/// Sequence-number domain sizing: the paper proves n = 2w suffices.
constexpr Seq domain_for_window(Seq w) { return 2 * w; }

/// True when the true value of \p v_mod (receiver side, anchor nr) is
/// below nr, i.e. the message is a duplicate of an accepted message.
/// Derivation: v - (nr - w) in [0, 2w) by invariant 11 (and v >= 0),
/// so offset = (v' - (nr' - w)) mod n is exact and v < nr iff offset < w.
constexpr bool wire_before_nr(Seq v_mod, Seq nr_mod, Seq w) {
    const Seq n = domain_for_window(w);
    const Seq base = mod_sub(nr_mod, w, n);
    return mod_offset(base, v_mod, n) < w;
}

/// Receiver-side slot of sequence number \p v_mod in a size-w buffer.
constexpr Seq wire_slot(Seq v_mod, Seq w) { return v_mod % w; }

}  // namespace bacp::proto
