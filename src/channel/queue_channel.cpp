#include "channel/queue_channel.hpp"

#include <sstream>

namespace bacp::channel {

QueueChannel::Message QueueChannel::receive_front() {
    BACP_ASSERT_MSG(!messages_.empty(), "receive from empty channel");
    Message msg = messages_.front();
    messages_.pop_front();
    return msg;
}

void QueueChannel::lose_at(std::size_t index) {
    BACP_ASSERT_MSG(index < messages_.size(), "loss index out of range");
    messages_.erase(messages_.begin() + static_cast<std::ptrdiff_t>(index));
}

std::string QueueChannel::to_string() const {
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < messages_.size(); ++i) {
        if (i > 0) os << ", ";
        os << proto::to_string(messages_[i]);
    }
    os << "]";
    return os.str();
}

}  // namespace bacp::channel
