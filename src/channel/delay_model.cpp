#include "channel/delay_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace bacp::channel {

FixedDelay::FixedDelay(SimTime delay) : delay_(delay) {
    BACP_ASSERT_MSG(delay >= 0, "delay must be non-negative");
}

std::unique_ptr<DelayModel> FixedDelay::clone() const { return std::make_unique<FixedDelay>(delay_); }

UniformDelay::UniformDelay(SimTime lo, SimTime hi) : lo_(lo), hi_(hi) {
    BACP_ASSERT_MSG(lo >= 0 && lo <= hi, "uniform delay requires 0 <= lo <= hi");
}

SimTime UniformDelay::sample(Rng& rng) {
    return lo_ + static_cast<SimTime>(rng.uniform(static_cast<std::uint64_t>(hi_ - lo_) + 1));
}

std::unique_ptr<DelayModel> UniformDelay::clone() const {
    return std::make_unique<UniformDelay>(lo_, hi_);
}

ExponentialDelay::ExponentialDelay(SimTime base, SimTime mean, SimTime cap)
    : base_(base), mean_(mean), cap_(cap) {
    BACP_ASSERT_MSG(base >= 0 && mean > 0 && cap >= 0, "invalid exponential delay parameters");
}

SimTime ExponentialDelay::sample(Rng& rng) {
    const auto tail = static_cast<SimTime>(rng.exponential(static_cast<double>(mean_)));
    return base_ + std::min(tail, cap_);
}

std::unique_ptr<DelayModel> ExponentialDelay::clone() const {
    return std::make_unique<ExponentialDelay>(base_, mean_, cap_);
}

HeavyTailDelay::HeavyTailDelay(SimTime base, SimTime scale, double alpha, SimTime cap)
    : base_(base), scale_(scale), alpha_(alpha), cap_(cap) {
    BACP_ASSERT_MSG(base >= 0 && scale > 0 && alpha > 0 && cap >= 0,
                    "invalid heavy-tail delay parameters");
}

SimTime HeavyTailDelay::sample(Rng& rng) {
    const double draw = rng.pareto(static_cast<double>(scale_), alpha_);
    const auto tail = static_cast<SimTime>(std::min(draw, static_cast<double>(cap_)));
    return base_ + std::min(tail, cap_);
}

std::unique_ptr<DelayModel> HeavyTailDelay::clone() const {
    return std::make_unique<HeavyTailDelay>(base_, scale_, alpha_, cap_);
}

}  // namespace bacp::channel
