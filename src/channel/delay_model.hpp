#pragma once

/// \file delay_model.hpp
/// Per-message transit-delay processes for the discrete-event channels.
///
/// Every model has a finite max_delay().  That bound is the channel's
/// message lifetime L: the correctness of the timeout mechanisms (paper
/// SII/SIV, "at most one copy of each data message or its acknowledgment
/// is in transit") requires the sender's timers to exceed the sum of the
/// two directions' lifetimes, so unbounded delay distributions are
/// truncated at an explicit cap.

#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace bacp::channel {

class DelayModel {
public:
    virtual ~DelayModel() = default;
    /// Transit delay for the next message; always <= max_delay().
    virtual SimTime sample(Rng& rng) = 0;
    /// Hard upper bound on any sampled delay (the message lifetime L).
    virtual SimTime max_delay() const = 0;
    virtual std::unique_ptr<DelayModel> clone() const = 0;
};

/// Constant delay (a perfectly deterministic link; no reorder).
class FixedDelay final : public DelayModel {
public:
    explicit FixedDelay(SimTime delay);
    SimTime sample(Rng&) override { return delay_; }
    SimTime max_delay() const override { return delay_; }
    std::unique_ptr<DelayModel> clone() const override;

private:
    SimTime delay_;
};

/// Uniform delay in [lo, hi]; the spread produces message reorder.
class UniformDelay final : public DelayModel {
public:
    UniformDelay(SimTime lo, SimTime hi);
    SimTime sample(Rng& rng) override;
    SimTime max_delay() const override { return hi_; }
    std::unique_ptr<DelayModel> clone() const override;

private:
    SimTime lo_, hi_;
};

/// base + Exp(mean), truncated at base + cap.
class ExponentialDelay final : public DelayModel {
public:
    ExponentialDelay(SimTime base, SimTime mean, SimTime cap);
    SimTime sample(Rng& rng) override;
    SimTime max_delay() const override { return base_ + cap_; }
    std::unique_ptr<DelayModel> clone() const override;

private:
    SimTime base_, mean_, cap_;
};

/// base + bounded Pareto tail: occasional large reorder excursions.
class HeavyTailDelay final : public DelayModel {
public:
    HeavyTailDelay(SimTime base, SimTime scale, double alpha, SimTime cap);
    SimTime sample(Rng& rng) override;
    SimTime max_delay() const override { return base_ + cap_; }
    std::unique_ptr<DelayModel> clone() const override;

private:
    SimTime base_, scale_;
    double alpha_;
    SimTime cap_;
};

}  // namespace bacp::channel
