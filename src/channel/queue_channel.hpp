#pragma once

/// \file queue_channel.hpp
/// FIFO channel variant for the abstract (model-checked) system.
///
/// Classic bounded-sequence-number go-back-N is correct over FIFO channels
/// with loss; the paper's point is that it breaks once channels reorder.
/// This queue-semantics channel lets the model checker demonstrate the
/// contrast (E1 ablation): same protocol, FIFO channel -> safe; set
/// channel -> unsafe.
///
/// Loss may strike any queued element (a lossy FIFO link), but delivery is
/// strictly front-first.

#include <compare>
#include <deque>
#include <string>

#include "common/assert.hpp"
#include "protocol/message.hpp"

namespace bacp::channel {

class QueueChannel {
public:
    using Message = proto::Message;

    std::size_t size() const { return messages_.size(); }
    bool empty() const { return messages_.empty(); }

    void send(const Message& msg) { messages_.push_back(msg); }

    /// Delivery is FIFO: only the front may be received.
    const Message& front() const {
        BACP_ASSERT(!messages_.empty());
        return messages_.front();
    }
    Message receive_front();

    /// Loss can remove any element.
    void lose_at(std::size_t index);

    const std::deque<Message>& messages() const { return messages_; }

    friend bool operator==(const QueueChannel&, const QueueChannel&) = default;

    template <typename H>
    void feed(H&& h) const {
        h(static_cast<Seq>(messages_.size()));
        for (const auto& msg : messages_) {
            if (const auto* d = std::get_if<proto::Data>(&msg)) {
                h(Seq{1});
                h(d->seq);
            } else if (const auto* a = std::get_if<proto::Ack>(&msg)) {
                h(Seq{2});
                h(a->lo);
                h(a->hi);
            } else if (const auto* k = std::get_if<proto::Nak>(&msg)) {
                h(Seq{3});
                h(k->seq);
            } else {
                const auto& da = std::get<proto::DataAck>(msg);
                h(Seq{4});
                h(da.data.seq);
                h(da.ack.lo);
                h(da.ack.hi);
            }
        }
    }

    std::string to_string() const;

private:
    std::deque<Message> messages_;
};

}  // namespace bacp::channel
