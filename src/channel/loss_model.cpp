#include "channel/loss_model.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace bacp::channel {

BernoulliLoss::BernoulliLoss(double p) : p_(p) {
    BACP_ASSERT_MSG(p >= 0.0 && p <= 1.0, "loss probability in [0,1]");
}

std::unique_ptr<LossModel> BernoulliLoss::clone() const {
    return std::make_unique<BernoulliLoss>(p_);
}

GilbertElliottLoss::GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good,
                                       double loss_good, double loss_bad)
    : p_gb_(p_good_to_bad), p_bg_(p_bad_to_good), loss_good_(loss_good), loss_bad_(loss_bad) {
    BACP_ASSERT_MSG(p_gb_ >= 0 && p_gb_ <= 1 && p_bg_ >= 0 && p_bg_ <= 1,
                    "transition probabilities in [0,1]");
    BACP_ASSERT_MSG(loss_good_ >= 0 && loss_good_ <= 1 && loss_bad_ >= 0 && loss_bad_ <= 1,
                    "loss probabilities in [0,1]");
}

bool GilbertElliottLoss::drop(Rng& rng) {
    // Transition first, then draw from the new state's loss rate.
    if (bad_) {
        if (rng.chance(p_bg_)) bad_ = false;
    } else {
        if (rng.chance(p_gb_)) bad_ = true;
    }
    return rng.chance(bad_ ? loss_bad_ : loss_good_);
}

std::unique_ptr<LossModel> GilbertElliottLoss::clone() const {
    return std::make_unique<GilbertElliottLoss>(p_gb_, p_bg_, loss_good_, loss_bad_);
}

double GilbertElliottLoss::steady_state_loss() const {
    const double denom = p_gb_ + p_bg_;
    if (denom == 0.0) return loss_good_;  // chain never leaves Good
    const double pi_bad = p_gb_ / denom;
    return (1.0 - pi_bad) * loss_good_ + pi_bad * loss_bad_;
}

ScriptedLoss::ScriptedLoss(std::vector<std::uint64_t> drop_indices)
    : drop_indices_(std::move(drop_indices)) {
    std::sort(drop_indices_.begin(), drop_indices_.end());
}

bool ScriptedLoss::drop(Rng&) {
    const std::uint64_t index = next_++;
    return std::binary_search(drop_indices_.begin(), drop_indices_.end(), index);
}

std::unique_ptr<LossModel> ScriptedLoss::clone() const {
    auto copy = std::make_unique<ScriptedLoss>(drop_indices_);
    return copy;
}

}  // namespace bacp::channel
