#pragma once

/// \file transit_view.hpp
/// Non-owning view of a multiset of in-transit messages.
///
/// The invariant checker consumes channel contents purely as an unordered
/// multiset (it builds per-sequence counts), so both the sorted
/// channel::SetChannel and the sim::SimChannel in-flight pool expose
/// their storage through this one span-backed type -- an invariant sweep
/// never copies or sorts a channel.

#include <cstddef>
#include <span>

#include "protocol/message.hpp"

namespace bacp::channel {

class TransitView {
public:
    TransitView() = default;
    /*implicit*/ TransitView(std::span<const proto::Message> messages) : messages_(messages) {}

    std::size_t size() const { return messages_.size(); }
    bool empty() const { return messages_.empty(); }

    /// Messages currently in transit, in storage order (NOT sorted).
    std::span<const proto::Message> messages() const { return messages_; }

    auto begin() const { return messages_.begin(); }
    auto end() const { return messages_.end(); }

    /// Paper's *SR^m: number of data messages with sequence number \p m.
    std::size_t count_data(Seq m) const {
        std::size_t count = 0;
        for (const auto& msg : messages_) {
            if (proto::is_data(msg, m)) ++count;
        }
        return count;
    }

    /// Paper's *RS^m: number of acks (x, y) with x <= m <= y.
    std::size_t count_ack_covering(Seq m) const {
        std::size_t count = 0;
        for (const auto& msg : messages_) {
            if (proto::ack_covers(msg, m)) ++count;
        }
        return count;
    }

private:
    std::span<const proto::Message> messages_;
};

}  // namespace bacp::channel
