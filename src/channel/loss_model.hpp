#pragma once

/// \file loss_model.hpp
/// Per-message loss processes for the discrete-event channels.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace bacp::channel {

/// Decides, message by message, whether a transmission is lost.
/// Implementations may keep state (burst models), so one instance serves
/// exactly one channel direction.
class LossModel {
public:
    virtual ~LossModel() = default;
    /// True when the current message should be dropped.
    virtual bool drop(Rng& rng) = 0;
    /// True when drop() can never return true AND never consumes
    /// randomness; channels query this once and skip the per-message
    /// virtual call on lossless links.
    virtual bool never_drops() const { return false; }
    /// Fresh instance with the same parameters and reset state.
    virtual std::unique_ptr<LossModel> clone() const = 0;
};

/// Never drops.
class NoLoss final : public LossModel {
public:
    bool drop(Rng&) override { return false; }
    bool never_drops() const override { return true; }
    std::unique_ptr<LossModel> clone() const override { return std::make_unique<NoLoss>(); }
};

/// Independent (Bernoulli) loss with probability \p p per message.
class BernoulliLoss final : public LossModel {
public:
    explicit BernoulliLoss(double p);
    bool drop(Rng& rng) override { return rng.chance(p_); }
    std::unique_ptr<LossModel> clone() const override;
    double probability() const { return p_; }

private:
    double p_;
};

/// Two-state Gilbert-Elliott burst-loss model.  In the Good state messages
/// drop with probability \p loss_good, in the Bad state with \p loss_bad;
/// state transitions occur per message with the given probabilities.
class GilbertElliottLoss final : public LossModel {
public:
    GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good, double loss_good,
                       double loss_bad);
    bool drop(Rng& rng) override;
    std::unique_ptr<LossModel> clone() const override;
    bool in_bad_state() const { return bad_; }
    /// Long-run average loss probability of the chain.
    double steady_state_loss() const;

private:
    double p_gb_, p_bg_, loss_good_, loss_bad_;
    bool bad_ = false;
};

/// Drops exactly the messages whose (0-based) transmission indices are
/// listed; everything else passes.  Used to script the paper's SI
/// scenario deterministically.
class ScriptedLoss final : public LossModel {
public:
    explicit ScriptedLoss(std::vector<std::uint64_t> drop_indices);
    bool drop(Rng& rng) override;
    std::unique_ptr<LossModel> clone() const override;

private:
    std::vector<std::uint64_t> drop_indices_;  // sorted
    std::uint64_t next_ = 0;                   // transmission counter
};

}  // namespace bacp::channel
