#include "channel/set_channel.hpp"

#include <algorithm>
#include <sstream>

namespace bacp::channel {

void SetChannel::send(const Message& msg) {
    const auto it = std::upper_bound(messages_.begin(), messages_.end(), msg);
    messages_.insert(it, msg);
}

SetChannel::Message SetChannel::receive_at(std::size_t index) {
    BACP_ASSERT_MSG(index < messages_.size(), "receive from empty channel position");
    Message msg = messages_[index];
    messages_.erase(messages_.begin() + static_cast<std::ptrdiff_t>(index));
    return msg;
}

SetChannel::Message SetChannel::receive_random(Rng& rng) {
    BACP_ASSERT_MSG(!messages_.empty(), "receive from empty channel");
    return receive_at(static_cast<std::size_t>(rng.uniform(messages_.size())));
}

void SetChannel::lose_at(std::size_t index) {
    BACP_ASSERT_MSG(index < messages_.size(), "loss from empty channel position");
    messages_.erase(messages_.begin() + static_cast<std::ptrdiff_t>(index));
}

std::size_t SetChannel::count_data(Seq m) const { return view().count_data(m); }

std::size_t SetChannel::count_ack_covering(Seq m) const { return view().count_ack_covering(m); }

std::string SetChannel::to_string() const {
    std::ostringstream os;
    os << "{";
    for (std::size_t i = 0; i < messages_.size(); ++i) {
        if (i > 0) os << ", ";
        os << proto::to_string(messages_[i]);
    }
    os << "}";
    return os.str();
}

}  // namespace bacp::channel
