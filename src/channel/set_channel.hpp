#pragma once

/// \file set_channel.hpp
/// The paper's abstract channel: "formally defined as a set of messages
/// whose membership changes as new messages are sent into it or as old
/// messages are lost or received from it."
///
/// Receiving picks an *arbitrary* element (message disorder is the default,
/// not an error case); losing removes an arbitrary element.  The
/// representation is a sorted multiset so that logically equal channels
/// compare equal -- the explicit-state model checker depends on that
/// canonical form.

#include <compare>
#include <cstddef>
#include <string>
#include <vector>

#include "channel/transit_view.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "protocol/message.hpp"

namespace bacp::channel {

class SetChannel {
public:
    using Message = proto::Message;

    std::size_t size() const { return messages_.size(); }
    bool empty() const { return messages_.empty(); }

    /// Adds a message to the channel.
    void send(const Message& msg);

    /// All messages currently in transit (sorted canonical order).
    const std::vector<Message>& messages() const { return messages_; }

    /// Span-backed multiset view (the invariant checker's input type,
    /// shared with sim::SimChannel).  Valid until the next mutation.
    TransitView view() const { return TransitView(messages_); }
    operator TransitView() const { return view(); }

    /// Message at position \p index (model checker enumerates indices).
    const Message& at(std::size_t index) const {
        BACP_ASSERT(index < messages_.size());
        return messages_[index];
    }

    /// Removes and returns the message at \p index (a "receive").
    Message receive_at(std::size_t index);

    /// Removes and returns a uniformly random message (a random-order
    /// receive, used by randomized executions).
    Message receive_random(Rng& rng);

    /// Removes the message at \p index without delivering it (a "loss").
    void lose_at(std::size_t index);

    /// Paper's *SR^m: number of data messages with sequence number \p m.
    std::size_t count_data(Seq m) const;

    /// Paper's *RS^m: number of acks (x, y) with x <= m <= y.
    std::size_t count_ack_covering(Seq m) const;

    friend bool operator==(const SetChannel&, const SetChannel&) = default;

    template <typename H>
    void feed(H&& h) const {
        h(static_cast<Seq>(messages_.size()));
        for (const auto& msg : messages_) {
            if (const auto* d = std::get_if<proto::Data>(&msg)) {
                h(Seq{1});
                h(d->seq);
            } else if (const auto* a = std::get_if<proto::Ack>(&msg)) {
                h(Seq{2});
                h(a->lo);
                h(a->hi);
            } else if (const auto* k = std::get_if<proto::Nak>(&msg)) {
                h(Seq{3});
                h(k->seq);
            } else {
                const auto& da = std::get<proto::DataAck>(msg);
                h(Seq{4});
                h(da.data.seq);
                h(da.ack.lo);
                h(da.ack.hi);
            }
        }
    }

    /// "{D(0), A(1,3)}" rendering for traces and counterexamples.
    std::string to_string() const;

private:
    std::vector<Message> messages_;  // kept sorted (canonical multiset)
};

}  // namespace bacp::channel
