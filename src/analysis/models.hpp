#pragma once

/// \file models.hpp
/// Closed-form performance models for the protocols in this repository,
/// matched to the simulator's regime (latency-bound links: no serialization
/// unless a bottleneck is configured, fixed-ish RTT, Bernoulli loss,
/// conservative retransmission timers).
///
/// These are the back-of-envelope laws a designer would use; the test
/// suite and bench_e16_theory validate the simulator against them (and
/// vice versa).  Derivations:
///
/// * OCCUPANCY LAW.  A window slot is occupied from a message's first
///   transmission until its acknowledgment arrives.  With round-trip loss
///   probability p2 = 1 - (1-p_data)(1-p_ack), each failed attempt costs
///   one timeout period T0 before the next try, so
///
///       E[occupancy] = RTT + T0 * p2 / (1 - p2)
///       thr          = w / E[occupancy]
///
///   This is EXACT for stop-and-wait (w = 1; the simulator matches within
///   a couple of percent) and it assumes slots recover *independently* --
///   true only for credit-based windows (the SVI hole-reuse sender under
///   ack loss).  For the paper's range-based window (ns < na + w) a
///   single data loss pins na and stalls the whole range until recovery,
///   so the occupancy law is an UPPER bound under loss.
///
/// * STALL LAW.  If every round-trip loss stalls the entire window for a
///   full recovery cycle (timeout + round trip), the per-message cost is
///
///       E[cost] = RTT/w + p2 * (T0 + RTT) / (1 - p2)
///
///   -- a LOWER bound: it ignores overlap between concurrent recoveries
///   and the w-1 messages that slip out before the stall bites.  Measured
///   range-window protocols (block-ack, selective repeat, go-back-N over
///   FIFO) land between the two laws, approaching the stall law as loss
///   grows (see test_models.cpp for the measured envelope).
///
/// * The time-constrained protocol adds the reuse cap N / T_reuse
///   (sequence-number economy, paper SI):  thr = min(window law, N/T).
///
/// * A bottleneck link of service time s caps everything at 1/s.
///
/// All rates are messages/second; times in simulated seconds.

#include "common/types.hpp"

namespace bacp::analysis {

/// Round-trip failure probability given one-way loss rates.
double round_trip_loss(double p_data, double p_ack);

/// Expected window-slot occupancy (seconds) under loss with a
/// conservative retransmission timer.
double slot_occupancy_seconds(double rtt_seconds, double timeout_seconds, double p_data,
                              double p_ack);

/// Sustained throughput of a w-slot sliding window (block-ack /
/// selective-repeat family, and w = 1 for stop-and-wait).
double window_throughput(Seq w, double rtt_seconds, double timeout_seconds, double p_data,
                         double p_ack);

/// Sequence-number-economy cap of the time-constrained protocol.
double reuse_cap(Seq domain, double reuse_interval_seconds);

/// Time-constrained throughput: window law clipped by the reuse cap.
double time_constrained_throughput(Seq w, Seq domain, double rtt_seconds,
                                   double timeout_seconds, double reuse_interval_seconds,
                                   double p_data, double p_ack);

/// Bottleneck service cap (messages/second) for per-message service time.
double bottleneck_cap(double service_seconds);

/// The stall law (see file header): lower bound for range-window
/// protocols under loss; the envelope's floor.
double stall_law_throughput(Seq w, double rtt_seconds, double timeout_seconds, double p_data,
                            double p_ack);

}  // namespace bacp::analysis
