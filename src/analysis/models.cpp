#include "analysis/models.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace bacp::analysis {

double round_trip_loss(double p_data, double p_ack) {
    BACP_ASSERT(p_data >= 0 && p_data < 1 && p_ack >= 0 && p_ack < 1);
    return 1.0 - (1.0 - p_data) * (1.0 - p_ack);
}

double slot_occupancy_seconds(double rtt_seconds, double timeout_seconds, double p_data,
                              double p_ack) {
    BACP_ASSERT(rtt_seconds > 0 && timeout_seconds > 0);
    const double p2 = round_trip_loss(p_data, p_ack);
    return rtt_seconds + timeout_seconds * p2 / (1.0 - p2);
}

double window_throughput(Seq w, double rtt_seconds, double timeout_seconds, double p_data,
                         double p_ack) {
    BACP_ASSERT(w > 0);
    return static_cast<double>(w) /
           slot_occupancy_seconds(rtt_seconds, timeout_seconds, p_data, p_ack);
}

double reuse_cap(Seq domain, double reuse_interval_seconds) {
    BACP_ASSERT(domain > 0 && reuse_interval_seconds > 0);
    return static_cast<double>(domain) / reuse_interval_seconds;
}

double time_constrained_throughput(Seq w, Seq domain, double rtt_seconds,
                                   double timeout_seconds, double reuse_interval_seconds,
                                   double p_data, double p_ack) {
    return std::min(window_throughput(w, rtt_seconds, timeout_seconds, p_data, p_ack),
                    reuse_cap(domain, reuse_interval_seconds));
}

double bottleneck_cap(double service_seconds) {
    BACP_ASSERT(service_seconds > 0);
    return 1.0 / service_seconds;
}

double stall_law_throughput(Seq w, double rtt_seconds, double timeout_seconds, double p_data,
                            double p_ack) {
    BACP_ASSERT(w > 0);
    const double p2 = round_trip_loss(p_data, p_ack);
    const double per_message = rtt_seconds / static_cast<double>(w) +
                               p2 * (timeout_seconds + rtt_seconds) / (1.0 - p2);
    return 1.0 / per_message;
}

}  // namespace bacp::analysis
