#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/assert.hpp"

namespace bacp {

Histogram::Histogram(unsigned sub_bits) : sub_bits_(sub_bits) {
    BACP_ASSERT_MSG(sub_bits >= 1 && sub_bits <= 10, "sub_bits in [1,10]");
    // 64 exponent ranges x 2^sub_bits sub-buckets covers all uint64 values.
    buckets_.assign(static_cast<std::size_t>(64 - sub_bits_ + 1) << sub_bits_, 0);
}

std::size_t Histogram::bucket_index(std::uint64_t value) const {
    // Values below 2^sub_bits are exact (one bucket per value).
    if (value < (1ULL << sub_bits_)) return static_cast<std::size_t>(value);
    const unsigned msb = 63U - static_cast<unsigned>(std::countl_zero(value));
    const unsigned exp = msb - sub_bits_;               // how far above the exact range
    const std::uint64_t sub = (value >> exp) & ((1ULL << sub_bits_) - 1);
    return ((static_cast<std::size_t>(exp) + 1) << sub_bits_) + static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucket_upper(std::size_t idx) const {
    if (idx < (1ULL << sub_bits_)) return idx;
    const std::size_t exp = (idx >> sub_bits_) - 1;
    const std::uint64_t sub = idx & ((1ULL << sub_bits_) - 1);
    const std::uint64_t base = (1ULL << sub_bits_) << exp;
    const std::uint64_t width = 1ULL << exp;
    return base + sub * width + (width - 1);
}

void Histogram::add(std::int64_t value) {
    const std::uint64_t v = value < 0 ? 0 : static_cast<std::uint64_t>(value);
    const std::size_t idx = bucket_index(v);
    BACP_ASSERT(idx < buckets_.size());
    ++buckets_[idx];
    if (count_ == 0) {
        min_ = max_ = static_cast<std::int64_t>(v);
    } else {
        min_ = std::min<std::int64_t>(min_, static_cast<std::int64_t>(v));
        max_ = std::max<std::int64_t>(max_, static_cast<std::int64_t>(v));
    }
    ++count_;
    sum_ += static_cast<double>(v);
}

double Histogram::mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

std::int64_t Histogram::quantile(double q) const {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target) {
            return std::min<std::int64_t>(static_cast<std::int64_t>(bucket_upper(i)), max_);
        }
    }
    return max_;
}

void Histogram::merge(const Histogram& other) {
    BACP_ASSERT_MSG(sub_bits_ == other.sub_bits_, "histogram precision mismatch");
    for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
    if (other.count_ > 0) {
        min_ = count_ ? std::min(min_, other.min_) : other.min_;
        max_ = count_ ? std::max(max_, other.max_) : other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

void Histogram::reset() {
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = max_ = 0;
}

std::string Histogram::summary() const {
    std::ostringstream os;
    os << "n=" << count_ << " mean=" << mean() << " p50=" << quantile(0.50)
       << " p90=" << quantile(0.90) << " p99=" << quantile(0.99) << " max=" << max();
    return os.str();
}

}  // namespace bacp
