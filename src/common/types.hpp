#pragma once

/// \file types.hpp
/// Fundamental scalar types shared across the library.

#include <cstdint>

namespace bacp {

/// Unbounded (64-bit) message sequence number.  The abstract protocol of
/// paper SII draws sequence numbers from the naturals; 64 bits is
/// inexhaustible for any simulation we run.
using Seq = std::uint64_t;

/// Sequence number transmitted on the wire by the bounded protocol of
/// paper SV: a residue modulo n = 2w.
using WireSeq = std::uint32_t;

/// Simulated time in integer nanoseconds.  Integer time keeps the
/// discrete-event simulator exactly reproducible across platforms.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

namespace literals {
constexpr SimTime operator""_ns(unsigned long long v) { return static_cast<SimTime>(v); }
constexpr SimTime operator""_us(unsigned long long v) { return static_cast<SimTime>(v) * kMicrosecond; }
constexpr SimTime operator""_ms(unsigned long long v) { return static_cast<SimTime>(v) * kMillisecond; }
constexpr SimTime operator""_s(unsigned long long v) { return static_cast<SimTime>(v) * kSecond; }
}  // namespace literals

/// Converts simulated time to (floating) seconds for reporting.
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / static_cast<double>(kSecond); }

}  // namespace bacp
