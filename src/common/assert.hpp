#pragma once

/// \file assert.hpp
/// Always-on assertion macro used to guard protocol invariants.
///
/// Unlike <cassert>, BACP_ASSERT is active in every build type: the
/// library's correctness claims rest on invariants (assertions 6-8 of the
/// paper) and silently continuing past a violation would invalidate every
/// measurement made afterwards.  Violations throw bacp::AssertionError so
/// tests can observe them and simulations can report a counterexample.

#include <stdexcept>
#include <string>

namespace bacp {

/// Thrown when a BACP_ASSERT condition fails.
class AssertionError : public std::logic_error {
public:
    explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
    std::string full = "assertion failed: ";
    full += expr;
    full += " at ";
    full += file;
    full += ":";
    full += std::to_string(line);
    if (!msg.empty()) {
        full += " (";
        full += msg;
        full += ")";
    }
    throw AssertionError(full);
}
}  // namespace detail

}  // namespace bacp

#define BACP_ASSERT(cond)                                                      \
    do {                                                                       \
        if (!(cond)) ::bacp::detail::assert_fail(#cond, __FILE__, __LINE__, ""); \
    } while (0)

#define BACP_ASSERT_MSG(cond, msg)                                              \
    do {                                                                        \
        if (!(cond)) ::bacp::detail::assert_fail(#cond, __FILE__, __LINE__, msg); \
    } while (0)
