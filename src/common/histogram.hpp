#pragma once

/// \file histogram.hpp
/// Log-bucketed histogram for latency-style distributions.
///
/// Values are binned into power-of-two buckets subdivided linearly, giving
/// a bounded relative error (HdrHistogram-style) with a tiny footprint.
/// Quantile queries interpolate within the winning bucket.

#include <cstdint>
#include <string>
#include <vector>

namespace bacp {

class Histogram {
public:
    /// \p sub_bits controls precision: each power-of-two range is split
    /// into 2^sub_bits linear sub-buckets (relative error <= 2^-sub_bits).
    explicit Histogram(unsigned sub_bits = 5);

    /// Records one non-negative value (negative values clamp to 0).
    void add(std::int64_t value);

    /// Total number of recorded values.
    std::uint64_t count() const { return count_; }

    /// Arithmetic mean of recorded values (0 when empty).
    double mean() const;

    /// q-quantile (q in [0,1]) with linear interpolation; 0 when empty.
    std::int64_t quantile(double q) const;

    std::int64_t min() const { return count_ ? min_ : 0; }
    std::int64_t max() const { return count_ ? max_ : 0; }

    void merge(const Histogram& other);
    void reset();

    /// "p50=... p90=... p99=... max=..." line for reports.
    std::string summary() const;

private:
    std::size_t bucket_index(std::uint64_t value) const;
    /// Representative (upper-edge) value of bucket \p idx.
    std::uint64_t bucket_upper(std::size_t idx) const;

    unsigned sub_bits_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    std::int64_t min_ = 0;
    std::int64_t max_ = 0;
};

}  // namespace bacp
