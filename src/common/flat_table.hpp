#pragma once

/// \file flat_table.hpp
/// Open-addressing hash table over a contiguous slot slab.
///
/// The server's per-shard session table was a `std::unordered_map<Key,
/// unique_ptr<Session>>`: every lookup chased a bucket node and then a
/// unique_ptr, every insert/erase touched the heap, and at 100k
/// sessions the node spray dominated the demux path.  FlatTable is the
/// replacement: keys and values live inline in one contiguous slot
/// slab, the index is a power-of-two linear-probe array of slot
/// references, and erase uses backward-shift deletion (the same
/// reachability argument as net::PayloadStash) so there are no
/// tombstones to accumulate and probe chains stay short at a fixed
/// <= 50% load factor.
///
/// Properties the server and its tests rely on:
///  - zero steady-state allocations: after reserve(n) (or once high
///    water is reached), insert/erase/find never touch the heap;
///  - generation-tagged handles: erase bumps the slot generation, so a
///    stale Handle can never resolve to a recycled slot's new tenant
///    (the same odd-is-live parity scheme as common/slab_heap.hpp);
///  - slot-indexed access: callers can sample live slots by index
///    (the server's eviction pressure picks LRU-ish victims this way)
///    and iterate the slab without touching the index array;
///  - values need only be movable + default-constructible (move-only
///    types like the server's Session are fine); slab growth and
///    backward shift move index entries, not values, so iterator-free
///    callers never see a value move except on slab reallocation.
///
/// Not thread-safe; one table per shard, owned by the shard's thread.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bacp {

template <typename Key, typename T, typename Hash = std::hash<Key>>
class FlatTable {
public:
    /// Generation-tagged slot reference: ((slot + 1) << 32) | generation,
    /// odd generation = live (slab_heap's parity scheme).  Value 0 is
    /// never a valid handle.
    using Handle = std::uint64_t;

    FlatTable() = default;
    explicit FlatTable(Hash hash) : hash_(std::move(hash)) {}

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /// Ensure capacity for `n` live entries without further allocation.
    void reserve(std::size_t n) {
        slots_.reserve(n);
        if (index_capacity_for(n) > index_.size()) rebuild_index(index_capacity_for(n));
    }

    /// Find the value for `key`, or nullptr.  Never allocates.
    T* find(const Key& key) {
        std::size_t bucket;
        return find_bucket(key, bucket) ? &slots_[index_[bucket] - 1].value : nullptr;
    }
    const T* find(const Key& key) const {
        std::size_t bucket;
        return find_bucket(key, bucket) ? &slots_[index_[bucket] - 1].value : nullptr;
    }

    /// Insert `key` with a default-constructed value unless present.
    /// Returns {value, inserted}.  The pointer is invalidated by any
    /// later insert (slab growth); handles and slot indices are not.
    std::pair<T*, bool> try_emplace(const Key& key) {
        if (index_.empty() || (size_ + 1) * 2 > index_.size())
            rebuild_index(index_.empty() ? kMinIndex : index_.size() * 2);
        std::size_t bucket;
        if (find_bucket(key, bucket)) return {&slots_[index_[bucket] - 1].value, false};
        const std::uint32_t slot = acquire_slot(key);
        index_[bucket] = slot + 1;
        ++size_;
        return {&slots_[slot].value, true};
    }

    /// Erase `key` if present; backward-shift repair keeps the index
    /// tombstone-free.  Returns whether anything was erased.
    bool erase(const Key& key) {
        std::size_t bucket;
        if (!find_bucket(key, bucket)) return false;
        release_slot(index_[bucket] - 1);
        backward_shift(bucket);
        --size_;
        return true;
    }

    /// Handle for `key`, or 0 if absent.
    Handle handle_of(const Key& key) const {
        std::size_t bucket;
        if (!find_bucket(key, bucket)) return 0;
        const std::uint32_t slot = index_[bucket] - 1;
        return make_handle(slot, slots_[slot].gen);
    }

    /// Resolve a handle; nullptr if the entry was erased (any reuse of
    /// the slot bumped the generation, so stale handles stay dead).
    T* get(Handle h) {
        const std::uint32_t slot = static_cast<std::uint32_t>(h >> 32) - 1;
        if (slot >= slots_.size()) return nullptr;
        Slot& s = slots_[slot];
        if (s.gen != static_cast<std::uint32_t>(h) || (s.gen & 1u) == 0) return nullptr;
        return &s.value;
    }

    /// Slab view for sampling and iteration.  Slots [0, slot_count())
    /// include dead ones; check slot_live() first.
    std::size_t slot_count() const { return slots_.size(); }
    bool slot_live(std::size_t slot) const { return (slots_[slot].gen & 1u) != 0; }
    const Key& slot_key(std::size_t slot) const { return slots_[slot].key; }
    T& slot_value(std::size_t slot) { return slots_[slot].value; }
    const T& slot_value(std::size_t slot) const { return slots_[slot].value; }

    /// Visit every live entry as fn(key, value).  Do not insert or
    /// erase from inside fn; collect keys and mutate after (the server's
    /// sweep does exactly that).
    template <typename Fn>
    void for_each(Fn&& fn) {
        for (Slot& s : slots_)
            if ((s.gen & 1u) != 0) fn(static_cast<const Key&>(s.key), s.value);
    }
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (const Slot& s : slots_)
            if ((s.gen & 1u) != 0) fn(s.key, s.value);
    }

private:
    static constexpr std::size_t kMinIndex = 16;

    struct Slot {
        Key key{};
        T value{};
        std::uint32_t gen = 0;        // odd = live
        std::uint32_t next_free = 0;  // freelist link (slot + 1), 0 = end
    };

    static Handle make_handle(std::uint32_t slot, std::uint32_t gen) {
        return (static_cast<Handle>(slot + 1) << 32) | gen;
    }

    static std::size_t index_capacity_for(std::size_t n) {
        std::size_t cap = kMinIndex;
        while (n * 2 > cap) cap *= 2;
        return cap;
    }

    std::size_t home_bucket(const Key& key) const { return hash_(key) & (index_.size() - 1); }

    /// Locate `key`'s bucket; on miss, `bucket` is the empty bucket that
    /// terminates its probe chain (the insertion point).
    bool find_bucket(const Key& key, std::size_t& bucket) const {
        if (index_.empty()) {
            bucket = 0;
            return false;
        }
        const std::size_t mask = index_.size() - 1;
        std::size_t b = home_bucket(key);
        while (index_[b] != 0) {
            if (slots_[index_[b] - 1].key == key) {
                bucket = b;
                return true;
            }
            b = (b + 1) & mask;
        }
        bucket = b;
        return false;
    }

    std::uint32_t acquire_slot(const Key& key) {
        std::uint32_t slot;
        if (free_head_ != 0) {
            slot = free_head_ - 1;
            free_head_ = slots_[slot].next_free;
        } else {
            slot = static_cast<std::uint32_t>(slots_.size());
            slots_.emplace_back();
        }
        Slot& s = slots_[slot];
        s.key = key;
        s.gen |= 1u;  // even (dead) -> next odd (live)
        return slot;
    }

    void release_slot(std::uint32_t slot) {
        Slot& s = slots_[slot];
        assert((s.gen & 1u) != 0 && "releasing a dead slot");
        s.value = T{};  // drop the payload now, not at slot reuse
        s.gen += 1;     // odd -> even: every outstanding handle dies
        s.next_free = free_head_;
        free_head_ = slot + 1;
    }

    /// Backward-shift deletion: walk the cluster after `hole`, moving
    /// back any entry whose home bucket is outside (hole, current] --
    /// same invariant as PayloadStash's erase.
    void backward_shift(std::size_t hole) {
        const std::size_t mask = index_.size() - 1;
        std::size_t j = hole;
        for (;;) {
            j = (j + 1) & mask;
            if (index_[j] == 0) break;
            const std::size_t home = home_bucket(slots_[index_[j] - 1].key);
            if (((j - home) & mask) >= ((j - hole) & mask)) {
                index_[hole] = index_[j];
                hole = j;
            }
        }
        index_[hole] = 0;
    }

    void rebuild_index(std::size_t new_capacity) {
        index_.assign(new_capacity, 0);
        const std::size_t mask = new_capacity - 1;
        for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
            if ((slots_[slot].gen & 1u) == 0) continue;
            std::size_t b = hash_(slots_[slot].key) & mask;
            while (index_[b] != 0) b = (b + 1) & mask;
            index_[b] = slot + 1;
        }
    }

    Hash hash_{};
    std::vector<std::uint32_t> index_;  // bucket -> slot + 1, 0 = empty
    std::vector<Slot> slots_;           // contiguous slab, freelist-recycled
    std::uint32_t free_head_ = 0;       // slot + 1, 0 = none
    std::size_t size_ = 0;
};

}  // namespace bacp
