#pragma once

/// \file ring_buffer.hpp
/// Fixed-capacity FIFO ring buffer.
///
/// Used for bounded send/receive queues where overflow must be an explicit,
/// observable condition rather than a reallocation.

#include <cstddef>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace bacp {

template <typename T>
class RingBuffer {
public:
    explicit RingBuffer(std::size_t capacity) : items_(capacity) {
        BACP_ASSERT_MSG(capacity > 0, "ring buffer capacity must be positive");
    }

    std::size_t capacity() const { return items_.size(); }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == items_.size(); }

    /// Appends \p value; returns false (and drops it) when full.
    bool push(T value) {
        if (full()) return false;
        items_[(head_ + size_) % items_.size()] = std::move(value);
        ++size_;
        return true;
    }

    /// Removes and returns the oldest element.  Precondition: !empty().
    T pop() {
        BACP_ASSERT_MSG(!empty(), "pop() on empty ring buffer");
        T value = std::move(items_[head_]);
        head_ = (head_ + 1) % items_.size();
        --size_;
        return value;
    }

    /// Oldest element.  Precondition: !empty().
    const T& front() const {
        BACP_ASSERT_MSG(!empty(), "front() on empty ring buffer");
        return items_[head_];
    }

    /// Element \p i positions from the front.  Precondition: i < size().
    const T& at(std::size_t i) const {
        BACP_ASSERT_MSG(i < size_, "ring buffer index out of range");
        return items_[(head_ + i) % items_.size()];
    }

    void clear() {
        head_ = 0;
        size_ = 0;
    }

private:
    std::vector<T> items_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

}  // namespace bacp
