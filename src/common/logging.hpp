#pragma once

/// \file logging.hpp
/// Minimal leveled logger.
///
/// The simulator is deterministic, so logs are primarily a debugging aid;
/// the default sink is stderr and the default level is Warn to keep test
/// and benchmark output clean.

#include <functional>
#include <sstream>
#include <string>

namespace bacp {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

const char* to_string(LogLevel level);

/// Process-wide logger configuration.
class Logger {
public:
    using Sink = std::function<void(LogLevel, const std::string&)>;

    static Logger& instance();

    void set_level(LogLevel level) { level_ = level; }
    LogLevel level() const { return level_; }

    /// Replaces the output sink (default writes to stderr).
    void set_sink(Sink sink);

    bool enabled(LogLevel level) const { return level >= level_ && level_ != LogLevel::Off; }
    void write(LogLevel level, const std::string& message);

private:
    Logger();
    LogLevel level_ = LogLevel::Warn;
    Sink sink_;
};

namespace detail {
/// Builds the message lazily; only evaluated when the level is enabled.
class LogLine {
public:
    LogLine(LogLevel level) : level_(level) {}
    ~LogLine() { Logger::instance().write(level_, stream_.str()); }
    template <typename T>
    LogLine& operator<<(const T& value) {
        stream_ << value;
        return *this;
    }

private:
    LogLevel level_;
    std::ostringstream stream_;
};
}  // namespace detail

}  // namespace bacp

#define BACP_LOG(level)                                   \
    if (!::bacp::Logger::instance().enabled(level)) {     \
    } else                                                \
        ::bacp::detail::LogLine(level)

#define BACP_LOG_TRACE BACP_LOG(::bacp::LogLevel::Trace)
#define BACP_LOG_DEBUG BACP_LOG(::bacp::LogLevel::Debug)
#define BACP_LOG_INFO BACP_LOG(::bacp::LogLevel::Info)
#define BACP_LOG_WARN BACP_LOG(::bacp::LogLevel::Warn)
#define BACP_LOG_ERROR BACP_LOG(::bacp::LogLevel::Error)
