#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// Every stochastic component of the simulator (loss, delay, receive
/// order) draws from an explicitly seeded Rng so that any run -- including
/// a failing property test -- can be replayed exactly from its seed.
/// The generator is xoshiro256**, seeded via splitmix64, following the
/// reference implementations of Blackman & Vigna.

#include <array>
#include <cstdint>

#include "common/assert.hpp"

namespace bacp {

/// splitmix64 step; used for seeding and as a cheap standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** generator with convenience distributions.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Constructs a generator whose full 256-bit state is derived from
    /// \p seed with splitmix64 (as recommended by the algorithm authors).
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

    /// Re-derives the state from \p seed; afterwards the stream is
    /// identical to a freshly constructed Rng(seed).
    void reseed(std::uint64_t seed) {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /// Next raw 64-bit output.
    result_type operator()() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound).  \p bound must be positive.
    /// Uses Lemire's multiply-shift rejection method (no modulo bias).
    std::uint64_t uniform(std::uint64_t bound) {
        BACP_ASSERT_MSG(bound > 0, "uniform() bound must be positive");
        // 128-bit multiply; rejection keeps the distribution exact.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::uint64_t uniform_in(std::uint64_t lo, std::uint64_t hi) {
        BACP_ASSERT(lo <= hi);
        return lo + uniform(hi - lo + 1);
    }

    /// Uniform double in [0, 1).
    double uniform01() {
        // 53 random bits scaled into [0,1).
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Bernoulli trial with success probability \p p (clamped to [0,1]).
    bool chance(double p) {
        if (p <= 0.0) return false;
        if (p >= 1.0) return true;
        return uniform01() < p;
    }

    /// Exponentially distributed double with the given mean (> 0).
    double exponential(double mean);

    /// Bounded Pareto-ish heavy tail: mean roughly \p mean, shape alpha.
    double pareto(double scale, double alpha);

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

}  // namespace bacp
