#pragma once

/// \file stats.hpp
/// Streaming summary statistics (Welford's algorithm).

#include <cstdint>
#include <limits>
#include <string>

namespace bacp {

/// Accumulates count / mean / variance / min / max of a stream of doubles
/// in O(1) memory, numerically stable (Welford).
class RunningStats {
public:
    /// Adds one observation.
    void add(double x);

    /// Merges another accumulator into this one (parallel-safe combine).
    void merge(const RunningStats& other);

    /// Removes all observations.
    void reset() { *this = RunningStats{}; }

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    /// Population variance; 0 for fewer than two observations.
    double variance() const;
    /// Sample standard deviation; 0 for fewer than two observations.
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /// Human-readable one-line summary, e.g. "n=10 mean=4.2 sd=1.1 [1,9]".
    std::string summary() const;

private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace bacp
