#pragma once

/// \file metrics_table.hpp
/// One counter-table implementation for every metrics struct.
///
/// sim::Metrics, net::Metrics, and net::ServerStats all expose the same
/// shape -- a flat struct of uint64 counters plus a stable name->value
/// view (`fields()`) that serializers walk -- and each used to hand-roll
/// the view and the JSON emitter.  This header centralizes the
/// machinery: a metrics struct declares one constexpr table of
/// {name, member-pointer} rows, and derives fields(), to_json(), and
/// (where the merge is a plain sum) operator+= from it.  The table is
/// the single source of truth; adding a counter is one row, and the
/// name list can no longer drift from the accumulation list.
///
/// bench::counters_json() keeps working unchanged: it is generic over
/// anything with fields() returning {name, value} rows, which is
/// exactly what counter_fields() produces.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace bacp {

/// One row of a serialized counter view: stable name, current value.
struct MetricsField {
    const char* name;
    std::uint64_t value;
};

/// One row of a counter table: stable name, pointer to the counter
/// member it reads (and, for summed merges, accumulates).
template <typename T>
struct CounterDef {
    const char* name;
    std::uint64_t T::* member;
};

/// Materialize the name->value view of `obj` described by `defs`, in
/// table order.
template <typename T, std::size_t N>
std::array<MetricsField, N> counter_fields(const T& obj,
                                           const std::array<CounterDef<T>, N>& defs) {
    std::array<MetricsField, N> out{};
    for (std::size_t i = 0; i < N; ++i) out[i] = {defs[i].name, obj.*(defs[i].member)};
    return out;
}

/// Sum every tabled counter of `from` into `into`.  Only correct for
/// metrics whose merge semantics are plain addition on every row;
/// structs with max-merged or sampled fields keep a hand-written merge.
template <typename T, std::size_t N>
void add_counters(T& into, const T& from, const std::array<CounterDef<T>, N>& defs) {
    for (const CounterDef<T>& def : defs) into.*(def.member) += from.*(def.member);
}

/// Flat JSON object {"name":value,...} over a materialized field view.
template <std::size_t N>
std::string fields_json(const std::array<MetricsField, N>& fields) {
    std::string out = "{";
    bool first = true;
    for (const MetricsField& f : fields) {
        if (!first) out += ",";
        first = false;
        out += "\"";
        out += f.name;
        out += "\":";
        out += std::to_string(f.value);
    }
    out += "}";
    return out;
}

}  // namespace bacp
