#include "common/rng.hpp"

#include <cmath>

namespace bacp {

double Rng::exponential(double mean) {
    BACP_ASSERT_MSG(mean > 0.0, "exponential() mean must be positive");
    // Inverse CDF; 1 - u avoids log(0).
    return -mean * std::log(1.0 - uniform01());
}

double Rng::pareto(double scale, double alpha) {
    BACP_ASSERT_MSG(scale > 0.0 && alpha > 0.0, "pareto() parameters must be positive");
    return scale / std::pow(1.0 - uniform01(), 1.0 / alpha);
}

}  // namespace bacp
