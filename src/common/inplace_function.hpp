#pragma once

/// \file inplace_function.hpp
/// Fixed-capacity, non-allocating callable wrapper.
///
/// std::function heap-allocates any closure larger than its small-buffer
/// (two pointers on libstdc++), which puts one malloc/free pair on every
/// scheduled simulator event and every armed timer.  InplaceFunction
/// stores the callable inline in a Capacity-byte buffer and has NO heap
/// fallback: a callable that does not fit is a compile-time error, so the
/// hot path provably never allocates.  Capacity is tuned in
/// timer_service.hpp to fit every lambda the runtimes schedule (the
/// engine's largest capture is asserted in tests/test_inplace_function).
///
/// Move-only (accepting move-only captures is what lets channels move
/// payload buffers into delivery events instead of copying them); a
/// moved-from InplaceFunction is empty.

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"

namespace bacp {

template <typename Signature, std::size_t Capacity>
class InplaceFunction;  // undefined; only the R(Args...) partial below exists

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
public:
    static constexpr std::size_t capacity = Capacity;

    /// True when a callable of type \p F can be stored (fits the buffer,
    /// is nothrow-movable, and is invocable with the right signature).
    template <typename F>
    static constexpr bool can_store_v =
        sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<F> && std::is_invocable_r_v<R, F&, Args...>;

    InplaceFunction() noexcept = default;
    InplaceFunction(std::nullptr_t) noexcept {}

    template <typename F>
        requires(!std::is_same_v<std::remove_cvref_t<F>, InplaceFunction>)
    InplaceFunction(F&& f) {  // NOLINT(bugprone-forwarding-reference-overload)
        using Fn = std::remove_cvref_t<F>;
        static_assert(sizeof(Fn) <= Capacity,
                      "callable exceeds InplaceFunction capacity (no heap fallback; "
                      "shrink the capture or raise the capacity)");
        static_assert(alignof(Fn) <= alignof(std::max_align_t), "over-aligned callable");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "callable must be nothrow-movable");
        static_assert(std::is_invocable_r_v<R, Fn&, Args...>, "signature mismatch");
        ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
        ops_ = &ops_for<Fn>;
    }

    InplaceFunction(InplaceFunction&& other) noexcept : ops_(other.ops_) {
        if (ops_ != nullptr) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    InplaceFunction& operator=(InplaceFunction&& other) noexcept {
        if (this == &other) return *this;
        reset();
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
        return *this;
    }

    InplaceFunction& operator=(std::nullptr_t) noexcept {
        reset();
        return *this;
    }

    InplaceFunction(const InplaceFunction&) = delete;
    InplaceFunction& operator=(const InplaceFunction&) = delete;

    ~InplaceFunction() { reset(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }
    friend bool operator==(const InplaceFunction& f, std::nullptr_t) noexcept { return !f; }

    R operator()(Args... args) {
        BACP_ASSERT_MSG(ops_ != nullptr, "calling an empty InplaceFunction");
        return ops_->invoke(storage_, std::forward<Args>(args)...);
    }

private:
    struct Ops {
        R (*invoke)(void*, Args&&...);
        /// Move-constructs *src into dst, then destroys *src.
        void (*relocate)(void* dst, void* src) noexcept;
        void (*destroy)(void*) noexcept;
    };

    template <typename Fn>
    static constexpr Ops ops_for{
        [](void* p, Args&&... args) -> R {
            return (*static_cast<Fn*>(p))(std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept {
            ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
            static_cast<Fn*>(src)->~Fn();
        },
        [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
    };

    void reset() noexcept {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[Capacity];
    const Ops* ops_ = nullptr;
};

}  // namespace bacp
