#pragma once

/// \file timer_service.hpp
/// The timer interface both runtimes implement.
///
/// The discrete-event simulator (sim::Simulator, virtual time) and the
/// real-time runtime (net::TimerWheel, std::chrono::steady_clock) expose
/// the same three operations -- now / schedule_after / cancel -- so every
/// timer-driven protocol policy (retransmission disciplines, ack
/// batching, send-horizon wakeups) is written once against TimerService
/// and runs unchanged over virtual or wall-clock time.
///
/// Semantics every implementation guarantees:
///   - ids are never reused within one service instance, and 0 is never
///     a valid id (kInvalidTimer);
///   - cancel() of a fired, cancelled, or invalid id is a harmless no-op;
///   - timers with equal deadlines fire in schedule order (FIFO), which
///     keeps runs reproducible.

#include <cstdint>
#include <functional>
#include <utility>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace bacp {

using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

class TimerService {
public:
    using Handler = std::function<void()>;

    virtual ~TimerService() = default;

    /// Current time in nanoseconds (virtual or monotonic wall clock).
    virtual SimTime now() const = 0;

    /// Schedules \p fn after a non-negative delay; returns a cancel handle.
    virtual TimerId schedule_after(SimTime delay, Handler fn) = 0;

    /// Cancels a pending timer (no-op if already fired or invalid).
    virtual void cancel(TimerId id) = 0;
};

/// Restartable one-shot timer bound to a TimerService.
///
/// Used by both runtimes for the paper's realistic timeout
/// implementations: the SII sender keeps one timer ("S need only keep
/// track of the elapsed time period since it last sent a data message");
/// the SIV sender keeps one timer per outstanding message.
class OneShotTimer {
public:
    using Callback = std::function<void()>;

    OneShotTimer(TimerService& service, Callback cb)
        : service_(&service), cb_(std::move(cb)) {
        BACP_ASSERT(cb_ != nullptr);
    }

    OneShotTimer(const OneShotTimer&) = delete;
    OneShotTimer& operator=(const OneShotTimer&) = delete;
    OneShotTimer(OneShotTimer&&) = delete;
    OneShotTimer& operator=(OneShotTimer&&) = delete;

    ~OneShotTimer() { cancel(); }

    /// (Re)arms the timer to fire after \p delay; any pending expiry is
    /// cancelled first.
    void restart(SimTime delay) {
        cancel();
        id_ = service_->schedule_after(delay, [this] {
            id_ = kInvalidTimer;
            cb_();
        });
    }

    /// Stops the timer if armed.
    void cancel() {
        if (id_ != kInvalidTimer) {
            service_->cancel(id_);
            id_ = kInvalidTimer;
        }
    }

    bool armed() const { return id_ != kInvalidTimer; }

private:
    TimerService* service_;
    Callback cb_;
    TimerId id_ = kInvalidTimer;
};

}  // namespace bacp
