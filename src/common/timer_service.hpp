#pragma once

/// \file timer_service.hpp
/// The timer interface both runtimes implement.
///
/// The discrete-event simulator (sim::Simulator, virtual time) and the
/// real-time runtime (net::TimerWheel, std::chrono::steady_clock) expose
/// the same three operations -- now / schedule_after / cancel -- so every
/// timer-driven protocol policy (retransmission disciplines, ack
/// batching, send-horizon wakeups) is written once against TimerService
/// and runs unchanged over virtual or wall-clock time.
///
/// Semantics every implementation guarantees:
///   - an id, once fired or cancelled, never becomes valid again within
///     its service instance (slots may be recycled internally, but each
///     handed-out id carries a generation stamp, so a stale id can never
///     alias a live timer), and 0 is never a valid id (kInvalidTimer);
///   - cancel() of a fired, cancelled, or invalid id is a harmless no-op;
///   - timers with equal deadlines fire in schedule order (FIFO), which
///     keeps runs reproducible.
///
/// Handlers are stored in a fixed-capacity InplaceFunction rather than a
/// std::function: scheduling is the hottest operation in the repo (every
/// simulated message is at least one scheduled closure), and the inline
/// buffer guarantees zero heap traffic per timer.  The capacity covers
/// the largest closure any runtime schedules (net::Impairer's
/// [this, slot, payload]: 40 bytes) with a little headroom; oversized
/// captures fail to compile rather than silently allocating.

#include <cstdint>
#include <functional>
#include <utility>

#include "common/assert.hpp"
#include "common/inplace_function.hpp"
#include "common/types.hpp"

namespace bacp {

using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

/// Inline storage for scheduled closures (see file comment).
inline constexpr std::size_t kTimerHandlerCapacity = 48;
using TimerHandler = InplaceFunction<void(), kTimerHandlerCapacity>;

class TimerService {
public:
    using Handler = TimerHandler;

    virtual ~TimerService() = default;

    /// Current time in nanoseconds (virtual or monotonic wall clock).
    virtual SimTime now() const = 0;

    /// Schedules \p fn after a non-negative delay; returns a cancel handle.
    virtual TimerId schedule_after(SimTime delay, Handler fn) = 0;

    /// Cancels a pending timer (no-op if already fired or invalid).
    virtual void cancel(TimerId id) = 0;
};

/// Restartable one-shot timer bound to a TimerService.
///
/// Used by both runtimes for the paper's realistic timeout
/// implementations: the SII sender keeps one timer ("S need only keep
/// track of the elapsed time period since it last sent a data message");
/// the SIV sender keeps one timer per outstanding message.
class OneShotTimer {
public:
    using Callback = std::function<void()>;

    OneShotTimer(TimerService& service, Callback cb)
        : service_(&service), cb_(std::move(cb)) {
        BACP_ASSERT(cb_ != nullptr);
    }

    OneShotTimer(const OneShotTimer&) = delete;
    OneShotTimer& operator=(const OneShotTimer&) = delete;
    OneShotTimer(OneShotTimer&&) = delete;
    OneShotTimer& operator=(OneShotTimer&&) = delete;

    ~OneShotTimer() { cancel(); }

    /// (Re)arms the timer to fire after \p delay; any pending expiry is
    /// cancelled first.
    void restart(SimTime delay) {
        cancel();
        id_ = service_->schedule_after(delay, [this] {
            id_ = kInvalidTimer;
            cb_();
        });
    }

    /// Stops the timer if armed.
    void cancel() {
        if (id_ != kInvalidTimer) {
            service_->cancel(id_);
            id_ = kInvalidTimer;
        }
    }

    bool armed() const { return id_ != kInvalidTimer; }

private:
    TimerService* service_;
    Callback cb_;
    TimerId id_ = kInvalidTimer;
};

}  // namespace bacp
