#pragma once

/// \file hier_wheel.hpp
/// Hierarchical timer wheel: O(1) arm/cancel, fire work proportional to
/// what is due, exact deadline order.
///
/// The real-time runtime used to keep every armed timer in one
/// SlabTimerHeap: O(log n) arm/cancel and -- the killer at 100k
/// sessions -- a top-of-heap comparison cost that grows with *armed*
/// timers even when nothing is due.  HierTimerWheel replaces the heap
/// under net::TimerWheel with the classic hashed-and-hierarchical
/// wheel (Varghese & Lauck), adapted so none of the repo's determinism
/// contracts loosen:
///
///  - kLevels levels of 64 buckets; level 0 buckets span one tick
///    (2^kTickShift ns = ~65.5 us), level k buckets span 64^k ticks.
///    A timer lands in the lowest level whose bucket span still
///    separates it from the base cursor; when the base crosses a
///    level's bucket boundary the bucket cascades down, so each timer
///    is relinked at most kLevels-1 times over its life.
///  - Occupancy bitmaps (one 64-bit word per level) let fire_due jump
///    the base straight to the next occupied bucket or cascade
///    boundary: an idle poll over a million armed-but-distant timers
///    is a handful of bit scans, not a heap inspection.  This is the
///    "O(due), not O(armed)" property bench_e24 pins.
///  - Buckets are intrusive doubly-linked lists through one contiguous
///    node slab (freelist-recycled, generation-parity ids exactly like
///    SlabTimerHeap), so cancel unlinks in O(1) and releases the
///    handler eagerly -- the path E22's ack-coalescing storm leans on.
///  - Bucketing rounds *placement*, never *order*: nodes keep their
///    exact deadline, and a firing bucket is sorted by (deadline, seq)
///    before any handler runs.  Equal deadlines therefore fire in
///    schedule order and ManualClock runs stay byte-reproducible
///    (test_driver_parity compares decision streams across runtimes).
///    The sort cost scales with the timers actually firing.
///
/// Handlers may push and cancel freely from inside fire_due, including
/// against timers already collected for this batch (a cancelled
/// collected timer does not fire -- its generation died).  Not
/// thread-safe; one wheel per shard/loop thread.

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace bacp {

template <typename Handler>
class HierTimerWheel {
public:
    using Id = std::uint64_t;

    /// Live (armed) timers.
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /// Cumulative fire_due structural work: nodes examined, staged,
    /// and cascaded, plus one unit per bucket/bitmap inspection.  The
    /// scaling gate compares this across idle and busy wheels.
    std::uint64_t work_ops() const { return work_; }

    /// Pre-size the node slab (and fire scratch) for `n` concurrent
    /// timers so steady state never allocates.
    void reserve(std::size_t n) {
        slab_.reserve(n);
        staged_.reserve(n);
    }

    /// Arm `fn` at absolute deadline `time` (>= `now`, the caller's
    /// current clock; deadlines in the past are allowed and fire on the
    /// next fire_due).  Returns a generation-tagged id; 0 is never one.
    Id push(SimTime now, SimTime time, Handler fn) {
        if (size_ == 0) base_tick_ = tick_of(now);
        const std::uint32_t slot = acquire_slot();
        Node& n = slab_[slot];
        n.fn = std::move(fn);
        n.time = time;
        n.seq = seq_++;
        link(slot, place_bucket(tick_of(time)));
        ++size_;
        if (size_ == 1 || (min_valid_ && time < min_time_)) {
            min_time_ = time;
            min_valid_ = true;
        }
        return make_id(slot, slab_[slot].gen);
    }

    /// Cancel a live timer in O(1).  Stale, fired, or foreign ids are
    /// harmless no-ops (returns false).
    bool cancel(Id id) {
        const std::uint32_t slot = static_cast<std::uint32_t>(id >> 32) - 1;
        if (slot >= slab_.size()) return false;
        Node& n = slab_[slot];
        if (n.gen != static_cast<std::uint32_t>(id) || (n.gen & 1u) == 0) return false;
        if (min_valid_ && n.time <= min_time_) min_valid_ = false;
        if (n.bucket != kStagedBucket) unlink(slot);
        free_slot(slot);
        --size_;
        return true;
    }

    /// Exact deadline of the earliest live timer.
    std::optional<SimTime> next_deadline() const {
        if (size_ == 0) return std::nullopt;
        if (!min_valid_) {
            min_time_ = compute_min();
            min_valid_ = true;
        }
        return min_time_;
    }

    /// Fire every timer with deadline <= now, in exact (deadline, FIFO)
    /// order; returns how many fired.  Work is proportional to timers
    /// fired plus cascade relinks, independent of the armed population.
    std::size_t fire_due(SimTime now) {
        if (size_ == 0) {
            base_tick_ = tick_of(now);
            return 0;
        }
        const std::uint64_t target = std::max(tick_of(now), base_tick_);
        std::size_t fired = 0;
        for (;;) {
            const std::uint64_t next = next_event_tick();
            if (next > target) {
                base_tick_ = target;
                break;
            }
            advance_to(next);
            const std::size_t n = fire_cursor_bucket(now);
            fired += n;
            if (base_tick_ == target && n == 0) break;
            if (size_ == 0) {
                base_tick_ = target;
                break;
            }
        }
        if (fired > 0) min_valid_ = false;
        return fired;
    }

private:
    static constexpr int kLevelBits = 6;
    static constexpr std::uint64_t kBucketsPerLevel = 1ull << kLevelBits;
    static constexpr int kLevels = 6;
    /// Tick granularity: 2^16 ns.  Placement-only -- deadlines stay
    /// exact -- so the tick just bounds how far apart two timers must be
    /// to live in different level-0 buckets.
    static constexpr int kTickShift = 16;
    static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
    static constexpr std::uint16_t kStagedBucket = 0xFFFF;  // collected for firing
    static constexpr std::uint16_t kFreeBucket = 0xFFFE;
    static constexpr std::uint64_t kNoTick = ~0ull;

    struct Node {
        Handler fn{};
        SimTime time = 0;
        std::uint64_t seq = 0;
        std::uint32_t gen = 0;  // odd = live (slab_heap's parity scheme)
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;  // doubles as the freelist link
        std::uint16_t bucket = kFreeBucket;
    };
    struct Bucket {
        std::uint32_t head = kNil;
        std::uint32_t tail = kNil;
    };
    struct Staged {
        SimTime time;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    static Id make_id(std::uint32_t slot, std::uint32_t gen) {
        return (static_cast<Id>(slot + 1) << 32) | gen;
    }
    static std::uint64_t tick_of(SimTime t) {
        return t <= 0 ? 0 : static_cast<std::uint64_t>(t) >> kTickShift;
    }

    /// Lowest level whose span separates `tick` from the base cursor.
    /// Returns level * 64 + index.  Past ticks clamp to the cursor
    /// bucket; ticks beyond the wheel horizon (64^kLevels ticks, years)
    /// park at the top level and re-place as the base catches up.
    std::uint16_t place_bucket(std::uint64_t tick) const {
        std::uint64_t t = std::max(tick, base_tick_);
        std::uint64_t delta = t - base_tick_;
        int level = 0;
        if (delta >> kLevelBits != 0) {
            level = (63 - std::countl_zero(delta)) / kLevelBits;
            if (level >= kLevels) {
                level = kLevels - 1;
                t = base_tick_ + ((1ull << (kLevelBits * kLevels)) - 1);
            }
        }
        const std::uint64_t idx = (t >> (kLevelBits * level)) & (kBucketsPerLevel - 1);
        return static_cast<std::uint16_t>(level * kBucketsPerLevel + idx);
    }

    void link(std::uint32_t slot, std::uint16_t bucket) {
        Node& n = slab_[slot];
        Bucket& b = buckets_[bucket];
        n.bucket = bucket;
        n.prev = b.tail;
        n.next = kNil;
        if (b.tail == kNil) {
            b.head = slot;
            bitmap_[bucket >> kLevelBits] |= 1ull << (bucket & (kBucketsPerLevel - 1));
        } else {
            slab_[b.tail].next = slot;
        }
        b.tail = slot;
    }

    void unlink(std::uint32_t slot) {
        Node& n = slab_[slot];
        Bucket& b = buckets_[n.bucket];
        if (n.prev != kNil) slab_[n.prev].next = n.next;
        else b.head = n.next;
        if (n.next != kNil) slab_[n.next].prev = n.prev;
        else b.tail = n.prev;
        if (b.head == kNil)
            bitmap_[n.bucket >> kLevelBits] &= ~(1ull << (n.bucket & (kBucketsPerLevel - 1)));
    }

    std::uint32_t acquire_slot() {
        std::uint32_t slot;
        if (free_head_ != kNil) {
            slot = free_head_;
            free_head_ = slab_[slot].next;
        } else {
            slot = static_cast<std::uint32_t>(slab_.size());
            slab_.emplace_back();
        }
        slab_[slot].gen |= 1u;  // even (dead) -> odd (live)
        return slot;
    }

    void free_slot(std::uint32_t slot) {
        Node& n = slab_[slot];
        n.fn = Handler{};  // release the closure now, not at slot reuse
        n.gen += 1;        // odd -> even: outstanding ids die
        n.bucket = kFreeBucket;
        n.next = free_head_;
        free_head_ = slot;
    }

    /// Tick of the next occupied level-0 bucket or level>=1 cascade
    /// boundary at or after the base cursor.
    std::uint64_t next_event_tick() const {
        std::uint64_t best = kNoTick;
        if (bitmap_[0] != 0) {
            const unsigned cur = static_cast<unsigned>(base_tick_ & (kBucketsPerLevel - 1));
            const unsigned d = static_cast<unsigned>(std::countr_zero(std::rotr(bitmap_[0], cur)));
            best = base_tick_ + d;
        }
        for (int k = 1; k < kLevels; ++k) {
            if (bitmap_[k] == 0) continue;
            const std::uint64_t cur = base_tick_ >> (kLevelBits * k);
            const unsigned curj = static_cast<unsigned>(cur & (kBucketsPerLevel - 1));
            // Occupied level-k buckets always sit strictly ahead of the
            // cursor (they cascade exactly when the base reaches their
            // window start), so the circular distance 0 means a full lap.
            const unsigned d = static_cast<unsigned>(std::countr_zero(
                                   std::rotr(bitmap_[k], (curj + 1) & (kBucketsPerLevel - 1)))) +
                               1;
            best = std::min(best, (cur + d) << (kLevelBits * k));
        }
        return best;
    }

    /// Move the base cursor to `tick` (== next_event_tick()), cascading
    /// any occupied bucket whose window starts exactly there.  Higher
    /// levels first: their entries re-place strictly ahead of any
    /// lower-level bucket cascading at the same boundary.
    void advance_to(std::uint64_t tick) {
        base_tick_ = tick;
        for (int k = kLevels - 1; k >= 1; --k) {
            if ((tick & ((1ull << (kLevelBits * k)) - 1)) != 0) continue;
            const std::uint16_t bucket = static_cast<std::uint16_t>(
                k * kBucketsPerLevel + ((tick >> (kLevelBits * k)) & (kBucketsPerLevel - 1)));
            cascade(bucket);
        }
    }

    void cascade(std::uint16_t bucket) {
        ++work_;
        Bucket& b = buckets_[bucket];
        std::uint32_t slot = b.head;
        if (slot == kNil) return;
        b.head = b.tail = kNil;
        bitmap_[bucket >> kLevelBits] &= ~(1ull << (bucket & (kBucketsPerLevel - 1)));
        while (slot != kNil) {
            const std::uint32_t next = slab_[slot].next;
            link(slot, place_bucket(tick_of(slab_[slot].time)));
            ++work_;
            slot = next;
        }
    }

    /// Collect and fire the due entries of the level-0 bucket under the
    /// base cursor, sorted by exact (deadline, seq).  Entries not yet
    /// due (sub-tick remainder) stay linked.
    std::size_t fire_cursor_bucket(SimTime now) {
        ++work_;
        const std::uint16_t bucket =
            static_cast<std::uint16_t>(base_tick_ & (kBucketsPerLevel - 1));
        staged_.clear();
        std::uint32_t slot = buckets_[bucket].head;
        while (slot != kNil) {
            Node& n = slab_[slot];
            const std::uint32_t next = n.next;
            ++work_;
            if (n.time <= now) {
                unlink(slot);
                n.bucket = kStagedBucket;
                staged_.push_back({n.time, n.seq, slot, n.gen});
            }
            slot = next;
        }
        if (staged_.empty()) return 0;
        std::sort(staged_.begin(), staged_.end(), [](const Staged& a, const Staged& b) {
            return a.time != b.time ? a.time < b.time : a.seq < b.seq;
        });
        std::size_t fired = 0;
        for (const Staged& e : staged_) {
            Node& n = slab_[e.slot];
            if (n.gen != e.gen) continue;  // cancelled by an earlier handler
            assert(n.bucket == kStagedBucket);
            Handler fn = std::move(n.fn);
            free_slot(e.slot);
            --size_;
            ++fired;
            fn();  // may push/cancel freely; slab refs not held across this
        }
        return fired;
    }

    /// Exact minimum deadline.  Each level's minimum lives in its first
    /// occupied bucket (bucket windows within a level are disjoint and
    /// ordered), but levels are not ordered against each other, so scan
    /// one bucket per level.
    SimTime compute_min() const {
        SimTime best = 0;
        bool have = false;
        for (int k = 0; k < kLevels; ++k) {
            if (bitmap_[k] == 0) continue;
            std::uint64_t tick;
            if (k == 0) {
                const unsigned cur = static_cast<unsigned>(base_tick_ & (kBucketsPerLevel - 1));
                tick = base_tick_ +
                       static_cast<unsigned>(std::countr_zero(std::rotr(bitmap_[0], cur)));
            } else {
                const std::uint64_t cur = base_tick_ >> (kLevelBits * k);
                const unsigned curj = static_cast<unsigned>(cur & (kBucketsPerLevel - 1));
                const unsigned d = static_cast<unsigned>(std::countr_zero(std::rotr(
                                       bitmap_[k], (curj + 1) & (kBucketsPerLevel - 1)))) +
                                   1;
                tick = (cur + d) << (kLevelBits * k);
            }
            const std::uint16_t bucket =
                static_cast<std::uint16_t>(k * kBucketsPerLevel +
                                           ((tick >> (kLevelBits * k)) & (kBucketsPerLevel - 1)));
            for (std::uint32_t slot = buckets_[bucket].head; slot != kNil;
                 slot = slab_[slot].next) {
                if (!have || slab_[slot].time < best) {
                    best = slab_[slot].time;
                    have = true;
                }
            }
        }
        // Nodes collected for the current fire batch are unlinked from
        // their bucket but still armed; a handler querying the wheel
        // mid-fire must still see them.  Outside fire_due the scratch
        // holds only dead generations.
        for (const Staged& e : staged_) {
            const Node& n = slab_[e.slot];
            if (n.gen == e.gen && n.bucket == kStagedBucket && (!have || n.time < best)) {
                best = n.time;
                have = true;
            }
        }
        assert(have);
        return best;
    }

    std::vector<Node> slab_;
    std::vector<Staged> staged_;
    Bucket buckets_[kLevels * kBucketsPerLevel]{};
    std::uint64_t bitmap_[kLevels]{};
    std::uint64_t base_tick_ = 0;
    std::uint32_t free_head_ = kNil;
    std::uint64_t seq_ = 0;
    std::size_t size_ = 0;
    std::uint64_t work_ = 0;
    mutable SimTime min_time_ = 0;
    mutable bool min_valid_ = false;
};

}  // namespace bacp
