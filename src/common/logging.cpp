#include "common/logging.hpp"

#include <cstdio>

namespace bacp {

const char* to_string(LogLevel level) {
    switch (level) {
        case LogLevel::Trace: return "TRACE";
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO";
        case LogLevel::Warn: return "WARN";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF";
    }
    return "?";
}

Logger& Logger::instance() {
    static Logger logger;
    return logger;
}

Logger::Logger() {
    sink_ = [](LogLevel level, const std::string& message) {
        std::fprintf(stderr, "[%s] %s\n", to_string(level), message.c_str());
    };
}

void Logger::set_sink(Sink sink) {
    if (sink) sink_ = std::move(sink);
}

void Logger::write(LogLevel level, const std::string& message) {
    if (enabled(level)) sink_(level, message);
}

}  // namespace bacp
