#pragma once

/// \file slab_heap.hpp
/// Indexed 4-ary min-heap over a slab of pooled timer/event records.
///
/// This is the engine room behind sim::EventQueue and net::TimerWheel.
/// The previous design (std::priority_queue + unordered_set of live ids,
/// lazy cancellation) paid a heap allocation per scheduled closure, a
/// hash insert/erase per event, and dragged each handler through every
/// sift.  SlabTimerHeap removes all three costs:
///
///   * Handlers live in a slab of fixed-size nodes recycled through a
///     freelist -- after warm-up, push/pop touch no allocator at all
///     (pair with a non-allocating Handler such as InplaceFunction).
///   * Cancellation is eager and O(log n) with no hash set: each id
///     carries the slot's generation counter, so a stale id is detected
///     by a single compare.  Cancelled entries leave the heap
///     immediately -- no lazy-skip pass, no const-laundering.
///   * The heap orders 16-byte {time, seq} keys plus a slot index;
///     handlers never move during sifts.  A 4-ary layout halves tree
///     depth versus binary and keeps each child scan inside one cache
///     line.
///
/// Determinism contract (same as the old queue): entries with equal
/// times fire in push order, via a monotone sequence counter that is
/// independent of slot reuse.
///
/// Id encoding: ((slot + 1) << 32) | generation.  Generation parity is
/// the liveness bit (odd = live, even = free); both alloc and free
/// increment it, so an id stays invalid forever once its entry fires or
/// is cancelled, even after the slot is recycled.  0 is never a valid
/// id, matching kInvalidEvent/kInvalidTimer.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace bacp {

template <typename Handler>
class SlabTimerHeap {
public:
    using Id = std::uint64_t;
    static constexpr Id kInvalidId = 0;

    /// Inserts \p fn at key \p time; returns a generation-validated
    /// cancellation handle.
    Id push(SimTime time, Handler fn) {
        // The FIFO tiebreak only orders entries that coexist in the heap,
        // so the counter can restart whenever the heap drains -- which
        // keeps 32 bits (and a 16-byte HeapEntry) sufficient: overflow
        // would need 2^32 pushes without the queue ever going empty.
        if (heap_.empty()) {
            seq_counter_ = 0;
        } else {
            BACP_ASSERT_MSG(seq_counter_ != 0xFFFF'FFFFu, "seq tiebreak exhausted");
        }
        const std::uint32_t slot = alloc_slot();
        Node& node = nodes_[slot];
        node.fn = std::move(fn);
        node.heap_pos = static_cast<std::uint32_t>(heap_.size());
        heap_.push_back(HeapEntry{time, seq_counter_++, slot});
        sift_up(node.heap_pos);
        return (static_cast<Id>(slot) + 1) << 32 | node.gen;
    }

    /// Eagerly removes a pending entry.  Stale ids (already fired,
    /// already cancelled, or kInvalidId) are a harmless no-op returning
    /// false.
    bool cancel(Id id) {
        const std::uint32_t slot = decode_live_slot(id);
        if (slot == kNoSlot) return false;
        remove_at(nodes_[slot].heap_pos);
        free_slot(slot);
        return true;
    }

    bool empty() const { return heap_.empty(); }

    /// Live entry count (pushed, not yet fired or cancelled).
    std::size_t size() const { return heap_.size(); }

    /// Key of the earliest live entry.  Precondition: !empty().
    SimTime top_time() const {
        BACP_ASSERT_MSG(!heap_.empty(), "top_time() on empty heap");
        return heap_.front().time;
    }

    struct Fired {
        SimTime time;
        Handler handler;
    };

    /// Removes and returns the earliest live entry.  Precondition: !empty().
    Fired pop() {
        BACP_ASSERT_MSG(!heap_.empty(), "pop() on empty heap");
        const HeapEntry top = heap_.front();
        Fired fired{top.time, std::move(nodes_[top.slot].fn)};
        remove_at(0);
        free_slot(top.slot);
        return fired;
    }

    /// Pre-sizes slab and heap so the first \p n concurrent entries
    /// trigger no allocator growth.
    void reserve(std::size_t n) {
        heap_.reserve(n);
        nodes_.reserve(n);
    }

private:
    struct HeapEntry {
        SimTime time;
        std::uint32_t seq;   // push order among coexisting entries (FIFO tiebreak)
        std::uint32_t slot;  // index into nodes_; backlinked via Node::heap_pos
    };
    static_assert(sizeof(HeapEntry) == 16, "sift moves exactly one 16-byte key");

    struct Node {
        Handler fn{};
        std::uint32_t gen = 0;  // odd = live; bumped on both alloc and free
        std::uint32_t heap_pos = 0;  // position in heap_; next-free link when free
    };

    static constexpr std::uint32_t kNoSlot = 0xFFFF'FFFFu;
    /// Fan-out of the implicit tree.  4 keeps each child scan within one
    /// cache line of 16-byte keys while halving depth versus binary.
    static constexpr std::uint32_t kArity = 4;

    static bool earlier(const HeapEntry& a, const HeapEntry& b) {
        // Two-step compare on purpose: times are almost always distinct,
        // so the first branch is nearly perfectly predicted and the seq
        // tiebreak stays off the hot path.  (A fused branchless
        // lexicographic compare benches measurably slower here.)
        if (a.time != b.time) return a.time < b.time;
        return a.seq < b.seq;
    }

    std::uint32_t alloc_slot() {
        std::uint32_t slot;
        if (free_head_ != kNoSlot) {
            slot = free_head_;
            free_head_ = nodes_[slot].heap_pos;
        } else {
            BACP_ASSERT_MSG(nodes_.size() < kNoSlot, "slab heap slot space exhausted");
            slot = static_cast<std::uint32_t>(nodes_.size());
            nodes_.emplace_back();
        }
        ++nodes_[slot].gen;  // even -> odd: live
        return slot;
    }

    void free_slot(std::uint32_t slot) {
        Node& node = nodes_[slot];
        node.fn = Handler{};  // release captured state now, not at reuse
        ++node.gen;           // odd -> even: any outstanding id goes stale
        node.heap_pos = free_head_;
        free_head_ = slot;
    }

    /// Decodes \p id and returns its slot iff the entry is still live;
    /// kNoSlot for invalid, fired, or cancelled ids.
    std::uint32_t decode_live_slot(Id id) const {
        if (id == kInvalidId) return kNoSlot;
        const std::uint64_t slot_plus_1 = id >> 32;
        const auto gen = static_cast<std::uint32_t>(id);
        if (slot_plus_1 == 0 || slot_plus_1 > nodes_.size()) return kNoSlot;
        const auto slot = static_cast<std::uint32_t>(slot_plus_1 - 1);
        if ((gen & 1u) == 0 || nodes_[slot].gen != gen) return kNoSlot;
        return slot;
    }

    /// Removes the heap entry at \p pos, restoring the heap property.
    /// Does not touch the slab node.
    void remove_at(std::uint32_t pos) {
        const auto last = static_cast<std::uint32_t>(heap_.size() - 1);
        if (pos != last) {
            heap_[pos] = heap_[last];
            heap_.pop_back();
            // The migrated entry may violate the heap property in either
            // direction; sift_down settles the subtree, and only when the
            // entry never left pos (and has a parent) can the upward
            // direction still be violated.
            if (sift_down(pos) == pos && pos != 0) sift_up(pos);
        } else {
            heap_.pop_back();
        }
    }

    void place(std::uint32_t pos, const HeapEntry& entry) {
        heap_[pos] = entry;
        nodes_[entry.slot].heap_pos = pos;
    }

    void sift_up(std::uint32_t pos) { sift_up_from(pos, heap_[pos]); }

    // \p entry by value: callers pass heap_[pos], which place() overwrites.
    void sift_up_from(std::uint32_t pos, const HeapEntry entry) {
        while (pos > 0) {
            const std::uint32_t parent = (pos - 1) / kArity;
            if (!earlier(entry, heap_[parent])) break;
            place(pos, heap_[parent]);
            pos = parent;
        }
        place(pos, entry);
    }

    /// Returns the entry's settled position.
    std::uint32_t sift_down(std::uint32_t pos) {
        const HeapEntry entry = heap_[pos];
        const auto n = static_cast<std::uint32_t>(heap_.size());
        for (;;) {
            const std::uint64_t first_child = std::uint64_t{pos} * kArity + 1;
            if (first_child >= n) break;
            const auto last_child =
                static_cast<std::uint32_t>(std::min<std::uint64_t>(first_child + (kArity - 1), n - 1));
            std::uint32_t best = static_cast<std::uint32_t>(first_child);
            for (std::uint32_t c = best + 1; c <= last_child; ++c) {
                if (earlier(heap_[c], heap_[best])) best = c;
            }
            if (!earlier(heap_[best], entry)) break;
            place(pos, heap_[best]);
            pos = best;
        }
        place(pos, entry);
        return pos;
    }

    std::vector<HeapEntry> heap_;  // ordered keys; index 0 is the minimum
    std::vector<Node> nodes_;      // slab: handlers + generations, never moved by sifts
    std::uint32_t free_head_ = kNoSlot;
    std::uint32_t seq_counter_ = 0;  // restarts whenever the heap drains
};

}  // namespace bacp
