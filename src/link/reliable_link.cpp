#include "link/reliable_link.hpp"

#include "common/assert.hpp"
#include "protocol/seqnum.hpp"
#include "runtime/ack_clip.hpp"
#include "wire/codec.hpp"

namespace bacp::link {

namespace {
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
    std::uint64_t s = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
    return splitmix64(s);
}
}  // namespace

ByteChannel::Config ReliableLink::channel_config() {
    ByteChannel::Config config;
    if (cfg_.loss > 0.0) config.loss = std::make_unique<channel::BernoulliLoss>(cfg_.loss);
    config.delay = std::make_unique<channel::UniformDelay>(cfg_.delay_lo, cfg_.delay_hi);
    config.corrupt_p = cfg_.corrupt_p;
    return config;
}

ReliableLink::ReliableLink(sim::Simulator& sim, Config config)
    : cfg_(std::move(config)),
      sim_(sim),
      rng_data_(mix_seed(cfg_.seed, 0xd1)),
      rng_ack_(mix_seed(cfg_.seed, 0xac)),
      sender_(cfg_.w),
      receiver_(cfg_.w),
      data_ch_(sim, rng_data_, channel_config(), "data"),
      ack_ch_(sim, rng_ack_, channel_config(), "ack"),
      ack_flush_timer_(sim, [this] { flush_ack(); }),
      horizon_timer_(sim, [this] { pump(); }) {
    timeout_ = cfg_.timeout > 0 ? cfg_.timeout
                                : 2 * cfg_.delay_hi + cfg_.ack_policy.max_ack_delay() +
                                      kMillisecond;
    data_ch_.set_receiver([this](const ByteChannel::Frame& f) { on_data_frame(f); });
    ack_ch_.set_receiver([this](const ByteChannel::Frame& f) { on_ack_frame(f); });
}

void ReliableLink::send(std::vector<std::uint8_t> payload) {
    queue_.push_back(std::move(payload));
    pump();
}

bool ReliableLink::horizon_blocks() {
    if (cfg_.unsafe_disable_horizon) return false;  // negative control
    if (horizon_until_ <= sim_.now()) {
        horizon_cap_ = kNoCap;  // expired
        return false;
    }
    return ghost_ns_ >= horizon_cap_;
}

void ReliableLink::pump() {
    while (!queue_.empty() && sender_.can_send_new()) {
        if (horizon_blocks()) {
            if (!horizon_timer_.armed()) horizon_timer_.restart(horizon_until_ - sim_.now());
            return;
        }
        const proto::Data msg = sender_.send_new();
        (void)msg;  // residue == ghost_ns_ mod 2w by construction
        const Seq true_seq = ghost_ns_++;
        window_payloads_.emplace(true_seq, std::move(queue_.front()));
        queue_.pop_front();
        transmit(true_seq, /*retx=*/false);
    }
}

void ReliableLink::note_horizon(Seq true_seq) {
    // Send-horizon rule (see runtime/ba_session.hpp): an acked message
    // whose last copy may still be in transit caps ns at i + w until the
    // copy has aged out, keeping every late arrival inside the bounded
    // receiver's residue-reconstruction window.
    const auto it = last_tx_.find(true_seq);
    if (it == last_tx_.end()) return;
    const SimTime copy_gone = it->second + cfg_.delay_hi;
    if (copy_gone <= sim_.now()) return;
    horizon_until_ = std::max(horizon_until_, copy_gone);
    horizon_cap_ = std::min(horizon_cap_, true_seq + cfg_.w);
}

void ReliableLink::transmit(Seq true_seq, bool retx) {
    if (retx) ++retransmissions_;
    const auto payload = window_payloads_.find(true_seq);
    BACP_ASSERT_MSG(payload != window_payloads_.end(), "transmit without stored payload");
    const Seq residue = true_seq % sender_.domain();
    data_ch_.send(wire::encode_data(residue,
                                    std::span<const std::uint8_t>(payload->second.data(),
                                                                  payload->second.size()),
                                    wire::kFlagBoundedSeq));
    last_tx_[true_seq] = sim_.now();
    sim_.schedule_after(timeout_, [this, true_seq] { per_message_fire(true_seq); });
}

void ReliableLink::per_message_fire(Seq true_seq) {
    if (true_seq < ghost_na_) {
        // Fully acknowledged; release bookkeeping.
        last_tx_.erase(true_seq);
        return;
    }
    const auto it = last_tx_.find(true_seq);
    if (it == last_tx_.end()) return;
    if (sim_.now() - it->second < timeout_) return;  // a newer copy owns the timer
    const Seq residue = true_seq % sender_.domain();
    if (!sender_.can_resend(residue)) return;  // acked out of order (hole)
    // Hole-gated resend discipline (see runtime/ba_session.hpp): only the
    // lowest unacked message or one with ack-hole evidence above it may be
    // resent -- the property that keeps every in-transit copy inside the
    // bounded receiver's residue-reconstruction window.
    if (!cfg_.unsafe_ungated_resend && true_seq != ghost_na_ &&
        !sender_.acked_beyond(residue)) {
        return;
    }
    transmit(true_seq, /*retx=*/true);
}

void ReliableLink::rescan_matured() {
    for (const Seq residue : sender_.resend_candidates()) {
        const Seq true_seq =
            ghost_na_ + proto::mod_offset(sender_.na_mod(), residue, sender_.domain());
        const auto it = last_tx_.find(true_seq);
        if (it == last_tx_.end() || sim_.now() - it->second < timeout_) continue;
        if (true_seq != ghost_na_ && !sender_.acked_beyond(residue)) continue;
        transmit(true_seq, /*retx=*/true);
    }
}

void ReliableLink::on_data_frame(const ByteChannel::Frame& frame) {
    const auto decoded = wire::decode(std::span<const std::uint8_t>(frame.data(), frame.size()));
    if (!decoded.ok()) {
        ++frames_rejected_;  // corruption becomes loss; the protocol recovers
        return;
    }
    const auto* data = std::get_if<wire::DataFrame>(&decoded.frame());
    if (data == nullptr) {
        ++frames_rejected_;  // an ack on the data channel: malformed peer
        return;
    }
    const Seq n = receiver_.domain();
    const Seq w = receiver_.window();
    const Seq residue = data->seq;
    if (residue >= n) {
        ++frames_rejected_;
        return;
    }
    // Reconstruct the true sequence number (anchored offset, SV).
    const Seq base = proto::mod_sub(receiver_.nr_mod(), w, n);
    const Seq offset = proto::mod_offset(base, residue, n);
    const auto dup = receiver_.on_data(proto::Data{residue});
    if (dup) {
        send_ack_frame(dup->lo, dup->hi);
        return;
    }
    const Seq true_seq = ghost_nr_ + (offset - w);
    if (true_seq >= ghost_vr_) {
        reorder_buffer_[true_seq] = data->payload;  // idempotent on duplicates
    }
    // Deliver the contiguous run.
    bool advanced = false;
    while (receiver_.can_advance()) {
        advanced = true;
        receiver_.advance();
        const Seq seq = ghost_vr_++;
        const auto buffered = reorder_buffer_.find(seq);
        BACP_ASSERT_MSG(buffered != reorder_buffer_.end(), "delivering unbuffered payload");
        ++delivered_;
        if (on_deliver_) {
            on_deliver_(std::span<const std::uint8_t>(buffered->second.data(),
                                                      buffered->second.size()));
        }
        reorder_buffer_.erase(buffered);
    }
    if (advanced) {
        ooo_since_advance_ = 0;
    } else {
        ++ooo_since_advance_;
        maybe_send_nak();
    }
    // Block-ack scheduling.
    const Seq pending = receiver_.pending();
    if (pending >= cfg_.ack_policy.threshold) {
        flush_ack();
    } else if (pending > 0 && !ack_flush_timer_.armed()) {
        ack_flush_timer_.restart(cfg_.ack_policy.flush_delay);
    }
}

void ReliableLink::maybe_send_nak() {
    if (!cfg_.enable_nak || ooo_since_advance_ < cfg_.nak_threshold) return;
    const Seq missing = receiver_.vr_mod();
    // One NAK per blocked position per NAK round trip.
    if (last_nak_field_ == missing && sim_.now() - last_nak_time_ < 2 * cfg_.delay_hi) return;
    last_nak_field_ = missing;
    last_nak_time_ = sim_.now();
    ++naks_sent_;
    ack_ch_.send(wire::encode_nak(missing, wire::kFlagBoundedSeq));
}

void ReliableLink::on_nak(Seq residue) {
    if (residue >= sender_.domain()) return;  // malformed
    const Seq off = proto::mod_offset(sender_.na_mod(), residue, sender_.domain());
    if (off >= sender_.outstanding()) return;  // stale
    const Seq true_seq = ghost_na_ + off;
    if (!sender_.can_resend(residue)) return;
    const auto it = last_tx_.find(true_seq);
    if (it == last_tx_.end()) return;
    if (sim_.now() - it->second < cfg_.delay_hi) return;  // previous copy may live
    ++fast_retx_;
    transmit(true_seq, /*retx=*/true);
}

void ReliableLink::flush_ack() {
    ack_flush_timer_.cancel();
    const Seq pending = receiver_.pending();
    if (pending == 0) return;
    const proto::Ack ack = receiver_.make_ack();
    ghost_nr_ += pending;
    send_ack_frame(ack.lo, ack.hi);
}

void ReliableLink::send_ack_frame(Seq lo, Seq hi) {
    // The block (lo, hi) is a residue pair; lo > hi is legal on the wire
    // only as two residues of a wrapped range, which encode_ack rejects.
    // Encode the pair as-is when ordered, or split at the wrap point.
    if (lo <= hi) {
        ack_ch_.send(wire::encode_ack(lo, hi, wire::kFlagBoundedSeq));
        return;
    }
    const Seq n = receiver_.domain();
    ack_ch_.send(wire::encode_ack(lo, n - 1, wire::kFlagBoundedSeq));
    ack_ch_.send(wire::encode_ack(0, hi, wire::kFlagBoundedSeq));
}

void ReliableLink::on_ack_frame(const ByteChannel::Frame& frame) {
    const auto decoded = wire::decode(std::span<const std::uint8_t>(frame.data(), frame.size()));
    if (!decoded.ok()) {
        ++frames_rejected_;
        return;
    }
    if (const auto* nak = std::get_if<wire::NakFrame>(&decoded.frame())) {
        on_nak(nak->seq);
        return;
    }
    const auto* ack = std::get_if<wire::AckFrame>(&decoded.frame());
    if (ack == nullptr || ack->lo >= sender_.domain() || ack->hi >= sender_.domain()) {
        ++frames_rejected_;
        return;
    }
    // Clip to unacknowledged runs: per-message timers may have elicited
    // overlapping duplicate acknowledgments (see runtime/ack_clip.hpp).
    for (const auto& run : runtime::clip_ack_bounded(sender_, proto::Ack{ack->lo, ack->hi})) {
        const Seq before = sender_.na_mod();
        const Seq lo_true = ghost_na_ + proto::mod_offset(before, run.lo, sender_.domain());
        const Seq hi_true = ghost_na_ + proto::mod_offset(before, run.hi, sender_.domain());
        for (Seq t = lo_true; t <= hi_true; ++t) note_horizon(t);
        sender_.on_ack(run);
        const Seq advanced = proto::mod_offset(before, sender_.na_mod(), sender_.domain());
        for (Seq i = 0; i < advanced; ++i) {
            window_payloads_.erase(ghost_na_ + i);
            last_tx_.erase(ghost_na_ + i);
        }
        ghost_na_ += advanced;
    }
    pump();
    rescan_matured();
}

}  // namespace bacp::link
