#pragma once

/// \file byte_channel.hpp
/// Discrete-event channel carrying raw frames (byte vectors).
///
/// Beyond loss and delay (same models as SimChannel), a byte channel can
/// *corrupt* frames by flipping random bits.  Corruption is not loss: the
/// damaged bytes are delivered and it is the codec's CRC that must turn
/// them into an effective loss -- exercising the integrity path end to
/// end is the point of the link layer tests and examples.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "channel/delay_model.hpp"
#include "channel/loss_model.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace bacp::link {

struct ByteChannelStats {
    std::uint64_t sent = 0;
    std::uint64_t dropped = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t delivered = 0;  // includes corrupted deliveries
    std::uint64_t bytes_sent = 0;
};

class ByteChannel {
public:
    using Frame = std::vector<std::uint8_t>;
    using Receiver = std::function<void(const Frame&)>;

    struct Config {
        std::unique_ptr<channel::LossModel> loss;    // nullptr -> NoLoss
        std::unique_ptr<channel::DelayModel> delay;  // nullptr -> FixedDelay(1ms)
        double corrupt_p = 0.0;  // probability a surviving frame gets a bit flip
        /// Bottleneck-link model (0 = off): per-frame serialization time
        /// and a finite tail-drop queue (see sim::SimChannel::Config).
        SimTime service_time = 0;
        /// Additional per-byte serialization (0 = off): a frame of n bytes
        /// occupies the link for service_time + n * service_per_byte, so
        /// small ack frames are genuinely cheaper than payload frames.
        SimTime service_per_byte = 0;
        std::size_t queue_capacity = 64;
    };

    ByteChannel(sim::Simulator& sim, Rng& rng, Config config, std::string name = "B");

    void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

    void send(Frame frame);

    std::size_t in_flight() const { return in_flight_; }
    SimTime max_lifetime() const { return delay_->max_delay(); }
    const ByteChannelStats& stats() const { return stats_; }

private:
    sim::Simulator& sim_;
    Rng& rng_;
    std::unique_ptr<channel::LossModel> loss_;
    std::unique_ptr<channel::DelayModel> delay_;
    double corrupt_p_;
    SimTime service_time_;
    SimTime service_per_byte_;
    std::size_t queue_capacity_;
    std::string name_;
    Receiver receiver_;
    ByteChannelStats stats_;
    std::size_t in_flight_ = 0;
    SimTime link_free_at_ = 0;  // bottleneck: next departure slot
    std::size_t queued_ = 0;    // frames waiting for / in serialization
};

}  // namespace bacp::link
