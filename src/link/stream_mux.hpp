#pragma once

/// \file stream_mux.hpp
/// Several independent reliable streams over one channel pair.
///
/// Each stream runs its own bounded block-acknowledgment instance
/// (LinkSender/LinkReceiver tagged with a wire stream id); the mux owns
/// the shared data/ack ByteChannels -- optionally a common bottleneck --
/// and dispatches inbound frames by stream id.
///
/// The point (bench_e15_streams): per-stream sequencing confines a loss
/// to the stream that suffered it.  Interleaving the same flows over ONE
/// sequenced stream makes any loss stall every flow behind the in-order
/// delivery gap -- head-of-line blocking.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "link/byte_channel.hpp"
#include "link/link_endpoints.hpp"
#include "runtime/ack_policy.hpp"
#include "sim/simulator.hpp"

namespace bacp::link {

class StreamMux {
public:
    struct Config {
        Seq streams = 4;
        Seq w = 8;  // per-stream window
        double loss = 0.0;
        double corrupt_p = 0.0;
        SimTime delay_lo = 4 * kMillisecond;
        SimTime delay_hi = 6 * kMillisecond;
        /// Shared bottleneck on the data channel (0 = off).
        SimTime service_time = 0;
        std::size_t queue_capacity = 64;
        runtime::AckPolicy ack_policy = runtime::AckPolicy::eager();
        bool enable_nak = false;
        std::uint64_t seed = 1;
    };

    using DeliverFn = std::function<void(Seq stream, std::span<const std::uint8_t>)>;

    StreamMux(sim::Simulator& sim, Config config);
    StreamMux(const StreamMux&) = delete;
    StreamMux& operator=(const StreamMux&) = delete;

    void set_on_deliver(DeliverFn fn) { on_deliver_ = std::move(fn); }

    /// Enqueues a payload on the given stream (0-based).
    void send(Seq stream, std::vector<std::uint8_t> payload);

    Seq streams() const { return cfg_.streams; }
    Seq delivered_count(Seq stream) const;
    bool idle() const;
    std::uint64_t retransmissions() const;
    std::uint64_t frames_misdirected() const { return misdirected_; }
    const ByteChannelStats& data_stats() const { return data_ch_.stats(); }
    const ByteChannelStats& ack_stats() const { return ack_ch_.stats(); }

private:
    ByteChannel::Config data_config() const;
    ByteChannel::Config ack_config() const;
    void on_data_frame(const ByteChannel::Frame& frame);
    void on_ack_frame(const ByteChannel::Frame& frame);
    /// Stream id of a valid frame, or kUntaggedStream when undecodable /
    /// untagged / out of range.
    Seq classify(const ByteChannel::Frame& frame) const;

    Config cfg_;
    Rng rng_data_;
    Rng rng_ack_;
    ByteChannel data_ch_;
    ByteChannel ack_ch_;
    std::vector<std::unique_ptr<LinkSender>> tx_;
    std::vector<std::unique_ptr<LinkReceiver>> rx_;
    DeliverFn on_deliver_;
    std::uint64_t misdirected_ = 0;
};

}  // namespace bacp::link
