#pragma once

/// \file multihop.hpp
/// Multi-hop reliability topologies built from link endpoints.
///
/// Two classic architectures over the same chain of lossy hops:
///
///   EndToEndPath   reliability only at the edges; intermediate nodes are
///                  dumb store-and-forward frame relays.  A loss anywhere
///                  costs a retransmission across the WHOLE path.
///   HopByHopPath   every hop runs its own reliable link; intermediate
///                  nodes reassemble payloads and re-originate them.
///                  A loss costs one hop's retransmission, but every node
///                  keeps per-flow state and adds store-and-forward and
///                  (re)acknowledgment work.
///
/// bench_e14_multihop measures the trade — the end-to-end argument made
/// quantitative on this library's own protocol.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "link/byte_channel.hpp"
#include "link/link_endpoints.hpp"
#include "sim/simulator.hpp"

namespace bacp::link {

/// One physical hop of the chain.
struct HopSpec {
    double loss = 0.0;
    double corrupt_p = 0.0;
    SimTime delay_lo = 1 * kMillisecond;
    SimTime delay_hi = 2 * kMillisecond;
};

struct PathConfig {
    Seq w = 16;
    std::vector<HopSpec> hops;           // at least one
    SimTime relay_delay = 50 * kMicrosecond;  // per intermediate node
    runtime::AckPolicy ack_policy = runtime::AckPolicy::eager();
    bool enable_nak = false;
    std::uint64_t seed = 1;
};

/// Common surface of the two architectures.
class MultihopPath {
public:
    using DeliverFn = LinkReceiver::DeliverFn;

    virtual ~MultihopPath() = default;
    virtual void send(std::vector<std::uint8_t> payload) = 0;
    virtual void set_on_deliver(DeliverFn fn) = 0;
    virtual Seq delivered_count() const = 0;
    virtual bool idle() const = 0;
    /// Total frames placed on any channel (data + ack directions, all hops).
    virtual std::uint64_t total_frames() const = 0;
    /// Total end-to-end retransmissions (e2e) or sum across hops (hbh).
    virtual std::uint64_t total_retransmissions() const = 0;
};

class EndToEndPath final : public MultihopPath {
public:
    EndToEndPath(sim::Simulator& sim, PathConfig config);

    void send(std::vector<std::uint8_t> payload) override { tx_->send(std::move(payload)); }
    void set_on_deliver(DeliverFn fn) override { rx_->set_on_deliver(std::move(fn)); }
    Seq delivered_count() const override { return rx_->delivered_count(); }
    bool idle() const override { return tx_->idle(); }
    std::uint64_t total_frames() const override;
    std::uint64_t total_retransmissions() const override { return tx_->retransmissions(); }

private:
    std::vector<std::unique_ptr<Rng>> rngs_;
    std::vector<std::unique_ptr<ByteChannel>> forward_;  // hop i: node i -> i+1
    std::vector<std::unique_ptr<ByteChannel>> reverse_;  // hop i: node i+1 -> i
    std::vector<std::unique_ptr<FrameRelay>> relays_;    // keep-alive storage
    std::unique_ptr<LinkSender> tx_;
    std::unique_ptr<LinkReceiver> rx_;
};

class HopByHopPath final : public MultihopPath {
public:
    HopByHopPath(sim::Simulator& sim, PathConfig config);

    void send(std::vector<std::uint8_t> payload) override {
        ++accepted_;
        hops_.front().tx->send(std::move(payload));
    }
    void set_on_deliver(DeliverFn fn) override { on_deliver_ = std::move(fn); }
    Seq delivered_count() const override { return delivered_; }
    bool idle() const override;
    std::uint64_t total_frames() const override;
    std::uint64_t total_retransmissions() const override;

private:
    struct Hop {
        std::unique_ptr<Rng> fwd_rng;
        std::unique_ptr<Rng> rev_rng;
        std::unique_ptr<ByteChannel> forward;
        std::unique_ptr<ByteChannel> reverse;
        std::unique_ptr<LinkSender> tx;   // at the hop's upstream node
        std::unique_ptr<LinkReceiver> rx; // at the hop's downstream node
    };

    std::vector<Hop> hops_;
    DeliverFn on_deliver_;
    Seq accepted_ = 0;
    Seq delivered_ = 0;
};

}  // namespace bacp::link
