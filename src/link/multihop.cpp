#include "link/multihop.hpp"

#include "common/assert.hpp"

namespace bacp::link {

namespace {

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
    std::uint64_t s = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
    return splitmix64(s);
}

ByteChannel::Config hop_channel(const HopSpec& hop) {
    ByteChannel::Config config;
    if (hop.loss > 0) config.loss = std::make_unique<channel::BernoulliLoss>(hop.loss);
    config.delay = std::make_unique<channel::UniformDelay>(hop.delay_lo, hop.delay_hi);
    config.corrupt_p = hop.corrupt_p;
    return config;
}

SimTime path_lifetime(const PathConfig& cfg) {
    SimTime total = 0;
    for (const auto& hop : cfg.hops) total += hop.delay_hi;
    total += cfg.relay_delay * static_cast<SimTime>(cfg.hops.size() - 1);
    return total;
}

}  // namespace

// -------------------------------------------------------------- EndToEndPath

EndToEndPath::EndToEndPath(sim::Simulator& sim, PathConfig config) {
    BACP_ASSERT_MSG(!config.hops.empty(), "a path needs at least one hop");
    const std::size_t k = config.hops.size();
    for (std::size_t i = 0; i < k; ++i) {
        rngs_.push_back(std::make_unique<Rng>(mix_seed(config.seed, 2 * i)));
        forward_.push_back(std::make_unique<ByteChannel>(sim, *rngs_.back(),
                                                         hop_channel(config.hops[i]),
                                                         "f" + std::to_string(i)));
        rngs_.push_back(std::make_unique<Rng>(mix_seed(config.seed, 2 * i + 1)));
        reverse_.push_back(std::make_unique<ByteChannel>(sim, *rngs_.back(),
                                                         hop_channel(config.hops[i]),
                                                         "r" + std::to_string(i)));
    }

    EndpointConfig endpoint;
    endpoint.w = config.w;
    endpoint.path_lifetime = path_lifetime(config);
    endpoint.ack_policy = config.ack_policy;
    endpoint.enable_nak = config.enable_nak;

    tx_ = std::make_unique<LinkSender>(sim, *forward_.front(), endpoint);
    rx_ = std::make_unique<LinkReceiver>(sim, *reverse_.back(), endpoint);

    // Forward chain: hop i delivers into a relay feeding hop i+1; the last
    // hop delivers to the receiver.
    for (std::size_t i = 0; i + 1 < k; ++i) {
        relays_.push_back(std::make_unique<FrameRelay>(sim, *forward_[i + 1],
                                                       config.relay_delay));
        FrameRelay* relay = relays_.back().get();
        forward_[i]->set_receiver(
            [relay](const ByteChannel::Frame& frame) { relay->on_frame(frame); });
    }
    forward_.back()->set_receiver(
        [this](const ByteChannel::Frame& frame) { rx_->on_frame(frame); });

    // Reverse chain: hop i+1's reverse channel relays into hop i's; hop 0
    // delivers to the sender.
    for (std::size_t i = k; i-- > 1;) {
        relays_.push_back(std::make_unique<FrameRelay>(sim, *reverse_[i - 1],
                                                       config.relay_delay));
        FrameRelay* relay = relays_.back().get();
        reverse_[i]->set_receiver(
            [relay](const ByteChannel::Frame& frame) { relay->on_frame(frame); });
    }
    reverse_.front()->set_receiver(
        [this](const ByteChannel::Frame& frame) { tx_->on_frame(frame); });
}

std::uint64_t EndToEndPath::total_frames() const {
    std::uint64_t total = 0;
    for (const auto& ch : forward_) total += ch->stats().sent;
    for (const auto& ch : reverse_) total += ch->stats().sent;
    return total;
}

// -------------------------------------------------------------- HopByHopPath

HopByHopPath::HopByHopPath(sim::Simulator& sim, PathConfig config) {
    BACP_ASSERT_MSG(!config.hops.empty(), "a path needs at least one hop");
    const std::size_t k = config.hops.size();
    hops_.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
        Hop& hop = hops_[i];
        hop.fwd_rng = std::make_unique<Rng>(mix_seed(config.seed, 100 + 2 * i));
        hop.rev_rng = std::make_unique<Rng>(mix_seed(config.seed, 101 + 2 * i));
        hop.forward = std::make_unique<ByteChannel>(sim, *hop.fwd_rng,
                                                    hop_channel(config.hops[i]),
                                                    "hf" + std::to_string(i));
        hop.reverse = std::make_unique<ByteChannel>(sim, *hop.rev_rng,
                                                    hop_channel(config.hops[i]),
                                                    "hr" + std::to_string(i));
        EndpointConfig endpoint;
        endpoint.w = config.w;
        endpoint.path_lifetime = config.hops[i].delay_hi;
        endpoint.ack_policy = config.ack_policy;
        endpoint.enable_nak = config.enable_nak;
        hop.tx = std::make_unique<LinkSender>(sim, *hop.forward, endpoint);
        hop.rx = std::make_unique<LinkReceiver>(sim, *hop.reverse, endpoint);
        hop.forward->set_receiver(
            [rx = hop.rx.get()](const ByteChannel::Frame& frame) { rx->on_frame(frame); });
        hop.reverse->set_receiver(
            [tx = hop.tx.get()](const ByteChannel::Frame& frame) { tx->on_frame(frame); });
    }
    // Intermediate nodes re-originate each delivered payload on the next
    // hop (store-and-forward with per-hop reliability); the final hop
    // delivers to the application.
    for (std::size_t i = 0; i + 1 < k; ++i) {
        LinkSender* next = hops_[i + 1].tx.get();
        hops_[i].rx->set_on_deliver([next](std::span<const std::uint8_t> payload) {
            next->send(std::vector<std::uint8_t>(payload.begin(), payload.end()));
        });
    }
    hops_.back().rx->set_on_deliver([this](std::span<const std::uint8_t> payload) {
        ++delivered_;
        if (on_deliver_) on_deliver_(payload);
    });
}

bool HopByHopPath::idle() const {
    if (delivered_ != accepted_) return false;
    for (const auto& hop : hops_) {
        if (!hop.tx->idle()) return false;
    }
    return true;
}

std::uint64_t HopByHopPath::total_frames() const {
    std::uint64_t total = 0;
    for (const auto& hop : hops_) total += hop.forward->stats().sent + hop.reverse->stats().sent;
    return total;
}

std::uint64_t HopByHopPath::total_retransmissions() const {
    std::uint64_t total = 0;
    for (const auto& hop : hops_) total += hop.tx->retransmissions();
    return total;
}

}  // namespace bacp::link
