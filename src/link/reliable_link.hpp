#pragma once

/// \file reliable_link.hpp
/// ReliableLink: the library's user-facing reliability layer.
///
/// A ReliableLink accepts arbitrary byte payloads and delivers them to the
/// far side *in order, exactly once*, over unreliable channels that may
/// lose, reorder, and corrupt frames.  Internally it runs the paper's
/// fully bounded protocol (SV): sequence numbers travel as residues mod
/// n = 2w (one varint byte for windows up to 64), block acknowledgments
/// cover whole runs, per-message conservative timers recover losses, and
/// the CRC-32C frame codec turns corruption into loss -- the only failure
/// mode the protocol's proof needs to handle.
///
/// Usage sketch (see examples/quickstart.cpp):
///
///   sim::Simulator sim;
///   link::ReliableLink link(sim, {.w = 16, .loss = 0.05});
///   link.set_on_deliver([](std::span<const std::uint8_t> p) { ... });
///   link.send({'h','i'});
///   sim.run();

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "ba/bounded_receiver.hpp"
#include "ba/bounded_sender.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "link/byte_channel.hpp"
#include "runtime/ack_policy.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace bacp::link {

class ReliableLink {
public:
    struct Config {
        Seq w = 16;                       // window size; wire domain is 2w
        double loss = 0.0;                // per-direction frame loss probability
        double corrupt_p = 0.0;           // per-frame bit-flip probability
        SimTime delay_lo = 4 * kMillisecond;
        SimTime delay_hi = 6 * kMillisecond;
        SimTime timeout = 0;              // 0 = conservative derivation
        runtime::AckPolicy ack_policy = runtime::AckPolicy::eager();
        std::uint64_t seed = 1;
        /// Fast-retransmit extension: NAK the message blocking delivery
        /// after nak_threshold out-of-order arrivals (see DESIGN.md).
        bool enable_nak = false;
        Seq nak_threshold = 3;
        /// NEGATIVE CONTROLS -- test-suite only.  Disabling these safety
        /// rules must reproduce the failures they exist to prevent
        /// (documented in DESIGN.md SS5); never set them in real use.
        bool unsafe_disable_horizon = false;   // drop the send-horizon rule
        bool unsafe_ungated_resend = false;    // drop the hole-gated resend rule
    };

    using DeliverFn = std::function<void(std::span<const std::uint8_t>)>;

    ReliableLink(sim::Simulator& sim, Config config);
    ReliableLink(const ReliableLink&) = delete;
    ReliableLink& operator=(const ReliableLink&) = delete;

    /// Registers the in-order delivery callback (call before sending).
    void set_on_deliver(DeliverFn fn) { on_deliver_ = std::move(fn); }

    /// Enqueues one payload for reliable, in-order transmission.
    void send(std::vector<std::uint8_t> payload);

    /// Payloads accepted but not yet handed to the protocol window.
    std::size_t queued() const { return queue_.size(); }
    /// Payloads handed to the protocol so far.
    Seq sent_count() const { return ghost_ns_; }
    /// Payloads delivered in order at the far side.
    Seq delivered_count() const { return delivered_; }
    /// Everything enqueued has been delivered and acknowledged.
    bool idle() const { return queue_.empty() && sender_.outstanding() == 0; }

    /// Frames rejected by the CRC / codec (treated as losses).
    std::uint64_t frames_rejected() const { return frames_rejected_; }
    std::uint64_t retransmissions() const { return retransmissions_; }
    std::uint64_t naks_sent() const { return naks_sent_; }
    std::uint64_t fast_retransmissions() const { return fast_retx_; }
    const ByteChannelStats& data_stats() const { return data_ch_.stats(); }
    const ByteChannelStats& ack_stats() const { return ack_ch_.stats(); }
    SimTime timeout_value() const { return timeout_; }

private:
    ByteChannel::Config channel_config();

    void pump();
    bool horizon_blocks();
    void note_horizon(Seq true_seq);
    void transmit(Seq true_seq, bool retx);
    void per_message_fire(Seq true_seq);
    void rescan_matured();
    void on_data_frame(const ByteChannel::Frame& frame);
    void on_ack_frame(const ByteChannel::Frame& frame);
    void on_nak(Seq residue);
    void maybe_send_nak();
    void flush_ack();
    void send_ack_frame(Seq lo, Seq hi);

    Config cfg_;
    sim::Simulator& sim_;
    Rng rng_data_;
    Rng rng_ack_;
    ba::BoundedSender sender_;
    ba::BoundedReceiver receiver_;
    ByteChannel data_ch_;
    ByteChannel ack_ch_;
    sim::Timer ack_flush_timer_;
    sim::Timer horizon_timer_;
    DeliverFn on_deliver_;
    SimTime timeout_ = 0;

    static constexpr Seq kNoCap = ~Seq{0};
    SimTime horizon_until_ = 0;  // send-horizon expiry (see note_horizon)
    Seq horizon_cap_ = kNoCap;

    // Sender side.
    std::deque<std::vector<std::uint8_t>> queue_;   // not yet in the window
    std::unordered_map<Seq, std::vector<std::uint8_t>> window_payloads_;  // true seq
    std::unordered_map<Seq, SimTime> last_tx_;      // true seq -> last tx time
    Seq ghost_na_ = 0;  // true na (the bounded core stores only residues)
    Seq ghost_ns_ = 0;  // true ns

    // Receiver side.
    std::unordered_map<Seq, std::vector<std::uint8_t>> reorder_buffer_;  // true seq
    Seq ghost_nr_ = 0;  // true nr
    Seq ghost_vr_ = 0;  // true vr
    Seq delivered_ = 0;

    std::uint64_t frames_rejected_ = 0;
    std::uint64_t retransmissions_ = 0;

    // NAK extension state.
    std::uint64_t naks_sent_ = 0;
    std::uint64_t fast_retx_ = 0;
    Seq ooo_since_advance_ = 0;
    Seq last_nak_field_ = ~Seq{0};
    SimTime last_nak_time_ = 0;
};

}  // namespace bacp::link
