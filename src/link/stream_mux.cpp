#include "link/stream_mux.hpp"

#include "common/assert.hpp"
#include "wire/codec.hpp"

namespace bacp::link {

namespace {
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
    std::uint64_t s = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
    return splitmix64(s);
}
}  // namespace

ByteChannel::Config StreamMux::data_config() const {
    ByteChannel::Config config;
    if (cfg_.loss > 0) config.loss = std::make_unique<channel::BernoulliLoss>(cfg_.loss);
    config.delay = std::make_unique<channel::UniformDelay>(cfg_.delay_lo, cfg_.delay_hi);
    config.corrupt_p = cfg_.corrupt_p;
    config.service_time = cfg_.service_time;
    config.queue_capacity = cfg_.queue_capacity;
    return config;
}

ByteChannel::Config StreamMux::ack_config() const {
    ByteChannel::Config config;
    if (cfg_.loss > 0) config.loss = std::make_unique<channel::BernoulliLoss>(cfg_.loss);
    config.delay = std::make_unique<channel::UniformDelay>(cfg_.delay_lo, cfg_.delay_hi);
    config.corrupt_p = cfg_.corrupt_p;
    return config;  // acks are small: no bottleneck modeled
}

StreamMux::StreamMux(sim::Simulator& sim, Config config)
    : cfg_(std::move(config)),
      rng_data_(mix_seed(cfg_.seed, 0xd1)),
      rng_ack_(mix_seed(cfg_.seed, 0xac)),
      data_ch_(sim, rng_data_, data_config(), "mux-data"),
      ack_ch_(sim, rng_ack_, ack_config(), "mux-ack") {
    BACP_ASSERT_MSG(cfg_.streams >= 1, "need at least one stream");
    EndpointConfig endpoint;
    endpoint.w = cfg_.w;
    // A frame can wait behind the shared bottleneck queue.
    endpoint.path_lifetime =
        cfg_.delay_hi + (cfg_.service_time > 0
                             ? cfg_.service_time * static_cast<SimTime>(cfg_.queue_capacity + 1)
                             : 0);
    endpoint.ack_policy = cfg_.ack_policy;
    endpoint.enable_nak = cfg_.enable_nak;
    for (Seq id = 0; id < cfg_.streams; ++id) {
        endpoint.stream = id;
        tx_.push_back(std::make_unique<LinkSender>(sim, data_ch_, endpoint));
        rx_.push_back(std::make_unique<LinkReceiver>(sim, ack_ch_, endpoint));
        rx_.back()->set_on_deliver([this, id](std::span<const std::uint8_t> payload) {
            if (on_deliver_) on_deliver_(id, payload);
        });
    }
    data_ch_.set_receiver([this](const ByteChannel::Frame& f) { on_data_frame(f); });
    ack_ch_.set_receiver([this](const ByteChannel::Frame& f) { on_ack_frame(f); });
}

void StreamMux::send(Seq stream, std::vector<std::uint8_t> payload) {
    BACP_ASSERT_MSG(stream < cfg_.streams, "stream id out of range");
    tx_[static_cast<std::size_t>(stream)]->send(std::move(payload));
}

Seq StreamMux::classify(const ByteChannel::Frame& frame) const {
    const auto decoded = wire::decode(std::span<const std::uint8_t>(frame.data(), frame.size()));
    if (!decoded.ok()) return kUntaggedStream;
    const Seq stream = wire::stream_of(decoded.frame());
    if (stream >= cfg_.streams) return kUntaggedStream;
    return stream;
}

void StreamMux::on_data_frame(const ByteChannel::Frame& frame) {
    const Seq stream = classify(frame);
    if (stream == kUntaggedStream) {
        ++misdirected_;
        return;  // corrupted frames count as loss, exactly like point-to-point
    }
    rx_[static_cast<std::size_t>(stream)]->on_frame(frame);
}

void StreamMux::on_ack_frame(const ByteChannel::Frame& frame) {
    const Seq stream = classify(frame);
    if (stream == kUntaggedStream) {
        ++misdirected_;
        return;
    }
    tx_[static_cast<std::size_t>(stream)]->on_frame(frame);
}

Seq StreamMux::delivered_count(Seq stream) const {
    BACP_ASSERT(stream < cfg_.streams);
    return rx_[static_cast<std::size_t>(stream)]->delivered_count();
}

bool StreamMux::idle() const {
    for (const auto& tx : tx_) {
        if (!tx->idle()) return false;
    }
    return true;
}

std::uint64_t StreamMux::retransmissions() const {
    std::uint64_t total = 0;
    for (const auto& tx : tx_) total += tx->retransmissions();
    return total;
}

}  // namespace bacp::link
