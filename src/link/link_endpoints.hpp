#pragma once

/// \file link_endpoints.hpp
/// Composable one-direction link endpoints.
///
/// LinkSender originates payload-bearing DATA frames and consumes
/// ACK/NAK frames; LinkReceiver consumes DATA frames and originates
/// ACK/NAK frames.  Unlike ReliableLink (which bundles both ends and the
/// channels for the common point-to-point case), the endpoints bind to
/// *externally owned* ByteChannels, so arbitrary topologies can be built:
/// multi-hop relay paths, hop-by-hop reliability chains, asymmetric
/// routes (see examples/multihop.cpp and bench_e14_multihop).
///
/// Both run the paper's fully bounded protocol (SV) with the realistic
/// disciplines of PROTOCOL.md SS6: conservative per-message timers,
/// hole-gated retransmission, SACK-style ack clipping, the send-horizon
/// rule, and optional NAK fast retransmit.

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "ba/bounded_receiver.hpp"
#include "ba/bounded_sender.hpp"
#include "common/types.hpp"
#include "link/byte_channel.hpp"
#include "runtime/ack_policy.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace bacp::link {

/// "No stream tag" sentinel (mirrors wire::kNoStream).
inline constexpr Seq kUntaggedStream = ~Seq{0};

/// Shared endpoint parameters.
struct EndpointConfig {
    Seq w = 16;
    /// When not kUntaggedStream, every emitted frame carries this stream
    /// id (kFlagStream); used by StreamMux to share one channel pair.
    Seq stream = kUntaggedStream;
    /// Upper bound on one-way frame transit time over the path between
    /// the endpoints (propagation + queueing + relays).  Drives the
    /// conservative timeout, the send-horizon rule, and NAK gating.
    SimTime path_lifetime = 6 * kMillisecond;
    SimTime timeout = 0;  // 0 = derive: 2*path_lifetime + ack delay + 1ms
    runtime::AckPolicy ack_policy = runtime::AckPolicy::eager();
    bool enable_nak = false;
    Seq nak_threshold = 3;
};

class LinkSender {
public:
    /// \p data_out carries DATA frames toward the receiver; incoming
    /// ACK/NAK frames must be fed to on_frame() by the owner.
    LinkSender(sim::Simulator& sim, ByteChannel& data_out, EndpointConfig config);
    LinkSender(const LinkSender&) = delete;
    LinkSender& operator=(const LinkSender&) = delete;

    /// Enqueues a payload for reliable transmission.
    void send(std::vector<std::uint8_t> payload);

    /// Feeds one frame arriving on the reverse path (ACK or NAK).
    void on_frame(const ByteChannel::Frame& frame);

    std::size_t queued() const { return queue_.size(); }
    Seq sent_count() const { return ghost_ns_; }
    bool idle() const { return queue_.empty() && sender_.outstanding() == 0; }
    std::uint64_t retransmissions() const { return retransmissions_; }
    std::uint64_t fast_retransmissions() const { return fast_retx_; }
    std::uint64_t frames_rejected() const { return frames_rejected_; }
    SimTime timeout_value() const { return timeout_; }

private:
    void pump();
    bool horizon_blocks();
    void note_horizon(Seq true_seq);
    void transmit(Seq true_seq, bool retx);
    void per_message_fire(Seq true_seq);
    void rescan_matured();
    void on_nak(Seq residue);

    EndpointConfig cfg_;
    sim::Simulator& sim_;
    ByteChannel& data_out_;
    ba::BoundedSender sender_;
    sim::Timer horizon_timer_;
    SimTime timeout_ = 0;

    std::deque<std::vector<std::uint8_t>> queue_;
    std::unordered_map<Seq, std::vector<std::uint8_t>> window_payloads_;
    std::unordered_map<Seq, SimTime> last_tx_;
    Seq ghost_na_ = 0;
    Seq ghost_ns_ = 0;
    static constexpr Seq kNoCap = ~Seq{0};
    SimTime horizon_until_ = 0;
    Seq horizon_cap_ = kNoCap;
    std::uint64_t retransmissions_ = 0;
    std::uint64_t fast_retx_ = 0;
    std::uint64_t frames_rejected_ = 0;
};

class LinkReceiver {
public:
    using DeliverFn = std::function<void(std::span<const std::uint8_t>)>;

    /// \p ack_out carries ACK/NAK frames back toward the sender; incoming
    /// DATA frames must be fed to on_frame() by the owner.
    LinkReceiver(sim::Simulator& sim, ByteChannel& ack_out, EndpointConfig config);
    LinkReceiver(const LinkReceiver&) = delete;
    LinkReceiver& operator=(const LinkReceiver&) = delete;

    void set_on_deliver(DeliverFn fn) { on_deliver_ = std::move(fn); }

    /// Feeds one frame arriving on the forward path (DATA).
    void on_frame(const ByteChannel::Frame& frame);

    Seq delivered_count() const { return delivered_; }
    std::uint64_t frames_rejected() const { return frames_rejected_; }
    std::uint64_t naks_sent() const { return naks_sent_; }

private:
    void flush_ack();
    void send_ack_frame(Seq lo, Seq hi);
    void maybe_send_nak();

    EndpointConfig cfg_;
    sim::Simulator& sim_;
    ByteChannel& ack_out_;
    ba::BoundedReceiver receiver_;
    sim::Timer ack_flush_timer_;
    DeliverFn on_deliver_;

    std::unordered_map<Seq, std::vector<std::uint8_t>> reorder_buffer_;
    Seq ghost_nr_ = 0;
    Seq ghost_vr_ = 0;
    Seq delivered_ = 0;
    std::uint64_t frames_rejected_ = 0;
    std::uint64_t naks_sent_ = 0;
    Seq ooo_since_advance_ = 0;
    Seq last_nak_field_ = ~Seq{0};
    SimTime last_nak_time_ = 0;
};

/// Store-and-forward frame relay: accepts frames from an upstream channel
/// and re-emits them downstream after a processing delay.  Relays are
/// oblivious to frame contents (they forward corrupted frames too -- CRC
/// is end-to-end).
class FrameRelay {
public:
    FrameRelay(sim::Simulator& sim, ByteChannel& downstream,
               SimTime processing_delay = 50 * kMicrosecond)
        : sim_(sim), downstream_(downstream), processing_delay_(processing_delay) {}

    void on_frame(const ByteChannel::Frame& frame) {
        ++forwarded_;
        // Init-capture: a plain copy-capture of the const ref would give
        // the closure a const member, making its move a throwing copy.
        sim_.schedule_after(processing_delay_, [this, frame = frame]() mutable {
            downstream_.send(std::move(frame));
        });
    }

    std::uint64_t forwarded() const { return forwarded_; }

private:
    sim::Simulator& sim_;
    ByteChannel& downstream_;
    SimTime processing_delay_;
    std::uint64_t forwarded_ = 0;
};

}  // namespace bacp::link
