#include "link/byte_channel.hpp"

#include "common/assert.hpp"
#include "common/types.hpp"

namespace bacp::link {

ByteChannel::ByteChannel(sim::Simulator& sim, Rng& rng, Config config, std::string name)
    : sim_(sim),
      rng_(rng),
      loss_(config.loss ? std::move(config.loss) : std::make_unique<channel::NoLoss>()),
      delay_(config.delay ? std::move(config.delay)
                          : std::make_unique<channel::FixedDelay>(kMillisecond)),
      corrupt_p_(config.corrupt_p),
      service_time_(config.service_time),
      service_per_byte_(config.service_per_byte),
      queue_capacity_(config.queue_capacity),
      name_(std::move(name)) {
    BACP_ASSERT_MSG(corrupt_p_ >= 0.0 && corrupt_p_ <= 1.0, "corrupt_p in [0,1]");
}

void ByteChannel::send(Frame frame) {
    BACP_ASSERT_MSG(receiver_ != nullptr, "byte channel has no receiver");
    ++stats_.sent;
    stats_.bytes_sent += frame.size();
    if (loss_->drop(rng_)) {
        ++stats_.dropped;
        return;
    }
    if (!frame.empty() && rng_.chance(corrupt_p_)) {
        // Flip one random bit; the codec's CRC must catch it downstream.
        const std::size_t bit = static_cast<std::size_t>(rng_.uniform(frame.size() * 8));
        frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        ++stats_.corrupted;
    }
    SimTime departure = sim_.now();
    if (service_time_ > 0 || service_per_byte_ > 0) {
        if (queued_ >= queue_capacity_) {
            ++stats_.dropped;  // tail drop
            return;
        }
        const SimTime this_service =
            service_time_ + service_per_byte_ * static_cast<SimTime>(frame.size());
        departure =
            (link_free_at_ > sim_.now() ? link_free_at_ : sim_.now()) + this_service;
        link_free_at_ = departure;
        ++queued_;
        sim_.schedule_at(departure, [this] {
            BACP_ASSERT(queued_ > 0);
            --queued_;
        });
    }
    const SimTime delivery = departure + delay_->sample(rng_);
    ++in_flight_;
    sim_.schedule_at(delivery, [this, frame = std::move(frame)] {
        BACP_ASSERT(in_flight_ > 0);
        --in_flight_;
        ++stats_.delivered;
        receiver_(frame);
    });
}

}  // namespace bacp::link
