#pragma once

/// \file net_link.hpp
/// The link layer over the net runtime: ReliableLink's byte-payload API
/// (send() arbitrary payloads, in-order exactly-once delivery callbacks)
/// driven by a net::NetEndpoint -- runtime::DuplexDriver over a real
/// Transport and TimerWheel -- instead of the DES simulator and its
/// ByteChannels.  Same bounded cores as link::ReliableLink (residues mod
/// 2w on the wire), same failure model (CRC turns corruption into loss),
/// but the event loop is poll()-driven and both directions share one
/// socket: a NetReliableLink is duplex, and with piggyback on its acks
/// ride the reverse DATA as wire type 4 frames.
///
/// Payload flow uses the endpoint's source/sink hooks.  Sends are
/// application-gated (EngineConfig::app_arrivals): send() stores the
/// bytes, then releases one message into the window, so the payload
/// source can always serve a retransmission of any outstanding seq.
///
/// NetStreamMux runs several NetReliableLinks over ONE shared transport,
/// each tagged with a wire stream id (kFlagStream), and demuxes inbound
/// frames centrally -- the server's shard demux pattern, scaled down:
/// member links never recv (the mux owns the arena); they only stage
/// sends, with batch=1 so every frame lands in the shared socket the
/// same call.  Per-stream sequencing confines a loss to the stream that
/// suffered it, exactly as the DES mux demonstrates in E15.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "ba/bounded_receiver.hpp"
#include "ba/bounded_sender.hpp"
#include "ba/engine_core.hpp"
#include "common/assert.hpp"
#include "common/types.hpp"
#include "net/net_engine.hpp"
#include "net/timer_wheel.hpp"
#include "net/transport.hpp"
#include "runtime/ack_policy.hpp"
#include "wire/codec.hpp"

namespace bacp::link {

/// The fully bounded protocol, as link::ReliableLink runs it.
using NetLinkCore = ba::EngineCore<ba::BoundedSender, ba::BoundedReceiver>;
using NetLinkEndpoint = net::NetEndpoint<NetLinkCore>;

/// One duplex reliable byte link over a real transport.  Wire a pair of
/// these over the two ends of a transport pair (InprocTransport for
/// deterministic tests, UdpTransport for deployment); each side sends up
/// to `count` payloads and expects `rx_count` from its peer.
class NetReliableLink {
public:
    struct Config {
        Seq w = 16;          // window; wire domain is 2w
        Seq count = 0;       // payloads this side will send
        Seq rx_count = 0;    // payloads expected from the peer
        /// Defer acks so reverse DATA carries them (both sides of a link
        /// must agree, as with w).  On by default: a link layer is the
        /// duplex deployment the piggyback frame exists for.
        bool piggyback = true;
        SimTime piggyback_delay = 2 * kMillisecond;
        SimTime link_lifetime = 50 * kMillisecond;
        SimTime timeout = 0;  // 0 = conservative derivation
        runtime::AckPolicy ack_policy = runtime::AckPolicy::eager();
        std::uint64_t seed = 1;
        std::size_t max_payload = 1024;  // largest payload send() accepts
        Seq stream = wire::kNoStream;    // set by NetStreamMux
        std::size_t batch = 0;           // 0 = window-sized; mux uses 1
    };

    using DeliverFn = std::function<void(std::span<const std::uint8_t>)>;

    /// \p wheel and \p transport must outlive the link; poll() fires the
    /// wheel, so a link (or its owning mux) is single-threaded.
    NetReliableLink(const Config& cfg, net::TimerWheel& wheel, net::Transport& transport)
        : cfg_(cfg), endpoint_(net_config(cfg), {}, wheel, transport) {
        sent_.reserve(cfg.count);
        endpoint_.set_payload_source([this](Seq seq, std::vector<std::uint8_t>& out) {
            BACP_ASSERT_MSG(seq < sent_.size(), "payload requested before queued");
            out.assign(sent_[seq].begin(), sent_[seq].end());
        });
        endpoint_.set_deliver_sink([this](Seq, std::span<const std::uint8_t> payload) {
            ++delivered_;
            if (on_deliver_) on_deliver_(payload);
        });
    }

    NetReliableLink(const NetReliableLink&) = delete;
    NetReliableLink& operator=(const NetReliableLink&) = delete;

    /// Registers the in-order delivery callback (call before start()).
    void set_on_deliver(DeliverFn fn) { on_deliver_ = std::move(fn); }

    /// Call once before the poll loop.
    void start() { endpoint_.start(); }

    /// Queues one payload for reliable, in-order transmission and pumps
    /// the window (frames may egress from inside this call).
    void send(std::vector<std::uint8_t> payload) {
        BACP_ASSERT_MSG(sent_.size() < cfg_.count, "more sends than Config.count");
        BACP_ASSERT_MSG(payload.size() <= cfg_.max_payload, "payload exceeds max_payload");
        sent_.push_back(std::move(payload));
        endpoint_.release(1);
    }

    /// One event-loop iteration (timers, ingress, egress flush).
    std::size_t poll() { return endpoint_.poll(); }

    /// Every queued payload sent and acknowledged, every expected
    /// arrival delivered.
    bool done() const { return endpoint_.done(); }

    Seq sent_count() const { return static_cast<Seq>(sent_.size()); }
    Seq delivered_count() const { return delivered_; }

    NetLinkEndpoint& endpoint() { return endpoint_; }
    const NetLinkEndpoint& endpoint() const { return endpoint_; }

private:
    static net::NetConfig net_config(const Config& cfg) {
        net::NetConfig net;
        net.w = cfg.w;
        net.count = cfg.count;
        net.rx_count = cfg.rx_count;
        net.piggyback = cfg.piggyback;
        net.piggyback_delay = cfg.piggyback_delay;
        net.link_lifetime = cfg.link_lifetime;
        net.timeout = cfg.timeout;
        net.ack_policy = cfg.ack_policy;
        net.seed = cfg.seed;
        net.payload_size = cfg.max_payload;
        net.stream = cfg.stream;
        net.batch = cfg.batch;
        net.app_arrivals = true;  // send() gates the window
        return net;
    }

    Config cfg_;
    NetLinkEndpoint endpoint_;
    std::vector<std::vector<std::uint8_t>> sent_;  // random access for retx
    Seq delivered_ = 0;
    DeliverFn on_deliver_;
};

/// Several independent reliable streams over one shared transport: the
/// net-runtime counterpart of link::StreamMux.  One NetReliableLink per
/// stream, every frame stream-tagged, one central recv loop demuxing by
/// id.  Each stream is itself duplex (count out, rx_count in, acks
/// piggybacked), so one mux object per socket end is the whole stack.
class NetStreamMux {
public:
    struct Config {
        Seq streams = 4;
        Seq w = 8;           // per-stream window
        Seq count = 0;       // per-stream payloads this side sends
        Seq rx_count = 0;    // per-stream payloads expected
        bool piggyback = true;
        SimTime piggyback_delay = 2 * kMillisecond;
        SimTime link_lifetime = 50 * kMillisecond;
        SimTime timeout = 0;
        runtime::AckPolicy ack_policy = runtime::AckPolicy::eager();
        std::uint64_t seed = 1;
        std::size_t max_payload = 1024;
        std::size_t arena = 32;  // central RecvBatch capacity
    };

    using DeliverFn = std::function<void(Seq stream, std::span<const std::uint8_t>)>;

    NetStreamMux(const Config& cfg, net::TimerWheel& wheel, net::Transport& transport)
        : wheel_(wheel),
          transport_(&transport),
          rx_(cfg.arena, cfg.max_payload + 128) {
        links_.reserve(cfg.streams);
        for (Seq s = 0; s < cfg.streams; ++s) {
            NetReliableLink::Config link_cfg;
            link_cfg.w = cfg.w;
            link_cfg.count = cfg.count;
            link_cfg.rx_count = cfg.rx_count;
            link_cfg.piggyback = cfg.piggyback;
            link_cfg.piggyback_delay = cfg.piggyback_delay;
            link_cfg.link_lifetime = cfg.link_lifetime;
            link_cfg.timeout = cfg.timeout;
            link_cfg.ack_policy = cfg.ack_policy;
            link_cfg.seed = cfg.seed + s;
            link_cfg.max_payload = cfg.max_payload;
            link_cfg.stream = s;
            // The member links never poll their own transport -- the mux
            // owns ingress -- so their egress must reach the socket the
            // moment it is staged.
            link_cfg.batch = 1;
            links_.push_back(std::make_unique<NetReliableLink>(link_cfg, wheel, transport));
        }
    }

    NetStreamMux(const NetStreamMux&) = delete;
    NetStreamMux& operator=(const NetStreamMux&) = delete;

    void set_on_deliver(DeliverFn fn) {
        on_deliver_ = std::move(fn);
        for (Seq s = 0; s < streams(); ++s) {
            links_[s]->set_on_deliver([this, s](std::span<const std::uint8_t> payload) {
                if (on_deliver_) on_deliver_(s, payload);
            });
        }
    }

    void start() {
        for (auto& link : links_) link->start();
    }

    /// Enqueues a payload on the given stream (0-based).
    void send(Seq stream, std::vector<std::uint8_t> payload) {
        BACP_ASSERT_MSG(stream < streams(), "stream out of range");
        links_[stream]->send(std::move(payload));
    }

    /// One event-loop iteration for the whole mux: fire the shared
    /// wheel (all streams' timers), then drain the shared socket and
    /// route each frame to its stream's endpoint.  Member links flush
    /// their own egress at stage time (batch=1).
    std::size_t poll() {
        std::size_t work = wheel_.fire_due();
        transport_->flush();
        for (;;) {
            const std::size_t n = transport_->recv_batch(rx_);
            for (std::size_t i = 0; i < n; ++i) route(rx_[i]);
            work += n;
            if (n < rx_.capacity()) break;
        }
        return work;
    }

    bool done() const {
        for (const auto& link : links_) {
            if (!link->done()) return false;
        }
        return true;
    }

    Seq streams() const { return static_cast<Seq>(links_.size()); }
    Seq delivered_count(Seq stream) const { return links_[stream]->delivered_count(); }
    std::uint64_t dropped_frames() const { return dropped_; }

    NetReliableLink& link(Seq stream) { return *links_[stream]; }

private:
    void route(std::span<const std::uint8_t> bytes) {
        const wire::ViewResult result = wire::decode_view(bytes);
        if (!result.ok()) {
            ++dropped_;  // corruption = loss, as everywhere in the stack
            return;
        }
        const wire::FrameView& frame = result.frame();
        if ((frame.flags & wire::kFlagStream) == 0 || frame.stream >= streams()) {
            ++dropped_;  // untagged or unknown stream: nowhere to route
            return;
        }
        links_[frame.stream]->endpoint().handle_frame(frame);
    }

    net::TimerWheel& wheel_;
    net::Transport* transport_;
    net::RecvBatch rx_;
    std::vector<std::unique_ptr<NetReliableLink>> links_;
    DeliverFn on_deliver_;
    std::uint64_t dropped_ = 0;
};

}  // namespace bacp::link
