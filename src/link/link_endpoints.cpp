#include "link/link_endpoints.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "protocol/seqnum.hpp"
#include "runtime/ack_clip.hpp"
#include "wire/codec.hpp"

namespace bacp::link {

// --------------------------------------------------------------- LinkSender

LinkSender::LinkSender(sim::Simulator& sim, ByteChannel& data_out, EndpointConfig config)
    : cfg_(config),
      sim_(sim),
      data_out_(data_out),
      sender_(cfg_.w),
      horizon_timer_(sim, [this] { pump(); }) {
    timeout_ = cfg_.timeout > 0
                   ? cfg_.timeout
                   : 2 * cfg_.path_lifetime + cfg_.ack_policy.max_ack_delay() + kMillisecond;
}

void LinkSender::send(std::vector<std::uint8_t> payload) {
    queue_.push_back(std::move(payload));
    pump();
}

bool LinkSender::horizon_blocks() {
    if (horizon_until_ <= sim_.now()) {
        horizon_cap_ = kNoCap;
        return false;
    }
    return ghost_ns_ >= horizon_cap_;
}

void LinkSender::note_horizon(Seq true_seq) {
    const auto it = last_tx_.find(true_seq);
    if (it == last_tx_.end()) return;
    const SimTime copy_gone = it->second + cfg_.path_lifetime;
    if (copy_gone <= sim_.now()) return;
    horizon_until_ = std::max(horizon_until_, copy_gone);
    horizon_cap_ = std::min(horizon_cap_, true_seq + cfg_.w);
}

void LinkSender::pump() {
    while (!queue_.empty() && sender_.can_send_new()) {
        if (horizon_blocks()) {
            if (!horizon_timer_.armed()) horizon_timer_.restart(horizon_until_ - sim_.now());
            return;
        }
        sender_.send_new();  // residue == ghost_ns_ mod 2w by construction
        const Seq true_seq = ghost_ns_++;
        window_payloads_.emplace(true_seq, std::move(queue_.front()));
        queue_.pop_front();
        transmit(true_seq, /*retx=*/false);
    }
}

void LinkSender::transmit(Seq true_seq, bool retx) {
    if (retx) ++retransmissions_;
    const auto payload = window_payloads_.find(true_seq);
    BACP_ASSERT_MSG(payload != window_payloads_.end(), "transmit without stored payload");
    const Seq residue = true_seq % sender_.domain();
    data_out_.send(wire::encode_data(residue,
                                     std::span<const std::uint8_t>(payload->second.data(),
                                                                   payload->second.size()),
                                     wire::kFlagBoundedSeq, cfg_.stream));
    last_tx_[true_seq] = sim_.now();
    sim_.schedule_after(timeout_, [this, true_seq] { per_message_fire(true_seq); });
}

void LinkSender::per_message_fire(Seq true_seq) {
    if (true_seq < ghost_na_) {
        last_tx_.erase(true_seq);
        return;
    }
    const auto it = last_tx_.find(true_seq);
    if (it == last_tx_.end()) return;
    if (sim_.now() - it->second < timeout_) return;
    const Seq residue = true_seq % sender_.domain();
    if (!sender_.can_resend(residue)) return;
    if (true_seq != ghost_na_ && !sender_.acked_beyond(residue)) return;  // hole gate
    transmit(true_seq, /*retx=*/true);
}

void LinkSender::rescan_matured() {
    for (const Seq residue : sender_.resend_candidates()) {
        const Seq true_seq =
            ghost_na_ + proto::mod_offset(sender_.na_mod(), residue, sender_.domain());
        const auto it = last_tx_.find(true_seq);
        if (it == last_tx_.end() || sim_.now() - it->second < timeout_) continue;
        if (true_seq != ghost_na_ && !sender_.acked_beyond(residue)) continue;
        transmit(true_seq, /*retx=*/true);
    }
}

void LinkSender::on_nak(Seq residue) {
    if (residue >= sender_.domain()) return;
    const Seq off = proto::mod_offset(sender_.na_mod(), residue, sender_.domain());
    if (off >= sender_.outstanding()) return;  // stale
    const Seq true_seq = ghost_na_ + off;
    if (!sender_.can_resend(residue)) return;
    const auto it = last_tx_.find(true_seq);
    if (it == last_tx_.end()) return;
    if (sim_.now() - it->second < cfg_.path_lifetime) return;  // previous copy may live
    ++fast_retx_;
    transmit(true_seq, /*retx=*/true);
}

void LinkSender::on_frame(const ByteChannel::Frame& frame) {
    const auto decoded = wire::decode(std::span<const std::uint8_t>(frame.data(), frame.size()));
    if (!decoded.ok()) {
        ++frames_rejected_;
        return;
    }
    if (const auto* nak = std::get_if<wire::NakFrame>(&decoded.frame())) {
        on_nak(nak->seq);
        return;
    }
    const auto* ack = std::get_if<wire::AckFrame>(&decoded.frame());
    if (ack == nullptr || ack->lo >= sender_.domain() || ack->hi >= sender_.domain()) {
        ++frames_rejected_;
        return;
    }
    for (const auto& run : runtime::clip_ack_bounded(sender_, proto::Ack{ack->lo, ack->hi})) {
        const Seq before = sender_.na_mod();
        const Seq lo_true = ghost_na_ + proto::mod_offset(before, run.lo, sender_.domain());
        const Seq hi_true = ghost_na_ + proto::mod_offset(before, run.hi, sender_.domain());
        for (Seq t = lo_true; t <= hi_true; ++t) note_horizon(t);
        sender_.on_ack(run);
        const Seq advanced = proto::mod_offset(before, sender_.na_mod(), sender_.domain());
        for (Seq i = 0; i < advanced; ++i) {
            window_payloads_.erase(ghost_na_ + i);
            last_tx_.erase(ghost_na_ + i);
        }
        ghost_na_ += advanced;
    }
    pump();
    rescan_matured();
}

// ------------------------------------------------------------- LinkReceiver

LinkReceiver::LinkReceiver(sim::Simulator& sim, ByteChannel& ack_out, EndpointConfig config)
    : cfg_(config),
      sim_(sim),
      ack_out_(ack_out),
      receiver_(cfg_.w),
      ack_flush_timer_(sim, [this] { flush_ack(); }) {}

void LinkReceiver::on_frame(const ByteChannel::Frame& frame) {
    const auto decoded = wire::decode(std::span<const std::uint8_t>(frame.data(), frame.size()));
    if (!decoded.ok()) {
        ++frames_rejected_;
        return;
    }
    const auto* data = std::get_if<wire::DataFrame>(&decoded.frame());
    if (data == nullptr) {
        ++frames_rejected_;
        return;
    }
    const Seq n = receiver_.domain();
    const Seq w = receiver_.window();
    const Seq residue = data->seq;
    if (residue >= n) {
        ++frames_rejected_;
        return;
    }
    const Seq base = proto::mod_sub(receiver_.nr_mod(), w, n);
    const Seq offset = proto::mod_offset(base, residue, n);
    const auto dup = receiver_.on_data(proto::Data{residue});
    if (dup) {
        send_ack_frame(dup->lo, dup->hi);
        return;
    }
    const Seq true_seq = ghost_nr_ + (offset - w);
    if (true_seq >= ghost_vr_) {
        reorder_buffer_[true_seq] = data->payload;
    }
    bool advanced = false;
    while (receiver_.can_advance()) {
        advanced = true;
        receiver_.advance();
        const Seq seq = ghost_vr_++;
        const auto buffered = reorder_buffer_.find(seq);
        BACP_ASSERT_MSG(buffered != reorder_buffer_.end(), "delivering unbuffered payload");
        ++delivered_;
        if (on_deliver_) {
            on_deliver_(std::span<const std::uint8_t>(buffered->second.data(),
                                                      buffered->second.size()));
        }
        reorder_buffer_.erase(buffered);
    }
    if (advanced) {
        ooo_since_advance_ = 0;
    } else {
        ++ooo_since_advance_;
        maybe_send_nak();
    }
    const Seq pending = receiver_.pending();
    if (pending >= cfg_.ack_policy.threshold) {
        flush_ack();
    } else if (pending > 0 && !ack_flush_timer_.armed()) {
        ack_flush_timer_.restart(cfg_.ack_policy.flush_delay);
    }
}

void LinkReceiver::maybe_send_nak() {
    if (!cfg_.enable_nak || ooo_since_advance_ < cfg_.nak_threshold) return;
    const Seq missing = receiver_.vr_mod();
    if (last_nak_field_ == missing && sim_.now() - last_nak_time_ < 2 * cfg_.path_lifetime) {
        return;
    }
    last_nak_field_ = missing;
    last_nak_time_ = sim_.now();
    ++naks_sent_;
    ack_out_.send(wire::encode_nak(missing, wire::kFlagBoundedSeq, cfg_.stream));
}

void LinkReceiver::flush_ack() {
    ack_flush_timer_.cancel();
    const Seq pending = receiver_.pending();
    if (pending == 0) return;
    const proto::Ack ack = receiver_.make_ack();
    ghost_nr_ += pending;
    send_ack_frame(ack.lo, ack.hi);
}

void LinkReceiver::send_ack_frame(Seq lo, Seq hi) {
    if (lo <= hi) {
        ack_out_.send(wire::encode_ack(lo, hi, wire::kFlagBoundedSeq, cfg_.stream));
        return;
    }
    // Wrapped residue range: split at the domain boundary.
    const Seq n = receiver_.domain();
    ack_out_.send(wire::encode_ack(lo, n - 1, wire::kFlagBoundedSeq, cfg_.stream));
    ack_out_.send(wire::encode_ack(0, hi, wire::kFlagBoundedSeq, cfg_.stream));
}

}  // namespace bacp::link
