#pragma once

/// \file event_queue.hpp
/// Deterministic pending-event set for the discrete-event simulator.
///
/// Events at equal timestamps execute in insertion order (FIFO tiebreak by
/// a monotone sequence number), which makes every simulation run exactly
/// reproducible.  Cancellation is O(1) lazy: cancelled ids are skipped at
/// pop time.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace bacp::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
public:
    using Handler = std::function<void()>;

    /// Enqueues \p fn at absolute time \p t; returns a cancellation handle.
    EventId push(SimTime t, Handler fn);

    /// Cancels a pending event; cancelling an already-fired or invalid id
    /// is a harmless no-op.  Returns true when a pending event was removed.
    bool cancel(EventId id);

    /// True when no live (non-cancelled) events remain.
    bool empty() const { return pending_.empty(); }

    std::size_t size() const { return pending_.size(); }

    /// Time of the earliest live event.  Precondition: !empty().
    SimTime next_time() const;

    /// Removes and returns the earliest live event.  Precondition: !empty().
    struct Fired {
        SimTime time;
        Handler handler;
    };
    Fired pop();

private:
    struct Entry {
        SimTime time;
        EventId id;
        Handler handler;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const {
            if (a.time != b.time) return a.time > b.time;
            return a.id > b.id;  // FIFO within a timestamp
        }
    };

    /// Drops cancelled entries from the heap top.
    void skip_cancelled() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<EventId> pending_;  // live ids (pushed, not fired/cancelled)
    EventId next_id_ = 1;
};

}  // namespace bacp::sim
