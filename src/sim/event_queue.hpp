#pragma once

/// \file event_queue.hpp
/// Deterministic pending-event set for the discrete-event simulator.
///
/// A thin facade over common::SlabTimerHeap: an indexed 4-ary min-heap
/// over pooled event records with generation-counter cancellation.  Two
/// properties matter to callers:
///
///   * Determinism -- events at equal timestamps execute in insertion
///     order (FIFO tiebreak by a monotone sequence number), so every
///     simulation run is exactly reproducible.
///   * No steady-state allocation -- handlers are InplaceFunctions in a
///     slab recycled through a freelist, and cancellation is eager
///     O(log n) with no side table, so after warm-up the push/cancel/pop
///     cycle never touches the heap allocator.

#include <cstdint>

#include "common/slab_heap.hpp"
#include "common/timer_service.hpp"
#include "common/types.hpp"

namespace bacp::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
public:
    using Handler = TimerHandler;

    /// Enqueues \p fn at absolute time \p t; returns a cancellation handle.
    EventId push(SimTime t, Handler fn) { return heap_.push(t, std::move(fn)); }

    /// Eagerly removes a pending event; cancelling an already-fired or
    /// invalid id is a harmless no-op.  Returns true when a pending event
    /// was removed.
    bool cancel(EventId id) { return heap_.cancel(id); }

    /// True when no live (non-cancelled) events remain.
    bool empty() const { return heap_.empty(); }

    std::size_t size() const { return heap_.size(); }

    /// Time of the earliest live event.  Precondition: !empty().
    SimTime next_time() const { return heap_.top_time(); }

    /// Removes and returns the earliest live event.  Precondition: !empty().
    using Fired = SlabTimerHeap<Handler>::Fired;
    Fired pop() { return heap_.pop(); }

    /// Pre-sizes the slab for \p n concurrent events.
    void reserve(std::size_t n) { heap_.reserve(n); }

private:
    SlabTimerHeap<Handler> heap_;
};

}  // namespace bacp::sim
