#include "sim/metrics.hpp"

#include <sstream>

namespace bacp::sim {

double Metrics::throughput_msgs_per_sec() const {
    const SimTime dt = elapsed();
    if (dt <= 0) return 0.0;
    return static_cast<double>(delivered) / to_seconds(dt);
}

double Metrics::acks_per_delivered() const {
    if (delivered == 0) return 0.0;
    return static_cast<double>(acks_sent + dup_acks) / static_cast<double>(delivered);
}

double Metrics::retx_fraction() const {
    const std::uint64_t total = data_new + data_retx;
    if (total == 0) return 0.0;
    return static_cast<double>(data_retx) / static_cast<double>(total);
}

std::string Metrics::summary() const {
    std::ostringstream os;
    os << "delivered=" << delivered << " in " << to_seconds(elapsed()) << "s"
       << " thr=" << throughput_msgs_per_sec() << "msg/s"
       << " tx=" << data_new << "+" << data_retx << "retx"
       << " acks=" << acks_sent << "+" << dup_acks << "dup"
       << " drops=" << sr_dropped << "/" << rs_dropped;
    if (decode_errors > 0) {
        os << " decode_errs=" << decode_errors << "(" << crc_errors << "crc)";
    }
    os << " lat{" << latency.summary() << "}";
    return os.str();
}

}  // namespace bacp::sim
