#include "sim/event_queue.hpp"

#include "common/assert.hpp"

namespace bacp::sim {

EventId EventQueue::push(SimTime t, Handler fn) {
    const EventId id = next_id_++;
    heap_.push(Entry{t, id, std::move(fn)});
    pending_.insert(id);
    return id;
}

bool EventQueue::cancel(EventId id) {
    if (id == kInvalidEvent) return false;
    return pending_.erase(id) > 0;
}

void EventQueue::skip_cancelled() const {
    // pending_ is the source of truth; heap entries whose id is no longer
    // pending were cancelled and are discarded here.
    while (!heap_.empty() && pending_.find(heap_.top().id) == pending_.end()) {
        heap_.pop();
    }
}

SimTime EventQueue::next_time() const {
    skip_cancelled();
    BACP_ASSERT_MSG(!heap_.empty(), "next_time() on empty event queue");
    return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
    skip_cancelled();
    BACP_ASSERT_MSG(!heap_.empty(), "pop() on empty event queue");
    // priority_queue::top() is const; copying the small closure out is the
    // portable way to extract it.
    Entry entry = heap_.top();
    heap_.pop();
    pending_.erase(entry.id);
    return Fired{entry.time, std::move(entry.handler)};
}

}  // namespace bacp::sim
