#pragma once

/// \file sim_channel.hpp
/// Discrete-event unidirectional channel.
///
/// Each sent message is either dropped (loss model) or delivered to the
/// registered receiver after a sampled transit delay.  Random per-message
/// delays make delivery order differ from send order, realizing the
/// paper's unordered-set channel semantics; an optional FIFO mode forces
/// in-order delivery for baseline comparisons.
///
/// The delay model's max_delay() is the channel's message lifetime L.  A
/// message is *never* in transit longer than L, which is the property the
/// paper's realistic timeout implementation relies on ("a mechanism for
/// aging messages in transit, i.e., ensuring that they are eventually
/// discarded if not received").

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "channel/delay_model.hpp"
#include "channel/loss_model.hpp"
#include "channel/transit_view.hpp"
#include "common/assert.hpp"
#include "common/inplace_function.hpp"
#include "common/rng.hpp"
#include "protocol/message.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace bacp::sim {

struct ChannelStats {
    std::uint64_t sent = 0;
    std::uint64_t dropped = 0;
    std::uint64_t delivered = 0;
};

class SimChannel {
public:
    /// Delivery callback.  An InplaceFunction rather than std::function:
    /// the callback runs once per delivered message, and the inline
    /// storage keeps dispatch to a single indirect call with no
    /// allocation when the channel is wired up.
    using Receiver = InplaceFunction<void(const proto::Message&), 32>;

    struct Config {
        std::unique_ptr<channel::LossModel> loss;   // nullptr -> NoLoss
        std::unique_ptr<channel::DelayModel> delay; // nullptr -> FixedDelay(1ms)
        bool fifo = false;                          // force in-order delivery
        /// Keep the multiset of in-flight messages so snapshot() can feed
        /// the invariant checker (test/verification runs only).
        bool track_contents = false;
        /// Bottleneck-link model: when service_time > 0, each message
        /// occupies the link for service_time (serialization); messages
        /// found with more than queue_capacity predecessors waiting are
        /// tail-dropped.  Propagation delay (the delay model) adds on top.
        /// This makes window size a real congestion variable (E12).
        SimTime service_time = 0;
        std::size_t queue_capacity = 64;
    };

    /// \p name labels trace entries (e.g. "C_SR").  \p rng must outlive
    /// the channel.
    SimChannel(Simulator& sim, Rng& rng, Config config, std::string name = "C");

    /// Registers the delivery callback (must be set before first send).
    void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

    /// Optional trace sink.
    void set_trace(TraceRecorder* trace) { trace_ = trace; }

    /// Accepts a message for transit.
    void send(const proto::Message& msg);

    /// Messages currently in transit (sent, neither dropped nor delivered).
    std::size_t in_flight() const { return in_flight_; }

    /// Upper bound on any message's time in transit (lifetime L).
    SimTime max_lifetime() const { return delay_->max_delay(); }

    const ChannelStats& stats() const { return stats_; }
    const std::string& name() const { return name_; }

    /// Span-backed view of the current in-flight multiset (unordered;
    /// valid until the next send or delivery).
    /// Precondition: constructed with track_contents = true.
    channel::TransitView snapshot() const;

    // ---- chaos hooks (src/chaos; tracked channels only) --------------------

    /// Duplication storm: re-sends copies of randomly chosen in-flight
    /// messages through the normal loss/delay pipeline, breaking the
    /// one-copy property (assertion 8) outright.  Returns the number of
    /// copies injected (each still subject to the loss model).
    std::size_t chaos_duplicate_in_flight(Rng& rng, std::size_t copies);

    /// Non-FIFO reorder burst: exchanges the payloads of random
    /// in-flight pairs.  Delivery events capture only slot indices, so
    /// swapping the messages swaps their delivery times -- an exact
    /// reorder that works even in fifo mode, below the FIFO clamp.
    /// Returns the number of pairs swapped.
    std::size_t chaos_swap_in_flight(Rng& rng, std::size_t swaps);

    /// In-flight corruption: applies \p mutate to one random in-transit
    /// message, in place -- the DES analogue of flipping bytes below the
    /// CRC (the channel carries structured messages, so "below the
    /// checksum" means a mutated-but-well-formed message).  The chaos
    /// layer supplies protocol-aware mutators; the channel stays
    /// generic.  Returns false when nothing is in flight.
    template <typename F>
    bool chaos_mutate_in_flight(Rng& rng, F&& mutate) {
        BACP_ASSERT_MSG(track_contents_, "chaos mutation requires track_contents");
        if (contents_.empty()) return false;
        const auto i = static_cast<std::size_t>(rng.uniform(contents_.size()));
        mutate(contents_[i]);
        slots_[contents_slot_[i]].msg = contents_[i];
        return true;
    }

private:
    /// In-flight messages live in a slot pool: the delivery event captures
    /// only {this, slot}, so the event queue stores and relocates a
    /// pointer-sized closure instead of a full proto::Message, and slots
    /// recycle through a freelist with no steady-state allocation.
    /// `link` doubles as the freelist next pointer (free slot) and the
    /// contents_ index (live slot, tracked runs only).
    struct Slot {
        proto::Message msg;
        std::uint32_t link = 0;
    };
    static constexpr std::uint32_t kNoSlot = 0xffffffff;

    std::uint32_t alloc_slot(const proto::Message& msg);
    void release_slot(std::uint32_t slot);
    void deliver_slot(std::uint32_t slot);

    Simulator& sim_;
    Rng& rng_;
    std::unique_ptr<channel::LossModel> loss_;
    std::unique_ptr<channel::DelayModel> delay_;
    bool lossless_;  // caches loss_->never_drops(): skip the virtual call
    bool fifo_;
    std::string name_;
    Receiver receiver_;
    TraceRecorder* trace_ = nullptr;
    ChannelStats stats_;
    std::size_t in_flight_ = 0;
    SimTime last_delivery_ = 0;  // FIFO mode: previous scheduled delivery
    std::vector<Slot> slots_;    // in-flight pool
    std::uint32_t free_head_ = kNoSlot;
    bool track_contents_ = false;
    std::vector<proto::Message> contents_;     // in-flight multiset when tracked
    std::vector<std::uint32_t> contents_slot_; // slot owning contents_[i]
    SimTime service_time_ = 0;                 // bottleneck serialization time
    std::size_t queue_capacity_ = 64;
    SimTime link_free_at_ = 0;                 // bottleneck: next departure slot
};

}  // namespace bacp::sim
