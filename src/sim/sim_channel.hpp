#pragma once

/// \file sim_channel.hpp
/// Discrete-event unidirectional channel.
///
/// Each sent message is either dropped (loss model) or delivered to the
/// registered receiver after a sampled transit delay.  Random per-message
/// delays make delivery order differ from send order, realizing the
/// paper's unordered-set channel semantics; an optional FIFO mode forces
/// in-order delivery for baseline comparisons.
///
/// The delay model's max_delay() is the channel's message lifetime L.  A
/// message is *never* in transit longer than L, which is the property the
/// paper's realistic timeout implementation relies on ("a mechanism for
/// aging messages in transit, i.e., ensuring that they are eventually
/// discarded if not received").

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "channel/delay_model.hpp"
#include "channel/loss_model.hpp"
#include "channel/set_channel.hpp"
#include "common/rng.hpp"
#include "protocol/message.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace bacp::sim {

struct ChannelStats {
    std::uint64_t sent = 0;
    std::uint64_t dropped = 0;
    std::uint64_t delivered = 0;
};

class SimChannel {
public:
    using Receiver = std::function<void(const proto::Message&)>;

    struct Config {
        std::unique_ptr<channel::LossModel> loss;   // nullptr -> NoLoss
        std::unique_ptr<channel::DelayModel> delay; // nullptr -> FixedDelay(1ms)
        bool fifo = false;                          // force in-order delivery
        /// Keep the multiset of in-flight messages so snapshot() can feed
        /// the invariant checker (test/verification runs only).
        bool track_contents = false;
        /// Bottleneck-link model: when service_time > 0, each message
        /// occupies the link for service_time (serialization); messages
        /// found with more than queue_capacity predecessors waiting are
        /// tail-dropped.  Propagation delay (the delay model) adds on top.
        /// This makes window size a real congestion variable (E12).
        SimTime service_time = 0;
        std::size_t queue_capacity = 64;
    };

    /// \p name labels trace entries (e.g. "C_SR").  \p rng must outlive
    /// the channel.
    SimChannel(Simulator& sim, Rng& rng, Config config, std::string name = "C");

    /// Registers the delivery callback (must be set before first send).
    void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

    /// Optional trace sink.
    void set_trace(TraceRecorder* trace) { trace_ = trace; }

    /// Accepts a message for transit.
    void send(const proto::Message& msg);

    /// Messages currently in transit (sent, neither dropped nor delivered).
    std::size_t in_flight() const { return in_flight_; }

    /// Upper bound on any message's time in transit (lifetime L).
    SimTime max_lifetime() const { return delay_->max_delay(); }

    const ChannelStats& stats() const { return stats_; }
    const std::string& name() const { return name_; }

    /// Abstract-channel view of the current in-flight multiset.
    /// Precondition: constructed with track_contents = true.
    channel::SetChannel snapshot() const;

private:
    Simulator& sim_;
    Rng& rng_;
    std::unique_ptr<channel::LossModel> loss_;
    std::unique_ptr<channel::DelayModel> delay_;
    bool fifo_;
    std::string name_;
    Receiver receiver_;
    TraceRecorder* trace_ = nullptr;
    ChannelStats stats_;
    std::size_t in_flight_ = 0;
    SimTime last_delivery_ = 0;  // FIFO mode: previous scheduled delivery
    bool track_contents_ = false;
    std::vector<proto::Message> contents_;  // in-flight multiset when tracked
    SimTime service_time_ = 0;              // bottleneck serialization time
    std::size_t queue_capacity_ = 64;
    SimTime link_free_at_ = 0;              // bottleneck: next departure slot
};

}  // namespace bacp::sim
