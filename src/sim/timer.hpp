#pragma once

/// \file timer.hpp
/// Restartable one-shot timer bound to a Simulator.
///
/// The implementation is the runtime-agnostic bacp::OneShotTimer from
/// common/timer_service.hpp, bound here to the simulator's TimerService
/// surface; sim::Timer remains the name the DES-side code uses.  The
/// real-time runtime (src/net) arms the identical class against a
/// net::TimerWheel instead.

#include "common/timer_service.hpp"
#include "sim/simulator.hpp"

namespace bacp::sim {

using Timer = bacp::OneShotTimer;

}  // namespace bacp::sim
