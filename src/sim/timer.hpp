#pragma once

/// \file timer.hpp
/// Restartable one-shot timer bound to a Simulator.
///
/// Used by the runtime adapters for the paper's realistic timeout
/// implementations: the SII sender keeps one timer ("S need only keep
/// track of the elapsed time period since it last sent a data message");
/// the SIV sender keeps one timer per outstanding message.

#include <functional>
#include <utility>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace bacp::sim {

class Timer {
public:
    using Callback = std::function<void()>;

    Timer(Simulator& sim, Callback cb) : sim_(&sim), cb_(std::move(cb)) {
        BACP_ASSERT(cb_ != nullptr);
    }

    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;
    Timer(Timer&&) = delete;
    Timer& operator=(Timer&&) = delete;

    ~Timer() { cancel(); }

    /// (Re)arms the timer to fire after \p delay; any pending expiry is
    /// cancelled first.
    void restart(SimTime delay) {
        cancel();
        event_ = sim_->schedule_after(delay, [this] {
            event_ = kInvalidEvent;
            cb_();
        });
    }

    /// Stops the timer if armed.
    void cancel() {
        if (event_ != kInvalidEvent) {
            sim_->cancel(event_);
            event_ = kInvalidEvent;
        }
    }

    bool armed() const { return event_ != kInvalidEvent; }

private:
    Simulator* sim_;
    Callback cb_;
    EventId event_ = kInvalidEvent;
};

}  // namespace bacp::sim
