#pragma once

/// \file simulator.hpp
/// Single-threaded discrete-event simulator.
///
/// Besides the usual schedule/step/run loop, the simulator supports *idle
/// hooks*: callbacks invoked only when the event queue has drained.  Idle
/// hooks implement the paper's oracle timeout guards exactly -- the SII
/// guard "timeout == (na != ns) and C_SR = {} and C_RS = {} and not
/// rcvd[nr]" fires precisely when nothing else can happen, which in DES
/// terms is an empty event queue (an eager receiver leaves no hidden
/// enabled actions behind).
///
/// The simulator is one of the two TimerService implementations (the
/// other is the real-time net::TimerWheel), so timer-driven protocol
/// policies run unchanged over virtual or wall-clock time.  The class is
/// final so direct calls through Simulator& devirtualize.

#include <cstddef>
#include <functional>
#include <vector>

#include "common/assert.hpp"
#include "common/timer_service.hpp"
#include "common/types.hpp"
#include "sim/event_queue.hpp"

namespace bacp::sim {

class Simulator final : public TimerService {
public:
    using Handler = EventQueue::Handler;
    /// Returns true when the hook performed work (scheduled new events).
    using IdleHook = std::function<bool()>;

    SimTime now() const override { return now_; }

    /// Schedules \p fn at absolute simulated time \p t (>= now).
    /// Defined inline: scheduling is the hottest call in the repo, and
    /// keeping it in the header lets the closure build directly in the
    /// event slab instead of relocating across a call boundary.
    EventId schedule_at(SimTime t, Handler fn) {
        BACP_ASSERT_MSG(t >= now_, "cannot schedule into the past");
        return queue_.push(t, std::move(fn));
    }

    /// Schedules \p fn after a non-negative delay.
    EventId schedule_after(SimTime delay, Handler fn) override {
        BACP_ASSERT_MSG(delay >= 0, "negative delay");
        return queue_.push(now_ + delay, std::move(fn));
    }

    /// Cancels a pending event (no-op if already fired).
    void cancel(EventId id) override { queue_.cancel(id); }

    /// Registers an idle hook; hooks run in registration order when the
    /// queue drains, and the run loop resumes if any reports work done.
    void add_idle_hook(IdleHook hook);

    /// Executes the next event.  Returns false when the queue is empty
    /// (idle hooks are NOT consulted here).
    bool step() {
        if (queue_.empty()) return false;
        auto fired = queue_.pop();
        BACP_ASSERT(fired.time >= now_);
        now_ = fired.time;
        ++total_fired_;
        fired.handler();
        return true;
    }

    /// Runs until the queue is empty and no idle hook makes progress, or
    /// until \p max_events have fired.  Returns the number fired.
    std::size_t run(std::size_t max_events = kDefaultMaxEvents);

    /// Runs until simulated time exceeds \p deadline, the queue drains
    /// with no idle progress, or \p max_events fire.  Events scheduled at
    /// or before the deadline still execute.
    std::size_t run_until(SimTime deadline, std::size_t max_events = kDefaultMaxEvents);

    std::size_t pending_events() const { return queue_.size(); }

    /// Pre-sizes the event slab for \p n concurrent events, so runtimes
    /// that know their concurrency bound (window size + timers) keep the
    /// steady-state loop allocation-free.
    void reserve_events(std::size_t n) { queue_.reserve(n); }

    /// Events fired over the simulator's whole lifetime (monotone; spans
    /// multiple run()/run_until() calls).  Benches use it to compute
    /// events/sec without threading counts through every runner.
    std::uint64_t total_fired() const { return total_fired_; }

    static constexpr std::size_t kDefaultMaxEvents = 100'000'000;

private:
    /// Gives every idle hook a chance; true if any did work.
    bool run_idle_hooks();

    EventQueue queue_;
    SimTime now_ = 0;
    std::uint64_t total_fired_ = 0;
    std::vector<IdleHook> idle_hooks_;
};

}  // namespace bacp::sim
