#include "sim/trace.hpp"

#include <sstream>

namespace bacp::sim {

std::string TraceRecorder::dump() const {
    std::ostringstream os;
    for (const auto& e : events_) {
        os << "t=" << e.time << " [" << e.actor << "] " << e.what << "\n";
    }
    return os.str();
}

bool TraceRecorder::contains(const std::string& needle) const {
    for (const auto& e : events_) {
        if (e.what.find(needle) != std::string::npos) return true;
    }
    return false;
}

}  // namespace bacp::sim
