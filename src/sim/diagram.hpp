#pragma once

/// \file diagram.hpp
/// Message-sequence-chart rendering of a TraceRecorder.
///
/// Turns the flat event log into the two-column diagram protocol papers
/// draw by hand: sender actions on the left, receiver actions on the
/// right, channel deliveries as arrows, losses marked in the middle.

#include <string>

#include "sim/trace.hpp"

namespace bacp::sim {

/// Renders \p trace as a fixed-width sequence chart.  Events from actor
/// "S" (and sends on \p forward_channel) appear on the left; events from
/// "R" (and sends on the reverse channel) on the right; channel drops are
/// centered.  \p max_events caps the output (0 = all).
std::string render_sequence_diagram(const TraceRecorder& trace,
                                    const std::string& forward_channel = "C_SR",
                                    std::size_t max_events = 0);

}  // namespace bacp::sim
