#include "sim/diagram.hpp"

#include <cstdio>
#include <sstream>

#include "common/types.hpp"

namespace bacp::sim {

namespace {

constexpr int kColumn = 26;  // width of each actor column

std::string pad(const std::string& text, int width, bool right_align) {
    if (static_cast<int>(text.size()) >= width) return text.substr(0, static_cast<std::size_t>(width));
    const std::string fill(static_cast<std::size_t>(width) - text.size(), ' ');
    return right_align ? fill + text : text + fill;
}

std::string time_label(SimTime t) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%10.3f", to_seconds(t) * 1e3);
    return buffer;
}

}  // namespace

std::string render_sequence_diagram(const TraceRecorder& trace,
                                    const std::string& forward_channel,
                                    std::size_t max_events) {
    std::ostringstream os;
    os << pad("time (ms)", 10, true) << "  " << pad("sender", kColumn, false) << "|"
       << pad("receiver", kColumn, true) << "\n";
    os << std::string(10, '-') << "  " << std::string(kColumn, '-') << "+"
       << std::string(kColumn, '-') << "\n";

    std::size_t rendered = 0;
    for (const auto& event : trace.events()) {
        if (max_events != 0 && rendered >= max_events) {
            os << pad("...", 10, true) << "  (" << trace.size() - rendered
               << " more events)\n";
            break;
        }
        std::string left, right, center;
        const bool forward = event.actor == forward_channel;
        if (event.actor == "S" || event.actor == "R") {
            // Plain receptions duplicate the channel's delivery arrow.
            if (event.what.rfind("rcv ", 0) == 0) continue;
            (event.actor == "S" ? left : right) = event.what;
        } else if (event.what.rfind("drop ", 0) == 0) {
            center = "x " + event.what.substr(5) + " lost";
        } else if (event.what.rfind("send ", 0) == 0) {
            // The originator's own trace line already shows the send;
            // channel send entries only add noise.
            continue;
        } else if (event.what.rfind("deliver ", 0) == 0) {
            const std::string what = event.what.substr(8);
            if (forward) {
                right = "--> " + what;
            } else {
                left = what + " <--";
            }
        } else {
            center = event.actor + ": " + event.what;
        }
        ++rendered;
        os << time_label(event.time) << "  ";
        if (!center.empty()) {
            const int total = 2 * kColumn + 1;
            const int lead = (total - static_cast<int>(center.size())) / 2;
            os << std::string(static_cast<std::size_t>(lead > 0 ? lead : 0), ' ') << center
               << "\n";
            continue;
        }
        os << pad(left, kColumn, false) << "|" << (right.empty() ? "" : " " + right) << "\n";
    }
    return os.str();
}

}  // namespace bacp::sim
