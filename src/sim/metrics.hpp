#pragma once

/// \file metrics.hpp
/// Per-run measurement record shared by tests, benches, and examples.

#include <array>
#include <cstdint>
#include <string>

#include "common/histogram.hpp"
#include "common/metrics_table.hpp"
#include "common/types.hpp"

namespace bacp::sim {

struct Metrics {
    // Sender side.
    std::uint64_t data_new = 0;        // first transmissions (action 0)
    std::uint64_t data_retx = 0;       // retransmissions (action 2/2')
    std::uint64_t acks_received = 0;

    // Receiver side.
    std::uint64_t data_received = 0;   // every arriving data message
    std::uint64_t duplicates = 0;      // arrivals with v < nr
    std::uint64_t acks_sent = 0;       // block acks (action 5)
    std::uint64_t dup_acks = 0;        // singleton re-acks from action 3
    std::uint64_t delivered = 0;       // messages accepted in order (nr growth)

    // NAK fast-retransmit extension.
    std::uint64_t naks_sent = 0;      // receiver-side NAK emissions
    std::uint64_t naks_received = 0;  // sender-side NAK arrivals
    std::uint64_t fast_retx = 0;      // retransmissions triggered by NAKs

    // Channel side.
    std::uint64_t sr_dropped = 0;
    std::uint64_t rs_dropped = 0;

    // Wire side (real-time runtime and codec-backed channels): frames
    // rejected by wire::decode.  A rejected frame is treated as lost --
    // crc_errors counts the BadCrc subset of decode_errors.
    std::uint64_t decode_errors = 0;
    std::uint64_t crc_errors = 0;

    // Wall-clock of the simulated run.
    SimTime start_time = 0;
    SimTime end_time = 0;

    /// Send-to-accept latency per message (first transmission to the
    /// moment nr passes it), in simulated nanoseconds.
    Histogram latency{5};

    /// Sender-observed ack latency per message (first transmission to
    /// the ack that retired it), in the sender's clock.  The receiver's
    /// `latency` needs both endpoints' tables in one driver (true in the
    /// DES); this one fills at any sending endpoint, so split-process
    /// runs (net clients against a Server) still get a latency figure.
    Histogram ack_latency{5};

    SimTime elapsed() const { return end_time - start_time; }

    /// Accepted messages per simulated second.
    double throughput_msgs_per_sec() const;

    /// Total acknowledgment messages per delivered data message (block +
    /// duplicate acks) -- the E4 overhead measure.
    double acks_per_delivered() const;

    /// Fraction of data transmissions that were retransmissions.
    double retx_fraction() const;

    /// One-line human-readable report.
    std::string summary() const;

    using Field = MetricsField;
    static constexpr std::size_t kFieldCount = 15;

    /// The counter table (common/metrics_table.hpp): time stamps and the
    /// latency histograms are not counters and stay out; consumers
    /// report those through their own fields.
    static constexpr std::array<CounterDef<Metrics>, kFieldCount> kCounters = {{
        {"data_new", &Metrics::data_new},
        {"data_retx", &Metrics::data_retx},
        {"acks_received", &Metrics::acks_received},
        {"data_received", &Metrics::data_received},
        {"duplicates", &Metrics::duplicates},
        {"acks_sent", &Metrics::acks_sent},
        {"dup_acks", &Metrics::dup_acks},
        {"delivered", &Metrics::delivered},
        {"naks_sent", &Metrics::naks_sent},
        {"naks_received", &Metrics::naks_received},
        {"fast_retx", &Metrics::fast_retx},
        {"sr_dropped", &Metrics::sr_dropped},
        {"rs_dropped", &Metrics::rs_dropped},
        {"decode_errors", &Metrics::decode_errors},
        {"crc_errors", &Metrics::crc_errors},
    }};

    /// Stable name->value view of every protocol counter, in declaration
    /// order -- the same shape net::Metrics exposes, so benches serialize
    /// identically from either runtime (bench::counters_json walks it).
    std::array<Field, kFieldCount> fields() const { return counter_fields(*this, kCounters); }

    /// Sum every tabled protocol counter of `o` into this record.  Times
    /// and histograms are left alone -- merge those by hand where the
    /// aggregation semantics are known (e.g. ClientFleet keeps its own
    /// merged ack-latency histogram).
    void add_counters_from(const Metrics& o) { add_counters(*this, o, kCounters); }

    /// Flat JSON object of every counter.
    std::string to_json() const { return fields_json(fields()); }
};

}  // namespace bacp::sim
