#pragma once

/// \file metrics.hpp
/// Per-run measurement record shared by tests, benches, and examples.

#include <array>
#include <cstdint>
#include <string>

#include "common/histogram.hpp"
#include "common/types.hpp"

namespace bacp::sim {

struct Metrics {
    // Sender side.
    std::uint64_t data_new = 0;        // first transmissions (action 0)
    std::uint64_t data_retx = 0;       // retransmissions (action 2/2')
    std::uint64_t acks_received = 0;

    // Receiver side.
    std::uint64_t data_received = 0;   // every arriving data message
    std::uint64_t duplicates = 0;      // arrivals with v < nr
    std::uint64_t acks_sent = 0;       // block acks (action 5)
    std::uint64_t dup_acks = 0;        // singleton re-acks from action 3
    std::uint64_t delivered = 0;       // messages accepted in order (nr growth)

    // NAK fast-retransmit extension.
    std::uint64_t naks_sent = 0;      // receiver-side NAK emissions
    std::uint64_t naks_received = 0;  // sender-side NAK arrivals
    std::uint64_t fast_retx = 0;      // retransmissions triggered by NAKs

    // Channel side.
    std::uint64_t sr_dropped = 0;
    std::uint64_t rs_dropped = 0;

    // Wire side (real-time runtime and codec-backed channels): frames
    // rejected by wire::decode.  A rejected frame is treated as lost --
    // crc_errors counts the BadCrc subset of decode_errors.
    std::uint64_t decode_errors = 0;
    std::uint64_t crc_errors = 0;

    // Wall-clock of the simulated run.
    SimTime start_time = 0;
    SimTime end_time = 0;

    /// Send-to-accept latency per message (first transmission to the
    /// moment nr passes it), in simulated nanoseconds.
    Histogram latency{5};

    /// Sender-observed ack latency per message (first transmission to
    /// the ack that retired it), in the sender's clock.  The receiver's
    /// `latency` needs both endpoints' tables in one driver (true in the
    /// DES); this one fills at any sending endpoint, so split-process
    /// runs (net clients against a Server) still get a latency figure.
    Histogram ack_latency{5};

    SimTime elapsed() const { return end_time - start_time; }

    /// Accepted messages per simulated second.
    double throughput_msgs_per_sec() const;

    /// Total acknowledgment messages per delivered data message (block +
    /// duplicate acks) -- the E4 overhead measure.
    double acks_per_delivered() const;

    /// Fraction of data transmissions that were retransmissions.
    double retx_fraction() const;

    /// One-line human-readable report.
    std::string summary() const;

    struct Field {
        const char* name;
        std::uint64_t value;
    };
    static constexpr std::size_t kFieldCount = 15;

    /// Stable name->value view of every protocol counter, in declaration
    /// order -- the same shape net::Metrics exposes, so benches serialize
    /// identically from either runtime (bench::counters_json walks it).
    /// Time stamps and the latency histogram are not counters and stay
    /// out; consumers report those through their own fields.
    std::array<Field, kFieldCount> fields() const {
        return {{{"data_new", data_new},
                 {"data_retx", data_retx},
                 {"acks_received", acks_received},
                 {"data_received", data_received},
                 {"duplicates", duplicates},
                 {"acks_sent", acks_sent},
                 {"dup_acks", dup_acks},
                 {"delivered", delivered},
                 {"naks_sent", naks_sent},
                 {"naks_received", naks_received},
                 {"fast_retx", fast_retx},
                 {"sr_dropped", sr_dropped},
                 {"rs_dropped", rs_dropped},
                 {"decode_errors", decode_errors},
                 {"crc_errors", crc_errors}}};
    }

    /// Flat JSON object of every counter.
    std::string to_json() const {
        std::string out = "{";
        bool first = true;
        for (const Field& f : fields()) {
            if (!first) out += ",";
            first = false;
            out += "\"";
            out += f.name;
            out += "\":";
            out += std::to_string(f.value);
        }
        out += "}";
        return out;
    }
};

}  // namespace bacp::sim
