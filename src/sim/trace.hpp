#pragma once

/// \file trace.hpp
/// Chronological event trace for debugging and for the annotated example
/// walkthroughs (examples/protocol_trace).

#include <string>
#include <vector>

#include "common/types.hpp"

namespace bacp::sim {

struct TraceEvent {
    SimTime time = 0;
    std::string actor;  // e.g. "S", "R", "C_SR"
    std::string what;   // e.g. "send D(3)", "drop A(0,2)"
};

class TraceRecorder {
public:
    void record(SimTime time, std::string actor, std::string what) {
        events_.push_back(TraceEvent{time, std::move(actor), std::move(what)});
    }

    const std::vector<TraceEvent>& events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    void clear() { events_.clear(); }

    /// Multi-line "t=... [actor] what" rendering.
    std::string dump() const;

    /// True if any event's description contains \p needle (test helper).
    bool contains(const std::string& needle) const;

private:
    std::vector<TraceEvent> events_;
};

}  // namespace bacp::sim
