#include "sim/simulator.hpp"

#include "common/assert.hpp"

namespace bacp::sim {

void Simulator::add_idle_hook(IdleHook hook) {
    BACP_ASSERT(hook != nullptr);
    idle_hooks_.push_back(std::move(hook));
}

bool Simulator::run_idle_hooks() {
    bool progressed = false;
    for (auto& hook : idle_hooks_) {
        if (hook()) progressed = true;
    }
    return progressed;
}

std::size_t Simulator::run(std::size_t max_events) {
    std::size_t fired = 0;
    while (fired < max_events) {
        if (step()) {
            ++fired;
            continue;
        }
        if (!run_idle_hooks()) break;  // truly quiescent
    }
    return fired;
}

std::size_t Simulator::run_until(SimTime deadline, std::size_t max_events) {
    std::size_t fired = 0;
    while (fired < max_events) {
        if (queue_.empty()) {
            if (!run_idle_hooks()) break;
            continue;
        }
        if (queue_.next_time() > deadline) break;
        step();
        ++fired;
    }
    return fired;
}

}  // namespace bacp::sim
