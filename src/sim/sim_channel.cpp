#include "sim/sim_channel.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace bacp::sim {

SimChannel::SimChannel(Simulator& sim, Rng& rng, Config config, std::string name)
    : sim_(sim),
      rng_(rng),
      loss_(config.loss ? std::move(config.loss) : std::make_unique<channel::NoLoss>()),
      delay_(config.delay ? std::move(config.delay)
                          : std::make_unique<channel::FixedDelay>(kMillisecond)),
      fifo_(config.fifo),
      name_(std::move(name)),
      track_contents_(config.track_contents),
      service_time_(config.service_time),
      queue_capacity_(config.queue_capacity) {}

channel::SetChannel SimChannel::snapshot() const {
    BACP_ASSERT_MSG(track_contents_, "snapshot() requires track_contents");
    channel::SetChannel snap;
    for (const auto& msg : contents_) snap.send(msg);
    return snap;
}

void SimChannel::send(const proto::Message& msg) {
    BACP_ASSERT_MSG(receiver_ != nullptr, "channel has no receiver");
    ++stats_.sent;
    if (loss_->drop(rng_)) {
        ++stats_.dropped;
        if (trace_ != nullptr) trace_->record(sim_.now(), name_, "drop " + proto::to_string(msg));
        return;
    }
    SimTime departure = sim_.now();
    if (service_time_ > 0) {
        // Bottleneck: serialize through the link; tail-drop on overflow.
        const SimTime backlog = link_free_at_ > sim_.now() ? link_free_at_ - sim_.now() : 0;
        const auto queued = static_cast<std::size_t>(backlog / service_time_);
        if (queued >= queue_capacity_) {
            ++stats_.dropped;
            if (trace_ != nullptr) {
                trace_->record(sim_.now(), name_, "queue-drop " + proto::to_string(msg));
            }
            return;
        }
        departure = (link_free_at_ > sim_.now() ? link_free_at_ : sim_.now()) + service_time_;
        link_free_at_ = departure;
    }
    SimTime delivery = departure + delay_->sample(rng_);
    if (fifo_) {
        // Never deliver before an earlier message, but stay within the
        // lifetime bound L.
        delivery = std::clamp(delivery, last_delivery_, sim_.now() + max_lifetime());
        last_delivery_ = delivery;
    }
    ++in_flight_;
    if (track_contents_) contents_.push_back(msg);
    sim_.schedule_at(delivery, [this, msg] {
        BACP_ASSERT(in_flight_ > 0);
        --in_flight_;
        if (track_contents_) {
            const auto it = std::find(contents_.begin(), contents_.end(), msg);
            BACP_ASSERT(it != contents_.end());
            contents_.erase(it);
        }
        ++stats_.delivered;
        if (trace_ != nullptr) trace_->record(sim_.now(), name_, "deliver " + proto::to_string(msg));
        receiver_(msg);
    });
    if (trace_ != nullptr) trace_->record(sim_.now(), name_, "send " + proto::to_string(msg));
}

}  // namespace bacp::sim
