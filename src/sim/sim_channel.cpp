#include "sim/sim_channel.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace bacp::sim {

SimChannel::SimChannel(Simulator& sim, Rng& rng, Config config, std::string name)
    : sim_(sim),
      rng_(rng),
      loss_(config.loss ? std::move(config.loss) : std::make_unique<channel::NoLoss>()),
      delay_(config.delay ? std::move(config.delay)
                          : std::make_unique<channel::FixedDelay>(kMillisecond)),
      lossless_(loss_->never_drops()),
      fifo_(config.fifo),
      name_(std::move(name)),
      track_contents_(config.track_contents),
      service_time_(config.service_time),
      queue_capacity_(config.queue_capacity) {}

channel::TransitView SimChannel::snapshot() const {
    BACP_ASSERT_MSG(track_contents_, "snapshot() requires track_contents");
    return channel::TransitView(contents_);
}

std::size_t SimChannel::chaos_duplicate_in_flight(Rng& rng, std::size_t copies) {
    BACP_ASSERT_MSG(track_contents_, "chaos duplication requires track_contents");
    if (contents_.empty()) return 0;
    std::size_t injected = 0;
    for (std::size_t k = 0; k < copies; ++k) {
        const auto i = static_cast<std::size_t>(rng.uniform(contents_.size()));
        // Copy first: send() may grow contents_ and invalidate references.
        const proto::Message copy = contents_[i];
        send(copy);
        ++injected;
    }
    return injected;
}

std::size_t SimChannel::chaos_swap_in_flight(Rng& rng, std::size_t swaps) {
    BACP_ASSERT_MSG(track_contents_, "chaos reorder requires track_contents");
    if (contents_.size() < 2) return 0;
    std::size_t done = 0;
    for (std::size_t k = 0; k < swaps; ++k) {
        const auto a = static_cast<std::size_t>(rng.uniform(contents_.size()));
        const auto b = static_cast<std::size_t>(rng.uniform(contents_.size()));
        if (a == b) continue;
        // Exchange the messages, not the events: each delivery event
        // fires at its original time but now carries the other message.
        std::swap(slots_[contents_slot_[a]].msg, slots_[contents_slot_[b]].msg);
        std::swap(contents_[a], contents_[b]);
        ++done;
    }
    return done;
}

std::uint32_t SimChannel::alloc_slot(const proto::Message& msg) {
    std::uint32_t slot;
    if (free_head_ != kNoSlot) {
        slot = free_head_;
        free_head_ = slots_[slot].link;
        slots_[slot].msg = msg;
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(Slot{msg, 0});
    }
    if (track_contents_) {
        slots_[slot].link = static_cast<std::uint32_t>(contents_.size());
        contents_.push_back(msg);
        contents_slot_.push_back(slot);
    }
    return slot;
}

void SimChannel::release_slot(std::uint32_t slot) {
    if (track_contents_) {
        // Swap-and-pop; repoint the moved entry's owning slot.
        const auto i = slots_[slot].link;
        const auto last = static_cast<std::uint32_t>(contents_.size()) - 1;
        if (i != last) {
            contents_[i] = std::move(contents_[last]);
            contents_slot_[i] = contents_slot_[last];
            slots_[contents_slot_[i]].link = i;
        }
        contents_.pop_back();
        contents_slot_.pop_back();
    }
    slots_[slot].link = free_head_;
    free_head_ = slot;
}

void SimChannel::deliver_slot(std::uint32_t slot) {
    BACP_ASSERT(in_flight_ > 0);
    --in_flight_;
    proto::Message msg = std::move(slots_[slot].msg);
    // Release before invoking the receiver: it may send() reentrantly,
    // which can grow the pool and invalidate slot references.
    release_slot(slot);
    ++stats_.delivered;
    if (trace_ != nullptr) trace_->record(sim_.now(), name_, "deliver " + proto::to_string(msg));
    receiver_(msg);
}

void SimChannel::send(const proto::Message& msg) {
    BACP_ASSERT_MSG(receiver_ != nullptr, "channel has no receiver");
    ++stats_.sent;
    if (!lossless_ && loss_->drop(rng_)) {
        ++stats_.dropped;
        if (trace_ != nullptr) trace_->record(sim_.now(), name_, "drop " + proto::to_string(msg));
        return;
    }
    SimTime departure = sim_.now();
    if (service_time_ > 0) {
        // Bottleneck: serialize through the link; tail-drop on overflow.
        const SimTime backlog = link_free_at_ > sim_.now() ? link_free_at_ - sim_.now() : 0;
        const auto queued = static_cast<std::size_t>(backlog / service_time_);
        if (queued >= queue_capacity_) {
            ++stats_.dropped;
            if (trace_ != nullptr) {
                trace_->record(sim_.now(), name_, "queue-drop " + proto::to_string(msg));
            }
            return;
        }
        departure = (link_free_at_ > sim_.now() ? link_free_at_ : sim_.now()) + service_time_;
        link_free_at_ = departure;
    }
    SimTime delivery = departure + delay_->sample(rng_);
    if (fifo_) {
        // Never deliver before an earlier message, but stay within the
        // lifetime bound L.
        delivery = std::clamp(delivery, last_delivery_, sim_.now() + max_lifetime());
        last_delivery_ = delivery;
    }
    ++in_flight_;
    const std::uint32_t slot = alloc_slot(msg);
    sim_.schedule_at(delivery, [this, slot] { deliver_slot(slot); });
    if (trace_ != nullptr) trace_->record(sim_.now(), name_, "send " + proto::to_string(msg));
}

}  // namespace bacp::sim
