# Empty compiler generated dependencies file for file_transfer.
# This may be replaced when dependencies are built.
