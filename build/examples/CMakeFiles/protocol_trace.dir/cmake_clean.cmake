file(REMOVE_RECURSE
  "CMakeFiles/protocol_trace.dir/protocol_trace.cpp.o"
  "CMakeFiles/protocol_trace.dir/protocol_trace.cpp.o.d"
  "protocol_trace"
  "protocol_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
