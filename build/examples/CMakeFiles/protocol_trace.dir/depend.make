# Empty dependencies file for protocol_trace.
# This may be replaced when dependencies are built.
