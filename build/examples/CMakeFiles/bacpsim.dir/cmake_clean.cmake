file(REMOVE_RECURSE
  "CMakeFiles/bacpsim.dir/bacpsim.cpp.o"
  "CMakeFiles/bacpsim.dir/bacpsim.cpp.o.d"
  "bacpsim"
  "bacpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bacpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
