# Empty compiler generated dependencies file for bacpsim.
# This may be replaced when dependencies are built.
