# Empty dependencies file for duplex_rpc.
# This may be replaced when dependencies are built.
