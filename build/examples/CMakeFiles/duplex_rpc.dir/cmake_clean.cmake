file(REMOVE_RECURSE
  "CMakeFiles/duplex_rpc.dir/duplex_rpc.cpp.o"
  "CMakeFiles/duplex_rpc.dir/duplex_rpc.cpp.o.d"
  "duplex_rpc"
  "duplex_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duplex_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
