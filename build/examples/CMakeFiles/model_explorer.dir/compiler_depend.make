# Empty compiler generated dependencies file for model_explorer.
# This may be replaced when dependencies are built.
