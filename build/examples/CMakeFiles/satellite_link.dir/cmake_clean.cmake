file(REMOVE_RECURSE
  "CMakeFiles/satellite_link.dir/satellite_link.cpp.o"
  "CMakeFiles/satellite_link.dir/satellite_link.cpp.o.d"
  "satellite_link"
  "satellite_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satellite_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
