# Empty dependencies file for satellite_link.
# This may be replaced when dependencies are built.
