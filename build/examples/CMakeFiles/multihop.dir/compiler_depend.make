# Empty compiler generated dependencies file for multihop.
# This may be replaced when dependencies are built.
