file(REMOVE_RECURSE
  "CMakeFiles/multihop.dir/multihop.cpp.o"
  "CMakeFiles/multihop.dir/multihop.cpp.o.d"
  "multihop"
  "multihop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
