# Empty compiler generated dependencies file for bench_e4_ack_overhead.
# This may be replaced when dependencies are built.
