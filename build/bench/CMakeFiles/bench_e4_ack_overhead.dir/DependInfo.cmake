
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e4_ack_overhead.cpp" "bench/CMakeFiles/bench_e4_ack_overhead.dir/bench_e4_ack_overhead.cpp.o" "gcc" "bench/CMakeFiles/bench_e4_ack_overhead.dir/bench_e4_ack_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/bacp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/bacp_link.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/bacp_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bacp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/bacp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bacp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ba/CMakeFiles/bacp_ba.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bacp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/bacp_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/bacp_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/bacp_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bacp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
