file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_ack_overhead.dir/bench_e4_ack_overhead.cpp.o"
  "CMakeFiles/bench_e4_ack_overhead.dir/bench_e4_ack_overhead.cpp.o.d"
  "bench_e4_ack_overhead"
  "bench_e4_ack_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_ack_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
