# Empty compiler generated dependencies file for bench_e17_offered_load.
# This may be replaced when dependencies are built.
