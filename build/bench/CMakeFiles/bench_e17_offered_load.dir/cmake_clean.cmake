file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_offered_load.dir/bench_e17_offered_load.cpp.o"
  "CMakeFiles/bench_e17_offered_load.dir/bench_e17_offered_load.cpp.o.d"
  "bench_e17_offered_load"
  "bench_e17_offered_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_offered_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
