# Empty compiler generated dependencies file for bench_e12_adaptive_window.
# This may be replaced when dependencies are built.
