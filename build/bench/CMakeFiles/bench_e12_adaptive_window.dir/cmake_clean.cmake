file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_adaptive_window.dir/bench_e12_adaptive_window.cpp.o"
  "CMakeFiles/bench_e12_adaptive_window.dir/bench_e12_adaptive_window.cpp.o.d"
  "bench_e12_adaptive_window"
  "bench_e12_adaptive_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_adaptive_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
