file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_nak.dir/bench_e11_nak.cpp.o"
  "CMakeFiles/bench_e11_nak.dir/bench_e11_nak.cpp.o.d"
  "bench_e11_nak"
  "bench_e11_nak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_nak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
