file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_multihop.dir/bench_e14_multihop.cpp.o"
  "CMakeFiles/bench_e14_multihop.dir/bench_e14_multihop.cpp.o.d"
  "bench_e14_multihop"
  "bench_e14_multihop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_multihop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
