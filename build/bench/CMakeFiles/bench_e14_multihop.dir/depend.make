# Empty dependencies file for bench_e14_multihop.
# This may be replaced when dependencies are built.
