file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_modelcheck.dir/bench_e2_modelcheck.cpp.o"
  "CMakeFiles/bench_e2_modelcheck.dir/bench_e2_modelcheck.cpp.o.d"
  "bench_e2_modelcheck"
  "bench_e2_modelcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_modelcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
