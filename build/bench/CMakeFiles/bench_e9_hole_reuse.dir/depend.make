# Empty dependencies file for bench_e9_hole_reuse.
# This may be replaced when dependencies are built.
