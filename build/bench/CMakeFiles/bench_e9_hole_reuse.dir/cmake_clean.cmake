file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_hole_reuse.dir/bench_e9_hole_reuse.cpp.o"
  "CMakeFiles/bench_e9_hole_reuse.dir/bench_e9_hole_reuse.cpp.o.d"
  "bench_e9_hole_reuse"
  "bench_e9_hole_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_hole_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
