file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_scenario.dir/bench_e1_scenario.cpp.o"
  "CMakeFiles/bench_e1_scenario.dir/bench_e1_scenario.cpp.o.d"
  "bench_e1_scenario"
  "bench_e1_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
