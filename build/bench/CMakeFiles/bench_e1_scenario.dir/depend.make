# Empty dependencies file for bench_e1_scenario.
# This may be replaced when dependencies are built.
