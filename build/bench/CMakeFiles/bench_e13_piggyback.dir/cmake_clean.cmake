file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_piggyback.dir/bench_e13_piggyback.cpp.o"
  "CMakeFiles/bench_e13_piggyback.dir/bench_e13_piggyback.cpp.o.d"
  "bench_e13_piggyback"
  "bench_e13_piggyback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_piggyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
