# Empty dependencies file for bench_e13_piggyback.
# This may be replaced when dependencies are built.
