# Empty dependencies file for bench_e3_throughput_vs_loss.
# This may be replaced when dependencies are built.
